// Package repro's benchmark harness: one benchmark per table/figure of the
// paper's evaluation (§4), plus ablation benches for the design decisions
// DESIGN.md calls out. Precision results are reported as custom benchmark
// metrics (noalias percentages, correlation coefficients) alongside the
// usual time/op, so `go test -bench=. -benchmem` regenerates every number
// EXPERIMENTS.md records.
package repro

import (
	"sync"
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/andersen"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/pointer"
	"repro/internal/rangeanal"
)

// BenchmarkFig13 regenerates the precision comparison of Fig. 13 over the
// 22-program synthetic suite. Paper totals: %scev 6.97, %basic 30.83,
// %rbaa 41.73, %(r+b) 46.53.
func BenchmarkFig13(b *testing.B) {
	var total experiments.PrecisionRow
	for i := 0; i < b.N; i++ {
		total = experiments.Total(experiments.RunFig13Suite())
	}
	q := float64(total.Queries)
	b.ReportMetric(100*float64(total.Scev)/q, "%scev")
	b.ReportMetric(100*float64(total.Basic)/q, "%basic")
	b.ReportMetric(100*float64(total.Rbaa)/q, "%rbaa")
	b.ReportMetric(100*float64(total.RplusB)/q, "%r+b")
	b.ReportMetric(q, "queries")
}

// BenchmarkFig14 regenerates the global-test attribution of Fig. 14.
// Paper: 239,008 of 1,290,457 no-alias answers (18.52%) from the global
// test; the local test covers 6.55% of addresses; the rest come from
// comparing offsets of different locations.
func BenchmarkFig14(b *testing.B) {
	var total experiments.PrecisionRow
	for i := 0; i < b.N; i++ {
		total = experiments.Total(experiments.RunFig13Suite())
	}
	na := float64(total.Rbaa)
	b.ReportMetric(100*float64(total.Global)/na, "%global")
	b.ReportMetric(100*float64(total.Local)/na, "%local")
	b.ReportMetric(100*float64(total.Disjoint)/na, "%disjoint")
	b.ReportMetric(na, "noalias")
}

// BenchmarkFig15 regenerates the scalability experiment of Fig. 15 on a
// 30-program suite (use cmd/benchtables -fig 15 for the full 50). Paper:
// R(time, instructions) = 0.982, R(time, pointers) = 0.975, ~100k
// instructions/second.
func BenchmarkFig15(b *testing.B) {
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunFig15(30)
	}
	ri, rp := experiments.Fig15Correlations(rows)
	instrs, secs := 0, 0.0
	for _, r := range rows {
		instrs += r.Instrs
		secs += r.Elapsed.Seconds()
	}
	b.ReportMetric(ri, "R(instrs)")
	b.ReportMetric(rp, "R(ptrs)")
	b.ReportMetric(float64(instrs)/secs, "instrs/s")
}

// BenchmarkSymbolicRatio regenerates the §5 measurement: the fraction of
// pointers whose ranges are exclusively symbolic (paper: 20.47%).
func BenchmarkSymbolicRatio(b *testing.B) {
	var total experiments.PrecisionRow
	for i := 0; i < b.N; i++ {
		total = experiments.Total(experiments.RunFig13Suite())
	}
	b.ReportMetric(100*float64(total.SymOnly)/float64(total.SymTotal), "%symbolic-only")
}

// ablationSuite is a fixed subset of the Fig. 13 corpus used by the
// ablation benches (full-suite runs live in the Fig. 13/14 benches).
func ablationSuite() []benchgen.Config {
	return benchgen.Fig13Configs()[:8]
}

// runSuiteNoAlias counts rbaa no-alias answers over the ablation suite with
// the given analysis options and π-insertion choice.
func runSuiteNoAlias(b *testing.B, opts pointer.Options, skipESSA bool) (noalias, queries int) {
	b.Helper()
	for _, c := range ablationSuite() {
		c.SkipESSA = skipESSA
		m := benchgen.Generate(c)
		a := rbaa.New(m, opts)
		for _, q := range alias.Queries(m) {
			queries++
			if a.Alias(q.P, q.Q) == alias.NoAlias {
				noalias++
			}
		}
	}
	return noalias, queries
}

// BenchmarkAblationDescending compares the paper's 2-step descending
// sequence against none (design decision 1: widening at φ + descending
// recovers loop bounds). Measured two ways: the no-alias query rate, and
// the fraction of pointers whose GR upper bounds are all finite — the
// query rate barely moves (π-nodes already clamp the *body* copies during
// the ascending phase), but the bound precision drops visibly without the
// descending steps, exactly the Fig. 12 "growing iterations" picture.
func BenchmarkAblationDescending(b *testing.B) {
	finiteShare := func(opts pointer.Options) float64 {
		finite, total := 0, 0
		for _, c := range ablationSuite() {
			m := benchgen.Generate(c)
			a := rbaa.New(m, opts)
			for _, f := range m.Funcs {
				for _, v := range f.Values() {
					if v.Typ != ir.TPtr {
						continue
					}
					g := a.GR.Value(v)
					if g.IsTop() || g.IsBottom() {
						continue
					}
					total++
					allFinite := true
					for _, s := range g.Support() {
						r, _ := g.Get(s)
						if r.Hi().IsPosInf() {
							allFinite = false
						}
					}
					if allFinite {
						finite++
					}
				}
			}
		}
		return 100 * float64(finite) / float64(total)
	}
	var with, without, q int
	var fWith, fWithout float64
	for i := 0; i < b.N; i++ {
		with, q = runSuiteNoAlias(b, pointer.Options{DescendingSteps: 2,
			Range: rangeanal.Options{DescendingSteps: 2}}, false)
		without, _ = runSuiteNoAlias(b, pointer.Options{DescendingSteps: -1,
			Range: rangeanal.Options{DescendingSteps: -1}}, false)
		fWith = finiteShare(pointer.Options{DescendingSteps: 2,
			Range: rangeanal.Options{DescendingSteps: 2}})
		fWithout = finiteShare(pointer.Options{DescendingSteps: -1,
			Range: rangeanal.Options{DescendingSteps: -1}})
	}
	b.ReportMetric(100*float64(with)/float64(q), "%rbaa(desc=2)")
	b.ReportMetric(100*float64(without)/float64(q), "%rbaa(desc=0)")
	b.ReportMetric(fWith, "%finite(desc=2)")
	b.ReportMetric(fWithout, "%finite(desc=0)")
}

// BenchmarkAblationNoESSA measures what π-insertion buys (design decision
// 3): without e-SSA, loop pointers never meet their branch bounds and the
// global test loses its range information.
func BenchmarkAblationNoESSA(b *testing.B) {
	var with, without, q int
	for i := 0; i < b.N; i++ {
		with, q = runSuiteNoAlias(b, pointer.Options{}, false)
		without, _ = runSuiteNoAlias(b, pointer.Options{}, true)
	}
	b.ReportMetric(100*float64(with)/float64(q), "%rbaa(essa)")
	b.ReportMetric(100*float64(without)/float64(q), "%rbaa(no-essa)")
}

// BenchmarkAblationTopParams measures the interprocedural actual→formal
// linking of §3.1 against the fully conservative ⊤-parameter posture
// (design decision 5).
func BenchmarkAblationTopParams(b *testing.B) {
	var with, without, q int
	for i := 0; i < b.N; i++ {
		with, q = runSuiteNoAlias(b, pointer.Options{}, false)
		without, _ = runSuiteNoAlias(b, pointer.Options{TopParams: true}, false)
	}
	b.ReportMetric(100*float64(with)/float64(q), "%rbaa(linked)")
	b.ReportMetric(100*float64(without)/float64(q), "%rbaa(top-params)")
}

// BenchmarkAnalysisThroughput times the analysis mapping alone on one large
// module (the §1 "million instructions in ~10 seconds" claim, per-module).
func BenchmarkAnalysisThroughput(b *testing.B) {
	cfg := benchgen.ScalabilityConfigs(40)[39]
	m := benchgen.Generate(cfg)
	st := m.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.Analyze(m, pointer.Options{})
	}
	b.ReportMetric(float64(st.Instrs), "instrs")
}

// BenchmarkAblationPointsToLoads measures the related-work extension: GR
// with Fig. 9's load-is-⊤ rule vs GR refined by the Andersen points-to
// oracle (loads keep their points-to support). The delta is the value of
// "sets of locations plus ranges" over ranges alone on load-heavy code.
func BenchmarkAblationPointsToLoads(b *testing.B) {
	var plain, refined, q int
	for i := 0; i < b.N; i++ {
		plain, refined, q = 0, 0, 0
		for _, c := range ablationSuite() {
			m := benchgen.Generate(c)
			pt := andersen.Analyze(m)
			a0 := rbaa.New(m, pointer.Options{})
			a1 := rbaa.New(m, pointer.Options{PointsTo: pt})
			for _, pr := range alias.Queries(m) {
				q++
				if a0.Alias(pr.P, pr.Q) == alias.NoAlias {
					plain++
				}
				if a1.Alias(pr.P, pr.Q) == alias.NoAlias {
					refined++
				}
			}
		}
	}
	b.ReportMetric(100*float64(plain)/float64(q), "%rbaa(load=top)")
	b.ReportMetric(100*float64(refined)/float64(q), "%rbaa(load=pts)")
}

// BenchmarkOptClient measures a *consumer* of the analyses: block-local
// redundant-load elimination over the Fig. 13 corpus, parameterized by the
// alias analysis feeding it. More precision ⇒ more loads eliminated —
// the practical payoff the paper's introduction promises for loop
// transformations and scalar optimizations.
func BenchmarkOptClient(b *testing.B) {
	counts := map[string]int{}
	for i := 0; i < b.N; i++ {
		counts = map[string]int{}
		for _, c := range benchgen.Fig13Configs()[:10] {
			for _, which := range []string{"basic", "rbaa"} {
				m := benchgen.Generate(c)
				var aa alias.Analysis
				if which == "basic" {
					aa = basicaa.New(m)
				} else {
					aa = rbaa.New(m, pointer.Options{})
				}
				for _, f := range m.Funcs {
					counts[which] += opt.EliminateRedundantLoads(f, aa)
				}
			}
		}
	}
	b.ReportMetric(float64(counts["basic"]), "loads-rle(basic)")
	b.ReportMetric(float64(counts["rbaa"]), "loads-rle(rbaa)")
}

// BenchmarkDriverFig13Suite compares the sequential and parallel experiment
// drivers end-to-end on the 22-program Fig. 13 suite (generation + analysis
// construction + query sweep). Tables are byte-identical either way (see
// experiments.TestParallelMatchesSequentialTables); only the wall clock
// changes.
func BenchmarkDriverFig13Suite(b *testing.B) {
	for _, bench := range []struct {
		name     string
		parallel int
	}{{"seq", 1}, {"par4", 4}} {
		b.Run(bench.name, func(b *testing.B) {
			d := &experiments.Driver{Parallel: bench.parallel}
			var total experiments.PrecisionRow
			for i := 0; i < b.N; i++ {
				total = experiments.Total(d.RunFig13Suite())
			}
			b.ReportMetric(float64(total.Queries)/b.Elapsed().Seconds()*float64(b.N), "queries/s")
		})
	}
}

// xlDriver lazily builds the scaleXL-2M program (~1.9M IR instructions, the
// large tier of the Fig. 15 suite) and a deterministic strided sample of
// its pointer-pair queries. Construction takes tens of seconds and is
// shared by the sequential and parallel driver benchmarks below.
var xlDriver struct {
	once sync.Once
	mgr  *alias.Manager
	qs   []alias.Pair
}

func xlDriverSetup(b *testing.B) {
	xlDriver.once.Do(func() {
		cfg := benchgen.XLScalabilityConfigs()[0]
		m := benchgen.Generate(cfg)
		// Caching is disabled so every iteration measures member-evaluation
		// throughput, not cache-replay throughput; member order matches
		// experiments.NewPrecisionManager (Sweep decodes positionally).
		xlDriver.mgr = alias.NewManager(
			alias.ManagerOptions{Label: "scev+basic+rbaa", CacheLimit: -1},
			scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}))
		all := alias.Queries(m)
		const sample = 30000
		stride := len(all) / sample
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(all) && len(xlDriver.qs) < sample; i += stride {
			xlDriver.qs = append(xlDriver.qs, all[i])
		}
	})
}

// BenchmarkDriverXL compares sequential against parallel query-sweep
// throughput on the extra-large scalability program. The acceptance target
// is ≥2× queries/s for par4 over seq on a ≥4-core machine (GOMAXPROCS
// permitting; a single-core container cannot show the speedup).
func BenchmarkDriverXL(b *testing.B) {
	for _, bench := range []struct {
		name     string
		parallel int
	}{{"seq", 1}, {"par4", 4}} {
		b.Run(bench.name, func(b *testing.B) {
			xlDriverSetup(b)
			d := &experiments.Driver{Parallel: bench.parallel}
			b.ResetTimer()
			var row experiments.PrecisionRow
			for i := 0; i < b.N; i++ {
				row = d.Sweep(xlDriver.mgr, xlDriver.qs)
			}
			b.ReportMetric(float64(row.Queries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			b.ReportMetric(float64(row.Rbaa)/float64(row.Queries)*100, "%rbaa")
		})
	}
}

// BenchmarkQueryThroughput times the query side, which the paper's Fig. 15
// methodology deliberately excludes.
func BenchmarkQueryThroughput(b *testing.B) {
	cfg := benchgen.Fig13Configs()[1] // espresso, the largest
	m := benchgen.Generate(cfg)
	a := rbaa.New(m, pointer.Options{})
	qs := alias.Queries(m)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if a.Alias(q.P, q.Q) == alias.NoAlias {
			n++
		}
	}
	_ = n
}
