// Accelerate reproduces §2's second example (Fig. 3/4): the strided loop
//
//	while (i < N) { p[i] += X; p[i+1] += Y; i += 2; }
//
// whose two stores have *overlapping global ranges* ([0,N+1] vs [1,N+2]) —
// the global test fails — but never collide at any single moment: the local
// test (and scev-aa) prove them no-alias.
//
//	go run ./examples/accelerate
package main

import (
	"fmt"

	"repro/internal/alias/scevaa"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/progs"
)

func main() {
	m := progs.Accelerate()
	a := pointer.Analyze(m, pointer.Options{})
	f := m.Func("accelerate")

	fmt.Println("the accelerate function in e-SSA form:")
	fmt.Print(f)

	var stores []*ir.Value
	for _, in := range f.Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in.Args[0])
		}
	}
	tmp0, tmp1 := stores[0], stores[1]

	fmt.Println("\nglobal ranges overlap (the global test must say may-alias):")
	fmt.Printf("  GR(%s) = %s\n", tmp0.Name, a.GR.Value(tmp0))
	fmt.Printf("  GR(%s) = %s\n", tmp1.Name, a.GR.Value(tmp1))
	gans, _ := a.QueryGR(tmp0, tmp1)
	fmt.Printf("  global test: %s\n", gans)

	fmt.Println("\nlocal view (fresh region base per §2's renaming; cf. Fig. 4):")
	fmt.Printf("  LR(%s) = %s\n", tmp0.Name, a.LR.String(tmp0))
	fmt.Printf("  LR(%s) = %s\n", tmp1.Name, a.LR.String(tmp1))
	fmt.Printf("  local test: %s\n", a.QueryLR(tmp0, tmp1))

	ans, why := a.Query(tmp0, tmp1)
	fmt.Printf("\ncombined: %s (%s)\n", ans, why)

	scev := scevaa.New(m)
	fmt.Printf("scev-aa (induction-variable closed forms): %s\n",
		scev.Alias(tmp0, tmp1))
}
