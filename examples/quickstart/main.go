// Quickstart: build a tiny program with the IR builder, run the analysis
// pipeline of Fig. 5, and ask alias queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/ssa"
)

func main() {
	// Build:
	//   func fill(n int) {
	//     buf = malloc(n)
	//     lo = buf          // header: offsets [0, 1]
	//     hi = buf + 2      // payload: offsets [2, ...]
	//     *lo = 1; *(lo+1) = 2; *hi = 3
	//   }
	m := ir.NewModule("quickstart")
	f := m.NewFunc("fill", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	buf := b.Malloc(f.Params[0], "buf")
	lo := b.Copy(buf, "lo")
	lo1 := b.PtrAddConst(lo, 1, "lo1")
	hi := b.PtrAddConst(buf, 2, "hi")
	b.Store(lo, b.Int(1))
	b.Store(lo1, b.Int(2))
	b.Store(hi, b.Int(3))
	b.Ret(nil)

	// The pipeline: e-SSA form, then range + pointer analyses.
	ssa.InsertPi(f)
	a := pointer.Analyze(m, pointer.Options{})

	fmt.Println("program:")
	fmt.Print(m)

	fmt.Println("\nabstract pointer states (GR):")
	for _, v := range []*ir.Value{buf, lo, lo1, hi} {
		fmt.Printf("  GR(%-4s) = %s\n", v.Name, a.GR.Value(v))
	}

	fmt.Println("\nqueries:")
	for _, pair := range [][2]*ir.Value{{lo, hi}, {lo1, hi}, {lo, lo1}, {buf, lo}} {
		ans, why := a.Query(pair[0], pair[1])
		if ans == pointer.NoAlias {
			fmt.Printf("  %-4s vs %-4s: %s (%s)\n", pair[0].Name, pair[1].Name, ans, why)
		} else {
			fmt.Printf("  %-4s vs %-4s: %s\n", pair[0].Name, pair[1].Name, ans)
		}
	}
}
