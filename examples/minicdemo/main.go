// Minicdemo compiles a MiniC program (the paper's Fig. 1 written as source
// text) through the full pipeline — parse, type-check, lower, mem2reg,
// e-SSA — and runs every analysis on the result, demonstrating the
// compiler-frontend path the paper's LLVM implementation used.
//
//	go run ./examples/minicdemo
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/frontend/minic"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/stats"
)

const src = `
// Fig. 1: build a message as [id bytes | payload bytes].
func prepare(p ptr, n int, m ptr) {
  var i ptr = p;
  var e ptr = p + n;
  while (i < e) {
    *i = 0;
    *(i + 1) = 255;
    i = i + 2;
  }
  var f ptr = e + strlen(m);
  while (i < f) {
    *i = *m;
    m = m + 1;
  }
}

func main() int {
  var z int = atoi();
  var b ptr = malloc(z);
  var s ptr = malloc(payloadlen());
  prepare(b, z, s);
  return 0;
}
`

func main() {
	m, err := minic.Compile("fig1", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled module (e-SSA form):")
	ir.Print(os.Stdout, m)

	r := rbaa.New(m, pointer.Options{})
	b := basicaa.New(m)
	s := scevaa.New(m)
	comb := &alias.Combined{Members: []alias.Analysis{r, b}, Label: "r+b"}

	n, counts := alias.Count(m, s, b, r, comb)
	fmt.Printf("\n%d pointer-pair queries:\n\n", n)
	t := stats.NewTable("analysis", "#noalias", "%")
	for _, name := range []string{"scev", "basic", "rbaa", "r+b"} {
		t.Row(name, counts[name], stats.Pct(counts[name], n))
	}
	t.Write(os.Stdout)

	at := r.Attribute(m)
	fmt.Printf("\nrbaa attribution: disjoint-support=%d global-range=%d local-range=%d\n",
		at.DisjointSupport, at.GlobalRange, at.LocalRange)
}
