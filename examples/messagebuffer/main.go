// Messagebuffer reproduces the paper's flagship example (§2, Fig. 1/2):
// a message built as [id bytes | payload bytes], where the two fill loops
// write provably disjoint regions of the same malloc'd buffer. No analysis
// in LLVM 3.5 could prove this; the global symbolic range test can.
//
//	go run ./examples/messagebuffer
package main

import (
	"fmt"

	"repro/internal/alias/basicaa"
	"repro/internal/alias/scevaa"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/progs"
)

func main() {
	m := progs.MessageBuffer()
	a := pointer.Analyze(m, pointer.Options{})
	prepare := m.Func("prepare")

	fmt.Println("the prepare function in e-SSA form (cf. Fig. 7):")
	fmt.Print(prepare)

	fmt.Println("\nGR values of interest (cf. Example 3 and Fig. 12):")
	for _, v := range prepare.Values() {
		if v.Typ == ir.TPtr {
			fmt.Printf("  GR(%-6s) = %s\n", v.Name, a.GR.Value(v))
		}
	}

	var stores []*ir.Value
	for _, in := range prepare.Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in.Args[0])
		}
	}
	fmt.Println("\nthe headline query — store of loop 1 vs store of loop 2:")
	ans, why := a.Query(stores[0], stores[2])
	fmt.Printf("  rbaa:  %s (%s)\n", ans, why)

	basic := basicaa.New(m)
	scev := scevaa.New(m)
	fmt.Printf("  basic: %s\n", basic.Alias(stores[0], stores[2]))
	fmt.Printf("  scev:  %s\n", scev.Alias(stores[0], stores[2]))
	fmt.Println("\n(only the symbolic range analysis separates the two loops)")
}
