// Optimize demonstrates an *optimization client* of the alias analysis:
// redundant-load elimination over a MiniC record-update kernel. The same
// optimizer runs three times — with no alias information, with basicaa, and
// with rbaa — and the interpreter confirms all variants compute the same
// result while the load counts shrink with precision.
//
//	go run ./examples/optimize
package main

import (
	"fmt"
	"log"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/frontend/minic"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/pointer"
)

// The hot loop re-reads the record header *after* storing through a
// symbolically indexed body pointer. The re-read is redundant exactly when
// the optimizer can prove header and body disjoint: the store's offset is
// symbolic (base+i), so basicaa's constant-offset rule cannot help — only
// the symbolic range analysis proves body ∈ rec+[2, n+1] away from the
// header words rec+0 and rec+1.
const src = `
func kernel(n int) int {
  var rec ptr = malloc(n + 2);
  *rec = 10;            // header word 0
  *(rec + 1) = 20;      // header word 1
  var base ptr = rec + 2;
  var i int = 0;
  while (i < n) {
    var h0 int = *rec;
    *(base + i) = h0 + i;       // symbolic store into the body
    var h1 int = *(rec + 1);
    var h2 int = *rec;          // redundant — if the store can't clobber it
    *(base + i) = h0 + h1 + h2 + i;
    i = i + 1;
  }
  var sum int = 0;
  i = 0;
  while (i < n) {
    sum = sum + *(base + i);
    i = i + 1;
  }
  return sum;
}
`

type pessimist struct{}

func (pessimist) Name() string                      { return "none" }
func (pessimist) Alias(_, _ *ir.Value) alias.Result { return alias.MayAlias }

func main() {
	compile := func() *ir.Module {
		m, err := minic.Compile("kernel", src)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	reference, err := interp.New(compile(), interp.Options{}).Run("kernel", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel(10) = %d (reference execution)\n\n", reference)
	fmt.Println("analysis   loads before   eliminated   loads after   result")
	fmt.Println("--------   ------------   ----------   -----------   ------")

	run := func(name string, mk func(m *ir.Module) alias.Analysis) {
		m := compile()
		before := opt.CountLoads(m)
		aa := mk(m)
		n := 0
		for _, f := range m.Funcs {
			n += opt.EliminateRedundantLoads(f, aa)
		}
		got, err := interp.New(m, interp.Options{}).Run("kernel", 10)
		if err != nil {
			log.Fatal(err)
		}
		status := fmt.Sprint(got)
		if got != reference {
			status += "  << WRONG"
		}
		fmt.Printf("%-8s   %12d   %10d   %11d   %s\n",
			name, before, n, opt.CountLoads(m), status)
	}

	run("none", func(m *ir.Module) alias.Analysis { return pessimist{} })
	run("basic", func(m *ir.Module) alias.Analysis { return basicaa.New(m) })
	run("rbaa", func(m *ir.Module) alias.Analysis {
		return rbaa.New(m, pointer.Options{})
	})

	fmt.Println("\nThe header re-reads inside the loop survive under basicaa")
	fmt.Println("(the body store has a *symbolic* offset, beyond its constant-")
	fmt.Println("offset rule) and fold away under the symbolic range analysis.")
}
