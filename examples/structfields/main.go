// Structfields shows the record-field idiom the paper's §1 motivates:
// disambiguating fields within a single allocation, including fields
// addressed through *symbolic* offsets (beyond basicaa's constant-offset
// rule). It compares all three analyses on both flavors.
//
//	go run ./examples/structfields
package main

import (
	"fmt"

	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/ssa"
)

func main() {
	// struct { hdr[2]; body[n]; tail } laid out in one allocation:
	//   s      = malloc(2 + n + 1)
	//   hdr    = s + 0, s + 1        (constant offsets)
	//   body_i = s + 2 + i           (symbolic offsets, 0 ≤ i < n)
	//   tail   = s + 2 + n           (symbolic offset)
	m := ir.NewModule("structfields")
	f := m.NewFunc("init", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")

	b.SetBlock(entry)
	n := f.Params[0]
	size := b.Add(n, b.Int(3), "size")
	s := b.Malloc(size, "s")
	hdr0 := b.PtrAddConst(s, 0, "hdr0")
	hdr1 := b.PtrAddConst(s, 1, "hdr1")
	b.Store(hdr0, b.Int(42))
	b.Store(hdr1, b.Int(43))
	base := b.PtrAddConst(s, 2, "base")
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(ir.TInt, "i")
	c := b.Cmp(ir.PLt, i.Res, n, "c")
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	bi := b.PtrAdd(base, i.Res, "body_i")
	b.Store(bi, b.Int(0))
	i1 := b.Add(i.Res, b.Int(1), "i1")
	b.Br(head)
	ir.AddIncoming(i, b.Int(0), entry)
	ir.AddIncoming(i, i1, body)

	b.SetBlock(exit)
	ni := b.Add(n, b.Int(2), "ni")
	tail := b.PtrAdd(s, ni, "tail")
	b.Store(tail, b.Int(99))
	b.Ret(nil)

	ssa.InsertPi(f)
	r := rbaa.New(m, pointer.Options{})
	basic := basicaa.New(m)
	scev := scevaa.New(m)

	// Find the π-refined store pointer of the body loop.
	var bodyStore *ir.Value
	for _, in := range f.Instrs() {
		if in.Op == ir.OpStore && in.Block.Name == "body" {
			bodyStore = in.Args[0]
		}
	}

	show := func(label string, p, q *ir.Value) {
		fmt.Printf("%-28s rbaa=%-9v basic=%-9v scev=%v\n", label,
			r.Alias(p, q), basic.Alias(p, q), scev.Alias(p, q))
	}
	fmt.Println("field pair                   results")
	fmt.Println("---------------------------  -----------------------------------")
	show("hdr0 vs hdr1 (const)", hdr0, hdr1)
	show("hdr1 vs body[i] (symbolic)", hdr1, bodyStore)
	show("body[i] vs tail (symbolic)", bodyStore, tail)
	show("hdr0 vs tail (mixed)", hdr0, tail)

	fmt.Println("\nGR values:")
	for _, v := range []*ir.Value{hdr0, hdr1, bodyStore, tail} {
		fmt.Printf("  GR(%-7s) = %s\n", v.Name, r.GR.Value(v))
	}
}
