package interp

import (
	"testing"

	"repro/internal/frontend/minic"
	"repro/internal/ir"
	"repro/internal/progs"
)

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
func fib(n int) int {
  var a int = 0;
  var b int = 1;
  var i int = 0;
  while (i < n) {
    var t int = a + b;
    a = b;
    b = t;
    i = i + 1;
  }
  return a;
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	mc := New(m, Options{})
	for _, c := range []struct{ n, want int64 }{{0, 0}, {1, 1}, {2, 1}, {7, 13}, {10, 55}} {
		got, err := mc.Run("fib", c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("fib(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMemoryModel(t *testing.T) {
	src := `
func f(n int) int {
  var p ptr = malloc(n);
  var q ptr = malloc(n);
  *p = 11;
  *q = 22;
  *(p + 1) = 33;
  return *p + *q + *(p + 1);
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(m, Options{}).Run("f", 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 66 {
		t.Errorf("f = %d, want 66", got)
	}
}

func TestDistinctAllocationsGetDistinctSegments(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TInt, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	p := b.Malloc(f.Params[0], "p")
	q := b.Malloc(f.Params[0], "q")
	b.Store(p, b.Int(1))
	b.Store(q, b.Int(2))
	v := b.Load(ir.TInt, p, "v")
	b.Ret(v)
	got, err := New(m, Options{}).Run("f", 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("store to q clobbered p: got %d", got)
	}
}

func TestGlobalsAddressable(t *testing.T) {
	src := `
global tab[8];
func f() int {
  *(tab + 3) = 9;
  return *(tab + 3);
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(m, Options{}).Run("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("global store/load = %d", got)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	src := `
func fact(n int) int {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(m, Options{}).Run("fact", 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 720 {
		t.Errorf("fact(6) = %d", got)
	}
}

func TestStepBudget(t *testing.T) {
	src := `
func spin() int {
  var i int = 0;
  while (i >= 0) { i = i + 1; }
  return i;
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, Options{MaxSteps: 1000}).Run("spin"); err == nil {
		t.Error("infinite loop must exhaust the step budget")
	}
}

func TestDivByZeroError(t *testing.T) {
	src := `func f(a int, b int) int { return a / b; }`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, Options{}).Run("f", 4, 0); err == nil {
		t.Error("division by zero must error")
	}
}

func TestExternIsDeterministic(t *testing.T) {
	if DefaultExtern("strlen", nil) != DefaultExtern("strlen", nil) {
		t.Error("extern model must be deterministic")
	}
	if v := DefaultExtern("atoi", nil); v < 3 || v > 8 {
		t.Errorf("extern value out of range: %d", v)
	}
}

func TestMessageBufferExecutes(t *testing.T) {
	m := progs.MessageBuffer()
	col, err := Observe(m, "main", Options{}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if col.Accesses == 0 {
		t.Error("no accesses traced")
	}
	// The two loops of prepare must never collide, in any sense.
	prepare := m.Func("prepare")
	var stores []*ir.Instr
	for _, in := range prepare.Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	}
	pair := MkPair(stores[0], stores[2])
	if col.Absolute[pair] {
		t.Error("the Fig. 1 loops collided concretely — memory model broken")
	}
}

func TestObserveDetectsCollision(t *testing.T) {
	// Two stores through the same pointer must collide in both senses.
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.TVoid)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	p := b.Malloc(b.Int(4), "p")
	q := b.PtrAddConst(p, 0, "q")
	b.Store(p, b.Int(1))
	b.Store(q, b.Int(2))
	b.Ret(nil)
	col, err := Observe(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s1, s2 *ir.Instr
	for _, in := range f.Instrs() {
		if in.Op == ir.OpStore {
			if s1 == nil {
				s1 = in
			} else {
				s2 = in
			}
		}
	}
	if !col.Absolute[MkPair(s1, s2)] {
		t.Error("absolute collision missed")
	}
	if !col.SameMoment[MkPair(s1, s2)] {
		t.Error("same-moment collision missed")
	}
}

func TestPerMomentResetsPerIteration(t *testing.T) {
	// p[i] and p[i+1] with stride 2: collide across iterations NEVER (even
	// absolutely, thanks to parity); with stride 1 they collide absolutely
	// but not within one iteration.
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.TVoid)
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	b.SetBlock(entry)
	p := b.Malloc(b.Int(10), "p")
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.TInt, "i")
	c := b.Cmp(ir.PLt, i.Res, b.Int(6), "c")
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	q0 := b.PtrAdd(p, i.Res, "q0")
	b.Store(q0, b.Int(1))
	i1 := b.Add(i.Res, b.Int(1), "i1")
	q1 := b.PtrAdd(p, i1, "q1")
	b.Store(q1, b.Int(2))
	inext := b.Add(i.Res, b.Int(1), "inext")
	b.Br(head)
	ir.AddIncoming(i, b.Int(0), entry)
	ir.AddIncoming(i, inext, body)
	b.SetBlock(exit)
	b.Ret(nil)

	col, err := Observe(m, "main", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s1, s2 *ir.Instr
	for _, in := range f.Instrs() {
		if in.Op == ir.OpStore {
			if s1 == nil {
				s1 = in
			} else {
				s2 = in
			}
		}
	}
	pair := MkPair(s1, s2)
	if !col.Absolute[pair] {
		t.Error("stride-1 lanes must collide across iterations")
	}
	if col.SameMoment[pair] {
		t.Error("stride-1 lanes must NOT collide within one iteration")
	}
}
