package interp

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/andersen"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/progs"
)

// checkModule executes entry(args) under the collision tracer and verifies
// every analysis verdict against the concrete run:
//
//   - pairs that collided *absolutely* (same address, any two moments) must
//     not be no-alias under the absolute tests: support disjointness and
//     the global range test (QueryGR), and basicaa;
//   - pairs that collided *within one block instance* (the same moment)
//     must not be no-alias under any test, including the local one and
//     scev-aa (whose no-alias contract is per-moment; see §4).
//
// The address operands of the colliding accesses are what the analyses are
// queried about.
func checkModule(t *testing.T, m *ir.Module, entry string, args ...int64) (pairs int) {
	t.Helper()
	col, err := Observe(m, entry, Options{MaxSteps: 1 << 22}, args...)
	if err != nil {
		t.Fatalf("%s: execution failed: %v", m.Name, err)
	}
	pt := andersen.Analyze(m)
	r := rbaa.New(m, pointer.Options{})
	rRefined := rbaa.New(m, pointer.Options{PointsTo: pt})
	b := basicaa.New(m)
	s := scevaa.New(m)

	addrOf := func(in *ir.Instr) *ir.Value { return in.Args[0] }

	for pair := range col.Absolute {
		p, q := addrOf(pair.A), addrOf(pair.B)
		if p == q {
			continue
		}
		pairs++
		if ans, why := r.QueryGR(p, q); ans == pointer.NoAlias {
			t.Errorf("%s: UNSOUND global test (%s): %s and %s collided concretely\n  GR(p)=%s\n  GR(q)=%s",
				m.Name, why, pair.A, pair.B, r.GR.Value(p), r.GR.Value(q))
		}
		if ans, why := rRefined.QueryGR(p, q); ans == pointer.NoAlias {
			t.Errorf("%s: UNSOUND points-to-refined global test (%s): %s and %s collided concretely",
				m.Name, why, pair.A, pair.B)
		}
		if b.Alias(p, q) == alias.NoAlias {
			t.Errorf("%s: UNSOUND basicaa: %s and %s collided concretely",
				m.Name, pair.A, pair.B)
		}
		if pt.Alias(p, q) == alias.NoAlias {
			t.Errorf("%s: UNSOUND andersen: %s and %s collided concretely",
				m.Name, pair.A, pair.B)
		}
	}
	for pair := range col.SameMoment {
		p, q := addrOf(pair.A), addrOf(pair.B)
		if p == q {
			continue
		}
		pairs++
		if ans, why := r.Query(p, q); ans == pointer.NoAlias {
			t.Errorf("%s: UNSOUND combined test (%s): %s and %s collided in the same moment\n  LR(p)=%s\n  LR(q)=%s",
				m.Name, why, pair.A, pair.B, r.LR.String(p), r.LR.String(q))
		}
		if s.Alias(p, q) == alias.NoAlias {
			t.Errorf("%s: UNSOUND scev-aa: %s and %s collided in the same moment",
				m.Name, pair.A, pair.B)
		}
	}
	return pairs
}

func TestDifferentialPaperPrograms(t *testing.T) {
	checkModule(t, progs.MessageBuffer(), "main", 2, 0)
	checkModule(t, progs.Fig10(), "diamond", 1)
	checkModule(t, progs.Fig10(), "diamond", 0)
	checkModule(t, progs.TwoBuffers(), "fill", 6)
	checkModule(t, progs.StructFields(), "init")

	// Accelerate with an even and an odd trip count.
	for _, n := range []int64{6, 7} {
		m := progs.Accelerate()
		checkModule(t, m, "accelerate", 0, 5, 7, n)
	}
}

func TestDifferentialGeneratedSuite(t *testing.T) {
	// Run a slice of the Fig. 13 corpus concretely. The drivers' extern
	// call (atoi) determines buffer sizes via the deterministic model.
	checked := 0
	for _, c := range benchgen.Fig13Configs()[:6] {
		m := benchgen.Generate(c)
		checked += checkModule(t, m, "main")
	}
	if checked == 0 {
		t.Fatal("differential suite observed no colliding pairs — tracer broken?")
	}
}

func TestDifferentialGeneratedVariedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(500); seed < 512; seed++ {
		m := benchgen.Generate(benchgen.Config{
			Name: "dseed", Seed: seed, Workers: 12,
			Mix: benchgen.Mix{Message: 2, Stride: 2, Fields: 2, MultiObj: 2,
				Chase: 1, Soup: 1, Cond: 1, Local: 1},
		})
		checkModule(t, m, "main")
	}
}
