package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/ssa"
)

// TestGaloisConsistencyRandomPrograms is the abstraction check DESIGN.md §6
// promises: on randomly generated straight-line pointer programs, every
// concretely observed address of a pointer lies inside γ(GR(p)) —
// i.e. GR names the right allocation site and its symbolic interval,
// evaluated under the run's kernel-symbol valuation, contains the concrete
// offset (Definition 3 of the paper).
func TestGaloisConsistencyRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		m := ir.NewModule(fmt.Sprintf("gal%d", trial))
		f := m.NewFunc("main", ir.TVoid)
		b := ir.NewBuilder(f)
		blk := b.Block("entry")
		b.SetBlock(blk)

		// One kernel symbol: the extern length (concrete value fixed by
		// DefaultExtern).
		n := b.Extern("len", ir.TInt, "n")
		nConcrete := DefaultExtern("len", nil)

		// Random pointer dataflow over a handful of allocations.
		nAllocs := 1 + rng.Intn(3)
		var pool []*ir.Value
		for k := 0; k < nAllocs; k++ {
			pool = append(pool, b.Malloc(n, fmt.Sprintf("a%d", k)))
		}
		ints := []*ir.Value{b.Int(0), b.Int(1), b.Int(int64(rng.Intn(5))), n}
		for step := 0; step < 10; step++ {
			src := pool[rng.Intn(len(pool))]
			var v *ir.Value
			switch rng.Intn(4) {
			case 0:
				v = b.Copy(src, "c")
			case 1:
				idx := ints[rng.Intn(len(ints))]
				v = b.PtrAdd(src, idx, "p")
			case 2:
				// Derived integer: sum of two picks.
				x := b.Add(ints[rng.Intn(len(ints))], ints[rng.Intn(len(ints))], "x")
				ints = append(ints, x)
				v = b.PtrAdd(src, x, "p")
			default:
				// Offsets stay non-negative: negative offsets are
				// out-of-bounds UB, which the no-UB soundness contract
				// (and the segmented memory model) excludes.
				v = b.PtrAdd(src, b.Int(int64(rng.Intn(5))), "p")
			}
			pool = append(pool, v)
			b.Store(v, b.Int(int64(step)))
		}
		b.Ret(nil)
		ssa.InsertPi(f)

		a := pointer.Analyze(m, pointer.Options{})
		col := 0
		opts := Options{}
		opts.Trace = func(acc Access) {
			col++
			v := acc.Instr.Args[0]
			seg := Segment(acc.Addr)
			if seg == 0 {
				return
			}
			// Straight-line main: allocation k executes k-th, so segment
			// seg corresponds to site seg−1 (no globals in this module).
			site := int(seg - 1)
			off := acc.Addr - seg<<32
			g := a.GR.Value(v)
			if g.IsTop() {
				return // trivially consistent
			}
			r, ok := g.Get(site)
			if !ok {
				t.Fatalf("trial %d: %s concretely in site %d but GR = %s\n%s",
					trial, v, site, g, f)
			}
			env := map[string]int64{"main.n": nConcrete}
			if lo, ok := r.Lo().Eval(env); ok && off < lo {
				t.Fatalf("trial %d: %s at offset %d below GR bound %s\n%s",
					trial, v, off, r, f)
			}
			if hi, ok := r.Hi().Eval(env); ok && off > hi {
				t.Fatalf("trial %d: %s at offset %d above GR bound %s\n%s",
					trial, v, off, r, f)
			}
		}
		mc := New(m, opts)
		if _, err := mc.Run("main"); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if col == 0 {
			t.Fatalf("trial %d: no accesses traced", trial)
		}
	}
}

// TestGaloisConsistencyWithBranches repeats the check on programs with a
// conditional over the kernel symbol, exercising the π rules concretely.
func TestGaloisConsistencyWithBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		m := ir.NewModule(fmt.Sprintf("galb%d", trial))
		f := m.NewFunc("main", ir.TVoid)
		b := ir.NewBuilder(f)
		entry := b.Block("entry")
		lo := b.Block("lo")
		hi := b.Block("hi")
		exit := b.Block("exit")

		b.SetBlock(entry)
		n := b.Extern("len", ir.TInt, "n")
		nConcrete := DefaultExtern("len", nil)
		buf := b.Malloc(n, "buf")
		k := b.Int(int64(rng.Intn(8)))
		c := b.Cmp(ir.PLt, k, n, "c")
		b.CondBr(c, lo, hi)

		b.SetBlock(lo)
		p1 := b.PtrAdd(buf, k, "p1")
		b.Store(p1, b.Int(1))
		b.Br(exit)

		b.SetBlock(hi)
		p2 := b.PtrAdd(buf, n, "p2")
		b.Store(p2, b.Int(2))
		b.Br(exit)

		b.SetBlock(exit)
		b.Ret(nil)
		ssa.InsertPi(f)

		a := pointer.Analyze(m, pointer.Options{})
		opts := Options{}
		opts.Trace = func(acc Access) {
			seg := Segment(acc.Addr)
			if seg == 0 {
				return
			}
			v := acc.Instr.Args[0]
			off := acc.Addr - seg<<32
			g := a.GR.Value(v)
			if g.IsTop() {
				return
			}
			r, ok := g.Get(int(seg - 1))
			if !ok {
				t.Fatalf("trial %d: missing site component: GR = %s", trial, g)
			}
			env := map[string]int64{"main.n": nConcrete}
			if loV, ok := r.Lo().Eval(env); ok && off < loV {
				t.Fatalf("trial %d: offset %d below %s", trial, off, r)
			}
			if hiV, ok := r.Hi().Eval(env); ok && off > hiV {
				t.Fatalf("trial %d: offset %d above %s", trial, off, r)
			}
		}
		if _, err := New(m, opts).Run("main"); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
