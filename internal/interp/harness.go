package interp

import (
	"fmt"

	"repro/internal/ir"
)

// Collisions is what the differential harness extracts from one execution:
// which pairs of memory-access instructions touched a common address, both
// ever (absolute) and within one execution instance of a shared block
// (per-moment). Null-segment accesses are excluded from both (dereferencing
// null is undefined behaviour, outside the paper's soundness contract).
type Collisions struct {
	// Absolute[pair] — the two instructions touched the same address at
	// some (possibly different) points of the run.
	Absolute map[InstrPair]bool
	// SameMoment[pair] — the two instructions touched the same address
	// during the same dynamic execution of their (shared) basic block.
	SameMoment map[InstrPair]bool
	// Accesses counts traced, non-null accesses.
	Accesses int
}

// InstrPair is an unordered pair of instructions.
type InstrPair struct {
	A, B *ir.Instr
}

// MkPair normalizes pair order (pointer identity is stable within a run).
func MkPair(a, b *ir.Instr) InstrPair {
	if fmt.Sprintf("%p", a) > fmt.Sprintf("%p", b) {
		a, b = b, a
	}
	return InstrPair{a, b}
}

// Observe runs entry(args) under tracing and returns the collision record.
func Observe(m *ir.Module, entry string, opts Options, args ...int64) (*Collisions, error) {
	col := &Collisions{
		Absolute:   map[InstrPair]bool{},
		SameMoment: map[InstrPair]bool{},
	}
	// Absolute: address → instructions that ever touched it.
	byAddr := map[int64]map[*ir.Instr]bool{}
	// Per-moment: the accesses of the current execution instance of each
	// block (reset when the block is re-entered). Keyed per block because
	// recursion/interleaving across functions cannot interleave a *single*
	// block's body.
	cur := map[*ir.Block]map[int64][]*ir.Instr{}

	opts.BlockEvent = func(b *ir.Block) {
		cur[b] = map[int64][]*ir.Instr{}
	}
	opts.Trace = func(a Access) {
		if Segment(a.Addr) == 0 {
			return
		}
		col.Accesses++
		set := byAddr[a.Addr]
		if set == nil {
			set = map[*ir.Instr]bool{}
			byAddr[a.Addr] = set
		}
		for other := range set {
			if other != a.Instr {
				col.Absolute[MkPair(other, a.Instr)] = true
			}
		}
		set[a.Instr] = true

		blk := a.Instr.Block
		inst := cur[blk]
		if inst == nil {
			inst = map[int64][]*ir.Instr{}
			cur[blk] = inst
		}
		for _, other := range inst[a.Addr] {
			if other != a.Instr {
				col.SameMoment[MkPair(other, a.Instr)] = true
			}
		}
		inst[a.Addr] = append(inst[a.Addr], a.Instr)
	}

	mc := New(m, opts)
	if _, err := mc.Run(entry, args...); err != nil {
		return nil, err
	}
	return col, nil
}
