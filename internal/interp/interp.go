// Package interp is a concrete interpreter for the IR: it executes modules
// under a segmented memory model and reports every memory access to a
// tracer. Its purpose is *differential testing* of the alias analyses — the
// harness in this package runs programs concretely and checks that no pair
// of accesses declared no-alias ever touches a common address (for the
// absolute tests: support disjointness, the global range test, basicaa) or
// touches a common address in the same instant of the same block execution
// (for the per-moment tests: the local test and scev-aa; see §4 of the
// paper on what the local test's no-alias means).
//
// Memory model. Every dynamic allocation opens a fresh segment: addresses
// are base<<32 | offset, so distinct objects are 2^32 units apart and an
// out-of-bounds offset never lands in another object — which is exactly the
// no-undefined-behaviour assumption the paper's soundness statement relies
// on. Segment 0 is the null segment; accesses through it are tolerated by
// the interpreter (memory is a sparse map) but excluded from soundness
// verdicts, again mirroring the posture that analyses owe nothing to
// programs that dereference null.
package interp

import (
	"fmt"

	"repro/internal/ir"
)

const segShift = 32

// Access describes one dynamic memory access.
type Access struct {
	Instr *ir.Instr // the load or store
	Addr  int64
	Store bool
}

// Options configure an execution.
type Options struct {
	// MaxSteps bounds the total number of executed instructions (default
	// 1<<20); exceeding it returns an error.
	MaxSteps int
	// MaxDepth bounds the call stack (default 256).
	MaxDepth int
	// Extern models library calls. The default returns small deterministic
	// positive values keyed by symbol name, so loops bounded by atoi/strlen
	// results terminate quickly.
	Extern func(sym string, args []int64) int64
	// Trace, when set, observes every load and store.
	Trace func(Access)
	// BlockEvent, when set, fires when a basic block begins executing; used
	// by the per-moment collision detector.
	BlockEvent func(b *ir.Block)
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 256
	}
	if o.Extern == nil {
		o.Extern = DefaultExtern
	}
	return o
}

// DefaultExtern returns small deterministic values per symbol so generated
// programs terminate: sizes/lengths in [3, 8].
func DefaultExtern(sym string, args []int64) int64 {
	h := int64(0)
	for _, c := range []byte(sym) {
		h = h*31 + int64(c)
	}
	if h < 0 {
		h = -h
	}
	return 3 + h%6
}

// Machine executes a module.
type Machine struct {
	mod   *ir.Module
	opts  Options
	mem   map[int64]int64
	size  map[int64]int64 // segment base → allocated size
	next  int64           // next segment number
	steps int
}

// New prepares a machine; globals get their segments immediately.
func New(m *ir.Module, opts Options) *Machine {
	mc := &Machine{
		mod:  m,
		opts: opts.withDefaults(),
		mem:  map[int64]int64{},
		size: map[int64]int64{},
		next: 1, // segment 0 is the null segment
	}
	for _, g := range m.Globals {
		mc.size[mc.next<<segShift] = g.Size
		mc.gbase(g) // allocate deterministically in declaration order
	}
	return mc
}

func (mc *Machine) gbase(g *ir.Global) int64 {
	// Globals occupy segments 1..len(globals) in declaration order.
	for i, gg := range mc.mod.Globals {
		if gg == g {
			return int64(i+1) << segShift
		}
	}
	panic("interp: foreign global")
}

func (mc *Machine) alloc(size int64) int64 {
	// Skip the segments reserved for globals.
	if mc.next <= int64(len(mc.mod.Globals)) {
		mc.next = int64(len(mc.mod.Globals)) + 1
	}
	base := mc.next << segShift
	mc.next++
	if size < 0 {
		size = 0
	}
	mc.size[base] = size
	return base
}

// Run calls the named function with the given arguments and returns its
// result (0 for void).
func (mc *Machine) Run(fname string, args ...int64) (int64, error) {
	f := mc.mod.Func(fname)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %q", fname)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", fname, len(f.Params), len(args))
	}
	return mc.call(f, args, 0)
}

func (mc *Machine) call(f *ir.Func, args []int64, depth int) (int64, error) {
	if depth > mc.opts.MaxDepth {
		return 0, fmt.Errorf("interp: call depth exceeded in %s", f.Name)
	}
	frame := map[*ir.Value]int64{}
	for i, p := range f.Params {
		frame[p] = args[i]
	}
	get := func(v *ir.Value) int64 {
		switch v.Kind {
		case ir.VConst:
			return v.Const
		case ir.VGlobal:
			return mc.gbase(v.Gbl)
		default:
			return frame[v]
		}
	}
	block := f.Entry()
	var prev *ir.Block
	for {
		if mc.opts.BlockEvent != nil {
			mc.opts.BlockEvent(block)
		}
		// Two-phase φ evaluation: all φs read the predecessor frame.
		phis := block.Phis()
		if len(phis) > 0 {
			vals := make([]int64, len(phis))
			for i, phi := range phis {
				found := false
				for k, from := range phi.In {
					if from == prev {
						vals[i] = get(phi.Args[k])
						found = true
						break
					}
				}
				if !found {
					return 0, fmt.Errorf("interp: φ in %s.%s has no incoming from %v",
						f.Name, block.Name, prev)
				}
			}
			for i, phi := range phis {
				frame[phi.Res] = vals[i]
			}
		}
		for _, in := range block.Body() {
			if mc.steps++; mc.steps > mc.opts.MaxSteps {
				return 0, fmt.Errorf("interp: step budget exhausted in %s", f.Name)
			}
			switch in.Op {
			case ir.OpCopy, ir.OpPi:
				frame[in.Res] = get(in.Args[0])
			case ir.OpAdd:
				frame[in.Res] = get(in.Args[0]) + get(in.Args[1])
			case ir.OpSub:
				frame[in.Res] = get(in.Args[0]) - get(in.Args[1])
			case ir.OpMul:
				frame[in.Res] = get(in.Args[0]) * get(in.Args[1])
			case ir.OpDiv:
				d := get(in.Args[1])
				if d == 0 {
					return 0, fmt.Errorf("interp: division by zero in %s", f.Name)
				}
				frame[in.Res] = get(in.Args[0]) / d
			case ir.OpRem:
				d := get(in.Args[1])
				if d == 0 {
					return 0, fmt.Errorf("interp: modulo by zero in %s", f.Name)
				}
				frame[in.Res] = get(in.Args[0]) % d
			case ir.OpCmp:
				a, b := get(in.Args[0]), get(in.Args[1])
				frame[in.Res] = b2i(holds(in.Pred, a, b))
			case ir.OpAlloc:
				frame[in.Res] = mc.alloc(get(in.Args[0]))
			case ir.OpFree:
				frame[in.Res] = get(in.Args[0])
			case ir.OpPtrAdd:
				frame[in.Res] = get(in.Args[0]) + get(in.Args[1])
			case ir.OpLoad:
				addr := get(in.Args[0])
				if mc.opts.Trace != nil {
					mc.opts.Trace(Access{Instr: in, Addr: addr})
				}
				frame[in.Res] = mc.mem[addr]
			case ir.OpStore:
				addr := get(in.Args[0])
				if mc.opts.Trace != nil {
					mc.opts.Trace(Access{Instr: in, Addr: addr, Store: true})
				}
				mc.mem[addr] = get(in.Args[1])
			case ir.OpCall:
				cargs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					cargs[i] = get(a)
				}
				r, err := mc.call(in.Callee, cargs, depth+1)
				if err != nil {
					return 0, err
				}
				if in.Res != nil {
					frame[in.Res] = r
				}
			case ir.OpExtern:
				cargs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					cargs[i] = get(a)
				}
				r := mc.opts.Extern(in.Sym, cargs)
				if in.Res != nil {
					frame[in.Res] = r
				}
			case ir.OpBr:
				// handled below as terminator
			case ir.OpCondBr:
			case ir.OpRet:
			}
		}
		term := block.Term()
		switch term.Op {
		case ir.OpBr:
			prev, block = block, term.Targets[0]
		case ir.OpCondBr:
			prev = block
			if get(term.Args[0]) != 0 {
				block = term.Targets[0]
			} else {
				block = term.Targets[1]
			}
		case ir.OpRet:
			if len(term.Args) == 1 {
				return get(term.Args[0]), nil
			}
			return 0, nil
		default:
			return 0, fmt.Errorf("interp: block %s.%s not terminated", f.Name, block.Name)
		}
	}
}

func holds(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PEq:
		return a == b
	case ir.PNe:
		return a != b
	case ir.PLt:
		return a < b
	case ir.PLe:
		return a <= b
	case ir.PGt:
		return a > b
	default:
		return a >= b
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Segment extracts the segment number of an address (0 = null segment).
func Segment(addr int64) int64 { return addr >> segShift }
