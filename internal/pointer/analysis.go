package pointer

import (
	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/rangeanal"
)

// AliasAnswer is the outcome of a disambiguation query.
type AliasAnswer uint8

// Query outcomes.
const (
	MayAlias AliasAnswer = iota
	NoAlias
)

// String renders the answer.
func (a AliasAnswer) String() string {
	if a == NoAlias {
		return "no-alias"
	}
	return "may-alias"
}

// Reason attributes a no-alias answer to the test that produced it — the
// classification behind Fig. 14.
type Reason uint8

// Attribution of no-alias answers.
const (
	ReasonNone            Reason = iota
	ReasonDisjointSupport        // supports share no allocation site
	ReasonGlobalRange            // common sites, provably disjoint ranges (the "global test")
	ReasonLocalRange             // same local base, disjoint local ranges (the "local test")
)

// String renders the attribution.
func (r Reason) String() string {
	switch r {
	case ReasonDisjointSupport:
		return "disjoint-support"
	case ReasonGlobalRange:
		return "global-range"
	case ReasonLocalRange:
		return "local-range"
	}
	return "none"
}

// Analysis bundles the three phases of Fig. 5: the bootstrap integer range
// analysis, the global pointer analysis and the local pointer analysis,
// plus the query engine.
type Analysis struct {
	Mod  *ir.Module
	R    *rangeanal.Result
	GR   *GRResult
	LR   *LRResult
	Opts Options
}

// Analyze runs the full pipeline of Fig. 5 on a module already in e-SSA
// form (run ssa.InsertPi first; frontends do this automatically).
//
// Concurrency contract: the returned Analysis is immutable. All query
// methods (Query, QueryGR, QueryLR, Alias, SymbolicOnlyRatio) are pure
// reads over state fixed at construction — AnalyzeLR eagerly binds every
// root of the module so no lazy memoization remains — and are therefore
// safe to call from any number of goroutines without synchronization, for
// values of m's functions (parameters, instruction results, operands),
// its globals, and the interned null constant. Querying values of a
// *different* module, or pointer constants created after Analyze, is not
// part of the contract.
func Analyze(m *ir.Module, opts Options) *Analysis {
	opts = opts.withDefaults()
	R := rangeanal.Analyze(m, opts.Range)
	gr := AnalyzeGR(m, R, opts)
	lr := AnalyzeLR(m, R, opts)
	return &Analysis{Mod: m, R: R, GR: gr, LR: lr, Opts: opts}
}

// QueryGR is Q_GR of §3.5: no-alias when the supports are disjoint, or when
// every commonly supported component pair has a provably empty intersection
// (Proposition 2).
func (a *Analysis) QueryGR(p, q *ir.Value) (AliasAnswer, Reason) {
	gp, gq := a.GR.Value(p), a.GR.Value(q)
	if gp.IsTop() || gq.IsTop() {
		return MayAlias, ReasonNone
	}
	common, disjoint := disjointRanges(gp, gq)
	if !disjoint {
		return MayAlias, ReasonNone
	}
	if !common {
		return NoAlias, ReasonDisjointSupport
	}
	return NoAlias, ReasonGlobalRange
}

// QueryLR is Q_LR of §3.7: no-alias when both pointers share a local base
// location and their offset ranges are provably disjoint.
func (a *Analysis) QueryLR(p, q *ir.Value) AliasAnswer {
	lp, rp := a.LR.Loc(p)
	lq, rq := a.LR.Loc(q)
	if lp == lq && interval.ProvablyDisjoint(rp, rq) {
		return NoAlias
	}
	return MayAlias
}

// Query combines the tests (Fig. 5): the global and local tests are
// complementary — "one is not a superset of the other" (§2) — so a pair is
// no-alias if either succeeds. The returned Reason attributes the answer
// for the Fig. 14 accounting (support disjointness, then the global range
// test, then the local test). Query is a pure read and safe for concurrent
// use (see Analyze).
func (a *Analysis) Query(p, q *ir.Value) (AliasAnswer, Reason) {
	if ans, why := a.QueryGR(p, q); ans == NoAlias {
		return NoAlias, why
	}
	if a.QueryLR(p, q) == NoAlias {
		return NoAlias, ReasonLocalRange
	}
	return MayAlias, ReasonNone
}

// Alias implements the alias.Analysis interface (may/no only).
func (a *Analysis) Alias(p, q *ir.Value) AliasAnswer {
	ans, _ := a.Query(p, q)
	return ans
}

// Name identifies the analysis in reports ("rbaa" in Fig. 13).
func (a *Analysis) Name() string { return "rbaa" }

// SymbolicOnlyRatio classifies every pointer in the module as having
// exclusively symbolic ranges or not — the §5 measurement (paper: 20.47%).
// The denominator counts pointers with a non-trivial GR value (not ⊥/⊤).
func (a *Analysis) SymbolicOnlyRatio() (symbolicOnly, total int) {
	for _, f := range a.Mod.Funcs {
		for _, v := range f.Values() {
			if v.Typ != ir.TPtr {
				continue
			}
			g := a.GR.Value(v)
			if g.IsTop() || g.IsBottom() {
				continue
			}
			total++
			if g.SymbolicOnly() {
				symbolicOnly++
			}
		}
	}
	return symbolicOnly, total
}
