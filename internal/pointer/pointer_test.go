package pointer

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/symbolic"
)

// findVal locates a value by (unique) name in a function.
func findVal(t *testing.T, f *ir.Func, name string) *ir.Value {
	t.Helper()
	for _, v := range f.Values() {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("value %s not found in %s:\n%s", name, f.Name, f)
	return nil
}

// storePtrs returns the address operands of all stores in a function, in
// block order.
func storePtrs(f *ir.Func) []*ir.Value {
	var out []*ir.Value
	for _, in := range f.Instrs() {
		if in.Op == ir.OpStore {
			out = append(out, in.Args[0])
		}
	}
	return out
}

// TestMessageBufferGlobalDisambiguation is the paper's flagship claim (§2,
// Fig. 1/2): the store of the first loop covers loc0+[0, N−1], the store of
// the second covers loc0+[N, …], and the global test proves them no-alias.
func TestMessageBufferGlobalDisambiguation(t *testing.T) {
	m := progs.MessageBuffer()
	a := Analyze(m, Options{})
	prepare := m.Func("prepare")

	stores := storePtrs(prepare)
	if len(stores) != 3 {
		t.Fatalf("want 3 stores in prepare, got %d", len(stores))
	}
	loop1Store := stores[0]  // *i = 0
	loop1Store2 := stores[1] // *(i+1) = 0xFF
	loop2Store := stores[2]  // *i = *m

	// Example 3 checks: GR(p) = {loc0 + [0,0]}, GR(e) = {loc0 + [N,N]}.
	p := prepare.Params[0]
	gp := a.GR.Value(p)
	if gp.String() != "{loc0 + [0, 0]}" {
		t.Errorf("GR(p) = %s, want {loc0 + [0, 0]}", gp)
	}
	e := findVal(t, prepare, "e")
	ge := a.GR.Value(e)
	nsym := symbolic.Sym("prepare.N")
	if r, ok := ge.Get(0); !ok || !interval.Equal(r, interval.Point(nsym)) {
		t.Errorf("GR(e) = %s, want {loc0 + [N, N]}", ge)
	}
	if _, ok := ge.Get(1); ok {
		t.Errorf("GR(e) must be ⊥ at loc1, got %s", ge)
	}
	// GR(m) = {loc1 + [0,0]}.
	gm := a.GR.Value(prepare.Params[2])
	if gm.String() != "{loc1 + [0, 0]}" {
		t.Errorf("GR(m) = %s, want {loc1 + [0, 0]}", gm)
	}

	// Store pointer of loop 1: within [0, N−1] at loc0.
	g1 := a.GR.Value(loop1Store)
	r1, ok := g1.Get(0)
	if !ok {
		t.Fatalf("loop1 store GR = %s, want loc0 component", g1)
	}
	if !symbolic.Compare(r1.Hi(), symbolic.AddConst(nsym, -1)).ProvesLE() {
		t.Errorf("loop1 store range = %s, want hi ≤ N−1", r1)
	}
	// Store pointer of loop 2: lower bound ≥ N at loc0.
	g2 := a.GR.Value(loop2Store)
	r2, ok := g2.Get(0)
	if !ok {
		t.Fatalf("loop2 store GR = %s, want loc0 component", g2)
	}
	if !symbolic.Compare(r2.Lo(), nsym).ProvesGE() {
		t.Errorf("loop2 store range = %s, want lo ≥ N", r2)
	}

	// The headline query.
	ans, why := a.Query(loop1Store, loop2Store)
	if ans != NoAlias {
		t.Fatalf("loop1 vs loop2 store: %s (GR %s vs %s), want no-alias",
			ans, g1, g2)
	}
	if why != ReasonGlobalRange {
		t.Errorf("attribution = %s, want global-range", why)
	}

	// The second store of loop 1 (offset +1, range hi = N) overlaps loop 2's
	// lower bound N: the global test must (soundly) answer may-alias.
	if ans, _ := a.QueryGR(loop1Store2, loop2Store); ans != MayAlias {
		t.Errorf("t0 vs loop2 store: got no-alias; intervals [1,N] and [N,…] touch at N")
	}

	// m-pointer store (loc1) vs message-buffer stores (loc0): disjoint
	// support. m is only loaded, not stored, so query the load address.
	var loadM *ir.Value
	for _, in := range prepare.Instrs() {
		if in.Op == ir.OpLoad {
			loadM = in.Args[0]
		}
	}
	if loadM != nil {
		ans, why := a.Query(loadM, loop1Store)
		if ans != NoAlias || why != ReasonDisjointSupport {
			t.Errorf("m vs loop1 store: %s/%s, want no-alias/disjoint-support", ans, why)
		}
	}
}

// TestAccelerateLocalDisambiguation is §2's second claim (Fig. 3/4): p[i]
// and p[i+1] have overlapping global ranges but the local test separates
// them.
func TestAccelerateLocalDisambiguation(t *testing.T) {
	m := progs.Accelerate()
	a := Analyze(m, Options{})
	f := m.Func("accelerate")
	stores := storePtrs(f)
	if len(stores) != 2 {
		t.Fatalf("want 2 stores, got %d", len(stores))
	}
	tmp0, tmp1 := stores[0], stores[1]

	// Global test fails: [0, N+1]-ish vs [1, N+2]-ish overlap.
	if ans, _ := a.QueryGR(tmp0, tmp1); ans != MayAlias {
		t.Errorf("global test should not separate p[i] from p[i+1] (GR %s vs %s)",
			a.GR.Value(tmp0), a.GR.Value(tmp1))
	}
	// Local test succeeds: same base (param p's local loc), offsets [i,i]
	// vs [i+1,i+1]… after the π both offsets are expressions of i with a
	// constant gap of 1.
	if ans := a.QueryLR(tmp0, tmp1); ans != NoAlias {
		lp, rp := a.LR.Loc(tmp0)
		lq, rq := a.LR.Loc(tmp1)
		t.Fatalf("local test failed: loc%d+%s vs loc%d+%s", lp, rp, lq, rq)
	}
	// Combined query attributes to the local test.
	ans, why := a.Query(tmp0, tmp1)
	if ans != NoAlias || why != ReasonLocalRange {
		t.Errorf("combined = %s/%s, want no-alias/local-range", ans, why)
	}
}

// TestFig10 reproduces Fig. 10 exactly: GR cannot separate a4 = a3+1 from
// a5 = a3+2 (ranges [1,2] and [2,3] overlap at loc0), the local analysis
// can (fresh φ location, [1,1] vs [2,2]).
func TestFig10(t *testing.T) {
	m := progs.Fig10()
	a := Analyze(m, Options{})
	f := m.Func("diamond")
	a1 := findVal(t, f, "a1")
	a2 := findVal(t, f, "a2")
	a3 := findVal(t, f, "a3")
	a4 := findVal(t, f, "a4")
	a5 := findVal(t, f, "a5")

	// Global column of Fig. 10.
	for _, c := range []struct {
		v    *ir.Value
		want string
	}{
		{a1, "{loc0 + [0, 0]}"},
		{a2, "{loc0 + [1, 1]}"},
		{a3, "{loc0 + [0, 1]}"},
		{a4, "{loc0 + [1, 2]}"},
		{a5, "{loc0 + [2, 3]}"},
	} {
		if got := a.GR.Value(c.v); got.String() != c.want {
			t.Errorf("GR(%s) = %s, want %s", c.v.Name, got, c.want)
		}
	}
	if ans, _ := a.QueryGR(a4, a5); ans != MayAlias {
		t.Errorf("global test must fail on a4 vs a5 (path insensitivity)")
	}

	// Local column: a3 gets a fresh loc with [0,0]; a4, a5 offset it.
	l3, r3 := a.LR.Loc(a3)
	l4, r4 := a.LR.Loc(a4)
	l5, r5 := a.LR.Loc(a5)
	if l4 != l3 || l5 != l3 {
		t.Fatalf("a4/a5 must share a3's fresh location: %d, %d, %d", l3, l4, l5)
	}
	if !interval.Equal(r3, interval.ConstPoint(0)) ||
		!interval.Equal(r4, interval.ConstPoint(1)) ||
		!interval.Equal(r5, interval.ConstPoint(2)) {
		t.Errorf("LR ranges = %s, %s, %s; want [0,0], [1,1], [2,2]", r3, r4, r5)
	}
	ans, why := a.Query(a4, a5)
	if ans != NoAlias || why != ReasonLocalRange {
		t.Errorf("a4 vs a5 = %s/%s, want no-alias/local-range", ans, why)
	}
	// a1 vs a2 is solved globally ([0,0] vs [1,1]).
	if ans, why := a.Query(a1, a2); ans != NoAlias || why != ReasonGlobalRange {
		t.Errorf("a1 vs a2 = %s/%s, want no-alias/global-range", ans, why)
	}
}

func TestTwoBuffersDisjointSupport(t *testing.T) {
	m := progs.TwoBuffers()
	a := Analyze(m, Options{})
	f := m.Func("fill")
	stores := storePtrs(f)
	ans, why := a.Query(stores[0], stores[1])
	if ans != NoAlias || why != ReasonDisjointSupport {
		t.Errorf("two mallocs = %s/%s, want no-alias/disjoint-support", ans, why)
	}
}

func TestStructFieldsGlobalRange(t *testing.T) {
	m := progs.StructFields()
	a := Analyze(m, Options{})
	f := m.Func("init")
	stores := storePtrs(f)
	for i := 0; i < len(stores); i++ {
		for j := i + 1; j < len(stores); j++ {
			ans, why := a.Query(stores[i], stores[j])
			if ans != NoAlias {
				t.Errorf("fields %d vs %d: %s, want no-alias", i, j, ans)
			}
			if why != ReasonGlobalRange {
				t.Errorf("fields %d vs %d attributed to %s, want global-range", i, j, why)
			}
		}
	}
}

func TestFreeIsBottomAndLoadIsTop(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	p := b.Malloc(b.Int(8), "p")
	q := b.Free(p, "q")
	l := b.Load(ir.TPtr, p, "l")
	b.Ret(nil)
	a := Analyze(m, Options{})
	if !a.GR.Value(q).IsBottom() {
		t.Errorf("GR(free) = %s, want ⊥", a.GR.Value(q))
	}
	if !a.GR.Value(l).IsTop() {
		t.Errorf("GR(load) = %s, want ⊤", a.GR.Value(l))
	}
	// ⊤ never disambiguates.
	if ans, _ := a.QueryGR(l, p); ans != MayAlias {
		t.Errorf("⊤ vs p should be may-alias")
	}
}

func TestNullAndGlobals(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("table", 16)
	f := m.NewFunc("f", ir.TVoid)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	p := b.PtrAddConst(g.Addr, 2, "p")
	b.Store(p, b.Int(1))
	b.Ret(nil)
	a := Analyze(m, Options{})
	gp := a.GR.Value(p)
	if gp.String() != "{loc0 + [2, 2]}" {
		t.Errorf("GR(@table+2) = %s", gp)
	}
	// Null is ⊥: trivially no-alias with anything allocated.
	if ans, why := a.Query(m.Null(), p); ans != NoAlias || why != ReasonDisjointSupport {
		t.Errorf("null vs p = %s/%s", ans, why)
	}
}

func TestInterproceduralParamJoin(t *testing.T) {
	// callee(q) receives two different buffers: GR(q) covers both sites.
	m := ir.NewModule("t")
	callee := m.NewFunc("callee", ir.TVoid, ir.Param("q", ir.TPtr))
	{
		b := ir.NewBuilder(callee)
		blk := b.Block("entry")
		b.SetBlock(blk)
		b.Store(callee.Params[0], b.Int(0))
		b.Ret(nil)
	}
	caller := m.NewFunc("caller", ir.TVoid)
	{
		b := ir.NewBuilder(caller)
		blk := b.Block("entry")
		b.SetBlock(blk)
		p1 := b.Malloc(b.Int(4), "p1")
		p2 := b.Malloc(b.Int(4), "p2")
		b.Call(callee, "", p1)
		b.Call(callee, "", p2)
		b.Ret(nil)
	}
	a := Analyze(m, Options{})
	gq := a.GR.Value(callee.Params[0])
	if len(gq.Support()) != 2 {
		t.Errorf("GR(q) = %s, want both sites", gq)
	}
	// With TopParams the parameter is ⊤ (ablation posture).
	a2 := Analyze(m, Options{TopParams: true})
	if !a2.GR.Value(callee.Params[0]).IsTop() {
		t.Errorf("TopParams: GR(q) = %s, want ⊤", a2.GR.Value(callee.Params[0]))
	}
}

func TestUncalledFunctionParamsAreTop(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	b.Ret(nil)
	a := Analyze(m, Options{})
	if !a.GR.Value(f.Params[0]).IsTop() {
		t.Errorf("param of externally callable function must be ⊤")
	}
}

func TestReturnedPointerFlows(t *testing.T) {
	m := ir.NewModule("t")
	mk := m.NewFunc("mk", ir.TPtr, ir.Param("n", ir.TInt))
	{
		b := ir.NewBuilder(mk)
		blk := b.Block("entry")
		b.SetBlock(blk)
		p := b.Malloc(mk.Params[0], "p")
		q := b.PtrAddConst(p, 3, "q")
		b.Ret(q)
	}
	caller := m.NewFunc("caller", ir.TVoid)
	var r *ir.Value
	{
		b := ir.NewBuilder(caller)
		blk := b.Block("entry")
		b.SetBlock(blk)
		r = b.Call(mk, "r", b.Int(10))
		b.Ret(nil)
	}
	a := Analyze(m, Options{})
	gr := a.GR.Value(r)
	if gr.String() != "{loc0 + [3, 3]}" {
		t.Errorf("GR(call result) = %s, want {loc0 + [3, 3]}", gr)
	}
}

func TestRecursiveFunctionTerminates(t *testing.T) {
	// walk(p) calls walk(p+1): the parameter's range must widen to
	// [0, +∞] rather than iterating forever.
	m := ir.NewModule("t")
	walk := m.NewFunc("walk", ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("n", ir.TInt))
	{
		b := ir.NewBuilder(walk)
		entry := b.Block("entry")
		rec := b.Block("rec")
		exit := b.Block("exit")
		b.SetBlock(entry)
		c := b.Cmp(ir.PGt, walk.Params[1], b.Int(0), "c")
		b.CondBr(c, rec, exit)
		b.SetBlock(rec)
		p1 := b.PtrAddConst(walk.Params[0], 1, "p1")
		n1 := b.Sub(walk.Params[1], b.Int(1), "n1")
		b.Call(walk, "", p1, n1)
		b.Br(exit)
		b.SetBlock(exit)
		b.Ret(nil)
	}
	root := m.NewFunc("root", ir.TVoid)
	{
		b := ir.NewBuilder(root)
		blk := b.Block("entry")
		b.SetBlock(blk)
		buf := b.Malloc(b.Int(100), "buf")
		b.Call(walk, "", buf, b.Int(100))
		b.Ret(nil)
	}
	a := Analyze(m, Options{})
	gp := a.GR.Value(walk.Params[0])
	r, ok := gp.Get(0)
	if !ok {
		t.Fatalf("GR(walk.p) = %s, want loc0 component", gp)
	}
	if !symbolic.Equal(r.Lo(), symbolic.Zero()) || !r.Hi().IsPosInf() {
		t.Errorf("GR(walk.p) = %s, want loc0 + [0, +∞]", gp)
	}
}

// Lattice laws for MemLoc, mirroring the interval property tests.
func TestMemLocLatticeLaws(t *testing.T) {
	mk := func(rs ...interval.Interval) MemLoc {
		m := map[int]interval.Interval{}
		for i, r := range rs {
			if !r.IsEmpty() {
				m[i] = r
			}
		}
		return OfRanges(m)
	}
	samples := []MemLoc{
		Bottom(), Top(),
		SingleLoc(0), SingleLoc(1),
		mk(interval.Consts(0, 4), interval.Consts(2, 9)),
		mk(interval.Consts(-3, 0)),
		mk(interval.Empty(), interval.Consts(5, 5)),
	}
	for _, a := range samples {
		for _, b := range samples {
			j := Join(a, b)
			if !Leq(a, j) || !Leq(b, j) {
				t.Fatalf("join not an upper bound: %s ⊔ %s = %s", a, b, j)
			}
			if !Equal(Join(a, b), Join(b, a)) {
				t.Fatalf("join not commutative: %s vs %s", a, b)
			}
			if !Equal(Join(a, a), a) {
				t.Fatalf("join not idempotent on %s", a)
			}
			w := Widen(a, Join(a, b))
			if !Leq(a, w) || !Leq(b, w) {
				t.Fatalf("widen not an upper bound: %s ∇ %s = %s", a, b, w)
			}
		}
	}
	if !Leq(Bottom(), samples[3]) || !Leq(samples[3], Top()) {
		t.Error("⊥ ⊑ x ⊑ ⊤ violated")
	}
}

func TestMemLocShiftAndString(t *testing.T) {
	v := SingleLoc(2).Shift(interval.Consts(3, 5))
	if v.String() != "{loc2 + [3, 5]}" {
		t.Errorf("shift/string = %s", v)
	}
	if !Top().Shift(interval.Consts(1, 1)).IsTop() {
		t.Error("⊤ shift must stay ⊤")
	}
	if !Bottom().Shift(interval.Consts(1, 1)).IsBottom() {
		t.Error("⊥ shift must stay ⊥")
	}
}

func TestPiMeetFig9Rules(t *testing.T) {
	n := symbolic.Sym("N")
	p := OfRanges(map[int]interval.Interval{
		0: interval.Consts(0, 10),
		1: interval.Consts(0, 10), // not in bound's support → dropped
	})
	bound := OfRanges(map[int]interval.Interval{0: interval.Point(n)})
	q := PiMeet(p, ir.PLt, bound)
	if _, ok := q.Get(1); ok {
		t.Errorf("component outside common support must be ⊥: %s", q)
	}
	r, ok := q.Get(0)
	if !ok {
		t.Fatalf("common component lost: %s", q)
	}
	// [0,10] ⊓ [−∞, N−1] = [0, min(10, N−1)].
	if !symbolic.Equal(r.Lo(), symbolic.Zero()) {
		t.Errorf("PiMeet lo = %s", r.Lo())
	}
	if r.Hi().Kind() != symbolic.KMin {
		t.Errorf("PiMeet hi = %s, want min(10, N−1)", r.Hi())
	}
	// ⊤ bound keeps p's components.
	q2 := PiMeet(p, ir.PLt, Top())
	if !Equal(q2, p) {
		t.Errorf("PiMeet with ⊤ bound = %s, want %s", q2, p)
	}
	// ⊤ source takes the bound's support.
	q3 := PiMeet(Top(), ir.PLe, bound)
	r3, ok := q3.Get(0)
	if !ok || !symbolic.Equal(r3.Hi(), n) {
		t.Errorf("PiMeet(⊤, le, {loc0+[N,N]}) = %s", q3)
	}
}

func TestSymbolicOnlyClassification(t *testing.T) {
	n := symbolic.Sym("N")
	sym := OfRanges(map[int]interval.Interval{0: interval.Point(n)})
	num := OfRanges(map[int]interval.Interval{0: interval.Consts(1, 2)})
	mix := OfRanges(map[int]interval.Interval{
		0: interval.Point(n),
		1: interval.Consts(1, 2),
	})
	if !sym.SymbolicOnly() {
		t.Error("pure symbolic should classify as symbolic-only")
	}
	if num.SymbolicOnly() {
		t.Error("numeric must not classify as symbolic-only")
	}
	if mix.SymbolicOnly() {
		t.Error("mixed must not classify as symbolic-only")
	}
	if Top().SymbolicOnly() || Bottom().SymbolicOnly() {
		t.Error("⊤/⊥ are not symbolic-only")
	}
}

// TestQuerySymmetric: alias queries are symmetric.
func TestQuerySymmetric(t *testing.T) {
	m := progs.MessageBuffer()
	a := Analyze(m, Options{})
	f := m.Func("prepare")
	vals := []*ir.Value{}
	for _, v := range f.Values() {
		if v.Typ == ir.TPtr {
			vals = append(vals, v)
		}
	}
	for i := range vals {
		for j := range vals {
			a1, _ := a.Query(vals[i], vals[j])
			a2, _ := a.Query(vals[j], vals[i])
			if a1 != a2 {
				t.Fatalf("query not symmetric for %s vs %s", vals[i], vals[j])
			}
		}
	}
}

// TestConcreteSoundness runs the message-buffer program concretely and
// checks that every pair of addresses that collide at runtime was answered
// may-alias.
func TestConcreteSoundness(t *testing.T) {
	m := progs.MessageBuffer()
	a := Analyze(m, Options{})
	prepare := m.Func("prepare")

	// Concrete execution of prepare with N=6, strlen(m)=4, p=@1000, m=@2000.
	type access struct {
		v    *ir.Value
		addr int64
	}
	var accesses []access
	N := int64(6)
	L := int64(4)
	pBase, mBase := int64(1000), int64(2000)

	// Simulate the two loops exactly as the IR executes them.
	stores := storePtrs(prepare)
	for i := int64(0); i+1 < N; i += 2 { // loop 1: i < e
		accesses = append(accesses, access{stores[0], pBase + i})
		accesses = append(accesses, access{stores[1], pBase + i + 1})
	}
	for i := N; i < N+L; i++ { // loop 2
		accesses = append(accesses, access{stores[2], pBase + i})
	}
	_ = mBase
	for i := range accesses {
		for j := i + 1; j < len(accesses); j++ {
			x, y := accesses[i], accesses[j]
			if x.addr != y.addr || x.v == y.v {
				continue
			}
			if ans, _ := a.Query(x.v, y.v); ans == NoAlias {
				t.Fatalf("UNSOUND: %s and %s both touch %d but were declared no-alias",
					x.v, y.v, x.addr)
			}
		}
	}
}
