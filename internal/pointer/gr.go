package pointer

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/rangeanal"
	"repro/internal/symbolic"
)

// Options configure the pointer analysis; the zero value is the paper's
// configuration.
type Options struct {
	// DescendingSteps is the length of the descending sequence (§3.4 uses 2).
	DescendingSteps int
	// Budget bounds bound-expression sizes (§3.8).
	Budget int
	// TopParams treats every pointer parameter as ⊤ instead of joining the
	// actuals of internal call sites — the fully conservative
	// "callable from outside" posture. Ablation knob.
	TopParams bool
	// PointsTo optionally refines Fig. 9's load rule: instead of ⊤, a
	// loaded pointer gets its points-to sites with unknown offsets
	// ([−∞,+∞] per site), restoring support-disjointness answers for
	// pointers that round-trip through memory. This realizes the paper's
	// related-work proposal of augmenting points-to sets with ranges; see
	// internal/alias/andersen.
	PointsTo PointsToOracle
	// Range configures the bootstrap integer range analysis.
	Range rangeanal.Options
	// Interner receives every expression the analysis mints. nil means the
	// process-wide Default interner; a per-module interner isolates the
	// module's node pool so eviction can reclaim it. It also defaults the
	// Range options' interner, keeping both analyses in one pool.
	Interner *symbolic.Interner
}

// PointsToOracle abstracts a points-to analysis (e.g. andersen.Result):
// the sites the value may address, sorted ascending, or unknown=true for ⊤
// (the slice is then meaningless).
type PointsToOracle interface {
	PointsTo(v *ir.Value) (sites []int, unknown bool)
}

func (o Options) withDefaults() Options {
	if o.DescendingSteps == 0 {
		o.DescendingSteps = 2
	}
	if o.Budget == 0 {
		o.Budget = interval.DefaultBudget
	}
	if o.Interner == nil {
		o.Interner = symbolic.Default()
	}
	if o.Range.Interner == nil {
		o.Range.Interner = o.Interner
	}
	return o
}

// GRResult is the product of the global analysis: GR : pointers → MemLocs.
type GRResult struct {
	Sites []ir.Site
	site  map[*ir.Instr]int
	gsite map[*ir.Global]int
	val   map[*ir.Value]MemLoc
	R     *rangeanal.Result
	opts  Options
}

// SiteOf returns the allocation-site index of an alloc instruction.
func (g *GRResult) SiteOf(in *ir.Instr) (int, bool) {
	s, ok := g.site[in]
	return s, ok
}

// Value returns GR(v) for a pointer-typed value. Constants (null) are ⊥;
// globals are their site + [0,0].
func (g *GRResult) Value(v *ir.Value) MemLoc {
	switch v.Kind {
	case ir.VConst:
		return Bottom()
	case ir.VGlobal:
		return SingleLocIn(g.opts.Interner, g.gsite[v.Gbl])
	}
	if m, ok := g.val[v]; ok {
		return m
	}
	return Bottom()
}

// AnalyzeGR runs the whole-module global analysis of §3.4: an
// interprocedural (context-insensitive) abstract interpretation over
// MemLocs, bootstrapped by the integer range analysis, with widening at the
// merge points (φ-functions, parameters, call results) followed by a
// descending sequence.
func AnalyzeGR(m *ir.Module, R *rangeanal.Result, opts Options) *GRResult {
	opts = opts.withDefaults()
	g := &GRResult{
		site:  map[*ir.Instr]int{},
		gsite: map[*ir.Global]int{},
		val:   map[*ir.Value]MemLoc{},
		R:     R,
		opts:  opts,
	}
	g.Sites = m.AllocSites()
	for _, s := range g.Sites {
		if s.Instr != nil {
			g.site[s.Instr] = s.ID
		} else {
			g.gsite[s.Global] = s.ID
		}
	}

	// Interprocedural linking: actuals per (callee, param index) and return
	// operands per callee (§3.1: actual parameters are associated with
	// formal parameters as by φ-functions).
	actuals := map[*ir.Value][]*ir.Value{} // formal param → actual args
	returns := map[*ir.Func][]*ir.Value{}  // callee → ret operands
	callResults := map[*ir.Func][]*ir.Value{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCall:
					for i, a := range in.Args {
						p := in.Callee.Params[i]
						if p.Typ == ir.TPtr {
							actuals[p] = append(actuals[p], a)
						}
					}
					if in.Res != nil && in.Res.Typ == ir.TPtr {
						callResults[in.Callee] = append(callResults[in.Callee], in.Res)
					}
				case ir.OpRet:
					if len(in.Args) == 1 && in.Args[0].Typ == ir.TPtr {
						returns[f] = append(returns[f], in.Args[0])
					}
				}
			}
		}
	}

	// Nodes: every pointer value with a computed abstract state, in a
	// deterministic order (params first, then instruction results in RPO).
	var nodes []*ir.Value
	transferOf := map[*ir.Value]func() MemLoc{}
	addNode := func(v *ir.Value, f func() MemLoc) {
		nodes = append(nodes, v)
		transferOf[v] = f
	}
	// users[x] = nodes whose transfer reads x.
	users := map[*ir.Value][]*ir.Value{}

	for _, f := range m.Funcs {
		f := f
		for _, p := range f.Params {
			if p.Typ != ir.TPtr {
				continue
			}
			p := p
			as := actuals[p]
			if opts.TopParams || len(as) == 0 {
				addNode(p, func() MemLoc { return Top() })
				continue
			}
			addNode(p, func() MemLoc {
				acc := Bottom()
				for _, a := range as {
					acc = Join(acc, g.Value(a))
				}
				return acc
			})
			for _, a := range as {
				users[a] = append(users[a], p)
			}
		}
		for _, b := range cfg.ReversePostorder(f) {
			for _, in := range b.Instrs {
				if in.Res == nil || in.Res.Typ != ir.TPtr {
					continue
				}
				in := in
				res := in.Res
				switch in.Op {
				case ir.OpAlloc:
					site := g.site[in]
					addNode(res, func() MemLoc { return SingleLocIn(g.opts.Interner, site) })
				case ir.OpFree:
					addNode(res, func() MemLoc { return Bottom() })
				case ir.OpCopy:
					addNode(res, func() MemLoc { return g.Value(in.Args[0]) })
					users[in.Args[0]] = append(users[in.Args[0]], res)
				case ir.OpPtrAdd:
					addNode(res, func() MemLoc {
						return g.Value(in.Args[0]).Shift(R.Range(in.Args[1]))
					})
					users[in.Args[0]] = append(users[in.Args[0]], res)
				case ir.OpPhi:
					addNode(res, func() MemLoc {
						acc := Bottom()
						for _, a := range in.Args {
							acc = Join(acc, g.Value(a))
						}
						return acc
					})
					for _, a := range in.Args {
						users[a] = append(users[a], res)
					}
				case ir.OpPi:
					addNode(res, func() MemLoc {
						return PiMeet(g.Value(in.Args[0]), in.Pred, g.Value(in.Args[1]))
					})
					users[in.Args[0]] = append(users[in.Args[0]], res)
					users[in.Args[1]] = append(users[in.Args[1]], res)
				case ir.OpLoad, ir.OpExtern:
					// Fig. 9: loads are not tracked through memory — ⊤,
					// unless a points-to oracle refines the support.
					if in.Op == ir.OpLoad && opts.PointsTo != nil {
						sites, unknown := opts.PointsTo.PointsTo(res)
						if !unknown {
							loc := fromPointsTo(sites)
							addNode(res, func() MemLoc { return loc })
							continue
						}
					}
					addNode(res, func() MemLoc { return Top() })
				case ir.OpCall:
					callee := in.Callee
					rets := returns[callee]
					addNode(res, func() MemLoc {
						if len(rets) == 0 {
							return Top()
						}
						acc := Bottom()
						for _, r := range rets {
							acc = Join(acc, g.Value(r))
						}
						return acc
					})
					for _, r := range rets {
						users[r] = append(users[r], res)
					}
				}
			}
		}
	}

	isMerge := map[*ir.Value]bool{}
	for _, v := range nodes {
		switch {
		case v.Kind == ir.VParam:
			isMerge[v] = true
		case v.Def != nil && (v.Def.Op == ir.OpPhi || v.Def.Op == ir.OpCall):
			isMerge[v] = true
		}
	}

	// Ascending phase.
	visited := map[*ir.Value]bool{}
	inWork := map[*ir.Value]bool{}
	work := make([]*ir.Value, len(nodes))
	copy(work, nodes)
	for _, v := range nodes {
		inWork[v] = true
	}
	steps, limit := 0, 64*(len(nodes)+1)
	for len(work) > 0 {
		if steps++; steps > limit {
			panic(fmt.Sprintf("pointer: GR fixpoint did not converge (module %s)", m.Name))
		}
		v := work[0]
		work = work[1:]
		inWork[v] = false
		old := g.val[v]
		next := transferOf[v]()
		if isMerge[v] && visited[v] {
			next = Widen(old, Join(old, next))
		}
		visited[v] = true
		next = next.Clamp(opts.Budget)
		if Equal(old, next) {
			continue
		}
		g.val[v] = next
		for _, u := range users[v] {
			if !inWork[u] {
				inWork[u] = true
				work = append(work, u)
			}
		}
	}

	// Descending sequence (§3.4: "after convergence, we redo a step of
	// symbolic evaluation of the program").
	for pass := 0; pass < opts.DescendingSteps; pass++ {
		for _, v := range nodes {
			next := transferOf[v]()
			if isMerge[v] {
				next = Narrow(g.val[v], next)
			}
			g.val[v] = next.Clamp(opts.Budget)
		}
	}

	// Pointer values in unreachable blocks never became nodes; give them ⊤
	// so queries stay conservative.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Res != nil && in.Res.Typ == ir.TPtr {
					if _, ok := transferOf[in.Res]; !ok {
						g.val[in.Res] = Top()
					}
				}
			}
		}
	}
	return g
}
