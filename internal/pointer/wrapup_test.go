package pointer

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/symbolic"
)

// TestFig12WrapUp reproduces §3.9's wrap-up example: the GR and LR states of
// the Fig. 1 program after widening and the descending sequence (Fig. 12).
//
// Differences to the paper's presentation, both documented in DESIGN.md:
//   - the paper's CFG steps i by 1 twice per iteration, ours (like the C
//     source) steps by 2, so i3 is [2, N+1] instead of [1, N];
//   - the paper hand-simplifies max(0, N+1) to N+1 (valid only if N ≥ 0);
//     we keep the sound canonical form.
func TestFig12WrapUp(t *testing.T) {
	m := progs.MessageBuffer()
	a := Analyze(m, Options{})
	prepare := m.Func("prepare")

	val := func(name string) *ir.Value {
		for _, v := range prepare.Values() {
			if v.Name == name {
				return v
			}
		}
		t.Fatalf("value %s not found:\n%s", name, prepare)
		return nil
	}
	N := symbolic.Sym("prepare.N")
	k := symbolic.Add(N, symbolic.Sym("prepare.len")) // the paper's k = N + strlen(m0)

	type row struct {
		name   string
		site   int
		lo, hi *symbolic.Expr
	}
	exact := []row{
		// "Starting state" rows that survive to the final table.
		{"i0", 0, symbolic.Zero(), symbolic.Zero()}, // b, p, i0 ↦ loc0+[0,0]
		{"e", 0, N, N},               // e ↦ loc0+[N,N]
		{"t0", 0, symbolic.One(), N}, // t0 ↦ [1, N] (after descending)
		{"i3", 0, symbolic.Const(2), symbolic.AddConst(N, 1)}, // stride-2 variant of [1, N]
		{"f", 0, k, k}, // f ↦ loc0+[k,k]
	}
	for _, r := range exact {
		g := a.GR.Value(val(r.name))
		iv, ok := g.Get(r.site)
		if !ok {
			t.Errorf("GR(%s) = %s, want loc%d component", r.name, g, r.site)
			continue
		}
		if !interval.Equal(iv, interval.Of(r.lo, r.hi)) {
			t.Errorf("GR(%s)@loc%d = %s, want [%s, %s]", r.name, r.site, iv, r.lo, r.hi)
		}
		if len(g.Support()) != 1 {
			t.Errorf("GR(%s) support = %v, want {loc%d} only", r.name, g.Support(), r.site)
		}
	}

	// i2 = i1 ∩ [−∞, e−1]: [0, N−1] (Fig. 12 "after one descending step").
	i2 := val("i1.pi")
	g2, ok := a.GR.Value(i2).Get(0)
	if !ok || !symbolic.Equal(g2.Lo(), symbolic.Zero()) ||
		!symbolic.Equal(g2.Hi(), symbolic.AddConst(N, -1)) {
		t.Errorf("GR(i2) = %s, want loc0+[0, N−1]", a.GR.Value(i2))
	}

	// m1 = φ(m0, m2) ↦ loc1 + [0, +∞] (the m chain has no upper bound).
	gm1, ok := a.GR.Value(val("m1")).Get(1)
	if !ok || !symbolic.Equal(gm1.Lo(), symbolic.Zero()) || !gm1.Hi().IsPosInf() {
		t.Errorf("GR(m1) = %s, want loc1+[0, +∞]", a.GR.Value(val("m1")))
	}
	gm2, ok := a.GR.Value(val("m2")).Get(1)
	if !ok || !symbolic.Equal(gm2.Lo(), symbolic.One()) || !gm2.Hi().IsPosInf() {
		t.Errorf("GR(m2) = %s, want loc1+[1, +∞]", a.GR.Value(val("m2")))
	}

	// i6 = i5 ∩ [−∞, f−1]: lo ≥ N, hi = k−1.
	i6 := val("i5.pi")
	g6, ok := a.GR.Value(i6).Get(0)
	if !ok {
		t.Fatalf("GR(i6) = %s, want loc0 component", a.GR.Value(i6))
	}
	if !symbolic.Compare(g6.Lo(), N).ProvesGE() {
		t.Errorf("GR(i6).lo = %s, want ≥ N", g6.Lo())
	}
	if !symbolic.Equal(g6.Hi(), symbolic.AddConst(k, -1)) {
		t.Errorf("GR(i6).hi = %s, want k−1 = N+len−1", g6.Hi())
	}
	// i7 = i6 + 1: hi = k (paper: i7 = [k, k+1] with their unit stride; with
	// the π-refined lower bound ours is [N+1, k]).
	g7, ok := a.GR.Value(val("i7")).Get(0)
	if !ok || !symbolic.Equal(g7.Hi(), k) {
		t.Errorf("GR(i7) = %s, want hi = k", a.GR.Value(val("i7")))
	}

	// The widening/descending discipline: no bound of a loop φ may still be
	// the ascending-phase +∞ unless genuinely unbounded (only the m chain
	// and i5's upper component via m are allowed to stay infinite here).
	g1, ok := a.GR.Value(val("i1")).Get(0)
	if !ok || g1.Hi().IsPosInf() {
		t.Errorf("GR(i1) = %s: descending failed to close the loop bound",
			a.GR.Value(val("i1")))
	}

	// ---- LR column of Fig. 12 ----
	lr := a.LR
	locP, offP := lr.Loc(prepare.Params[0])
	locI0, offI0 := lr.Loc(val("i0"))
	if locI0 != locP || !interval.Equal(offI0, offP) {
		t.Errorf("LR(i0) = loc%d+%s, want same as p (loc%d+%s)", locI0, offI0, locP, offP)
	}
	locE, offE := lr.Loc(val("e"))
	if locE != locP || !interval.Equal(offE, interval.Point(N)) {
		t.Errorf("LR(e) = loc%d+%s, want loc(p)+[N,N]", locE, offE)
	}
	// i1 is a φ: fresh location with [0,0]; i2 keeps it; t0 = +1; i3 = +2.
	locI1, offI1 := lr.Loc(val("i1"))
	if locI1 == locP || !interval.Equal(offI1, interval.ConstPoint(0)) {
		t.Errorf("LR(i1) = loc%d+%s, want fresh+[0,0]", locI1, offI1)
	}
	locI2, _ := lr.Loc(i2)
	locT0, offT0 := lr.Loc(val("t0"))
	locI3, offI3 := lr.Loc(val("i3"))
	if locI2 != locI1 || locT0 != locI1 || locI3 != locI1 {
		t.Errorf("LR of i2/t0/i3 must share i1's φ location")
	}
	if !interval.Equal(offT0, interval.ConstPoint(1)) ||
		!interval.Equal(offI3, interval.ConstPoint(2)) {
		t.Errorf("LR offsets: t0=%s i3=%s, want [1,1], [2,2]", offT0, offI3)
	}
	// f = e + len: same base as p, offset N + len = k.
	locF, offF := lr.Loc(val("f"))
	if locF != locP || !interval.Equal(offF, interval.Point(k)) {
		t.Errorf("LR(f) = loc%d+%s, want loc(p)+[k,k]", locF, offF)
	}
	// m1 (φ) fresh, m2 = m1+1 shares it.
	locM1, _ := lr.Loc(val("m1"))
	locM2, offM2 := lr.Loc(val("m2"))
	if locM2 != locM1 || !interval.Equal(offM2, interval.ConstPoint(1)) {
		t.Errorf("LR(m2) = loc%d+%s, want loc(m1)+[1,1]", locM2, offM2)
	}
}

// TestGRTerminationFourVisits checks the §3.9 claim operationally: the
// fixpoint stabilizes quickly — we bound total recomputations at a small
// multiple of the node count rather than the panic limit.
func TestGRTerminationFourVisits(t *testing.T) {
	// Indirect check: analysis of the wrap-up program must finish, and the
	// φ values must have changed at most 3 times (∅ → finite → one/both
	// bounds infinite), which Widen guarantees by construction. Here we
	// assert the public consequence: re-running the analysis is
	// deterministic and idempotent.
	m := progs.MessageBuffer()
	a1 := Analyze(m, Options{})
	a2 := Analyze(m, Options{})
	for _, f := range m.Funcs {
		for _, v := range f.Values() {
			if v.Typ != ir.TPtr {
				continue
			}
			if !Equal(a1.GR.Value(v), a2.GR.Value(v)) {
				t.Fatalf("non-deterministic GR for %s: %s vs %s",
					v, a1.GR.Value(v), a2.GR.Value(v))
			}
		}
	}
}

// TestDescendingAblation quantifies design decision #1 of DESIGN.md: without
// the descending sequence the loop φ keeps its widened +∞ upper bound
// (Fig. 12's "growing iterations" row); the descending steps close it.
// Note the π-nodes already clamp the *body* copies during the ascending
// phase, so the flagship query survives either way — what descending buys
// is precision of the φ values themselves.
func TestDescendingAblation(t *testing.T) {
	find := func(m *ir.Module) *ir.Value {
		for _, v := range m.Func("prepare").Values() {
			if v.Name == "i1" {
				return v
			}
		}
		t.Fatal("i1 not found")
		return nil
	}

	mWith := progs.MessageBuffer()
	with := Analyze(mWith, Options{DescendingSteps: 2})
	gWith, ok := with.GR.Value(find(mWith)).Get(0)
	if !ok || gWith.Hi().IsPosInf() {
		t.Errorf("with descending: GR(i1) = %s, want finite hi", with.GR.Value(find(mWith)))
	}

	mWithout := progs.MessageBuffer()
	without := Analyze(mWithout, Options{DescendingSteps: -1})
	gWithout, ok := without.GR.Value(find(mWithout)).Get(0)
	if !ok || !gWithout.Hi().IsPosInf() {
		t.Errorf("without descending: GR(i1) = %s, want widened +∞ hi",
			without.GR.Value(find(mWithout)))
	}
}
