package pointer

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frontend/minic"
	"repro/internal/ir"
)

// TestAccelerateFromIRFile analyzes the checked-in textual IR of the Fig. 3
// program: the parse → analyze path must reach the same verdicts as the
// builder-constructed fixture.
func TestAccelerateFromIRFile(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "accelerate.ir"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(m, Options{})
	var stores []*ir.Value
	for _, in := range m.Func("accelerate").Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in.Args[0])
		}
	}
	if len(stores) != 2 {
		t.Fatalf("want 2 stores, got %d", len(stores))
	}
	if ans, _ := a.QueryGR(stores[0], stores[1]); ans != MayAlias {
		t.Error("global test must fail on p[i] vs p[i+1]")
	}
	ans, why := a.Query(stores[0], stores[1])
	if ans != NoAlias || why != ReasonLocalRange {
		t.Errorf("combined = %s/%s, want no-alias/local-range", ans, why)
	}
}

// TestFig1FromMiniCFile analyzes the checked-in MiniC source of Fig. 1.
func TestFig1FromMiniCFile(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "fig1.mc"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := minic.Compile("fig1", string(src))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(m, Options{})
	var stores []*ir.Value
	for _, in := range m.Func("prepare").Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in.Args[0])
		}
	}
	if len(stores) != 3 {
		t.Fatalf("want 3 stores, got %d", len(stores))
	}
	ans, why := a.Query(stores[0], stores[2])
	if ans != NoAlias || why != ReasonGlobalRange {
		t.Errorf("Fig. 1 loops = %s/%s, want no-alias/global-range", ans, why)
	}
}

// TestFreedPointerQueries: after free, the invalidated copy is ⊥ and
// trivially no-alias to everything — including the object it used to
// reference (use-after-free is UB, outside the soundness contract).
func TestFreedPointerQueries(t *testing.T) {
	src := `
func f(n int) {
  var p ptr = malloc(n);
  var q ptr = malloc(n);
  *p = 1;
  free(p);
  *q = 2;
}
`
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(m, Options{})
	var freed *ir.Value
	for _, in := range m.Func("f").Instrs() {
		if in.Op == ir.OpFree {
			freed = in.Res
		}
	}
	if freed == nil {
		t.Fatal("no free result")
	}
	if !a.GR.Value(freed).IsBottom() {
		t.Errorf("GR(freed) = %s, want ⊥", a.GR.Value(freed))
	}
	var qStore *ir.Value
	for _, in := range m.Func("f").Instrs() {
		if in.Op == ir.OpStore {
			qStore = in.Args[0]
		}
	}
	if ans, why := a.Query(freed, qStore); ans != NoAlias || why != ReasonDisjointSupport {
		t.Errorf("freed vs live = %s/%s, want no-alias/disjoint-support", ans, why)
	}
}
