package pointer

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/symbolic"
)

// MemLoc lattice-operation benchmarks: Join dominates the GR fixpoint and
// the disjointness walk dominates QueryGR, so their per-op allocation is the
// module-build and query-latency budget.

func benchLoc(sites ...int) MemLoc {
	rs := map[int]interval.Interval{}
	n := symbolic.Sym("f.n")
	for i, s := range sites {
		rs[s] = interval.Of(symbolic.Const(int64(i)), symbolic.AddConst(n, int64(i)))
	}
	return OfRanges(rs)
}

func BenchmarkMemLocJoin(b *testing.B) {
	a := benchLoc(0, 2, 4, 6)
	c := benchLoc(2, 3, 4, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := Join(a, c)
		if j.IsTop() {
			b.Fatal("unexpected top")
		}
	}
}

func BenchmarkMemLocJoinDisjointSupport(b *testing.B) {
	a := benchLoc(0, 2, 4)
	c := benchLoc(1, 3, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := Join(a, c)
		if j.IsBottom() {
			b.Fatal("unexpected bottom")
		}
	}
}

func BenchmarkMemLocDisjoint(b *testing.B) {
	// The QueryGR inner loop: one merge walk classifying the pair as
	// disjoint-support vs range-disjoint vs may-alias.
	a := benchLoc(0, 2, 4)
	c := benchLoc(1, 3, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if common, _ := disjointRanges(a, c); common {
			b.Fatal("supports should be disjoint")
		}
	}
}

func BenchmarkMemLocDisjointCommon(b *testing.B) {
	// Same walk with overlapping supports, forcing the range disjointness
	// proofs on common sites.
	lo := map[int]interval.Interval{}
	hi := map[int]interval.Interval{}
	for _, s := range []int{0, 2, 4} {
		lo[s] = interval.Consts(0, 5)
		hi[s] = interval.Consts(100, 105)
	}
	a := OfRanges(hi)
	c := OfRanges(lo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		common, disjoint := disjointRanges(a, c)
		if !common || !disjoint {
			b.Fatal("want common, provably disjoint ranges")
		}
	}
}

func BenchmarkMemLocWiden(b *testing.B) {
	a := benchLoc(0, 1, 2)
	c := benchLoc(0, 1, 2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := Widen(a, c)
		if w.IsTop() {
			b.Fatal("unexpected top")
		}
	}
}
