// Package pointer implements the paper's contribution: the GR (global) and
// LR (local) symbolic range analyses of pointers and the alias queries built
// on them (§3.4–§3.7 of "Symbolic Range Analysis of Pointers", CGO'16).
//
// aliaslint:interner-scoped — expressions are minted through
// Options.Interner (Default unless the caller isolates the module), never
// through the package-level symbolic constructors.
package pointer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/rangeanal"
	"repro/internal/symbolic"
)

// siteRange is one non-⊥ component of a MemLoc: the symbolic offset range at
// an allocation site.
type siteRange struct {
	site int
	r    interval.Interval
}

// MemLoc is an element of the MemLocs lattice (§3.4): conceptually a tuple
// (SymbRanges ∪ ⊥)^n with one component per allocation site. Components that
// are ⊥ are not stored — the slice holds exactly the *support*
// (Definition 2), sorted by site index, so the lattice operations are
// allocation-lean O(n+m) merges instead of map rebuilds. Top (every
// component [−∞,+∞]) has a dedicated representation so that the common
// "pointer loaded from memory" case costs O(1).
//
// MemLoc values are immutable: operations either return an operand unchanged
// (sharing its component slice) or build a fresh slice. Nothing may mutate a
// ranges slice after construction.
type MemLoc struct {
	top    bool
	ranges []siteRange
}

// Bottom returns (⊥,…,⊥), the least element: a pointer to no location
// (null, or freed).
func Bottom() MemLoc { return MemLoc{} }

// Top returns ([−∞,∞],…,[−∞,∞]), the greatest element.
func Top() MemLoc { return MemLoc{top: true} }

// SingleLoc abstracts "points exactly at the base of site": loc + [0,0]
// (the malloc rule of Fig. 9), with the zero bound in the Default interner.
// Analysis code must use SingleLocIn so the bound stays in the module's
// interner; this form exists for tests and golden values.
func SingleLoc(site int) MemLoc {
	return MemLoc{ranges: []siteRange{{site: site, r: interval.ConstPoint(0)}}}
}

// SingleLocIn is SingleLoc with the [0,0] bound interned in in.
func SingleLocIn(in *symbolic.Interner, site int) MemLoc {
	return MemLoc{ranges: []siteRange{{site: site, r: interval.ConstsIn(in, 0, 0)}}}
}

// OfRanges builds a MemLoc from explicit components (test helper and Fig. 12
// golden values). Empty components are dropped.
func OfRanges(rs map[int]interval.Interval) MemLoc {
	out := make([]siteRange, 0, len(rs))
	for site, r := range rs {
		if !r.IsEmpty() {
			out = append(out, siteRange{site: site, r: r})
		}
	}
	if len(out) == 0 {
		return Bottom()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].site < out[j].site })
	return MemLoc{ranges: out}
}

// IsTop reports whether v is the greatest element.
func (v MemLoc) IsTop() bool { return v.top }

// IsBottom reports whether v is the least element.
func (v MemLoc) IsBottom() bool { return !v.top && len(v.ranges) == 0 }

// Support returns the sorted site indices with non-⊥ components
// (Definition 2). Top's support is reported as nil along with IsTop.
func (v MemLoc) Support() []int {
	if len(v.ranges) == 0 {
		return nil
	}
	out := make([]int, len(v.ranges))
	for i, sr := range v.ranges {
		out[i] = sr.site
	}
	return out
}

// NumRanges returns the support size — the number of stored components.
// ⊤ reports 0; check IsTop first (its conceptual support is every site).
func (v MemLoc) NumRanges() int { return len(v.ranges) }

// Range returns the i-th stored component (sites ascending); the index
// digester flattens MemLocs through it without rebuilding maps.
func (v MemLoc) Range(i int) (site int, r interval.Interval) {
	sr := v.ranges[i]
	return sr.site, sr.r
}

// Get returns the component for a site; ok=false means ⊥ at that site.
// For Top every component is [−∞,+∞].
func (v MemLoc) Get(site int) (interval.Interval, bool) {
	if v.top {
		return interval.Full(), true
	}
	i := sort.Search(len(v.ranges), func(i int) bool { return v.ranges[i].site >= site })
	if i < len(v.ranges) && v.ranges[i].site == site {
		return v.ranges[i].r, true
	}
	return interval.Interval{}, false
}

// String renders the abstract value in the paper's set notation,
// e.g. "{loc1 + [3, 5], loc3 + [3, 8]}".
func (v MemLoc) String() string {
	if v.top {
		return "⊤"
	}
	if v.IsBottom() {
		return "⊥"
	}
	var b strings.Builder
	b.WriteString("{")
	for i, sr := range v.ranges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "loc%d + %s", sr.site, sr.r)
	}
	b.WriteString("}")
	return b.String()
}

// Equal reports structural equality.
func Equal(a, b MemLoc) bool {
	if a.top || b.top {
		return a.top == b.top
	}
	if len(a.ranges) != len(b.ranges) {
		return false
	}
	for i, sr := range a.ranges {
		o := b.ranges[i]
		if sr.site != o.site || !interval.Equal(sr.r, o.r) {
			return false
		}
	}
	return true
}

// Join is the componentwise ⊔ of §3.4 (⊥ neutral per component), a sorted
// merge over the two supports.
func Join(a, b MemLoc) MemLoc {
	if a.top || b.top {
		return Top()
	}
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	out := make([]siteRange, 0, len(a.ranges)+len(b.ranges))
	i, j := 0, 0
	for i < len(a.ranges) && j < len(b.ranges) {
		switch {
		case a.ranges[i].site < b.ranges[j].site:
			out = append(out, a.ranges[i])
			i++
		case a.ranges[i].site > b.ranges[j].site:
			out = append(out, b.ranges[j])
			j++
		default:
			out = append(out, siteRange{
				site: a.ranges[i].site,
				r:    interval.Join(a.ranges[i].r, b.ranges[j].r),
			})
			i++
			j++
		}
	}
	out = append(out, a.ranges[i:]...)
	out = append(out, b.ranges[j:]...)
	return MemLoc{ranges: out}
}

// Leq reports whether a ⊑ b is provable: every component of a is included
// in b's (⊥ ⊑ R for all R). Both supports are sorted, so one merge walk
// decides it.
func Leq(a, b MemLoc) bool {
	if b.top {
		return true
	}
	if a.top {
		return false
	}
	j := 0
	for _, sr := range a.ranges {
		for j < len(b.ranges) && b.ranges[j].site < sr.site {
			j++
		}
		if j >= len(b.ranges) || b.ranges[j].site != sr.site || !interval.Leq(sr.r, b.ranges[j].r) {
			return false
		}
	}
	return true
}

// Widen is Definition 4: componentwise ∇ with ⊥∇R = R.
func Widen(old, next MemLoc) MemLoc {
	if old.top || next.top {
		return Top()
	}
	if old.IsBottom() {
		return next
	}
	out := make([]siteRange, 0, len(old.ranges)+len(next.ranges))
	i, j := 0, 0
	for i < len(old.ranges) && j < len(next.ranges) {
		switch {
		case old.ranges[i].site < next.ranges[j].site:
			out = append(out, old.ranges[i])
			i++
		case old.ranges[i].site > next.ranges[j].site:
			out = append(out, next.ranges[j])
			j++
		default:
			out = append(out, siteRange{
				site: old.ranges[i].site,
				r:    interval.Widen(old.ranges[i].r, next.ranges[j].r),
			})
			i++
			j++
		}
	}
	out = append(out, old.ranges[i:]...)
	out = append(out, next.ranges[j:]...)
	return MemLoc{ranges: out}
}

// Narrow is the componentwise descending step: components of cur may be
// refined by next's, components outside next's support are kept.
func Narrow(cur, next MemLoc) MemLoc {
	if cur.top {
		return next
	}
	if next.top || cur.IsBottom() || next.IsBottom() {
		return cur
	}
	out := make([]siteRange, 0, len(cur.ranges))
	j := 0
	for _, sr := range cur.ranges {
		for j < len(next.ranges) && next.ranges[j].site < sr.site {
			j++
		}
		if j < len(next.ranges) && next.ranges[j].site == sr.site {
			sr.r = interval.Narrow(sr.r, next.ranges[j].r)
		}
		out = append(out, sr)
	}
	return MemLoc{ranges: out}
}

// Shift adds an integer interval to every component — the "q = p + c" rule
// of Fig. 9 (with R(c) the range of the added scalar).
func (v MemLoc) Shift(by interval.Interval) MemLoc {
	if v.top || v.IsBottom() {
		return v
	}
	if by.IsEmpty() {
		return Bottom()
	}
	out := make([]siteRange, len(v.ranges))
	for i, sr := range v.ranges {
		out[i] = siteRange{site: sr.site, r: interval.Add(sr.r, by)}
	}
	return MemLoc{ranges: out}
}

// Clamp applies the expression-size budget componentwise, copying only when
// some component actually degrades.
func (v MemLoc) Clamp(budget int) MemLoc {
	if v.top || v.IsBottom() {
		return v
	}
	for i, sr := range v.ranges {
		if c := sr.r.Clamp(budget); !interval.Equal(c, sr.r) {
			out := make([]siteRange, len(v.ranges))
			copy(out, v.ranges[:i])
			out[i] = siteRange{site: sr.site, r: c}
			for j := i + 1; j < len(v.ranges); j++ {
				out[j] = siteRange{site: v.ranges[j].site, r: v.ranges[j].r.Clamp(budget)}
			}
			return MemLoc{ranges: out}
		}
	}
	return v
}

// PiMeet is the bound-intersection rule of Fig. 9 for pointers:
// q = p ∩ [pred bound]. Components outside the common support become ⊥
// (sound under the paper's no-undefined-behaviour assumption: comparing
// pointers into different objects is UB in C), and common components meet
// with the translated bound.
func PiMeet(p MemLoc, pred ir.Pred, bound MemLoc) MemLoc {
	if p.top && bound.top {
		return Top()
	}
	if p.IsBottom() || bound.IsBottom() {
		return Bottom()
	}
	var out []siteRange
	meet := func(site int, pr, br interval.Interval) {
		r := interval.Meet(pr, rangeanal.PiBound(pred, br))
		if !r.IsEmpty() {
			out = append(out, siteRange{site: site, r: r})
		}
	}
	switch {
	case p.top:
		for _, sr := range bound.ranges {
			meet(sr.site, interval.Full(), sr.r)
		}
	case bound.top:
		for _, sr := range p.ranges {
			meet(sr.site, sr.r, interval.Full())
		}
	default:
		i, j := 0, 0
		for i < len(p.ranges) && j < len(bound.ranges) {
			switch {
			case p.ranges[i].site < bound.ranges[j].site:
				i++
			case p.ranges[i].site > bound.ranges[j].site:
				j++
			default:
				meet(p.ranges[i].site, p.ranges[i].r, bound.ranges[j].r)
				i++
				j++
			}
		}
	}
	if len(out) == 0 {
		return Bottom()
	}
	return MemLoc{ranges: out}
}

// fromPointsTo builds the MemLoc a points-to oracle justifies: the given
// sites (sorted ascending) with unknown offsets.
func fromPointsTo(sites []int) MemLoc {
	if len(sites) == 0 {
		return Bottom()
	}
	out := make([]siteRange, len(sites))
	for i, s := range sites {
		out[i] = siteRange{site: s, r: interval.Full()}
	}
	return MemLoc{ranges: out}
}

// disjointRanges reports the QueryGR classification for a pair of non-Top
// MemLocs in one merge walk: common is true when the supports intersect, and
// disjoint is true when every commonly supported component pair is provably
// disjoint (Proposition 2). disjoint is meaningless unless common.
func disjointRanges(a, b MemLoc) (common, disjoint bool) {
	disjoint = true
	i, j := 0, 0
	for i < len(a.ranges) && j < len(b.ranges) {
		switch {
		case a.ranges[i].site < b.ranges[j].site:
			i++
		case a.ranges[i].site > b.ranges[j].site:
			j++
		default:
			common = true
			if !interval.ProvablyDisjoint(a.ranges[i].r, b.ranges[j].r) {
				return true, false
			}
			i++
			j++
		}
	}
	return common, disjoint
}

// SymbolicOnly reports whether the pointer's offsets are expressible *only*
// with symbolic (non-numeric) bounds — the classification behind the §5
// experiment ("20.47% of the pointers … have exclusively symbolic ranges").
// A MemLoc counts as symbolic-only when it has at least one finite symbolic
// bound and no component is purely numeric.
func (v MemLoc) SymbolicOnly() bool {
	if v.top || v.IsBottom() {
		return false
	}
	sawSymbolic := false
	for _, sr := range v.ranges {
		r := sr.r
		symbolic := (!r.Lo().IsInf() && r.Lo().HasSym()) ||
			(!r.Hi().IsInf() && r.Hi().HasSym())
		if symbolic {
			sawSymbolic = true
		} else {
			return false // a purely numeric component exists
		}
	}
	return sawSymbolic
}
