// Package pointer implements the paper's contribution: the GR (global) and
// LR (local) symbolic range analyses of pointers and the alias queries built
// on them (§3.4–§3.7 of "Symbolic Range Analysis of Pointers", CGO'16).
package pointer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/rangeanal"
)

// MemLoc is an element of the MemLocs lattice (§3.4): conceptually a tuple
// (SymbRanges ∪ ⊥)^n with one component per allocation site. Components that
// are ⊥ are not stored — the map holds exactly the *support* (Definition 2).
// Top (every component [−∞,+∞]) has a dedicated representation so that the
// common "pointer loaded from memory" case costs O(1).
type MemLoc struct {
	top    bool
	ranges map[int]interval.Interval
}

// Bottom returns (⊥,…,⊥), the least element: a pointer to no location
// (null, or freed).
func Bottom() MemLoc { return MemLoc{} }

// Top returns ([−∞,∞],…,[−∞,∞]), the greatest element.
func Top() MemLoc { return MemLoc{top: true} }

// SingleLoc abstracts "points exactly at the base of site": loc + [0,0]
// (the malloc rule of Fig. 9).
func SingleLoc(site int) MemLoc {
	return MemLoc{ranges: map[int]interval.Interval{site: interval.ConstPoint(0)}}
}

// OfRanges builds a MemLoc from explicit components (test helper and Fig. 12
// golden values). Empty components are dropped.
func OfRanges(rs map[int]interval.Interval) MemLoc {
	m := map[int]interval.Interval{}
	for site, r := range rs {
		if !r.IsEmpty() {
			m[site] = r
		}
	}
	if len(m) == 0 {
		return Bottom()
	}
	return MemLoc{ranges: m}
}

// IsTop reports whether v is the greatest element.
func (v MemLoc) IsTop() bool { return v.top }

// IsBottom reports whether v is the least element.
func (v MemLoc) IsBottom() bool { return !v.top && len(v.ranges) == 0 }

// Support returns the sorted site indices with non-⊥ components
// (Definition 2). Top's support is reported as nil along with IsTop.
func (v MemLoc) Support() []int {
	out := make([]int, 0, len(v.ranges))
	for s := range v.ranges {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Get returns the component for a site; ok=false means ⊥ at that site.
// For Top every component is [−∞,+∞].
func (v MemLoc) Get(site int) (interval.Interval, bool) {
	if v.top {
		return interval.Full(), true
	}
	r, ok := v.ranges[site]
	return r, ok
}

// String renders the abstract value in the paper's set notation,
// e.g. "{loc1 + [3, 5], loc3 + [3, 8]}".
func (v MemLoc) String() string {
	if v.top {
		return "⊤"
	}
	if v.IsBottom() {
		return "⊥"
	}
	var b strings.Builder
	b.WriteString("{")
	for i, s := range v.Support() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "loc%d + %s", s, v.ranges[s])
	}
	b.WriteString("}")
	return b.String()
}

// Equal reports structural equality.
func Equal(a, b MemLoc) bool {
	if a.top || b.top {
		return a.top == b.top
	}
	if len(a.ranges) != len(b.ranges) {
		return false
	}
	for s, r := range a.ranges {
		o, ok := b.ranges[s]
		if !ok || !interval.Equal(r, o) {
			return false
		}
	}
	return true
}

// Join is the componentwise ⊔ of §3.4 (⊥ neutral per component).
func Join(a, b MemLoc) MemLoc {
	if a.top || b.top {
		return Top()
	}
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	out := make(map[int]interval.Interval, len(a.ranges)+len(b.ranges))
	for s, r := range a.ranges {
		out[s] = r
	}
	for s, r := range b.ranges {
		if cur, ok := out[s]; ok {
			out[s] = interval.Join(cur, r)
		} else {
			out[s] = r
		}
	}
	return MemLoc{ranges: out}
}

// Leq reports whether a ⊑ b is provable: every component of a is included
// in b's (⊥ ⊑ R for all R).
func Leq(a, b MemLoc) bool {
	if b.top {
		return true
	}
	if a.top {
		return false
	}
	for s, r := range a.ranges {
		o, ok := b.ranges[s]
		if !ok || !interval.Leq(r, o) {
			return false
		}
	}
	return true
}

// Widen is Definition 4: componentwise ∇ with ⊥∇R = R.
func Widen(old, next MemLoc) MemLoc {
	if old.top || next.top {
		return Top()
	}
	if old.IsBottom() {
		return next
	}
	out := make(map[int]interval.Interval, len(old.ranges)+len(next.ranges))
	for s, r := range old.ranges {
		if n, ok := next.ranges[s]; ok {
			out[s] = interval.Widen(r, n)
		} else {
			out[s] = r
		}
	}
	for s, r := range next.ranges {
		if _, ok := old.ranges[s]; !ok {
			out[s] = r
		}
	}
	return MemLoc{ranges: out}
}

// Narrow is the componentwise descending step.
func Narrow(cur, next MemLoc) MemLoc {
	if cur.top {
		return next
	}
	if next.top || cur.IsBottom() || next.IsBottom() {
		return cur
	}
	out := make(map[int]interval.Interval, len(cur.ranges))
	for s, r := range cur.ranges {
		if n, ok := next.ranges[s]; ok {
			out[s] = interval.Narrow(r, n)
		} else {
			out[s] = r
		}
	}
	return MemLoc{ranges: out}
}

// Shift adds an integer interval to every component — the "q = p + c" rule
// of Fig. 9 (with R(c) the range of the added scalar).
func (v MemLoc) Shift(by interval.Interval) MemLoc {
	if v.top || v.IsBottom() {
		return v
	}
	if by.IsEmpty() {
		return Bottom()
	}
	out := make(map[int]interval.Interval, len(v.ranges))
	for s, r := range v.ranges {
		out[s] = interval.Add(r, by)
	}
	return MemLoc{ranges: out}
}

// Clamp applies the expression-size budget componentwise.
func (v MemLoc) Clamp(budget int) MemLoc {
	if v.top || v.IsBottom() {
		return v
	}
	out := make(map[int]interval.Interval, len(v.ranges))
	for s, r := range v.ranges {
		out[s] = r.Clamp(budget)
	}
	return MemLoc{ranges: out}
}

// PiMeet is the bound-intersection rule of Fig. 9 for pointers:
// q = p ∩ [pred bound]. Components outside the common support become ⊥
// (sound under the paper's no-undefined-behaviour assumption: comparing
// pointers into different objects is UB in C), and common components meet
// with the translated bound.
func PiMeet(p MemLoc, pred ir.Pred, bound MemLoc) MemLoc {
	if p.top && bound.top {
		return Top()
	}
	if p.IsBottom() || bound.IsBottom() {
		return Bottom()
	}
	var sites []int
	switch {
	case p.top:
		sites = bound.Support()
	case bound.top:
		sites = p.Support()
	default:
		for _, s := range p.Support() {
			if _, ok := bound.ranges[s]; ok {
				sites = append(sites, s)
			}
		}
	}
	out := make(map[int]interval.Interval, len(sites))
	for _, s := range sites {
		pr, _ := p.Get(s)
		br, _ := bound.Get(s)
		r := interval.Meet(pr, rangeanal.PiBound(pred, br))
		if !r.IsEmpty() {
			out[s] = r
		}
	}
	if len(out) == 0 {
		return Bottom()
	}
	return MemLoc{ranges: out}
}

// fromPointsTo builds the MemLoc a points-to oracle justifies: the given
// sites with unknown offsets.
func fromPointsTo(sites map[int]bool) MemLoc {
	if len(sites) == 0 {
		return Bottom()
	}
	out := make(map[int]interval.Interval, len(sites))
	for s := range sites {
		out[s] = interval.Full()
	}
	return MemLoc{ranges: out}
}

// SymbolicOnly reports whether the pointer's offsets are expressible *only*
// with symbolic (non-numeric) bounds — the classification behind the §5
// experiment ("20.47% of the pointers … have exclusively symbolic ranges").
// A MemLoc counts as symbolic-only when it has at least one finite symbolic
// bound and no component is purely numeric.
func (v MemLoc) SymbolicOnly() bool {
	if v.top || v.IsBottom() {
		return false
	}
	sawSymbolic := false
	for _, r := range v.ranges {
		symbolic := (!r.Lo().IsInf() && r.Lo().HasSym()) ||
			(!r.Hi().IsInf() && r.Hi().HasSym())
		if symbolic {
			sawSymbolic = true
		} else {
			return false // a purely numeric component exists
		}
	}
	return sawSymbolic
}
