package pointer

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/rangeanal"
	"repro/internal/symbolic"
)

// LRResult is the product of the local analysis of §3.6: for every pointer,
// a single abstract address loc + [e, e] where loc may be a *fresh* location
// minted at φ-functions, loads, mallocs, parameters and opaque calls
// (Fig. 11's NewLocs()), and e is an exact symbolic offset expression.
//
// Offsets are degenerate (point) intervals over the *SSA names themselves*:
// the offset added by "q = p + c" is the symbolic value of c, where an
// opaque c (a φ, a load, a parameter) is the kernel symbol naming its own
// SSA value. This is the uniform realization of the paper's §2 region
// renaming — in Fig. 4, "newp = p + i" inside the loop becomes base loc_p
// with offset [i, i], so newp[0] and newp[1] get offsets i and i+1, which
// are disjoint *at any single moment* of the execution. Per §4, the local
// test therefore disambiguates the addresses used by instructions, not
// pointer values over their lifetime: two addresses with the same base and
// provably different symbolic offsets are never equal under any one
// valuation of the locals.
//
// Unlike GR, LR runs in one pass over the dominance tree and needs no
// widening (§3.6: the lattice is finite for a fixed program).
type LRResult struct {
	loc     map[*ir.Value]int
	off     map[*ir.Value]*symbolic.Expr
	intMemo map[*ir.Value]*symbolic.Expr
	nextLoc int
	budget  int
	in      *symbolic.Interner
}

// Loc returns the abstract location and offset range of v, assigning a
// fresh location on first sight of a root value (parameter, global, null).
func (l *LRResult) Loc(v *ir.Value) (int, interval.Interval) {
	loc, e := l.addr(v)
	return loc, interval.Point(e)
}

// Offset returns the symbolic offset expression of v from its local base.
func (l *LRResult) Offset(v *ir.Value) *symbolic.Expr {
	_, e := l.addr(v)
	return e
}

func (l *LRResult) addr(v *ir.Value) (int, *symbolic.Expr) {
	if loc, ok := l.loc[v]; ok {
		return loc, l.off[v]
	}
	// Roots seen for the first time (params, globals, constants).
	loc := l.fresh()
	l.loc[v] = loc
	l.off[v] = l.in.Zero()
	return loc, l.off[v]
}

func (l *LRResult) fresh() int {
	l.nextLoc++
	return l.nextLoc - 1
}

// NumLocs reports how many abstract local locations were minted.
func (l *LRResult) NumLocs() int { return l.nextLoc }

// String renders LR(v) in the paper's "locN + [l,u]" notation.
func (l *LRResult) String(v *ir.Value) string {
	loc, r := l.Loc(v)
	return fmt.Sprintf("loc%d + %s", loc, r)
}

// intExpr computes the exact symbolic value of an integer SSA value:
// constants fold, arithmetic combines, and every opaque definition (φ,
// load, extern, call, parameter) becomes the kernel symbol that names the
// value itself. The naming coincides with rangeanal.SymbolFor so that
// parameters read the same in both analyses (Fig. 12's LR column writes
// e ↦ loc0 + [N, N]).
func (l *LRResult) intExpr(v *ir.Value) *symbolic.Expr {
	if c, ok := v.IsConst(); ok {
		return l.in.Const(c)
	}
	if e, ok := l.intMemo[v]; ok {
		return e
	}
	// Pre-bind the opaque symbol to cut (impossible in SSA, but cheap)
	// cycles and to serve as the fallback.
	sym := l.in.Sym(rangeanal.SymbolFor(v))
	l.intMemo[v] = sym
	var e *symbolic.Expr
	if v.Kind == ir.VInstr {
		in := v.Def
		switch in.Op {
		case ir.OpCopy, ir.OpPi:
			// π is a copy: its value equals its source, so reuse the
			// source's expression — this is what lets offsets computed
			// before and after a bounds check compare equal.
			e = l.intExpr(in.Args[0])
		case ir.OpAdd:
			e = symbolic.Add(l.intExpr(in.Args[0]), l.intExpr(in.Args[1]))
		case ir.OpSub:
			e = symbolic.Sub(l.intExpr(in.Args[0]), l.intExpr(in.Args[1]))
		case ir.OpMul:
			e = symbolic.Mul(l.intExpr(in.Args[0]), l.intExpr(in.Args[1]))
		case ir.OpDiv:
			e = symbolic.Div(l.intExpr(in.Args[0]), l.intExpr(in.Args[1]))
		case ir.OpRem:
			e = symbolic.Mod(l.intExpr(in.Args[0]), l.intExpr(in.Args[1]))
		}
	}
	if e == nil || e.Size() > l.budget {
		e = sym
	}
	l.intMemo[v] = e
	return e
}

// AnalyzeLR runs the local analysis over every function of m. Following
// §3.6, instructions are evaluated in the order given by each function's
// dominance tree; every operand of a non-φ instruction is therefore already
// bound when visited.
//
// After the pass, every value of m (including parameters, globals and
// constant operands, which Fig. 11 treats as roots with offset [0,0]) has a
// bound location, so queries through Loc/Offset on the module's values are
// pure reads — the read-only concurrency contract of Analysis.Query.
func AnalyzeLR(m *ir.Module, _ *rangeanal.Result, opts Options) *LRResult {
	opts = opts.withDefaults()
	l := &LRResult{
		loc:     map[*ir.Value]int{},
		off:     map[*ir.Value]*symbolic.Expr{},
		intMemo: map[*ir.Value]*symbolic.Expr{},
		budget:  opts.Budget,
		in:      opts.Interner,
	}
	for _, f := range m.Funcs {
		l.analyzeFunc(f)
	}
	// Bind the remaining roots eagerly: pointer values the dominance walk
	// did not define (parameters, unreachable-block results), globals, and
	// pointer constants appearing as operands. addr keeps existing
	// bindings, so reachable results retain their computed locations.
	for _, f := range m.Funcs {
		for _, v := range f.Values() {
			if v.Typ == ir.TPtr {
				l.addr(v)
			}
		}
		for _, in := range f.Instrs() {
			for _, arg := range in.Args {
				if arg != nil && arg.Typ == ir.TPtr {
					l.addr(arg)
				}
			}
		}
	}
	for _, g := range m.Globals {
		l.addr(g.Addr)
	}
	// The interned null constant is a legitimate query operand even when no
	// instruction uses it (Null interns it on first call, so binding it
	// here covers later Query(m.Null(), …) calls without a lazy write).
	l.addr(m.Null())
	return l
}

func (l *LRResult) analyzeFunc(f *ir.Func) {
	if f.Entry() == nil {
		return
	}
	dt := cfg.NewDomTree(f)
	for _, b := range dt.DomOrder() {
		for _, in := range b.Instrs {
			if in.Res == nil || in.Res.Typ != ir.TPtr {
				continue
			}
			switch in.Op {
			case ir.OpAlloc, ir.OpPhi, ir.OpLoad, ir.OpExtern, ir.OpCall, ir.OpFree:
				// Fig. 11: NewLocs() + [0,0].
				l.loc[in.Res] = l.fresh()
				l.off[in.Res] = l.in.Zero()
			case ir.OpCopy, ir.OpPi:
				// Fig. 11: copies and intersections keep LR(p1).
				loc, e := l.addr(in.Args[0])
				l.loc[in.Res] = loc
				l.off[in.Res] = e
			case ir.OpPtrAdd:
				loc, e := l.addr(in.Args[0])
				off := symbolic.Add(e, l.intExpr(in.Args[1]))
				if off.Size() > l.budget {
					// Oversized offsets restart from a fresh base — sound,
					// merely incomparable to everything else.
					loc = l.fresh()
					off = l.in.Zero()
				}
				l.loc[in.Res] = loc
				l.off[in.Res] = off
			}
		}
	}
}
