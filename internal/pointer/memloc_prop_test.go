package pointer

import (
	"math/rand"
	"testing"

	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/symbolic"
)

// Differential tests for the flat sorted-slice MemLoc: every lattice
// operation must agree with a straightforward map-based reference model
// (the representation the slice version replaced).

type refLoc struct {
	top    bool
	ranges map[int]interval.Interval
}

func toRef(v MemLoc) refLoc {
	r := refLoc{top: v.IsTop(), ranges: map[int]interval.Interval{}}
	for _, s := range v.Support() {
		iv, _ := v.Get(s)
		r.ranges[s] = iv
	}
	return r
}

func refEqual(a refLoc, b MemLoc) bool {
	if a.top != b.IsTop() {
		return false
	}
	if len(a.ranges) != len(b.Support()) {
		return false
	}
	for s, r := range a.ranges {
		o, ok := b.Get(s)
		if !ok || !interval.Equal(r, o) {
			return false
		}
	}
	return true
}

func refJoin(a, b refLoc) refLoc {
	if a.top || b.top {
		return refLoc{top: true, ranges: map[int]interval.Interval{}}
	}
	out := refLoc{ranges: map[int]interval.Interval{}}
	for s, r := range a.ranges {
		out.ranges[s] = r
	}
	for s, r := range b.ranges {
		if cur, ok := out.ranges[s]; ok {
			out.ranges[s] = interval.Join(cur, r)
		} else {
			out.ranges[s] = r
		}
	}
	return out
}

func refWiden(old, next refLoc) refLoc {
	if old.top || next.top {
		return refLoc{top: true, ranges: map[int]interval.Interval{}}
	}
	if len(old.ranges) == 0 {
		return next
	}
	out := refLoc{ranges: map[int]interval.Interval{}}
	for s, r := range old.ranges {
		if n, ok := next.ranges[s]; ok {
			out.ranges[s] = interval.Widen(r, n)
		} else {
			out.ranges[s] = r
		}
	}
	for s, r := range next.ranges {
		if _, ok := old.ranges[s]; !ok {
			out.ranges[s] = r
		}
	}
	return out
}

func refNarrow(cur, next refLoc) refLoc {
	if cur.top {
		return next
	}
	if next.top || len(cur.ranges) == 0 || len(next.ranges) == 0 {
		return cur
	}
	out := refLoc{ranges: map[int]interval.Interval{}}
	for s, r := range cur.ranges {
		if n, ok := next.ranges[s]; ok {
			out.ranges[s] = interval.Narrow(r, n)
		} else {
			out.ranges[s] = r
		}
	}
	return out
}

func refLeq(a, b refLoc) bool {
	if b.top {
		return true
	}
	if a.top {
		return false
	}
	for s, r := range a.ranges {
		o, ok := b.ranges[s]
		if !ok || !interval.Leq(r, o) {
			return false
		}
	}
	return true
}

// randMemLoc builds a random MemLoc over a small site universe with
// constant and symbolic bounds.
func randMemLoc(r *rand.Rand) MemLoc {
	switch r.Intn(10) {
	case 0:
		return Top()
	case 1:
		return Bottom()
	}
	rs := map[int]interval.Interval{}
	for _, site := range r.Perm(8)[:r.Intn(5)] {
		lo := int64(r.Intn(9) - 4)
		hi := lo + int64(r.Intn(5))
		switch r.Intn(4) {
		case 0:
			rs[site] = interval.Of(
				symbolic.AddConst(symbolic.Sym("n"), lo),
				symbolic.AddConst(symbolic.Sym("n"), hi))
		case 1:
			rs[site] = interval.Of(symbolic.NegInf(), symbolic.Const(hi))
		case 2:
			rs[site] = interval.Full()
		default:
			rs[site] = interval.Consts(lo, hi)
		}
	}
	return OfRanges(rs)
}

func TestMemLocMatchesReferenceModel(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		a := randMemLoc(r)
		b := randMemLoc(r)
		ra, rb := toRef(a), toRef(b)

		if got, want := Join(a, b), refJoin(ra, rb); !refEqual(want, got) {
			t.Fatalf("Join(%s, %s) = %s, reference disagrees", a, b, got)
		}
		if got, want := Widen(a, b), refWiden(ra, rb); !refEqual(want, got) {
			t.Fatalf("Widen(%s, %s) = %s, reference disagrees", a, b, got)
		}
		if got, want := Narrow(a, b), refNarrow(ra, rb); !refEqual(want, got) {
			t.Fatalf("Narrow(%s, %s) = %s, reference disagrees", a, b, got)
		}
		if got, want := Leq(a, b), refLeq(ra, rb); got != want {
			t.Fatalf("Leq(%s, %s) = %v, reference says %v", a, b, got, want)
		}
		if !Equal(a, a) || !Leq(a, Join(a, b)) {
			t.Fatalf("lattice law broken for %s ⊔ %s", a, b)
		}

		// disjointRanges agrees with the Support/Get walk it replaced.
		if !a.IsTop() && !b.IsTop() {
			wantCommon, wantDisjoint := false, true
			for _, s := range a.Support() {
				rq, ok := b.Get(s)
				if !ok {
					continue
				}
				wantCommon = true
				rp, _ := a.Get(s)
				if !interval.ProvablyDisjoint(rp, rq) {
					wantDisjoint = false
					break
				}
			}
			gotCommon, gotDisjoint := disjointRanges(a, b)
			if gotCommon != wantCommon || (wantCommon && gotDisjoint != wantDisjoint) {
				t.Fatalf("disjointRanges(%s, %s) = (%v, %v), want (%v, %v)",
					a, b, gotCommon, gotDisjoint, wantCommon, wantDisjoint)
			}
		}

		// Shift and PiMeet stay inside the reference support discipline.
		sh := a.Shift(interval.Consts(1, 2))
		if !a.IsTop() && !a.IsBottom() && len(sh.Support()) != len(a.Support()) {
			t.Fatalf("Shift changed the support of %s: %s", a, sh)
		}
		pm := PiMeet(a, ir.PLe, b)
		for _, s := range pm.Support() {
			if _, ok := a.Get(s); !ok && !a.IsTop() {
				t.Fatalf("PiMeet introduced site %d absent from %s", s, a)
			}
		}
	}
}
