// Package opt contains optimization clients of the alias analyses — the
// consumers the paper's introduction motivates ("this importance comes as
// no surprise… it provides the necessary information to transform code that
// manipulates memory"). Two classic block-local transformations are
// implemented, both parameterized by an alias.Analysis so the precision of
// different analyses translates directly into optimization counts:
//
//   - redundant-load elimination with store-to-load forwarding: a load
//     whose address provably cannot have been clobbered since a previous
//     load/store of the same address reuses the earlier value;
//   - dead-store elimination: a store provably overwritten before any
//     potentially-aliasing read (or call) is removed.
//
// BenchmarkOptClient (bench_test.go) reports how many more loads rbaa lets
// the optimizer remove compared to basicaa and scev-aa on the Fig. 13
// corpus.
package opt

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// EliminateRedundantLoads performs block-local redundant-load elimination
// and store-to-load forwarding in f, using aa to decide whether intervening
// stores may clobber a remembered address. It returns the number of loads
// removed. Calls and externs conservatively invalidate everything (they may
// write any escaped memory).
func EliminateRedundantLoads(f *ir.Func, aa alias.Analysis) int {
	replace := map[*ir.Value]*ir.Value{}
	for _, b := range f.Blocks {
		// available[addr] = last known value of *addr in this block.
		type avail struct {
			addr *ir.Value
			val  *ir.Value
		}
		var window []avail
		lookup := func(addr *ir.Value) *ir.Value {
			for _, a := range window {
				if a.addr == addr {
					return a.val
				}
			}
			return nil
		}
		remember := func(addr, val *ir.Value) {
			for i, a := range window {
				if a.addr == addr {
					window[i].val = val
					return
				}
			}
			window = append(window, avail{addr, val})
		}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				addr := in.Args[0]
				if v := lookup(addr); v != nil && v.Typ == in.Res.Typ {
					replace[in.Res] = v
					continue // drop the load
				}
				remember(addr, in.Res)
			case ir.OpStore:
				addr, val := in.Args[0], in.Args[1]
				filtered := window[:0]
				for _, a := range window {
					if a.addr == addr {
						continue // superseded below
					}
					if aa.Alias(a.addr, addr) == alias.MayAlias {
						continue // may be clobbered
					}
					filtered = append(filtered, a)
				}
				window = filtered
				remember(addr, val)
			case ir.OpCall, ir.OpExtern, ir.OpFree:
				window = window[:0]
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	if len(replace) == 0 {
		return 0
	}
	var resolve func(v *ir.Value) *ir.Value
	resolve = func(v *ir.Value) *ir.Value {
		if r, ok := replace[v]; ok {
			rr := resolve(r)
			replace[v] = rr
			return rr
		}
		return v
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
		}
	}
	return len(replace)
}

// EliminateDeadStores removes block-local dead stores: a store whose
// address is provably overwritten by a later store to the *same* address
// value before any potentially-aliasing load, call or block end. Returns
// the number of stores removed.
func EliminateDeadStores(f *ir.Func, aa alias.Analysis) int {
	removed := 0
	for _, b := range f.Blocks {
		dead := map[*ir.Instr]bool{}
		// Walk backwards: remember addresses that are overwritten before
		// being read.
		var overwritten []*ir.Value
		mayRead := func(addr *ir.Value) {
			filtered := overwritten[:0]
			for _, o := range overwritten {
				if aa.Alias(o, addr) == alias.MayAlias {
					continue
				}
				filtered = append(filtered, o)
			}
			overwritten = filtered
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			switch in.Op {
			case ir.OpStore:
				addr := in.Args[0]
				isDead := false
				for _, o := range overwritten {
					if o == addr {
						isDead = true
						break
					}
				}
				if isDead {
					dead[in] = true
					removed++
					continue
				}
				overwritten = append(overwritten, addr)
			case ir.OpLoad:
				mayRead(in.Args[0])
			case ir.OpCall, ir.OpExtern, ir.OpRet, ir.OpFree:
				overwritten = overwritten[:0]
			}
		}
		if len(dead) > 0 {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if !dead[in] {
					kept = append(kept, in)
				}
			}
			b.Instrs = kept
		}
	}
	return removed
}

// CountLoads counts the load instructions of a module (optimization-report
// helper).
func CountLoads(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, in := range f.Instrs() {
			if in.Op == ir.OpLoad {
				n++
			}
		}
	}
	return n
}
