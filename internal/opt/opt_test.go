package opt

import (
	"strings"
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/benchgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/ssa"
)

// pessimist answers may-alias to everything — the no-analysis baseline.
type pessimist struct{}

func (pessimist) Name() string                      { return "none" }
func (pessimist) Alias(_, _ *ir.Value) alias.Result { return alias.MayAlias }

// buildFieldKernel builds:
//
//	s = malloc(3); a = s+0; b = s+1
//	v1 = load a; store b, 7; v2 = load a; ret v1+v2
//
// The second load of a is redundant iff the store to b provably does not
// clobber a — which needs an alias analysis.
func buildFieldKernel() (*ir.Module, *ir.Func) {
	m := ir.NewModule("t")
	f := m.NewFunc("k", ir.TInt)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	s := b.Malloc(b.Int(3), "s")
	fa := b.PtrAddConst(s, 0, "fa")
	fb := b.PtrAddConst(s, 1, "fb")
	b.Store(fa, b.Int(5))
	v1 := b.Load(ir.TInt, fa, "v1")
	b.Store(fb, b.Int(7))
	v2 := b.Load(ir.TInt, fa, "v2")
	sum := b.Add(v1, v2, "sum")
	b.Ret(sum)
	ssa.InsertPi(f)
	return m, f
}

func TestRLENeedsAliasAnalysis(t *testing.T) {
	// Without alias information, the first load still forwards from the
	// store to the *same* address value, but the store to fb kills the
	// window for the second load.
	m0, f0 := buildFieldKernel()
	_ = m0
	if n := EliminateRedundantLoads(f0, pessimist{}); n != 1 {
		t.Errorf("pessimist eliminated %d loads, want 1", n)
	}
	// With rbaa the fields are disjoint and both loads fold to the stored
	// value (store-to-load forwarding removes even the first load).
	m1, f1 := buildFieldKernel()
	r := rbaa.New(m1, pointer.Options{})
	if n := EliminateRedundantLoads(f1, r); n != 2 {
		t.Errorf("rbaa eliminated %d loads, want 2:\n%s", n, f1)
	}
	if strings.Contains(f1.String(), "load") {
		t.Errorf("loads remain:\n%s", f1)
	}
	if err := ssa.VerifySSA(f1); err != nil {
		t.Fatalf("RLE broke SSA: %v", err)
	}
}

func TestRLEPreservesSemantics(t *testing.T) {
	// The optimized kernel must compute the same value.
	m0, _ := buildFieldKernel()
	want, err := interp.New(m0, interp.Options{}).Run("k")
	if err != nil {
		t.Fatal(err)
	}
	m1, f1 := buildFieldKernel()
	EliminateRedundantLoads(f1, rbaa.New(m1, pointer.Options{}))
	got, err := interp.New(m1, interp.Options{}).Run("k")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RLE changed semantics: %d vs %d", got, want)
	}
	if want != 10 { // store-to-load forwarding of 5, twice
		t.Errorf("kernel computes %d, want 10", want)
	}
}

func TestRLEStoreForwarding(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("k", ir.TInt)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	s := b.Malloc(b.Int(1), "s")
	b.Store(s, b.Int(42))
	v := b.Load(ir.TInt, s, "v")
	b.Ret(v)
	r := rbaa.New(m, pointer.Options{})
	if n := EliminateRedundantLoads(f, r); n != 1 {
		t.Errorf("forwarded %d, want 1", n)
	}
	got, err := interp.New(m, interp.Options{}).Run("k")
	if err != nil || got != 42 {
		t.Errorf("forwarding broke semantics: %d, %v", got, err)
	}
}

func TestRLECallsInvalidate(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("k", ir.TInt, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	v1 := b.Load(ir.TInt, f.Params[0], "v1")
	b.Extern("mutate", ir.TVoid, "", f.Params[0])
	v2 := b.Load(ir.TInt, f.Params[0], "v2")
	sum := b.Add(v1, v2, "sum")
	b.Ret(sum)
	r := rbaa.New(m, pointer.Options{})
	if n := EliminateRedundantLoads(f, r); n != 0 {
		t.Errorf("load across call eliminated (%d), unsound", n)
	}
}

func TestDSE(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("k", ir.TVoid)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	s := b.Malloc(b.Int(2), "s")
	fa := b.PtrAddConst(s, 0, "fa")
	fb := b.PtrAddConst(s, 1, "fb")
	b.Store(fa, b.Int(1)) // dead: overwritten below, fb store cannot alias
	b.Store(fb, b.Int(2))
	b.Store(fa, b.Int(3))
	b.Ret(nil)
	r := rbaa.New(m, pointer.Options{})
	if n := EliminateDeadStores(f, r); n != 1 {
		t.Errorf("DSE removed %d stores, want 1:\n%s", n, f)
	}
	// With the pessimist, the intervening may-alias store keeps it alive…
	m2 := ir.NewModule("t2")
	f2 := m2.NewFunc("k", ir.TVoid)
	b2 := ir.NewBuilder(f2)
	blk2 := b2.Block("entry")
	b2.SetBlock(blk2)
	s2 := b2.Malloc(b2.Int(2), "s")
	fa2 := b2.PtrAddConst(s2, 0, "fa")
	fb2 := b2.PtrAddConst(s2, 1, "fb")
	b2.Store(fa2, b2.Int(1))
	// A load of fb intervenes: under the pessimist it may read fa.
	b2.Load(ir.TInt, fb2, "v")
	b2.Store(fa2, b2.Int(3))
	b2.Ret(nil)
	if n := EliminateDeadStores(f2, pessimist{}); n != 0 {
		t.Errorf("pessimist DSE removed %d stores, want 0", n)
	}
	if n := EliminateDeadStores(f2, rbaa.New(m2, pointer.Options{})); n != 1 {
		t.Errorf("rbaa DSE removed %d stores, want 1", n)
	}
}

func TestDSEPreservesSemantics(t *testing.T) {
	src := func() (*ir.Module, *ir.Func) {
		m := ir.NewModule("t")
		f := m.NewFunc("k", ir.TInt)
		b := ir.NewBuilder(f)
		blk := b.Block("entry")
		b.SetBlock(blk)
		s := b.Malloc(b.Int(2), "s")
		fa := b.PtrAddConst(s, 0, "fa")
		fb := b.PtrAddConst(s, 1, "fb")
		b.Store(fa, b.Int(1))
		b.Store(fb, b.Int(2))
		b.Store(fa, b.Int(3))
		va := b.Load(ir.TInt, fa, "va")
		vb := b.Load(ir.TInt, fb, "vb")
		b.Ret(b.Add(va, vb, "sum"))
		return m, f
	}
	m0, _ := src()
	want, err := interp.New(m0, interp.Options{}).Run("k")
	if err != nil {
		t.Fatal(err)
	}
	m1, f1 := src()
	EliminateDeadStores(f1, rbaa.New(m1, pointer.Options{}))
	got, err := interp.New(m1, interp.Options{}).Run("k")
	if err != nil || got != want {
		t.Errorf("DSE changed semantics: %d vs %d (%v)", got, want, err)
	}
}

// TestOptPrecisionOrdering: better alias analysis ⇒ at least as many
// eliminated loads, and the optimized modules still execute identically.
func TestOptPrecisionOrdering(t *testing.T) {
	cfg := benchgen.Fig13Configs()[7] // cdecl: symbolic-heavy
	base := benchgen.Generate(cfg)
	want, err := interp.New(base, interp.Options{}).Run("main")
	if err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, which := range []string{"none", "basic", "rbaa"} {
		m := benchgen.Generate(cfg)
		var aa alias.Analysis
		switch which {
		case "none":
			aa = pessimist{}
		case "basic":
			aa = basicaa.New(m)
		case "rbaa":
			aa = rbaa.New(m, pointer.Options{})
		}
		n := 0
		for _, f := range m.Funcs {
			n += EliminateRedundantLoads(f, aa)
		}
		counts[which] = n
		if err := ssa.VerifyModuleSSA(m); err != nil {
			t.Fatalf("%s: RLE broke SSA: %v", which, err)
		}
		got, err := interp.New(m, interp.Options{}).Run("main")
		if err != nil || got != want {
			t.Fatalf("%s: optimized module diverged: %d vs %d (%v)", which, got, want, err)
		}
	}
	if counts["basic"] < counts["none"] || counts["rbaa"] < counts["basic"] {
		t.Errorf("elimination counts not monotone in precision: %v", counts)
	}
	if counts["rbaa"] == counts["none"] {
		t.Errorf("rbaa bought no optimization at all: %v", counts)
	}
}
