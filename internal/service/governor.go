package service

import (
	"runtime/debug"
	"time"

	"repro/internal/alias"
	"repro/internal/budget"
)

// Degradation tuning. Shrinking the memo to 1/8 of the configured bound
// trades recompute cost for memory while keeping the hottest pairs cached;
// the per-round eviction cap keeps one governor tick from emptying the
// registry before the next heap probe can observe the effect of the first
// few evictions; the GC interval bounds how often a hard-pressure tick may
// force a collection to turn freed accounting into freed heap.
const (
	shrinkDiv            = 8
	shrunkCacheFloor     = 256
	maxEvictionsPerRound = 4
	minForcedGCInterval  = time.Second
)

// shrunkCacheLimit is the degraded per-module memo bound.
func (s *Service) shrunkCacheLimit() int {
	limit := s.fullCacheLimit / shrinkDiv
	if limit < shrunkCacheFloor {
		limit = shrunkCacheFloor
	}
	return limit
}

// sampleAccounted sums the service's own memory model: every ready
// module's build estimate (IR, analyses, index, interned expressions) plus
// its live memo entries, the analysis-reuse cache's retained columns, and
// the on-disk store's live bytes (recovery materializes every live record
// back into RAM, so store growth is deferred memory the admission levers
// should see coming).
func (s *Service) sampleAccounted() int64 {
	var acc int64
	s.eachReadyModule(func(h *Handle, st alias.ManagerStats) {
		acc += h.MemBytes() + st.Cached*memoEntryCost
	})
	acc += s.reuse.SizeBytes()
	if s.store != nil {
		acc += s.store.SizeBytes()
	}
	return acc
}

// reconcileBudget feeds the tracker a fresh accounting sample and heap
// probe, returning the resulting watermark state.
func (s *Service) reconcileBudget() budget.State {
	if !s.budget.Enabled() {
		return budget.StateOK
	}
	s.budget.SetAccounted(s.sampleAccounted())
	return s.budget.Reconcile()
}

// GovernOnce runs one governor round: reconcile the budget, then apply or
// unwind the graduated degradation levers. The background loop calls this
// every Config.GovernEvery; tests with GovernEvery < 0 call it directly.
// Admission checks elsewhere only read the tracker's state — all
// *actions* (cache shrinks, evictions, forced GC) happen here, on one
// goroutine, never from registry callbacks (teardown can run under
// registry locks).
func (s *Service) GovernOnce() {
	if !s.budget.Enabled() {
		return
	}
	st := s.reconcileBudget()
	if st >= budget.StateSoft {
		s.degrade(st)
	} else if s.degraded.Load() {
		s.restore()
	}
}

// degrade applies the soft-watermark levers: shrink every ready module's
// verdict memo, then evict unpinned LRU modules (a bounded number per
// round) while the accounting sum stays above the soft watermark. At the
// hard watermark it additionally forces a (rate-limited) GC so the heap
// probe can observe freed memory instead of waiting out GOGC. Runs every
// tick while degraded: modules built after the first round get their
// memos shrunk too (Resize to the current bound is a cheap no-op).
func (s *Service) degrade(st budget.State) {
	first := s.degraded.CompareAndSwap(false, true)
	shrunk := 0
	limit := s.shrunkCacheLimit()
	s.eachReadyModule(func(h *Handle, _ alias.ManagerStats) {
		if h.ResizeCache(limit) {
			shrunk++
		}
	})
	if shrunk > 0 {
		s.cacheShrinks.Add(int64(shrunk))
	}
	if first {
		s.log.Warn("memory budget pressure: degrading",
			"state", st.String(), "used", s.budget.Used(), "soft", s.budget.SoftBytes(),
			"hard", s.budget.HardBytes(), "memo_limit", limit, "memos_shrunk", shrunk)
	}
	evicted := 0
	for evicted < maxEvictionsPerRound && s.sampleAccounted() > s.budget.SoftBytes() {
		name, ok := s.reg.EvictOne()
		if !ok {
			break
		}
		evicted++
		s.budgetEvictions.Add(1)
		s.log.Warn("memory budget pressure: evicted module", "module", name)
	}
	if st == budget.StateHard {
		now := time.Now().UnixNano()
		if last := s.lastGC.Load(); now-last >= int64(minForcedGCInterval) &&
			s.lastGC.CompareAndSwap(last, now) {
			// FreeOSMemory rather than runtime.GC: past the hard watermark
			// the point is to shrink the figure the operator's OOM killer
			// sees (RSS), so freed heap must actually be returned to the OS
			// instead of waiting out the background scavenger.
			debug.FreeOSMemory()
		}
	}
	if shrunk > 0 || evicted > 0 {
		// Let admission see the post-action accounting now rather than a
		// tick later.
		s.reconcileBudget()
	}
}

// restore unwinds degradation once the tracker recovers to OK: every ready
// module's memo returns to the configured bound.
func (s *Service) restore() {
	if !s.degraded.CompareAndSwap(true, false) {
		return
	}
	restored := 0
	s.eachReadyModule(func(h *Handle, _ alias.ManagerStats) {
		if h.ResizeCache(s.fullCacheLimit) {
			restored++
		}
	})
	s.log.Info("memory budget recovered: restored memo caches",
		"memos_restored", restored, "memo_limit", s.fullCacheLimit)
}
