package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/telemetry"
)

// chaosHooks is the tests' Injector: each non-nil hook runs at its seam, so
// a test can hold a request at a precise point (channel block) or observe
// that the seam fired.
type chaosHooks struct {
	buildStart    func(module string)
	queryStart    func(module string, pairs int)
	responseWrite func()
	storeWrite    func(step string)
}

func (c *chaosHooks) StoreWrite(step string) {
	if c.storeWrite != nil {
		c.storeWrite(step)
	}
}

func (c *chaosHooks) BuildStart(module string) {
	if c.buildStart != nil {
		c.buildStart(module)
	}
}

func (c *chaosHooks) QueryStart(module string, pairs int) {
	if c.queryStart != nil {
		c.queryStart(module, pairs)
	}
}

func (c *chaosHooks) ResponseWrite() {
	if c.responseWrite != nil {
		c.responseWrite()
	}
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body(t, resp), &stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// decodeShed checks a rejection carries the full backpressure contract:
// the expected status, a Retry-After header, and the structured JSON body
// with the expected machine-readable reason.
func decodeShed(t *testing.T, resp *http.Response, wantCode int, wantReason string) {
	t.Helper()
	if resp.StatusCode != wantCode {
		t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, wantCode, body(t, resp))
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < shedRetryAfterMin || secs > shedRetryAfterMax {
		t.Errorf("Retry-After = %q, want integer seconds in [%d,%d]",
			resp.Header.Get("Retry-After"), shedRetryAfterMin, shedRetryAfterMax)
	}
	var shed shedResponse
	if err := json.Unmarshal(body(t, resp), &shed); err != nil {
		t.Fatalf("shed body is not the structured shape: %v", err)
	}
	if shed.Reason != wantReason {
		t.Errorf("shed reason = %q, want %q", shed.Reason, wantReason)
	}
	if shed.RetryAfterMS != int64(secs)*1000 {
		t.Errorf("retry_after_ms = %d disagrees with Retry-After header %ds", shed.RetryAfterMS, secs)
	}
	if shed.Error == "" {
		t.Error("shed body has no human-readable error")
	}
}

// assertBudgetFamiliesReconcile pins the tentpole's observability contract:
// every aliasd_budget_*/shed/drain family on /metrics must equal the
// corresponding /v1/stats budget field exactly — both render the same
// atomics, so on an idle daemon no drift is tolerated.
func assertBudgetFamiliesReconcile(t *testing.T, fams []*telemetry.ParsedFamily, bs BudgetStats) {
	t.Helper()
	for kind, want := range map[string]int64{
		"limit":     bs.LimitBytes,
		"soft":      bs.SoftBytes,
		"hard":      bs.HardBytes,
		"accounted": bs.AccountedBytes,
		"heap":      bs.HeapBytes,
		"used":      bs.UsedBytes,
	} {
		if got := sampleValue(fams, "aliasd_budget_bytes", map[string]string{"kind": kind}); got != float64(want) {
			t.Errorf("aliasd_budget_bytes{kind=%q} = %v, /v1/stats says %d", kind, got, want)
		}
	}
	stateNum := map[string]float64{"ok": 0, "soft": 1, "hard": 2}
	if got := sampleValue(fams, "aliasd_budget_state", nil); got != stateNum[bs.State] {
		t.Errorf("aliasd_budget_state = %v, /v1/stats says %q", got, bs.State)
	}
	for state, want := range bs.Transitions {
		if got := sampleValue(fams, "aliasd_budget_transitions_total", map[string]string{"state": state}); got != float64(want) {
			t.Errorf("transitions{state=%q} = %v, stats says %d", state, got, want)
		}
	}
	for reason, want := range bs.Sheds {
		if got := sampleValue(fams, "aliasd_shed_requests_total", map[string]string{"reason": reason}); got != float64(want) {
			t.Errorf("sheds{reason=%q} = %v, stats says %d", reason, got, want)
		}
	}
	if got := sampleValue(fams, "aliasd_budget_cache_shrinks_total", nil); got != float64(bs.CacheShrinks) {
		t.Errorf("cache_shrinks = %v, stats says %d", got, bs.CacheShrinks)
	}
	if got := sampleValue(fams, "aliasd_budget_evictions_total", nil); got != float64(bs.Evictions) {
		t.Errorf("budget evictions = %v, stats says %d", got, bs.Evictions)
	}
	if got := sampleValue(fams, "aliasd_inflight_queries", nil); got != float64(bs.InFlight) {
		t.Errorf("inflight gauge = %v, stats says %d", got, bs.InFlight)
	}
	wantDraining := 0.0
	if bs.Draining {
		wantDraining = 1
	}
	if got := sampleValue(fams, "aliasd_draining", nil); got != wantDraining {
		t.Errorf("draining gauge = %v, stats says %v", got, bs.Draining)
	}
	if got := sampleValue(fams, "aliasd_drains_total", nil); got != float64(bs.Drains) {
		t.Errorf("drains = %v, stats says %d", got, bs.Drains)
	}
}

// TestBudgetHardArcShedEvictRecover drives the full degradation arc with a
// deterministic heap probe (always 0, so only the service's own accounting
// moves the watermark): a module whose build estimate alone exceeds a tiny
// budget flips the tracker to hard; uploads are then shed with 429 while
// queries still answer; a governor round shrinks memos and force-evicts the
// module; with the accounting back to zero the tracker recovers, the next
// round restores the caches, and uploads are accepted again. Every counter
// the arc bumped must reconcile exactly between /metrics and /v1/stats.
func TestBudgetHardArcShedEvictRecover(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{
		Parallel:      2,
		MemBudget:     2048, // fig1's build estimate is far above 85% of this
		GovernEvery:   -1,   // governor driven by hand: GovernOnce below
		BudgetOptions: budget.Options{ReadHeap: func() int64 { return 0 }},
	})
	defer s.Close()

	// Upload passes admission (nothing accounted yet) and the post-publish
	// reconcile flips the tracker to hard.
	if resp := postModule(t, ts, "fig1", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}
	bs := getStats(t, ts).Budget
	if !bs.Enabled || bs.State != "hard" {
		t.Fatalf("budget after upload = %+v, want enabled hard", bs)
	}
	if bs.AccountedBytes <= bs.HardBytes || bs.UsedBytes != bs.AccountedBytes {
		t.Fatalf("accounting inconsistent: %+v", bs)
	}

	// Hard watermark: uploads shed with 429, the budget reason, and the
	// retry contract.
	decodeShed(t, postModule(t, ts, "late", "ir", tinyModule("late")), http.StatusTooManyRequests, "budget")

	// Queries still answer — hard pressure narrows admission, it does not
	// stop the read path.
	h, ok := s.Registry().Get("fig1")
	if !ok {
		t.Fatal("fig1 not registered")
	}
	pairs := namedPairs(h.Mod)[:1]
	h.Release()
	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query under hard pressure: %d %s", qresp.StatusCode, body(t, qresp))
	}
	body(t, qresp)

	// One governor round: memo caches shrink, then the module itself is
	// evicted (unpinned, LRU) because the accounting still exceeds the soft
	// watermark; the post-action reconcile sees zero and recovers.
	s.GovernOnce()
	bs = getStats(t, ts).Budget
	if bs.CacheShrinks < 1 {
		t.Errorf("governor shrank no memo caches: %+v", bs)
	}
	if bs.Evictions < 1 {
		t.Errorf("governor evicted no modules: %+v", bs)
	}
	if n := s.Registry().Len(); n != 0 {
		t.Errorf("registry holds %d modules after budget eviction, want 0", n)
	}
	if bs.State != "ok" {
		t.Errorf("state after reclamation = %q, want ok", bs.State)
	}

	// Next round unwinds the degradation flag; uploads are accepted again.
	s.GovernOnce()
	if resp := postModule(t, ts, "again", "ir", tinyModule("again")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload after recovery: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}

	// The whole arc reconciles: metrics and stats render identical numbers.
	bs = getStats(t, ts).Budget
	if bs.Sheds["upload_budget"] != 1 {
		t.Errorf("upload_budget sheds = %d, want 1", bs.Sheds["upload_budget"])
	}
	if bs.Transitions["hard"] < 1 || bs.Transitions["ok"] < 1 {
		t.Errorf("transition counters missed the arc: %+v", bs.Transitions)
	}
	assertBudgetFamiliesReconcile(t, scrape(t, ts.URL), bs)
}

// TestMaxInFlightShedsExcessQueries holds MaxInFlight batches at the chaos
// seam and checks the next one is shed at admission — before decode — with
// the inflight reason, and that the held batches complete untouched.
func TestMaxInFlightShedsExcessQueries(t *testing.T) {
	src := fig1Source(t)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		Parallel:    2,
		MaxInFlight: 2,
		Chaos: &chaosHooks{queryStart: func(string, int) {
			started <- struct{}{}
			<-release
		}},
	})
	defer s.Close()
	if resp := postModule(t, ts, "fig1", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}
	h, _ := s.Registry().Get("fig1")
	pairs := namedPairs(h.Mod)[:1]
	h.Release()
	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				t.Errorf("held query: %v", err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("held query: %d %s", resp.StatusCode, body(t, resp))
				return
			}
			body(t, resp)
		}()
	}
	<-started
	<-started
	if got := s.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	decodeShed(t, resp, http.StatusServiceUnavailable, "inflight")

	close(release)
	wg.Wait()
	bs := getStats(t, ts).Budget
	if bs.Sheds["inflight"] != 1 {
		t.Errorf("inflight sheds = %d, want 1", bs.Sheds["inflight"])
	}
	if bs.InFlight != 0 {
		t.Errorf("inflight gauge = %d after completion, want 0", bs.InFlight)
	}
}

// TestQueryTimeoutShedsMidFlight installs a chaos stall longer than the
// request deadline: the batch is admitted, decoded, then cancelled
// mid-flight and shed with the timeout reason.
func TestQueryTimeoutShedsMidFlight(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{
		Parallel:     2,
		QueryTimeout: 2 * time.Millisecond,
		Chaos: &chaosHooks{queryStart: func(string, int) {
			time.Sleep(30 * time.Millisecond) // far past the deadline
		}},
	})
	defer s.Close()
	if resp := postModule(t, ts, "fig1", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}
	h, _ := s.Registry().Get("fig1")
	pairs := namedPairs(h.Mod)[:1]
	h.Release()
	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	decodeShed(t, resp, http.StatusServiceUnavailable, "timeout")
	if got := getStats(t, ts).Budget.Sheds["timeout"]; got != 1 {
		t.Errorf("timeout sheds = %d, want 1", got)
	}
}

// TestDrainLifecycle walks the shutdown sequence: BeginDrain flips /readyz
// to draining and sheds new work on both surfaces while an in-flight batch
// (held at the chaos seam) keeps its slot; Drain times out while it is
// held, then completes once it finishes.
func TestDrainLifecycle(t *testing.T) {
	src := fig1Source(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		Parallel: 2,
		Chaos: &chaosHooks{queryStart: func(string, int) {
			started <- struct{}{}
			<-release
		}},
	})
	defer s.Close()
	if resp := postModule(t, ts, "fig1", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}
	h, _ := s.Registry().Get("fig1")
	pairs := namedPairs(h.Mod)[:1]
	h.Release()
	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Errorf("in-flight query: %v", err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("in-flight query after drain began: %d %s", resp.StatusCode, body(t, resp))
			return
		}
		body(t, resp)
	}()
	<-started

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("BeginDrain did not flip the drain flag")
	}

	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rr ReadyResponse
	if code := rresp.StatusCode; code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", code)
	}
	if err := json.Unmarshal(body(t, rresp), &rr); err != nil || rr.Status != "draining" {
		t.Fatalf("readyz = %+v (err %v), want draining", rr, err)
	}

	// New work on both surfaces is shed; the held batch keeps its slot.
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	decodeShed(t, qresp, http.StatusServiceUnavailable, "draining")
	decodeShed(t, postModule(t, ts, "late", "ir", tinyModule("late")), http.StatusServiceUnavailable, "draining")

	// Drain cannot finish while the batch is held...
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	err = s.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("Drain returned nil with a batch still in flight")
	}

	// ...and completes promptly once it is released.
	close(release)
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	wg.Wait()

	bs := getStats(t, ts).Budget
	if !bs.Draining || bs.Drains != 1 {
		t.Errorf("drain counters = draining %v drains %d, want true/1", bs.Draining, bs.Drains)
	}
	if bs.Sheds["draining"] != 1 || bs.Sheds["upload_draining"] != 1 {
		t.Errorf("drain sheds = %+v, want draining=1 upload_draining=1", bs.Sheds)
	}
}

// TestMaxBatchBytesRejectsOversizedBody pins the configurable body cap: an
// oversized /v1/query body gets a structured 413 naming the limit, without
// being decoded.
func TestMaxBatchBytesRejectsOversizedBody(t *testing.T) {
	s, ts := startServer(t, Config{MaxBatchBytes: 128})
	defer s.Close()
	big := `{"module":"fig1","pairs":[` + strings.Repeat(`{"func":"f","a":"x","b":"y"},`, 50)
	big = big[:len(big)-1] + "]}"
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}
	if b := body(t, resp); !bytes.Contains(b, []byte("128-byte limit")) {
		t.Errorf("413 body %s does not name the limit", b)
	}
}

// TestBuildQueueFullShedsAndReadyzBacklogged fills the async build pipeline
// under concurrency: with one worker held at the chaos seam and a backlog
// of one, the third upload is refused with 503 and /readyz reports
// backlogged (the stronger not-ready signal); releasing the worker drains
// the queue and readiness returns.
func TestBuildQueueFullShedsAndReadyzBacklogged(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		BuildWorkers: 1,
		BuildBacklog: 1,
		Chaos: &chaosHooks{buildStart: func(string) {
			started <- struct{}{}
			<-release
		}},
	})
	defer s.Close()
	defer close(release) // never leave the worker blocked if an assert fails

	post := func(name string) *http.Response {
		t.Helper()
		return postModuleAsync(t, ts.URL, name, "ir", tinyModule(name))
	}
	// First upload: accepted, picked up by the worker, held at BuildStart.
	if resp := post("q1"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("q1: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}
	<-started
	// Second upload: accepted into the (now empty) backlog slot.
	if resp := post("q2"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("q2: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}
	// Third upload: backlog full — refused with 503.
	if resp := post("q3"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("q3 with a full backlog: %d, want 503", resp.StatusCode)
	} else if b := body(t, resp); !bytes.Contains(b, []byte("build queue full")) {
		t.Errorf("503 body %s does not explain the full queue", b)
	}

	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rr ReadyResponse
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a full backlog: %d, want 503", rresp.StatusCode)
	}
	if err := json.Unmarshal(body(t, rresp), &rr); err != nil || rr.Status != "backlogged" {
		t.Fatalf("readyz = %+v (err %v), want backlogged", rr, err)
	}

	release <- struct{}{} // q1
	release <- struct{}{} // q2
	pollStatus(t, ts.URL, "q1", "ready")
	pollStatus(t, ts.URL, "q2", "ready")
	rresp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body(t, rresp), &rr); err != nil || rr.Status != "ready" {
		t.Fatalf("readyz after drain = %+v (err %v), want ready", rr, err)
	}
}
