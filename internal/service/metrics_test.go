package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// scrape fetches and parses GET /metrics.
func scrape(t *testing.T, url string) []*telemetry.ParsedFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	text := string(body(t, resp))
	if err := telemetry.Lint(text); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v", err)
	}
	fams, err := telemetry.Parse(text)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return fams
}

// sampleValue returns the value of the family's sample matching the label
// subset (0 when absent).
func sampleValue(fams []*telemetry.ParsedFamily, name string, labels map[string]string) float64 {
	f := telemetry.FindFamily(fams, name)
	if f == nil {
		return 0
	}
	for _, s := range f.Samples {
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return 0
}

// TestMetricsReconcileWithStats is the tentpole's contract: after a mixed
// concurrent batch run, every per-module counter family on /metrics equals
// the corresponding /v1/stats field exactly — both endpoints render the
// same snapshot structs, so no drift is tolerated.
func TestMetricsReconcileWithStats(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{Parallel: 4})
	defer s.Close()
	resp := postModule(t, ts, "fig1", "minic", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("module upload: %d %s", resp.StatusCode, body(t, resp))
	}

	h, ok := s.Registry().Get("fig1")
	if !ok {
		t.Fatal("module not registered")
	}
	pairs := namedPairs(h.Mod)
	h.Release()

	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})
	var wg sync.WaitGroup
	const clients = 4
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				qr, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					t.Errorf("POST /v1/query: %v", err)
					return
				}
				if qr.StatusCode != http.StatusOK {
					t.Errorf("query: %d %s", qr.StatusCode, body(t, qr))
					return
				}
				body(t, qr)
			}
		}()
	}
	wg.Wait()

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body(t, sresp), &stats); err != nil {
		t.Fatal(err)
	}
	fams := scrape(t, ts.URL)

	if len(stats.Modules) != 1 {
		t.Fatalf("stats has %d modules, want 1", len(stats.Modules))
	}
	ms := stats.Modules[0]
	mod := map[string]string{"module": "fig1"}
	for family, want := range map[string]float64{
		"aliasd_module_queries_total":         float64(ms.Queries),
		"aliasd_module_cache_hits_total":      float64(ms.CacheHits),
		"aliasd_module_cache_misses_total":    float64(ms.CacheMisses),
		"aliasd_module_computed_total":        float64(ms.Computed),
		"aliasd_module_noalias_total":         float64(ms.NoAlias),
		"aliasd_module_cache_evictions_total": float64(ms.Evictions),
		"aliasd_module_cache_entries":         float64(ms.Cached),
		"aliasd_module_mem_bytes":             float64(ms.MemBytes),
	} {
		if got := sampleValue(fams, family, mod); got != want {
			t.Errorf("%s = %v, /v1/stats says %v", family, got, want)
		}
	}
	for _, mem := range ms.Members {
		lbl := map[string]string{"module": "fig1", "member": mem.Name}
		if got := sampleValue(fams, "aliasd_member_noalias_total", lbl); got != float64(mem.NoAlias) {
			t.Errorf("member %s noalias = %v, stats says %d", mem.Name, got, mem.NoAlias)
		}
		if got := sampleValue(fams, "aliasd_member_first_wins_total", lbl); got != float64(mem.FirstWins) {
			t.Errorf("member %s first_wins = %v, stats says %d", mem.Name, got, mem.FirstWins)
		}
	}
	if ms.Planner == nil {
		t.Fatal("planner section absent with planner on")
	}
	for path, want := range map[string]int64{
		"sweep":    ms.Planner.SweepNoAlias,
		"index":    ms.Planner.IndexPairs,
		"fallback": ms.Planner.FallbackPairs,
	} {
		lbl := map[string]string{"module": "fig1", "path": path}
		if got := sampleValue(fams, "aliasd_planner_pairs_total", lbl); got != float64(want) {
			t.Errorf("planner pairs path=%s = %v, stats says %d", path, got, want)
		}
	}

	// Pipeline histograms: every successful query observed end-to-end and
	// per stage, every pair counted.
	wantQueries := float64(clients * 3)
	qh, err := telemetry.FindFamily(fams, "aliasd_query_duration_seconds").Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if float64(qh.Count) != wantQueries {
		t.Errorf("query histogram count = %d, want %v", qh.Count, wantQueries)
	}
	for _, stage := range []string{"decode", "validate", "shard", "plan", "evaluate", "aggregate", "encode"} {
		f := telemetry.FindFamily(fams, "aliasd_query_stage_duration_seconds")
		got := 0.0
		for _, smp := range f.Samples {
			if smp.Name == f.Name+"_count" && smp.Labels["stage"] == stage {
				got = smp.Value
			}
		}
		if got != wantQueries {
			t.Errorf("stage %s observed %v times, want %v", stage, got, wantQueries)
		}
	}
	if got := sampleValue(fams, "aliasd_query_pairs_total", nil); got != wantQueries*float64(len(pairs)) {
		t.Errorf("pairs_total = %v, want %v", got, wantQueries*float64(len(pairs)))
	}
	if got := sampleValue(fams, "aliasd_http_requests_total",
		map[string]string{"route": "/v1/query", "code": "200"}); got != wantQueries {
		t.Errorf("http_requests /v1/query 200 = %v, want %v", got, wantQueries)
	}

	// The budget/backpressure families reconcile in the disabled state too:
	// zeros on both endpoints, live inflight/drain gauges either way. (The
	// enabled-state reconcile is pinned by TestBudgetHardArcShedEvictRecover.)
	if stats.Budget.Enabled {
		t.Error("budget reports enabled without a MemBudget")
	}
	assertBudgetFamiliesReconcile(t, fams, stats.Budget)
}

// TestTraceEcho checks the ?trace=1 contract: the response carries the
// request ID from the X-Request-ID header (client-supplied here) and spans
// for the decode→aggregate stages; without the flag the field is absent.
func TestTraceEcho(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{})
	defer s.Close()
	resp := postModule(t, ts, "fig1", "minic", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("module upload: %d %s", resp.StatusCode, body(t, resp))
	}
	h, _ := s.Registry().Get("fig1")
	pairs := namedPairs(h.Mod)[:1]
	h.Release()
	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/query?trace=1", bytes.NewReader(reqBody))
	req.Header.Set("X-Request-ID", "trace-me-42")
	qr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := qr.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("X-Request-ID echoed %q, want the client's ID", got)
	}
	var out QueryResponse
	if err := json.Unmarshal(body(t, qr), &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("?trace=1 response has no trace section")
	}
	if out.Trace.RequestID != "trace-me-42" {
		t.Errorf("trace request_id = %q", out.Trace.RequestID)
	}
	seen := map[string]bool{}
	for _, sp := range out.Trace.Spans {
		seen[sp.Stage] = true
		if sp.DurationUS < 0 {
			t.Errorf("stage %s has negative duration", sp.Stage)
		}
	}
	for _, stage := range []string{"decode", "validate", "shard", "plan", "evaluate", "aggregate"} {
		if !seen[stage] {
			t.Errorf("trace echo missing stage %q (have %v)", stage, out.Trace.Spans)
		}
	}

	// Untraced request: field absent, so default responses stay
	// byte-identical to earlier releases.
	qr2, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	if b := body(t, qr2); bytes.Contains(b, []byte(`"trace"`)) {
		t.Errorf("untraced response leaked a trace field: %s", b)
	}
}

// TestReadyz drives the readiness probe white-box: a staged build flips it
// to 503/building, finishing the build flips it back to 200/ready.
func TestReadyz(t *testing.T) {
	s, ts := startServer(t, Config{})
	defer s.Close()

	get := func() (int, ReadyResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var rr ReadyResponse
		if err := json.Unmarshal(body(t, resp), &rr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rr
	}

	if code, rr := get(); code != http.StatusOK || rr.Status != "ready" {
		t.Fatalf("idle service: %d %+v, want 200 ready", code, rr)
	}

	h := NewPending("slow", "ir")
	if err := s.Registry().Reserve(h); err != nil {
		t.Fatal(err)
	}
	if code, rr := get(); code != http.StatusServiceUnavailable || rr.Status != "building" || rr.Building != 1 {
		t.Fatalf("mid-build: %d %+v, want 503 building", code, rr)
	}

	s.Registry().Finish(h, fmt.Errorf("synthetic failure"))
	if code, rr := get(); code != http.StatusOK || rr.Status != "ready" {
		t.Fatalf("after build settles: %d %+v, want 200 ready (failed builds are not in-flight)", code, rr)
	}
}

// TestInternerGaugeDropsAcrossDelete pins the per-module interner down: the
// memory-governance item the ROADMAP carried since the handle-lifecycle PR.
// Each build mints its symbolic expressions into a module-owned interner,
// so aliasd_interner_claimed_exprs must rise with an upload and FALL back
// when the module is deleted — the expressions die with the handle instead
// of accreting in a process-wide table. Churn (upload → delete → upload)
// must therefore plateau instead of growing linearly, which is what the
// predecessor of this test (TestInternerGaugeFlatAcrossDelete) documented
// as a leak.
func TestInternerGaugeDropsAcrossDelete(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{})
	defer s.Close()

	claimed := func() float64 {
		return sampleValue(scrape(t, ts.URL), "aliasd_interner_claimed_exprs", nil)
	}
	deleteModule := func(name string) {
		t.Helper()
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/modules/"+name, nil)
		dr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body(t, dr)
		if dr.StatusCode != http.StatusNoContent {
			t.Fatalf("DELETE %s: %d", name, dr.StatusCode)
		}
	}

	if idle := claimed(); idle != 0 {
		t.Fatalf("idle service claims %v interned exprs, want 0", idle)
	}

	var perUpload float64
	for i := 0; i < 3; i++ {
		resp := postModule(t, ts, "fig1", "minic", src)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("round %d upload: %d %s", i, resp.StatusCode, body(t, resp))
		}
		up := claimed()
		if up <= 0 {
			t.Fatalf("round %d: claimed-exprs gauge is %v after upload, want > 0", i, up)
		}
		if i == 0 {
			perUpload = up
		} else if up != perUpload {
			t.Errorf("round %d: claimed %v, want the same %v every round (same module, fresh interner)", i, up, perUpload)
		}
		deleteModule("fig1")
		if down := claimed(); down != 0 {
			t.Errorf("round %d: claimed-exprs gauge is %v after delete, want 0 (module interner must be reclaimed)", i, down)
		}
	}

	// Two live modules claim independently; deleting one releases exactly
	// its share.
	for _, name := range []string{"churn-a", "churn-b"} {
		resp := postModule(t, ts, name, "minic", src)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: %d %s", name, resp.StatusCode, body(t, resp))
		}
	}
	both := claimed()
	if both != 2*perUpload {
		t.Errorf("two live modules claim %v, want %v (independent interners)", both, 2*perUpload)
	}
	deleteModule("churn-a")
	if one := claimed(); one != perUpload {
		t.Errorf("after deleting one of two: claimed %v, want %v", one, perUpload)
	}
	deleteModule("churn-b")
	if zero := claimed(); zero != 0 {
		t.Errorf("after deleting all modules: claimed %v, want 0", zero)
	}
}

// TestMetricsLint runs the full live exposition — every registered family,
// vec children and collectors included — through the in-repo promtool
// stand-in. scrape() lints internally; this test exists so a lint
// regression fails with its own name even if reconciliation also breaks.
func TestMetricsLint(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{})
	defer s.Close()
	resp := postModule(t, ts, "fig1", "minic", src)
	body(t, resp)
	fams := scrape(t, ts.URL)
	for _, name := range []string{
		"aliasd_http_requests_total",
		"aliasd_query_duration_seconds",
		"aliasd_build_queue_depth",
		"aliasd_modules",
		"aliasd_uptime_seconds",
		"aliasd_interner_exprs",
	} {
		if telemetry.FindFamily(fams, name) == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
}
