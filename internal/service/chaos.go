package service

// Injector is the service's fault-injection seam. Production runs with
// Config.Chaos nil — every hook site is a single nil check — while soak
// and robustness tests install an implementation that delays builds,
// allocates transient garbage on the query path (driving the memory
// budget across its watermarks), or stalls response writes (a slow client
// draining its socket). cmd/aliasd wires the -chaos flag to a trivial
// implementation; the service tests use channel-blocking injectors to
// hold requests at precise points.
//
// Hooks run synchronously on the request/build goroutine, after admission
// checks — an injected fault consumes an admitted slot, exactly like real
// slow work would.
type Injector interface {
	// BuildStart runs at the top of every module build (sync handler or
	// async build worker) with the module name.
	BuildStart(module string)
	// QueryStart runs after a /v1/query batch passes admission and
	// decoding, before evaluation.
	QueryStart(module string, pairs int)
	// ResponseWrite runs immediately before a successful /v1/query
	// response body is written.
	ResponseWrite()
	// StoreWrite runs after each completed physical write step of a store
	// mutation (see the store.Step* constants). cmd/aliasd's
	// crash-after-write=N injector counts these and hard-exits on the Nth —
	// the crash-recovery tests' stand-in for a kill -9 mid-persist.
	StoreWrite(step string)
}

// injectBuild, injectQuery and injectResponse are the nil-safe call sites.
func (s *Service) injectBuild(module string) {
	if s.cfg.Chaos != nil {
		s.cfg.Chaos.BuildStart(module)
	}
}

func (s *Service) injectQuery(module string, pairs int) {
	if s.cfg.Chaos != nil {
		s.cfg.Chaos.QueryStart(module, pairs)
	}
}

func (s *Service) injectResponse() {
	if s.cfg.Chaos != nil {
		s.cfg.Chaos.ResponseWrite()
	}
}

func (s *Service) injectStoreWrite(step string) {
	if s.cfg.Chaos != nil {
		s.cfg.Chaos.StoreWrite(step)
	}
}
