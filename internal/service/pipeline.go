package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// Pair is one alias query of a batch: two value names within one function,
// the textual form of alias.Pair.
type Pair struct {
	Func string `json:"func"`
	A    string `json:"a"`
	B    string `json:"b"`
}

// Result is the service-side rendering of one alias.Verdict.
type Result struct {
	// Result is "no-alias" or "may-alias" (alias.Result.String()).
	Result string `json:"result"`
	// Resolved names the first chain member that proved no-alias — the
	// LLVM-AAResults attribution. Empty for may-alias.
	Resolved string `json:"resolved,omitempty"`
	// Provers names every member that independently proved no-alias.
	Provers []string `json:"provers,omitempty"`
	// Detail carries rbaa's Fig. 14 attribution ("global-range", …) when
	// an Explainer member produced one.
	Detail string `json:"detail,omitempty"`
}

// resolvedPair is a validated pair, pinned to its request index so the
// aggregate stage can reassemble results in request order.
type resolvedPair struct {
	idx  int
	p, q *ir.Value
}

// shard groups the resolved pairs of one function. Shards are the pipeline's
// locality unit: a function's queries hit the same analysis rows, so one
// worker streams through them with a warm cache.
type shard struct {
	fn    string
	pairs []resolvedPair
}

// Hot-path buffer pools. A steady client re-sends equally sized batches, so
// the response slice and the resolved-pair scratch — the two per-request
// allocations proportional to MaxBatch — are recycled instead of re-made.
// Buffers are returned only by request handlers that finished encoding;
// RunBatch callers that keep the results simply never return them.
var (
	resultBufPool   = sync.Pool{New: func() any { return new([]Result) }}
	resolvedBufPool = sync.Pool{New: func() any { return new([]resolvedPair) }}
)

func getResultBuf(n int) []Result {
	bp := resultBufPool.Get().(*[]Result)
	if cap(*bp) < n {
		*bp = make([]Result, n)
	}
	return (*bp)[:n]
}

// putResultBuf recycles a buffer obtained from getResultBuf. The caller
// must be done reading it: the next request will overwrite every slot.
func putResultBuf(res []Result) { resultBufPool.Put(&res) }

func getResolvedBuf(n int) []resolvedPair {
	bp := resolvedBufPool.Get().(*[]resolvedPair)
	if cap(*bp) < n {
		*bp = make([]resolvedPair, n)
	}
	return (*bp)[:n]
}

func putResolvedBuf(rs []resolvedPair) { resolvedBufPool.Put(&rs) }

// resolveBatch is the validate stage: every name must resolve against the
// handle's value index and both values must be pointer-typed. The first
// offending pair aborts the batch (the client sent a malformed request;
// partial evaluation would make responses order-dependent). The returned
// slice is pooled scratch; RunBatch recycles it after the query stage.
func resolveBatch(h *Handle, pairs []Pair) ([]resolvedPair, error) {
	out := getResolvedBuf(len(pairs))
	fail := func(format string, args ...any) ([]resolvedPair, error) {
		putResolvedBuf(out)
		return nil, fmt.Errorf(format, args...)
	}
	// Batches overwhelmingly query one function repeatedly (the shard stage
	// depends on it), so the per-function value map is looked up once per
	// run of equal names, not twice per pair.
	var curFn string
	var vals map[string]*ir.Value
	for i, pr := range pairs {
		if vals == nil || pr.Func != curFn {
			vals = h.values[pr.Func]
			if vals == nil {
				return fail("pair %d: unknown function %q", i, pr.Func)
			}
			curFn = pr.Func
		}
		p, ok := vals[pr.A]
		if !ok {
			return fail("pair %d: no value %q in function %q", i, pr.A, pr.Func)
		}
		q, ok := vals[pr.B]
		if !ok {
			return fail("pair %d: no value %q in function %q", i, pr.B, pr.Func)
		}
		if p.Typ != ir.TPtr {
			return fail("pair %d: value %q is not pointer-typed", i, pr.A)
		}
		if q.Typ != ir.TPtr {
			return fail("pair %d: value %q is not pointer-typed", i, pr.B)
		}
		out[i] = resolvedPair{idx: i, p: p, q: q}
	}
	return out, nil
}

// shardByFunc is the shard stage: pairs grouped by function, shards ordered
// by first appearance, request order preserved within each shard.
func shardByFunc(pairs []Pair, rs []resolvedPair) []shard {
	index := map[string]int{}
	var shards []shard
	for i, rp := range rs {
		fn := pairs[i].Func
		si, ok := index[fn]
		if !ok {
			si = len(shards)
			index[fn] = si
			shards = append(shards, shard{fn: fn})
		}
		shards[si].pairs = append(shards[si].pairs, rp)
	}
	return shards
}

// batchChunk caps the pairs one worker takes at a time. Batches are at most
// Config.MaxBatch pairs, far below the experiment sweeps that pool.ChunkSize
// is tuned for, so the pipeline cuts finer to keep all workers busy.
const batchChunk = 256

// evaluate is the query-worker stage plus the order-restoring half of the
// aggregate stage: shards are cut into chunks, chunks fan out across the
// service pool, and each worker writes results into the request-indexed
// slots of the output slice. The result is byte-identical to a sequential
// evaluation because slot i depends only on pair i.
//
// With a planner on the handle, each shard is first swept into a plan (the
// O(N log N) partition over the shard's distinct values — a shard is one
// function, the planner's unit), and the workers answer pairs through the
// plan: cross-group pairs short-circuit, intra-group pairs hit the compiled
// index, inconclusive pairs walk the legacy chain. Tallies are kept per
// chunk and folded once, so workers never contend on the counters.
//
// Cancellation is cooperative at chunk granularity: a shed or timed-out
// request stops dispatching chunks (ForEachCtx) and returns the context's
// error; chunks already running finish — their slot writes are discarded
// with the pooled buffer.
func (s *Service) evaluate(ctx context.Context, tr *telemetry.Trace, h *Handle, shards []shard, n int) ([]Result, error) {
	out := getResultBuf(n)
	type task struct {
		sh     int
		lo, hi int
	}
	ntasks := 0
	for si := range shards {
		ntasks += (len(shards[si].pairs) + batchChunk - 1) / batchChunk
	}
	tasks := make([]task, 0, ntasks)
	for si := range shards {
		for _, c := range pool.Chunks(len(shards[si].pairs), batchChunk) {
			tasks = append(tasks, task{sh: si, lo: c[0], hi: c[1]})
		}
	}
	planStart := time.Now()
	var plans []*alias.Plan
	if h.Planner != nil {
		plans = make([]*alias.Plan, len(shards))
		vals := make([]*ir.Value, 0, 2*batchChunk)
		for si := range shards {
			if err := ctx.Err(); err != nil {
				putResultBuf(out)
				return nil, err
			}
			vals = vals[:0]
			for _, rp := range shards[si].pairs {
				vals = append(vals, rp.p, rp.q)
			}
			plans[si] = h.Planner.Plan(vals)
		}
	}
	evalStart := observeStage(s.metrics.stagePlan, stgPlan, tr, planStart)
	err := s.pool.ForEachCtx(ctx, len(tasks), func(ti int) {
		t := tasks[ti]
		if plans != nil {
			var tally alias.PlanTally
			plan := plans[t.sh]
			for _, rp := range shards[t.sh].pairs[t.lo:t.hi] {
				out[rp.idx] = encodeVerdict(h.Snap, plan.Evaluate(rp.p, rp.q, &tally))
			}
			h.Planner.Fold(tally)
			return
		}
		for _, rp := range shards[t.sh].pairs[t.lo:t.hi] {
			out[rp.idx] = encodeVerdict(h.Snap, h.Snap.Evaluate(rp.p, rp.q))
		}
	})
	observeStage(s.metrics.stageEvaluate, stgEvaluate, tr, evalStart)
	if err != nil {
		putResultBuf(out)
		return nil, err
	}
	return out, nil
}

// encodeVerdict renders one verdict with member names resolved against the
// snapshot's chain. The prover list is sized exactly from the verdict's
// mask, so encoding never grows a slice.
func encodeVerdict(snap alias.Snapshot, v alias.Verdict) Result {
	r := Result{Result: v.Result.String()}
	if v.Result == alias.NoAlias && v.Resolved >= 0 {
		r.Resolved = snap.MemberName(v.Resolved)
	}
	if n := v.NumProvers(); n > 0 {
		r.Provers = make([]string, 0, n)
	}
	for i := 0; i < snap.NumMembers(); i++ {
		if v.MemberNoAlias(i) {
			r.Provers = append(r.Provers, snap.MemberName(i))
		}
		if d := v.Detail(i); d != "" && r.Detail == "" {
			r.Detail = d
		}
	}
	return r
}

// RunBatch pushes one decoded batch through validate → shard → plan → query
// workers and returns the request-ordered results. It is the programmatic
// core of POST /v1/query, exported for golden tests and embedders. Stage
// latencies land in the service's /metrics histograms, and when ctx carries
// a telemetry.Trace (the HTTP envelope installs one) each stage also
// records a span on it. The returned slice comes from a pool; internal
// callers that finished encoding recycle it with putResultBuf, external
// callers may keep it indefinitely.
//
// aliaslint:hotpath — scrape callbacks must not take locks this path holds
// (enforced by the metricreg analyzer through the lock summaries).
func (s *Service) RunBatch(ctx context.Context, h *Handle, pairs []Pair) ([]Result, error) {
	if h.State() != StateReady {
		return nil, fmt.Errorf("module %q is %s", h.Name, h.State())
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	if len(pairs) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch has %d pairs, exceeding the %d-pair limit", len(pairs), s.cfg.MaxBatch)
	}
	// The deadline/cancellation check runs before every stage (and per
	// chunk inside evaluate, via ForEachCtx) so a shed or timed-out batch
	// stops mid-flight instead of evaluating to completion.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := telemetry.FromContext(ctx)
	start := time.Now()
	rs, err := resolveBatch(h, pairs)
	if err != nil {
		return nil, err
	}
	now := observeStage(s.metrics.stageValidate, stgValidate, tr, start)
	shards := shardByFunc(pairs, rs)
	putResolvedBuf(rs)
	observeStage(s.metrics.stageShard, stgShard, tr, now)
	return s.evaluate(ctx, tr, h, shards, len(pairs))
}
