package service

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/pool"
)

// Pair is one alias query of a batch: two value names within one function,
// the textual form of alias.Pair.
type Pair struct {
	Func string `json:"func"`
	A    string `json:"a"`
	B    string `json:"b"`
}

// Result is the service-side rendering of one alias.Verdict.
type Result struct {
	// Result is "no-alias" or "may-alias" (alias.Result.String()).
	Result string `json:"result"`
	// Resolved names the first chain member that proved no-alias — the
	// LLVM-AAResults attribution. Empty for may-alias.
	Resolved string `json:"resolved,omitempty"`
	// Provers names every member that independently proved no-alias.
	Provers []string `json:"provers,omitempty"`
	// Detail carries rbaa's Fig. 14 attribution ("global-range", …) when
	// an Explainer member produced one.
	Detail string `json:"detail,omitempty"`
}

// resolvedPair is a validated pair, pinned to its request index so the
// aggregate stage can reassemble results in request order.
type resolvedPair struct {
	idx  int
	p, q *ir.Value
}

// shard groups the resolved pairs of one function. Shards are the pipeline's
// locality unit: a function's queries hit the same analysis rows, so one
// worker streams through them with a warm cache.
type shard struct {
	fn    string
	pairs []resolvedPair
}

// resolveBatch is the validate stage: every name must resolve against the
// handle's value index and both values must be pointer-typed. The first
// offending pair aborts the batch (the client sent a malformed request;
// partial evaluation would make responses order-dependent).
func resolveBatch(h *Handle, pairs []Pair) ([]resolvedPair, error) {
	out := make([]resolvedPair, len(pairs))
	for i, pr := range pairs {
		p, err := h.Lookup(pr.Func, pr.A)
		if err != nil {
			return nil, fmt.Errorf("pair %d: %v", i, err)
		}
		q, err := h.Lookup(pr.Func, pr.B)
		if err != nil {
			return nil, fmt.Errorf("pair %d: %v", i, err)
		}
		if p.Typ != ir.TPtr {
			return nil, fmt.Errorf("pair %d: value %q is not pointer-typed", i, pr.A)
		}
		if q.Typ != ir.TPtr {
			return nil, fmt.Errorf("pair %d: value %q is not pointer-typed", i, pr.B)
		}
		out[i] = resolvedPair{idx: i, p: p, q: q}
	}
	return out, nil
}

// shardByFunc is the shard stage: pairs grouped by function, shards ordered
// by first appearance, request order preserved within each shard.
func shardByFunc(pairs []Pair, rs []resolvedPair) []shard {
	index := map[string]int{}
	var shards []shard
	for i, rp := range rs {
		fn := pairs[i].Func
		si, ok := index[fn]
		if !ok {
			si = len(shards)
			index[fn] = si
			shards = append(shards, shard{fn: fn})
		}
		shards[si].pairs = append(shards[si].pairs, rp)
	}
	return shards
}

// batchChunk caps the pairs one worker takes at a time. Batches are at most
// Config.MaxBatch pairs, far below the experiment sweeps that pool.ChunkSize
// is tuned for, so the pipeline cuts finer to keep all workers busy.
const batchChunk = 256

// evaluate is the query-worker stage plus the order-restoring half of the
// aggregate stage: shards are cut into chunks, chunks fan out across the
// service pool, and each worker writes results into the request-indexed
// slots of the output slice. The result is byte-identical to a sequential
// evaluation because slot i depends only on pair i.
func (s *Service) evaluate(h *Handle, shards []shard, n int) []Result {
	out := make([]Result, n)
	type task struct {
		sh     int
		lo, hi int
	}
	var tasks []task
	for si := range shards {
		for _, c := range pool.Chunks(len(shards[si].pairs), batchChunk) {
			tasks = append(tasks, task{sh: si, lo: c[0], hi: c[1]})
		}
	}
	s.pool.ForEach(len(tasks), func(ti int) {
		t := tasks[ti]
		for _, rp := range shards[t.sh].pairs[t.lo:t.hi] {
			out[rp.idx] = encodeVerdict(h.Snap, h.Snap.Evaluate(rp.p, rp.q))
		}
	})
	return out
}

// encodeVerdict renders one verdict with member names resolved against the
// snapshot's chain.
func encodeVerdict(snap alias.Snapshot, v alias.Verdict) Result {
	r := Result{Result: v.Result.String()}
	if v.Result == alias.NoAlias && v.Resolved >= 0 {
		r.Resolved = snap.MemberName(v.Resolved)
	}
	for i := 0; i < snap.NumMembers(); i++ {
		if v.MemberNoAlias(i) {
			r.Provers = append(r.Provers, snap.MemberName(i))
		}
		if d := v.Detail(i); d != "" && r.Detail == "" {
			r.Detail = d
		}
	}
	return r
}

// RunBatch pushes one decoded batch through validate → shard → query
// workers and returns the request-ordered results. It is the programmatic
// core of POST /v1/query, exported for golden tests and embedders.
func (s *Service) RunBatch(h *Handle, pairs []Pair) ([]Result, error) {
	if h.State() != StateReady {
		return nil, fmt.Errorf("module %q is %s", h.Name, h.State())
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	if len(pairs) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch has %d pairs, exceeding the %d-pair limit", len(pairs), s.cfg.MaxBatch)
	}
	rs, err := resolveBatch(h, pairs)
	if err != nil {
		return nil, err
	}
	return s.evaluate(h, shardByFunc(pairs, rs), len(pairs)), nil
}
