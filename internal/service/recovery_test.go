package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/budget"
	"repro/internal/frontend/minic"
	"repro/internal/store"
)

// postQueryAll queries every enumerable pair of module and returns the raw
// response body — the byte-golden unit the recovery tests compare across
// restarts.
func postQueryAll(t *testing.T, ts *httptest.Server, module, src string) (int, []byte) {
	t.Helper()
	m, err := minic.Compile(module, src)
	if err != nil {
		t.Fatalf("compiling %s: %v", module, err)
	}
	req, err := json.Marshal(QueryRequest{Module: module, Pairs: namedPairs(m)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	return resp.StatusCode, body(t, resp)
}

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// recordFiles lists the record filenames currently under dir/records.
func recordFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "records"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, filepath.Join(dir, "records", e.Name()))
	}
	return out
}

// TestPersistRecoverRoundTrip is the tentpole's core contract in one
// process: upload through a store-backed service, build a second service
// over the same directory, Recover, and the recovered daemon must return
// byte-identical verdicts — plus a nonzero recovery duration and zero
// quarantines on /v1/stats.
func TestPersistRecoverRoundTrip(t *testing.T) {
	src := fig1Source(t)
	dir := t.TempDir()

	s1, ts1 := startServer(t, Config{Parallel: 2, Store: openStoreT(t, dir)})
	if resp := postModule(t, ts1, "fig1", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	}
	code, golden := postQueryAll(t, ts1, "fig1", src)
	if code != http.StatusOK {
		t.Fatalf("pre-crash query: %d %s", code, golden)
	}
	st1 := getStats(t, ts1)
	if st1.Store == nil || st1.Store.Records != 1 || st1.Store.Puts != 1 {
		t.Fatalf("pre-crash store stats = %+v, want 1 record / 1 put", st1.Store)
	}
	s1.Close()
	ts1.Close()

	// "Restart": a fresh service over the same directory, replayed before
	// queries are answered — exactly what cmd/aliasd does on boot.
	s2, ts2 := startServer(t, Config{Parallel: 2, Store: openStoreT(t, dir)})
	if err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	code, got := postQueryAll(t, ts2, "fig1", src)
	if code != http.StatusOK {
		t.Fatalf("post-recovery query: %d %s", code, got)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("recovered verdicts differ from pre-crash golden:\npre:  %s\npost: %s", golden, got)
	}
	st2 := getStats(t, ts2)
	if st2.Store == nil {
		t.Fatal("store stats missing after recovery")
	}
	if st2.Store.Records != 1 || st2.Store.Quarantined != 0 {
		t.Errorf("store stats = %+v, want 1 record, 0 quarantined", st2.Store)
	}
	if st2.Store.RecoverySeconds <= 0 {
		t.Errorf("recovery_seconds = %v, want > 0 after a replay", st2.Store.RecoverySeconds)
	}
	if st2.Store.Recovering {
		t.Error("store stats still report recovering after Recover returned")
	}
}

// TestRecoveryQuarantinesCorruptRecord bit-flips one of two persisted
// records on disk; recovery must quarantine exactly that record, serve the
// other, and never panic or return a wrong verdict.
func TestRecoveryQuarantinesCorruptRecord(t *testing.T) {
	src := fig1Source(t)
	dir := t.TempDir()

	s1, ts1 := startServer(t, Config{Parallel: 2, Store: openStoreT(t, dir)})
	for _, name := range []string{"a", "b"} {
		if resp := postModule(t, ts1, name, "minic", src); resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: %d", name, resp.StatusCode)
		}
	}
	s1.Close()
	ts1.Close()

	files := recordFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("record files = %d, want 2", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st := openStoreT(t, dir)
	s2, ts2 := startServer(t, Config{Parallel: 2, Store: st})
	if err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if q := st.Quarantined(); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	ok := 0
	for _, name := range []string{"a", "b"} {
		code, _ := postQueryAll(t, ts2, name, src)
		if code == http.StatusOK {
			ok++
		}
	}
	if ok != 1 {
		t.Errorf("recovered modules answering = %d, want exactly 1 (other quarantined)", ok)
	}
	stats := getStats(t, ts2)
	if stats.Store.Quarantined != 1 || stats.Store.Records != 1 {
		t.Errorf("store stats = %+v, want quarantined=1 records=1", stats.Store)
	}
	// The quarantined bytes moved to corrupt/, not deleted: evidence for
	// the operator, never re-served.
	ents, err := os.ReadDir(filepath.Join(dir, "corrupt"))
	if err != nil || len(ents) != 1 {
		t.Errorf("corrupt/ entries = %d (err %v), want 1", len(ents), err)
	}
}

// TestDeleteTombstoneSurvivesRestart pins the delete contract: a module
// deleted before the crash must not resurrect on recovery.
func TestDeleteTombstoneSurvivesRestart(t *testing.T) {
	src := fig1Source(t)
	dir := t.TempDir()

	s1, ts1 := startServer(t, Config{Parallel: 2, Store: openStoreT(t, dir)})
	for _, name := range []string{"keep", "drop"} {
		if resp := postModule(t, ts1, name, "minic", src); resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: %d", name, resp.StatusCode)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/modules/drop", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, body(t, resp))
	}
	resp.Body.Close()
	s1.Close()
	ts1.Close()

	st := openStoreT(t, dir)
	s2, ts2 := startServer(t, Config{Parallel: 2, Store: st})
	if err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if code, _ := postQueryAll(t, ts2, "keep", src); code != http.StatusOK {
		t.Errorf("kept module not recovered: %d", code)
	}
	if code, _ := postQueryAll(t, ts2, "drop", src); code != http.StatusNotFound {
		t.Errorf("deleted module resurrected: %d, want 404", code)
	}
	if st.Len() != 1 {
		t.Errorf("store live records = %d, want 1", st.Len())
	}
}

// TestRecoveringGatesReadyzAndAdmission pins the recovery state machine's
// externally visible face: while the recovering flag is up, /readyz
// reports "recovering", queries shed with reason "recovering", and uploads
// shed with reason "upload_recovering" — all retryable 503s, all counted.
func TestRecoveringGatesReadyzAndAdmission(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{Parallel: 2})
	if resp := postModule(t, ts, "fig1", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}

	s.recovering.Store(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while recovering = %d, want 503", resp.StatusCode)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(body(t, resp), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "recovering" {
		t.Errorf("readyz status = %q, want \"recovering\"", ready.Status)
	}

	req, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: []Pair{{Func: "main", A: "p", B: "p"}}})
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	decodeShed(t, qresp, http.StatusServiceUnavailable, "recovering")
	// Upload sheds carry the same machine reason; the counter key is the
	// upload-specific one.
	decodeShed(t, postModule(t, ts, "late", "minic", src), http.StatusServiceUnavailable, "recovering")
	s.recovering.Store(false)

	// Both rejections are visible on /v1/stats, and the flag clearing
	// reopens admission.
	bs := getStats(t, ts).Budget
	if bs.Sheds["recovering"] != 1 || bs.Sheds["upload_recovering"] != 1 {
		t.Errorf("sheds = %v, want recovering=1 upload_recovering=1", bs.Sheds)
	}
	if code, _ := postQueryAll(t, ts, "fig1", src); code != http.StatusOK {
		t.Errorf("query after recovery = %d, want 200", code)
	}
}

// TestRetryAfterAdaptiveBounds pins the adaptive backoff hint: 1s on an
// unloaded daemon, monotone in both budget state and in-flight depth, and
// never outside [shedRetryAfterMin, shedRetryAfterMax].
func TestRetryAfterAdaptiveBounds(t *testing.T) {
	s := New(Config{MaxInFlight: 8, MemBudget: 1000, GovernEvery: -1})
	defer s.Close()

	if got := s.retryAfterSeconds(); got != shedRetryAfterMin {
		t.Errorf("idle retry-after = %d, want %d", got, shedRetryAfterMin)
	}

	// Monotone in in-flight depth, clamped at the max even far past the
	// admission limit.
	prev := 0
	for _, n := range []int64{0, 1, 2, 4, 6, 8, 100} {
		s.inflight.Store(n)
		got := s.retryAfterSeconds()
		if got < shedRetryAfterMin || got > shedRetryAfterMax {
			t.Errorf("inflight=%d: retry-after %d outside [%d,%d]", n, got, shedRetryAfterMin, shedRetryAfterMax)
		}
		if got < prev {
			t.Errorf("inflight=%d: retry-after %d < previous %d (not monotone)", n, got, prev)
		}
		prev = got
	}

	// Monotone in budget state: soft adds, hard adds more.
	s.inflight.Store(0)
	okSecs := s.retryAfterSeconds()
	s.budget.SetAccounted(750) // past the 70% soft watermark
	if s.budget.State() != budget.StateSoft {
		t.Fatalf("budget state = %v, want soft", s.budget.State())
	}
	softSecs := s.retryAfterSeconds()
	s.budget.SetAccounted(900) // past the 85% hard watermark
	if s.budget.State() != budget.StateHard {
		t.Fatalf("budget state = %v, want hard", s.budget.State())
	}
	hardSecs := s.retryAfterSeconds()
	if !(okSecs < softSecs && softSecs < hardSecs) {
		t.Errorf("retry-after not monotone in budget state: ok=%d soft=%d hard=%d", okSecs, softSecs, hardSecs)
	}

	// Fully loaded and hard-pressured: the clamp holds.
	s.inflight.Store(1000)
	if got := s.retryAfterSeconds(); got != shedRetryAfterMax {
		t.Errorf("saturated retry-after = %d, want clamp %d", got, shedRetryAfterMax)
	}
}

// TestBuildInfoAndUptimeReconcile pins the identity satellite: /metrics
// exports aliasd_build_info with the version the binary reports on
// /v1/stats, and the uptime gauge moves with the same clock as
// uptime_seconds.
func TestBuildInfoAndUptimeReconcile(t *testing.T) {
	_, ts := startServer(t, Config{Parallel: 1})

	stats := getStats(t, ts)
	if stats.Version != Version {
		t.Errorf("/v1/stats version = %q, want %q", stats.Version, Version)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", stats.UptimeSeconds)
	}
	fams := scrape(t, ts.URL)
	if got := sampleValue(fams, "aliasd_build_info", map[string]string{"version": Version}); got != 1 {
		t.Errorf("aliasd_build_info{version=%q} = %v, want 1", Version, got)
	}
	// Scraped after /v1/stats, same start instant: the gauge can only be
	// ahead, never behind.
	if got := sampleValue(fams, "aliasd_uptime_seconds", nil); got < stats.UptimeSeconds {
		t.Errorf("aliasd_uptime_seconds = %v behind /v1/stats uptime %v", got, stats.UptimeSeconds)
	}
}
