// Package service exposes the paper's alias analyses as a long-running
// batched query daemon — the network face of the repository, served by
// cmd/aliasd and exercised by cmd/aliasload.
//
// # Model
//
// Clients first register a module: they POST textual IR (or MiniC source,
// lowered through the existing frontend) to /v1/modules. The service parses
// and verifies the program once, runs the full per-function analysis stack —
// range analysis feeding scevaa, basicaa, rbaa and the andersen points-to
// oracle, chained behind an alias.Manager — and keeps the result behind a
// read-only alias.Snapshot handle in a bounded Registry. Construction cost
// is paid once per module; queries against the snapshot are lock-free reads
// plus the manager's memo cache.
//
// Queries are batched: one POST to /v1/query carries up to Config.MaxBatch
// pairs, each naming two values of one function ("func", "a", "b"). A batch
// flows through a pipeline of stages modeled on staged stream processors
// such as bgpipe:
//
//	decode → validate/resolve → shard-by-function → plan → query workers → aggregate
//
// Decoding and validation happen on the request goroutine; resolved pairs
// are sharded by function (queries of one function touch the same analysis
// rows, so a shard is a locality unit), each shard is swept into an
// alias.Plan over the module's compiled index (unless the planner is
// disabled — see alias.Planner for the sweep-line partition and its
// fallback contract), shards are cut into chunks by the same internal/pool
// machinery that drives the experiment sweeps, chunks fan out across a
// bounded worker pool, and the aggregate stage reassembles results in
// request order — responses are therefore byte-identical to a sequential
// evaluation of the same batch.
//
// /v1/stats reports the per-analysis no-alias and attribution counters plus
// cache hit rates of every registered module (the live, service-side view
// of the paper's Fig. 13/14 numbers); /healthz is a cheap liveness probe.
//
// # Module lifecycle
//
// Modules are refcounted: every batch pins its handle for the duration of
// the request, so DELETE /v1/modules/{name} (or an eviction) retires a
// module without yanking it from under in-flight queries — teardown waits
// for the last pin. With eviction enabled, registering into a full registry
// displaces the least-recently-queried module (preferring ones with no
// pins) instead of failing; only builds that actually succeeded compete
// for module slots, so malformed uploads can never displace anything.
//
// Builds can run asynchronously: POST /v1/modules?async=1 reserves the name
// and returns 202 immediately; the parse/verify/analyze chain runs on a
// bounded build-worker queue, and GET /v1/modules/{name} reports the status
// (building → ready | failed), so a large upload never stalls the HTTP
// handler.
//
// # Endpoints
//
//	GET    /healthz              liveness + module count
//	GET    /readyz               readiness (fails while builds are in flight)
//	GET    /metrics              Prometheus text exposition
//	GET    /v1/modules           list registered modules
//	POST   /v1/modules?name=N[&format=ir|minic][&async=1]   register a module (body = source)
//	GET    /v1/modules/{name}    one module's summary + build status
//	DELETE /v1/modules/{name}    drop a module (in-flight batches finish first)
//	POST   /v1/query             batched alias queries
//	GET    /v1/stats             per-module counters, cache hit/eviction rates, memory
package service

import (
	"log/slog"
	"net/http"
	"time"

	"repro/internal/alias"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxBatch       = 4096
	DefaultMaxSourceBytes = 8 << 20
	DefaultMaxModules     = 64
	DefaultBuildWorkers   = 2
	DefaultBuildBacklog   = 16
)

// Config bounds the service. The zero value means "use defaults".
type Config struct {
	// MaxBatch caps the pairs accepted in one /v1/query request.
	MaxBatch int
	// MaxSourceBytes caps the module source accepted by /v1/modules.
	MaxSourceBytes int
	// MaxModules caps the registry size.
	MaxModules int
	// Parallel sizes the query-stage worker pool: 0 or 1 sequential,
	// negative GOMAXPROCS.
	Parallel int
	// CacheLimit bounds each module's verdict memo cache (entries): 0 uses
	// the alias-package default, negative disables caching.
	CacheLimit int
	// EvictModules makes a full registry evict its least-recently-queried
	// module (preferring unpinned ones) instead of refusing the upload.
	EvictModules bool
	// DisablePlanner skips compiling the per-module alias index and routes
	// every batch through the legacy Manager chain. The planner is on by
	// default; this is the differential/bench escape hatch (aliasd
	// -planner=false) and the way to keep full per-member attribution on
	// sweep-separable pairs.
	DisablePlanner bool
	// BuildWorkers sizes the async-build queue (0 = DefaultBuildWorkers).
	BuildWorkers int
	// Logger receives the service's structured logs (request access lines at
	// debug level, build outcomes at info). nil discards everything — tests
	// and embedders that do not care stay quiet.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxSourceBytes == 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if c.MaxModules == 0 {
		c.MaxModules = DefaultMaxModules
	}
	if c.BuildWorkers == 0 {
		c.BuildWorkers = DefaultBuildWorkers
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Service is the daemon state: a module registry, the shared query pool,
// the async build queue, and the telemetry surface they all report into.
type Service struct {
	cfg     Config
	reg     *Registry
	pool    *pool.Pool
	builds  *pool.Queue
	start   time.Time
	log     *slog.Logger
	metrics *metrics
}

// New builds a service from the config (zero fields filled with defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		reg:    NewRegistry(cfg.MaxModules, cfg.EvictModules),
		pool:   &pool.Pool{Parallel: cfg.Parallel},
		builds: pool.NewQueue(cfg.BuildWorkers, DefaultBuildBacklog),
		start:  time.Now(),
		log:    cfg.Logger,
	}
	s.metrics = newMetrics(s)
	// Set before the first Submit: the channel send inside Submit is the
	// happens-before edge the queue workers read the observer through.
	s.builds.Observer = func(wait, _ time.Duration) {
		s.metrics.queueWait.Observe(wait.Seconds())
	}
	return s
}

// Close drains the async build queue. Queries already in flight are
// unaffected; the registry needs no teardown of its own.
func (s *Service) Close() { s.builds.Close() }

// managerOptions threads the configured memo-cache bound into each
// module's analysis chain.
func (s *Service) managerOptions() alias.ManagerOptions {
	return alias.ManagerOptions{CacheLimit: s.cfg.CacheLimit}
}

// Registry returns the service's module registry (used by tests and by
// embedders that preload modules).
func (s *Service) Registry() *Registry { return s.reg }

// MetricsRegistry returns the telemetry registry behind GET /metrics, for
// embedders that add their own instruments or render the exposition
// out-of-band.
func (s *Service) MetricsRegistry() *telemetry.Registry { return s.metrics.reg }

// Handler returns the HTTP API of the service, wrapped in the request
// envelope (X-Request-ID, trace context, request metrics, access log).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.HandleFunc("GET /v1/modules", s.handleListModules)
	mux.HandleFunc("POST /v1/modules", s.handleCreateModule)
	mux.HandleFunc("GET /v1/modules/{name}", s.handleGetModule)
	mux.HandleFunc("DELETE /v1/modules/{name}", s.handleDeleteModule)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s.instrument(mux)
}
