// Package service exposes the paper's alias analyses as a long-running
// batched query daemon — the network face of the repository, served by
// cmd/aliasd and exercised by cmd/aliasload.
//
// # Model
//
// Clients first register a module: they POST textual IR (or MiniC source,
// lowered through the existing frontend) to /v1/modules. The service parses
// and verifies the program once, runs the full per-function analysis stack —
// range analysis feeding scevaa, basicaa, rbaa and the andersen points-to
// oracle, chained behind an alias.Manager — and keeps the result behind a
// read-only alias.Snapshot handle in a bounded Registry. Construction cost
// is paid once per module; queries against the snapshot are lock-free reads
// plus the manager's memo cache.
//
// Queries are batched: one POST to /v1/query carries up to Config.MaxBatch
// pairs, each naming two values of one function ("func", "a", "b"). A batch
// flows through a pipeline of stages modeled on staged stream processors
// such as bgpipe:
//
//	decode → validate/resolve → shard-by-function → query workers → aggregate
//
// Decoding and validation happen on the request goroutine; resolved pairs
// are sharded by function (queries of one function touch the same analysis
// rows, so a shard is a locality unit), shards are cut into chunks by the
// same internal/pool machinery that drives the experiment sweeps, chunks
// fan out across a bounded worker pool, and the aggregate stage reassembles
// results in request order — responses are therefore byte-identical to a
// sequential evaluation of the same batch.
//
// /v1/stats reports the per-analysis no-alias and attribution counters plus
// cache hit rates of every registered module (the live, service-side view
// of the paper's Fig. 13/14 numbers); /healthz is a cheap liveness probe.
//
// # Endpoints
//
//	GET    /healthz              liveness + module count
//	GET    /v1/modules           list registered modules
//	POST   /v1/modules?name=N[&format=ir|minic]   register a module (body = source)
//	GET    /v1/modules/{name}    one module's summary
//	DELETE /v1/modules/{name}    drop a module
//	POST   /v1/query             batched alias queries
//	GET    /v1/stats             per-module counters and cache hit rates
package service

import (
	"net/http"
	"time"

	"repro/internal/pool"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxBatch       = 4096
	DefaultMaxSourceBytes = 8 << 20
	DefaultMaxModules     = 64
)

// Config bounds the service. The zero value means "use defaults".
type Config struct {
	// MaxBatch caps the pairs accepted in one /v1/query request.
	MaxBatch int
	// MaxSourceBytes caps the module source accepted by /v1/modules.
	MaxSourceBytes int
	// MaxModules caps the registry size.
	MaxModules int
	// Parallel sizes the query-stage worker pool: 0 or 1 sequential,
	// negative GOMAXPROCS.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxSourceBytes == 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if c.MaxModules == 0 {
		c.MaxModules = DefaultMaxModules
	}
	return c
}

// Service is the daemon state: a module registry plus the shared query pool.
type Service struct {
	cfg   Config
	reg   *Registry
	pool  *pool.Pool
	start time.Time
}

// New builds a service from the config (zero fields filled with defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		reg:   NewRegistry(cfg.MaxModules),
		pool:  &pool.Pool{Parallel: cfg.Parallel},
		start: time.Now(),
	}
}

// Registry returns the service's module registry (used by tests and by
// embedders that preload modules).
func (s *Service) Registry() *Registry { return s.reg }

// Handler returns the HTTP API of the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/modules", s.handleListModules)
	mux.HandleFunc("POST /v1/modules", s.handleCreateModule)
	mux.HandleFunc("GET /v1/modules/{name}", s.handleGetModule)
	mux.HandleFunc("DELETE /v1/modules/{name}", s.handleDeleteModule)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}
