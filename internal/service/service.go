// Package service exposes the paper's alias analyses as a long-running
// batched query daemon — the network face of the repository, served by
// cmd/aliasd and exercised by cmd/aliasload.
//
// # Model
//
// Clients first register a module: they POST textual IR (or MiniC source,
// lowered through the existing frontend) to /v1/modules. The service parses
// and verifies the program once, runs the full per-function analysis stack —
// range analysis feeding scevaa, basicaa, rbaa and the andersen points-to
// oracle, chained behind an alias.Manager — and keeps the result behind a
// read-only alias.Snapshot handle in a bounded Registry. Construction cost
// is paid once per module; queries against the snapshot are lock-free reads
// plus the manager's memo cache.
//
// Queries are batched: one POST to /v1/query carries up to Config.MaxBatch
// pairs, each naming two values of one function ("func", "a", "b"). A batch
// flows through a pipeline of stages modeled on staged stream processors
// such as bgpipe:
//
//	decode → validate/resolve → shard-by-function → plan → query workers → aggregate
//
// Decoding and validation happen on the request goroutine; resolved pairs
// are sharded by function (queries of one function touch the same analysis
// rows, so a shard is a locality unit), each shard is swept into an
// alias.Plan over the module's compiled index (unless the planner is
// disabled — see alias.Planner for the sweep-line partition and its
// fallback contract), shards are cut into chunks by the same internal/pool
// machinery that drives the experiment sweeps, chunks fan out across a
// bounded worker pool, and the aggregate stage reassembles results in
// request order — responses are therefore byte-identical to a sequential
// evaluation of the same batch.
//
// /v1/stats reports the per-analysis no-alias and attribution counters plus
// cache hit rates of every registered module (the live, service-side view
// of the paper's Fig. 13/14 numbers); /healthz is a cheap liveness probe.
//
// # Module lifecycle
//
// Modules are refcounted: every batch pins its handle for the duration of
// the request, so DELETE /v1/modules/{name} (or an eviction) retires a
// module without yanking it from under in-flight queries — teardown waits
// for the last pin. With eviction enabled, registering into a full registry
// displaces the least-recently-queried module (preferring ones with no
// pins) instead of failing; only builds that actually succeeded compete
// for module slots, so malformed uploads can never displace anything.
//
// Builds can run asynchronously: POST /v1/modules?async=1 reserves the name
// and returns 202 immediately; the parse/verify/analyze chain runs on a
// bounded build-worker queue, and GET /v1/modules/{name} reports the status
// (building → ready | failed), so a large upload never stalls the HTTP
// handler.
//
// # Endpoints
//
//	GET    /healthz              liveness + module count
//	GET    /readyz               readiness (fails while builds are in flight)
//	GET    /metrics              Prometheus text exposition
//	GET    /v1/modules           list registered modules
//	POST   /v1/modules?name=N[&format=ir|minic][&async=1]   register a module (body = source)
//	GET    /v1/modules/{name}    one module's summary + build status
//	DELETE /v1/modules/{name}    drop a module (in-flight batches finish first)
//	POST   /v1/query             batched alias queries
//	GET    /v1/stats             per-module counters, cache hit/eviction rates, memory
package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alias"
	"repro/internal/budget"
	"repro/internal/pool"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Version identifies the daemon build on /metrics (aliasd_build_info) and
// /v1/stats. Bumped per release PR.
const Version = "0.10.0"

// Defaults for Config fields left zero.
const (
	DefaultMaxBatch       = 4096
	DefaultMaxSourceBytes = 8 << 20
	DefaultMaxModules     = 64
	DefaultBuildWorkers   = 2
	DefaultBuildBacklog   = 16
	DefaultMaxBatchBytes  = 16 << 20
	DefaultMaxInFlight    = 256
	DefaultGovernEvery    = 250 * time.Millisecond
)

// Config bounds the service. The zero value means "use defaults".
type Config struct {
	// MaxBatch caps the pairs accepted in one /v1/query request.
	MaxBatch int
	// MaxSourceBytes caps the module source accepted by /v1/modules.
	MaxSourceBytes int
	// MaxModules caps the registry size.
	MaxModules int
	// Parallel sizes the query-stage worker pool: 0 or 1 sequential,
	// negative GOMAXPROCS.
	Parallel int
	// CacheLimit bounds each module's verdict memo cache (entries): 0 uses
	// the alias-package default, negative disables caching.
	CacheLimit int
	// EvictModules makes a full registry evict its least-recently-queried
	// module (preferring unpinned ones) instead of refusing the upload.
	EvictModules bool
	// DisablePlanner skips compiling the per-module alias index and routes
	// every batch through the legacy Manager chain. The planner is on by
	// default; this is the differential/bench escape hatch (aliasd
	// -planner=false) and the way to keep full per-member attribution on
	// sweep-separable pairs.
	DisablePlanner bool
	// BuildWorkers sizes the async-build queue (0 = DefaultBuildWorkers).
	BuildWorkers int
	// BuildBacklog bounds async builds queued behind the workers (0 =
	// DefaultBuildBacklog). A full backlog rejects uploads with 503.
	BuildBacklog int
	// MaxBatchBytes caps the /v1/query request body in bytes (0 =
	// DefaultMaxBatchBytes). Oversized bodies get a structured 413.
	MaxBatchBytes int64
	// MemBudget caps approximate process memory in bytes; 0 disables the
	// budget entirely. Crossing the soft watermark shrinks memo caches and
	// evicts unpinned LRU modules; crossing the hard watermark additionally
	// rejects uploads (429) and tightens query admission (503). Both
	// rejections carry Retry-After.
	MemBudget int64
	// BudgetOptions tunes the watermark fractions and (for tests) the heap
	// probe. Zero value = budget package defaults.
	BudgetOptions budget.Options
	// GovernEvery is the budget governor's tick (0 = DefaultGovernEvery).
	// Negative disables the background loop; tests then drive GovernOnce
	// directly. Irrelevant while MemBudget is 0.
	GovernEvery time.Duration
	// MaxInFlight bounds concurrently admitted /v1/query batches (0 =
	// DefaultMaxInFlight, negative = unbounded). Excess requests are shed
	// with 503 + Retry-After rather than queued: the client's retry policy,
	// not a hidden server queue, absorbs the burst.
	MaxInFlight int
	// QueryTimeout is the per-request evaluation deadline for /v1/query
	// (0 = none). A batch past its deadline is cancelled mid-flight and
	// answered with 503 + Retry-After.
	QueryTimeout time.Duration
	// Store is the crash-safe on-disk module store (nil = memory-only, the
	// pre-PR-10 behavior). With a store configured, successful uploads are
	// persisted before they are acknowledged, deletes are tombstoned, and
	// Recover replays the manifest into the registry at boot.
	Store *store.Store
	// ReuseCacheBytes bounds the cross-module function-analysis reuse cache
	// (0 = the alias-package 32 MiB default, negative = disable reuse).
	ReuseCacheBytes int64
	// Chaos injects synthetic faults at the service's seams (nil = off —
	// production). See Injector.
	Chaos Injector
	// Logger receives the service's structured logs (request access lines at
	// debug level, build outcomes at info). nil discards everything — tests
	// and embedders that do not care stay quiet.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxSourceBytes == 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if c.MaxModules == 0 {
		c.MaxModules = DefaultMaxModules
	}
	if c.BuildWorkers == 0 {
		c.BuildWorkers = DefaultBuildWorkers
	}
	if c.BuildBacklog == 0 {
		c.BuildBacklog = DefaultBuildBacklog
	}
	if c.MaxBatchBytes == 0 {
		c.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.GovernEvery == 0 {
		c.GovernEvery = DefaultGovernEvery
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Service is the daemon state: a module registry, the shared query pool,
// the async build queue, the memory-budget governor, and the telemetry
// surface they all report into.
type Service struct {
	cfg     Config
	reg     *Registry
	pool    *pool.Pool
	builds  *pool.Queue
	start   time.Time
	log     *slog.Logger
	metrics *metrics

	// store is the crash-safe module store (nil when running memory-only);
	// reuse is the cross-module function-analysis cache runBuild consults.
	// recovering is set for the duration of Recover's manifest replay —
	// /readyz reports it and admission sheds with a retryable reason.
	store        *store.Store
	reuse        *alias.IndexCache
	recovering   atomic.Bool
	recoveryDur  atomic.Int64 // nanoseconds spent in the last Recover
	funcsReused  atomic.Int64 // function analyses served from the reuse cache
	storeFailing atomic.Int64 // persist operations that returned an error

	// budget is the watermark tracker (nil-safe: disabled when MemBudget
	// is 0); the governor fields drive its periodic reconcile loop.
	budget    *budget.Tracker
	govStop   chan struct{}
	govWG     sync.WaitGroup
	closeOnce sync.Once
	// fullCacheLimit is the resolved per-module memo bound the governor
	// restores after degradation (Config.CacheLimit with the alias-package
	// default applied; ≤ 0 means caching is off and resizing is moot).
	fullCacheLimit int
	// degraded marks that memo caches are currently shrunk.
	degraded atomic.Bool
	// lastGC is the unix-nano time of the governor's last forced GC.
	lastGC atomic.Int64

	// inflight counts admitted /v1/query batches; draining flips every
	// admission path to shedding. sheds, drains, budgetEvictions and
	// cacheShrinks are the single source both /metrics and /v1/stats
	// render, which is what keeps the reconciliation exact.
	inflight        atomic.Int64
	draining        atomic.Bool
	sheds           shedCounters
	drains          atomic.Int64
	budgetEvictions atomic.Int64
	cacheShrinks    atomic.Int64
}

// shedCounters tallies load-shedding rejections by reason — the label set
// of aliasd_shed_requests_total and the sheds section of /v1/stats.
//
// aliaslint: never copy a shedCounters — it embeds atomics.
type shedCounters struct {
	draining         atomic.Int64 // queries rejected while draining
	inflight         atomic.Int64 // queries past the MaxInFlight bound
	budget           atomic.Int64 // queries rejected at the hard watermark
	timeout          atomic.Int64 // queries cancelled at QueryTimeout
	canceled         atomic.Int64 // queries whose client went away mid-batch
	recovering       atomic.Int64 // queries rejected during store recovery
	uploadBudget     atomic.Int64 // uploads rejected at the hard watermark
	uploadDraining   atomic.Int64 // uploads rejected while draining
	uploadRecovering atomic.Int64 // uploads rejected during store recovery
}

// New builds a service from the config (zero fields filled with defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		reg:    NewRegistry(cfg.MaxModules, cfg.EvictModules),
		pool:   &pool.Pool{Parallel: cfg.Parallel},
		builds: pool.NewQueue(cfg.BuildWorkers, cfg.BuildBacklog),
		start:  time.Now(),
		log:    cfg.Logger,
		budget: budget.New(cfg.MemBudget, cfg.BudgetOptions),
		store:  cfg.Store,
	}
	if cfg.ReuseCacheBytes >= 0 {
		s.reuse = alias.NewIndexCache(cfg.ReuseCacheBytes)
	}
	if s.store != nil && cfg.Chaos != nil {
		// The chaos seam for crash-after-write: every completed persist step
		// reports through the injector, which may hard-exit the process.
		s.store.WriteHook = func(step string) { s.injectStoreWrite(step) }
	}
	s.fullCacheLimit = cfg.CacheLimit
	if s.fullCacheLimit == 0 {
		s.fullCacheLimit = alias.DefaultCacheLimit
	}
	s.metrics = newMetrics(s)
	// Set before the first Submit: the channel send inside Submit is the
	// happens-before edge the queue workers read the observer through.
	s.builds.Observer = func(wait, _ time.Duration) {
		s.metrics.queueWait.Observe(wait.Seconds())
	}
	if s.budget.Enabled() && cfg.GovernEvery > 0 {
		s.govStop = make(chan struct{})
		s.govWG.Add(1)
		go func() {
			defer s.govWG.Done()
			t := time.NewTicker(cfg.GovernEvery)
			defer t.Stop()
			for {
				select {
				case <-s.govStop:
					return
				case <-t.C:
					s.GovernOnce()
				}
			}
		}()
	}
	return s
}

// Close stops the budget governor and drains the async build queue.
// Queries already in flight are unaffected; the registry needs no teardown
// of its own. Idempotent.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		if s.govStop != nil {
			close(s.govStop)
		}
	})
	s.govWG.Wait()
	s.builds.Close()
}

// BeginDrain flips the service into drain mode: /readyz reports 503
// "draining" so load balancers stop routing here, and every new query or
// upload is shed with a structured 503 + Retry-After, while batches
// already admitted run to completion. Idempotent; there is no way back —
// draining is the prelude to shutdown.
func (s *Service) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.drains.Add(1)
		s.log.Info("drain started", "in_flight", s.inflight.Load())
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain blocks until every in-flight query batch has completed or ctx
// expires, returning the context's error in the latter case. Callers
// BeginDrain first (so no new batches are admitted), Drain with a
// deadline, then shut the HTTP server down.
func (s *Service) Drain(ctx context.Context) error {
	if n := s.inflight.Load(); n == 0 {
		return nil
	}
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d batches still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-t.C:
			if s.inflight.Load() == 0 {
				return nil
			}
		}
	}
}

// InFlight reports the number of currently admitted /v1/query batches.
func (s *Service) InFlight() int64 { return s.inflight.Load() }

// managerOptions threads the configured memo-cache bound into each
// module's analysis chain.
func (s *Service) managerOptions() alias.ManagerOptions {
	return alias.ManagerOptions{CacheLimit: s.cfg.CacheLimit}
}

// Registry returns the service's module registry (used by tests and by
// embedders that preload modules).
func (s *Service) Registry() *Registry { return s.reg }

// MetricsRegistry returns the telemetry registry behind GET /metrics, for
// embedders that add their own instruments or render the exposition
// out-of-band.
func (s *Service) MetricsRegistry() *telemetry.Registry { return s.metrics.reg }

// Handler returns the HTTP API of the service, wrapped in the request
// envelope (X-Request-ID, trace context, request metrics, access log).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.HandleFunc("GET /v1/modules", s.handleListModules)
	mux.HandleFunc("POST /v1/modules", s.handleCreateModule)
	mux.HandleFunc("GET /v1/modules/{name}", s.handleGetModule)
	mux.HandleFunc("DELETE /v1/modules/{name}", s.handleDeleteModule)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s.instrument(mux)
}
