package service

import (
	"fmt"
	"time"

	"repro/internal/store"
)

// Recover replays the crash-safe store's manifest into the registry —
// cmd/aliasd calls it after the listener is up so health probes see
// "recovering" instead of connection refused. For the duration of the
// replay the service sheds queries and uploads with the retryable
// "recovering" reason; /readyz reports the same.
//
// Each live record re-runs the full build chain through runBuild — the
// frozen-index and interner contracts hold for recovered modules exactly
// as for uploaded ones — with the reuse cache warm across records, so a
// fleet of near-identical persisted modules recovers in far less time than
// it took to build cold. A record that fails to build (a format the binary
// no longer accepts, a module renamed over) is logged and skipped but left
// in the store: the next binary may build it again. A record that fails
// its checksum never reaches here — the store quarantines it during
// replay and it is counted, not served.
//
// Recovery is not re-entrant and must run before the first upload is
// accepted; the recovering gate enforces the latter.
func (s *Service) Recover() error {
	if s.store == nil {
		return nil
	}
	if !s.recovering.CompareAndSwap(false, true) {
		return fmt.Errorf("recovery already running")
	}
	defer s.recovering.Store(false)

	start := time.Now()
	rebuilt, skipped := 0, 0
	replayed, err := s.store.Replay(func(rec store.Record) error {
		h := NewPending(rec.Name, rec.Format)
		if berr := h.build(string(rec.Source), s.cfg.MaxSourceBytes, s.managerOptions(), !s.cfg.DisablePlanner, s.reuse); berr != nil {
			s.log.Error("recovered module failed to build; skipping",
				"module", rec.Name, "error", berr)
			skipped++
			return nil
		}
		s.funcsReused.Add(int64(h.FuncsReused))
		if aerr := s.reg.Add(h); aerr != nil {
			s.log.Error("recovered module not registered; skipping",
				"module", rec.Name, "error", aerr)
			h.retire()
			skipped++
			return nil
		}
		rebuilt++
		return nil
	})

	// Record a nonzero duration even for an empty replay: "recovery ran
	// and found nothing" and "recovery never ran" must be distinguishable
	// on /metrics.
	d := time.Since(start)
	if d <= 0 {
		d = time.Nanosecond
	}
	s.recoveryDur.Store(int64(d))
	s.reconcileBudget()
	s.log.Info("store recovery finished",
		"replayed", replayed, "rebuilt", rebuilt, "skipped", skipped,
		"quarantined", s.store.Quarantined(), "duration", d,
		"functions_reused", s.funcsReused.Load())
	if err != nil {
		return fmt.Errorf("store recovery: %w", err)
	}
	return nil
}

// Recovering reports whether a Recover replay is in progress.
func (s *Service) Recovering() bool { return s.recovering.Load() }

// FlushStore durably rewrites the store manifest — the drain path's final
// barrier before exit. Nil-safe no-op without a store.
func (s *Service) FlushStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Flush()
}
