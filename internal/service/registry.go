package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alias"
	"repro/internal/alias/andersen"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/frontend/minic"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/symbolic"
)

// BuildState is the lifecycle phase of a registered module. An async upload
// is registered Building (reserving its name before the parse/verify/
// analyze chain runs on a build worker), transitions once to Ready or
// Failed, and never changes again; synchronous uploads enter the registry
// already Ready.
type BuildState int32

const (
	StateBuilding BuildState = iota
	StateReady
	StateFailed
)

// String renders the state the way /v1/modules reports it.
func (s BuildState) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("BuildState(%d)", int32(s))
}

// Handle is one registered module: the verified IR, the analysis chain
// behind its read-only snapshot, and the value index the validate stage
// resolves query names against. The built fields (Mod, Snap, IRStats,
// PairQueries, values) are written exactly once — before the state turns
// Ready — and are immutable afterwards; readers must observe State() ==
// StateReady before touching them.
//
// Handles are refcounted. Every registry lookup (Acquire, Get, List) pins
// the handle; callers release the pin with Release when done. A handle
// evicted or deleted from the registry is retired: it tears down — drops
// the module, snapshot and value index so their memory can be reclaimed —
// only when the last pin is released, so an in-flight batch keeps its
// evicted handle fully usable until completion.
//
// aliaslint:handle — acquisitions must Release on every path (enforced by
// the handleleak analyzer).
type Handle struct {
	Name      string
	Format    string // "ir" or "minic"
	CreatedAt time.Time

	Mod  *ir.Module
	Snap alias.Snapshot
	// Planner routes batches through the compiled alias index and the
	// sweep-line partitioner, falling back to Snap for inconclusive pairs.
	// nil when the service disables planning (Config.DisablePlanner) or the
	// chain did not compile; the pipeline then walks the chain per pair.
	Planner *alias.Planner
	IRStats ir.Stats
	// PairQueries is the module's paper-style query count (all unordered
	// same-function pointer pairs) — the natural unit load generators
	// replay.
	PairQueries int
	// FuncsReused counts this build's function analyses served zero-copy
	// from the cross-module reuse cache instead of re-digested (0 without a
	// cache or on an all-cold build). Written once before Ready.
	FuncsReused int

	// values indexes func name → value name → value for the validate stage.
	values map[string]map[string]*ir.Value

	// mgr is the manager behind Snap, kept only so the memory-budget
	// governor can rebound the verdict memo at runtime; the query path
	// never touches it (Snap is the read-only surface). Written once in
	// runBuild, cleared in teardown.
	mgr *alias.Manager

	// memBytes approximates the handle's resident cost (see estimateMem);
	// the live memo-cache size is added on top at stats time.
	memBytes int64

	// interner owns every symbolic expression the module's analyses minted
	// (pointer ranges, index shapes, planner keys). Module-scoped so that
	// retiring the handle releases the whole table — the expressions are
	// unreachable once Mod/Snap/Planner drop. Written once in runBuild,
	// cleared in teardown.
	interner *symbolic.Interner

	// buildErr is set before the state turns Failed.
	buildErr string

	state   atomic.Int32
	refs    atomic.Int64
	retired atomic.Bool
	closed  atomic.Bool
	lastUse atomic.Int64 // unix nanos of the last query-path acquire
}

// NewPending creates a handle in the Building state, ready to be reserved
// in the registry before its build runs.
func NewPending(name, format string) *Handle {
	h := &Handle{Name: name, Format: format, CreatedAt: time.Now()}
	h.lastUse.Store(h.CreatedAt.UnixNano())
	return h
}

// State returns the lifecycle phase. Observing StateReady also guarantees
// the built fields are visible (the atomic store publishes them).
func (h *Handle) State() BuildState { return BuildState(h.state.Load()) }

// Err returns the build failure message ("" unless State is StateFailed).
func (h *Handle) Err() string {
	if h.State() != StateFailed {
		return ""
	}
	return h.buildErr
}

// Closed reports whether the handle has been torn down (retired with no
// pins left). A closed handle must not be queried.
func (h *Handle) Closed() bool { return h.closed.Load() }

// MemBytes approximates the handle's resident memory.
func (h *Handle) MemBytes() int64 { return h.memBytes }

// Release drops one pin. When a retired handle loses its last pin it is
// torn down; until then every pinned reader — an in-flight batch foremost —
// sees it fully intact.
func (h *Handle) Release() {
	if h.refs.Add(-1) == 0 && h.retired.Load() {
		h.teardown()
	}
}

// retire marks the handle as removed from the registry and tears it down
// immediately when nothing pins it.
func (h *Handle) retire() {
	h.retired.Store(true)
	if h.refs.Load() == 0 {
		h.teardown()
	}
}

// teardown drops the built artifacts so the GC can reclaim them. Guarded by
// a CAS: retire and a racing final Release may both observe refs == 0.
// Reached only when the handle is out of the registry and unpinned, so no
// reader can be touching the fields it clears.
func (h *Handle) teardown() {
	if !h.closed.CompareAndSwap(false, true) {
		return
	}
	h.Mod = nil
	h.Snap = alias.Snapshot{}
	h.Planner = nil
	h.values = nil
	h.interner = nil
	h.mgr = nil
}

// ResizeCache rebounds the module's verdict memo (see
// alias.Manager.ResizeCache), reporting whether the bound changed. No-op
// on handles that are not ready or run with caching disabled. The budget
// governor calls this only through pinned handles (eachReadyModule), so
// mgr cannot be torn down mid-call.
func (h *Handle) ResizeCache(limit int) bool {
	if h.mgr == nil {
		return false
	}
	return h.mgr.ResizeCache(limit)
}

// InternedExprs reports how many symbolic expressions the module's own
// interner holds — the per-module share of aliasd_interner_claimed_exprs.
// Zero once the handle is torn down (the expressions were reclaimed) or for
// pre-build handles.
func (h *Handle) InternedExprs() int64 {
	if h.interner == nil {
		return 0
	}
	return h.interner.Stats().Interned
}

// Lookup resolves a "func", "name" reference against the handle's module.
func (h *Handle) Lookup(fn, name string) (*ir.Value, error) {
	vals, ok := h.values[fn]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", fn)
	}
	v, ok := vals[name]
	if !ok {
		return nil, fmt.Errorf("no value %q in function %q", name, fn)
	}
	return v, nil
}

// NewChain builds the service's analysis stack over one verified module:
// rbaa's construction runs the bootstrap range analysis and the GR/LR
// pointer analyses; scevaa, basicaa and the andersen points-to oracle
// complete the chain, combined LLVM-AAResults-style by an alias.Manager
// with the default memo cache (service clients re-query pairs, unlike the
// one-shot experiment sweeps).
func NewChain(m *ir.Module) *alias.Manager {
	return NewChainOpts(m, alias.ManagerOptions{})
}

// NewChainOpts is NewChain with explicit manager options (the service
// threads its configured memo-cache limit through here). Symbolic
// expressions land in the process-wide Default interner.
func NewChainOpts(m *ir.Module, opts alias.ManagerOptions) *alias.Manager {
	return NewChainIn(m, opts, nil)
}

// NewChainIn is NewChainOpts with an explicit interner for the symbolic
// expressions the pointer analyses mint (nil: the Default interner).
// runBuild passes a fresh per-module interner so a module's expressions die
// with its handle instead of accreting in the process-wide table — the
// ROADMAP memory-governance item. The index and planner only see
// expressions minted by the chain, so shape identity (pointer equality of
// interned exprs) stays consistent within the module.
func NewChainIn(m *ir.Module, opts alias.ManagerOptions, in *symbolic.Interner) *alias.Manager {
	return alias.NewManager(opts,
		scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{Interner: in}), andersen.Analyze(m))
}

// estimateMem approximates a built handle's resident cost from the module
// shape: source text, IR values/instructions with their use lists, the
// per-function analysis rows, and the value index. Deliberately coarse —
// the number feeds capacity dashboards, not an allocator.
func estimateMem(srcLen int, st ir.Stats) int64 {
	const (
		perInstr   = 160 // ir.Value + operand/use slices
		perPointer = 96  // analysis rows (ranges, points-to sets)
		perBlock   = 120
		perFunc    = 512
	)
	return int64(srcLen) +
		int64(st.Instrs)*perInstr +
		int64(st.Pointers)*perPointer +
		int64(st.Blocks)*perBlock +
		int64(st.Funcs)*perFunc
}

// exprNodeCost approximates one hash-consed symbolic expression node (the
// Expr struct, its term/arg slices and the intern-table bucket share).
const exprNodeCost = 128

// runBuild runs the parse/verify/analyze chain and fills the built fields
// on success — including, unless withIndex is false, the compiled alias
// index and its batch planner. reuse, when non-nil, serves isolated
// functions whose printed text matches a previous build zero-copy (see
// alias.BuildIndexCached) — the content-addressed incremental-build path a
// re-upload or a recovery replay of a mostly-unchanged module takes. It
// does NOT publish a state transition — the caller decides (Build for
// standalone handles, Registry.Finish for async builds, where promotion
// into the module table and the Ready transition must agree).
func (h *Handle) runBuild(src string, maxSourceBytes int, opts alias.ManagerOptions, withIndex bool, reuse *alias.IndexCache) error {
	if maxSourceBytes > 0 && len(src) > maxSourceBytes {
		return fmt.Errorf("source is %d bytes, exceeding the %d-byte limit", len(src), maxSourceBytes)
	}
	var m *ir.Module
	var err error
	switch h.Format {
	case "ir":
		m, err = ir.Parse(src)
	case "minic":
		m, err = minic.Compile(h.Name, src)
	default:
		return fmt.Errorf("unknown format %q (want \"ir\" or \"minic\")", h.Format)
	}
	if err != nil {
		return fmt.Errorf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		return fmt.Errorf("verify: %v", err)
	}
	// A fresh interner per module: every symbolic expression the chain
	// mints below is owned by this handle and reclaimed at teardown.
	in := symbolic.NewInterner()
	mgr := NewChainIn(m, opts, in)
	var indexBytes int64
	var ix *alias.Index
	if withIndex {
		var reused int
		if ix, reused = alias.BuildIndexCached(mgr, m, reuse); ix != nil {
			mgr.AttachIndex(ix)
			indexBytes = ix.MemBytes()
			h.FuncsReused = reused
		}
	}
	h.Mod = m
	h.Snap = mgr.Snapshot()
	if ix != nil {
		h.Planner = alias.NewPlanner(h.Snap, ix)
	}
	h.IRStats = m.Stats()
	h.PairQueries = alias.NumQueries(m)
	h.values = map[string]map[string]*ir.Value{}
	for _, f := range m.Funcs {
		vals := make(map[string]*ir.Value, len(f.Params))
		for _, v := range f.Values() {
			vals[v.Name] = v
		}
		h.values[f.Name] = vals
	}
	h.interner = in
	h.mgr = mgr
	h.memBytes = estimateMem(len(src), h.IRStats) + indexBytes + in.Stats().Interned*exprNodeCost
	return nil
}

// finishReady publishes the built fields (atomic release store).
func (h *Handle) finishReady() { h.state.Store(int32(StateReady)) }

// fail records the build error and publishes the Failed state.
func (h *Handle) fail(err error) {
	h.buildErr = err.Error()
	h.state.Store(int32(StateFailed))
}

// Build runs the parse/verify/analyze chain synchronously — compiling the
// alias index and planner — and transitions the handle to Ready or Failed.
// The returned error (also recorded on the handle) is safe to echo to
// clients.
func (h *Handle) Build(src string, maxSourceBytes int, opts alias.ManagerOptions) error {
	return h.build(src, maxSourceBytes, opts, true, nil)
}

// build is Build with the index compile switchable (the service threads
// Config.DisablePlanner through here) and the reuse cache pluggable.
func (h *Handle) build(src string, maxSourceBytes int, opts alias.ManagerOptions, withIndex bool, reuse *alias.IndexCache) error {
	if err := h.runBuild(src, maxSourceBytes, opts, withIndex, reuse); err != nil {
		h.fail(err)
		return err
	}
	h.finishReady()
	return nil
}

// BuildHandle parses (enforcing maxSourceBytes), verifies, and analyzes one
// module source synchronously. format is "ir" or "minic". The returned
// error is safe to echo to clients.
func BuildHandle(name, format, src string, maxSourceBytes int) (*Handle, error) {
	h := NewPending(name, format)
	if err := h.Build(src, maxSourceBytes, alias.ManagerOptions{}); err != nil {
		return nil, err
	}
	return h, nil
}

// Registry is the bounded, concurrency-safe map of registered modules with
// lifecycle management. It keeps two tables:
//
//   - mods: Ready modules. Counted against the max bound; with eviction
//     enabled, registering into a full table displaces the
//     least-recently-queried module (preferring unpinned victims).
//   - staging: async builds in flight or failed. Name reservations only —
//     a build that has not proven viable can never evict a healthy module;
//     it is promoted into mods by Finish only once it succeeds.
//
// Every lookup pins the returned handle; see Handle.
type Registry struct {
	mu        sync.RWMutex
	max       int
	evictIdle bool
	mods      map[string]*Handle
	staging   map[string]*Handle
	evictions atomic.Int64
}

// NewRegistry builds a registry holding at most max Ready modules (≤ 0
// means unbounded; the same bound caps staged builds). With evictIdle, a
// registration into a full table evicts the least-recently-used module,
// preferring unpinned ones; evicting a pinned module is safe — its pins
// keep the retired handle usable until released — it just vanishes from
// the registry. Without the policy the registration fails.
func NewRegistry(max int, evictIdle bool) *Registry {
	return &Registry{max: max, evictIdle: evictIdle,
		mods: map[string]*Handle{}, staging: map[string]*Handle{}}
}

// takenLocked reports whether name is held by a module that cannot be
// replaced (anything but a failed staged build), and clears a replaceable
// failed entry as a side effect. Caller holds r.mu for writing.
func (r *Registry) takenLocked(name string) bool {
	if _, ok := r.mods[name]; ok {
		return true
	}
	if prev, ok := r.staging[name]; ok {
		if prev.State() != StateFailed {
			return true
		}
		delete(r.staging, name)
		prev.retire()
	}
	return false
}

// Add registers a Ready handle (the synchronous-upload path; async builds
// go through Reserve/Finish). It refuses duplicates — delete first;
// replacing a live module under concurrent queries would silently reset
// its counters — except that a failed staged build may be replaced, and
// enforces the bound, evicting when the policy allows.
func (r *Registry) Add(h *Handle) error {
	if h.State() != StateReady {
		return fmt.Errorf("module %q is %s, not ready (async builds use Reserve)", h.Name, h.State())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.takenLocked(h.Name) {
		return fmt.Errorf("module %q already registered", h.Name)
	}
	if err := r.makeRoomLocked(); err != nil {
		return err
	}
	r.mods[h.Name] = h
	return nil
}

// Reserve stakes an async build's name claim: the Building handle becomes
// visible to Get/List (so clients can poll its status) without consuming a
// module slot — only Finish, with a viable build in hand, competes for
// those. Staged builds are bounded by the same max so unparseable garbage
// cannot pile up placeholders without bound.
func (r *Registry) Reserve(h *Handle) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.takenLocked(h.Name) {
		return fmt.Errorf("module %q already registered", h.Name)
	}
	if r.max > 0 && len(r.staging) >= r.max {
		return fmt.Errorf("too many builds in flight (%d)", r.max)
	}
	r.staging[h.Name] = h
	return nil
}

// Finish completes an async build: a failure is recorded on the staged
// handle (it stays visible as "failed" until deleted or replaced); a
// success promotes the handle into the module table, evicting per policy —
// the module is viable now, so displacing the LRU is justified. A handle
// deleted while building is finished quietly and left to its pins.
func (r *Registry) Finish(h *Handle, buildErr error) {
	if buildErr != nil {
		h.fail(buildErr)
		return
	}
	r.mu.Lock()
	if r.staging[h.Name] != h {
		r.mu.Unlock()
		// Deleted (or replaced) mid-build: nobody can reach this handle
		// through the registry; publish Ready for the builder's pin and
		// let the pending retire reclaim it.
		h.finishReady()
		return
	}
	if err := r.makeRoomLocked(); err != nil {
		r.mu.Unlock()
		h.fail(err)
		return
	}
	delete(r.staging, h.Name)
	h.finishReady()
	r.mods[h.Name] = h
	r.mu.Unlock()
}

// makeRoomLocked enforces the module-table bound, evicting when allowed.
// Caller holds r.mu for writing.
func (r *Registry) makeRoomLocked() error {
	if r.max <= 0 || len(r.mods) < r.max {
		return nil
	}
	if !r.evictIdle {
		return fmt.Errorf("registry full (%d modules)", r.max)
	}
	var victim *Handle
	victimPinned := true
	for _, h := range r.mods {
		pinned := h.refs.Load() != 0
		switch {
		case victim == nil,
			victimPinned && !pinned,
			victimPinned == pinned && h.lastUse.Load() < victim.lastUse.Load():
			victim, victimPinned = h, pinned
		}
	}
	if victim == nil {
		return fmt.Errorf("registry full (%d modules)", r.max)
	}
	delete(r.mods, victim.Name)
	victim.retire()
	r.evictions.Add(1)
	return nil
}

// EvictOne force-evicts the least-recently-used ready module with no
// outstanding pins, regardless of the evictIdle upload policy — the memory
// -budget governor's lever for returning module memory under pressure.
// It reports the victim's name; ok is false when every module is pinned,
// building, or the table is empty. Unlike makeRoomLocked it never selects
// a pinned victim: a budget eviction exists to free memory now, and a
// pinned module's memory survives until its last Release.
func (r *Registry) EvictOne() (name string, ok bool) {
	r.mu.Lock()
	var victim *Handle
	for _, h := range r.mods {
		if h.refs.Load() != 0 || h.State() != StateReady {
			continue
		}
		if victim == nil || h.lastUse.Load() < victim.lastUse.Load() {
			victim = h
		}
	}
	if victim == nil {
		r.mu.Unlock()
		return "", false
	}
	delete(r.mods, victim.Name)
	r.mu.Unlock()
	victim.retire()
	return victim.Name, true
}

// lookupLocked finds name in either table. Caller holds r.mu (read).
//
// aliaslint:nopin — the handle is returned unpinned; callers that publish
// it (Get, Acquire) take the pin themselves.
func (r *Registry) lookupLocked(name string) (*Handle, bool) {
	if h, ok := r.mods[name]; ok {
		return h, true
	}
	h, ok := r.staging[name]
	return h, ok
}

// Acquire looks a module up on the query path: the handle is pinned and its
// recency refreshed (Acquire order is what the LRU eviction policy sees).
// The caller must Release the handle when the batch completes.
func (r *Registry) Acquire(name string) (*Handle, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.lookupLocked(name)
	if !ok {
		return nil, false
	}
	h.refs.Add(1)
	h.lastUse.Store(time.Now().UnixNano())
	return h, true
}

// Get looks a module up without refreshing recency — the status/info path,
// so polling a build's progress does not keep a module artificially hot.
// The handle is still pinned; the caller must Release it.
func (r *Registry) Get(name string) (*Handle, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.lookupLocked(name)
	if !ok {
		return nil, false
	}
	h.refs.Add(1)
	return h, true
}

// Remove drops a module or staged build, reporting whether it was present.
// The handle is retired: in-flight pins keep it alive until their Release.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	h, ok := r.lookupLocked(name)
	if ok {
		delete(r.mods, name)
		delete(r.staging, name)
	}
	r.mu.Unlock()
	if ok {
		h.retire()
	}
	return ok
}

// unreserve drops exactly h from staging — a no-op when the name has since
// been rebound. Cleanup paths use this so they never delete another
// client's reservation by name.
func (r *Registry) unreserve(h *Handle) {
	r.mu.Lock()
	ok := r.staging[h.Name] == h
	if ok {
		delete(r.staging, h.Name)
	}
	r.mu.Unlock()
	if ok {
		h.retire()
	}
}

// Len returns the visible module count (ready plus staged).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.mods) + len(r.staging)
}

// Evictions returns how many modules the bound has displaced.
func (r *Registry) Evictions() int64 { return r.evictions.Load() }

// Building counts staged builds still in flight — the readiness probe's
// "is any module mid-build" signal.
func (r *Registry) Building() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, h := range r.staging {
		if h.State() == StateBuilding {
			n++
		}
	}
	return n
}

// List returns every visible handle sorted by name, each pinned; the
// caller must Release every one. Like Get it does not refresh recency.
func (r *Registry) List() []*Handle {
	r.mu.RLock()
	out := make([]*Handle, 0, len(r.mods)+len(r.staging))
	for _, h := range r.mods {
		h.refs.Add(1)
		out = append(out, h)
	}
	for _, h := range r.staging {
		h.refs.Add(1)
		out = append(out, h)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// releaseAll is the List counterpart: release every pinned handle.
func releaseAll(hs []*Handle) {
	for _, h := range hs {
		h.Release()
	}
}
