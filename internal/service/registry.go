package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/alias"
	"repro/internal/alias/andersen"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/frontend/minic"
	"repro/internal/ir"
	"repro/internal/pointer"
)

// Handle is one registered module: the verified IR, the analysis chain
// behind its read-only snapshot, and the value index the validate stage
// resolves query names against. Handles are immutable after construction;
// the snapshot's counters are the only mutable state, and they are
// internally synchronized.
type Handle struct {
	Name    string
	Format  string // "ir" or "minic"
	Mod     *ir.Module
	Snap    alias.Snapshot
	IRStats ir.Stats
	// PairQueries is the module's paper-style query count (all unordered
	// same-function pointer pairs) — the natural unit load generators
	// replay.
	PairQueries int
	CreatedAt   time.Time

	// values indexes func name → value name → value for the validate stage.
	values map[string]map[string]*ir.Value
}

// Lookup resolves a "func", "name" reference against the handle's module.
func (h *Handle) Lookup(fn, name string) (*ir.Value, error) {
	vals, ok := h.values[fn]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", fn)
	}
	v, ok := vals[name]
	if !ok {
		return nil, fmt.Errorf("no value %q in function %q", name, fn)
	}
	return v, nil
}

// NewChain builds the service's analysis stack over one verified module:
// rbaa's construction runs the bootstrap range analysis and the GR/LR
// pointer analyses; scevaa, basicaa and the andersen points-to oracle
// complete the chain, combined LLVM-AAResults-style by an alias.Manager
// with the default memo cache (service clients re-query pairs, unlike the
// one-shot experiment sweeps).
func NewChain(m *ir.Module) *alias.Manager {
	return alias.NewManager(alias.ManagerOptions{},
		scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}), andersen.Analyze(m))
}

// BuildHandle parses (enforcing maxSourceBytes), verifies, and analyzes one
// module source. format is "ir" or "minic". The returned error is safe to
// echo to clients.
func BuildHandle(name, format, src string, maxSourceBytes int) (*Handle, error) {
	if maxSourceBytes > 0 && len(src) > maxSourceBytes {
		return nil, fmt.Errorf("source is %d bytes, exceeding the %d-byte limit", len(src), maxSourceBytes)
	}
	var m *ir.Module
	var err error
	switch format {
	case "ir":
		m, err = ir.Parse(src)
	case "minic":
		m, err = minic.Compile(name, src)
	default:
		return nil, fmt.Errorf("unknown format %q (want \"ir\" or \"minic\")", format)
	}
	if err != nil {
		return nil, fmt.Errorf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("verify: %v", err)
	}
	h := &Handle{
		Name:        name,
		Format:      format,
		Mod:         m,
		Snap:        NewChain(m).Snapshot(),
		IRStats:     m.Stats(),
		PairQueries: alias.NumQueries(m),
		CreatedAt:   time.Now(),
		values:      map[string]map[string]*ir.Value{},
	}
	for _, f := range m.Funcs {
		vals := make(map[string]*ir.Value, len(f.Params))
		for _, v := range f.Values() {
			vals[v.Name] = v
		}
		h.values[f.Name] = vals
	}
	return h, nil
}

// Registry is the bounded, concurrency-safe map of registered modules.
type Registry struct {
	mu   sync.RWMutex
	max  int
	mods map[string]*Handle
}

// NewRegistry builds a registry holding at most max modules (≤ 0 means
// unbounded).
func NewRegistry(max int) *Registry {
	return &Registry{max: max, mods: map[string]*Handle{}}
}

// Add registers a handle. It refuses duplicates (delete first — replacing a
// live module under concurrent queries would silently reset its counters)
// and enforces the registry bound.
func (r *Registry) Add(h *Handle) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.mods[h.Name]; ok {
		return fmt.Errorf("module %q already registered", h.Name)
	}
	if r.max > 0 && len(r.mods) >= r.max {
		return fmt.Errorf("registry full (%d modules)", r.max)
	}
	r.mods[h.Name] = h
	return nil
}

// Get looks a module up by name.
func (r *Registry) Get(name string) (*Handle, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.mods[name]
	return h, ok
}

// Remove drops a module, reporting whether it was present.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.mods[name]
	delete(r.mods, name)
	return ok
}

// Len returns the module count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.mods)
}

// List returns the handles sorted by name.
func (r *Registry) List() []*Handle {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Handle, 0, len(r.mods))
	for _, h := range r.mods {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
