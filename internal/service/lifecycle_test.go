package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinyModule returns a distinct valid IR module source for registry tests.
func tinyModule(name string) string {
	return fmt.Sprintf("module %s\nfunc f() void {\nentry:\n  ret\n}\n", name)
}

func mustHandle(t *testing.T, name string) *Handle {
	t.Helper()
	h, err := BuildHandle(name, "ir", tinyModule(name), 0)
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	return h
}

// TestRegistryEvictsIdleLRU: a full registry with eviction enabled displaces
// the least-recently-queried module, preferring unpinned victims; a pinned
// victim survives (usable) until its last Release; only a registry full of
// still-building modules refuses the Add.
func TestRegistryEvictsIdleLRU(t *testing.T) {
	reg := NewRegistry(2, true)
	if err := reg.Add(mustHandle(t, "a")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(mustHandle(t, "b")); err != nil {
		t.Fatal(err)
	}
	// Touch a on the query path so b is the LRU.
	ha, ok := reg.Acquire("a")
	if !ok {
		t.Fatal("acquire a")
	}
	ha.Release()

	if err := reg.Add(mustHandle(t, "c")); err != nil {
		t.Fatalf("add into full registry with idle LRU: %v", err)
	}
	if _, ok := reg.Get("b"); ok {
		t.Fatal("b (LRU idle) survived; eviction picked the wrong victim")
	}
	if reg.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", reg.Evictions())
	}

	// Pin c, leave a idle: a (unpinned) must be preferred as victim even
	// though c is the least recently used.
	hc, _ := reg.Acquire("c")
	if err := reg.Add(mustHandle(t, "d")); err != nil {
		t.Fatalf("add with one idle module: %v", err)
	}
	if _, ok := reg.Get("a"); ok {
		t.Fatal("a (idle) survived while c (pinned) was preferred as victim")
	}

	// Pin d too: nothing unpinned remains, so the LRU pinned module (c)
	// is evicted — and stays fully usable until its pin is released.
	hd, _ := reg.Acquire("d")
	if err := reg.Add(mustHandle(t, "e")); err != nil {
		t.Fatalf("add with everything pinned: %v", err)
	}
	if _, ok := reg.Get("c"); ok {
		t.Fatal("c should have been evicted as the LRU pinned module")
	}
	if hc.Closed() {
		t.Fatal("pinned victim torn down before its Release")
	}
	hc.Release()
	if !hc.Closed() {
		t.Fatal("evicted victim not torn down after its last Release")
	}
	hd.Release()
	if reg.Len() != 2 {
		t.Errorf("len = %d, want 2", reg.Len())
	}

	// Staged builds never consume module slots — a reservation cannot evict
	// a healthy module — but they are bounded on their own: garbage async
	// uploads cannot pile up placeholders without limit.
	breg := NewRegistry(1, true)
	if err := breg.Add(mustHandle(t, "x")); err != nil {
		t.Fatal(err)
	}
	if err := breg.Reserve(NewPending("p1", "ir")); err != nil {
		t.Fatalf("reserve alongside a full module table: %v", err)
	}
	if _, ok := breg.Get("x"); !ok {
		t.Fatal("reservation evicted a healthy module")
	}
	if err := breg.Reserve(NewPending("p2", "ir")); err == nil {
		t.Fatal("staging accepted reservations past its bound")
	}
}

// TestBadUploadCannotEvict is the regression test for the pre-parse
// eviction hazard: a sync upload of garbage source into a full registry
// with eviction enabled must fail without displacing any healthy module.
func TestBadUploadCannotEvict(t *testing.T) {
	s, ts := startServer(t, Config{MaxModules: 1, EvictModules: true})
	t.Cleanup(s.Close)
	if resp := postModule(t, ts, "good", "ir", tinyModule("good")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	} else {
		body(t, resp)
	}
	for i := 0; i < 3; i++ {
		resp := postModule(t, ts, fmt.Sprintf("bad%d", i), "ir", "module m\nfunc f() void {\n")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("garbage upload: %d, want 400", resp.StatusCode)
		}
		body(t, resp)
	}
	if _, ok := s.reg.Get("good"); !ok {
		t.Fatal("healthy module evicted by unparseable uploads")
	}
	if s.reg.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0", s.reg.Evictions())
	}
	// A viable upload, by contrast, does evict.
	if resp := postModule(t, ts, "good2", "ir", tinyModule("good2")); resp.StatusCode != http.StatusCreated {
		t.Fatalf("viable upload into full registry: %d", resp.StatusCode)
	} else {
		body(t, resp)
	}
	if _, ok := s.reg.Get("good"); ok {
		t.Fatal("LRU module survived a viable upload into a full registry")
	}
}

// TestEvictedHandleAliveViaRefcount is the lifecycle tentpole's core
// promise: an in-flight batch pins its handle, so removing (or evicting)
// the module retires it without tearing it down until the batch completes.
func TestEvictedHandleAliveViaRefcount(t *testing.T) {
	src := fig1Source(t)
	s := New(Config{})
	defer s.Close()
	h, err := BuildHandle("fig1", "minic", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.reg.Add(h); err != nil {
		t.Fatal(err)
	}
	pairs := namedPairs(h.Mod)

	// The "batch" acquires its pin, then the module is deleted under it.
	pinned, ok := s.reg.Acquire("fig1")
	if !ok {
		t.Fatal("acquire")
	}
	if !s.reg.Remove("fig1") {
		t.Fatal("remove")
	}
	if _, ok := s.reg.Get("fig1"); ok {
		t.Fatal("removed module still visible in the registry")
	}
	if pinned.Closed() {
		t.Fatal("handle torn down while a batch pin is held")
	}
	// The in-flight batch still runs to completion against the retired
	// handle.
	results, err := s.RunBatch(context.Background(), pinned, pairs)
	if err != nil {
		t.Fatalf("batch against retired handle: %v", err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("batch returned %d of %d results", len(results), len(pairs))
	}
	pinned.Release()
	if !pinned.Closed() {
		t.Fatal("handle not torn down after the last pin released")
	}
	if pinned.Mod != nil {
		t.Fatal("teardown left the module referenced")
	}
}

// TestRegistryConcurrentLifecycle races Add/Acquire/Get/Remove/List (with
// eviction pressure: capacity far below the name space) and checks the
// bound and refcount invariants hold. Run under -race this also guards the
// registry's internal synchronization.
func TestRegistryConcurrentLifecycle(t *testing.T) {
	const capacity = 4
	reg := NewRegistry(capacity, true)
	// Pre-built handles are reused across adds; a handle re-added after
	// retirement would be wrong, so each add builds fresh.
	const names = 16
	const workers = 8
	const rounds = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("m%d", (w*rounds+r)%names)
				switch r % 4 {
				case 0:
					h, err := BuildHandle(name, "ir", tinyModule(name), 0)
					if err != nil {
						t.Errorf("build %s: %v", name, err)
						return
					}
					reg.Add(h) // duplicate/full errors are expected traffic
				case 1:
					if h, ok := reg.Acquire(name); ok {
						if h.State() == StateReady && h.Closed() {
							t.Errorf("acquired a torn-down handle %s", name)
						}
						h.Release()
					}
				case 2:
					if h, ok := reg.Get(name); ok {
						h.Release()
					}
					reg.Remove(name)
				case 3:
					hs := reg.List()
					if len(hs) > capacity {
						t.Errorf("registry holds %d modules past its %d bound", len(hs), capacity)
					}
					releaseAll(hs)
				}
				if n := reg.Len(); n > capacity {
					t.Errorf("len = %d past the %d bound", n, capacity)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAsyncBuildLifecycle drives the async upload end to end over HTTP:
// 202 on submit, status building→ready on poll, queries answered after;
// a failed async build reports status failed with the parse error, refuses
// queries with 409, and can be deleted.
func TestAsyncBuildLifecycle(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{Parallel: 2, BuildWorkers: 2})
	t.Cleanup(s.Close)

	resp := postModuleAsync(t, ts.URL, "fig1", "minic", src)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async upload: %d, want 202 — %s", resp.StatusCode, body(t, resp))
	}
	var info ModuleInfo
	if err := json.Unmarshal(body(t, resp), &info); err != nil {
		t.Fatal(err)
	}
	if info.Status != "building" && info.Status != "ready" {
		t.Fatalf("status right after 202 = %q", info.Status)
	}

	info = pollStatus(t, ts.URL, "fig1", "ready")
	if info.PairQueries == 0 || info.Chain == "" || info.MemBytes == 0 {
		t.Fatalf("ready module info incomplete: %+v", info)
	}

	// Queries now succeed.
	h, ok := s.reg.Get("fig1")
	if !ok {
		t.Fatal("ready module missing from registry")
	}
	pairs := namedPairs(h.Mod)
	h.Release()
	qbody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs[:1]})
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(qbody)))
	if err != nil || qresp.StatusCode != http.StatusOK {
		t.Fatalf("query after async build: %v %d", err, qresp.StatusCode)
	}
	body(t, qresp)

	// Failed build: bad IR, still 202, then status failed + 409 on query.
	resp = postModuleAsync(t, ts.URL, "broken", "ir", "module m\nfunc f() void {\n")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async upload of broken source: %d, want 202", resp.StatusCode)
	}
	body(t, resp)
	info = pollStatus(t, ts.URL, "broken", "failed")
	if info.Error == "" {
		t.Fatal("failed build reports no error")
	}
	qbody, _ = json.Marshal(QueryRequest{Module: "broken", Pairs: []Pair{{Func: "f", A: "a", B: "b"}}})
	qresp, err = http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(qbody)))
	if err != nil || qresp.StatusCode != http.StatusConflict {
		t.Fatalf("query against failed module: %v %d, want 409", err, qresp.StatusCode)
	}
	body(t, qresp)

	// Failed modules occupy their slot until deleted…
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/modules/broken", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete failed module: %v %d", err, dresp.StatusCode)
	}
	// …or replaced by a fresh upload of the same name.
	resp = postModule(t, ts, "fig1b", "minic", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sync upload alongside async modules: %d", resp.StatusCode)
	}
	body(t, resp)
}

// TestFailedModuleReplaceable: re-POSTing a name whose build failed
// replaces the failed placeholder instead of demanding a DELETE first.
func TestFailedModuleReplaceable(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{})
	t.Cleanup(s.Close)
	resp := postModuleAsync(t, ts.URL, "mod", "ir", "module m\nfunc f() void {\n")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async: %d", resp.StatusCode)
	}
	body(t, resp)
	pollStatus(t, ts.URL, "mod", "failed")
	if resp := postModule(t, ts, "mod", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-upload over failed build: %d, want 201", resp.StatusCode)
	} else {
		body(t, resp)
	}
	pollStatus(t, ts.URL, "mod", "ready")
}

func postModuleAsync(t *testing.T, base, name, format, src string) *http.Response {
	t.Helper()
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/modules?name=%s&format=%s&async=1", base, name, format),
		"text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatalf("POST async module: %v", err)
	}
	return resp
}

// pollStatus polls GET /v1/modules/{name} until the module reaches want
// (or the deadline trips).
func pollStatus(t *testing.T, base, name, want string) ModuleInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/modules/" + name)
		if err != nil {
			t.Fatalf("polling %s: %v", name, err)
		}
		var info ModuleInfo
		if err := json.Unmarshal(body(t, resp), &info); err != nil {
			t.Fatalf("polling %s: %v", name, err)
		}
		if info.Status == want {
			return info
		}
		if info.Status != "building" {
			t.Fatalf("module %s reached %q, want %q", name, info.Status, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("module %s stuck in %q", name, info.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
