package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alias"
	"repro/internal/frontend/minic"
	"repro/internal/ir"
)

func fig1Source(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/fig1.mc")
	if err != nil {
		t.Fatalf("reading fig1.mc: %v", err)
	}
	return string(src)
}

func startServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postModule(t *testing.T, ts *httptest.Server, name, format, src string) *http.Response {
	t.Helper()
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/modules?name=%s&format=%s", ts.URL, name, format),
		"text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatalf("POST /v1/modules: %v", err)
	}
	return resp
}

func body(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return b
}

// namedPairs maps a module's paper-style query enumeration to the textual
// pair form the service accepts.
func namedPairs(m *ir.Module) []Pair {
	qs := alias.Queries(m)
	out := make([]Pair, len(qs))
	for i, q := range qs {
		out[i] = Pair{Func: q.P.Func.Name, A: q.P.Name, B: q.Q.Name}
	}
	return out
}

// TestBatchedResponseByteIdenticalToDirectManager is the legacy path's
// golden test: with the planner disabled, for every pair of the Fig. 1
// module the /v1/query response body must be byte-for-byte what encoding
// the verdicts of a directly constructed alias.Manager produces.
func TestBatchedResponseByteIdenticalToDirectManager(t *testing.T) {
	src := fig1Source(t)

	// Direct path: compile + analyze in-process, no service involved.
	direct, err := minic.Compile("fig1", src)
	if err != nil {
		t.Fatalf("compiling fig1: %v", err)
	}
	snap := NewChain(direct).Snapshot()
	pairs := namedPairs(direct)
	if len(pairs) == 0 {
		t.Fatal("fig1 yields no pair queries")
	}
	want := QueryResponse{Module: "fig1"}
	for _, pr := range pairs {
		f := direct.Func(pr.Func)
		var p, q *ir.Value
		for _, v := range f.Values() {
			if v.Name == pr.A {
				p = v
			}
			if v.Name == pr.B {
				q = v
			}
		}
		res := encodeVerdict(snap, snap.Evaluate(p, q))
		want.Results = append(want.Results, res)
		if res.Result == "no-alias" {
			want.NoAlias++
		}
	}
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal expected: %v", err)
	}
	wantBytes = append(wantBytes, '\n')

	// Service path: upload the same source, query the same pairs. The
	// planner is disabled so every pair walks the chain — the byte-golden
	// contract covers the fallback path the planner defers to.
	_, ts := startServer(t, Config{Parallel: 4, DisablePlanner: true})
	resp := postModule(t, ts, "fig1", "minic", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("module upload: %d %s", resp.StatusCode, body(t, resp))
	}
	body(t, resp)

	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", qresp.StatusCode, body(t, qresp))
	}
	got := body(t, qresp)
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("service response differs from direct manager encoding\n got: %s\nwant: %s", got, wantBytes)
	}
	if want.NoAlias == 0 {
		t.Fatal("fig1 produced no no-alias answers; golden test is vacuous")
	}
}

// TestPlannerResponseMatchesManagerResults is the planner path's
// differential golden: with the planner on (the default), every pair's
// Result and the aggregate no-alias count must equal the legacy chain's.
// Attribution on sweep-answered pairs is credited to rbaa (whose range
// digests justify the partition) with a genuine Fig. 14 reason — the
// documented contract — so Resolved/Provers are checked for coherence, not
// byte equality.
func TestPlannerResponseMatchesManagerResults(t *testing.T) {
	src := fig1Source(t)
	direct, err := minic.Compile("fig1", src)
	if err != nil {
		t.Fatalf("compiling fig1: %v", err)
	}
	snap := NewChain(direct).Snapshot()
	pairs := namedPairs(direct)

	s, ts := startServer(t, Config{Parallel: 4})
	resp := postModule(t, ts, "fig1", "minic", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("module upload: %d %s", resp.StatusCode, body(t, resp))
	}
	body(t, resp)
	reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body(t, qresp), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(qr.Results), len(pairs))
	}
	wantNoAlias := 0
	for i, pr := range pairs {
		f := direct.Func(pr.Func)
		var p, q *ir.Value
		for _, v := range f.Values() {
			if v.Name == pr.A {
				p = v
			}
			if v.Name == pr.B {
				q = v
			}
		}
		want := snap.Evaluate(p, q)
		if qr.Results[i].Result != want.Result.String() {
			t.Fatalf("pair %d (%s,%s): planner result %q, manager %q",
				i, pr.A, pr.B, qr.Results[i].Result, want.Result)
		}
		if want.Result == alias.NoAlias {
			wantNoAlias++
			if qr.Results[i].Resolved == "" || len(qr.Results[i].Provers) == 0 {
				t.Fatalf("pair %d: no-alias answer lacks attribution: %+v", i, qr.Results[i])
			}
		}
	}
	if qr.NoAlias != wantNoAlias || wantNoAlias == 0 {
		t.Fatalf("noalias = %d, want %d (> 0)", qr.NoAlias, wantNoAlias)
	}

	// The planner actually planned: counters are visible and reconcile.
	h, ok := s.Registry().Get("fig1")
	if !ok {
		t.Fatal("module vanished")
	}
	defer h.Release()
	if h.Planner == nil {
		t.Fatal("default config built no planner")
	}
	st := h.Planner.Stats()
	if st.Pairs != int64(len(pairs)) {
		t.Errorf("planner pairs = %d, want %d", st.Pairs, len(pairs))
	}
	if st.SweepNoAlias+st.IndexPairs+st.FallbackPairs != st.Pairs {
		t.Errorf("planner tally does not reconcile: %+v", st)
	}
	if st.Groups == 0 {
		t.Error("sweep formed no groups on fig1")
	}
}

// TestBatchOrderIndependence shuffles a batch and checks each result still
// lands at its pair's index.
func TestBatchOrderIndependence(t *testing.T) {
	src := fig1Source(t)
	m, err := minic.Compile("fig1", src)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Parallel: 4})
	h, err := BuildHandle("fig1", "minic", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairs := namedPairs(m)
	base, err := s.RunBatch(context.Background(), h, pairs)
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(1)).Perm(len(pairs))
	shuffled := make([]Pair, len(pairs))
	for i, j := range perm {
		shuffled[i] = pairs[j]
	}
	got, err := s.RunBatch(context.Background(), h, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range perm {
		if fmt.Sprint(got[i]) != fmt.Sprint(base[j]) {
			t.Fatalf("shuffled result %d = %+v, want %+v", i, got[i], base[j])
		}
	}
}

// TestStatsCountersAfterConcurrentBatches hammers one module from many
// client goroutines and checks the /v1/stats totals reconcile: every issued
// query is counted, computed+hits = queries, computed = distinct pairs.
// Planner disabled: this test pins the Manager counter plumbing the planner
// falls back to (the planner-on accounting is covered by
// TestStatsPlannerCountersReconcile).
func TestStatsCountersAfterConcurrentBatches(t *testing.T) {
	src := fig1Source(t)
	s, ts := startServer(t, Config{Parallel: 2, DisablePlanner: true})
	resp := postModule(t, ts, "fig1", "minic", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	}
	body(t, resp)

	h, _ := s.Registry().Get("fig1")
	defer h.Release()
	pairs := namedPairs(h.Mod)
	const clients = 8
	const rounds = 3
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body(t, sresp), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Modules) != 1 {
		t.Fatalf("stats has %d modules, want 1", len(stats.Modules))
	}
	ms := stats.Modules[0]
	wantQueries := int64(clients * rounds * len(pairs))
	if ms.Queries != wantQueries {
		t.Errorf("queries = %d, want %d", ms.Queries, wantQueries)
	}
	if ms.Computed != int64(len(pairs)) {
		t.Errorf("computed = %d, want %d distinct pairs", ms.Computed, len(pairs))
	}
	if ms.CacheHits+ms.Computed != ms.Queries {
		t.Errorf("cache_hits %d + computed %d != queries %d", ms.CacheHits, ms.Computed, ms.Queries)
	}
	if ms.CacheHitRate <= 0 {
		t.Errorf("cache_hit_rate = %v, want > 0 after replays", ms.CacheHitRate)
	}
	if ms.NoAlias == 0 {
		t.Error("noalias = 0, want > 0 on fig1")
	}
	if len(ms.Members) != 4 {
		t.Fatalf("stats lists %d members, want 4 (scev, basic, rbaa, andersen)", len(ms.Members))
	}
	if ms.Members[2].Name != "rbaa" || len(ms.Members[2].Details) == 0 {
		t.Errorf("rbaa member stats missing attribution details: %+v", ms.Members[2])
	}
}

// TestStatsPlannerCountersReconcile drives concurrent batches through the
// planner and checks the /v1/stats planner section: every issued pair is
// tallied exactly once across the three paths, the fallback share equals
// the Manager's query counter, and the per-path no-alias counts sum to the
// responses' aggregate.
func TestStatsPlannerCountersReconcile(t *testing.T) {
	src := fig1Source(t)
	_, ts := startServer(t, Config{Parallel: 2})
	resp := postModule(t, ts, "fig1", "minic", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	}
	body(t, resp)

	m, err := minic.Compile("fig1", src)
	if err != nil {
		t.Fatal(err)
	}
	pairs := namedPairs(m)
	const clients, rounds = 6, 3
	var wg sync.WaitGroup
	var noAlias atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				reqBody, _ := json.Marshal(QueryRequest{Module: "fig1", Pairs: pairs})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				var qr QueryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					t.Errorf("decode: %v", err)
				}
				resp.Body.Close()
				noAlias.Add(int64(qr.NoAlias))
			}
		}()
	}
	wg.Wait()

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body(t, sresp), &stats); err != nil {
		t.Fatal(err)
	}
	ms := stats.Modules[0]
	if ms.Planner == nil {
		t.Fatal("stats carry no planner section despite the default config")
	}
	pc := ms.Planner
	wantPairs := int64(clients * rounds * len(pairs))
	if pc.Pairs != wantPairs {
		t.Errorf("planner pairs = %d, want %d", pc.Pairs, wantPairs)
	}
	if pc.SweepNoAlias+pc.IndexPairs+pc.FallbackPairs != pc.Pairs {
		t.Errorf("planner paths do not sum to pairs: %+v", pc)
	}
	if pc.FallbackPairs != ms.Queries {
		t.Errorf("fallback pairs %d != manager queries %d", pc.FallbackPairs, ms.Queries)
	}
	if got := pc.SweepNoAlias + pc.IndexNoAlias + pc.FallbackNoAlias; got != noAlias.Load() {
		t.Errorf("stats no-alias %d != responses' aggregate %d", got, noAlias.Load())
	}
	if pc.Groups == 0 || pc.PlannedValues == 0 || pc.Batches == 0 {
		t.Errorf("sweep counters empty: %+v", pc)
	}
	if pc.SweepNoAlias == 0 {
		t.Error("no pairs were sweep-short-circuited on fig1")
	}
	if ms.MemBytes == 0 {
		t.Error("memory accounting lost the index/interner contribution")
	}
}

// TestModuleLifecycleAndErrors covers the registry endpoints and the error
// surface a hostile or clumsy client sees.
func TestModuleLifecycleAndErrors(t *testing.T) {
	src := fig1Source(t)
	_, ts := startServer(t, Config{MaxBatch: 8, MaxSourceBytes: 1 << 20, MaxModules: 2})

	// healthz before anything.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.Unmarshal(body(t, hresp), &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz = %+v, err %v", health, err)
	}

	// Upload, duplicate, list, get, delete.
	if resp := postModule(t, ts, "fig1", "minic", src); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body(t, resp))
	} else {
		body(t, resp)
	}
	if resp := postModule(t, ts, "fig1", "minic", src); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate upload: %d, want 409", resp.StatusCode)
	} else {
		body(t, resp)
	}
	lresp, _ := http.Get(ts.URL + "/v1/modules")
	var infos []ModuleInfo
	if err := json.Unmarshal(body(t, lresp), &infos); err != nil || len(infos) != 1 || infos[0].Name != "fig1" {
		t.Fatalf("list = %+v, err %v", infos, err)
	}
	if infos[0].PairQueries == 0 || infos[0].Instrs == 0 {
		t.Fatalf("module info missing stats: %+v", infos[0])
	}

	// Malformed source must be a structured 400, not a panic.
	if resp := postModule(t, ts, "broken", "ir", "module m\nfunc f() void {\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed upload: %d, want 400", resp.StatusCode)
	} else if b := body(t, resp); !bytes.Contains(b, []byte("error")) {
		t.Fatalf("malformed upload body %s lacks error field", b)
	}
	if resp := postModule(t, ts, "weird", "wasm", "x"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %d, want 400", resp.StatusCode)
	} else {
		body(t, resp)
	}

	post := func(reqBody []byte) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Unknown module.
	b, _ := json.Marshal(QueryRequest{Module: "ghost", Pairs: []Pair{{Func: "f", A: "a", B: "b"}}})
	if resp := post(b); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown module: %d, want 404", resp.StatusCode)
	} else {
		body(t, resp)
	}
	// Unknown value.
	b, _ = json.Marshal(QueryRequest{Module: "fig1", Pairs: []Pair{{Func: "prepare", A: "nope", B: "nada"}}})
	if resp := post(b); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown value: %d, want 400", resp.StatusCode)
	} else {
		body(t, resp)
	}
	// Oversized batch (MaxBatch = 8 here).
	big := QueryRequest{Module: "fig1"}
	for i := 0; i < 9; i++ {
		big.Pairs = append(big.Pairs, Pair{Func: "prepare", A: "x", B: "y"})
	}
	b, _ = json.Marshal(big)
	if resp := post(b); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d, want 400", resp.StatusCode)
	} else {
		body(t, resp)
	}
	// Empty batch.
	b, _ = json.Marshal(QueryRequest{Module: "fig1"})
	if resp := post(b); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	} else {
		body(t, resp)
	}

	// Delete and 404 afterwards.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/modules/fig1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %d", err, dresp.StatusCode)
	}
	gresp, _ := http.Get(ts.URL + "/v1/modules/fig1")
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", gresp.StatusCode)
	}
	body(t, gresp)
}

// TestSourceSizeLimit checks the upload cap is enforced with a clean error.
func TestSourceSizeLimit(t *testing.T) {
	_, ts := startServer(t, Config{MaxSourceBytes: 64})
	resp := postModule(t, ts, "big", "ir", strings.Repeat("# padding\n", 100))
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized source: %d, want 400/413", resp.StatusCode)
	}
	body(t, resp)
}

// TestRegistryBound checks MaxModules is enforced when eviction is off.
func TestRegistryBound(t *testing.T) {
	reg := NewRegistry(1, false)
	h1, err := BuildHandle("a", "ir", "module a\nfunc f() void {\nentry:\n  ret\n}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := BuildHandle("b", "ir", "module b\nfunc f() void {\nentry:\n  ret\n}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(h1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(h2); err == nil {
		t.Fatal("registry accepted a module past its bound")
	}
	if !reg.Remove("a") {
		t.Fatal("remove failed")
	}
	if err := reg.Add(h2); err != nil {
		t.Fatalf("add after remove: %v", err)
	}
}
