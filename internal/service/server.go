package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ModuleInfo is the public summary of a registered module.
type ModuleInfo struct {
	Name        string    `json:"name"`
	Format      string    `json:"format"`
	Chain       string    `json:"chain"`
	Funcs       int       `json:"funcs"`
	Blocks      int       `json:"blocks"`
	Instrs      int       `json:"instrs"`
	Pointers    int       `json:"pointers"`
	PairQueries int       `json:"pair_queries"`
	CreatedAt   time.Time `json:"created_at"`
}

func moduleInfo(h *Handle) ModuleInfo {
	return ModuleInfo{
		Name:        h.Name,
		Format:      h.Format,
		Chain:       h.Snap.Name(),
		Funcs:       h.IRStats.Funcs,
		Blocks:      h.IRStats.Blocks,
		Instrs:      h.IRStats.Instrs,
		Pointers:    h.IRStats.Pointers,
		PairQueries: h.PairQueries,
		CreatedAt:   h.CreatedAt,
	}
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Module string `json:"module"`
	Pairs  []Pair `json:"pairs"`
}

// QueryResponse is the body of a successful POST /v1/query: results in
// request order plus the aggregate no-alias count.
type QueryResponse struct {
	Module  string   `json:"module"`
	Results []Result `json:"results"`
	NoAlias int      `json:"noalias"`
}

// MemberStats is one chain member's counters in /v1/stats.
type MemberStats struct {
	Name      string           `json:"name"`
	NoAlias   int64            `json:"noalias"`
	FirstWins int64            `json:"first_wins"`
	Details   map[string]int64 `json:"details,omitempty"`
}

// ModuleStats is one module's live counters in /v1/stats.
type ModuleStats struct {
	Name         string        `json:"name"`
	Chain        string        `json:"chain"`
	Queries      int64         `json:"queries"`
	CacheHits    int64         `json:"cache_hits"`
	CacheHitRate float64       `json:"cache_hit_rate"`
	Computed     int64         `json:"computed"`
	NoAlias      int64         `json:"noalias"`
	Members      []MemberStats `json:"members"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeMS int64         `json:"uptime_ms"`
	Modules  []ModuleStats `json:"modules"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Modules int    `json:"modules"`
}

// writeJSON marshals v as the response body (one JSON document plus a
// trailing newline — the framing the golden tests pin down).
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Modules: s.reg.Len()})
}

func (s *Service) handleListModules(w http.ResponseWriter, r *http.Request) {
	handles := s.reg.List()
	infos := make([]ModuleInfo, len(handles))
	for i, h := range handles {
		infos[i] = moduleInfo(h)
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleCreateModule(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?name=")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ir"
	}
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+1))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	h, err := BuildHandle(name, format, string(src), s.cfg.MaxSourceBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.reg.Add(h); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, moduleInfo(h))
}

func (s *Service) handleGetModule(w http.ResponseWriter, r *http.Request) {
	h, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "module %q not registered", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, moduleInfo(h))
}

func (s *Service) handleDeleteModule(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Remove(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, "module %q not registered", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	h, ok := s.reg.Get(req.Module)
	if !ok {
		writeError(w, http.StatusNotFound, "module %q not registered", req.Module)
		return
	}
	results, err := s.RunBatch(h, req.Pairs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := QueryResponse{Module: req.Module, Results: results}
	for _, res := range results {
		if res.Result == "no-alias" {
			resp.NoAlias++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{UptimeMS: time.Since(s.start).Milliseconds()}
	for _, h := range s.reg.List() {
		st := h.Snap.Stats()
		ms := ModuleStats{
			Name:         h.Name,
			Chain:        h.Snap.Name(),
			Queries:      st.Queries,
			CacheHits:    st.CacheHits,
			CacheHitRate: st.CacheHitRate(),
			Computed:     st.Computed,
			NoAlias:      st.NoAlias,
		}
		for _, m := range st.Members {
			mem := MemberStats{Name: m.Name, NoAlias: m.NoAlias, FirstWins: m.FirstWins}
			if len(m.Details) > 0 {
				mem.Details = m.Details
			}
			ms.Members = append(ms.Members, mem)
		}
		resp.Modules = append(resp.Modules, ms)
	}
	writeJSON(w, http.StatusOK, resp)
}
