package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"strconv"

	"repro/internal/budget"
	"repro/internal/telemetry"
)

// ModuleInfo is the public summary of a registered module. The IR and
// analysis fields are meaningful only when Status is "ready"; a module
// still building (async upload) or failed reports its lifecycle fields.
type ModuleInfo struct {
	Name        string    `json:"name"`
	Format      string    `json:"format"`
	Status      string    `json:"status"` // building | ready | failed
	Error       string    `json:"error,omitempty"`
	Chain       string    `json:"chain,omitempty"`
	Funcs       int       `json:"funcs,omitempty"`
	Blocks      int       `json:"blocks,omitempty"`
	Instrs      int       `json:"instrs,omitempty"`
	Pointers    int       `json:"pointers,omitempty"`
	PairQueries int       `json:"pair_queries,omitempty"`
	MemBytes    int64     `json:"approx_mem_bytes,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
}

func moduleInfo(h *Handle) ModuleInfo {
	// One state load for both the status string and the field selection: a
	// concurrent building→ready transition must not produce a torn payload
	// claiming "building" while carrying ready-only fields.
	state := h.State()
	info := ModuleInfo{
		Name:      h.Name,
		Format:    h.Format,
		Status:    state.String(),
		CreatedAt: h.CreatedAt,
	}
	switch state {
	case StateReady:
		info.Chain = h.Snap.Name()
		info.Funcs = h.IRStats.Funcs
		info.Blocks = h.IRStats.Blocks
		info.Instrs = h.IRStats.Instrs
		info.Pointers = h.IRStats.Pointers
		info.PairQueries = h.PairQueries
		info.MemBytes = h.MemBytes()
	case StateFailed:
		info.Error = h.Err()
	}
	return info
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Module string `json:"module"`
	Pairs  []Pair `json:"pairs"`
}

// QueryResponse is the body of a successful POST /v1/query: results in
// request order plus the aggregate no-alias count. Trace is present only
// when the client asked for it (?trace=1) — the field must stay omitempty
// so default responses remain byte-identical to earlier releases.
type QueryResponse struct {
	Module  string     `json:"module"`
	Results []Result   `json:"results"`
	NoAlias int        `json:"noalias"`
	Trace   *TraceEcho `json:"trace,omitempty"`
}

// TraceEcho is the ?trace=1 section of QueryResponse: the request ID (also
// in the X-Request-ID response header) and the pipeline stage spans
// recorded while the batch ran. It covers decode through aggregate; the
// encode stage finishes after the body is framed, so it appears only in the
// stage histogram and the debug access log.
type TraceEcho struct {
	RequestID string     `json:"request_id"`
	Spans     []SpanEcho `json:"spans"`
}

// SpanEcho is one stage timing in a TraceEcho.
type SpanEcho struct {
	Stage      string  `json:"stage"`
	DurationUS float64 `json:"duration_us"`
}

// MemberStats is one chain member's counters in /v1/stats.
type MemberStats struct {
	Name      string           `json:"name"`
	NoAlias   int64            `json:"noalias"`
	FirstWins int64            `json:"first_wins"`
	Details   map[string]int64 `json:"details,omitempty"`
}

// PlannerCounters is one module's batch-planner section in /v1/stats: how
// many batches were swept, how the answered pairs split between the three
// paths (sweep short-circuit, compiled index, legacy fallback), and the
// no-alias counts per path. Pairs always equals SweepNoAlias + IndexPairs +
// FallbackPairs, and FallbackPairs is exactly the share that reached the
// Manager's Queries counter — the reconciliation CI asserts.
type PlannerCounters struct {
	Batches         int64   `json:"batches"`
	PlannedValues   int64   `json:"planned_values"`
	Groups          int64   `json:"groups"`
	Pairs           int64   `json:"pairs"`
	SweepNoAlias    int64   `json:"sweep_noalias"`
	IndexPairs      int64   `json:"index_pairs"`
	IndexNoAlias    int64   `json:"index_noalias"`
	FallbackPairs   int64   `json:"fallback_pairs"`
	FallbackNoAlias int64   `json:"fallback_noalias"`
	FallbackRate    float64 `json:"fallback_rate"`
}

// ModuleStats is one module's live counters in /v1/stats. Counter fields
// are present only for ready modules; building/failed rows carry the
// lifecycle fields.
type ModuleStats struct {
	Name         string  `json:"name"`
	Status       string  `json:"status"`
	Error        string  `json:"error,omitempty"`
	Chain        string  `json:"chain,omitempty"`
	Queries      int64   `json:"queries"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Computed     int64   `json:"computed"`
	NoAlias      int64   `json:"noalias"`
	// Cached and Evictions describe the module's verdict memo cache: live
	// entries and entries displaced under churn past the cache limit.
	Cached    int64 `json:"cached"`
	Evictions int64 `json:"evictions"`
	// MemBytes approximates the module's resident memory: the built IR and
	// analysis structures, the compiled alias index, the symbolic
	// expressions the build interned, plus the live memo-cache entries.
	MemBytes int64         `json:"approx_mem_bytes,omitempty"`
	Members  []MemberStats `json:"members,omitempty"`
	// Planner carries the batch-planner counters; absent when planning is
	// disabled. Manager counters above cover only the fallback share then.
	Planner *PlannerCounters `json:"planner,omitempty"`
}

// BudgetStats is the memory-budget and backpressure section of /v1/stats.
// Every number is read from the same atomics the aliasd_budget_* and
// aliasd_shed_requests_total metric families render, so the two endpoints
// reconcile exactly on an idle daemon. Byte fields are zero with the
// budget disabled; the shed/drain counters are live either way (draining
// and MaxInFlight shed without a budget too).
type BudgetStats struct {
	Enabled        bool   `json:"enabled"`
	State          string `json:"state"` // ok | soft | hard
	LimitBytes     int64  `json:"limit_bytes"`
	SoftBytes      int64  `json:"soft_bytes"`
	HardBytes      int64  `json:"hard_bytes"`
	AccountedBytes int64  `json:"accounted_bytes"`
	HeapBytes      int64  `json:"heap_bytes"`
	UsedBytes      int64  `json:"used_bytes"`
	// Transitions counts watermark-state entries by destination state.
	Transitions map[string]int64 `json:"transitions"`
	// Sheds counts rejected requests by reason (the label set of
	// aliasd_shed_requests_total).
	Sheds map[string]int64 `json:"sheds"`
	// CacheShrinks counts per-module memo-cache shrink operations the
	// governor applied; Evictions counts modules it force-evicted.
	CacheShrinks int64 `json:"cache_shrinks"`
	Evictions    int64 `json:"evictions"`
	Draining     bool  `json:"draining"`
	Drains       int64 `json:"drains"`
	InFlight     int64 `json:"in_flight"`
}

// StoreStats is the persistence section of /v1/stats, present only when
// the daemon runs with -data-dir. Every number reads the same counters the
// aliasd_store_* metric families render.
type StoreStats struct {
	Records         int     `json:"records"`
	Bytes           int64   `json:"bytes"`
	Puts            int64   `json:"puts"`
	Deletes         int64   `json:"deletes"`
	Quarantined     int64   `json:"quarantined"`
	Errors          int64   `json:"errors"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	Recovering      bool    `json:"recovering"`
	FunctionsReused int64   `json:"functions_reused"`
}

// ReuseStats is the cross-module analysis-reuse section of /v1/stats.
type ReuseStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeMS int64 `json:"uptime_ms"`
	// UptimeSeconds mirrors the aliasd_uptime_seconds gauge (same clock,
	// same start instant) so the two surfaces reconcile.
	UptimeSeconds float64 `json:"uptime_seconds"`
	Version       string  `json:"version"`
	// ModulesEvicted counts modules displaced from the full registry to
	// admit newer uploads (0 unless eviction is enabled). Budget-governor
	// evictions are counted separately in Budget.Evictions.
	ModulesEvicted int64         `json:"modules_evicted"`
	Budget         BudgetStats   `json:"budget"`
	Store          *StoreStats   `json:"store,omitempty"`
	Reuse          *ReuseStats   `json:"reuse,omitempty"`
	Modules        []ModuleStats `json:"modules"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Modules int    `json:"modules"`
}

// ReadyResponse is the body of GET /readyz: liveness says "the process is
// up", readiness says "queries will be answered now" — the daemon is not
// ready while it is draining for shutdown, while any module build is in
// flight, or while the build backlog is deep enough that new async uploads
// would be refused. Load generators (and orchestrators) gate on this
// instead of sleeping.
type ReadyResponse struct {
	Status     string `json:"status"` // ready | draining | recovering | backlogged | building
	Modules    int    `json:"modules"`
	Building   int    `json:"building"`
	QueueDepth int    `json:"queue_depth"`
}

// writeJSON marshals v as the response body (one JSON document plus a
// trailing newline — the framing the golden tests pin down).
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// shedResponse is the structured body of every backpressure rejection
// (429 uploads, 503 queries): a stable machine-readable reason plus the
// retry hint that mirrors the Retry-After header. Clients distinguish
// "overloaded, retry" from hard errors by shape, not by parsing prose.
type shedResponse struct {
	Error        string `json:"error"`
	Reason       string `json:"reason"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// Retry-After bounds. The base second comfortably covers a governor tick;
// the ceiling keeps clients from parking so long that recovered capacity
// idles. Between them the hint scales with how overloaded the daemon
// actually is — see retryAfterSeconds.
const (
	shedRetryAfterMin = 1 // seconds
	shedRetryAfterMax = 8
)

// retryAfterSeconds computes the adaptive backoff hint for one shed: the
// base second, plus the budget's watermark state (a soft daemon recovers
// within a tick or two, a hard one needs evictions and a forced GC to
// land), plus the in-flight depth relative to MaxInFlight (a full admission
// window means the herd should spread out, not return in lockstep).
// Monotone in both inputs and clamped to [shedRetryAfterMin,
// shedRetryAfterMax] — the bounds the unit test pins.
func (s *Service) retryAfterSeconds() int {
	secs := shedRetryAfterMin
	switch s.budget.State() {
	case budget.StateSoft:
		secs += 1
	case budget.StateHard:
		secs += 3
	}
	if limit := s.cfg.MaxInFlight; limit > 0 {
		n := s.inflight.Load()
		if n > int64(limit) {
			n = int64(limit)
		}
		if n > 0 {
			secs += int(4 * n / int64(limit))
		}
	}
	if secs > shedRetryAfterMax {
		secs = shedRetryAfterMax
	}
	return secs
}

// writeShed renders one load-shedding rejection: Retry-After header plus
// the structured JSON body, both carrying the same adaptive hint.
func (s *Service) writeShed(w http.ResponseWriter, code int, reason, format string, args ...any) {
	secs := s.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, code, shedResponse{
		Error:        fmt.Sprintf(format, args...),
		Reason:       reason,
		RetryAfterMS: int64(secs) * 1000,
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Modules: s.reg.Len()})
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{
		Modules:    s.reg.Len(),
		Building:   s.reg.Building(),
		QueueDepth: s.builds.Len(),
	}
	// Backlogged outranks building: a backlog at capacity means new async
	// uploads are being refused right now, the stronger not-ready signal.
	// Draining outranks recovering — a daemon told to shut down mid-replay
	// is going away, not coming up.
	switch {
	case s.draining.Load():
		resp.Status = "draining"
	case s.recovering.Load():
		resp.Status = "recovering"
	case resp.QueueDepth >= s.cfg.BuildBacklog:
		resp.Status = "backlogged"
	case resp.Building > 0:
		resp.Status = "building"
	default:
		resp.Status = "ready"
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

func (s *Service) handleListModules(w http.ResponseWriter, r *http.Request) {
	handles := s.reg.List()
	defer releaseAll(handles)
	infos := make([]ModuleInfo, len(handles))
	for i, h := range handles {
		infos[i] = moduleInfo(h)
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleCreateModule(w http.ResponseWriter, r *http.Request) {
	// Admission before the body is read: a draining daemon takes no new
	// modules, and past the hard watermark a build's memory cost is
	// exactly what must not be added. Both are polite, structured
	// rejections the retry client understands.
	if s.draining.Load() {
		s.sheds.uploadDraining.Add(1)
		s.writeShed(w, http.StatusServiceUnavailable, "draining", "draining for shutdown, not accepting modules")
		return
	}
	if s.recovering.Load() {
		// Uploads race the manifest replay for names and build workers;
		// shed them retryably until the recovered set is published.
		s.sheds.uploadRecovering.Add(1)
		s.writeShed(w, http.StatusServiceUnavailable, "recovering", "recovering persisted modules, retry shortly")
		return
	}
	if s.budget.State() >= budget.StateHard {
		s.sheds.uploadBudget.Add(1)
		s.writeShed(w, http.StatusTooManyRequests, "budget",
			"memory budget exhausted (%d of %d bytes), retry later", s.budget.Used(), s.budget.Limit())
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?name=")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ir"
	}
	async := r.URL.Query().Get("async") == "1"
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+1))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}

	if !async {
		// Build before touching the registry: a malformed upload must never
		// consume a slot — or worse, evict a healthy module — for source
		// that does not even parse. Two clients racing the same name both
		// pay the build and Add arbitrates (one gets 409), matching the
		// duplicate semantics of a serial upload sequence.
		h := NewPending(name, format)
		buildStart := time.Now()
		s.injectBuild(name)
		err := h.build(string(src), s.cfg.MaxSourceBytes, s.managerOptions(), !s.cfg.DisablePlanner, s.reuse)
		s.observeBuild(name, "sync", buildStart, err)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Pin across publish + encode so a DELETE racing in right after Add
		// cannot tear the handle down under moduleInfo.
		h.refs.Add(1)
		if err := s.reg.Add(h); err != nil {
			h.Release()
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		// Durability before acknowledgment: the 201 promises the module
		// survives a crash, so the store write must land first. A persist
		// failure unpublishes the module — better a clean 500 the client
		// retries than a 201 whose module quietly evaporates on restart.
		if err := s.persistModule(name, format, src); err != nil {
			s.reg.Remove(name)
			writeError(w, http.StatusInternalServerError, "persisting module: %v", err)
			return
		}
		s.funcsReused.Add(int64(h.FuncsReused))
		info := moduleInfo(h)
		h.Release()
		// A fresh module is the accounting's fastest-moving input; fold it
		// in now — after Add made it visible to the sampler — instead of
		// waiting out a governor tick, so admission reacts to build bursts
		// promptly.
		s.reconcileBudget()
		writeJSON(w, http.StatusCreated, info)
		return
	}

	// Async: reserve the name (visible to status polls from the moment the
	// 202 returns) without consuming a module slot — only a successful
	// build competes for those, inside Finish. Failed builds stay visible
	// as "failed" until deleted or replaced, so the client that got the
	// 202 can always learn the outcome. The pin taken before Submit keeps
	// a DELETE racing the build from tearing the handle down mid-build;
	// the info snapshot is taken before Submit because afterwards the pin
	// belongs to the build worker and may already be released.
	h := NewPending(name, format)
	if err := s.reg.Reserve(h); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	h.refs.Add(1)
	info := moduleInfo(h)
	if !s.builds.Submit(func() {
		defer h.Release()
		buildStart := time.Now()
		s.injectBuild(h.Name)
		err := h.runBuild(string(src), s.cfg.MaxSourceBytes, s.managerOptions(), !s.cfg.DisablePlanner, s.reuse)
		s.observeBuild(h.Name, "async", buildStart, err)
		s.reg.Finish(h, err)
		if err == nil && h.State() == StateReady {
			s.funcsReused.Add(int64(h.FuncsReused))
			// Durability follows promotion on the async path: the 202 never
			// promised the module existed, so a persist failure here
			// unpublishes it and logs — the status poll then reports the
			// module gone, which a recovery-aware client treats as retry.
			if perr := s.persistModule(h.Name, h.Format, src); perr != nil {
				s.log.Error("persisting async module failed; unpublishing",
					"module", h.Name, "error", perr)
				s.reg.Remove(h.Name)
			}
			// Same prompt fold-in as the sync path, after Finish published
			// the module to the sampler.
			s.reconcileBudget()
		}
	}) {
		h.Release()
		s.reg.unreserve(h)
		writeError(w, http.StatusServiceUnavailable, "build queue full, retry later")
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Service) handleGetModule(w http.ResponseWriter, r *http.Request) {
	h, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "module %q not registered", r.PathValue("name"))
		return
	}
	defer h.Release()
	writeJSON(w, http.StatusOK, moduleInfo(h))
}

func (s *Service) handleDeleteModule(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, "module %q not registered", name)
		return
	}
	// Tombstone after the registry drop: a crash in between leaves a
	// persisted module the next boot resurrects — stale but valid, and the
	// client's DELETE can simply be repeated. The reverse order could lose
	// a module that was never meant to be deleted.
	if s.store != nil {
		if _, err := s.store.Delete(name); err != nil {
			s.storeFailing.Add(1)
			s.log.Error("tombstoning deleted module failed", "module", name, "error", err)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// persistModule records one acknowledged upload in the crash-safe store.
// Nil-safe: a memory-only daemon skips straight to success.
func (s *Service) persistModule(name, format string, src []byte) error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Put(name, format, src); err != nil {
		s.storeFailing.Add(1)
		return err
	}
	return nil
}

// admitQuery reserves one in-flight slot, shedding (with the returned
// reason) when the service is draining, the MaxInFlight bound is hit, or
// the hard watermark has tightened admission to a quarter of the bound —
// under hard memory pressure the daemon keeps answering, just narrower, so
// the governor's reclamation can catch up. The caller must releaseQuery
// exactly once when admitted.
//
// aliaslint:bounded — reason is one of four literals.
func (s *Service) admitQuery() (reason string, ok bool) {
	if s.draining.Load() {
		s.sheds.draining.Add(1)
		return "draining", false
	}
	if s.recovering.Load() {
		// The recovered module set is still being published; a query now
		// would 404 on modules that are about to exist. Retryable shed.
		s.sheds.recovering.Add(1)
		return "recovering", false
	}
	n := s.inflight.Add(1)
	limit := s.cfg.MaxInFlight
	if limit > 0 && n > int64(limit) {
		s.inflight.Add(-1)
		s.sheds.inflight.Add(1)
		return "inflight", false
	}
	if s.budget.State() >= budget.StateHard {
		hardLimit := limit / 4
		if hardLimit < 1 {
			hardLimit = 1
		}
		if limit > 0 && n > int64(hardLimit) {
			s.inflight.Add(-1)
			s.sheds.budget.Add(1)
			return "budget", false
		}
	}
	return "", true
}

func (s *Service) releaseQuery() { s.inflight.Add(-1) }

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	tr := telemetry.FromContext(r.Context())
	start := time.Now()
	// Admission first: shedding must cost a counter bump and a tiny write,
	// not a 16MB decode. The decode stage therefore observes only admitted
	// requests — sheds happen before every pipeline-stage histogram, which
	// keeps the CI stage-lockstep reconciliation intact.
	reason, admitted := s.admitQuery()
	if !admitted {
		m.queryErrors.With(reason).Inc()
		s.writeShed(w, http.StatusServiceUnavailable, reason, "query shed (%s), retry later", reason)
		return
	}
	defer s.releaseQuery()
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			m.queryErrors.With("body_too_large").Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		m.queryErrors.With("decode").Inc()
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	observeStage(m.stageDecode, stgDecode, tr, start)
	// Acquire pins the handle for the whole batch: a concurrent DELETE or
	// eviction retires the module but teardown waits for our Release.
	h, ok := s.reg.Acquire(req.Module)
	if !ok {
		m.queryErrors.With("unknown_module").Inc()
		writeError(w, http.StatusNotFound, "module %q not registered", req.Module)
		return
	}
	defer h.Release()
	switch h.State() {
	case StateBuilding:
		m.queryErrors.With("building").Inc()
		writeError(w, http.StatusConflict, "module %q is still building", req.Module)
		return
	case StateFailed:
		m.queryErrors.With("failed").Inc()
		writeError(w, http.StatusConflict, "module %q failed to build: %s", req.Module, h.Err())
		return
	}
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	// The injector runs under the deadline: an injected stall is charged
	// against the batch exactly like real slow evaluation.
	s.injectQuery(req.Module, len(req.Pairs))
	results, err := s.RunBatch(ctx, h, req.Pairs)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.sheds.timeout.Add(1)
			m.queryErrors.With("timeout").Inc()
			s.writeShed(w, http.StatusServiceUnavailable, "timeout",
				"batch exceeded the %s deadline and was cancelled", s.cfg.QueryTimeout)
		case errors.Is(err, context.Canceled):
			s.sheds.canceled.Add(1)
			m.queryErrors.With("canceled").Inc()
			s.writeShed(w, http.StatusServiceUnavailable, "canceled", "batch cancelled")
		default:
			m.queryErrors.With("batch").Inc()
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	aggStart := time.Now()
	resp := QueryResponse{Module: req.Module, Results: results}
	for _, res := range results {
		if res.Result == "no-alias" {
			resp.NoAlias++
		}
	}
	now := observeStage(m.stageAggregate, stgAggregate, tr, aggStart)
	if r.URL.Query().Get("trace") == "1" && tr != nil {
		echo := &TraceEcho{RequestID: tr.ID}
		for _, sp := range tr.Spans() {
			echo.Spans = append(echo.Spans, SpanEcho{
				Stage:      sp.Stage,
				DurationUS: float64(sp.Duration.Nanoseconds()) / 1e3,
			})
		}
		resp.Trace = echo
	}
	s.injectResponse()
	writeJSON(w, http.StatusOK, resp)
	putResultBuf(results) // encoded: the buffer may serve the next batch
	now = observeStage(m.stageEncode, stgEncode, tr, now)
	m.queryDur.Observe(now.Sub(start).Seconds())
	m.queryPairs.Add(int64(len(req.Pairs)))
	m.batchPairs.Observe(float64(len(req.Pairs)))
}

// observeBuild records one module build's outcome counters, duration
// histogram, and info-level log line.
func (s *Service) observeBuild(name, mode string, start time.Time, err error) {
	d := time.Since(start)
	result := "ok"
	if err != nil {
		result = "error"
	}
	s.metrics.builds.With(mode, result).Inc()
	s.metrics.buildDur.With(mode).Observe(d.Seconds())
	if err != nil {
		s.log.Info("module build failed", "module", name, "mode", mode, "duration", d, "error", err)
	} else {
		s.log.Info("module build finished", "module", name, "mode", mode, "duration", d)
	}
}

// memoEntryCost approximates one live memo-cache entry (key, verdict,
// intrusive-list links, map bucket share) for the stats memory accounting.
const memoEntryCost = 112

// budgetStats renders the budget/backpressure section from the same
// atomics the metric collectors read.
func (s *Service) budgetStats() BudgetStats {
	snap := s.budget.Snapshot()
	return BudgetStats{
		Enabled:        s.budget.Enabled(),
		State:          s.budget.State().String(),
		LimitBytes:     snap.Limit,
		SoftBytes:      snap.Soft,
		HardBytes:      snap.Hard,
		AccountedBytes: snap.Accounted,
		HeapBytes:      snap.Heap,
		UsedBytes:      snap.Used,
		Transitions: map[string]int64{
			"ok":   snap.Transitions[budget.StateOK],
			"soft": snap.Transitions[budget.StateSoft],
			"hard": snap.Transitions[budget.StateHard],
		},
		Sheds: map[string]int64{
			"draining":          s.sheds.draining.Load(),
			"inflight":          s.sheds.inflight.Load(),
			"budget":            s.sheds.budget.Load(),
			"timeout":           s.sheds.timeout.Load(),
			"canceled":          s.sheds.canceled.Load(),
			"recovering":        s.sheds.recovering.Load(),
			"upload_budget":     s.sheds.uploadBudget.Load(),
			"upload_draining":   s.sheds.uploadDraining.Load(),
			"upload_recovering": s.sheds.uploadRecovering.Load(),
		},
		CacheShrinks: s.cacheShrinks.Load(),
		Evictions:    s.budgetEvictions.Load(),
		Draining:     s.draining.Load(),
		Drains:       s.drains.Load(),
		InFlight:     s.inflight.Load(),
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	resp := StatsResponse{
		UptimeMS:       uptime.Milliseconds(),
		UptimeSeconds:  uptime.Seconds(),
		Version:        Version,
		ModulesEvicted: s.reg.Evictions(),
		Budget:         s.budgetStats(),
	}
	if s.store != nil {
		st := s.store.Snapshot()
		resp.Store = &StoreStats{
			Records:         st.Records,
			Bytes:           st.Bytes,
			Puts:            st.Puts,
			Deletes:         st.Deletes,
			Quarantined:     st.Quarantined,
			Errors:          s.storeFailing.Load(),
			RecoverySeconds: time.Duration(s.recoveryDur.Load()).Seconds(),
			Recovering:      s.recovering.Load(),
			FunctionsReused: s.funcsReused.Load(),
		}
	}
	if s.reuse != nil {
		rs := s.reuse.Snapshot()
		resp.Reuse = &ReuseStats{
			Entries:   rs.Entries,
			Bytes:     rs.Bytes,
			Hits:      rs.Hits,
			Misses:    rs.Misses,
			Evictions: rs.Evictions,
		}
	}
	handles := s.reg.List()
	defer releaseAll(handles)
	for _, h := range handles {
		state := h.State() // one load: no torn status-vs-fields rows
		ms := ModuleStats{Name: h.Name, Status: state.String()}
		switch state {
		case StateFailed:
			ms.Error = h.Err()
		case StateReady:
			st := h.Snap.Stats()
			ms.Chain = h.Snap.Name()
			ms.Queries = st.Queries
			ms.CacheHits = st.CacheHits
			ms.CacheMisses = st.Misses
			ms.CacheHitRate = st.CacheHitRate()
			ms.Computed = st.Computed
			ms.NoAlias = st.NoAlias
			ms.Cached = st.Cached
			ms.Evictions = st.Evictions
			ms.MemBytes = h.MemBytes() + st.Cached*memoEntryCost
			for _, m := range st.Members {
				mem := MemberStats{Name: m.Name, NoAlias: m.NoAlias, FirstWins: m.FirstWins}
				if len(m.Details) > 0 {
					mem.Details = m.Details
				}
				ms.Members = append(ms.Members, mem)
			}
			if h.Planner != nil {
				ps := h.Planner.Stats()
				ms.Planner = &PlannerCounters{
					Batches:         ps.Batches,
					PlannedValues:   ps.PlannedValues,
					Groups:          ps.Groups,
					Pairs:           ps.Pairs,
					SweepNoAlias:    ps.SweepNoAlias,
					IndexPairs:      ps.IndexPairs,
					IndexNoAlias:    ps.IndexNoAlias,
					FallbackPairs:   ps.FallbackPairs,
					FallbackNoAlias: ps.FallbackNoAlias,
					FallbackRate:    ps.FallbackRate(),
				}
			}
		}
		resp.Modules = append(resp.Modules, ms)
	}
	writeJSON(w, http.StatusOK, resp)
}
