package service

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/alias"
	"repro/internal/budget"
	"repro/internal/store"
	"repro/internal/symbolic"
	"repro/internal/telemetry"
)

// metrics is the service's telemetry surface: request/pipeline instruments
// updated on the hot path, plus scrape-time collectors that read the very
// same ManagerStats / PlannerStats / cache snapshots GET /v1/stats renders.
// Sourcing both endpoints from one snapshot function per module is what
// makes the reconciliation CI check ("/metrics sums == /v1/stats") hold
// exactly rather than approximately.
//
// aliaslint: never copy a metrics value — instruments embed atomics.
type metrics struct {
	reg *telemetry.Registry

	httpRequests *telemetry.CounterVec // route, code

	queryDur    *telemetry.Histogram
	stageDur    *telemetry.HistogramVec // stage
	queryPairs  *telemetry.Counter
	batchPairs  *telemetry.Histogram
	queryErrors *telemetry.CounterVec // reason

	// Per-stage children resolved once: the pipeline observes through these
	// pointers instead of paying the vec lookup per request.
	stageDecode, stageValidate, stageShard, stagePlan,
	stageEvaluate, stageAggregate, stageEncode *telemetry.Histogram

	builds    *telemetry.CounterVec   // mode, result
	buildDur  *telemetry.HistogramVec // mode
	queueWait *telemetry.Histogram
}

// Histogram bounds, in seconds. Query latencies sit in the tens of
// microseconds to low milliseconds on warm caches; builds run milliseconds
// to seconds; queue waits are near zero until the backlog saturates.
var (
	queryBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
	stageBuckets = []float64{0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.25}
	buildBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 10}
	waitBuckets  = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}
	pairsBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096}
)

// Pipeline stage names — shared by the stage histogram, the per-request
// trace spans, and the ?trace=1 echo.
const (
	stgDecode    = "decode"
	stgValidate  = "validate"
	stgShard     = "shard"
	stgPlan      = "plan"
	stgEvaluate  = "evaluate"
	stgAggregate = "aggregate"
	stgEncode    = "encode"
)

func newMetrics(s *Service) *metrics {
	reg := telemetry.NewRegistry()
	m := &metrics{reg: reg}

	m.httpRequests = reg.CounterVec("aliasd_http_requests_total",
		"HTTP requests by normalized route and status code.", "route", "code")

	m.queryDur = reg.Histogram("aliasd_query_duration_seconds",
		"End-to-end POST /v1/query latency (decode through encode).", queryBuckets)
	m.stageDur = reg.HistogramVec("aliasd_query_stage_duration_seconds",
		"Per-stage query pipeline latency.", stageBuckets, "stage")
	m.stageDecode = m.stageDur.With(stgDecode)
	m.stageValidate = m.stageDur.With(stgValidate)
	m.stageShard = m.stageDur.With(stgShard)
	m.stagePlan = m.stageDur.With(stgPlan)
	m.stageEvaluate = m.stageDur.With(stgEvaluate)
	m.stageAggregate = m.stageDur.With(stgAggregate)
	m.stageEncode = m.stageDur.With(stgEncode)
	m.queryPairs = reg.Counter("aliasd_query_pairs_total",
		"Pairs answered by successful /v1/query batches.")
	m.batchPairs = reg.Histogram("aliasd_query_batch_pairs",
		"Batch size distribution of successful /v1/query requests.", pairsBuckets)
	m.queryErrors = reg.CounterVec("aliasd_query_errors_total",
		"Rejected /v1/query requests by reason.", "reason")

	m.builds = reg.CounterVec("aliasd_builds_total",
		"Module builds by mode (sync|async) and result (ok|error).", "mode", "result")
	m.buildDur = reg.HistogramVec("aliasd_build_duration_seconds",
		"Module build duration (parse, verify, analyze, index).", buildBuckets, "mode")
	m.queueWait = reg.Histogram("aliasd_build_queue_wait_seconds",
		"Time async builds spent queued before a worker picked them up.", waitBuckets)
	reg.GaugeFunc("aliasd_build_queue_depth",
		"Async build tasks submitted but not yet finished.",
		func() float64 { return float64(s.builds.Len()) })

	reg.GaugeFunc("aliasd_uptime_seconds", "Seconds since the service started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.Collect("aliasd_build_info",
		"Build identity: constant 1 labeled with the daemon version and the Go runtime that built it.",
		"gauge", []string{"version", "goversion"}, func(emit func(float64, ...string)) {
			emit(1, Version, runtime.Version())
		})

	// ---- Crash-safe store and analysis reuse. Families exist (at zero)
	// even memory-only, so dashboards need no conditional scrape config;
	// every number reads the same snapshot /v1/stats renders. ----

	storeStat := func(get func(st store.Stats) float64) func() float64 {
		return func() float64 {
			if s.store == nil {
				return 0
			}
			return get(s.store.Snapshot())
		}
	}
	reg.GaugeFunc("aliasd_store_records",
		"Live (non-tombstoned) records in the on-disk module store.",
		storeStat(func(st store.Stats) float64 { return float64(st.Records) }))
	reg.GaugeFunc("aliasd_store_bytes",
		"Summed on-disk size of live store records.",
		storeStat(func(st store.Stats) float64 { return float64(st.Bytes) }))
	reg.CounterFunc("aliasd_store_puts_total",
		"Successful store record writes (uploads persisted).",
		storeStat(func(st store.Stats) float64 { return float64(st.Puts) }))
	reg.CounterFunc("aliasd_store_deletes_total",
		"Successful store tombstone writes (deletes persisted).",
		storeStat(func(st store.Stats) float64 { return float64(st.Deletes) }))
	reg.CounterFunc("aliasd_store_corrupt_quarantined_total",
		"Torn or bit-flipped records (and manifests) moved to corrupt/ and skipped.",
		storeStat(func(st store.Stats) float64 { return float64(st.Quarantined) }))
	reg.CounterFunc("aliasd_store_errors_total",
		"Persist operations (Put/Delete) that returned an error.",
		func() float64 { return float64(s.storeFailing.Load()) })
	reg.GaugeFunc("aliasd_store_recovery_duration_seconds",
		"Wall time of the last boot-time manifest replay (0 until Recover has run).",
		func() float64 { return time.Duration(s.recoveryDur.Load()).Seconds() })
	reg.GaugeFunc("aliasd_store_recovering",
		"1 while the boot-time manifest replay is in progress, else 0.",
		func() float64 {
			if s.recovering.Load() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("aliasd_store_functions_reused_total",
		"Function analyses served zero-copy from the cross-module reuse cache.",
		func() float64 { return float64(s.funcsReused.Load()) })
	reg.GaugeFunc("aliasd_reuse_cache_bytes",
		"Approximate resident bytes of the cross-module analysis reuse cache.",
		func() float64 { return float64(s.reuse.SizeBytes()) })
	reg.Collect("aliasd_reuse_cache_ops_total",
		"Reuse-cache lookups by outcome (hit|miss) plus LRU evictions.",
		"counter", []string{"op"}, func(emit func(float64, ...string)) {
			rs := s.reuse.Snapshot()
			emit(float64(rs.Hits), "hit")
			emit(float64(rs.Misses), "miss")
			emit(float64(rs.Evictions), "evict")
		})

	// ---- Memory budget, backpressure and lifecycle. Every family reads
	// the same atomics /v1/stats renders (budgetStats), so the two
	// endpoints reconcile exactly on an idle daemon. ----

	reg.Collect("aliasd_budget_bytes",
		"Memory-budget figures in bytes: the configured limit, the soft/hard watermarks, the service-side accounting sum, the last heap probe, and the enforced max of the two. All zero with the budget disabled.",
		"gauge", []string{"kind"}, func(emit func(float64, ...string)) {
			snap := s.budget.Snapshot()
			emit(float64(snap.Limit), "limit")
			emit(float64(snap.Soft), "soft")
			emit(float64(snap.Hard), "hard")
			emit(float64(snap.Accounted), "accounted")
			emit(float64(snap.Heap), "heap")
			emit(float64(snap.Used), "used")
		})
	reg.GaugeFunc("aliasd_budget_state",
		"Current watermark state: 0 ok, 1 soft (degrading), 2 hard (rejecting).",
		func() float64 { return float64(s.budget.State()) })
	reg.Collect("aliasd_budget_transitions_total",
		"Watermark-state entries by destination state (ok entries are recoveries).",
		"counter", []string{"state"}, func(emit func(float64, ...string)) {
			snap := s.budget.Snapshot()
			emit(float64(snap.Transitions[budget.StateOK]), "ok")
			emit(float64(snap.Transitions[budget.StateSoft]), "soft")
			emit(float64(snap.Transitions[budget.StateHard]), "hard")
		})
	reg.Collect("aliasd_shed_requests_total",
		"Requests rejected by backpressure, by reason: query admission (draining|recovering|inflight|budget), mid-flight cancellation (timeout|canceled), and upload rejection (upload_budget|upload_draining|upload_recovering).",
		"counter", []string{"reason"}, func(emit func(float64, ...string)) {
			emit(float64(s.sheds.draining.Load()), "draining")
			emit(float64(s.sheds.inflight.Load()), "inflight")
			emit(float64(s.sheds.budget.Load()), "budget")
			emit(float64(s.sheds.timeout.Load()), "timeout")
			emit(float64(s.sheds.canceled.Load()), "canceled")
			emit(float64(s.sheds.recovering.Load()), "recovering")
			emit(float64(s.sheds.uploadBudget.Load()), "upload_budget")
			emit(float64(s.sheds.uploadDraining.Load()), "upload_draining")
			emit(float64(s.sheds.uploadRecovering.Load()), "upload_recovering")
		})
	reg.CounterFunc("aliasd_budget_cache_shrinks_total",
		"Per-module memo-cache shrink operations applied by the budget governor.",
		func() float64 { return float64(s.cacheShrinks.Load()) })
	reg.CounterFunc("aliasd_budget_evictions_total",
		"Modules force-evicted by the budget governor (distinct from registry-bound evictions).",
		func() float64 { return float64(s.budgetEvictions.Load()) })
	reg.GaugeFunc("aliasd_inflight_queries",
		"Currently admitted /v1/query batches (bounded by MaxInFlight).",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("aliasd_draining",
		"1 once BeginDrain has flipped the service into drain mode, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("aliasd_drains_total",
		"Drain initiations (at most one per process lifetime in practice).",
		func() float64 { return float64(s.drains.Load()) })
	reg.GaugeFunc("aliasd_process_rss_bytes",
		"Resident set size from /proc/self/statm (0 where unavailable) — the figure the soak scenario asserts stays flat.",
		func() float64 { return float64(budget.ProcessRSS()) })

	// ---- Scrape-time collectors: the /v1/stats numbers, re-rendered. ----

	perModule := func(name, help, typ string, get func(st alias.ManagerStats, h *Handle) float64) {
		reg.Collect(name, help, typ, []string{"module"}, func(emit func(float64, ...string)) {
			s.eachReadyModule(func(h *Handle, st alias.ManagerStats) {
				emit(get(st, h), h.Name)
			})
		})
	}
	perModule("aliasd_module_queries_total", "Manager queries per ready module (cache hits included).",
		"counter", func(st alias.ManagerStats, _ *Handle) float64 { return float64(st.Queries) })
	perModule("aliasd_module_cache_hits_total", "Memo-cache hits per ready module.",
		"counter", func(st alias.ManagerStats, _ *Handle) float64 { return float64(st.CacheHits) })
	perModule("aliasd_module_cache_misses_total", "Memo-cache misses per ready module.",
		"counter", func(st alias.ManagerStats, _ *Handle) float64 { return float64(st.Misses) })
	perModule("aliasd_module_computed_total", "Chain-computed queries per ready module.",
		"counter", func(st alias.ManagerStats, _ *Handle) float64 { return float64(st.Computed) })
	perModule("aliasd_module_noalias_total", "Computed no-alias verdicts per ready module.",
		"counter", func(st alias.ManagerStats, _ *Handle) float64 { return float64(st.NoAlias) })
	perModule("aliasd_module_cache_evictions_total", "Memo-cache evictions per ready module.",
		"counter", func(st alias.ManagerStats, _ *Handle) float64 { return float64(st.Evictions) })
	perModule("aliasd_module_cache_entries", "Live memo-cache entries per ready module.",
		"gauge", func(st alias.ManagerStats, _ *Handle) float64 { return float64(st.Cached) })
	perModule("aliasd_module_mem_bytes", "Approximate resident bytes per ready module (IR, analyses, index, interned exprs, memo cache).",
		"gauge", func(st alias.ManagerStats, h *Handle) float64 {
			return float64(h.MemBytes() + st.Cached*memoEntryCost)
		})

	reg.Collect("aliasd_member_noalias_total", "No-alias proofs per chain member (computed queries only).",
		"counter", []string{"module", "member"}, func(emit func(float64, ...string)) {
			s.eachReadyModule(func(h *Handle, st alias.ManagerStats) {
				for i := range st.Members {
					emit(float64(st.Members[i].NoAlias), h.Name, st.Members[i].Name)
				}
			})
		})
	reg.Collect("aliasd_member_first_wins_total", "LLVM-AAResults-style first-prover attributions per chain member.",
		"counter", []string{"module", "member"}, func(emit func(float64, ...string)) {
			s.eachReadyModule(func(h *Handle, st alias.ManagerStats) {
				for i := range st.Members {
					emit(float64(st.Members[i].FirstWins), h.Name, st.Members[i].Name)
				}
			})
		})

	perPlanner := func(name, help string, get func(ps alias.PlannerStats) float64) {
		reg.Collect(name, help, "counter", []string{"module"}, func(emit func(float64, ...string)) {
			s.eachReadyModule(func(h *Handle, st alias.ManagerStats) {
				if h.Planner != nil {
					emit(get(h.Planner.Stats()), h.Name)
				}
			})
		})
	}
	perPlanner("aliasd_planner_batches_total", "Shards swept by the batch planner.",
		func(ps alias.PlannerStats) float64 { return float64(ps.Batches) })
	perPlanner("aliasd_planner_planned_values_total", "Distinct values fed to the sweep-line partitioner.",
		func(ps alias.PlannerStats) float64 { return float64(ps.PlannedValues) })
	perPlanner("aliasd_planner_groups_total", "Overlap groups produced by the sweep partition.",
		func(ps alias.PlannerStats) float64 { return float64(ps.Groups) })
	reg.Collect("aliasd_planner_pairs_total",
		"Planner-answered pairs by path (sweep short-circuit | compiled index | legacy fallback).",
		"counter", []string{"module", "path"}, func(emit func(float64, ...string)) {
			s.eachReadyModule(func(h *Handle, _ alias.ManagerStats) {
				if h.Planner == nil {
					return
				}
				ps := h.Planner.Stats()
				emit(float64(ps.SweepNoAlias), h.Name, "sweep")
				emit(float64(ps.IndexPairs), h.Name, "index")
				emit(float64(ps.FallbackPairs), h.Name, "fallback")
			})
		})
	reg.Collect("aliasd_planner_noalias_total",
		"Planner no-alias verdicts by path (sweep pairs are no-alias by construction).",
		"counter", []string{"module", "path"}, func(emit func(float64, ...string)) {
			s.eachReadyModule(func(h *Handle, _ alias.ManagerStats) {
				if h.Planner == nil {
					return
				}
				ps := h.Planner.Stats()
				emit(float64(ps.SweepNoAlias), h.Name, "sweep")
				emit(float64(ps.IndexNoAlias), h.Name, "index")
				emit(float64(ps.FallbackNoAlias), h.Name, "fallback")
			})
		})

	// ---- Registry lifecycle. ----

	reg.Collect("aliasd_modules", "Registered modules by build state.",
		"gauge", []string{"state"}, func(emit func(float64, ...string)) {
			counts := map[BuildState]int{}
			handles := s.reg.List()
			for _, h := range handles {
				counts[h.State()]++
			}
			releaseAll(handles)
			for _, st := range []BuildState{StateBuilding, StateReady, StateFailed} {
				emit(float64(counts[st]), st.String())
			}
		})
	reg.CounterFunc("aliasd_modules_evicted_total",
		"Modules displaced from the full registry to admit newer uploads.",
		func() float64 { return float64(s.reg.Evictions()) })
	reg.Collect("aliasd_module_pins", "Outstanding handle pins (in-flight batches and lookups) per module.",
		"gauge", []string{"module"}, func(emit func(float64, ...string)) {
			handles := s.reg.List()
			for _, h := range handles {
				// List itself pins each handle; subtract our own pin.
				emit(float64(h.refs.Load()-1), h.Name)
			}
			releaseAll(handles)
		})

	// ---- Interner. Each module build runs in its own interner (see
	// Handle.interner), so the claimed gauge is the sum over live modules
	// and DROPS when a module is deleted — the churn test in
	// metrics_test.go pins that down. The Default interner still exists for
	// expressions minted outside module builds (tests, ad-hoc tooling) and
	// its gauges are kept separate. ----

	reg.GaugeFunc("aliasd_interner_exprs",
		"Hash-consed symbolic expressions resident in the shared Default intern table (expressions minted outside module builds).",
		func() float64 { return float64(symbolic.Default().Stats().Interned) })
	reg.CounterFunc("aliasd_interner_hits_total",
		"Default intern-table lookups answered by an existing expression.",
		func() float64 { return float64(symbolic.Default().Stats().Hits) })
	reg.GaugeFunc("aliasd_interner_claimed_exprs",
		"Symbolic expressions held by live module interners (falls when modules are deleted or evicted).",
		func() float64 {
			var total int64
			handles := s.reg.List()
			for _, h := range handles {
				if h.State() == StateReady {
					total += h.InternedExprs()
				}
			}
			releaseAll(handles)
			return float64(total)
		})

	return m
}

// eachReadyModule runs fn over every ready module with one stats snapshot,
// pinned for the duration of the call (List pins, releaseAll releases).
func (s *Service) eachReadyModule(fn func(h *Handle, st alias.ManagerStats)) {
	handles := s.reg.List()
	defer releaseAll(handles)
	for _, h := range handles {
		if h.State() != StateReady {
			continue
		}
		fn(h, h.Snap.Stats())
	}
}

// observeStage records one pipeline stage on the histogram child and the
// request trace, returning the stage's end time so callers chain stages
// without a second clock read.
func observeStage(h *telemetry.Histogram, stage string, tr *telemetry.Trace, start time.Time) time.Time {
	now := time.Now()
	d := now.Sub(start)
	h.Observe(d.Seconds())
	tr.Observe(stage, start, d)
	return now
}

// statusWriter captures the response code for the request-level metrics and
// the structured access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// routeLabel normalizes a request path into a bounded label set — path
// parameters must not explode the aliasd_http_requests_total cardinality.
//
// aliaslint:bounded
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/healthz", p == "/readyz", p == "/metrics",
		p == "/v1/modules", p == "/v1/query", p == "/v1/stats":
		return p
	case strings.HasPrefix(p, "/v1/modules/"):
		return "/v1/modules/{name}"
	}
	return "other"
}

// instrument wraps the API mux with the per-request envelope: X-Request-ID
// propagation (generated when absent), the context-carried trace the
// pipeline records stage spans into, the route/code request counter, and a
// debug-level access log line with the per-stage breakdown.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = telemetry.NewRequestID()
		}
		tr := telemetry.NewTrace(id)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(telemetry.NewContext(r.Context(), tr)))
		route := routeLabel(r)
		s.metrics.httpRequests.With(route, strconv.Itoa(sw.code)).Inc() //nolint:metricreg // status codes the handlers emit form a small fixed set; rendering them through Itoa cannot explode cardinality
		s.log.Debug("request",
			"id", id,
			"method", r.Method,
			"route", route,
			"code", sw.code,
			"duration", time.Since(start),
			"stages", tr.String(),
		)
	})
}
