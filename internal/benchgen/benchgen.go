// Package benchgen deterministically generates synthetic IR benchmarks that
// stand in for the C suites of the paper's evaluation (Prolangs, PtrDist,
// MallocBench — §4). Real C sources cannot be compiled here, so each named
// benchmark is generated from a seed and an *idiom mix* that reproduces the
// pointer-disambiguation characteristics that drive Fig. 13:
//
//	message   two-phase loops split at a symbolic boundary (Fig. 1) —
//	          only the global range test wins;
//	stride    strided loops accessing p[i], p[i+1], … (Fig. 3) —
//	          scev-aa and the local test win;
//	fields    constant struct-field offsets — basicaa and rbaa win;
//	multiobj  several distinct allocations — basicaa and rbaa win;
//	chase     pointer chases through loads — nobody wins (⊤ everywhere);
//	soup      many pointer parameters stored through — nobody wins;
//	cond      conditional regions guarded by comparisons (π-nodes) — rbaa;
//	local     a non-escaping local array used next to an unknown pointer
//	          parameter — basicaa's escape rule wins where rbaa cannot
//	          (the complementarity §4 reports: r+b > rbaa).
//
// Only a fraction of the workers is called from the generated main (the
// rest model externally callable functions, whose pointer parameters every
// analysis must treat conservatively — the reason §4 gives for the low
// absolute percentages). Called workers receive buffers from a small shared
// pool, so their parameters have known but possibly-aliasing values.
//
// DESIGN.md records this substitution; EXPERIMENTS.md compares the shape of
// the resulting tables against the paper's.
package benchgen

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/ssa"
)

// Mix weighs the idioms of a generated program. Weights are relative.
type Mix struct {
	Message  int
	Stride   int
	Fields   int
	MultiObj int
	Chase    int
	Soup     int
	Cond     int
	Local    int
}

// Config describes one synthetic benchmark.
type Config struct {
	Name    string
	Seed    int64
	Workers int // number of generated worker functions
	Mix     Mix
	// SkipESSA generates the module without π-insertion — the e-SSA
	// ablation of DESIGN.md (§ design decision 3).
	SkipESSA bool
}

// Generate builds the module for a config. The same config always yields
// the same module. The result is in e-SSA form (unless SkipESSA) and
// SSA-verified by construction (tests check this).
func Generate(c Config) *ir.Module {
	g := &gen{rng: rand.New(rand.NewSource(c.Seed)), m: ir.NewModule(c.Name)}
	kinds := c.Mix.deal(g.rng, c.Workers)
	var workers []*ir.Func
	for i, k := range kinds {
		workers = append(workers, g.worker(i, k))
	}
	g.driver(workers)
	if !c.SkipESSA {
		for _, f := range g.m.Funcs {
			ssa.InsertPi(f)
		}
	}
	return g.m
}

// deal expands the weights into a shuffled worker-kind sequence.
func (mix Mix) deal(rng *rand.Rand, n int) []idiom {
	weights := []struct {
		k idiom
		w int
	}{
		{idMessage, mix.Message}, {idStride, mix.Stride}, {idFields, mix.Fields},
		{idMultiObj, mix.MultiObj}, {idChase, mix.Chase}, {idSoup, mix.Soup},
		{idCond, mix.Cond}, {idLocal, mix.Local},
	}
	total := 0
	for _, w := range weights {
		total += w.w
	}
	if total == 0 {
		total = 1
		weights[0].w = 1
	}
	out := make([]idiom, n)
	for i := range out {
		pick := rng.Intn(total)
		for _, w := range weights {
			if pick < w.w {
				out[i] = w.k
				break
			}
			pick -= w.w
		}
	}
	return out
}

type idiom uint8

const (
	idMessage idiom = iota
	idStride
	idFields
	idMultiObj
	idChase
	idSoup
	idCond
	idLocal
)

type gen struct {
	rng *rand.Rand
	m   *ir.Module
}

// worker emits one function of the given idiom.
func (g *gen) worker(i int, k idiom) *ir.Func {
	name := fmt.Sprintf("w%d", i)
	switch k {
	case idMessage:
		return g.messageWorker(name)
	case idStride:
		return g.strideWorker(name)
	case idFields:
		return g.fieldsWorker(name)
	case idMultiObj:
		return g.multiObjWorker(name)
	case idChase:
		return g.chaseWorker(name)
	case idSoup:
		return g.soupWorker(name)
	case idCond:
		return g.condWorker(name)
	default:
		return g.localWorker(name)
	}
}

// calledFraction is the share of workers the driver invokes; the rest model
// externally callable functions whose parameters stay ⊤.
const calledFraction = 0.35

// driver emits a main with a small shared buffer pool and calls a fraction
// of the workers with buffers drawn (with repetition) from the pool —
// parameters of called workers get known, possibly overlapping, allocation
// sites; the rest stay conservative.
func (g *gen) driver(workers []*ir.Func) {
	f := g.m.NewFunc("main", ir.TInt)
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	n := b.Extern("atoi", ir.TInt, "n")
	poolSize := 2 + len(workers)/12
	pool := make([]*ir.Value, poolSize)
	for i := range pool {
		pool[i] = b.Malloc(n, "buf")
	}
	for _, w := range workers {
		if g.rng.Float64() >= calledFraction {
			continue
		}
		args := make([]*ir.Value, 0, len(w.Params))
		for _, p := range w.Params {
			if p.Typ == ir.TPtr {
				args = append(args, pool[g.rng.Intn(poolSize)])
			} else {
				args = append(args, n)
			}
		}
		b.Call(w, "", args...)
	}
	b.Ret(b.Int(0))
}

// countingLoop emits `for (i = start; i < bound; i += step) body(i)` and
// returns after positioning the builder at the exit block.
func (g *gen) countingLoop(b *ir.Builder, start, bound *ir.Value, step int64,
	body func(b *ir.Builder, i *ir.Value)) {
	head := b.Block("head")
	loopBody := b.Block("body")
	exit := b.Block("exit")
	pre := b.B
	b.Br(head)
	b.SetBlock(head)
	iphi := b.Phi(ir.TInt, "i")
	c := b.Cmp(ir.PLt, iphi.Res, bound, "c")
	b.CondBr(c, loopBody, exit)
	b.SetBlock(loopBody)
	body(b, iphi.Res)
	inext := b.Add(iphi.Res, b.Int(step), "inext")
	b.Br(head)
	ir.AddIncoming(iphi, start, pre)
	ir.AddIncoming(iphi, inext, loopBody)
	b.SetBlock(exit)
}

// ptrLoop emits `for (cur = start; cur < end; cur += step) body(cur)` with
// a *pointer* cursor — the Fig. 1 shape — and returns the loop-exit value
// of the cursor (the φ), leaving the builder at the exit block.
func (g *gen) ptrLoop(b *ir.Builder, start, end *ir.Value, step int64,
	body func(b *ir.Builder, cur *ir.Value)) *ir.Value {
	head := b.Block("phead")
	loopBody := b.Block("pbody")
	exit := b.Block("pexit")
	pre := b.B
	b.Br(head)
	b.SetBlock(head)
	cphi := b.Phi(ir.TPtr, "cur")
	c := b.Cmp(ir.PLt, cphi.Res, end, "cc")
	b.CondBr(c, loopBody, exit)
	b.SetBlock(loopBody)
	body(b, cphi.Res)
	next := b.PtrAddConst(cphi.Res, step, "curnext")
	b.Br(head)
	ir.AddIncoming(cphi, start, pre)
	ir.AddIncoming(cphi, next, loopBody)
	b.SetBlock(exit)
	return cphi.Res
}

// messageWorker: the Fig. 1 pattern — fill [p, p+n) then [p+n, p+n+len)
// with a pointer cursor, exactly like the paper's prepare. Half the
// instances allocate their own buffer (so the symbolic split is provable
// even when the worker is never called internally); the rest write through
// the parameter.
func (g *gen) messageWorker(name string) *ir.Func {
	f := g.m.NewFunc(name, ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	p, n := f.Params[0], f.Params[1]
	if g.rng.Intn(2) == 0 {
		p = b.Malloc(n, "selfbuf")
	}
	e := b.PtrAdd(p, n, "e")
	step := 1 + int64(g.rng.Intn(2))
	after1 := g.ptrLoop(b, p, e, step, func(b *ir.Builder, cur *ir.Value) {
		b.Store(cur, b.Int(0))
		if step == 2 {
			t := b.PtrAddConst(cur, 1, "t")
			b.Store(t, b.Int(255))
		}
	})
	ln := b.Extern("strlen", ir.TInt, "len")
	fend := b.PtrAdd(e, ln, "fend")
	g.ptrLoop(b, after1, fend, 1, func(b *ir.Builder, cur *ir.Value) {
		b.Store(cur, b.Int(255))
	})
	b.Ret(nil)
	return f
}

// strideWorker: the Fig. 3 pattern — p[i], p[i+1], … with stride ≥ 2.
func (g *gen) strideWorker(name string) *ir.Func {
	f := g.m.NewFunc(name, ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	p, n := f.Params[0], f.Params[1]
	lanes := 3 + g.rng.Intn(3) // 3–5 accesses per iteration
	g.countingLoop(b, b.Int(0), n, int64(lanes), func(b *ir.Builder, i *ir.Value) {
		for l := 0; l < lanes; l++ {
			idx := i
			if l > 0 {
				idx = b.Add(i, b.Int(int64(l)), fmt.Sprintf("i%d", l))
			}
			q := b.PtrAdd(p, idx, fmt.Sprintf("lane%d", l))
			v := b.Load(ir.TInt, q, "v")
			s := b.Add(v, b.Int(int64(l+1)), "s")
			b.Store(q, s)
		}
	})
	b.Ret(nil)
	return f
}

// fieldsWorker: a record with a fixed header and a variable-length body —
// constant-offset header accesses (basicaa territory) plus a loop that
// stores through a symbolic body index and re-reads the header (rbaa
// territory: the reload is redundant only if body ∈ rec+[hdr, n+hdr) is
// proven away from the header words).
func (g *gen) fieldsWorker(name string) *ir.Func {
	f := g.m.NewFunc(name, ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	n := f.Params[0]
	hdr := 3 + g.rng.Intn(4)
	size := b.Add(n, b.Int(int64(hdr)), "size")
	rec := b.Malloc(size, "rec")
	var fields []*ir.Value
	for k := 0; k < hdr; k++ {
		fd := b.PtrAddConst(rec, int64(k), fmt.Sprintf("f%d", k))
		fields = append(fields, fd)
		b.Store(fd, b.Int(int64(10*k)))
	}
	// Re-read header fields in the same block as the stores: forwarding
	// across the interleaved const-offset stores needs basicaa (or better).
	for k := 0; k < hdr; k += 2 {
		b.Load(ir.TInt, fields[k], "rv")
	}
	base := b.PtrAddConst(rec, int64(hdr), "base")
	g.countingLoop(b, b.Int(0), n, 1, func(b *ir.Builder, i *ir.Value) {
		h0 := b.Load(ir.TInt, fields[0], "h0")
		q := b.PtrAdd(base, i, "q")
		s := b.Add(h0, i, "s")
		b.Store(q, s)
		h1 := b.Load(ir.TInt, fields[0], "h1") // redundant under rbaa only
		b.Store(q, b.Add(h1, s, "s2"))
	})
	b.Ret(nil)
	return f
}

// multiObjWorker: several distinct allocations written independently.
func (g *gen) multiObjWorker(name string) *ir.Func {
	f := g.m.NewFunc(name, ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	n := f.Params[0]
	objs := 2 + g.rng.Intn(3)
	var ptrs []*ir.Value
	for k := 0; k < objs; k++ {
		ptrs = append(ptrs, b.Malloc(n, fmt.Sprintf("o%d", k)))
	}
	g.countingLoop(b, b.Int(0), n, 1, func(b *ir.Builder, i *ir.Value) {
		for k, o := range ptrs {
			q := b.PtrAdd(o, i, fmt.Sprintf("q%d", k))
			b.Store(q, b.Int(int64(k)))
		}
	})
	b.Ret(nil)
	return f
}

// chaseWorker: loads pointers out of memory — ⊤ for every analysis. The
// chains are deep and branch out, so these functions contribute a large
// share of irreducibly may-alias pairs (as linked-structure code does in
// the paper's suites).
func (g *gen) chaseWorker(name string) *ir.Func {
	f := g.m.NewFunc(name, ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	depth := 4 + g.rng.Intn(4)
	cur := f.Params[0]
	for k := 0; k < depth; k++ {
		nxt := b.Load(ir.TPtr, cur, fmt.Sprintf("n%d", k))
		side := b.PtrAddConst(nxt, int64(1+g.rng.Intn(3)), fmt.Sprintf("s%d", k))
		b.Store(side, b.Int(int64(k)))
		b.Store(nxt, b.Int(int64(k)))
		cur = nxt
	}
	b.Ret(nil)
	return f
}

// soupWorker: many pointer parameters of unknown relation, re-offset by
// opaque amounts — nothing is disambiguable.
func (g *gen) soupWorker(name string) *ir.Func {
	np := 3 + g.rng.Intn(4)
	params := []ir.ParamSpec{}
	for k := 0; k < np; k++ {
		params = append(params, ir.Param(fmt.Sprintf("p%d", k), ir.TPtr))
	}
	params = append(params, ir.Param("n", ir.TInt))
	f := g.m.NewFunc(name, ir.TVoid, params...)
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	off := b.Extern("rand", ir.TInt, "off")
	for k := 0; k < np; k++ {
		q := b.PtrAddConst(f.Params[k], int64(g.rng.Intn(4)), fmt.Sprintf("q%d", k))
		b.Store(q, b.Int(int64(k)))
		r := b.PtrAdd(f.Params[k], off, fmt.Sprintf("r%d", k))
		v := b.Load(ir.TInt, r, "v")
		b.Store(q, v)
	}
	b.Ret(nil)
	return f
}

// condWorker: a comparison-guarded split — the π-node idiom.
func (g *gen) condWorker(name string) *ir.Func {
	f := g.m.NewFunc(name, ir.TVoid, ir.Param("p", ir.TPtr),
		ir.Param("k", ir.TInt), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	low := b.Block("low")
	high := b.Block("high")
	exit := b.Block("exit")
	b.SetBlock(entry)
	p, k, n := f.Params[0], f.Params[1], f.Params[2]
	c := b.Cmp(ir.PLt, k, n, "c")
	b.CondBr(c, low, high)
	b.SetBlock(low)
	ql := b.PtrAdd(p, k, "ql") // k < n: within [0, n)
	b.Store(ql, b.Int(1))
	b.Br(exit)
	b.SetBlock(high)
	qn := b.PtrAdd(p, n, "qn")
	qh := b.PtrAdd(qn, k, "qh") // ≥ n + k with k ≥ n
	b.Store(qh, b.Int(2))
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(nil)
	return f
}

// localWorker: a non-escaping local array written next to an unknown
// pointer parameter. basicaa proves the local cannot alias the parameter
// (escape rule); rbaa cannot, because the parameter is ⊤ — this is where
// the r+b combination beats rbaa alone.
func (g *gen) localWorker(name string) *ir.Func {
	f := g.m.NewFunc(name, ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	p, n := f.Params[0], f.Params[1]
	size := int64(4 + g.rng.Intn(12))
	arr := b.Alloc(ir.AllocStack, b.Int(size), "arr")
	head := b.PtrAddConst(arr, 0, "head")
	tail := b.PtrAddConst(arr, size-1, "tail")
	b.Store(head, b.Int(0))
	b.Store(tail, b.Int(1))
	pfx := b.PtrAddConst(p, int64(g.rng.Intn(3)), "pfx")
	b.Store(pfx, b.Int(2))
	g.countingLoop(b, b.Int(0), n, 1, func(b *ir.Builder, i *ir.Value) {
		q := b.PtrAdd(arr, i, "q")
		b.Store(q, b.Int(0))
		r := b.PtrAdd(p, i, "r")
		v := b.Load(ir.TInt, r, "v")
		b.Store(q, v)
	})
	b.Ret(nil)
	return f
}
