package benchgen

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/ssa"
)

func TestGeneratedModulesAreValidSSA(t *testing.T) {
	for _, c := range Fig13Configs() {
		m := Generate(c)
		if err := ir.Verify(m); err != nil {
			t.Fatalf("%s: structural verify: %v", c.Name, err)
		}
		if err := ssa.VerifyModuleSSA(m); err != nil {
			t.Fatalf("%s: SSA verify: %v", c.Name, err)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	c := Fig13Configs()[0]
	a := Generate(c).String()
	b := Generate(c).String()
	if a != b {
		t.Fatal("same config must generate identical modules")
	}
	// Different seeds differ.
	c2 := c
	c2.Seed++
	if Generate(c2).String() == a {
		t.Fatal("different seeds should generate different modules")
	}
}

func TestEveryIdiomGenerates(t *testing.T) {
	one := func(mix Mix) {
		t.Helper()
		m := Generate(Config{Name: "t", Seed: 7, Workers: 4, Mix: mix})
		if err := ssa.VerifyModuleSSA(m); err != nil {
			t.Fatalf("mix %+v: %v", mix, err)
		}
		if len(m.Funcs) != 5 { // 4 workers + main
			t.Fatalf("mix %+v: %d funcs", mix, len(m.Funcs))
		}
	}
	one(Mix{Message: 1})
	one(Mix{Stride: 1})
	one(Mix{Fields: 1})
	one(Mix{MultiObj: 1})
	one(Mix{Chase: 1})
	one(Mix{Soup: 1})
	one(Mix{Cond: 1})
	one(Mix{Local: 1})
}

func TestZeroMixDefaults(t *testing.T) {
	m := Generate(Config{Name: "t", Seed: 1, Workers: 2, Mix: Mix{}})
	if len(m.Funcs) != 3 {
		t.Fatalf("zero mix should still generate workers, got %d funcs", len(m.Funcs))
	}
}

func TestScalabilitySizesGrow(t *testing.T) {
	cfgs := ScalabilityConfigs(10)
	if len(cfgs) != 10 {
		t.Fatalf("want 10 configs")
	}
	prev := 0
	for i, c := range cfgs {
		m := Generate(c)
		st := m.Stats()
		if st.Instrs <= 0 {
			t.Fatalf("config %d: empty module", i)
		}
		// The ramp is geometric in worker count; per-seed body-size noise
		// allows small local dips, but the trend must grow.
		if i > 0 && float64(st.Instrs) < 0.7*float64(prev) {
			t.Errorf("config %d much smaller than predecessor (%d < %d)", i, st.Instrs, prev)
		}
		prev = st.Instrs
	}
}

func TestSuiteHasEnoughQueries(t *testing.T) {
	total := 0
	for _, c := range Fig13Configs() {
		total += alias.NumQueries(Generate(c))
	}
	// The exact count is pinned by the seeds; make sure the corpus stays a
	// meaningful size if someone retunes the mixes.
	if total < 5000 {
		t.Errorf("Fig. 13 corpus has only %d queries; retune the configs", total)
	}
}

func TestDriverCallsSubsetOfWorkers(t *testing.T) {
	m := Generate(Config{Name: "t", Seed: 3, Workers: 40,
		Mix: Mix{Message: 1, Stride: 1, Soup: 1, Chase: 1}})
	calls := 0
	for _, in := range m.Func("main").Instrs() {
		if in.Op == ir.OpCall {
			calls++
		}
	}
	if calls == 0 {
		t.Error("driver should call some workers")
	}
	if calls >= 40 {
		t.Error("driver must leave some workers externally callable")
	}
}
