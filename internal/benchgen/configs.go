package benchgen

import (
	"fmt"

	"repro/internal/ir"
)

// WideBatch builds the batch-planner workload shared by cmd/aliasload's
// bigbatch scenario and the analysis bench: one straight-line function over
// four allocations, each fanned into distinct field pointers — constant
// offsets interleaved with symbolic n+k offsets (the second phase of
// Fig. 1's message buffer, whose disambiguation needs symbolic range
// subtraction) and a sprinkle of ⊤ loads that keep the planner's
// residue/index paths honest. ptrs is the pointer-value count; the
// same-function pair enumeration grows as ptrs²/2.
func WideBatch(name string, ptrs int) *ir.Module {
	m := ir.NewModule(name)
	f := m.NewFunc("wide", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	b.SetBlock(b.Block("entry"))
	n := f.Params[0]
	const objs = 4
	var bases []*ir.Value
	for o := 0; o < objs; o++ {
		size := b.Add(n, b.Int(int64(ptrs)), fmt.Sprintf("sz%d", o))
		bases = append(bases, b.Malloc(size, fmt.Sprintf("obj%d", o)))
	}
	for k := 0; k < ptrs-objs; k++ {
		base := bases[k%objs]
		switch {
		case k%16 == 15:
			// A pointer loaded from memory: GR = ⊤, the sweep's residue.
			b.Load(ir.TPtr, base, fmt.Sprintf("ld%d", k))
		case k%2 == 1:
			off := b.Add(n, b.Int(int64(1+k/objs)), fmt.Sprintf("o%d", k))
			b.Store(b.PtrAdd(base, off, fmt.Sprintf("q%d", k)), b.Int(int64(k)))
		default:
			b.Store(b.PtrAddConst(base, int64(1+k/objs), fmt.Sprintf("p%d", k)), b.Int(int64(k)))
		}
	}
	b.Ret(nil)
	return m
}

// Fig13Configs are the 22 benchmark programs of Fig. 13 (Prolangs, PtrDist
// and MallocBench), modeled as synthetic idiom mixes. The mixes encode what
// the paper's per-program percentages imply about each program's pointer
// style: e.g. fixoutput is basicaa-friendly (88.3% basic) — almost all
// distinct objects and constant fields; cdecl and gs lean on symbolic
// offsets (rbaa double basic); bison/archie are load/param heavy (everyone
// low). Worker counts are scaled so the whole suite stays laptop-fast while
// preserving the relative query-count ordering of the paper's #Queries
// column.
func Fig13Configs() []Config {
	mk := func(name string, seed int64, workers int, mix Mix) Config {
		return Config{Name: name, Seed: seed, Workers: workers, Mix: calibrate(mix)}
	}
	return []Config{
		// MallocBench.
		mk("cfrac", 101, 26, Mix{Message: 1, Stride: 1, Fields: 1, MultiObj: 1, Chase: 6, Soup: 6, Cond: 1, Local: 1}),
		mk("espresso", 102, 72, Mix{Message: 2, Stride: 2, Fields: 2, MultiObj: 2, Chase: 4, Soup: 4, Cond: 1, Local: 1}),
		mk("gs", 103, 64, Mix{Message: 4, Stride: 2, Fields: 3, MultiObj: 3, Chase: 3, Soup: 3, Cond: 1, Local: 1}),
		// Prolangs.
		mk("allroots", 104, 8, Mix{Stride: 2, Fields: 4, MultiObj: 4, Chase: 1, Soup: 1, Local: 1}),
		mk("archie", 105, 34, Mix{Message: 1, Stride: 1, Fields: 1, MultiObj: 1, Chase: 6, Soup: 6, Cond: 1, Local: 2}),
		mk("assembler", 106, 22, Mix{Message: 2, Stride: 2, Fields: 3, MultiObj: 2, Chase: 4, Soup: 4, Cond: 1, Local: 1}),
		mk("bison", 107, 30, Mix{Message: 1, Stride: 1, Fields: 1, MultiObj: 1, Chase: 8, Soup: 8, Cond: 1, Local: 1}),
		mk("cdecl", 108, 40, Mix{Message: 4, Stride: 3, Fields: 2, MultiObj: 2, Chase: 3, Soup: 3, Cond: 2, Local: 1}),
		mk("compiler", 109, 10, Mix{Fields: 4, MultiObj: 4, Chase: 1, Soup: 1, Stride: 1, Local: 1}),
		mk("fixoutput", 110, 6, Mix{Fields: 6, MultiObj: 6, Soup: 1, Local: 1}),
		mk("football", 111, 52, Mix{Message: 2, Stride: 2, Fields: 4, MultiObj: 4, Chase: 3, Soup: 3, Cond: 1, Local: 1}),
		mk("gnugo", 112, 12, Mix{Message: 2, Stride: 2, Fields: 4, MultiObj: 3, Chase: 1, Soup: 1, Cond: 1, Local: 1}),
		mk("loader", 113, 12, Mix{Message: 1, Stride: 1, Fields: 2, MultiObj: 1, Chase: 4, Soup: 4, Cond: 1, Local: 1}),
		mk("plot2fig", 114, 16, Mix{Message: 3, Stride: 2, Fields: 2, MultiObj: 2, Chase: 3, Soup: 3, Cond: 1, Local: 1}),
		mk("simulator", 115, 16, Mix{Message: 2, Stride: 1, Fields: 3, MultiObj: 2, Chase: 4, Soup: 4, Cond: 1, Local: 1}),
		mk("unix-smail", 116, 24, Mix{Message: 2, Stride: 2, Fields: 3, MultiObj: 2, Chase: 4, Soup: 4, Cond: 1, Local: 1}),
		mk("unix-tbl", 117, 28, Mix{Message: 1, Stride: 2, Fields: 3, MultiObj: 2, Chase: 4, Soup: 4, Cond: 1, Local: 1}),
		// PtrDist.
		mk("anagram", 118, 6, Mix{Message: 2, Stride: 2, Fields: 1, MultiObj: 1, Chase: 2, Soup: 2, Cond: 1, Local: 1}),
		mk("bc", 119, 44, Mix{Message: 3, Stride: 3, Fields: 2, MultiObj: 2, Chase: 3, Soup: 3, Cond: 2, Local: 1}),
		mk("ft", 120, 9, Mix{Message: 2, Stride: 1, Fields: 1, MultiObj: 1, Chase: 4, Soup: 4, Cond: 1, Local: 1}),
		mk("ks", 121, 12, Mix{Message: 1, Stride: 1, Fields: 1, MultiObj: 1, Chase: 5, Soup: 5, Cond: 1, Local: 1}),
		mk("yacr2", 122, 19, Mix{Message: 1, Stride: 1, Fields: 1, MultiObj: 1, Chase: 6, Soup: 6, Cond: 1, Local: 1}),
	}
}

// calibrate adds the suite-wide idiom floor that was fit (once, against the
// paper's aggregate Fig. 13 numbers) so the synthetic corpus reproduces the
// published *shape*: scev an order of magnitude below the others, basic
// ≈ 31%, rbaa ≈ 40% (≈ 1.3× basic), and an r+b combination roughly five
// points above rbaa alone. The per-program table entries on top of this
// floor keep the relative per-program character (field-heavy fixoutput,
// load-heavy bison, symbolic-heavy cdecl/gs, …).
func calibrate(m Mix) Mix {
	m.MultiObj += 17
	m.Fields += 9
	m.Stride += 10
	m.Message += 5
	m.Local += 8
	m.Cond += 2
	return m
}

// ScalabilityConfigs builds the Fig. 15 suite: n programs with sizes spread
// from small to large (the paper used the 50 largest LLVM test-suite
// programs, totaling ~800k instructions). Worker counts grow geometrically
// so instruction counts cover roughly two orders of magnitude.
func ScalabilityConfigs(n int) []Config {
	out := make([]Config, n)
	base := Mix{Message: 2, Stride: 2, Fields: 2, MultiObj: 2, Chase: 3, Soup: 3, Cond: 1, Local: 1}
	for i := range out {
		// Geometric ramp: ~8 workers for the smallest program, ~7500 for
		// the largest (≈165k instructions); the default 50-program suite
		// totals just over one million IR instructions, matching the
		// paper's "one million assembly instructions" workload.
		workers := int(8 * pow(1.15, i))
		out[i] = Config{
			Name:    fmt.Sprintf("scale%02d", i),
			Seed:    int64(9000 + i),
			Workers: workers,
			Mix:     base,
		}
	}
	return out
}

// XLScalabilityConfigs is the large tier of the Fig. 15 experiment: two
// programs at least an order of magnitude above the biggest program of the
// default 50-program suite (~165k instructions), exercising the paper's
// linearity claim at the "million assembly instructions" scale of §1 per
// *single module* (≈1.9M and ≈3.8M IR instructions). These are deliberately
// kept out of ScalabilityConfigs: generation is fast but analysis takes
// tens of seconds per program, so they are opt-in (benchtables -fig 15 -xl,
// and the sequential-vs-parallel driver benchmarks in bench_test.go).
func XLScalabilityConfigs() []Config {
	base := Mix{Message: 2, Stride: 2, Fields: 2, MultiObj: 2, Chase: 3, Soup: 3, Cond: 1, Local: 1}
	return []Config{
		{Name: "scaleXL-2M", Seed: 9900, Workers: 75000, Mix: base},
		{Name: "scaleXL-4M", Seed: 9901, Workers: 150000, Mix: base},
	}
}

func pow(b float64, e int) float64 {
	r := 1.0
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
