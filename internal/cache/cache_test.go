package cache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func ihash(k int) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }

// TestLRUOrder pins the recency semantics on a single shard: the
// least-recently-used key is the one displaced, and Get refreshes recency.
func TestLRUOrder(t *testing.T) {
	c := New[int, string](3, 1, ihash)
	c.GetOrAdd(1, "a")
	c.GetOrAdd(2, "b")
	c.GetOrAdd(3, "c")
	if _, ok := c.Get(1); !ok { // 1 is now MRU; 2 is LRU
		t.Fatal("key 1 missing before any eviction")
	}
	c.GetOrAdd(4, "d") // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("key 2 survived eviction; LRU order not respected")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("key %d evicted out of LRU order", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Len != 3 || st.Cap != 3 {
		t.Errorf("len/cap = %d/%d, want 3/3", st.Len, st.Cap)
	}
}

// TestGetOrAddAgreesOnWinner: a second GetOrAdd under the same key returns
// the first value with added == false — the property the alias Manager's
// winner-only counting is built on.
func TestGetOrAddAgreesOnWinner(t *testing.T) {
	c := New[int, string](8, 4, ihash)
	if v, added := c.GetOrAdd(7, "first"); !added || v != "first" {
		t.Fatalf("first GetOrAdd = (%q, %v), want (first, true)", v, added)
	}
	if v, added := c.GetOrAdd(7, "second"); added || v != "first" {
		t.Fatalf("second GetOrAdd = (%q, %v), want (first, false)", v, added)
	}
}

// TestCapacitySplitsExactly: per-shard bounds must sum to the configured
// capacity (no rounding slack), and shards are clamped so every shard can
// hold an entry.
func TestCapacitySplitsExactly(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{1, 16}, {2, 16}, {5, 4}, {16, 16}, {17, 16}, {1000, 7},
	} {
		c := New[int, int](tc.capacity, tc.shards, ihash)
		total := 0
		for i := range c.shards {
			if c.shards[i].max < 1 {
				t.Errorf("cap %d shards %d: shard %d bound %d < 1",
					tc.capacity, tc.shards, i, c.shards[i].max)
			}
			total += c.shards[i].max
		}
		if total != tc.capacity {
			t.Errorf("cap %d shards %d: shard bounds sum to %d", tc.capacity, tc.shards, total)
		}
	}
}

// TestConcurrentBoundInvariant is the regression test for the old
// check-then-add overshoot: hammer GetOrAdd from many goroutines while
// observers sample Len, and require the bound to hold at every observation
// and exactly at the end. The old sync.Map gate overshot by up to
// GOMAXPROCS entries under this load.
func TestConcurrentBoundInvariant(t *testing.T) {
	const capacity = 64
	c := New[int, int](capacity, 8, ihash)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64
	for o := 0; o < 2; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if n := c.Len(); n > capacity {
						violations.Add(1)
					}
				}
			}
		}()
	}
	const writers = 8
	const perWriter = 5000
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				c.GetOrAdd(k, k)
				c.Get(k)
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Errorf("capacity bound violated %d times during concurrent inserts", n)
	}
	if n := c.Len(); n != capacity {
		t.Errorf("final len = %d, want exactly %d after %d distinct inserts",
			n, capacity, writers*perWriter)
	}
	st := c.Stats()
	if want := int64(writers*perWriter - capacity); st.Evictions != want {
		t.Errorf("evictions = %d, want %d (every insert beyond capacity displaces one)",
			st.Evictions, want)
	}
}

// frozenCache mimics the Manager's pre-LRU memo policy: admit entries until
// the capacity gate closes, then never again — the "fills and freezes"
// behavior this package replaces. Used as the baseline in the hot-set test.
type frozenCache struct {
	max int
	m   map[int]int
}

func (f *frozenCache) get(k int) bool {
	_, ok := f.m[k]
	return ok
}

func (f *frozenCache) add(k, v int) {
	if len(f.m) < f.max {
		f.m[k] = v
	}
}

// TestHotSetSurvivesChurn demonstrates the acceptance property at the cache
// level: on a workload whose distinct-key count exceeds the capacity, a hot
// working set that keeps being re-touched stays cached under LRU, while the
// frozen policy — filled by the initial cold flood — never caches it at all.
func TestHotSetSurvivesChurn(t *testing.T) {
	const (
		capacity = 128
		coldKeys = 4096 // distinct cold keys, far beyond capacity
		hotKeys  = 16
		rounds   = 50
	)
	lru := New[int, int](capacity, 8, ihash)
	frozen := &frozenCache{max: capacity, m: map[int]int{}}

	// Cold flood first: fills the frozen cache with keys the workload never
	// revisits, and streams straight through the LRU.
	for k := 0; k < coldKeys; k++ {
		lru.GetOrAdd(k, k)
		frozen.add(k, k)
	}

	// Then a hot phase with cold drizzle: each round touches every hot key
	// and a few fresh cold keys (the churn that would displace a FIFO).
	// Hot keys live in a range disjoint from both floods.
	hot := func(i int) int { return 10_000_000 + i }
	var lruHot, frozenHot, hotLookups int
	coldDrip := coldKeys
	for r := 0; r < rounds; r++ {
		for i := 0; i < hotKeys; i++ {
			k := hot(i)
			hotLookups++
			if _, ok := lru.Get(k); ok {
				lruHot++
			} else {
				lru.GetOrAdd(k, k)
			}
			if frozen.get(k) {
				frozenHot++
			} else {
				frozen.add(k, k)
			}
		}
		for d := 0; d < 8; d++ {
			coldDrip++
			lru.GetOrAdd(coldDrip, coldDrip)
			frozen.add(coldDrip, coldDrip)
		}
	}

	lruRate := float64(lruHot) / float64(hotLookups)
	frozenRate := float64(frozenHot) / float64(hotLookups)
	t.Logf("hot-set hit rate: lru %.3f, frozen %.3f (capacity %d, %d distinct keys)",
		lruRate, frozenRate, capacity, coldDrip+hotKeys)
	// LRU misses the hot set only on the very first round.
	if want := float64(rounds-1) / float64(rounds); lruRate < want {
		t.Errorf("lru hot-set hit rate %.3f, want ≥ %.3f", lruRate, want)
	}
	if frozenRate != 0 {
		t.Errorf("frozen hot-set hit rate %.3f, want 0 (cache filled by cold flood)", frozenRate)
	}
	if lru.Stats().Evictions == 0 {
		t.Error("no evictions recorded despite churn past capacity")
	}
}

// TestResizeShrinkEvictsToBound: shrinking a full cache evicts LRU entries
// immediately, maintains the size mirror and eviction counters, and further
// inserts respect the new bound.
func TestResizeShrinkEvictsToBound(t *testing.T) {
	c := New[int, int](16, 4, ihash)
	for i := 0; i < 16; i++ {
		c.GetOrAdd(i, i)
	}
	if c.Len() != 16 {
		t.Fatalf("len = %d, want 16 before resize", c.Len())
	}
	if !c.Resize(8) {
		t.Fatal("Resize(8) reported no change")
	}
	if c.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", c.Cap())
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d, want 8 after shrink", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 8 {
		t.Fatalf("evictions = %d, want 8", ev)
	}
	// The bound holds for new traffic: 100 more inserts never exceed 8.
	for i := 100; i < 200; i++ {
		c.GetOrAdd(i, i)
		if c.Len() > 8 {
			t.Fatalf("len = %d exceeds resized cap 8", c.Len())
		}
	}
	// Resizing to the current bound is a no-op.
	if c.Resize(8) {
		t.Fatal("Resize to the current capacity reported a change")
	}
}

// TestResizeGrowKeepsEntries: growing never evicts, and the grown bound
// admits more entries.
func TestResizeGrowKeepsEntries(t *testing.T) {
	c := New[int, int](4, 2, ihash)
	for i := 0; i < 4; i++ {
		c.GetOrAdd(i, i)
	}
	if !c.Resize(12) {
		t.Fatal("Resize(12) reported no change")
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.Get(i); !ok {
			t.Fatalf("key %d lost while growing", i)
		}
	}
	for i := 10; i < 18; i++ {
		c.GetOrAdd(i, i)
	}
	if c.Len() != 12 {
		t.Fatalf("len = %d, want 12 after growth refill", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("evictions = %d, want 0 (growing must not evict)", ev)
	}
}

// TestResizeClampsToShardCount: the effective floor of Resize is one entry
// per shard, so a shard's bound can never reach zero (a zero-bound shard
// would evict from an empty list).
func TestResizeClampsToShardCount(t *testing.T) {
	c := New[int, int](16, 4, ihash)
	c.Resize(1)
	if c.Cap() != 4 {
		t.Fatalf("cap = %d, want 4 (clamped to shard count)", c.Cap())
	}
	for i := 0; i < 32; i++ {
		c.GetOrAdd(i, i) // must not panic on any shard
	}
}

// TestResizeConcurrentWithTraffic drives GetOrAdd from several goroutines
// while another goroutine oscillates the bound — the governor's
// shrink/restore pattern. Run with -race; afterwards the size mirror must
// match a full count and respect the final bound.
func TestResizeConcurrentWithTraffic(t *testing.T) {
	c := New[int, int](1024, 8, ihash)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.GetOrAdd(i, i)
				c.Get(i - 1)
				i += 7
			}
		}(g * 1000)
	}
	for r := 0; r < 200; r++ {
		if r%2 == 0 {
			c.Resize(64)
		} else {
			c.Resize(1024)
		}
	}
	close(stop)
	wg.Wait()
	c.Resize(64)
	if got := c.Len(); got > 64 {
		t.Fatalf("len = %d exceeds final cap 64", got)
	}
	total := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	if total != c.Len() {
		t.Fatalf("size mirror = %d, shard maps hold %d", c.Len(), total)
	}
}
