// Package cache provides the sharded, bounded LRU map behind the alias
// Manager's verdict memo and any other hot, size-capped lookup structure the
// service grows. It exists because the service's original memo — an
// append-only sync.Map with a check-then-add size gate — had two pathologies
// under sustained multi-tenant traffic: the gate raced (the map could
// overshoot its limit by up to GOMAXPROCS entries), and once full it froze,
// pinning the first-seen cold entries forever while every later hot key
// recomputed on each query.
//
// A Cache fixes both. Capacity is enforced atomically: insertion and
// eviction happen under one shard lock, so the total entry count never
// exceeds the configured capacity at any observable moment. Recency is
// tracked with an intrusive doubly-linked list per shard, so a hot working
// set keeps displacing cold entries no matter how many distinct keys stream
// past. Sharding (each shard owns a mutex, a map slice of the key space, and
// its own LRU list) keeps concurrent readers from serializing on one lock;
// the caller supplies the hash that spreads keys across shards.
//
// Hit, miss and eviction counters are maintained with atomics and exposed
// via Stats for the service's /v1/stats payload.
package cache

import (
	"sync"
	"sync/atomic"
)

// Cache is a sharded, bounded LRU map. The zero value is not usable; call
// New. A Cache is safe for concurrent use by multiple goroutines.
type Cache[K comparable, V any] struct {
	shards []shard[K, V]
	hash   func(K) uint64
	cap    int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// size mirrors the summed shard map sizes so Len never touches a shard
	// lock — scrape-time readers (the /metrics cache-entries gauge) must
	// not contend with the query path holding shard locks.
	size atomic.Int64
}

// Stats is a point-in-time snapshot of a Cache's counters.
type Stats struct {
	Len       int   // live entries, ≤ Cap
	Cap       int   // configured capacity
	Hits      int64 // Get/GetOrAdd calls answered by an existing entry
	Misses    int64 // Get calls that found nothing
	Evictions int64 // entries displaced to admit newer ones
}

// entry is one cached key/value pair, threaded on its shard's intrusive
// recency list (prev is toward the MRU end, next toward the LRU end).
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// shard owns a slice of the key space: a mutex, the entry map, and the
// recency list bounded by max. head is most-recently used, tail least.
type shard[K comparable, V any] struct {
	mu   sync.Mutex
	max  int
	m    map[K]*entry[K, V]
	head *entry[K, V]
	tail *entry[K, V]
}

// New builds a cache holding at most capacity entries across shards shards,
// using hash to assign keys to shards. capacity must be ≥ 1. shards is
// clamped to [1, capacity] so that every shard can hold at least one entry;
// per-shard bounds sum exactly to capacity, making the total an invariant
// rather than an approximation.
func New[K comparable, V any](capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	if capacity < 1 {
		panic("cache.New: capacity must be ≥ 1")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache[K, V]{shards: make([]shard[K, V], shards), hash: hash, cap: capacity}
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		max := base
		if i < extra {
			max++
		}
		c.shards[i].max = max
		c.shards[i].m = make(map[K]*entry[K, V], max)
	}
	return c
}

func (c *Cache[K, V]) shardOf(k K) *shard[K, V] {
	return &c.shards[c.hash(k)%uint64(len(c.shards))]
}

// Get returns the value cached under k, marking the entry most-recently
// used. The second result reports whether the key was present.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	return e.val, true
}

// GetOrAdd stores v under k if the key is absent and returns (v, true);
// when another value is already cached it is refreshed to most-recently
// used and returned with added == false — the sync.Map LoadOrStore shape,
// which lets racing writers agree on a single winner. Insertion evicts the
// shard's least-recently-used entry first when the shard is at its bound,
// so the capacity invariant holds at every instant, including mid-call.
func (c *Cache[K, V]) GetOrAdd(k K, v V) (V, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, false
	}
	var evicted bool
	if len(s.m) >= s.max {
		s.evictTail()
		evicted = true
	}
	e := &entry[K, V]{key: k, val: v}
	s.m[k] = e
	s.pushFront(e)
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	} else {
		c.size.Add(1) // eviction + insert is net zero
	}
	return v, true
}

// Len returns the live entry count from the atomic size mirror — lock-free,
// so scrapes never contend with query-path shard locks. The count is always
// ≤ the capacity: insertions bump it after the shard settles, and an
// eviction-paired insert does not change it.
func (c *Cache[K, V]) Len() int {
	return int(c.size.Load())
}

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Len:       c.Len(),
		Cap:       c.cap,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// pushFront links e at the MRU end. Caller holds s.mu.
func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the recency list. Caller holds s.mu.
func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront refreshes e to most-recently used. Caller holds s.mu.
func (s *shard[K, V]) moveToFront(e *entry[K, V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// evictTail drops the least-recently-used entry. Caller holds s.mu and has
// checked the shard is non-empty.
func (s *shard[K, V]) evictTail() {
	t := s.tail
	s.unlink(t)
	delete(s.m, t.key)
}
