// Package cache provides the sharded, bounded LRU map behind the alias
// Manager's verdict memo and any other hot, size-capped lookup structure the
// service grows. It exists because the service's original memo — an
// append-only sync.Map with a check-then-add size gate — had two pathologies
// under sustained multi-tenant traffic: the gate raced (the map could
// overshoot its limit by up to GOMAXPROCS entries), and once full it froze,
// pinning the first-seen cold entries forever while every later hot key
// recomputed on each query.
//
// A Cache fixes both. Capacity is enforced atomically: insertion and
// eviction happen under one shard lock, so the total entry count never
// exceeds the configured capacity at any observable moment. Recency is
// tracked with an intrusive doubly-linked list per shard, so a hot working
// set keeps displacing cold entries no matter how many distinct keys stream
// past. Sharding (each shard owns a mutex, a map slice of the key space, and
// its own LRU list) keeps concurrent readers from serializing on one lock;
// the caller supplies the hash that spreads keys across shards.
//
// Hit, miss and eviction counters are maintained with atomics and exposed
// via Stats for the service's /v1/stats payload.
package cache

import (
	"sync"
	"sync/atomic"
)

// Cache is a sharded, bounded LRU map. The zero value is not usable; call
// New. A Cache is safe for concurrent use by multiple goroutines.
type Cache[K comparable, V any] struct {
	shards []shard[K, V]
	hash   func(K) uint64
	// cap is atomic because Resize rebounds a live cache while Cap/Stats
	// read it from scrape paths.
	cap atomic.Int64
	// resizeMu serializes Resize calls; the per-shard locks still order a
	// resize against concurrent Get/GetOrAdd traffic.
	resizeMu sync.Mutex

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// size mirrors the summed shard map sizes so Len never touches a shard
	// lock — scrape-time readers (the /metrics cache-entries gauge) must
	// not contend with the query path holding shard locks.
	size atomic.Int64
}

// Stats is a point-in-time snapshot of a Cache's counters.
type Stats struct {
	Len       int   // live entries, ≤ Cap
	Cap       int   // configured capacity
	Hits      int64 // Get/GetOrAdd calls answered by an existing entry
	Misses    int64 // Get calls that found nothing
	Evictions int64 // entries displaced to admit newer ones
}

// entry is one cached key/value pair, threaded on its shard's intrusive
// recency list (prev is toward the MRU end, next toward the LRU end).
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// shard owns a slice of the key space: a mutex, the entry map, and the
// recency list bounded by max. head is most-recently used, tail least.
type shard[K comparable, V any] struct {
	mu   sync.Mutex
	max  int
	m    map[K]*entry[K, V]
	head *entry[K, V]
	tail *entry[K, V]
}

// New builds a cache holding at most capacity entries across shards shards,
// using hash to assign keys to shards. capacity must be ≥ 1. shards is
// clamped to [1, capacity] so that every shard can hold at least one entry;
// per-shard bounds sum exactly to capacity, making the total an invariant
// rather than an approximation.
func New[K comparable, V any](capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	if capacity < 1 {
		panic("cache.New: capacity must be ≥ 1")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache[K, V]{shards: make([]shard[K, V], shards), hash: hash}
	c.cap.Store(int64(capacity))
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		max := base
		if i < extra {
			max++
		}
		c.shards[i].max = max
		c.shards[i].m = make(map[K]*entry[K, V], mapHint(max))
	}
	return c
}

// mapHint caps the size hint for a shard's map. The capacity bound is a
// ceiling, not an expected population: hinting the full bound preallocates
// buckets for every slot up front (≈50 MB for the default 1M-entry memo,
// per module, before a single verdict is cached), which is exactly the kind
// of unaccounted resident memory the budget governor exists to prevent.
// Maps grow on demand past the hint.
func mapHint(max int) int {
	const hintCap = 1024
	if max > hintCap {
		return hintCap
	}
	return max
}

// Resize rebounds a live cache to capacity entries, redistributing the
// per-shard bounds exactly as New does and immediately evicting LRU entries
// from any shard now over its bound (growing never evicts). Displacements
// count as ordinary evictions. capacity is clamped so every shard keeps a
// bound of at least one entry — the effective floor is the shard count. It
// reports whether the bound actually changed, and is safe to call
// concurrently with Get/GetOrAdd: each shard transitions under its own
// lock, so the capacity invariant holds per shard at every instant.
//
// This is the memory-budget governor's degradation lever: under pressure
// the service shrinks every module's verdict memo and restores the
// configured bound on recovery.
func (c *Cache[K, V]) Resize(capacity int) bool {
	if capacity < len(c.shards) {
		capacity = len(c.shards)
	}
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	if int(c.cap.Load()) == capacity {
		return false
	}
	base, extra := capacity/len(c.shards), capacity%len(c.shards)
	var evicted int64
	for i := range c.shards {
		max := base
		if i < extra {
			max++
		}
		s := &c.shards[i]
		s.mu.Lock()
		shrunk := max < s.max
		s.max = max
		for len(s.m) > s.max {
			s.evictTail()
			evicted++
		}
		if shrunk {
			// Go maps never release bucket memory on delete, so evicting
			// entries alone leaves the shard holding buckets sized for its
			// former population. Rebuilding the map is what makes a
			// shrinking resize — the governor's degradation lever — return
			// memory instead of merely capping future growth.
			m := make(map[K]*entry[K, V], mapHint(max))
			for k, e := range s.m {
				m[k] = e
			}
			s.m = m
		}
		s.mu.Unlock()
	}
	if evicted > 0 {
		c.evictions.Add(evicted)
		c.size.Add(-evicted)
	}
	c.cap.Store(int64(capacity))
	return true
}

func (c *Cache[K, V]) shardOf(k K) *shard[K, V] {
	return &c.shards[c.hash(k)%uint64(len(c.shards))]
}

// Get returns the value cached under k, marking the entry most-recently
// used. The second result reports whether the key was present.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	return e.val, true
}

// GetOrAdd stores v under k if the key is absent and returns (v, true);
// when another value is already cached it is refreshed to most-recently
// used and returned with added == false — the sync.Map LoadOrStore shape,
// which lets racing writers agree on a single winner. Insertion evicts the
// shard's least-recently-used entry first when the shard is at its bound,
// so the capacity invariant holds at every instant, including mid-call.
func (c *Cache[K, V]) GetOrAdd(k K, v V) (V, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, false
	}
	var evicted bool
	if len(s.m) >= s.max {
		s.evictTail()
		evicted = true
	}
	e := &entry[K, V]{key: k, val: v}
	s.m[k] = e
	s.pushFront(e)
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	} else {
		c.size.Add(1) // eviction + insert is net zero
	}
	return v, true
}

// Len returns the live entry count from the atomic size mirror — lock-free,
// so scrapes never contend with query-path shard locks. The count is always
// ≤ the capacity: insertions bump it after the shard settles, and an
// eviction-paired insert does not change it.
func (c *Cache[K, V]) Len() int {
	return int(c.size.Load())
}

// Cap returns the configured capacity (the latest Resize bound, if any).
func (c *Cache[K, V]) Cap() int { return int(c.cap.Load()) }

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Len:       c.Len(),
		Cap:       c.Cap(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// pushFront links e at the MRU end. Caller holds s.mu.
func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the recency list. Caller holds s.mu.
func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront refreshes e to most-recently used. Caller holds s.mu.
func (s *shard[K, V]) moveToFront(e *entry[K, V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// evictTail drops the least-recently-used entry. Caller holds s.mu and has
// checked the shard is non-empty.
func (s *shard[K, V]) evictTail() {
	t := s.tail
	s.unlink(t)
	delete(s.m, t.key)
}
