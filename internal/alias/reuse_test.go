package alias_test

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/benchgen"
	"repro/internal/ir"
)

// TestReusedIndexVerdictsIdentical is the reuse layer's differential
// property: a module built with a warm cache (every isolated function
// adapted zero-copy from a donor build of an identical module) must answer
// every pair member-for-member identically to a cold build — result, chain
// attribution, per-member mask and Fig. 14 detail alike.
func TestReusedIndexVerdictsIdentical(t *testing.T) {
	for _, cfg := range diffConfigs()[:4] {
		donor := benchgen.Generate(cfg)
		consumer := benchgen.Generate(cfg) // distinct *ir.Module, identical text

		cache := alias.NewIndexCache(0)
		donorChain := newServiceChain(donor, alias.ManagerOptions{CacheLimit: -1})
		if _, reused := alias.BuildIndexCached(donorChain, donor, cache); reused != 0 {
			t.Fatalf("%s: cold build reported %d reused functions", cfg.Name, reused)
		}

		warmChain := newServiceChain(consumer, alias.ManagerOptions{CacheLimit: -1})
		warmIx, reused := alias.BuildIndexCached(warmChain, consumer, cache)
		if warmIx == nil {
			t.Fatalf("%s: BuildIndexCached returned nil", cfg.Name)
		}
		if reused == 0 {
			t.Fatalf("%s: identical re-upload reused no function analyses", cfg.Name)
		}

		coldChain := newServiceChain(consumer, alias.ManagerOptions{CacheLimit: -1})
		coldIx := alias.BuildIndex(coldChain, consumer)

		checked := 0
		for _, q := range alias.Queries(consumer) {
			want, okW := coldIx.Evaluate(q.P, q.Q)
			got, okG := warmIx.Evaluate(q.P, q.Q)
			if okW != okG {
				t.Fatalf("%s: conclusiveness diverges for (%s,%s)", cfg.Name, q.P.Name, q.Q.Name)
			}
			if !okW {
				continue
			}
			if !fullVerdictEqual(got, want, coldChain.NumMembers()) {
				t.Fatalf("%s: reused verdict for (%s,%s) in %s diverges: got %v, want %v",
					cfg.Name, q.P.Name, q.Q.Name, q.P.Func.Name, got.Result, want.Result)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%s: no pairs checked", cfg.Name)
		}
		st := cache.Snapshot()
		if st.Hits == 0 || st.Entries == 0 {
			t.Fatalf("%s: cache stats show no activity: %+v", cfg.Name, st)
		}
	}
}

// TestReuseSkipsNonIsolatedFunctions pins the soundness boundary: a
// function that calls out, is called, or touches a global is never cached
// or adapted, because its columns depend on module-wide andersen state.
func TestReuseSkipsNonIsolatedFunctions(t *testing.T) {
	src := `module nprocesswide
global tab 16

func callee(x int) ptr {
entry:
  %b = alloc heap %x
  ret %b
}

func caller(n int) void {
entry:
  %r = call callee(8)
  store %r, %n
  ret
}

func globaluser(n int) void {
entry:
  %q = ptradd @tab, 2
  store %q, %n
  ret
}
`
	build := func() (*ir.Module, *alias.Manager) {
		m, err := ir.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return m, newServiceChain(m, alias.ManagerOptions{CacheLimit: -1})
	}

	cache := alias.NewIndexCache(0)
	m1, c1 := build()
	if ix, reused := alias.BuildIndexCached(c1, m1, cache); ix == nil || reused != 0 {
		t.Fatalf("first build: ix=%v reused=%d", ix, reused)
	}
	m2, c2 := build()
	if _, reused := alias.BuildIndexCached(c2, m2, cache); reused != 0 {
		t.Fatalf("re-upload reused %d non-isolated functions; want 0", reused)
	}
	if st := cache.Snapshot(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("non-isolated functions leaked into the cache: %+v", st)
	}
}

// TestIndexCacheBound pins the LRU byte bound: inserting past the limit
// evicts rather than grows.
func TestIndexCacheBound(t *testing.T) {
	cache := alias.NewIndexCache(16 << 10)
	for i, cfg := range diffConfigs() {
		m := benchgen.Generate(cfg)
		chain := newServiceChain(m, alias.ManagerOptions{CacheLimit: -1})
		if ix, _ := alias.BuildIndexCached(chain, m, cache); ix == nil {
			t.Fatalf("config %d: nil index", i)
		}
	}
	st := cache.Snapshot()
	if st.Bytes > 16<<10 {
		t.Fatalf("cache holds %d bytes, bound is %d", st.Bytes, 16<<10)
	}
	if st.Evictions == 0 && st.Entries > 0 && st.Bytes > (12<<10) {
		t.Logf("cache near bound without evictions: %+v", st)
	}
}
