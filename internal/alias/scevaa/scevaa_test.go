package scevaa

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/ssa"
)

func stores(f *ir.Func) []*ir.Value {
	var out []*ir.Value
	for _, in := range f.Instrs() {
		if in.Op == ir.OpStore {
			out = append(out, in.Args[0])
		}
	}
	return out
}

func TestStridedLoopDisambiguation(t *testing.T) {
	// Fig. 3: p[i] vs p[i+1] with i = {0,+,2}: difference is the constant 1.
	m := progs.Accelerate()
	a := New(m)
	ss := stores(m.Func("accelerate"))
	if a.Alias(ss[0], ss[1]) != alias.NoAlias {
		t.Error("scev-aa must disambiguate p[i] vs p[i+1]")
	}
}

func TestAddRecRecognition(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	b.SetBlock(entry)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.TInt, "i")
	j := b.Phi(ir.TInt, "j")
	c := b.Cmp(ir.PLt, i.Res, f.Params[1], "c")
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	pi := b.PtrAdd(f.Params[0], i.Res, "pi")
	pj := b.PtrAdd(f.Params[0], j.Res, "pj")
	b.Store(pi, b.Int(1))
	b.Store(pj, b.Int(2))
	i1 := b.Add(i.Res, b.Int(3), "i1")
	j1 := b.Add(j.Res, b.Int(3), "j1")
	b.Br(head)
	ir.AddIncoming(i, b.Int(0), entry)
	ir.AddIncoming(i, i1, body)
	ir.AddIncoming(j, b.Int(1), entry)
	ir.AddIncoming(j, j1, body)
	b.SetBlock(exit)
	b.Ret(nil)

	a := New(m)
	// i = {0,+,3}, j = {1,+,3}: same loop, same step — lock-step
	// recurrences differ by the constant 1.
	if a.Alias(pi, pj) != alias.NoAlias {
		t.Error("lock-step recurrences with constant gap must be no-alias")
	}
}

func TestDifferentStepsMayAlias(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	b.SetBlock(entry)
	b.Br(head)
	b.SetBlock(head)
	i := b.Phi(ir.TInt, "i")
	j := b.Phi(ir.TInt, "j")
	c := b.Cmp(ir.PLt, i.Res, f.Params[1], "c")
	b.CondBr(c, body, exit)
	b.SetBlock(body)
	pi := b.PtrAdd(f.Params[0], i.Res, "pi")
	pj := b.PtrAdd(f.Params[0], j.Res, "pj")
	b.Store(pi, b.Int(1))
	b.Store(pj, b.Int(2))
	i1 := b.Add(i.Res, b.Int(2), "i1")
	j1 := b.Add(j.Res, b.Int(3), "j1")
	b.Br(head)
	ir.AddIncoming(i, b.Int(0), entry)
	ir.AddIncoming(i, i1, body)
	ir.AddIncoming(j, b.Int(1), entry)
	ir.AddIncoming(j, j1, body)
	b.SetBlock(exit)
	b.Ret(nil)

	a := New(m)
	// {0,+,2} and {1,+,3} cross (e.g. both reach 4 vs 4? 0,2,4… and
	// 1,4,7…): iteration terms do not cancel — may-alias.
	if a.Alias(pi, pj) != alias.MayAlias {
		t.Error("recurrences with different steps must stay may-alias")
	}
}

func TestDifferentBasesMayAlias(t *testing.T) {
	// scev-aa does not do object disambiguation (that is basicaa's job):
	// two distinct mallocs are may-alias for it.
	m := progs.TwoBuffers()
	a := New(m)
	ss := stores(m.Func("fill"))
	if a.Alias(ss[0], ss[1]) != alias.MayAlias {
		t.Error("scev-aa must not disambiguate distinct objects")
	}
}

func TestSymbolicSplitDefeatsSCEV(t *testing.T) {
	// The Fig. 1 two-loop split needs symbolic range reasoning: the second
	// loop's pointer is a φ chained from the first — not a recognizable
	// recurrence difference.
	m := progs.MessageBuffer()
	a := New(m)
	ss := stores(m.Func("prepare"))
	if a.Alias(ss[0], ss[2]) != alias.MayAlias {
		t.Error("scev-aa should not disambiguate the Fig. 1 loops")
	}
}

func TestConstantOffsetsOutsideLoops(t *testing.T) {
	// Same base, constant offsets, no induction variable: per §4 scev-aa is
	// loop-only, so this stays may-alias (basicaa's territory).
	m := progs.StructFields()
	a := New(m)
	ss := stores(m.Func("init"))
	if a.Alias(ss[0], ss[1]) != alias.MayAlias {
		t.Error("scev-aa must not answer constant offsets outside loops")
	}
}

func TestSameIndexSameAddressMayAlias(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("i", ir.TInt))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	q1 := b.PtrAdd(f.Params[0], f.Params[1], "q1")
	q2 := b.PtrAdd(f.Params[0], f.Params[1], "q2")
	b.Store(q1, b.Int(1))
	b.Store(q2, b.Int(2))
	b.Ret(nil)
	ssa.InsertPi(f)
	a := New(m)
	// p+i vs p+i: difference is the constant 0 — must-alias territory, so
	// the no-alias answer must NOT fire.
	if a.Alias(q1, q2) != alias.MayAlias {
		t.Error("identical addresses must not be no-alias")
	}
}
