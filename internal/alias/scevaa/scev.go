// Package scevaa reimplements LLVM's scalar-evolution-based alias analysis,
// the second baseline of the paper's evaluation (§4): for each loop
//
//	for (i = B; i < N; i += S) { … a[i] … }
//
// it infers the closed form i = B + iter×S (an *add recurrence*) and
// disambiguates pointers whose difference of closed forms is a nonzero
// constant. As the paper notes, "SCEV is only effective to disambiguate
// pointers accessed within loops and indexed by variables in the expected
// closed-form" — everything else is may-alias, which is why its Fig. 13
// column is an order of magnitude below rbaa.
package scevaa

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// scev is a closed-form value: a constant plus a linear combination of
// atoms, where an atom is either an opaque SSA value or the virtual
// iteration counter of a loop (so two lock-step recurrences of the same
// loop subtract exactly).
type scev struct {
	ok    bool
	konst int64
	vals  map[*ir.Value]int64 // opaque SSA values
	iters map[*cfg.Loop]int64 // iter(L) coefficients (constant steps only)
}

func newSCEV(c int64) scev {
	return scev{ok: true, konst: c, vals: map[*ir.Value]int64{}, iters: map[*cfg.Loop]int64{}}
}

func unknownOf(v *ir.Value) scev {
	s := newSCEV(0)
	s.vals[v] = 1
	return s
}

var notAffine = scev{}

func (s scev) clone() scev {
	t := newSCEV(s.konst)
	for k, c := range s.vals {
		t.vals[k] = c
	}
	for k, c := range s.iters {
		t.iters[k] = c
	}
	return t
}

func (s scev) addScaled(o scev, k int64) scev {
	if !s.ok || !o.ok {
		return notAffine
	}
	t := s.clone()
	t.konst += k * o.konst
	for v, c := range o.vals {
		t.vals[v] += k * c
		if t.vals[v] == 0 {
			delete(t.vals, v)
		}
	}
	for l, c := range o.iters {
		t.iters[l] += k * c
		if t.iters[l] == 0 {
			delete(t.iters, l)
		}
	}
	return t
}

// constDiff reports the constant q−p when the symbolic parts cancel.
func constDiff(p, q scev) (int64, bool) {
	if !p.ok || !q.ok {
		return 0, false
	}
	d := q.addScaled(p, -1)
	if len(d.vals) != 0 || len(d.iters) != 0 {
		return 0, false
	}
	return d.konst, true
}

// isConst reports a fully constant closed form.
func (s scev) isConst() (int64, bool) {
	if s.ok && len(s.vals) == 0 && len(s.iters) == 0 {
		return s.konst, true
	}
	return 0, false
}

// funcSCEV computes closed forms for the integer values of one function.
type funcSCEV struct {
	f     *ir.Func
	loops *cfg.LoopInfo
	dt    *cfg.DomTree
	memo  map[*ir.Value]scev
	stack map[*ir.Value]bool // recursion guard for φ self-reference
}

func newFuncSCEV(f *ir.Func) *funcSCEV {
	dt := cfg.NewDomTree(f)
	return &funcSCEV{
		f:     f,
		dt:    dt,
		loops: cfg.FindLoops(dt),
		memo:  map[*ir.Value]scev{},
		stack: map[*ir.Value]bool{},
	}
}

// of computes (with memoization) the closed form of an integer value.
func (fs *funcSCEV) of(v *ir.Value) scev {
	if c, ok := v.IsConst(); ok {
		return newSCEV(c)
	}
	if s, ok := fs.memo[v]; ok {
		return s
	}
	if fs.stack[v] {
		// Cyclic φ dependence not matching the add-recurrence pattern.
		return unknownOf(v)
	}
	fs.stack[v] = true
	s := fs.compute(v)
	delete(fs.stack, v)
	fs.memo[v] = s
	return s
}

func (fs *funcSCEV) compute(v *ir.Value) scev {
	if v.Kind != ir.VInstr {
		return unknownOf(v)
	}
	in := v.Def
	switch in.Op {
	case ir.OpCopy, ir.OpPi:
		return fs.of(in.Args[0])
	case ir.OpAdd:
		return fs.of(in.Args[0]).addScaled(fs.of(in.Args[1]), 1)
	case ir.OpSub:
		return fs.of(in.Args[0]).addScaled(fs.of(in.Args[1]), -1)
	case ir.OpMul:
		a, b := fs.of(in.Args[0]), fs.of(in.Args[1])
		if c, ok := a.isConst(); ok {
			return newSCEV(0).addScaled(b, c)
		}
		if c, ok := b.isConst(); ok {
			return newSCEV(0).addScaled(a, c)
		}
		return unknownOf(v)
	case ir.OpPhi:
		return fs.phiRec(in)
	default:
		return unknownOf(v)
	}
}

// phiRec recognizes the add-recurrence pattern: a two-way φ at a loop
// header whose back-edge value is φ plus a constant step, reached through
// a syntactic chain of adds/subs with constant operands, copies and
// π-nodes. The closed form is start + step×iter(L).
func (fs *funcSCEV) phiRec(phi *ir.Instr) scev {
	l := fs.loops.ByHead[phi.Block]
	if l == nil || len(phi.Args) != 2 {
		return unknownOf(phi.Res)
	}
	var init, back *ir.Value
	for i, from := range phi.In {
		if l.Contains(from) {
			back = phi.Args[i]
		} else {
			init = phi.Args[i]
		}
	}
	if init == nil || back == nil {
		return unknownOf(phi.Res)
	}
	step, ok := traceStep(phi.Res, back)
	if !ok || step == 0 {
		return unknownOf(phi.Res)
	}
	start := fs.of(init)
	if !start.ok {
		return unknownOf(phi.Res)
	}
	rec := start.clone()
	rec.iters[l] += step
	return rec
}

// traceStep walks back through adds/subs of constants, copies and π-nodes,
// and reports the constant increment if the chain bottoms out at phi.
func traceStep(phi *ir.Value, back *ir.Value) (int64, bool) {
	acc := int64(0)
	cur := back
	for steps := 0; steps < 64; steps++ {
		if cur == phi {
			return acc, true
		}
		if cur.Kind != ir.VInstr {
			return 0, false
		}
		in := cur.Def
		switch in.Op {
		case ir.OpCopy, ir.OpPi:
			cur = in.Args[0]
		case ir.OpAdd:
			if c, ok := in.Args[1].IsConst(); ok {
				acc += c
				cur = in.Args[0]
			} else if c, ok := in.Args[0].IsConst(); ok {
				acc += c
				cur = in.Args[1]
			} else {
				return 0, false
			}
		case ir.OpSub:
			if c, ok := in.Args[1].IsConst(); ok {
				acc -= c
				cur = in.Args[0]
			} else {
				return 0, false
			}
		default:
			return 0, false
		}
	}
	return 0, false
}

// ptrSCEV resolves a pointer to (base object, offset closed form). The base
// is found by walking copies/π/ptradd; a φ base defeats the analysis.
func (fs *funcSCEV) ptrSCEV(v *ir.Value) (*ir.Value, scev) {
	off := newSCEV(0)
	cur := v
	for steps := 0; steps < 1000; steps++ {
		if cur.Kind != ir.VInstr {
			return cur, off
		}
		in := cur.Def
		switch in.Op {
		case ir.OpCopy, ir.OpPi:
			cur = in.Args[0]
		case ir.OpPtrAdd:
			off = off.addScaled(fs.of(in.Args[1]), 1)
			if !off.ok {
				return cur, notAffine
			}
			cur = in.Args[0]
		default:
			return cur, off
		}
	}
	return cur, notAffine
}
