package scevaa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/ir"
)

// Analysis is the scev-aa baseline for one module.
type Analysis struct {
	byFunc map[*ir.Func]*funcSCEV
}

var _ alias.Analysis = (*Analysis)(nil)

// New builds the analysis: loop detection plus the closed forms Alias can
// ever read — the index operand of each ptradd (of() memoizes the operand
// chains transitively). Computing them eagerly here means Alias never
// touches the memo tables afterwards: the resulting Analysis is immutable
// and safe for concurrent queries (the contract alias.Manager relies on),
// without materializing closed forms for the non-index values of large
// modules.
func New(m *ir.Module) *Analysis {
	a := &Analysis{byFunc: map[*ir.Func]*funcSCEV{}}
	for _, f := range m.Funcs {
		if f.Entry() != nil {
			fs := newFuncSCEV(f)
			for _, in := range f.Instrs() {
				if in.Op == ir.OpPtrAdd {
					fs.of(in.Args[1])
				}
			}
			a.byFunc[f] = fs
		}
	}
	return a
}

// Name returns "scev" (Fig. 13 column).
func (a *Analysis) Name() string { return "scev" }

// Alias answers no-alias only when both pointers have the same base object,
// at least one offset involves a loop induction variable (an add-recurrence
// term — per §4, scev-aa "is only effective to disambiguate pointers
// accessed within loops and indexed by variables in the expected
// closed-form"), and the difference of the offset closed forms is a nonzero
// constant — e.g. a[i] vs a[i+1], or two lock-step recurrences of the same
// loop. Everything else, including pointers with different (even provably
// distinct) bases and purely constant subscripts, is may-alias: object and
// constant-offset disambiguation are basicaa's job, not scev-aa's.
func (a *Analysis) Alias(p, q *ir.Value) alias.Result {
	fp := funcOf(p)
	if fp == nil || fp != funcOf(q) {
		return alias.MayAlias
	}
	fs := a.byFunc[fp]
	if fs == nil {
		return alias.MayAlias
	}
	bp, op := fs.ptrSCEV(p)
	bq, oq := fs.ptrSCEV(q)
	if bp != bq {
		return alias.MayAlias
	}
	if len(op.iters) == 0 && len(oq.iters) == 0 {
		return alias.MayAlias
	}
	if d, ok := constDiff(op, oq); ok && d != 0 {
		return alias.NoAlias
	}
	return alias.MayAlias
}

func funcOf(v *ir.Value) *ir.Func {
	if v.Kind == ir.VParam || v.Kind == ir.VInstr {
		return v.Func
	}
	return nil
}

var _ alias.SCEVDigester = (*Analysis)(nil)

// SCEVDigests implements alias.SCEVDigester: per universe value the base
// object and the offset closed form split into its constant part and an
// interned *shape id* covering the entire symbolic remainder (opaque values
// and iteration-counter terms with their coefficients). Two affine offsets
// subtract to a constant exactly when their shapes are equal, so the index
// pair check reduces constDiff to two integer compares.
func (a *Analysis) SCEVDigests(f *ir.Func, universe []*ir.Value) *alias.SCEVColumn {
	n := len(universe)
	c := &alias.SCEVColumn{
		Base:    make([]*ir.Value, n),
		Shape:   make([]int32, n),
		Konst:   make([]int64, n),
		HasIter: make([]bool, n),
	}
	fs := a.byFunc[f]
	shapes := map[string]int32{}
	for i, v := range universe {
		c.Shape[i] = -1
		if fs == nil {
			continue // no entry block: Alias always answers may-alias
		}
		base, off := fs.ptrSCEV(v)
		c.Base[i] = base
		if !off.ok {
			continue
		}
		c.Konst[i] = off.konst
		c.HasIter[i] = len(off.iters) > 0
		key := shapeKey(off)
		id, ok := shapes[key]
		if !ok {
			id = int32(len(shapes))
			shapes[key] = id
		}
		c.Shape[i] = id
	}
	return c
}

// shapeKey renders the symbolic part of a closed form canonically: the
// sorted coeff·term components, with SSA values keyed by their function-
// unique ID and loops by their header block. Built once per value at index
// compile time, never on the query path.
func shapeKey(s scev) string {
	terms := make([]string, 0, len(s.vals)+len(s.iters))
	for v, k := range s.vals {
		terms = append(terms, fmt.Sprintf("v%d*%d", v.ID, k))
	}
	for l, k := range s.iters {
		terms = append(terms, fmt.Sprintf("L%s*%d", l.Header.Name, k))
	}
	sort.Strings(terms)
	return strings.Join(terms, "+")
}
