package scevaa

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// Analysis is the scev-aa baseline for one module.
type Analysis struct {
	byFunc map[*ir.Func]*funcSCEV
}

var _ alias.Analysis = (*Analysis)(nil)

// New builds the analysis: loop detection plus the closed forms Alias can
// ever read — the index operand of each ptradd (of() memoizes the operand
// chains transitively). Computing them eagerly here means Alias never
// touches the memo tables afterwards: the resulting Analysis is immutable
// and safe for concurrent queries (the contract alias.Manager relies on),
// without materializing closed forms for the non-index values of large
// modules.
func New(m *ir.Module) *Analysis {
	a := &Analysis{byFunc: map[*ir.Func]*funcSCEV{}}
	for _, f := range m.Funcs {
		if f.Entry() != nil {
			fs := newFuncSCEV(f)
			for _, in := range f.Instrs() {
				if in.Op == ir.OpPtrAdd {
					fs.of(in.Args[1])
				}
			}
			a.byFunc[f] = fs
		}
	}
	return a
}

// Name returns "scev" (Fig. 13 column).
func (a *Analysis) Name() string { return "scev" }

// Alias answers no-alias only when both pointers have the same base object,
// at least one offset involves a loop induction variable (an add-recurrence
// term — per §4, scev-aa "is only effective to disambiguate pointers
// accessed within loops and indexed by variables in the expected
// closed-form"), and the difference of the offset closed forms is a nonzero
// constant — e.g. a[i] vs a[i+1], or two lock-step recurrences of the same
// loop. Everything else, including pointers with different (even provably
// distinct) bases and purely constant subscripts, is may-alias: object and
// constant-offset disambiguation are basicaa's job, not scev-aa's.
func (a *Analysis) Alias(p, q *ir.Value) alias.Result {
	fp := funcOf(p)
	if fp == nil || fp != funcOf(q) {
		return alias.MayAlias
	}
	fs := a.byFunc[fp]
	if fs == nil {
		return alias.MayAlias
	}
	bp, op := fs.ptrSCEV(p)
	bq, oq := fs.ptrSCEV(q)
	if bp != bq {
		return alias.MayAlias
	}
	if len(op.iters) == 0 && len(oq.iters) == 0 {
		return alias.MayAlias
	}
	if d, ok := constDiff(op, oq); ok && d != 0 {
		return alias.NoAlias
	}
	return alias.MayAlias
}

func funcOf(v *ir.Value) *ir.Func {
	if v.Kind == ir.VParam || v.Kind == ir.VInstr {
		return v.Func
	}
	return nil
}
