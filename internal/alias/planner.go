package alias

import (
	"slices"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/symbolic"
)

// Batch planner. A batch of same-function alias queries has structure the
// per-pair chain walk cannot see: most pointers sit in provably-disjoint
// ranges, so most pairs are no-alias for the *same* range-structural reason.
// The planner exploits it the way the paper's evaluation exploits range
// disjointness: for one function's slice of a batch it sorts the distinct
// values by (site, bound shape, range lower bound) and runs a sweep line
// that clusters overlapping ranges — O(N log N) in the number of distinct
// values. Two values separated by the partition (different sites, or
// same-site same-shape ranges in different clusters) are provably disjoint
// and answered no-alias with no per-pair work at all; only unseparated
// (and residue) pairs fall through to the compiled index check, and only
// index-inconclusive pairs fall back to the legacy Manager path, which
// stays available as the differential oracle.
//
// Answer contract: the planner's Result (no-alias / may-alias) is always
// identical to Manager.Evaluate's — sweep separations are justified by the
// rbaa member's own range digests, and index verdicts replicate the chain
// member for member. Attribution differs only on sweep-answered pairs: they
// are credited to the range member alone (Resolved/Provers = rbaa, Detail =
// the Fig. 14 reason the partition proves), because no other member was
// consulted. Clients that need full per-member attribution should evaluate
// through EvaluateFull or the Manager.

// PlanTally accumulates planner outcomes without touching shared counters;
// workers keep one per chunk and fold it into the Planner once.
type PlanTally struct {
	Pairs           int64
	SweepNoAlias    int64 // pairs answered by group separation alone
	IndexPairs      int64 // pairs answered by the compiled index
	IndexNoAlias    int64
	FallbackPairs   int64 // index-inconclusive pairs sent to the Manager
	FallbackNoAlias int64
}

func (t *PlanTally) add(o PlanTally) {
	t.Pairs += o.Pairs
	t.SweepNoAlias += o.SweepNoAlias
	t.IndexPairs += o.IndexPairs
	t.IndexNoAlias += o.IndexNoAlias
	t.FallbackPairs += o.FallbackPairs
	t.FallbackNoAlias += o.FallbackNoAlias
}

// PlannerStats is a point-in-time snapshot of a planner's counters.
type PlannerStats struct {
	// Batches counts Plan calls; PlannedValues the distinct values swept;
	// Groups the disjoint groups those sweeps formed.
	Batches       int64
	PlannedValues int64
	Groups        int64
	PlanTally
}

// FallbackRate returns the fraction of pairs that fell back to the Manager.
func (s PlannerStats) FallbackRate() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.FallbackPairs) / float64(s.Pairs)
}

// Planner answers batches over a compiled Index, falling back to the
// snapshot's Manager for index-inconclusive pairs. Safe for concurrent use.
type Planner struct {
	snap Snapshot
	ix   *Index

	batches       atomic.Int64
	plannedValues atomic.Int64
	groups        atomic.Int64
	pairs         atomic.Int64
	sweepNoAlias  atomic.Int64
	indexPairs    atomic.Int64
	indexNoAlias  atomic.Int64
	fbPairs       atomic.Int64
	fbNoAlias     atomic.Int64
}

// NewPlanner builds a planner over a chain snapshot and its compiled index.
// ix may be nil: every pair then takes the fallback path (the planner still
// counts, so callers need no second code path).
func NewPlanner(snap Snapshot, ix *Index) *Planner {
	return &Planner{snap: snap, ix: ix}
}

// Index returns the compiled index (nil when the chain did not compile).
func (pl *Planner) Index() *Index { return pl.ix }

// Snapshot returns the fallback chain handle.
func (pl *Planner) Snapshot() Snapshot { return pl.snap }

// Fold adds a worker's local tally into the shared counters.
func (pl *Planner) Fold(t PlanTally) {
	if t.Pairs != 0 {
		pl.pairs.Add(t.Pairs)
	}
	if t.SweepNoAlias != 0 {
		pl.sweepNoAlias.Add(t.SweepNoAlias)
	}
	if t.IndexPairs != 0 {
		pl.indexPairs.Add(t.IndexPairs)
	}
	if t.IndexNoAlias != 0 {
		pl.indexNoAlias.Add(t.IndexNoAlias)
	}
	if t.FallbackPairs != 0 {
		pl.fbPairs.Add(t.FallbackPairs)
	}
	if t.FallbackNoAlias != 0 {
		pl.fbNoAlias.Add(t.FallbackNoAlias)
	}
}

// Stats snapshots the counters.
func (pl *Planner) Stats() PlannerStats {
	return PlannerStats{
		Batches:       pl.batches.Load(),
		PlannedValues: pl.plannedValues.Load(),
		Groups:        pl.groups.Load(),
		PlanTally: PlanTally{
			Pairs:           pl.pairs.Load(),
			SweepNoAlias:    pl.sweepNoAlias.Load(),
			IndexPairs:      pl.indexPairs.Load(),
			IndexNoAlias:    pl.indexNoAlias.Load(),
			FallbackPairs:   pl.fbPairs.Load(),
			FallbackNoAlias: pl.fbNoAlias.Load(),
		},
	}
}

// EvaluateFull answers one pair with the full chain verdict — the compiled
// index when conclusive, the Manager otherwise — tallying into t. Unlike
// Plan/Evaluate it never sweep-short-circuits, so per-member attribution is
// complete; the experiments driver uses this mode to keep the Fig. 13/14
// accounting exact.
func (pl *Planner) EvaluateFull(p, q *ir.Value, t *PlanTally) Verdict {
	t.Pairs++
	if pl.ix != nil {
		if v, ok := pl.ix.Evaluate(p, q); ok {
			t.IndexPairs++
			if v.Result == NoAlias {
				t.IndexNoAlias++
			}
			return v
		}
	}
	t.FallbackPairs++
	v := pl.snap.Evaluate(p, q)
	if v.Result == NoAlias {
		t.FallbackNoAlias++
	}
	return v
}

// sweepKind classifies a value for the sweep line.
const (
	sweepUnplanned int8 = iota // not in this plan's batch slice
	sweepTop                   // GR = ⊤: rbaa proves nothing about it
	sweepResidue               // non-⊤ but multi-site or undecomposable bounds
	sweepBottom                // ⊥: disjoint from every non-⊤ value
	sweepSingle                // one site, shape-decomposable bounds: sweepable
)

// sweepPos is a planned value's position in the partition. The partition is
// hierarchical, mirroring what rbaa's range digests actually prove: two
// singles on different sites have disjoint supports; two singles on one
// site with the same bound shape and different clusters have provably
// disjoint ranges; everything else proves nothing and goes to the index.
type sweepPos struct {
	kind    int8
	site    int32
	shape   int32 // per-plan rank of the bound shape (sweepSingle only)
	cluster int32 // sweep-line cluster within (site, shape)
}

// planned is one distinct value of a plan during construction.
type planned struct {
	vn     int32
	pos    sweepPos
	lo, hi int64
}

// Plan is the sweep partition of one function's batch slice. Building it is
// O(N log N) in the distinct values; Evaluate answers each requested pair in
// O(1) position compares plus (for intra-cluster and residue pairs) the
// index check. A Plan is immutable after Plan() returns and safe for
// concurrent Evaluate calls.
//
// aliaslint:frozen
type Plan struct {
	pl *Planner
	fi *FuncIndex
	// pos is indexed by universe number; kind sweepUnplanned marks values
	// outside this batch slice. A flat array (no pointers) keeps plan
	// construction a single clear and Evaluate's lookups two array reads.
	pos []sweepPos
}

// Plan partitions the distinct values of one function's batch slice by
// sweep position. All values must belong to one function; duplicates are
// fine. A nil index, an unindexed function, or a chain with no range member
// yields a plan whose pairs all fall back (still counted).
//
// aliaslint:mutator — the Plan's builder: it fills pos/fi before the Plan
// is returned (and frozen).
func (pl *Planner) Plan(vals []*ir.Value) *Plan {
	pl.batches.Add(1)
	p := &Plan{pl: pl}
	if pl.ix == nil || len(vals) == 0 {
		return p
	}
	fi := pl.ix.Func(vals[0].Func)
	if fi == nil || fi.rangeMember < 0 {
		return p
	}
	p.fi = fi
	rng := fi.cols[fi.rangeMember].rng

	p.pos = make([]sweepPos, len(fi.universe))
	singles := make([]planned, 0, len(vals))
	shapeRank := map[*symbolic.Expr]int32{}

	seen := 0
	for _, v := range vals {
		vn := fi.num(v)
		if vn < 0 {
			continue // unindexed value: Evaluate falls back
		}
		if p.pos[vn].kind != sweepUnplanned {
			continue // duplicate
		}
		seen++
		e := planned{vn: vn, pos: sweepPos{kind: sweepTop}}
		if !rng.Top[vn] {
			rs := rng.rangesOf(vn)
			e.pos.kind = sweepResidue
			switch {
			case len(rs) == 0:
				e.pos.kind = sweepBottom
			case len(rs) == 1 && rs[0].Sweepable:
				e.pos.kind = sweepSingle
				e.pos.site = rs[0].Site
				rank, ok := shapeRank[rs[0].Shape]
				if !ok {
					rank = int32(len(shapeRank))
					shapeRank[rs[0].Shape] = rank
				}
				e.pos.shape = rank
				e.lo, e.hi = rs[0].Lo, rs[0].Hi
			}
		}
		if e.pos.kind == sweepSingle {
			singles = append(singles, e)
		}
		p.pos[vn] = e.pos // singles get their cluster below
	}

	// Sweep line per (site, shape): sort by (site, shape, lo); a value
	// whose lower bound lies past the running maximum upper bound of the
	// current cluster — or that opens a new site/shape segment — starts a
	// new cluster. Within one segment the shape cancels under subtraction,
	// so two values in different clusters have hi < lo: provably disjoint
	// ranges, precisely rbaa's global test.
	slices.SortFunc(singles, func(a, b planned) int {
		if a.pos.site != b.pos.site {
			return int(a.pos.site - b.pos.site)
		}
		if a.pos.shape != b.pos.shape {
			return int(a.pos.shape - b.pos.shape)
		}
		switch {
		case a.lo < b.lo:
			return -1
		case a.lo > b.lo:
			return 1
		}
		return 0
	})
	var clusters int32
	var curMaxHi int64
	for i := range singles {
		e := &singles[i]
		if i == 0 || e.pos.site != singles[i-1].pos.site ||
			e.pos.shape != singles[i-1].pos.shape || e.lo > curMaxHi {
			clusters++
			curMaxHi = e.hi
		} else if e.hi > curMaxHi {
			curMaxHi = e.hi
		}
		e.pos.cluster = clusters - 1
		p.pos[e.vn] = e.pos
	}
	pl.plannedValues.Add(int64(seen))
	pl.groups.Add(int64(clusters))
	return p
}

// Evaluate answers one planned pair, tallying into t. Partition-separated
// pairs are answered by the sweep; same-cluster, cross-shape and residue
// pairs go to the index; unplanned or index-inconclusive pairs fall back to
// the Manager.
func (p *Plan) Evaluate(a, b *ir.Value, t *PlanTally) Verdict {
	t.Pairs++
	if p.fi != nil {
		i, j := p.fi.num(a), p.fi.num(b)
		if i >= 0 && j >= 0 {
			pa, pb := p.pos[i], p.pos[j]
			if pa.kind != sweepUnplanned && pb.kind != sweepUnplanned {
				// The partition proves exactly what rbaa's digests prove:
				//   ⊥ vs non-⊤            → empty common support
				//   singles, site differs  → disjoint supports
				//   singles, same site+shape, different clusters → disjoint ranges
				// A ⊥-vs-⊤ pair is excluded: rbaa's QueryGR bails on ⊤ before
				// looking at supports, so the chain answers may-alias there.
				if (pa.kind == sweepBottom && pb.kind != sweepTop) ||
					(pb.kind == sweepBottom && pa.kind != sweepTop) {
					t.SweepNoAlias++
					return p.fi.sweepDisjoint
				}
				if pa.kind == sweepSingle && pb.kind == sweepSingle {
					if pa.site != pb.site {
						t.SweepNoAlias++
						return p.fi.sweepDisjoint
					}
					if pa.shape == pb.shape && pa.cluster != pb.cluster {
						t.SweepNoAlias++
						return p.fi.sweepGlobal
					}
				}
				t.IndexPairs++
				v := p.fi.evaluate(i, j)
				if v.Result == NoAlias {
					t.IndexNoAlias++
				}
				return v
			}
		}
	}
	t.FallbackPairs++
	v := p.pl.snap.Evaluate(a, b)
	if v.Result == NoAlias {
		t.FallbackNoAlias++
	}
	return v
}
