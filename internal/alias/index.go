package alias

import (
	"math/bits"

	"repro/internal/interval"
	"repro/internal/ir"
	"repro/internal/symbolic"
)

// Compiled alias index. When a module build reaches ready, each function is
// compiled into a frozen, value-numbered universe with one flat *column* per
// chain member: rbaa's GR range digests and LR locations, basicaa's
// underlying-object classes, scevaa's closed-form classes, and andersen's
// points-to bitset rows. A pair verdict over the index is a handful of array
// lookups (plus a word-wise bitset AND for the points-to member) instead of
// interface dispatch through the Manager chain — and the verdict is
// *identical* to what Manager.Evaluate computes, member for member, detail
// for detail, which is what lets the batch planner and the Manager fast path
// substitute the index for the chain without changing any observable answer.
//
// Member analyses participate by implementing one of the Digester
// interfaces below (they already import this package, so the column types
// live here and the decision procedures are replicated over the compiled
// digests). A chain whose members all digest is fully index-served; a pair
// involving a value outside the universe (a pointer constant, a global
// operand, a cross-function pair) is index-inconclusive and falls back to
// the legacy Manager path.

// GRRange is one compiled component of a pointer's global MemLoc: the
// allocation site and the symbolic offset interval. When both bounds share
// one additive shape (lo = Shape + Lo, hi = Shape + Hi; Shape nil for pure
// constants — see symbolic.Expr.SplitConst), the component is Sweepable:
// disjointness against a same-shape component is two integer compares, and
// the planner can sort it onto a sweep line. Mixed-shape comparisons fall
// back to the full symbolic prover, exactly like the chain.
type GRRange struct {
	Site      int32
	Sweepable bool
	Shape     *symbolic.Expr // nil = constant bounds; interned, so == is shape equality
	Lo, Hi    int64          // valid when Sweepable
	R         interval.Interval
}

// RangeColumn is the compiled form of rbaa's pair-local data for one
// function universe: per-value GR MemLocs flattened into one shared GRRange
// array (Start[i]..Start[i+1] are value i's components, sorted by site) and
// the LR location/offset pairs of the local test.
type RangeColumn struct {
	Top    []bool    // GR(v) = ⊤
	Start  []int32   // len = n+1; prefix offsets into Ranges
	Ranges []GRRange // Start[i] == Start[i+1] means GR(v) = ⊥

	LRLoc     []int32
	LROff     []*symbolic.Expr
	LRConst   []int64 // valid when LRIsConst
	LRIsConst []bool
}

// rangesOf returns value i's GR components.
func (c *RangeColumn) rangesOf(i int32) []GRRange {
	return c.Ranges[c.Start[i]:c.Start[i+1]]
}

// grDisjoint reports interval disjointness of two components: when both
// decompose over the same shape, the shape cancels under subtraction (the
// paper's symbolic-difference argument) and two integer compares decide;
// otherwise the chain's full prover runs.
func grDisjoint(a, b *GRRange) bool {
	if a.Sweepable && b.Sweepable && a.Shape == b.Shape {
		return a.Hi < b.Lo || b.Hi < a.Lo
	}
	return interval.ProvablyDisjoint(a.R, b.R)
}

// pair replicates pointer.Analysis.Query over the compiled digests: the
// global test (support disjointness, then per-site range disjointness), then
// the local test. The returned detail is rbaa's Fig. 14 reason string, ""
// for may-alias — exactly what the chain's Explainer reports.
func (c *RangeColumn) pair(i, j int32) (Result, string) {
	if !c.Top[i] && !c.Top[j] {
		ra, rb := c.rangesOf(i), c.rangesOf(j)
		common, disjoint := false, true
		x, y := 0, 0
		for x < len(ra) && y < len(rb) {
			switch {
			case ra[x].Site < rb[y].Site:
				x++
			case ra[x].Site > rb[y].Site:
				y++
			default:
				common = true
				if !grDisjoint(&ra[x], &rb[y]) {
					disjoint = false
					x = len(ra) // abort the walk, fall through to LR
				} else {
					x++
					y++
				}
			}
		}
		if disjoint {
			if !common {
				return NoAlias, "disjoint-support"
			}
			return NoAlias, "global-range"
		}
	}
	// Local test: same abstract location, provably different exact offsets.
	if c.LRLoc[i] == c.LRLoc[j] {
		if c.LRIsConst[i] && c.LRIsConst[j] {
			if c.LRConst[i] != c.LRConst[j] {
				return NoAlias, "local-range"
			}
		} else if c.LROff[i] != c.LROff[j] { // interned: equal ⇒ same expr
			// Two one-sided compares, exactly like interval.ProvablyDisjoint
			// on the point intervals (the prover is not antisymmetric, so a
			// single compare would be weaker than the chain's test).
			if symbolic.Compare(c.LROff[i], c.LROff[j]).ProvesLT() ||
				symbolic.Compare(c.LROff[j], c.LROff[i]).ProvesLT() {
				return NoAlias, "local-range"
			}
		}
	}
	return MayAlias, ""
}

// ClassFlags encode basicaa's per-value resolution outcome and the flags of
// the resolved root object.
type ClassFlags uint8

// Class flag bits.
const (
	ClassExact       ClassFlags = 1 << iota // offset from root exactly known
	ClassSawPhi                             // resolution stopped at a φ
	ClassRootNull                           // root is the null literal
	ClassRootIdent                          // root is an identified object (alloc/global)
	ClassRootEscaped                        // identified root's address escapes
	ClassRootUnknown                        // root has unknown provenance (param/load/call)
)

// ClassColumn is the compiled form of basicaa's underlying-object
// resolution: the root value, the accumulated constant offset and the flag
// set per universe value.
type ClassColumn struct {
	Root  []*ir.Value
	Off   []int64
	Flags []ClassFlags
}

// pair replicates basicaa.Alias over the compiled classes.
func (c *ClassColumn) pair(i, j int32) Result {
	fi, fj := c.Flags[i], c.Flags[j]
	if fi&ClassSawPhi != 0 || fj&ClassSawPhi != 0 {
		return MayAlias
	}
	if fi&ClassRootNull != 0 && fj&(ClassRootIdent|ClassRootNull) != 0 {
		return NoAlias
	}
	if fj&ClassRootNull != 0 && fi&ClassRootIdent != 0 {
		return NoAlias
	}
	if c.Root[i] == c.Root[j] {
		if fi&ClassExact != 0 && fj&ClassExact != 0 && c.Off[i] != c.Off[j] {
			return NoAlias
		}
		return MayAlias
	}
	if fi&ClassRootIdent != 0 && fj&ClassRootIdent != 0 {
		return NoAlias
	}
	if fi&ClassRootIdent != 0 && fi&ClassRootEscaped == 0 && fj&ClassRootUnknown != 0 {
		return NoAlias
	}
	if fj&ClassRootIdent != 0 && fj&ClassRootEscaped == 0 && fi&ClassRootUnknown != 0 {
		return NoAlias
	}
	return MayAlias
}

// SCEVColumn is the compiled form of scevaa's closed forms: per value the
// base object, the constant part of the offset, whether the offset involves
// a loop iteration counter, and an intra-function *shape id* interning the
// offset's entire symbolic part — two offsets subtract to a constant exactly
// when their shapes are equal. Shape -1 marks a non-affine offset.
type SCEVColumn struct {
	Base    []*ir.Value
	Shape   []int32
	Konst   []int64
	HasIter []bool
}

// pair replicates scevaa.Alias over the compiled closed forms.
func (c *SCEVColumn) pair(i, j int32) Result {
	if c.Base[i] != c.Base[j] {
		return MayAlias
	}
	if !c.HasIter[i] && !c.HasIter[j] {
		return MayAlias
	}
	if c.Shape[i] < 0 || c.Shape[i] != c.Shape[j] {
		return MayAlias
	}
	if c.Konst[i] != c.Konst[j] {
		return NoAlias
	}
	return MayAlias
}

// SetColumn is the compiled form of a points-to analysis: one dense bitset
// row per universe value (flat, Words words each) plus the ⊤ marker.
type SetColumn struct {
	Words   int
	Rows    []uint64
	Unknown []bool
}

// pair replicates andersen's disjoint-points-to test: a word-wise AND.
func (c *SetColumn) pair(i, j int32) Result {
	if c.Unknown[i] || c.Unknown[j] {
		return MayAlias
	}
	a := c.Rows[int(i)*c.Words : (int(i)+1)*c.Words]
	b := c.Rows[int(j)*c.Words : (int(j)+1)*c.Words]
	for w := range a {
		if a[w]&b[w] != 0 {
			return MayAlias
		}
	}
	return NoAlias
}

// RangeDigester is implemented by members that compile to a RangeColumn
// (rbaa). The universe is one function's pointer values in index order.
type RangeDigester interface {
	Analysis
	RangeDigests(f *ir.Func, universe []*ir.Value) *RangeColumn
}

// ClassDigester is implemented by members that compile to a ClassColumn
// (basicaa).
type ClassDigester interface {
	Analysis
	ClassDigests(f *ir.Func, universe []*ir.Value) *ClassColumn
}

// SCEVDigester is implemented by members that compile to a SCEVColumn
// (scevaa).
type SCEVDigester interface {
	Analysis
	SCEVDigests(f *ir.Func, universe []*ir.Value) *SCEVColumn
}

// SetDigester is implemented by members that compile to a SetColumn
// (andersen).
type SetDigester interface {
	Analysis
	SetDigests(f *ir.Func, universe []*ir.Value) *SetColumn
}

// column is the per-member tagged union of an index; exactly one field is
// non-nil.
type column struct {
	rng  *RangeColumn
	cls  *ClassColumn
	scev *SCEVColumn
	set  *SetColumn
}

// FuncIndex is one function's compiled universe: the pointer values of the
// function in a fixed order, a dense value-ID → universe-number table, and
// one column per chain member. It is immutable after BuildIndex and safe
// for concurrent readers.
//
// aliaslint:frozen
type FuncIndex struct {
	universe []*ir.Value
	vnum     []int32 // by ir.Value.ID; -1 = not in the universe
	cols     []column
	// rangeMember is the chain position of the RangeColumn member (the
	// sweep-key provider and Fig. 14 detail source), or -1.
	rangeMember int
	// sweepDisjoint and sweepGlobal are the two partition-separated
	// verdicts, built once so the planner's hottest path allocates nothing.
	// Their details slices are shared and must never be mutated.
	sweepDisjoint, sweepGlobal Verdict
}

// Len returns the universe size.
func (fi *FuncIndex) Len() int { return len(fi.universe) }

// num resolves a value to its universe number, -1 when unindexed.
func (fi *FuncIndex) num(v *ir.Value) int32 {
	if v.ID < 0 || v.ID >= len(fi.vnum) {
		return -1
	}
	return fi.vnum[v.ID]
}

// evaluate computes the full chain verdict for universe members i and j —
// the same Verdict Manager.compute produces for the pair, member for member.
func (fi *FuncIndex) evaluate(i, j int32) Verdict {
	v := Verdict{Resolved: -1}
	for mi := range fi.cols {
		col := &fi.cols[mi]
		var res Result
		var detail string
		switch {
		case col.rng != nil:
			res, detail = col.rng.pair(i, j)
		case col.cls != nil:
			res = col.cls.pair(i, j)
		case col.scev != nil:
			res = col.scev.pair(i, j)
		case col.set != nil:
			res = col.set.pair(i, j)
		}
		if res == NoAlias {
			v.mask |= 1 << uint(mi)
			if v.Resolved < 0 {
				v.Resolved = mi
				v.Result = NoAlias
			}
		}
		if detail != "" {
			if v.details == nil {
				v.details = make([]string, len(fi.cols))
			}
			v.details[mi] = detail
		}
	}
	return v
}

// Index is a module's compiled alias index: one FuncIndex per function,
// keyed by the function pointer. Frozen after BuildIndex; all methods are
// safe for concurrent use.
//
// aliaslint:frozen
type Index struct {
	funcs    map[*ir.Func]*FuncIndex
	members  int
	memBytes int64
}

// BuildIndex compiles the manager's chain over every function of m. It
// returns nil when any member implements no Digester interface — the chain
// then stays on the legacy evaluation path. The manager's members must
// answer queries for m's values (the same requirement Manager.Evaluate has).
func BuildIndex(mg *Manager, m *ir.Module) *Index {
	for _, mem := range mg.members {
		switch mem.(type) {
		case RangeDigester, ClassDigester, SCEVDigester, SetDigester:
		default:
			return nil
		}
	}
	ix := &Index{funcs: make(map[*ir.Func]*FuncIndex, len(m.Funcs)), members: len(mg.members)}
	for _, f := range m.Funcs {
		var universe []*ir.Value
		for _, v := range f.Values() {
			if v.Typ == ir.TPtr {
				universe = append(universe, v)
			}
		}
		if len(universe) == 0 {
			continue
		}
		fi := buildFuncIndex(mg, f, universe)
		ix.funcs[f] = fi
		ix.memBytes += fi.approxBytes()
	}
	return ix
}

// buildFuncIndex compiles one function's universe into a frozen FuncIndex.
func buildFuncIndex(mg *Manager, f *ir.Func, universe []*ir.Value) *FuncIndex {
	fi := &FuncIndex{universe: universe, vnum: make([]int32, f.NumValues()), rangeMember: -1}
	for i := range fi.vnum {
		fi.vnum[i] = -1
	}
	for i, v := range universe {
		fi.vnum[v.ID] = int32(i)
	}
	fi.cols = make([]column, len(mg.members))
	for mi, mem := range mg.members {
		switch d := mem.(type) {
		case RangeDigester:
			fi.cols[mi].rng = d.RangeDigests(f, universe)
			if fi.rangeMember < 0 {
				fi.rangeMember = mi
			}
		case ClassDigester:
			fi.cols[mi].cls = d.ClassDigests(f, universe)
		case SCEVDigester:
			fi.cols[mi].scev = d.SCEVDigests(f, universe)
		case SetDigester:
			fi.cols[mi].set = d.SetDigests(f, universe)
		}
	}
	if mi := fi.rangeMember; mi >= 0 {
		fi.sweepDisjoint = Verdict{Result: NoAlias, Resolved: mi, mask: 1 << uint(mi),
			details: detailAt(len(fi.cols), mi, "disjoint-support")}
		fi.sweepGlobal = Verdict{Result: NoAlias, Resolved: mi, mask: 1 << uint(mi),
			details: detailAt(len(fi.cols), mi, "global-range")}
	}
	return fi
}

// detailAt builds an n-member detail slice with one entry set.
func detailAt(n, i int, s string) []string {
	d := make([]string, n)
	d[i] = s
	return d
}

// Func returns the compiled index of f, nil when f has no pointer values.
func (ix *Index) Func(f *ir.Func) *FuncIndex { return ix.funcs[f] }

// NumFuncs returns how many functions were compiled.
func (ix *Index) NumFuncs() int { return len(ix.funcs) }

// MemBytes approximates the index's resident size — flat arrays plus the
// value-number tables — for the registry's per-module memory accounting.
func (ix *Index) MemBytes() int64 { return ix.memBytes }

// Evaluate answers one pair from the index alone: ok=false when the pair is
// index-inconclusive (values of different or unindexed functions, or values
// outside the universe), in which case the caller must use the Manager.
func (ix *Index) Evaluate(p, q *ir.Value) (Verdict, bool) {
	if p.Func == nil || p.Func != q.Func {
		return Verdict{}, false
	}
	fi := ix.funcs[p.Func]
	if fi == nil {
		return Verdict{}, false
	}
	i, j := fi.num(p), fi.num(q)
	if i < 0 || j < 0 {
		return Verdict{}, false
	}
	return fi.evaluate(i, j), true
}

// approxBytes sums the column footprints of one function index.
func (fi *FuncIndex) approxBytes() int64 {
	const ptrSize = 8
	n := int64(len(fi.universe))*ptrSize + int64(len(fi.vnum))*4
	for i := range fi.cols {
		c := &fi.cols[i]
		switch {
		case c.rng != nil:
			n += int64(len(c.rng.Top)) + int64(len(c.rng.Start))*4 +
				int64(len(c.rng.Ranges))*56 +
				int64(len(c.rng.LRLoc))*(4+ptrSize+8+1)
		case c.cls != nil:
			n += int64(len(c.cls.Root))*ptrSize + int64(len(c.cls.Off))*8 + int64(len(c.cls.Flags))
		case c.scev != nil:
			n += int64(len(c.scev.Base))*ptrSize + int64(len(c.scev.Shape))*4 +
				int64(len(c.scev.Konst))*8 + int64(len(c.scev.HasIter))
		case c.set != nil:
			n += int64(len(c.set.Rows))*8 + int64(len(c.set.Unknown))
		}
	}
	return n
}

// NumProvers returns how many chain members independently proved NoAlias —
// the capacity hint for rendering the prover list without reallocation.
func (v Verdict) NumProvers() int { return bits.OnesCount64(v.mask) }
