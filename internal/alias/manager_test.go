package alias_test

import (
	"sync"
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/progs"
)

func newTestManager(m *ir.Module, opts alias.ManagerOptions) *alias.Manager {
	return alias.NewManager(opts,
		scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}))
}

// sameVerdict compares two verdicts over a 3-member chain (Verdict holds a
// slice, so == does not apply).
func sameVerdict(a, b alias.Verdict) bool {
	if a.Result != b.Result || a.Resolved != b.Resolved {
		return false
	}
	for i := 0; i < 3; i++ {
		if a.MemberNoAlias(i) != b.MemberNoAlias(i) || a.Detail(i) != b.Detail(i) {
			return false
		}
	}
	return true
}

// TestManagerMatchesMembers: the chained verdicts must coincide with asking
// each member directly, and the combined Result with their disjunction.
func TestManagerMatchesMembers(t *testing.T) {
	for _, m := range []*ir.Module{
		progs.MessageBuffer(), progs.Accelerate(), progs.Fig10(),
		progs.TwoBuffers(), progs.StructFields(),
	} {
		s := scevaa.New(m)
		b := basicaa.New(m)
		r := rbaa.New(m, pointer.Options{})
		mgr := alias.NewManager(alias.ManagerOptions{}, s, b, r)
		for _, q := range alias.Queries(m) {
			v := mgr.Evaluate(q.P, q.Q)
			want := [3]alias.Result{s.Alias(q.P, q.Q), b.Alias(q.P, q.Q), r.Alias(q.P, q.Q)}
			any := false
			for i, w := range want {
				if got := v.MemberNoAlias(i); got != (w == alias.NoAlias) {
					t.Fatalf("%s: member %d verdict mismatch for %s,%s: manager=%v member=%s",
						m.Name, i, q.P.Name, q.Q.Name, got, w)
				}
				any = any || w == alias.NoAlias
			}
			if (v.Result == alias.NoAlias) != any {
				t.Fatalf("%s: combined result %s but members %v", m.Name, v.Result, want)
			}
			if rNo := v.MemberNoAlias(2); rNo != (v.Detail(2) != "") {
				t.Fatalf("%s: rbaa detail %q inconsistent with verdict %v",
					m.Name, v.Detail(2), rNo)
			}
		}
	}
}

// TestManagerCanonicalizationAndCache: (p,q) and (q,p) share one cache
// entry, and repeats are served from the cache.
func TestManagerCanonicalizationAndCache(t *testing.T) {
	m := progs.MessageBuffer()
	mgr := newTestManager(m, alias.ManagerOptions{})
	qs := alias.Queries(m)
	for _, q := range qs {
		fwd := mgr.Evaluate(q.P, q.Q)
		rev := mgr.Evaluate(q.Q, q.P)
		if !sameVerdict(fwd, rev) {
			t.Fatalf("asymmetric verdict for %s,%s", q.P.Name, q.Q.Name)
		}
	}
	st := mgr.Stats()
	if st.Queries != int64(2*len(qs)) {
		t.Errorf("queries = %d, want %d", st.Queries, 2*len(qs))
	}
	if st.Computed != int64(len(qs)) {
		t.Errorf("computed = %d, want %d (reverse queries must hit the cache)",
			st.Computed, len(qs))
	}
	if st.CacheHits != int64(len(qs)) {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, len(qs))
	}
	// The attribution histogram must decompose rbaa's no-alias count.
	rb := st.Members[2]
	var detailSum int64
	for _, n := range rb.Details {
		detailSum += n
	}
	if detailSum != rb.NoAlias {
		t.Errorf("rbaa details sum %d != rbaa no-alias %d", detailSum, rb.NoAlias)
	}
	// First-wins attribution sums to the chain's no-alias total.
	var fw int64
	for _, ms := range st.Members {
		fw += ms.FirstWins
	}
	if fw != st.NoAlias {
		t.Errorf("first-wins sum %d != chain no-alias %d", fw, st.NoAlias)
	}
}

// TestManagerCacheLimit: a negative limit disables memoization entirely and
// every repeat is recomputed; counters then tally per computation.
func TestManagerCacheLimit(t *testing.T) {
	m := progs.TwoBuffers()
	mgr := newTestManager(m, alias.ManagerOptions{CacheLimit: -1})
	qs := alias.Queries(m)
	for i := 0; i < 3; i++ {
		for _, q := range qs {
			mgr.Evaluate(q.P, q.Q)
		}
	}
	st := mgr.Stats()
	if st.CacheHits != 0 {
		t.Errorf("cache hits = %d with caching disabled", st.CacheHits)
	}
	if st.Computed != int64(3*len(qs)) {
		t.Errorf("computed = %d, want %d", st.Computed, 3*len(qs))
	}
}

// TestManagerComposes: a Manager is itself an Analysis and can be chained
// inside another Manager.
func TestManagerComposes(t *testing.T) {
	m := progs.StructFields()
	inner := newTestManager(m, alias.ManagerOptions{Label: "inner"})
	outer := alias.NewManager(alias.ManagerOptions{Label: "outer"}, inner)
	for _, q := range alias.Queries(m) {
		if outer.Alias(q.P, q.Q) != inner.Evaluate(q.P, q.Q).Result {
			t.Fatalf("composed manager diverges on %s,%s", q.P.Name, q.Q.Name)
		}
	}
	if outer.Name() != "outer" || inner.Name() != "inner" {
		t.Errorf("labels lost: %q, %q", outer.Name(), inner.Name())
	}
}

// TestManagerOnePairHammerNoCache is the regression test for the
// double-counting bug: with caching disabled there is no LoadOrStore winner
// to elect, so the documented semantics are one count per computation —
// exactly workers×rounds, never more (the old code could also inflate past
// a full cache, where racing goroutines each counted). Run under -race this
// also guards the counter stripes themselves.
func TestManagerOnePairHammerNoCache(t *testing.T) {
	m := progs.MessageBuffer()
	qs := alias.Queries(m)
	if len(qs) == 0 {
		t.Fatal("no queries")
	}
	q := qs[0]
	want := newTestManager(m, alias.ManagerOptions{}).Evaluate(q.P, q.Q)

	mgr := newTestManager(m, alias.ManagerOptions{CacheLimit: -1})
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mgr.Evaluate(q.P, q.Q)
			}
		}()
	}
	wg.Wait()

	st := mgr.Stats()
	const total = workers * rounds
	if st.Queries != total {
		t.Errorf("queries = %d, want %d", st.Queries, total)
	}
	if st.CacheHits != 0 {
		t.Errorf("cache hits = %d with caching disabled", st.CacheHits)
	}
	if st.Computed != total {
		t.Errorf("computed = %d, want exactly %d (one per computation)", st.Computed, total)
	}
	wantNoAlias := int64(0)
	if want.Result == alias.NoAlias {
		wantNoAlias = total
	}
	if st.NoAlias != wantNoAlias {
		t.Errorf("noalias = %d, want %d", st.NoAlias, wantNoAlias)
	}
	for i, ms := range st.Members {
		wantMember := int64(0)
		if want.MemberNoAlias(i) {
			wantMember = total
		}
		if ms.NoAlias != wantMember {
			t.Errorf("member %d noalias = %d, want %d (counters inflated or lost)",
				i, ms.NoAlias, wantMember)
		}
	}
}

// TestManagerWinnerOnlyCountPastLimit pins the other half of the fix: with
// a small LRU the cache no longer freezes at its limit, so a pair hammered
// concurrently after a cold flood is computed and counted exactly once —
// under the old frozen cache every racing recomputation was counted.
func TestManagerWinnerOnlyCountPastLimit(t *testing.T) {
	m := progs.MessageBuffer()
	qs := alias.Queries(m)
	const limit = 4
	if len(qs) < limit+4 {
		t.Fatalf("need more than %d distinct pairs, have %d", limit+4, len(qs))
	}
	mgr := newTestManager(m, alias.ManagerOptions{CacheLimit: limit, CacheShards: 1})

	// Cold flood: more distinct pairs than the cache holds. Under the old
	// policy this froze the cache on the first `limit` pairs.
	for _, q := range qs[1:] {
		mgr.Evaluate(q.P, q.Q)
	}
	before := mgr.Stats()
	if before.Cached > limit {
		t.Fatalf("cached = %d beyond the %d-entry limit", before.Cached, limit)
	}
	if before.Evictions == 0 {
		t.Fatal("flood past the limit recorded no evictions")
	}

	// Hot phase: many goroutines race on one fresh pair. Exactly one
	// computation may be counted; everyone else must resolve as a hit.
	hot := qs[0]
	const workers = 8
	const rounds = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mgr.Evaluate(hot.P, hot.Q)
			}
		}()
	}
	wg.Wait()

	after := mgr.Stats()
	if d := after.Computed - before.Computed; d != 1 {
		t.Errorf("hot pair counted %d times, want exactly 1 (winner only)", d)
	}
	if d := after.Queries - before.Queries; d != workers*rounds {
		t.Errorf("queries grew by %d, want %d", d, workers*rounds)
	}
	if after.CacheHits+after.Computed != after.Queries {
		t.Errorf("cache_hits %d + computed %d != queries %d",
			after.CacheHits, after.Computed, after.Queries)
	}
	if after.Cached > limit {
		t.Errorf("cached = %d beyond the %d-entry limit", after.Cached, limit)
	}
}

// TestManagerConcurrentHammer locks in the concurrent-query contract: many
// goroutines fire the full query set (in both orientations and shifted
// orders) at one Manager while others snapshot Stats. Run under -race this
// guards the read-only query paths of scevaa, basicaa and rbaa as well as
// the Manager's own cache and counters.
func TestManagerConcurrentHammer(t *testing.T) {
	cfg := benchgen.Fig13Configs()[0] // cfrac: mid-size, every idiom
	m := benchgen.Generate(cfg)
	mgr := newTestManager(m, alias.ManagerOptions{})
	qs := alias.Queries(m)
	if len(qs) == 0 {
		t.Fatal("no queries")
	}

	// Reference verdicts, computed single-threaded on a twin manager.
	ref := newTestManager(m, alias.ManagerOptions{})
	want := make([]alias.Verdict, len(qs))
	for i, q := range qs {
		want[i] = ref.Evaluate(q.P, q.Q)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range qs {
				j := (i + w*len(qs)/workers) % len(qs)
				q := qs[j]
				var got alias.Verdict
				if w%2 == 0 {
					got = mgr.Evaluate(q.P, q.Q)
				} else {
					got = mgr.Evaluate(q.Q, q.P)
				}
				if !sameVerdict(got, want[j]) {
					t.Errorf("worker %d: verdict mismatch on query %d", w, j)
					return
				}
			}
		}()
	}
	// Concurrent stats snapshots must not race with the sweeps.
	stop := make(chan struct{})
	var snap sync.WaitGroup
	snap.Add(1)
	go func() {
		defer snap.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = mgr.Stats()
			}
		}
	}()
	wg.Wait()
	close(stop)
	snap.Wait()

	st := mgr.Stats()
	// Every unique pair is computed at least once; with the cache far below
	// its limit, duplicated computation can only come from races lost at
	// LoadOrStore, which still count each pair exactly once.
	if st.Computed != int64(len(qs)) {
		t.Errorf("computed = %d, want %d unique pairs", st.Computed, len(qs))
	}
	if st.Queries != int64(workers*len(qs)) {
		t.Errorf("queries = %d, want %d", st.Queries, workers*len(qs))
	}
	rb := st.Members[2]
	var detailSum int64
	for _, n := range rb.Details {
		detailSum += n
	}
	if detailSum != rb.NoAlias {
		t.Errorf("rbaa details sum %d != rbaa no-alias %d", detailSum, rb.NoAlias)
	}
}
