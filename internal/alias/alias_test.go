package alias_test

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/progs"
)

func TestQueriesEnumeration(t *testing.T) {
	m := progs.TwoBuffers()
	qs := alias.Queries(m)
	// fill has 2 pointer values (p, q): exactly one pair.
	if len(qs) != 1 {
		t.Fatalf("queries = %d, want 1", len(qs))
	}
	if alias.NumQueries(m) != len(qs) {
		t.Fatalf("NumQueries disagrees with Queries")
	}
	// Pairs stay within one function.
	m2 := progs.MessageBuffer()
	for _, q := range alias.Queries(m2) {
		if q.P.Func != q.Q.Func {
			t.Fatalf("cross-function pair %s vs %s", q.P, q.Q)
		}
	}
}

func TestCombinedIsDisjunction(t *testing.T) {
	m := progs.MessageBuffer()
	b := basicaa.New(m)
	r := rbaa.New(m, pointer.Options{})
	s := scevaa.New(m)
	comb := &alias.Combined{Members: []alias.Analysis{r, b}, Label: "r+b"}

	n, counts := alias.Count(m, s, b, r, comb)
	if n == 0 {
		t.Fatal("no queries enumerated")
	}
	if counts["r+b"] < counts["basic"] || counts["r+b"] < counts["rbaa"] {
		t.Errorf("combination must dominate members: %v", counts)
	}
	// The paper's headline ordering on pointer-arithmetic-heavy code:
	// rbaa > scev.
	if counts["rbaa"] <= counts["scev"] {
		t.Errorf("rbaa (%d) should beat scev (%d) on Fig. 1 code",
			counts["rbaa"], counts["scev"])
	}
}

func TestAttribution(t *testing.T) {
	m := progs.MessageBuffer()
	r := rbaa.New(m, pointer.Options{})
	at := r.Attribute(m)
	if at.NoAlias != at.DisjointSupport+at.GlobalRange+at.LocalRange {
		t.Errorf("attribution does not decompose: %+v", at)
	}
	if at.GlobalRange == 0 {
		t.Errorf("Fig. 1 program must have global-range answers: %+v", at)
	}
	if at.Queries != alias.NumQueries(m) {
		t.Errorf("attribution query count mismatch: %+v", at)
	}
}

// TestCrossCheckOnPaperPrograms: on every fixture, any pair the combined
// analysis calls no-alias must not be called may by… (trivially true) — the
// interesting direction: analyses never contradict a must-alias ground
// truth. We use identical-value pairs as a smoke test: Alias(v, v) must be
// may-alias for every analysis (a value trivially aliases itself).
func TestSelfAliasIsMay(t *testing.T) {
	for _, m := range []*ir.Module{
		progs.MessageBuffer(), progs.Accelerate(), progs.Fig10(),
		progs.TwoBuffers(), progs.StructFields(),
	} {
		b := basicaa.New(m)
		s := scevaa.New(m)
		r := rbaa.New(m, pointer.Options{})
		for _, f := range m.Funcs {
			for _, v := range f.Values() {
				if v.Typ != ir.TPtr {
					continue
				}
				for _, a := range []alias.Analysis{b, s, r} {
					if a.Alias(v, v) != alias.MayAlias {
						t.Fatalf("%s: %s.Alias(v,v) = no-alias for %s in %s",
							m.Name, a.Name(), v, f.Name)
					}
				}
			}
		}
	}
}
