package alias

import "repro/internal/ir"

// Snapshot is a read-only query handle over a Manager. Long-lived clients —
// the network service in internal/service foremost — hold Snapshots rather
// than *Manager so that the surface they can reach is exactly the
// concurrency-safe one: answering queries and reading counters. A Snapshot
// cannot rebuild or reorder the chain, and its zero value is invalid (Valid
// reports false), which lets registries distinguish "module not loaded"
// without nil-pointer hazards.
//
// Snapshots share the underlying Manager: queries issued through any
// Snapshot of a Manager populate the same cache and the same counters.
//
// aliaslint:frozen
type Snapshot struct {
	mg *Manager
}

// Snapshot returns a read-only handle over the manager.
func (mg *Manager) Snapshot() Snapshot { return Snapshot{mg: mg} }

// Valid reports whether the snapshot is backed by a manager.
func (s Snapshot) Valid() bool { return s.mg != nil }

// Name returns the chain label.
func (s Snapshot) Name() string { return s.mg.Name() }

// NumMembers returns the length of the chain.
func (s Snapshot) NumMembers() int { return s.mg.NumMembers() }

// MemberName returns the Name() of member i.
func (s Snapshot) MemberName(i int) string { return s.mg.MemberName(i) }

// Alias answers one query with the chained result.
func (s Snapshot) Alias(p, q *ir.Value) Result { return s.mg.Alias(p, q) }

// Evaluate answers one query with the full per-member verdict.
func (s Snapshot) Evaluate(p, q *ir.Value) Verdict { return s.mg.Evaluate(p, q) }

// Stats snapshots the manager's counters.
func (s Snapshot) Stats() ManagerStats { return s.mg.Stats() }

// CacheHitRate returns the fraction of queries served from the memo cache,
// in [0, 1]; 0 when no queries have been answered.
func (st ManagerStats) CacheHitRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(st.Queries)
}
