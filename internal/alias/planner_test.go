package alias_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/alias"
	"repro/internal/alias/andersen"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/ir"
	"repro/internal/pointer"
)

// newServiceChain mirrors service.NewChain: the full four-member chain the
// daemon compiles an index for.
func newServiceChain(m *ir.Module, opts alias.ManagerOptions) *alias.Manager {
	return alias.NewManager(opts,
		scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}), andersen.Analyze(m))
}

// fullVerdictEqual compares two verdicts member for member.
func fullVerdictEqual(a, b alias.Verdict, members int) bool {
	if a.Result != b.Result || a.Resolved != b.Resolved {
		return false
	}
	for i := 0; i < members; i++ {
		if a.MemberNoAlias(i) != b.MemberNoAlias(i) || a.Detail(i) != b.Detail(i) {
			return false
		}
	}
	return true
}

// diffConfigs are randomly parameterized generator configs: the Fig. 13
// idiom generators re-seeded and re-mixed, so every run of the corpus
// covers programs none of the goldens pin down.
func diffConfigs() []benchgen.Config {
	rng := rand.New(rand.NewSource(20260728))
	var out []benchgen.Config
	for i := 0; i < 8; i++ {
		out = append(out, benchgen.Config{
			Name:    fmt.Sprintf("diff%d", i),
			Seed:    rng.Int63(),
			Workers: 3 + rng.Intn(8),
			Mix: benchgen.Mix{
				Message:  rng.Intn(4),
				Stride:   rng.Intn(4),
				Fields:   rng.Intn(4),
				MultiObj: rng.Intn(4),
				Chase:    rng.Intn(3),
				Soup:     rng.Intn(3),
				Cond:     rng.Intn(3),
				Local:    1 + rng.Intn(3),
			},
		})
	}
	return out
}

// TestIndexVerdictsIdenticalToManager is the compiled index's differential
// property: for every pair of every function of randomly generated IR
// programs, the index verdict must equal the legacy Manager chain's —
// result, chain attribution, per-member mask and Fig. 14 detail alike.
func TestIndexVerdictsIdenticalToManager(t *testing.T) {
	for _, cfg := range diffConfigs() {
		m := benchgen.Generate(cfg)
		oracle := newServiceChain(m, alias.ManagerOptions{CacheLimit: -1})
		indexed := newServiceChain(m, alias.ManagerOptions{CacheLimit: -1})
		ix := alias.BuildIndex(indexed, m)
		if ix == nil {
			t.Fatalf("%s: BuildIndex returned nil for a fully digestible chain", cfg.Name)
		}
		if ix.NumFuncs() == 0 {
			t.Fatalf("%s: index compiled no functions", cfg.Name)
		}
		qs := alias.Queries(m)
		if len(qs) == 0 {
			t.Fatalf("%s: no queries", cfg.Name)
		}
		inconclusive := 0
		for _, q := range qs {
			want := oracle.Evaluate(q.P, q.Q)
			got, ok := ix.Evaluate(q.P, q.Q)
			if !ok {
				inconclusive++
				continue
			}
			if !fullVerdictEqual(got, want, oracle.NumMembers()) {
				t.Fatalf("%s: index verdict for (%s,%s) in %s diverges\n got: %+v provers=%d\nwant: %+v provers=%d",
					cfg.Name, q.P.Name, q.Q.Name, q.P.Func.Name,
					got.Result, got.NumProvers(), want.Result, want.NumProvers())
			}
			// Symmetry: the index must not depend on operand order.
			if rev, ok := ix.Evaluate(q.Q, q.P); !ok || rev.Result != got.Result {
				t.Fatalf("%s: index verdict for (%s,%s) is order-dependent", cfg.Name, q.P.Name, q.Q.Name)
			}
		}
		if inconclusive > 0 {
			t.Errorf("%s: %d/%d pairs index-inconclusive; same-function pointer pairs must all be covered",
				cfg.Name, inconclusive, len(qs))
		}
	}
}

// TestPlannerBatchesMatchManagerUnderRace drives random batches through the
// sweep-line planner from concurrent workers and checks every answer's
// Result against a per-pair Manager.Evaluate on an untouched oracle — the
// differential contract of the batch fast path — while the tallies
// reconcile with the number of pairs issued.
func TestPlannerBatchesMatchManagerUnderRace(t *testing.T) {
	for _, cfg := range diffConfigs()[:4] {
		m := benchgen.Generate(cfg)
		oracle := newServiceChain(m, alias.ManagerOptions{})
		indexed := newServiceChain(m, alias.ManagerOptions{})
		ix := alias.BuildIndex(indexed, m)
		pl := alias.NewPlanner(indexed.Snapshot(), ix)

		// Group the query enumeration by function, as the service pipeline
		// shards batches.
		byFunc := map[*ir.Func][]alias.Pair{}
		for _, q := range alias.Queries(m) {
			byFunc[q.P.Func] = append(byFunc[q.P.Func], q)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		type batch struct {
			plan  *alias.Plan
			pairs []alias.Pair
		}
		var batches []batch
		totalPairs := 0
		for _, pairs := range byFunc {
			// Random slice of the function's pairs, both orientations.
			bp := make([]alias.Pair, 0, len(pairs))
			for _, q := range pairs {
				if rng.Intn(4) == 0 {
					continue
				}
				if rng.Intn(2) == 0 {
					q.P, q.Q = q.Q, q.P
				}
				bp = append(bp, q)
			}
			if len(bp) == 0 {
				continue
			}
			vals := make([]*ir.Value, 0, 2*len(bp))
			for _, q := range bp {
				vals = append(vals, q.P, q.Q)
			}
			batches = append(batches, batch{plan: pl.Plan(vals), pairs: bp})
			totalPairs += len(bp)
		}

		var wg sync.WaitGroup
		results := make([][]alias.Result, len(batches))
		for bi := range batches {
			for w := 0; w < 2; w++ { // two workers per plan: shared-plan reads must race cleanly
				wg.Add(1)
				go func(bi, w int) {
					defer wg.Done()
					b := batches[bi]
					var tally alias.PlanTally
					out := make([]alias.Result, len(b.pairs))
					for i, q := range b.pairs {
						out[i] = b.plan.Evaluate(q.P, q.Q, &tally).Result
					}
					pl.Fold(tally)
					if w == 0 {
						results[bi] = out
					}
				}(bi, w)
			}
		}
		wg.Wait()

		for bi, b := range batches {
			for i, q := range b.pairs {
				want := oracle.Evaluate(q.P, q.Q).Result
				if results[bi][i] != want {
					t.Fatalf("%s: planner result for (%s,%s) = %v, manager says %v",
						cfg.Name, q.P.Name, q.Q.Name, results[bi][i], want)
				}
			}
		}

		st := pl.Stats()
		if st.Pairs != int64(2*totalPairs) {
			t.Errorf("%s: planner tallied %d pairs, want %d", cfg.Name, st.Pairs, 2*totalPairs)
		}
		if st.SweepNoAlias+st.IndexPairs+st.FallbackPairs != st.Pairs {
			t.Errorf("%s: tally does not reconcile: sweep %d + index %d + fallback %d != pairs %d",
				cfg.Name, st.SweepNoAlias, st.IndexPairs, st.FallbackPairs, st.Pairs)
		}
		if st.Batches != int64(len(batches)) {
			t.Errorf("%s: batches = %d, want %d", cfg.Name, st.Batches, len(batches))
		}
		if st.Groups == 0 || st.PlannedValues == 0 {
			t.Errorf("%s: sweep formed no groups (groups=%d planned=%d)", cfg.Name, st.Groups, st.PlannedValues)
		}
	}
}

// TestPlannerBottomVsTopMatchesManager is the regression test for the ⊥/⊤
// sweep rule: a freed pointer (GR = ⊥) paired with a pointer loaded from
// memory an unknown value reached (GR = ⊤, points-to unknown) is may-alias
// under the chain — rbaa's global test bails on ⊤ before looking at
// supports — so the sweep must not claim the ⊥ value disjoint from it.
func TestPlannerBottomVsTopMatchesManager(t *testing.T) {
	m := ir.NewModule("freetop")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	b.SetBlock(b.Block("entry"))
	obj := b.Malloc(b.Int(8), "obj")
	b.Store(obj, f.Params[0]) // unknown pointer escapes into obj
	ld := b.Load(ir.TPtr, obj, "ld")
	fr := b.Free(obj, "fr")
	b.Ret(nil)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	oracle := newServiceChain(m, alias.ManagerOptions{CacheLimit: -1})
	indexed := newServiceChain(m, alias.ManagerOptions{CacheLimit: -1})
	pl := alias.NewPlanner(indexed.Snapshot(), alias.BuildIndex(indexed, m))
	plan := pl.Plan([]*ir.Value{fr, ld, obj})
	var tally alias.PlanTally
	for _, pair := range [][2]*ir.Value{{fr, ld}, {ld, fr}, {fr, obj}, {obj, ld}} {
		got := plan.Evaluate(pair[0], pair[1], &tally).Result
		want := oracle.Evaluate(pair[0], pair[1]).Result
		if got != want {
			t.Errorf("planner result for (%s,%s) = %v, manager says %v",
				pair[0].Name, pair[1].Name, got, want)
		}
	}
}

// TestManagerIndexFastPath attaches the compiled index to a manager and
// checks verdicts and counters stay identical to the chain-walking twin.
func TestManagerIndexFastPath(t *testing.T) {
	cfg := benchgen.Fig13Configs()[9] // fixoutput: small, rich verdict mix
	m := benchgen.Generate(cfg)
	plain := newServiceChain(m, alias.ManagerOptions{})
	fast := newServiceChain(m, alias.ManagerOptions{})
	fast.AttachIndex(alias.BuildIndex(fast, m))
	qs := alias.Queries(m)
	for _, q := range qs {
		a, b := plain.Evaluate(q.P, q.Q), fast.Evaluate(q.P, q.Q)
		if !fullVerdictEqual(a, b, plain.NumMembers()) {
			t.Fatalf("fast-path verdict for (%s,%s) diverges", q.P.Name, q.Q.Name)
		}
	}
	ps, fs := plain.Stats(), fast.Stats()
	if ps.Computed != fs.Computed || ps.NoAlias != fs.NoAlias {
		t.Errorf("fast-path counters diverge: computed %d/%d noalias %d/%d",
			ps.Computed, fs.Computed, ps.NoAlias, fs.NoAlias)
	}
	for i := range ps.Members {
		if ps.Members[i].NoAlias != fs.Members[i].NoAlias || ps.Members[i].FirstWins != fs.Members[i].FirstWins {
			t.Errorf("member %s counters diverge", ps.Members[i].Name)
		}
	}
}
