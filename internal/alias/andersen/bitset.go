package andersen

import "math/bits"

// bitset is a fixed-width dense bit vector over abstract-object indices
// (allocation sites plus the ⊤ marker bit). Points-to sets, their processed
// ("done") shadows and the escaped-object set are all bitsets, so set union
// — the solver's innermost operation — is a handful of word ORs with no
// allocation or hashing.
type bitset []uint64

func bitsetWords(nbits int) int { return (nbits + 63) / 64 }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// set sets bit i, reporting whether it was previously clear.
func (b bitset) set(i int) bool {
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

// unionInto ORs src into dst, reporting whether dst grew.
func unionInto(dst, src bitset) bool {
	changed := false
	for w, s := range src {
		if old := dst[w]; old|s != old {
			dst[w] = old | s
			changed = true
		}
	}
	return changed
}

// empty reports whether no bit is set.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach calls f for every set bit in ascending order.
func (b bitset) forEach(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			f(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// intersects reports whether a and b share any set bit.
func (a bitset) intersects(b bitset) bool {
	for w := range a {
		if a[w]&b[w] != 0 {
			return true
		}
	}
	return false
}
