// Package andersen implements an inclusion-based (Andersen-style) points-to
// analysis: flow- and context-insensitive, field-insensitive, with abstract
// objects per allocation site and global. Unlike the paper's GR analysis it
// *does* track pointers through memory (store/load constraints), which is
// exactly the complementary capability §3.4 alludes to ("a typical
// compilation infra-structure already contains analyses that are able to
// track the propagation of pointer information throughout memory").
//
// The package serves two roles:
//
//  1. a standalone alias analysis (disjoint points-to sets ⇒ no-alias),
//     realizing the paper's related-work proposal that classic points-to
//     algorithms be combined with the range representation;
//  2. a refinement oracle for GR: with pointer.Options.PointsTo set, loads
//     of pointers get the loaded set's sites with unknown offsets instead
//     of ⊤ — restoring support-disjointness answers for pointers that
//     round-trip through memory.
//
// Soundness: anything that reaches an extern call, or is loaded from
// memory an extern may have written, degrades to the universal set.
//
// Representation: points-to sets are dense bitsets over allocation-site
// indices (plus one ⊤ bit), and the solver is a worklist with difference
// propagation — every node remembers the portion of its set already pushed
// to its successors ("done") and only the delta flows on re-visits. Nodes
// are the module's pointer values, one content node per abstract object,
// and one escape sink whose set accumulates the objects reachable from
// extern calls. Load/store constraints add copy edges lazily as the address
// sets grow, unioning the source's full current set at edge-creation time,
// which keeps difference propagation exact.
package andersen

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// Result holds the points-to solution: one bitset row per node, queried by
// pointer value. It is immutable after Analyze and safe for concurrent use.
type Result struct {
	sites  []ir.Site
	n      int // site count; bit n is the ⊤ marker
	words  int
	nodeOf map[*ir.Value]int32
	pts    []uint64 // flat rows, words per node
}

var _ alias.Analysis = (*Result)(nil)

// Name identifies the analysis.
func (r *Result) Name() string { return "andersen" }

func (r *Result) row(id int32) bitset {
	return bitset(r.pts[int(id)*r.words : (int(id)+1)*r.words])
}

// PointsTo returns the sorted site indices v may address; unknown=true
// means ⊤ (the slice is then meaningless). Constants (null) have empty
// known sets; untracked pointers are conservatively ⊤.
func (r *Result) PointsTo(v *ir.Value) (sites []int, unknown bool) {
	id, ok := r.nodeOf[v]
	if !ok {
		if v.Kind == ir.VConst {
			return nil, false
		}
		return nil, true // untracked pointer: be conservative
	}
	row := r.row(id)
	if row.has(r.n) {
		return nil, true
	}
	out := make([]int, 0, row.count())
	row.forEach(func(i int) { out = append(out, i) })
	return out, false
}

// Alias reports no-alias when both points-to sets are known and disjoint.
// With bitset rows this is a word-wise intersection test, allocation-free.
func (r *Result) Alias(p, q *ir.Value) alias.Result {
	rp, up := r.aliasRow(p)
	rq, uq := r.aliasRow(q)
	if up || uq {
		return alias.MayAlias
	}
	if rp != nil && rq != nil && rp.intersects(rq) {
		return alias.MayAlias
	}
	return alias.NoAlias
}

// aliasRow resolves a value to its solution row; a nil row with unknown
// false is the empty set (constants).
func (r *Result) aliasRow(v *ir.Value) (bitset, bool) {
	id, ok := r.nodeOf[v]
	if !ok {
		return nil, v.Kind != ir.VConst
	}
	row := r.row(id)
	return row, row.has(r.n)
}

var _ alias.SetDigester = (*Result)(nil)

// SetDigests implements alias.SetDigester: the solution rows of one
// function's pointer values copied into a flat per-function column, with the
// ⊤ marker lifted into a flag so the index pair check is a pure word-wise
// AND. Untracked values compile as unknown, exactly like aliasRow.
func (r *Result) SetDigests(f *ir.Func, universe []*ir.Value) *alias.SetColumn {
	n := len(universe)
	c := &alias.SetColumn{
		Words:   r.words,
		Rows:    make([]uint64, n*r.words),
		Unknown: make([]bool, n),
	}
	for i, v := range universe {
		id, ok := r.nodeOf[v]
		if !ok {
			c.Unknown[i] = v.Kind != ir.VConst
			continue
		}
		row := r.row(id)
		if row.has(r.n) {
			c.Unknown[i] = true
			continue
		}
		copy(c.Rows[i*r.words:(i+1)*r.words], row)
	}
	return c
}

// ---------------------------------------------------------------------------
// Constraint collection and the worklist solver.

// Node-id layout: 0 is the escape sink, 1..n are the object content nodes
// (objNode(site) = 1 + site), and pointer values follow.
const escapeNode int32 = 0

type solver struct {
	n     int // sites
	words int
	nodes int32

	nodeOf map[*ir.Value]int32

	// Static constraints, indexed by node id.
	succ   [][]int32 // copy edges src → dsts
	loads  [][]int32 // addr → load destinations
	stores [][]int32 // addr → stored values

	// edgeSeen dedupes copy edges (static and the ones load/store
	// constraints add during solving).
	edgeSeen map[uint64]struct{}

	pts  []uint64 // current sets, flat rows
	done []uint64 // already-propagated portion of pts

	queue []int32
	inQ   []bool
}

func (s *solver) objNode(site int) int32 { return 1 + int32(site) }

func (s *solver) valNode(v *ir.Value) int32 {
	if id, ok := s.nodeOf[v]; ok {
		return id
	}
	id := s.newNode()
	s.nodeOf[v] = id
	return id
}

func (s *solver) newNode() int32 {
	id := s.nodes
	s.nodes++
	s.succ = append(s.succ, nil)
	s.loads = append(s.loads, nil)
	s.stores = append(s.stores, nil)
	return id
}

func (s *solver) rowOf(arr []uint64, id int32) bitset {
	return bitset(arr[int(id)*s.words : (int(id)+1)*s.words])
}

func (s *solver) push(id int32) {
	if !s.inQ[id] {
		s.inQ[id] = true
		s.queue = append(s.queue, id)
	}
}

// addEdge installs the copy edge a → b (deduped) and, when the edge is new,
// floods a's full current set into b — required for exactness because a's
// earlier deltas predate the edge.
func (s *solver) addEdge(a, b int32) {
	if a == b {
		return
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	if _, ok := s.edgeSeen[key]; ok {
		return
	}
	s.edgeSeen[key] = struct{}{}
	s.succ[a] = append(s.succ[a], b)
	if s.pts != nil && unionInto(s.rowOf(s.pts, b), s.rowOf(s.pts, a)) {
		s.push(b)
	}
}

// Analyze runs the constraint solver over the module.
func Analyze(m *ir.Module) *Result {
	s := &solver{
		nodeOf:   map[*ir.Value]int32{},
		edgeSeen: map[uint64]struct{}{},
	}
	sites := m.AllocSites()
	s.n = len(sites)
	s.words = bitsetWords(s.n + 1)

	siteOf := map[*ir.Instr]int{}
	gsite := map[*ir.Global]int{}
	for _, st := range sites {
		if st.Instr != nil {
			siteOf[st.Instr] = st.ID
		} else {
			gsite[st.Global] = st.ID
		}
	}

	// Escape sink and object content nodes.
	s.newNode()
	for i := 0; i < s.n; i++ {
		s.newNode()
	}

	// Seeds are recorded during collection and applied once rows exist.
	type seedC struct {
		node int32
		bit  int
	}
	var seeds []seedC
	seed := func(v *ir.Value, bit int) {
		seeds = append(seeds, seedC{s.valNode(v), bit})
	}
	unknownBit := s.n

	calledParams := map[*ir.Value]bool{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAlloc:
					seed(in.Res, siteOf[in])
				case ir.OpCopy, ir.OpPi, ir.OpFree:
					if in.Res.Typ == ir.TPtr {
						s.addEdge(s.valNode(in.Args[0]), s.valNode(in.Res))
					}
				case ir.OpPtrAdd:
					s.addEdge(s.valNode(in.Args[0]), s.valNode(in.Res))
				case ir.OpPhi:
					if in.Res.Typ == ir.TPtr {
						for _, a := range in.Args {
							s.addEdge(s.valNode(a), s.valNode(in.Res))
						}
					}
				case ir.OpLoad:
					if in.Res.Typ == ir.TPtr {
						addr := s.valNode(in.Args[0])
						s.loads[addr] = append(s.loads[addr], s.valNode(in.Res))
					}
				case ir.OpStore:
					if in.Args[1].Typ == ir.TPtr {
						addr := s.valNode(in.Args[0])
						s.stores[addr] = append(s.stores[addr], s.valNode(in.Args[1]))
					}
				case ir.OpCall:
					for i, a := range in.Args {
						p := in.Callee.Params[i]
						if p.Typ == ir.TPtr {
							s.addEdge(s.valNode(a), s.valNode(p))
							calledParams[p] = true
						}
					}
				case ir.OpExtern:
					// Arguments escape to unknown memory; results are ⊤.
					for _, a := range in.Args {
						if a.Typ == ir.TPtr {
							s.addEdge(s.valNode(a), escapeNode)
						}
					}
					if in.Res != nil && in.Res.Typ == ir.TPtr {
						seed(in.Res, unknownBit)
					}
				}
			}
		}
	}
	// Return values flow to call results.
	rets := map[*ir.Func][]*ir.Value{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpRet && len(in.Args) == 1 && in.Args[0].Typ == ir.TPtr {
					rets[f] = append(rets[f], in.Args[0])
				}
			}
		}
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Res != nil && in.Res.Typ == ir.TPtr {
					if len(rets[in.Callee]) == 0 {
						seed(in.Res, unknownBit)
					}
					for _, rv := range rets[in.Callee] {
						s.addEdge(s.valNode(rv), s.valNode(in.Res))
					}
				}
			}
		}
	}
	// Globals are address-taken roots; parameters of externally callable
	// functions are ⊤.
	for _, f := range m.Funcs {
		for _, p := range f.Params {
			if p.Typ == ir.TPtr && !calledParams[p] {
				seed(p, unknownBit)
			}
		}
	}
	for _, g := range m.Globals {
		seed(g.Addr, gsite[g])
	}

	// Rows exist now: apply seeds and run the worklist.
	s.pts = make([]uint64, int(s.nodes)*s.words)
	s.done = make([]uint64, int(s.nodes)*s.words)
	s.inQ = make([]bool, s.nodes)
	for _, sd := range seeds {
		if s.rowOf(s.pts, sd.node).set(sd.bit) {
			s.push(sd.node)
		}
	}
	s.solve()

	return &Result{
		sites:  sites,
		n:      s.n,
		words:  s.words,
		nodeOf: s.nodeOf,
		pts:    s.pts,
	}
}

// solve drains the worklist with difference propagation: each visit
// processes only the bits that arrived since the node was last propagated.
func (s *solver) solve() {
	var delta bitset = make([]uint64, s.words)
	for len(s.queue) > 0 {
		v := s.queue[0]
		s.queue = s.queue[1:]
		s.inQ[v] = false

		cur := s.rowOf(s.pts, v)
		done := s.rowOf(s.done, v)
		changed := false
		for w := range cur {
			delta[w] = cur[w] &^ done[w]
			if delta[w] != 0 {
				changed = true
			}
			done[w] = cur[w]
		}
		if !changed {
			continue
		}

		// Complex constraints: the delta's objects materialize copy edges.
		if len(s.loads[v]) > 0 || len(s.stores[v]) > 0 {
			hasUnknown := delta.has(s.n)
			delta.forEach(func(bit int) {
				if bit >= s.n {
					return
				}
				o := s.objNode(bit)
				for _, dst := range s.loads[v] {
					s.addEdge(o, dst)
				}
				for _, val := range s.stores[v] {
					s.addEdge(val, o)
				}
			})
			if hasUnknown {
				// Loading through ⊤ yields ⊤; storing through ⊤ makes the
				// stored values' objects escape entirely.
				for _, dst := range s.loads[v] {
					if s.rowOf(s.pts, dst).set(s.n) {
						s.push(dst)
					}
				}
				for _, val := range s.stores[v] {
					s.addEdge(val, escapeNode)
				}
			}
		}

		// Copy-edge propagation of the delta.
		for _, d := range s.succ[v] {
			if unionInto(s.rowOf(s.pts, d), delta) {
				s.push(d)
			}
		}

		// Escape closure: objects reaching the sink hold ⊤-contaminated
		// cells whose contents escape transitively.
		if v == escapeNode {
			delta.forEach(func(bit int) {
				if bit >= s.n {
					return
				}
				o := s.objNode(bit)
				if s.rowOf(s.pts, o).set(s.n) {
					s.push(o)
				}
				s.addEdge(o, escapeNode)
			})
		}
	}
}

// Sites exposes the allocation-site table the solution is indexed by.
func (r *Result) Sites() []ir.Site { return r.sites }
