// Package andersen implements an inclusion-based (Andersen-style) points-to
// analysis: flow- and context-insensitive, field-insensitive, with abstract
// objects per allocation site and global. Unlike the paper's GR analysis it
// *does* track pointers through memory (store/load constraints), which is
// exactly the complementary capability §3.4 alludes to ("a typical
// compilation infra-structure already contains analyses that are able to
// track the propagation of pointer information throughout memory").
//
// The package serves two roles:
//
//  1. a standalone alias analysis (disjoint points-to sets ⇒ no-alias),
//     realizing the paper's related-work proposal that classic points-to
//     algorithms be combined with the range representation;
//  2. a refinement oracle for GR: with pointer.Options.PointsTo set, loads
//     of pointers get the loaded set's sites with unknown offsets instead
//     of ⊤ — restoring support-disjointness answers for pointers that
//     round-trip through memory.
//
// Soundness: anything that reaches an extern call, or is loaded from
// memory an extern may have written, degrades to the universal set.
package andersen

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// unknownObj is the universal abstract object: a pointer that may address
// anything (extern results, loads from unanalyzable memory).
const unknownObj = -1

// Result holds the points-to solution.
type Result struct {
	sites []ir.Site
	// pts maps pointer values to site-id sets; unknownObj marks ⊤.
	pts map[*ir.Value]map[int]bool
	// objPts maps abstract objects to the site-id sets their cells may hold.
	objPts map[int]map[int]bool
}

var _ alias.Analysis = (*Result)(nil)

// Name identifies the analysis.
func (r *Result) Name() string { return "andersen" }

// PointsTo returns the site-id set of v; unknown=true means ⊤ (the set is
// then meaningless). Constants (null) have empty sets.
func (r *Result) PointsTo(v *ir.Value) (set map[int]bool, unknown bool) {
	s := r.pts[v]
	if s == nil {
		if v.Kind == ir.VConst {
			return nil, false
		}
		return nil, true // untracked pointer: be conservative
	}
	return s, s[unknownObj]
}

// Alias reports no-alias when both points-to sets are known and disjoint.
func (r *Result) Alias(p, q *ir.Value) alias.Result {
	sp, up := r.PointsTo(p)
	sq, uq := r.PointsTo(q)
	if up || uq {
		return alias.MayAlias
	}
	for o := range sp {
		if sq[o] {
			return alias.MayAlias
		}
	}
	return alias.NoAlias
}

// Analyze runs the constraint solver over the module.
func Analyze(m *ir.Module) *Result {
	r := &Result{
		sites:  m.AllocSites(),
		pts:    map[*ir.Value]map[int]bool{},
		objPts: map[int]map[int]bool{},
	}
	siteOf := map[*ir.Instr]int{}
	gsite := map[*ir.Global]int{}
	for _, s := range r.sites {
		if s.Instr != nil {
			siteOf[s.Instr] = s.ID
		} else {
			gsite[s.Global] = s.ID
		}
	}

	// Subset constraints dst ⊇ src between pointer values; complex
	// (load/store) constraints are re-evaluated as sets grow.
	type edge struct{ src, dst *ir.Value }
	var copies []edge
	type loadC struct{ addr, dst *ir.Value }
	type storeC struct{ addr, val *ir.Value }
	var loads []loadC
	var stores []storeC
	var escapes []*ir.Value // pointer values handed to extern calls

	addCopy := func(dst, src *ir.Value) { copies = append(copies, edge{src, dst}) }
	seed := func(v *ir.Value, obj int) {
		s := r.pts[v]
		if s == nil {
			s = map[int]bool{}
			r.pts[v] = s
		}
		s[obj] = true
	}

	calledParams := map[*ir.Value]bool{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAlloc:
					seed(in.Res, siteOf[in])
				case ir.OpCopy, ir.OpPi, ir.OpFree:
					if in.Res.Typ == ir.TPtr {
						addCopy(in.Res, in.Args[0])
					}
				case ir.OpPtrAdd:
					addCopy(in.Res, in.Args[0])
				case ir.OpPhi:
					if in.Res.Typ == ir.TPtr {
						for _, a := range in.Args {
							addCopy(in.Res, a)
						}
					}
				case ir.OpLoad:
					if in.Res.Typ == ir.TPtr {
						loads = append(loads, loadC{in.Args[0], in.Res})
					}
				case ir.OpStore:
					if in.Args[1].Typ == ir.TPtr {
						stores = append(stores, storeC{in.Args[0], in.Args[1]})
					}
				case ir.OpCall:
					for i, a := range in.Args {
						p := in.Callee.Params[i]
						if p.Typ == ir.TPtr {
							addCopy(p, a)
							calledParams[p] = true
						}
					}
				case ir.OpExtern:
					// Arguments escape to unknown memory; results are ⊤.
					for _, a := range in.Args {
						if a.Typ == ir.TPtr {
							escapes = append(escapes, a)
						}
					}
					if in.Res != nil && in.Res.Typ == ir.TPtr {
						seed(in.Res, unknownObj)
					}
				case ir.OpRet:
					if len(in.Args) == 1 && in.Args[0].Typ == ir.TPtr {
						// Connected to call results below.
					}
				}
			}
		}
	}
	// Return values flow to call results.
	rets := map[*ir.Func][]*ir.Value{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpRet && len(in.Args) == 1 && in.Args[0].Typ == ir.TPtr {
					rets[f] = append(rets[f], in.Args[0])
				}
			}
		}
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Res != nil && in.Res.Typ == ir.TPtr {
					if len(rets[in.Callee]) == 0 {
						seed(in.Res, unknownObj)
					}
					for _, rv := range rets[in.Callee] {
						addCopy(in.Res, rv)
					}
				}
			}
		}
	}
	// Globals are address-taken roots; parameters of externally callable
	// functions are ⊤.
	for _, f := range m.Funcs {
		for _, p := range f.Params {
			if p.Typ == ir.TPtr && !calledParams[p] {
				seed(p, unknownObj)
			}
		}
	}
	for _, g := range m.Globals {
		seed(g.Addr, gsite[g])
	}

	// Fixpoint: propagate copies and evaluate load/store constraints until
	// stable. Cubic worst case; modules here are small enough.
	union := func(dst map[int]bool, src map[int]bool) bool {
		changed := false
		for o := range src {
			if !dst[o] {
				dst[o] = true
				changed = true
			}
		}
		return changed
	}
	getSet := func(v *ir.Value) map[int]bool {
		s := r.pts[v]
		if s == nil {
			s = map[int]bool{}
			r.pts[v] = s
		}
		return s
	}
	objSet := func(o int) map[int]bool {
		s := r.objPts[o]
		if s == nil {
			s = map[int]bool{}
			r.objPts[o] = s
		}
		return s
	}
	// escaped objects: reachable by an extern call, which may overwrite
	// their cells with anything and may store their addresses anywhere.
	escaped := map[int]bool{}
	markEscaped := func(o int) bool {
		if o == unknownObj || escaped[o] {
			return false
		}
		escaped[o] = true
		return true
	}
	unknownSet := map[int]bool{unknownObj: true}
	for changed := true; changed; {
		changed = false
		for _, e := range copies {
			if union(getSet(e.dst), getSet(e.src)) {
				changed = true
			}
		}
		for _, st := range stores {
			av := getSet(st.addr)
			vv := getSet(st.val)
			if av[unknownObj] {
				// Storing through ⊤: the stored values escape entirely.
				for o := range vv {
					if markEscaped(o) {
						changed = true
					}
				}
				continue
			}
			for o := range av {
				if o == unknownObj {
					continue
				}
				if union(objSet(o), vv) {
					changed = true
				}
			}
		}
		for _, ld := range loads {
			av := getSet(ld.addr)
			if av[unknownObj] {
				if union(getSet(ld.dst), unknownSet) {
					changed = true
				}
				continue
			}
			for o := range av {
				if o == unknownObj {
					continue
				}
				if union(getSet(ld.dst), objSet(o)) {
					changed = true
				}
			}
		}
		// Escape closure: everything an extern argument points to escapes;
		// escaped objects hold ⊤-contaminated cells whose contents escape
		// transitively.
		for _, v := range escapes {
			for o := range getSet(v) {
				if markEscaped(o) {
					changed = true
				}
			}
		}
		for o := range escaped {
			if union(objSet(o), unknownSet) {
				changed = true
			}
			for o2 := range objSet(o) {
				if markEscaped(o2) {
					changed = true
				}
			}
		}
	}
	return r
}
