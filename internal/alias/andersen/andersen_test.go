package andersen

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/progs"
	"repro/internal/ssa"
)

func find(t *testing.T, f *ir.Func, name string) *ir.Value {
	t.Helper()
	for _, v := range f.Values() {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("value %s not found:\n%s", name, f)
	return nil
}

func TestDistinctMallocsDisjoint(t *testing.T) {
	m := progs.TwoBuffers()
	a := Analyze(m)
	f := m.Func("fill")
	p, q := find(t, f, "p"), find(t, f, "q")
	if a.Alias(p, q) != alias.NoAlias {
		t.Error("distinct mallocs must have disjoint points-to sets")
	}
	if a.Alias(p, p) != alias.MayAlias {
		t.Error("p vs p must be may-alias")
	}
}

func TestTracksThroughMemory(t *testing.T) {
	// q = malloc; *cell = q; r = loadp(cell): pts(r) must include q's site
	// — the capability GR deliberately lacks (loads are ⊤ in Fig. 9).
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	cell := b.Alloca(1, "cell")
	q := b.Malloc(f.Params[0], "q")
	other := b.Malloc(f.Params[0], "other")
	b.Store(cell, q)
	r := b.Load(ir.TPtr, cell, "r")
	b.Store(r, b.Int(1))
	b.Ret(nil)

	a := Analyze(m)
	set, unknown := a.PointsTo(r)
	if unknown {
		t.Fatalf("pts(r) must be known")
	}
	if len(set) != 1 {
		t.Fatalf("pts(r) = %v, want exactly q's site", set)
	}
	if a.Alias(r, q) != alias.MayAlias {
		t.Error("r and q must may-alias (same object)")
	}
	if a.Alias(r, other) != alias.NoAlias {
		t.Error("r and other must be no-alias")
	}
}

func TestExternPoisonsReachableMemory(t *testing.T) {
	// After publish(cell), a pointer loaded from cell is unknown.
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	cell := b.Alloca(1, "cell")
	q := b.Malloc(f.Params[0], "q")
	b.Store(cell, q)
	b.Extern("publish", ir.TVoid, "", cell)
	r := b.Load(ir.TPtr, cell, "r")
	b.Store(r, b.Int(1))
	b.Ret(nil)

	a := Analyze(m)
	if _, unknown := a.PointsTo(r); !unknown {
		t.Error("load from escaped memory must be ⊤")
	}
}

func TestEscapeIsTransitive(t *testing.T) {
	// outer holds a pointer to inner's cell; publishing outer poisons
	// loads from inner too.
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	outer := b.Alloca(1, "outer")
	inner := b.Alloca(1, "inner")
	q := b.Malloc(f.Params[0], "q")
	b.Store(inner, q)
	b.Store(outer, inner)
	b.Extern("publish", ir.TVoid, "", outer)
	r := b.Load(ir.TPtr, inner, "r")
	b.Store(r, b.Int(1))
	b.Ret(nil)

	a := Analyze(m)
	if _, unknown := a.PointsTo(r); !unknown {
		t.Error("escape must close transitively through stored pointers")
	}
}

func TestUncalledParamsUnknown(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	b.Store(f.Params[0], b.Int(1))
	b.Ret(nil)
	a := Analyze(m)
	if _, unknown := a.PointsTo(f.Params[0]); !unknown {
		t.Error("externally callable parameter must be ⊤")
	}
}

func TestInterproceduralFlow(t *testing.T) {
	m := progs.MessageBuffer()
	a := Analyze(m)
	prepare := m.Func("prepare")
	// p receives main's first malloc; m receives the second.
	sp, up := a.PointsTo(prepare.Params[0])
	sm, um := a.PointsTo(prepare.Params[2])
	if up || um {
		t.Fatalf("linked params must be known")
	}
	if a.Alias(prepare.Params[0], prepare.Params[2]) != alias.NoAlias {
		t.Errorf("p (%v) and m (%v) must be disjoint", sp, sm)
	}
}

// TestPointsToRefinesGRLoads: the related-work combination — with the
// oracle, a pointer reloaded from memory keeps a usable support instead of
// ⊤, so GR can again separate it from unrelated allocations.
func TestPointsToRefinesGRLoads(t *testing.T) {
	build := func() (*ir.Module, *ir.Value, *ir.Value) {
		m := ir.NewModule("t")
		f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
		b := ir.NewBuilder(f)
		blk := b.Block("entry")
		b.SetBlock(blk)
		cell := b.Alloca(1, "cell")
		q := b.Malloc(f.Params[0], "q")
		other := b.Malloc(f.Params[0], "other")
		b.Store(cell, q)
		r := b.Load(ir.TPtr, cell, "r")
		b.Store(r, b.Int(1))
		b.Store(other, b.Int(2))
		b.Ret(nil)
		ssa.InsertPi(f)
		return m, r, other
	}

	// Without the oracle: load is ⊤, query is may.
	m1, r1, o1 := build()
	plain := pointer.Analyze(m1, pointer.Options{})
	if ans, _ := plain.Query(r1, o1); ans != pointer.MayAlias {
		t.Fatalf("without oracle: want may-alias (loads are ⊤)")
	}
	// With the oracle: support {q} vs {other} — disjoint.
	m2, r2, o2 := build()
	pt := Analyze(m2)
	refined := pointer.Analyze(m2, pointer.Options{PointsTo: pt})
	ans, why := refined.Query(r2, o2)
	if ans != pointer.NoAlias {
		t.Fatalf("with oracle: want no-alias, got %s (GR(r)=%s)", ans, refined.GR.Value(r2))
	}
	if why != pointer.ReasonDisjointSupport {
		t.Errorf("attribution = %s, want disjoint-support", why)
	}
}

// TestBitsetSolverProperties: representation-level invariants of the bitset
// solver on a corpus module — symmetric Alias answers, sorted PointsTo
// output, self-queries never no-alias, and deterministic re-analysis.
func TestBitsetSolverProperties(t *testing.T) {
	m := progs.MessageBuffer()
	a1 := Analyze(m)
	a2 := Analyze(m)
	for _, f := range m.Funcs {
		vals := f.Values()
		for _, v := range vals {
			if v.Typ != ir.TPtr {
				continue
			}
			s1, u1 := a1.PointsTo(v)
			s2, u2 := a2.PointsTo(v)
			if u1 != u2 || len(s1) != len(s2) {
				t.Fatalf("re-analysis diverged for %s", v.Name)
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("re-analysis diverged for %s", v.Name)
				}
				if i > 0 && s1[i-1] >= s1[i] {
					t.Fatalf("PointsTo(%s) not sorted ascending: %v", v.Name, s1)
				}
			}
			if !u1 && len(s1) > 0 && a1.Alias(v, v) != alias.MayAlias {
				t.Fatalf("%s must may-alias itself", v.Name)
			}
		}
		for i, p := range vals {
			if p.Typ != ir.TPtr {
				continue
			}
			for _, q := range vals[i+1:] {
				if q.Typ != ir.TPtr {
					continue
				}
				if a1.Alias(p, q) != a1.Alias(q, p) {
					t.Fatalf("Alias(%s,%s) not symmetric", p.Name, q.Name)
				}
			}
		}
	}
}
