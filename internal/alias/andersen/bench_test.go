package andersen

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/benchgen"
)

// Solver benchmarks over the synthetic corpus: the constraint solve runs on
// every module build, so its allocation profile feeds straight into service
// build latency and async-build throughput.

func BenchmarkAnalyze(b *testing.B) {
	m := benchgen.Generate(benchgen.Fig13Configs()[1]) // espresso, the largest
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Analyze(m)
		if r == nil {
			b.Fatal("nil result")
		}
	}
}

func BenchmarkAlias(b *testing.B) {
	m := benchgen.Generate(benchgen.Fig13Configs()[1])
	r := Analyze(m)
	qs := alias.Queries(m)
	if len(qs) == 0 {
		b.Skip("no pointer pairs")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		_ = r.Alias(q.P, q.Q)
	}
}
