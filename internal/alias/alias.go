// Package alias defines the common interface of the alias analyses compared
// in §4 of the paper (rbaa, basic, scev), the query-enumeration harness that
// produces the #Queries column of Fig. 13, and analysis combination
// (the "r + b" column).
package alias

import (
	"sort"

	"repro/internal/ir"
)

// Result of one disambiguation query.
type Result uint8

// Query outcomes.
const (
	MayAlias Result = iota
	NoAlias
)

// String renders the result.
func (r Result) String() string {
	if r == NoAlias {
		return "no-alias"
	}
	return "may-alias"
}

// Analysis answers may/no alias for two pointer values of the same module.
// Implementations must be sound: NoAlias only when the pointers can never
// address the same memory unit (for the local/rbaa notion, at the same
// moment — see pointer.LRResult).
type Analysis interface {
	Name() string
	Alias(p, q *ir.Value) Result
}

// Pair is one alias query.
type Pair struct {
	P, Q *ir.Value
}

// Queries enumerates the disambiguation queries of a module the way the
// paper's evaluation does: all unordered pairs of distinct pointer-typed
// values within the same function (parameters and instruction results).
func Queries(m *ir.Module) []Pair {
	var out []Pair
	for _, f := range m.Funcs {
		var ptrs []*ir.Value
		for _, v := range f.Values() {
			if v.Typ == ir.TPtr {
				ptrs = append(ptrs, v)
			}
		}
		for i := 0; i < len(ptrs); i++ {
			for j := i + 1; j < len(ptrs); j++ {
				out = append(out, Pair{ptrs[i], ptrs[j]})
			}
		}
	}
	return out
}

// NumQueries counts the queries of a module without materializing them.
func NumQueries(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		p := 0
		for _, v := range f.Values() {
			if v.Typ == ir.TPtr {
				p++
			}
		}
		n += p * (p - 1) / 2
	}
	return n
}

// Combined is the disjunction of analyses: no-alias if any member proves it
// (sound because each member is sound). It implements the "r + b" column.
type Combined struct {
	Members []Analysis
	Label   string
}

// Name returns the combination label.
func (c *Combined) Name() string { return c.Label }

// Alias returns NoAlias if any member does.
func (c *Combined) Alias(p, q *ir.Value) Result {
	for _, m := range c.Members {
		if m.Alias(p, q) == NoAlias {
			return NoAlias
		}
	}
	return MayAlias
}

// Count runs every query of m against each analysis and reports the
// per-analysis number of no-alias answers, keyed by Name().
func Count(m *ir.Module, analyses ...Analysis) (queries int, noalias map[string]int) {
	noalias = map[string]int{}
	qs := Queries(m)
	for _, q := range qs {
		for _, a := range analyses {
			if a.Alias(q.P, q.Q) == NoAlias {
				noalias[a.Name()]++
			}
		}
	}
	return len(qs), noalias
}

// Names returns the sorted analysis names of a count map (table rendering).
func Names(counts map[string]int) []string {
	out := make([]string, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
