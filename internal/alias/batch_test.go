package alias_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/alias"
	"repro/internal/benchgen"
)

// TestManagerBatchedCountersMatchSequentialReplay models the aliasd
// workload: batches drawn with replacement from the query set (so batches
// overlap and replay pairs, exercising the memo cache) are evaluated by
// concurrent workers through a read-only Snapshot. Every counter the
// /v1/stats endpoint reports — queries, cache hits, computed, no-alias,
// per-member counts, first-wins attribution, and the Fig. 14 detail
// histograms — must equal a sequential replay of the exact same multiset of
// queries on a twin manager.
func TestManagerBatchedCountersMatchSequentialReplay(t *testing.T) {
	m := benchgen.Generate(benchgen.Fig13Configs()[9]) // fixoutput: small, rich verdict mix
	qs := alias.Queries(m)
	if len(qs) < 10 {
		t.Fatalf("fixture too small: %d queries", len(qs))
	}

	// Deterministic batches with duplicates: 64 batches × 128 pairs.
	rng := rand.New(rand.NewSource(42))
	const nBatches, batchSize = 64, 128
	batches := make([][]alias.Pair, nBatches)
	for b := range batches {
		batches[b] = make([]alias.Pair, batchSize)
		for i := range batches[b] {
			q := qs[rng.Intn(len(qs))]
			if rng.Intn(2) == 0 { // both orientations must canonicalize
				q.P, q.Q = q.Q, q.P
			}
			batches[b][i] = q
		}
	}

	// Concurrent run: workers pull whole batches via the snapshot handle.
	concurrent := newTestManager(m, alias.ManagerOptions{})
	snap := concurrent.Snapshot()
	if !snap.Valid() {
		t.Fatal("snapshot of a live manager reports invalid")
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				for _, q := range batches[b] {
					snap.Evaluate(q.P, q.Q)
				}
			}
		}()
	}
	for b := range batches {
		next <- b
	}
	close(next)
	wg.Wait()

	// Sequential replay of the same multiset on a twin manager.
	sequential := newTestManager(m, alias.ManagerOptions{})
	for _, batch := range batches {
		for _, q := range batch {
			sequential.Evaluate(q.P, q.Q)
		}
	}

	got, want := snap.Stats(), sequential.Stats()
	if got.Queries != int64(nBatches*batchSize) {
		t.Errorf("queries = %d, want %d", got.Queries, nBatches*batchSize)
	}
	if got.CacheHits+got.Computed != got.Queries {
		t.Errorf("cache hits %d + computed %d != queries %d", got.CacheHits, got.Computed, got.Queries)
	}
	if got.CacheHits == 0 {
		t.Error("no cache hits despite replayed batches; fixture does not exercise the cache")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("concurrent batched stats diverge from sequential replay\n got: %+v\nwant: %+v", got, want)
	}
	if rate := got.CacheHitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("cache hit rate = %v, want in (0, 1)", rate)
	}

	// The snapshot is a pure view: its verdicts must match the manager's.
	for _, q := range qs[:10] {
		if !sameVerdict(snap.Evaluate(q.P, q.Q), concurrent.Evaluate(q.P, q.Q)) {
			t.Fatalf("snapshot verdict diverges from manager for %s,%s", q.P.Name, q.Q.Name)
		}
	}
	if snap.Name() != concurrent.Name() || snap.NumMembers() != concurrent.NumMembers() {
		t.Error("snapshot metadata diverges from manager")
	}
	for i := 0; i < snap.NumMembers(); i++ {
		if snap.MemberName(i) != concurrent.MemberName(i) {
			t.Errorf("snapshot member %d = %q, manager %q", i, snap.MemberName(i), concurrent.MemberName(i))
		}
	}
	var zero alias.Snapshot
	if zero.Valid() {
		t.Error("zero snapshot reports valid")
	}
}
