// Package basicaa reimplements the decision rules of LLVM's "basic" alias
// analysis, the strongest baseline of the paper's evaluation (§4 quotes its
// documented heuristics):
//
//   - distinct globals, stack allocations and heap allocations never alias;
//   - allocations never alias the null pointer;
//   - different fields of a structure do not alias, and indexes into arrays
//     with statically differing subscripts cannot alias (both reduce, after
//     lowering, to same-base accesses at different constant offsets);
//   - function calls cannot reference stack allocations that never escape
//     (here in its aliasing form: a pointer of unknown provenance cannot
//     point into a non-escaping allocation).
//
// Like its model, the analysis reasons about *underlying objects* reached by
// walking copies, π-nodes and constant-offset pointer arithmetic — it has no
// range information, which is exactly the gap rbaa fills.
package basicaa

import (
	"repro/internal/alias"
	"repro/internal/ir"
)

// Analysis is a per-module basic alias analysis.
type Analysis struct {
	escaped map[*ir.Instr]bool // alloc instructions whose address escapes
}

var _ alias.Analysis = (*Analysis)(nil)

// New builds the analysis for a module (computes the escape set).
func New(m *ir.Module) *Analysis {
	a := &Analysis{escaped: map[*ir.Instr]bool{}}
	a.computeEscapes(m)
	return a
}

// Name returns "basic" (Fig. 13 column).
func (a *Analysis) Name() string { return "basic" }

// object is the result of underlying-object resolution.
type object struct {
	root   *ir.Value // allocation result, global, param, load/call result…
	offset int64     // accumulated constant offset from root
	exact  bool      // offset is exactly known
	sawPhi bool      // resolution stopped at a φ
}

// resolve walks v to its underlying object through copies, π-nodes and
// pointer arithmetic, accumulating constant offsets.
func resolve(v *ir.Value) object {
	o := object{root: v, exact: true}
	for steps := 0; steps < 1000; steps++ {
		if o.root.Kind != ir.VInstr {
			return o
		}
		in := o.root.Def
		switch in.Op {
		case ir.OpCopy, ir.OpPi:
			o.root = in.Args[0]
		case ir.OpPtrAdd:
			if c, ok := in.Args[1].IsConst(); ok {
				o.offset += c
			} else {
				o.exact = false
			}
			o.root = in.Args[0]
		case ir.OpPhi:
			o.sawPhi = true
			return o
		default:
			return o
		}
	}
	return o
}

// identified reports whether a root is an identified object (an allocation
// site or a global) — something with known, unique storage.
func identified(root *ir.Value) bool {
	if root.Kind == ir.VGlobal {
		return true
	}
	return root.Kind == ir.VInstr && root.Def.Op == ir.OpAlloc
}

// isNull reports whether the root is the null literal.
func isNull(root *ir.Value) bool {
	c, ok := root.IsConst()
	return ok && root.Typ == ir.TPtr && c == 0
}

// Alias applies the basicaa decision rules.
func (a *Analysis) Alias(p, q *ir.Value) alias.Result {
	op := resolve(p)
	oq := resolve(q)
	if op.sawPhi || oq.sawPhi {
		return alias.MayAlias
	}

	// Null aliases nothing with storage.
	if isNull(op.root) && (identified(oq.root) || isNull(oq.root)) {
		return alias.NoAlias
	}
	if isNull(oq.root) && identified(op.root) {
		return alias.NoAlias
	}

	if op.root == oq.root {
		// Same object: constant, exactly-known offsets that differ cannot
		// overlap a unit access (struct fields / constant array indexes).
		if op.exact && oq.exact && op.offset != oq.offset {
			return alias.NoAlias
		}
		return alias.MayAlias
	}

	pid, qid := identified(op.root), identified(oq.root)
	// Two distinct identified objects never alias.
	if pid && qid {
		return alias.NoAlias
	}
	// A non-escaping allocation cannot be reached from a pointer of unknown
	// provenance (parameter, load, call result).
	if pid && !a.hasEscaped(op.root) && unknownProvenance(oq.root) {
		return alias.NoAlias
	}
	if qid && !a.hasEscaped(oq.root) && unknownProvenance(op.root) {
		return alias.NoAlias
	}
	return alias.MayAlias
}

var _ alias.ClassDigester = (*Analysis)(nil)

// ClassDigests implements alias.ClassDigester: one underlying-object
// resolution per universe value, compiled into the flat class column the
// alias.Index replays the decision rules over. The root value, offset and
// flags carry exactly what Alias consults, so the index verdict is
// identical to a live query.
func (a *Analysis) ClassDigests(f *ir.Func, universe []*ir.Value) *alias.ClassColumn {
	n := len(universe)
	c := &alias.ClassColumn{
		Root:  make([]*ir.Value, n),
		Off:   make([]int64, n),
		Flags: make([]alias.ClassFlags, n),
	}
	for i, v := range universe {
		o := resolve(v)
		c.Root[i] = o.root
		c.Off[i] = o.offset
		var fl alias.ClassFlags
		if o.exact {
			fl |= alias.ClassExact
		}
		if o.sawPhi {
			fl |= alias.ClassSawPhi
		}
		if isNull(o.root) {
			fl |= alias.ClassRootNull
		}
		if identified(o.root) {
			fl |= alias.ClassRootIdent
			if a.hasEscaped(o.root) {
				fl |= alias.ClassRootEscaped
			}
		}
		if unknownProvenance(o.root) {
			fl |= alias.ClassRootUnknown
		}
		c.Flags[i] = fl
	}
	return c
}

// unknownProvenance reports whether a root's value comes from outside the
// function's visible dataflow (so it can only point to escaped storage).
func unknownProvenance(root *ir.Value) bool {
	switch root.Kind {
	case ir.VParam:
		return true
	case ir.VInstr:
		switch root.Def.Op {
		case ir.OpLoad, ir.OpCall, ir.OpExtern:
			return true
		}
	}
	return false
}

// hasEscaped reports whether an identified object's address escapes.
// Globals always escape (visible to everything).
func (a *Analysis) hasEscaped(root *ir.Value) bool {
	if root.Kind == ir.VGlobal {
		return true
	}
	return a.escaped[root.Def]
}

// computeEscapes marks allocations whose address (or any derived pointer)
// is stored as a value, passed to a call/extern, or returned.
func (a *Analysis) computeEscapes(m *ir.Module) {
	// derived[v] = the set of alloc instructions v may carry, limited to
	// direct derivation chains (copies, π, ptradd, φ).
	derived := map[*ir.Value]map[*ir.Instr]bool{}
	get := func(v *ir.Value) map[*ir.Instr]bool { return derived[v] }
	addAll := func(dst *ir.Value, src map[*ir.Instr]bool) bool {
		if len(src) == 0 {
			return false
		}
		d := derived[dst]
		if d == nil {
			d = map[*ir.Instr]bool{}
			derived[dst] = d
		}
		changed := false
		for k := range src {
			if !d[k] {
				d[k] = true
				changed = true
			}
		}
		return changed
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAlloc {
					derived[in.Res] = map[*ir.Instr]bool{in: true}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Res == nil || in.Res.Typ != ir.TPtr {
						continue
					}
					switch in.Op {
					case ir.OpCopy, ir.OpPi, ir.OpPtrAdd, ir.OpFree:
						if addAll(in.Res, get(in.Args[0])) {
							changed = true
						}
					case ir.OpPhi:
						for _, arg := range in.Args {
							if addAll(in.Res, get(arg)) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	markEscape := func(v *ir.Value) {
		for site := range get(v) {
			a.escaped[site] = true
		}
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStore:
					// Storing the pointer *as a value* leaks it; storing
					// through it does not.
					if in.Args[1].Typ == ir.TPtr {
						markEscape(in.Args[1])
					}
				case ir.OpCall, ir.OpExtern:
					for _, arg := range in.Args {
						if arg.Typ == ir.TPtr {
							markEscape(arg)
						}
					}
				case ir.OpRet:
					if len(in.Args) == 1 && in.Args[0].Typ == ir.TPtr {
						markEscape(in.Args[0])
					}
				}
			}
		}
	}
}
