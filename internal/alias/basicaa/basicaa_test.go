package basicaa

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/progs"
)

func find(t *testing.T, f *ir.Func, name string) *ir.Value {
	t.Helper()
	for _, v := range f.Values() {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("value %s not found:\n%s", name, f)
	return nil
}

func TestDistinctAllocationsNeverAlias(t *testing.T) {
	m := progs.TwoBuffers()
	a := New(m)
	f := m.Func("fill")
	p := find(t, f, "p")
	q := find(t, f, "q")
	if a.Alias(p, q) != alias.NoAlias {
		t.Error("two distinct mallocs must be no-alias")
	}
}

func TestConstantFieldOffsets(t *testing.T) {
	m := progs.StructFields()
	a := New(m)
	f := m.Func("init")
	fa := find(t, f, "fa")
	fb := find(t, f, "fb")
	fc := find(t, f, "fc")
	if a.Alias(fa, fb) != alias.NoAlias || a.Alias(fb, fc) != alias.NoAlias {
		t.Error("distinct constant fields must be no-alias")
	}
	// Field vs its own base at equal offset: may.
	s := find(t, f, "s")
	if a.Alias(fa, s) != alias.MayAlias {
		t.Error("s+0 vs s must be may-alias")
	}
}

func TestSymbolicOffsetsDefeatBasic(t *testing.T) {
	// The message-buffer stores are beyond basicaa: same base, symbolic
	// offsets. This is the precision gap rbaa closes (§2).
	m := progs.MessageBuffer()
	a := New(m)
	prepare := m.Func("prepare")
	var stores []*ir.Value
	for _, in := range prepare.Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in.Args[0])
		}
	}
	if a.Alias(stores[0], stores[2]) != alias.MayAlias {
		t.Error("basicaa should NOT disambiguate the two loops of Fig. 1")
	}
}

func TestNullNeverAliasesAllocations(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	p := b.Malloc(b.Int(4), "p")
	b.Ret(nil)
	a := New(m)
	if a.Alias(m.Null(), p) != alias.NoAlias {
		t.Error("null vs malloc must be no-alias")
	}
}

func TestNonEscapingAllocaVsParam(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	local := b.Alloca(4, "local")
	b.Store(local, b.Int(1))
	b.Store(f.Params[0], b.Int(2))
	b.Ret(nil)
	a := New(m)
	if a.Alias(local, f.Params[0]) != alias.NoAlias {
		t.Error("non-escaping alloca vs parameter must be no-alias")
	}
}

func TestEscapedAllocaVsParamMayAlias(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	local := b.Alloca(4, "local")
	b.Extern("publish", ir.TVoid, "", local) // address escapes
	b.Ret(nil)
	a := New(m)
	if a.Alias(local, f.Params[0]) != alias.MayAlias {
		t.Error("escaped alloca vs parameter must be may-alias")
	}
}

func TestEscapeThroughDerivedPointer(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	local := b.Alloca(8, "local")
	mid := b.PtrAddConst(local, 4, "mid")
	b.Store(f.Params[0], mid) // derived pointer stored as a value: escapes
	b.Ret(nil)
	a := New(m)
	if a.Alias(local, f.Params[0]) != alias.MayAlias {
		t.Error("allocation escaping through a derived pointer must be may-alias")
	}
}

func TestTwoParamsMayAlias(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("p", ir.TPtr), ir.Param("q", ir.TPtr))
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	b.Ret(nil)
	a := New(m)
	if a.Alias(f.Params[0], f.Params[1]) != alias.MayAlias {
		t.Error("two pointer parameters must be may-alias")
	}
}

func TestPhiDefeatsBasic(t *testing.T) {
	m := progs.Fig10()
	a := New(m)
	f := m.Func("diamond")
	a4 := find(t, f, "a4")
	a5 := find(t, f, "a5")
	if a.Alias(a4, a5) != alias.MayAlias {
		t.Error("offsets from a φ must be may-alias for basicaa")
	}
}

func TestVariableIndexDefeatsBasic(t *testing.T) {
	m := progs.Accelerate()
	a := New(m)
	f := m.Func("accelerate")
	var stores []*ir.Value
	for _, in := range f.Instrs() {
		if in.Op == ir.OpStore {
			stores = append(stores, in.Args[0])
		}
	}
	if a.Alias(stores[0], stores[1]) != alias.MayAlias {
		t.Error("p[i] vs p[i+1] is beyond basicaa (variable subscripts)")
	}
}
