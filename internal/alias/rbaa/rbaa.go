// Package rbaa adapts the paper's pointer analysis (package pointer) to the
// alias.Analysis interface used by the evaluation harness, and exposes the
// per-test attribution needed for Fig. 14.
package rbaa

import (
	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/symbolic"
)

// Analysis wraps pointer.Analysis as an alias.Analysis.
type Analysis struct {
	*pointer.Analysis
}

var _ alias.Analysis = (*Analysis)(nil)

// New runs the full pipeline of Fig. 5 on m (already in e-SSA form).
func New(m *ir.Module, opts pointer.Options) *Analysis {
	return &Analysis{pointer.Analyze(m, opts)}
}

// Alias answers one query with the combined global + local test.
func (a *Analysis) Alias(p, q *ir.Value) alias.Result {
	if ans, _ := a.Query(p, q); ans == pointer.NoAlias {
		return alias.NoAlias
	}
	return alias.MayAlias
}

var _ alias.Explainer = (*Analysis)(nil)

// Explain implements alias.Explainer: no-alias answers carry the
// pointer.Reason string that Fig. 14 attributes them to.
func (a *Analysis) Explain(p, q *ir.Value) (alias.Result, string) {
	if ans, why := a.Query(p, q); ans == pointer.NoAlias {
		return alias.NoAlias, why.String()
	}
	return alias.MayAlias, ""
}

var _ alias.RangeDigester = (*Analysis)(nil)

// RangeDigests implements alias.RangeDigester: the GR MemLocs and LR
// locations of one function's pointer values, flattened into the compiled
// column the alias.Index pair check reads. Constant interval bounds are
// broken out so the common numeric case never touches the symbolic prover.
func (a *Analysis) RangeDigests(f *ir.Func, universe []*ir.Value) *alias.RangeColumn {
	n := len(universe)
	c := &alias.RangeColumn{
		Top:       make([]bool, n),
		Start:     make([]int32, n+1),
		LRLoc:     make([]int32, n),
		LROff:     make([]*symbolic.Expr, n),
		LRConst:   make([]int64, n),
		LRIsConst: make([]bool, n),
	}
	for i, v := range universe {
		g := a.GR.Value(v)
		if g.IsTop() {
			c.Top[i] = true
		} else {
			for k := 0; k < g.NumRanges(); k++ {
				site, r := g.Range(k)
				gr := alias.GRRange{Site: int32(site), R: r}
				if lo, hi := r.Lo(), r.Hi(); !lo.IsInf() && !hi.IsInf() {
					loShape, loK := lo.SplitConst()
					hiShape, hiK := hi.SplitConst()
					if loShape == hiShape {
						gr.Sweepable, gr.Shape, gr.Lo, gr.Hi = true, loShape, loK, hiK
					}
				}
				c.Ranges = append(c.Ranges, gr)
			}
		}
		c.Start[i+1] = int32(len(c.Ranges))

		loc, _ := a.LR.Loc(v)
		off := a.LR.Offset(v)
		c.LRLoc[i] = int32(loc)
		c.LROff[i] = off
		if k, ok := off.ConstValue(); ok {
			c.LRConst[i], c.LRIsConst[i] = k, true
		}
	}
	return c
}

// Attribution tallies no-alias answers per reason over all module queries —
// the data behind Fig. 14 ("column noalias … column global").
type Attribution struct {
	Queries         int
	NoAlias         int
	DisjointSupport int
	GlobalRange     int
	LocalRange      int
}

// Attribute runs every query and classifies the no-alias answers.
func (a *Analysis) Attribute(m *ir.Module) Attribution {
	var at Attribution
	for _, pr := range alias.Queries(m) {
		at.Queries++
		ans, why := a.Query(pr.P, pr.Q)
		if ans != pointer.NoAlias {
			continue
		}
		at.NoAlias++
		switch why {
		case pointer.ReasonDisjointSupport:
			at.DisjointSupport++
		case pointer.ReasonGlobalRange:
			at.GlobalRange++
		case pointer.ReasonLocalRange:
			at.LocalRange++
		}
	}
	return at
}
