package rbaa

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/progs"
)

func TestAdapterAgreesWithPointerQuery(t *testing.T) {
	m := progs.MessageBuffer()
	a := New(m, pointer.Options{})
	for _, f := range m.Funcs {
		var ptrs []*ir.Value
		for _, v := range f.Values() {
			if v.Typ == ir.TPtr {
				ptrs = append(ptrs, v)
			}
		}
		for i := range ptrs {
			for j := i + 1; j < len(ptrs); j++ {
				ans, _ := a.Query(ptrs[i], ptrs[j])
				adapted := a.Alias(ptrs[i], ptrs[j])
				if (ans == pointer.NoAlias) != (adapted == alias.NoAlias) {
					t.Fatalf("adapter disagrees with Query on %s vs %s",
						ptrs[i], ptrs[j])
				}
			}
		}
	}
}

func TestName(t *testing.T) {
	m := progs.TwoBuffers()
	if New(m, pointer.Options{}).Name() != "rbaa" {
		t.Error("analysis must report as rbaa (Fig. 13 column)")
	}
}

func TestAttributeDecomposes(t *testing.T) {
	for _, m := range []*ir.Module{
		progs.MessageBuffer(), progs.Accelerate(), progs.Fig10(),
		progs.TwoBuffers(), progs.StructFields(),
	} {
		a := New(m, pointer.Options{})
		at := a.Attribute(m)
		if at.NoAlias != at.DisjointSupport+at.GlobalRange+at.LocalRange {
			t.Errorf("%s: attribution does not sum: %+v", m.Name, at)
		}
		if at.Queries < at.NoAlias {
			t.Errorf("%s: more answers than queries: %+v", m.Name, at)
		}
	}
}
