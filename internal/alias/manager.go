package alias

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/ir"
)

// Explainer is optionally implemented by member analyses that attribute
// their no-alias verdicts to the internal test that produced them — rbaa's
// Fig. 14 reasons ("disjoint-support", "global-range", "local-range"). The
// detail string must be "" for may-alias answers.
type Explainer interface {
	Analysis
	Explain(p, q *ir.Value) (Result, string)
}

// Verdict is the outcome of evaluating one query against every member of a
// Manager. It is immutable once computed and may be shared by the cache.
type Verdict struct {
	// Result is the chained answer: NoAlias if any member proved it
	// (sound, because every member is).
	Result Result
	// Resolved is the index of the first member that proved NoAlias — the
	// LLVM-AAResults-style chain attribution — or -1 for MayAlias.
	Resolved int
	// mask has bit i set when member i independently proved NoAlias.
	mask uint64
	// details[i] is member i's attribution string ("" when the member
	// answered may-alias or does not implement Explainer). nil when no
	// member is an Explainer.
	details []string
}

// MemberNoAlias reports whether member i independently proved NoAlias.
func (v Verdict) MemberNoAlias(i int) bool { return v.mask&(1<<uint(i)) != 0 }

// Detail returns member i's attribution string, if any.
func (v Verdict) Detail(i int) string {
	if i < len(v.details) {
		return v.details[i]
	}
	return ""
}

// MemberStats aggregates one member's contribution across every query a
// Manager computed.
type MemberStats struct {
	Name string
	// NoAlias counts the distinct computed queries this member proved
	// (independently of its position in the chain).
	NoAlias int64
	// FirstWins counts the computed queries where this member was the
	// first prover — the chain attribution an LLVM AAResults client sees.
	FirstWins int64
	// Details histograms the member's attribution strings (Explainer
	// members only): for rbaa these are the Fig. 14 reasons.
	Details map[string]int64
}

// ManagerStats is a point-in-time snapshot of a Manager's counters.
//
// Per-member counters tally *counted* computations, not cache replays. With
// caching enabled a computation is counted exactly when its verdict is the
// one installed in the memo cache: concurrent goroutines racing on the same
// pair agree on a single winner, and the losers are tallied as cache hits —
// so Queries == CacheHits + Computed always holds, and over a sweep that
// visits each pair once (the experiments driver) the counters are exact and
// deterministic regardless of how the sweep is scheduled. A pair recomputed
// after LRU eviction counts again (it is a genuine recomputation). With
// caching disabled (CacheLimit < 0) every computation is counted.
type ManagerStats struct {
	Queries   int64 // Evaluate/Alias calls, cache hits included
	CacheHits int64
	Computed  int64 // counted computations (see above)
	NoAlias   int64 // counted computations with a no-alias verdict
	// Cached, Misses, and Evictions describe the memo cache: live entries
	// (bounded by CacheLimit at every instant), lookups that had to
	// compute, and entries displaced under churn.
	Cached    int64
	Misses    int64
	Evictions int64
	Members   []MemberStats
}

// DefaultCacheLimit bounds the number of memoized verdicts per Manager so
// that whole-suite sweeps (millions of unique pairs) cannot exhaust memory.
// The memo is a bounded LRU: once full, cold entries are evicted to admit
// new ones, so a hot working set stays cached under churn.
const DefaultCacheLimit = 1 << 20

// DefaultCacheShards is the memo cache's shard count when ManagerOptions
// leaves it zero: enough mutexes that parallel sweep workers rarely collide,
// few enough that per-shard LRU lists stay meaningful at small limits.
const DefaultCacheShards = 16

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// Label is the Name() of the manager (e.g. "scev+basic+rbaa").
	Label string
	// CacheLimit overrides DefaultCacheLimit; negative disables caching.
	CacheLimit int
	// CacheShards overrides DefaultCacheShards (clamped so every shard can
	// hold at least one entry).
	CacheShards int
}

// Manager chains an ordered list of alias analyses the way LLVM's AAResults
// does: a query is answered by the disjunction of the members' verdicts,
// memoized under the canonicalized (unordered) pair. Unlike AAResults it
// evaluates every member rather than stopping at the first no-alias, so the
// per-member precision counters of Fig. 13 and the attribution histogram of
// Fig. 14 fall out of one sweep; Verdict.Resolved still records the
// first-wins chain attribution.
//
// A Manager is safe for concurrent use by multiple goroutines provided its
// members answer queries without mutating shared state — true of scevaa,
// basicaa and rbaa after construction (see the concurrency notes on
// pointer.Analyze). Members are never invoked while a Manager lock is held.
type Manager struct {
	members []Analysis
	label   string

	// cache memoizes verdicts under the canonicalized pair. It is a
	// sharded bounded LRU, so the limit is enforced atomically (insert and
	// evict under one shard lock) and hot pairs survive churn past the
	// limit. nil when caching is disabled.
	cache *cache.Cache[pairKey, *Verdict]

	// index, when attached, short-circuits compute on cache misses with the
	// compiled per-function columns (identical verdicts, a fraction of the
	// cost). Set once before the manager is shared; nil means chain-only.
	index *Index

	queries   atomic.Int64
	cacheHits atomic.Int64

	// Counters are striped across shards keyed by the query pair so that
	// parallel sweep workers do not serialize on one mutex; Stats merges
	// the stripes (sums are order-independent, so totals stay
	// deterministic for unique-pair sweeps).
	stats [statShards]statShard
}

const statShards = 16

type statShard struct {
	// The stripe lock is held O(1) on the query path (one counter bump)
	// and O(members) at stats time, never nested — bounded by design, so
	// scrape-time Stats merging may take it without contending with the
	// hot path in any meaningful way.
	mu       sync.Mutex // aliaslint:striped (O(1) critical sections, never nested)
	computed int64      // distinct computed queries
	noAliasN int64      // computed no-alias queries
	members  []memberCounters
}

type memberCounters struct {
	noAlias   int64
	firstWins int64
	details   map[string]int64
}

type pairKey struct{ p, q *ir.Value }

// canonical orders a pair so that (p,q) and (q,p) share one cache entry.
// Value IDs are unique within a function (and module-wide for constants and
// globals, which carry distinct negative IDs), so ID order with the function
// name as tie-break is a strict order on any two distinct values.
func canonical(p, q *ir.Value) pairKey {
	if less(q, p) {
		p, q = q, p
	}
	return pairKey{p, q}
}

func less(a, b *ir.Value) bool {
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return funcName(a) < funcName(b)
}

func funcName(v *ir.Value) string {
	if v.Func != nil {
		return v.Func.Name
	}
	return ""
}

// hashPair spreads canonicalized pairs across the memo cache's shards.
// Value IDs repeat across functions, so collisions only skew shard load,
// never correctness; Fibonacci mixing keeps sequential IDs apart.
func hashPair(k pairKey) uint64 {
	h := uint64(uint32(k.p.ID))*0x9E3779B97F4A7C15 ^ uint64(uint32(k.q.ID))
	h ^= h >> 29
	return h * 0xBF58476D1CE4E5B9
}

// NewManager builds a manager over the given member order. Queries ask the
// members in that order; Verdict.Resolved and the FirstWins counters refer
// to it. At most 64 members are supported.
func NewManager(opts ManagerOptions, members ...Analysis) *Manager {
	if len(members) == 0 {
		panic("alias.NewManager: no members")
	}
	if len(members) > 64 {
		panic(fmt.Sprintf("alias.NewManager: %d members exceeds 64", len(members)))
	}
	label := opts.Label
	if label == "" {
		for i, m := range members {
			if i > 0 {
				label += "+"
			}
			label += m.Name()
		}
	}
	limit := opts.CacheLimit
	if limit == 0 {
		limit = DefaultCacheLimit
	}
	mg := &Manager{members: members, label: label}
	if limit > 0 {
		shards := opts.CacheShards
		if shards == 0 {
			shards = DefaultCacheShards
		}
		mg.cache = cache.New[pairKey, *Verdict](limit, shards, hashPair)
	}
	for s := range mg.stats {
		mg.stats[s].members = make([]memberCounters, len(members))
		for i := range mg.stats[s].members {
			mg.stats[s].members[i].details = map[string]int64{}
		}
	}
	return mg
}

// Name implements Analysis, so managers compose (a Manager can be a member
// of another Manager).
func (mg *Manager) Name() string { return mg.label }

// NumMembers returns the length of the chain.
func (mg *Manager) NumMembers() int { return len(mg.members) }

// MemberName returns the Name() of member i.
func (mg *Manager) MemberName(i int) string { return mg.members[i].Name() }

// AttachIndex installs a compiled index (BuildIndex over this manager's
// chain) as the compute fast path: cache misses whose pair the index covers
// skip the member walk entirely. The verdicts are identical by construction
// (see Index), so counters, caching and attribution are unaffected. Must be
// called before the manager is shared between goroutines.
func (mg *Manager) AttachIndex(ix *Index) { mg.index = ix }

// ResizeCache rebounds the verdict memo at runtime, evicting LRU entries
// immediately when shrinking — the service's memory-budget governor
// shrinks the memo under pressure and restores the configured bound on
// recovery. Verdicts are unaffected (a smaller memo only recomputes more).
// No-op returning false when caching is disabled or the bound is
// unchanged. Safe for concurrent use with queries.
func (mg *Manager) ResizeCache(limit int) bool {
	if mg.cache == nil || limit < 1 {
		return false
	}
	return mg.cache.Resize(limit)
}

// CacheCap reports the memo's current entry bound (0 with caching
// disabled) — the governor's view of whether a module is running shrunk.
func (mg *Manager) CacheCap() int {
	if mg.cache == nil {
		return 0
	}
	return mg.cache.Cap()
}

// Alias implements Analysis: the memoized disjunction of the members.
func (mg *Manager) Alias(p, q *ir.Value) Result {
	return mg.Evaluate(p, q).Result
}

// Evaluate answers one query with the full per-member verdict, serving it
// from the cache when the canonicalized pair is memoized.
//
// Counting is winner-only: when goroutines race on an uncached pair each
// computes, but only the verdict installed in the cache is folded into the
// counters — the losers adopt the winner's verdict and tally as cache hits.
// This keeps Computed at "distinct computed queries" under concurrency
// (pre-LRU, every racer past the cache limit counted, inflating Computed,
// NoAlias and the per-member counters). With caching disabled there is no
// winner to elect and every computation counts.
func (mg *Manager) Evaluate(p, q *ir.Value) Verdict {
	mg.queries.Add(1)
	key := canonical(p, q)
	if mg.cache != nil {
		if v, ok := mg.cache.Get(key); ok {
			mg.cacheHits.Add(1)
			return *v
		}
	}
	v := mg.compute(key)
	if mg.cache != nil {
		if prev, added := mg.cache.GetOrAdd(key, v); !added {
			// A racing goroutine installed the same pair first; its entry
			// is the one whose attribution was counted.
			mg.cacheHits.Add(1)
			return *prev
		}
	}
	mg.count(key, v)
	return *v
}

// compute runs every member on the canonical pair — through the compiled
// index when one is attached and conclusive for the pair. No Manager lock is
// held, so slow members never serialize unrelated queries.
func (mg *Manager) compute(key pairKey) *Verdict {
	if mg.index != nil {
		if iv, ok := mg.index.Evaluate(key.p, key.q); ok {
			return &iv
		}
	}
	v := &Verdict{Resolved: -1}
	for i, m := range mg.members {
		var res Result
		var detail string
		if ex, ok := m.(Explainer); ok {
			res, detail = ex.Explain(key.p, key.q)
		} else {
			res = m.Alias(key.p, key.q)
		}
		if res == NoAlias {
			v.mask |= 1 << uint(i)
			if v.Resolved < 0 {
				v.Resolved = i
				v.Result = NoAlias
			}
		}
		if detail != "" {
			if v.details == nil {
				v.details = make([]string, len(mg.members))
			}
			v.details[i] = detail
		}
	}
	return v
}

// count folds one computed verdict into the counter stripe of its pair.
func (mg *Manager) count(key pairKey, v *Verdict) {
	sh := &mg.stats[uint(key.p.ID*31^key.q.ID)%statShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.computed++
	if v.Result == NoAlias {
		sh.noAliasN++
	}
	for i := range mg.members {
		if v.MemberNoAlias(i) {
			sh.members[i].noAlias++
		}
		if d := v.Detail(i); d != "" {
			sh.members[i].details[d]++
		}
	}
	if v.Resolved >= 0 {
		sh.members[v.Resolved].firstWins++
	}
}

// Stats snapshots the counters. Per-member numbers cover computed queries
// only (see ManagerStats); Queries and CacheHits cover every call.
func (mg *Manager) Stats() ManagerStats {
	st := ManagerStats{
		Queries:   mg.queries.Load(),
		CacheHits: mg.cacheHits.Load(),
	}
	if mg.cache != nil {
		cs := mg.cache.Stats()
		st.Cached = int64(cs.Len)
		st.Misses = cs.Misses
		st.Evictions = cs.Evictions
	}
	st.Members = make([]MemberStats, len(mg.members))
	for i, m := range mg.members {
		st.Members[i] = MemberStats{Name: m.Name(), Details: map[string]int64{}}
	}
	for s := range mg.stats {
		sh := &mg.stats[s]
		sh.mu.Lock()
		st.Computed += sh.computed
		st.NoAlias += sh.noAliasN
		for i := range mg.members {
			st.Members[i].NoAlias += sh.members[i].noAlias
			st.Members[i].FirstWins += sh.members[i].firstWins
			for k, n := range sh.members[i].details {
				st.Members[i].Details[k] += n
			}
		}
		sh.mu.Unlock()
	}
	return st
}
