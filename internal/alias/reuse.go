package alias

import (
	"container/list"
	"crypto/sha256"
	"strings"
	"sync"

	"repro/internal/ir"
)

// Cross-module reuse of compiled function indexes.
//
// A CI-agent workload re-uploads a slowly-evolving module thousands of
// times; most functions are byte-identical between uploads. Building a
// FuncIndex is the expensive part of a module build (digesting four chain
// members plus the andersen solve), so identical functions should pay it
// once. Soundness makes that subtle: the chain is built per *module*
// (andersen is interprocedural, alloc sites and globals are numbered
// module-wide), so a function's compiled columns are only portable to
// another module when nothing in them can observe the module around the
// function. That is exactly the *isolated* case below: no calls out, no
// globals in, and no calls in from the rest of the module. For such a
// function every inter-procedural channel is closed — its digests are a
// pure function of its own printed text — and every comparison a FuncIndex
// ever performs is within one column (Root[i]==Root[j], a.Shape==b.Shape,
// bitset rows ANDed against sibling rows), so the donor's columns and
// value-number table can be shared as-is, zero-copy, with only the
// universe slice rebound to the new module's values.

// FuncKey is the content identity of one function: the sha256 of its
// deterministic printed text (ir.PrintFunc), which pins names, value order,
// and therefore the function-scoped value IDs the vnum table is built over.
type FuncKey [sha256.Size]byte

// KeyOf computes the content key of f.
func KeyOf(f *ir.Func) FuncKey {
	var b strings.Builder
	ir.PrintFunc(&b, f)
	return sha256.Sum256([]byte(b.String()))
}

// isolatedLocally reports whether f, viewed alone, is module-independent:
// no call or extern instructions (callees and unknown library effects reach
// module state) and no global operands (globals are module-scoped values
// with module-wide andersen sites). Constant operands are fine — they are
// module-interned but every column comparison involving them is
// within-column pointer equality.
func isolatedLocally(f *ir.Func) bool {
	for _, in := range f.Instrs() {
		if in.Op == ir.OpCall || in.Op == ir.OpExtern {
			return false
		}
		for _, a := range in.Args {
			if a != nil && a.Kind == ir.VGlobal {
				return false
			}
		}
	}
	return true
}

// calledFuncs collects every function that appears as an OpCall callee in
// m. A called function's parameters receive points-to flow from its
// callers, so its columns are not portable even if its body is clean.
func calledFuncs(m *ir.Module) map[*ir.Func]bool {
	called := map[*ir.Func]bool{}
	for _, f := range m.Funcs {
		for _, in := range f.Instrs() {
			if in.Op == ir.OpCall && in.Callee != nil {
				called[in.Callee] = true
			}
		}
	}
	return called
}

// cacheEntry is one donor FuncIndex plus the universe fingerprint a
// consumer must match before sharing it.
type cacheEntry struct {
	key     FuncKey
	fi      *FuncIndex
	members int
	// Universe fingerprint: the value IDs and names of the donor universe
	// plus the donor's dense-table size. Identical printed text implies an
	// identical fingerprint, so a mismatch means the key collided or the
	// printer changed — either way the entry must not be shared.
	ids       []int
	names     []string
	numValues int
	bytes     int64
	elem      *list.Element
}

// IndexCacheStats is a point-in-time snapshot of an IndexCache's counters.
type IndexCacheStats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// IndexCache is a bounded LRU of isolated-function indexes shared across
// module builds. All methods are safe for concurrent use.
//
// A cached entry retains its donor function's value graph (columns hold
// *ir.Value roots), so the accounted footprint is approximate; the byte
// bound keeps the retained set small and hot.
type IndexCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[FuncKey]*cacheEntry
	lru      *list.List // front = most recent; values are *cacheEntry

	hits      int64
	misses    int64
	evictions int64
}

// NewIndexCache returns a cache bounded to maxBytes of approximate column
// footprint (<= 0 picks a 32 MiB default).
func NewIndexCache(maxBytes int64) *IndexCache {
	if maxBytes <= 0 {
		maxBytes = 32 << 20
	}
	return &IndexCache{
		maxBytes: maxBytes,
		entries:  map[FuncKey]*cacheEntry{},
		lru:      list.New(),
	}
}

// fingerprintMatches verifies the consumer universe against the donor's.
func (e *cacheEntry) fingerprintMatches(universe []*ir.Value, numValues, members int) bool {
	if e.members != members || e.numValues != numValues || len(e.ids) != len(universe) {
		return false
	}
	for i, v := range universe {
		if v.ID != e.ids[i] || v.Name != e.names[i] {
			return false
		}
	}
	return true
}

// lookup returns an adapted FuncIndex for the given key and consumer
// universe, or nil on miss. The adapted index shares the donor's columns
// and value-number table zero-copy; only the universe slice is the
// consumer's own.
func (c *IndexCache) lookup(key FuncKey, universe []*ir.Value, numValues, members int) *FuncIndex {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.fingerprintMatches(universe, numValues, members) {
		c.misses++
		return nil
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	return &FuncIndex{
		universe:      universe,
		vnum:          e.fi.vnum,
		cols:          e.fi.cols,
		rangeMember:   e.fi.rangeMember,
		sweepDisjoint: e.fi.sweepDisjoint,
		sweepGlobal:   e.fi.sweepGlobal,
	}
}

// insert stores a freshly built donor index under key, evicting LRU
// entries past the byte bound.
func (c *IndexCache) insert(key FuncKey, fi *FuncIndex, members int, numValues int) {
	ids := make([]int, len(fi.universe))
	names := make([]string, len(fi.universe))
	for i, v := range fi.universe {
		ids[i] = v.ID
		names[i] = v.Name
	}
	e := &cacheEntry{
		key: key, fi: fi, members: members,
		ids: ids, names: names, numValues: numValues,
		bytes: fi.approxBytes(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.lru.Remove(old.elem)
		c.bytes -= old.bytes
		delete(c.entries, key)
	}
	if e.bytes > c.maxBytes {
		return // never admit an entry that alone busts the bound
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += e.bytes
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		c.evictions++
	}
}

// SizeBytes reports the cache's approximate resident footprint, fed into
// the budget's accounted model.
func (c *IndexCache) SizeBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Snapshot returns the cache counters.
func (c *IndexCache) Snapshot() IndexCacheStats {
	if c == nil {
		return IndexCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return IndexCacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// BuildIndexCached is BuildIndex with cross-module reuse: isolated
// functions whose printed text matches a cached donor share the donor's
// compiled columns instead of re-digesting. Returns the index (nil exactly
// when BuildIndex would return nil) and how many functions were served
// from the cache. A nil cache degrades to plain BuildIndex.
func BuildIndexCached(mg *Manager, m *ir.Module, cache *IndexCache) (*Index, int) {
	for _, mem := range mg.members {
		switch mem.(type) {
		case RangeDigester, ClassDigester, SCEVDigester, SetDigester:
		default:
			return nil, 0
		}
	}
	var called map[*ir.Func]bool
	if cache != nil {
		called = calledFuncs(m)
	}
	reused := 0
	ix := &Index{funcs: make(map[*ir.Func]*FuncIndex, len(m.Funcs)), members: len(mg.members)}
	for _, f := range m.Funcs {
		var universe []*ir.Value
		for _, v := range f.Values() {
			if v.Typ == ir.TPtr {
				universe = append(universe, v)
			}
		}
		if len(universe) == 0 {
			continue
		}
		shareable := cache != nil && !called[f] && isolatedLocally(f)
		var key FuncKey
		if shareable {
			key = KeyOf(f)
			if fi := cache.lookup(key, universe, f.NumValues(), len(mg.members)); fi != nil {
				ix.funcs[f] = fi
				ix.memBytes += fi.approxBytes()
				reused++
				continue
			}
		}
		fi := buildFuncIndex(mg, f, universe)
		if shareable {
			cache.insert(key, fi, len(mg.members), f.NumValues())
		}
		ix.funcs[f] = fi
		ix.memBytes += fi.approxBytes()
	}
	return ix, reused
}
