package symbolic

// Order is the outcome of comparing two symbolic expressions under the
// partial order of §3.3: −∞ < … < −1 < 0 < 1 < … < +∞, with no ordering
// between distinct kernel symbols (N and N+1 compare, N and M do not).
type Order uint8

// Comparison outcomes. OLe/OGe arise from min/max reasoning where strictness
// is unknown.
const (
	OUnknown Order = iota
	OLt
	OLe
	OEq
	OGe
	OGt
)

// String renders the order relation.
func (o Order) String() string {
	switch o {
	case OLt:
		return "<"
	case OLe:
		return "<="
	case OEq:
		return "=="
	case OGe:
		return ">="
	case OGt:
		return ">"
	}
	return "?"
}

// Flip mirrors the relation (the order of a,b swapped).
func (o Order) Flip() Order {
	switch o {
	case OLt:
		return OGt
	case OLe:
		return OGe
	case OGe:
		return OLe
	case OGt:
		return OLt
	}
	return o
}

// ProvesLE reports whether the outcome proves a ≤ b.
func (o Order) ProvesLE() bool { return o == OLt || o == OLe || o == OEq }

// ProvesLT reports whether the outcome proves a < b.
func (o Order) ProvesLT() bool { return o == OLt }

// ProvesGE reports whether the outcome proves a ≥ b.
func (o Order) ProvesGE() bool { return o == OGt || o == OGe || o == OEq }

// ProvesGT reports whether the outcome proves a > b.
func (o Order) ProvesGT() bool { return o == OGt }

// Compare decides the relation between a and b where possible. The result is
// sound: any answer other than OUnknown holds for every valuation of the
// kernel symbols. The main decision procedure subtracts canonical linear
// forms; min/max structure is consulted for one-sided bounds.
func Compare(a, b *Expr) Order {
	if Equal(a, b) {
		return OEq
	}
	// Infinities.
	switch {
	case a.IsNegInf() && b.IsNegInf(), a.IsPosInf() && b.IsPosInf():
		return OEq
	case a.IsNegInf() || b.IsPosInf():
		return OLt
	case a.IsPosInf() || b.IsNegInf():
		return OGt
	}
	// d = b − a: if d reduces to a constant, its sign decides.
	if o := diffSign(a, b); o != OUnknown {
		return o
	}
	// One-sided min/max reasoning: min(xs) ≤ each x; max(xs) ≥ each x.
	if o := minMaxBound(a, b); o != OUnknown {
		return o
	}
	if o := minMaxBound(b, a).Flip(); o != OUnknown {
		return o
	}
	return OUnknown
}

// diffSign canonicalizes d = b − a on pooled scratch and decides the order
// by the sign of d when d is a constant — the main decision procedure, now
// allocation-free.
func diffSign(a, b *Expr) Order {
	d := getLin()
	d.absorb(1, b)
	d.absorb(-1, a)
	o := OUnknown
	if len(d.terms) == 0 {
		switch {
		case d.k > 0:
			o = OLt
		case d.k < 0:
			o = OGt
		default:
			o = OEq
		}
	}
	putLin(d)
	return o
}

// minMaxBound proves an order between a and b using the min/max structure
// of a, preserving strictness where possible: min(xs) ≤ every x (so some
// x < b proves min < b), and dually for max.
func minMaxBound(a, b *Expr) Order {
	switch a.kind {
	case KMin:
		// a = min(xs): some x < b ⇒ a < b; some x ≤ b ⇒ a ≤ b;
		// all x > b ⇒ a > b; all x ≥ b ⇒ a ≥ b.
		best := OUnknown
		allGE, allGT := true, true
		for _, x := range a.args {
			o := compareShallow(x, b)
			if o.ProvesLT() {
				return OLt
			}
			if o.ProvesLE() {
				best = OLe
			}
			if !o.ProvesGE() {
				allGE = false
			}
			if !o.ProvesGT() {
				allGT = false
			}
		}
		if best != OUnknown {
			return best
		}
		if allGT {
			return OGt
		}
		if allGE {
			return OGe
		}
	case KMax:
		best := OUnknown
		allLE, allLT := true, true
		for _, x := range a.args {
			o := compareShallow(x, b)
			if o.ProvesGT() {
				return OGt
			}
			if o.ProvesGE() {
				best = OGe
			}
			if !o.ProvesLE() {
				allLE = false
			}
			if !o.ProvesLT() {
				allLT = false
			}
		}
		if best != OUnknown {
			return best
		}
		if allLT {
			return OLt
		}
		if allLE {
			return OLe
		}
	}
	return OUnknown
}

// compareShallow is Compare without recursive min/max expansion, used to keep
// minMaxBound linear in the operand count.
func compareShallow(a, b *Expr) Order {
	if Equal(a, b) {
		return OEq
	}
	switch {
	case a.IsNegInf() && b.IsNegInf(), a.IsPosInf() && b.IsPosInf():
		return OEq
	case a.IsNegInf() || b.IsPosInf():
		return OLt
	case a.IsPosInf() || b.IsNegInf():
		return OGt
	}
	return diffSign(a, b)
}

// Eval evaluates e under a valuation of kernel symbols. It reports ok=false
// for infinities, missing symbols, or division/modulo by zero. Quotients
// truncate toward zero, matching the concrete integer semantics used by the
// tests' reference interpreter.
func (e *Expr) Eval(env map[string]int64) (int64, bool) {
	switch e.kind {
	case KConst:
		return e.k, true
	case KSym:
		v, ok := env[e.sym]
		return v, ok
	case KNegInf, KPosInf:
		return 0, false
	case KSum:
		total := e.k
		for _, t := range e.terms {
			v, ok := t.Atom.Eval(env)
			if !ok {
				return 0, false
			}
			total += t.Coeff * v
		}
		return total, true
	case KMin, KMax:
		best, ok := e.args[0].Eval(env)
		if !ok {
			return 0, false
		}
		for _, a := range e.args[1:] {
			v, ok := a.Eval(env)
			if !ok {
				return 0, false
			}
			if (e.kind == KMin && v < best) || (e.kind == KMax && v > best) {
				best = v
			}
		}
		return best, true
	case KMul:
		x, ok := e.args[0].Eval(env)
		if !ok {
			return 0, false
		}
		y, ok := e.args[1].Eval(env)
		if !ok {
			return 0, false
		}
		return x * y, true
	case KDiv:
		x, ok := e.args[0].Eval(env)
		if !ok {
			return 0, false
		}
		y, ok := e.args[1].Eval(env)
		if !ok || y == 0 {
			return 0, false
		}
		return x / y, true
	case KMod:
		x, ok := e.args[0].Eval(env)
		if !ok {
			return 0, false
		}
		y, ok := e.args[1].Eval(env)
		if !ok || y == 0 {
			return 0, false
		}
		return x % y, true
	}
	return 0, false
}
