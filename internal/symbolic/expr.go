// Package symbolic implements the symbolic expression language used by the
// range analysis of §3.3 of "Symbolic Range Analysis of Pointers" (CGO'16):
//
//	E ::= n | s | min(E,E) | max(E,E) | E−E | E+E | E/E | E mod E | E×E
//
// augmented with the two infinities −∞ and +∞ that close the SymbRanges
// lattice. Expressions are immutable. Constructors simplify eagerly and keep
// sums in a canonical linear form (a constant plus a sorted sum of
// coefficient×atom terms, where an atom is either a kernel symbol or an
// opaque non-linear subexpression), which makes structural equality and the
// partial-order comparison of §3.3 cheap and deterministic.
//
// The symbolic kernel of a program — names that cannot be expressed as a
// function of other names, e.g. function parameters and results of library
// calls — appears here as Sym values.
package symbolic

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the expression node forms.
type Kind uint8

// Expression node kinds.
const (
	KConst  Kind = iota // integer literal
	KSym                // kernel symbol
	KSum                // canonical linear sum: k + Σ coeff·atom
	KMin                // n-ary minimum
	KMax                // n-ary maximum
	KMul                // non-linear product
	KDiv                // quotient
	KMod                // remainder
	KNegInf             // −∞
	KPosInf             // +∞
)

// Expr is an immutable symbolic expression. The zero value is not valid; use
// the package constructors.
type Expr struct {
	kind Kind
	k    int64   // KConst value; KSum constant part
	sym  string  // KSym name
	args []*Expr // KMin/KMax operands; KMul/KDiv/KMod operands (2)
	// terms holds the linear part of a KSum, sorted by atom key.
	terms []Term
	// key caches the canonical string, used for ordering and equality.
	key string
}

// Term is one coeff·atom component of a canonical sum. Atom is either a
// symbol or an opaque (non-linear) subexpression.
type Term struct {
	Coeff int64
	Atom  *Expr
}

var (
	negInf = &Expr{kind: KNegInf, key: "-inf"}
	posInf = &Expr{kind: KPosInf, key: "+inf"}
	zero   = &Expr{kind: KConst, k: 0, key: "0"}
	one    = &Expr{kind: KConst, k: 1, key: "1"}
)

// NegInf returns the −∞ expression.
func NegInf() *Expr { return negInf }

// PosInf returns the +∞ expression.
func PosInf() *Expr { return posInf }

// Zero returns the constant 0.
func Zero() *Expr { return zero }

// One returns the constant 1.
func One() *Expr { return one }

// Const returns the integer constant c.
func Const(c int64) *Expr {
	switch c {
	case 0:
		return zero
	case 1:
		return one
	}
	return &Expr{kind: KConst, k: c, key: fmt.Sprint(c)}
}

// Sym returns the kernel symbol named s.
func Sym(s string) *Expr {
	return &Expr{kind: KSym, sym: s, key: s}
}

// Kind reports the node kind of e.
func (e *Expr) Kind() Kind { return e.kind }

// ConstValue reports the value of a constant expression.
func (e *Expr) ConstValue() (int64, bool) {
	if e.kind == KConst {
		return e.k, true
	}
	return 0, false
}

// SymName reports the name of a symbol expression.
func (e *Expr) SymName() (string, bool) {
	if e.kind == KSym {
		return e.sym, true
	}
	return "", false
}

// IsNegInf reports whether e is −∞.
func (e *Expr) IsNegInf() bool { return e.kind == KNegInf }

// IsPosInf reports whether e is +∞.
func (e *Expr) IsPosInf() bool { return e.kind == KPosInf }

// IsInf reports whether e is −∞ or +∞.
func (e *Expr) IsInf() bool { return e.kind == KNegInf || e.kind == KPosInf }

// IsConst reports whether e is an integer literal.
func (e *Expr) IsConst() bool { return e.kind == KConst }

// Size counts the nodes of e; the analyses use it to bound expression growth
// (§3.8 argues information per variable is O(1)).
func (e *Expr) Size() int {
	n := 1
	for _, a := range e.args {
		n += a.Size()
	}
	for _, t := range e.terms {
		n += t.Atom.Size()
	}
	return n
}

// Syms appends the distinct kernel symbols of e, in canonical order.
func (e *Expr) Syms() []string {
	set := map[string]bool{}
	e.collectSyms(set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) collectSyms(set map[string]bool) {
	switch e.kind {
	case KSym:
		set[e.sym] = true
	case KSum:
		for _, t := range e.terms {
			t.Atom.collectSyms(set)
		}
	default:
		for _, a := range e.args {
			a.collectSyms(set)
		}
	}
}

// HasSym reports whether e mentions any kernel symbol (i.e. is not a pure
// numeric expression). Infinities count as numeric.
func (e *Expr) HasSym() bool {
	switch e.kind {
	case KSym:
		return true
	case KConst, KNegInf, KPosInf:
		return false
	case KSum:
		for _, t := range e.terms {
			if t.Atom.HasSym() {
				return true
			}
		}
		return false
	default:
		for _, a := range e.args {
			if a.HasSym() {
				return true
			}
		}
		return false
	}
}

// Key returns a canonical string identity for e: two expressions with equal
// keys are structurally (and therefore semantically) equal after the
// constructor normalization.
func (e *Expr) Key() string { return e.key }

// Equal reports whether a and b are equal after canonicalization.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.key == b.key
}

// String renders e in a stable human-readable form.
func (e *Expr) String() string {
	switch e.kind {
	case KConst:
		return fmt.Sprint(e.k)
	case KSym:
		return e.sym
	case KNegInf:
		return "-inf"
	case KPosInf:
		return "+inf"
	case KSum:
		var b strings.Builder
		first := true
		for _, t := range e.terms {
			at := t.Atom.String()
			if t.Atom.kind != KSym && t.Atom.kind != KConst {
				at = "(" + at + ")"
			}
			switch {
			case first && t.Coeff == 1:
				b.WriteString(at)
			case first && t.Coeff == -1:
				b.WriteString("-" + at)
			case first:
				fmt.Fprintf(&b, "%d*%s", t.Coeff, at)
			case t.Coeff == 1:
				b.WriteString(" + " + at)
			case t.Coeff == -1:
				b.WriteString(" - " + at)
			case t.Coeff < 0:
				fmt.Fprintf(&b, " - %d*%s", -t.Coeff, at)
			default:
				fmt.Fprintf(&b, " + %d*%s", t.Coeff, at)
			}
			first = false
		}
		switch {
		case first:
			fmt.Fprint(&b, e.k)
		case e.k > 0:
			fmt.Fprintf(&b, " + %d", e.k)
		case e.k < 0:
			fmt.Fprintf(&b, " - %d", -e.k)
		}
		return b.String()
	case KMin, KMax:
		name := "min"
		if e.kind == KMax {
			name = "max"
		}
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			parts[i] = a.String()
		}
		return name + "(" + strings.Join(parts, ", ") + ")"
	case KMul:
		return "(" + e.args[0].String() + ")*(" + e.args[1].String() + ")"
	case KDiv:
		return "(" + e.args[0].String() + ")/(" + e.args[1].String() + ")"
	case KMod:
		return "(" + e.args[0].String() + ") mod (" + e.args[1].String() + ")"
	}
	return "?"
}

// ---------------------------------------------------------------------------
// Linear canonical form.

// linform is the canonical linear view of an expression: k + Σ coeff·atom.
type linform struct {
	k     int64
	terms map[string]Term // keyed by atom canonical key
}

func newLin(k int64) *linform { return &linform{k: k, terms: map[string]Term{}} }

func (l *linform) add(coeff int64, atom *Expr) {
	if coeff == 0 {
		return
	}
	key := atom.key
	t, ok := l.terms[key]
	if !ok {
		l.terms[key] = Term{Coeff: coeff, Atom: atom}
		return
	}
	t.Coeff += coeff
	if t.Coeff == 0 {
		delete(l.terms, key)
	} else {
		l.terms[key] = t
	}
}

func (l *linform) addLin(scale int64, m *linform) {
	l.k += scale * m.k
	for _, t := range m.terms {
		l.add(scale*t.Coeff, t.Atom)
	}
}

// linearize decomposes e into its canonical linear form. Every finite
// expression linearizes: non-linear subtrees become single atoms.
// Infinite expressions do not linearize.
func linearize(e *Expr) (*linform, bool) {
	switch e.kind {
	case KNegInf, KPosInf:
		return nil, false
	case KConst:
		return newLin(e.k), true
	case KSym, KMin, KMax, KMul, KDiv, KMod:
		l := newLin(0)
		l.add(1, e)
		return l, true
	case KSum:
		l := newLin(e.k)
		for _, t := range e.terms {
			l.add(t.Coeff, t.Atom)
		}
		return l, true
	}
	return nil, false
}

// build converts a linear form back to a canonical expression.
func (l *linform) build() *Expr {
	if len(l.terms) == 0 {
		return Const(l.k)
	}
	keys := make([]string, 0, len(l.terms))
	for k := range l.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	terms := make([]Term, len(keys))
	for i, k := range keys {
		terms[i] = l.terms[k]
	}
	// A sum of exactly one unit-coefficient atom with no constant is the
	// atom itself.
	if l.k == 0 && len(terms) == 1 && terms[0].Coeff == 1 {
		return terms[0].Atom
	}
	e := &Expr{kind: KSum, k: l.k, terms: terms}
	e.key = e.computeKey()
	return e
}

func (e *Expr) computeKey() string {
	var b strings.Builder
	b.WriteString("sum{")
	fmt.Fprint(&b, e.k)
	for _, t := range e.terms {
		fmt.Fprintf(&b, ";%d*%s", t.Coeff, t.Atom.key)
	}
	b.WriteString("}")
	return b.String()
}

// Terms exposes the canonical decomposition of e as constant + terms. Every
// finite expression decomposes; infinities report ok=false.
func (e *Expr) Terms() (k int64, terms []Term, ok bool) {
	l, ok := linearize(e)
	if !ok {
		return 0, nil, false
	}
	keys := make([]string, 0, len(l.terms))
	for key := range l.terms {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]Term, len(keys))
	for i, key := range keys {
		out[i] = l.terms[key]
	}
	return l.k, out, true
}

// ---------------------------------------------------------------------------
// Arithmetic constructors.

// Add returns a+b. Mixing opposite infinities is a caller bug: the interval
// layer guards bound arithmetic so that −∞ and +∞ never meet; Add panics if
// they do.
func Add(a, b *Expr) *Expr {
	if a.IsInf() || b.IsInf() {
		return addInf(a, b)
	}
	la, _ := linearize(a)
	lb, _ := linearize(b)
	la.addLin(1, lb)
	return la.build()
}

func addInf(a, b *Expr) *Expr {
	switch {
	case a.IsNegInf() && b.IsPosInf(), a.IsPosInf() && b.IsNegInf():
		panic("symbolic: +inf + -inf")
	case a.IsNegInf() || b.IsNegInf():
		return negInf
	default:
		return posInf
	}
}

// Sub returns a−b, with the same infinity discipline as Add.
func Sub(a, b *Expr) *Expr {
	if a.IsInf() || b.IsInf() {
		return addInf(a, Neg(b))
	}
	la, _ := linearize(a)
	lb, _ := linearize(b)
	la.addLin(-1, lb)
	return la.build()
}

// Neg returns −a.
func Neg(a *Expr) *Expr {
	switch a.kind {
	case KNegInf:
		return posInf
	case KPosInf:
		return negInf
	}
	l, _ := linearize(a)
	m := newLin(0)
	m.addLin(-1, l)
	return m.build()
}

// AddConst returns a+c.
func AddConst(a *Expr, c int64) *Expr {
	if c == 0 {
		return a
	}
	return Add(a, Const(c))
}

// Mul returns a×b. Products simplify when either side is constant; a
// non-constant product is kept as an opaque node, canonically ordered.
func Mul(a, b *Expr) *Expr {
	if a.IsInf() || b.IsInf() {
		return mulInf(a, b)
	}
	if c, ok := a.ConstValue(); ok {
		return scale(b, c)
	}
	if c, ok := b.ConstValue(); ok {
		return scale(a, c)
	}
	// Canonical operand order for the opaque product.
	if a.key > b.key {
		a, b = b, a
	}
	e := &Expr{kind: KMul, args: []*Expr{a, b}}
	e.key = "mul{" + a.key + ";" + b.key + "}"
	return e
}

// mulInf multiplies with at least one infinite operand. The sign of the
// finite side must be a known constant; an unknown-sign operand panics
// (interval code checks signs before scaling infinite bounds).
func mulInf(a, b *Expr) *Expr {
	if b.IsInf() && !a.IsInf() {
		a, b = b, a
	}
	// a is infinite.
	if b.IsInf() {
		if a.kind == b.kind {
			return posInf
		}
		return negInf
	}
	c, ok := b.ConstValue()
	if !ok {
		panic("symbolic: inf * non-constant")
	}
	switch {
	case c == 0:
		return zero
	case c > 0:
		return a
	case a.IsNegInf():
		return posInf
	default:
		return negInf
	}
}

func scale(a *Expr, c int64) *Expr {
	switch c {
	case 0:
		return zero
	case 1:
		return a
	}
	l, _ := linearize(a)
	m := newLin(0)
	m.addLin(c, l)
	return m.build()
}

// Div returns a/b (C-style truncated quotient in the concrete semantics).
// Constant folding applies when both operands are constants and b≠0.
func Div(a, b *Expr) *Expr {
	ca, aok := a.ConstValue()
	cb, bok := b.ConstValue()
	if aok && bok && cb != 0 {
		return Const(ca / cb)
	}
	if bok && cb == 1 {
		return a
	}
	if a.IsInf() || b.IsInf() {
		// Division involving infinities is never produced by the analyses;
		// degrade to an opaque node that compares as unknown.
		return opaque2(KDiv, "div", a, b)
	}
	return opaque2(KDiv, "div", a, b)
}

// Mod returns a mod b, folding constants (b≠0).
func Mod(a, b *Expr) *Expr {
	ca, aok := a.ConstValue()
	cb, bok := b.ConstValue()
	if aok && bok && cb != 0 {
		return Const(ca % cb)
	}
	return opaque2(KMod, "mod", a, b)
}

func opaque2(kind Kind, tag string, a, b *Expr) *Expr {
	e := &Expr{kind: kind, args: []*Expr{a, b}}
	e.key = tag + "{" + a.key + ";" + b.key + "}"
	return e
}

// maxMinMaxArity caps min/max operand lists: join chains produced by the
// fixpoint otherwise grow without bound. Overflowing lists are still exact
// (the constructors drop provably redundant operands first); the interval
// layer applies the lossy ±∞ degradation using Expr.Size.
const maxMinMaxArity = 8

// Min returns min(a,b), flattening nested minima, deduplicating and dropping
// operands that are provably dominated.
func Min(a, b *Expr) *Expr { return minMax(KMin, a, b) }

// Max returns max(a,b), symmetric to Min.
func Max(a, b *Expr) *Expr { return minMax(KMax, a, b) }

func minMax(kind Kind, a, b *Expr) *Expr {
	// Infinity short-circuits.
	if kind == KMin {
		if a.IsNegInf() || b.IsNegInf() {
			return negInf
		}
		if a.IsPosInf() {
			return b
		}
		if b.IsPosInf() {
			return a
		}
	} else {
		if a.IsPosInf() || b.IsPosInf() {
			return posInf
		}
		if a.IsNegInf() {
			return b
		}
		if b.IsNegInf() {
			return a
		}
	}
	// Gather operands, flattening same-kind children.
	var ops []*Expr
	for _, x := range []*Expr{a, b} {
		if x.kind == kind {
			ops = append(ops, x.args...)
		} else {
			ops = append(ops, x)
		}
	}
	// Deduplicate and drop dominated operands.
	kept := make([]*Expr, 0, len(ops))
	for _, x := range ops {
		drop := false
		for i := 0; i < len(kept); i++ {
			switch Compare(kept[i], x) {
			case OEq:
				drop = true
			case OLt, OLe:
				if kind == KMin {
					drop = true // kept[i] ≤ x: x redundant in min
				} else {
					kept = append(kept[:i], kept[i+1:]...) // x ≥ kept[i]
					i--
				}
			case OGt, OGe:
				if kind == KMax {
					drop = true
				} else {
					kept = append(kept[:i], kept[i+1:]...)
					i--
				}
			}
			if drop {
				break
			}
		}
		if !drop {
			kept = append(kept, x)
		}
	}
	if len(kept) == 1 {
		return kept[0]
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].key < kept[j].key })
	if len(kept) > maxMinMaxArity {
		// Dropping operands from a min could raise its value (and dually for
		// max), so an over-wide list degrades to the conservative infinity.
		if kind == KMin {
			return negInf
		}
		return posInf
	}
	tag := "min"
	if kind == KMax {
		tag = "max"
	}
	e := &Expr{kind: kind, args: kept}
	keys := make([]string, len(kept))
	for i, x := range kept {
		keys[i] = x.key
	}
	e.key = tag + "{" + strings.Join(keys, ";") + "}"
	return e
}

// MinN folds Min over a non-empty operand list.
func MinN(xs ...*Expr) *Expr {
	r := xs[0]
	for _, x := range xs[1:] {
		r = Min(r, x)
	}
	return r
}

// MaxN folds Max over a non-empty operand list.
func MaxN(xs ...*Expr) *Expr {
	r := xs[0]
	for _, x := range xs[1:] {
		r = Max(r, x)
	}
	return r
}
