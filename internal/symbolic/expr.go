// Package symbolic implements the symbolic expression language used by the
// range analysis of §3.3 of "Symbolic Range Analysis of Pointers" (CGO'16):
//
//	E ::= n | s | min(E,E) | max(E,E) | E−E | E+E | E/E | E mod E | E×E
//
// augmented with the two infinities −∞ and +∞ that close the SymbRanges
// lattice. Expressions are immutable and hash-consed: constructors simplify
// eagerly, keep sums in a canonical linear form (a constant plus a sorted sum
// of coefficient×atom terms, where an atom is either a kernel symbol or an
// opaque non-linear subexpression), and intern every node, so structurally
// equal expressions built in one interner are pointer-equal. Structural
// equality and the partial-order comparison of §3.3 are therefore cheap —
// Equal is a pointer comparison and Compare runs on pooled scratch with no
// per-call string keys.
//
// The symbolic kernel of a program — names that cannot be expressed as a
// function of other names, e.g. function parameters and results of library
// calls — appears here as Sym values.
package symbolic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the expression node forms.
type Kind uint8

// Expression node kinds.
const (
	KConst  Kind = iota // integer literal
	KSym                // kernel symbol
	KSum                // canonical linear sum: k + Σ coeff·atom
	KMin                // n-ary minimum
	KMax                // n-ary maximum
	KMul                // non-linear product
	KDiv                // quotient
	KMod                // remainder
	KNegInf             // −∞
	KPosInf             // +∞
)

// Expr is an immutable, interned symbolic expression. The zero value is not
// valid; use the package constructors (Default interner) or an Interner's
// methods. Within one interner, structural equality is pointer equality.
//
// aliaslint:frozen — nodes are immutable once interned; only the interner
// (Interner.intern, at construction) writes fields.
type Expr struct {
	kind   Kind
	hasSym bool
	size   int32   // node count, computed at intern time
	k      int64   // KConst value; KSum constant part
	sym    string  // KSym name
	args   []*Expr // KMin/KMax operands; KMul/KDiv/KMod operands (2)
	// terms holds the linear part of a KSum, sorted by cmpExpr on the atom.
	terms []Term
	hash  uint64    // structural hash, fixed at intern time
	in    *Interner // owning interner; nil only for the infinity singletons
	// key caches the canonical debug string; computed lazily by Key/String,
	// never consulted on the analysis hot path.
	key atomic.Pointer[string]
	// syms caches the sorted distinct kernel symbols (lazily, once).
	syms atomic.Pointer[[]string]
}

// Term is one coeff·atom component of a canonical sum. Atom is either a
// symbol or an opaque (non-linear) subexpression.
type Term struct {
	Coeff int64
	Atom  *Expr
}

var (
	negInf = &Expr{kind: KNegInf, size: 1}
	posInf = &Expr{kind: KPosInf, size: 1}
)

func init() {
	// Distinct fixed hashes so the infinities can appear as children of
	// opaque nodes (Div involving ±∞ degrades to an opaque node).
	negInf.hash = hashNode(KNegInf, 0, "", nil, nil)
	posInf.hash = hashNode(KPosInf, 0, "", nil, nil)
}

// NegInf returns the −∞ expression.
func NegInf() *Expr { return negInf }

// PosInf returns the +∞ expression.
func PosInf() *Expr { return posInf }

// Zero returns the constant 0 (Default interner).
//
// aliaslint:default-interner
func Zero() *Expr { return defaultInterner.Zero() }

// One returns the constant 1 (Default interner).
//
// aliaslint:default-interner
func One() *Expr { return defaultInterner.One() }

// Const returns the integer constant c (Default interner).
//
// aliaslint:default-interner
func Const(c int64) *Expr { return defaultInterner.Const(c) }

// Sym returns the kernel symbol named s (Default interner).
//
// aliaslint:default-interner
func Sym(s string) *Expr { return defaultInterner.Sym(s) }

// Owner returns the interner that owns e. The infinity singletons belong to
// no interner and report the Default interner, which any interner's
// expressions may combine with. Owner is how interner-scoped code derives
// the right interner from an operand instead of reaching for the
// process-wide Default: `e.Owner().Const(c)` stays inside whatever interner
// produced e.
func (e *Expr) Owner() *Interner {
	if e.in == nil {
		return defaultInterner
	}
	return e.in
}

// Kind reports the node kind of e.
func (e *Expr) Kind() Kind { return e.kind }

// ConstValue reports the value of a constant expression.
func (e *Expr) ConstValue() (int64, bool) {
	if e.kind == KConst {
		return e.k, true
	}
	return 0, false
}

// SymName reports the name of a symbol expression.
func (e *Expr) SymName() (string, bool) {
	if e.kind == KSym {
		return e.sym, true
	}
	return "", false
}

// IsNegInf reports whether e is −∞.
func (e *Expr) IsNegInf() bool { return e.kind == KNegInf }

// IsPosInf reports whether e is +∞.
func (e *Expr) IsPosInf() bool { return e.kind == KPosInf }

// IsInf reports whether e is −∞ or +∞.
func (e *Expr) IsInf() bool { return e.kind == KNegInf || e.kind == KPosInf }

// IsConst reports whether e is an integer literal.
func (e *Expr) IsConst() bool { return e.kind == KConst }

// Size counts the nodes of e; the analyses use it to bound expression growth
// (§3.8 argues information per variable is O(1)). Sizes are computed once at
// intern time, so this is a field read.
func (e *Expr) Size() int { return int(e.size) }

// SplitConst decomposes a finite expression into e = shape + k, where shape
// carries no additive constant: a literal splits to (nil, value), a sum
// splits off its constant part (the remainder is interned, so equal shapes
// are pointer-equal), and every other node is its own shape with k = 0.
// Two expressions with the same shape differ by exactly k₁ − k₂ under every
// valuation — the decomposition behind the compiled index's constant-only
// disjointness fast path and the planner's symbolic sweep keys.
// Infinities split to themselves (they have no shape arithmetic).
func (e *Expr) SplitConst() (shape *Expr, k int64) {
	switch e.kind {
	case KConst:
		return nil, e.k
	case KSum:
		if e.k != 0 {
			return AddConst(e, -e.k), e.k
		}
		return e, 0
	default:
		return e, 0
	}
}

// Syms returns the distinct kernel symbols of e in canonical order. The
// slice is computed once per interned node and shared by every caller: treat
// it as read-only.
func (e *Expr) Syms() []string {
	if !e.hasSym {
		return nil
	}
	if p := e.syms.Load(); p != nil {
		return *p
	}
	set := map[string]bool{}
	e.collectSyms(set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	e.syms.Store(&out)
	return out
}

func (e *Expr) collectSyms(set map[string]bool) {
	switch e.kind {
	case KSym:
		set[e.sym] = true
	case KSum:
		for _, t := range e.terms {
			t.Atom.collectSyms(set)
		}
	default:
		for _, a := range e.args {
			a.collectSyms(set)
		}
	}
}

// HasSym reports whether e mentions any kernel symbol (i.e. is not a pure
// numeric expression). Infinities count as numeric. Computed at intern time.
func (e *Expr) HasSym() bool { return e.hasSym }

// Key returns a canonical string identity for e: two expressions with equal
// keys are structurally (and therefore semantically) equal after the
// constructor normalization, even across interners. The string is computed
// lazily and cached — it exists for debugging and serialization; equality
// within one interner is the pointer comparison Equal.
func (e *Expr) Key() string {
	if p := e.key.Load(); p != nil {
		return *p
	}
	s := e.computeKey()
	e.key.Store(&s)
	return s
}

func (e *Expr) computeKey() string {
	switch e.kind {
	case KConst:
		return strconv.FormatInt(e.k, 10)
	case KSym:
		return e.sym
	case KNegInf:
		return "-inf"
	case KPosInf:
		return "+inf"
	case KSum:
		var b strings.Builder
		b.WriteString("sum{")
		b.WriteString(strconv.FormatInt(e.k, 10))
		for _, t := range e.terms {
			b.WriteByte(';')
			b.WriteString(strconv.FormatInt(t.Coeff, 10))
			b.WriteByte('*')
			b.WriteString(t.Atom.Key())
		}
		b.WriteString("}")
		return b.String()
	}
	var tag string
	switch e.kind {
	case KMin:
		tag = "min"
	case KMax:
		tag = "max"
	case KMul:
		tag = "mul"
	case KDiv:
		tag = "div"
	case KMod:
		tag = "mod"
	default:
		tag = "?"
	}
	var b strings.Builder
	b.WriteString(tag)
	b.WriteByte('{')
	for i, a := range e.args {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(a.Key())
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether a and b are equal after canonicalization. Interned
// expressions are canonical, so this is pointer equality; expressions from
// *different* interners never compare equal (the analyses share the Default
// interner, so they never mix).
func Equal(a, b *Expr) bool { return a == b }

// String renders e in a stable human-readable form.
func (e *Expr) String() string {
	switch e.kind {
	case KConst:
		return strconv.FormatInt(e.k, 10)
	case KSym:
		return e.sym
	case KNegInf:
		return "-inf"
	case KPosInf:
		return "+inf"
	case KSum:
		var b strings.Builder
		first := true
		for _, t := range e.terms {
			at := t.Atom.String()
			if t.Atom.kind != KSym && t.Atom.kind != KConst {
				at = "(" + at + ")"
			}
			switch {
			case first && t.Coeff == 1:
				b.WriteString(at)
			case first && t.Coeff == -1:
				b.WriteString("-" + at)
			case first:
				fmt.Fprintf(&b, "%d*%s", t.Coeff, at)
			case t.Coeff == 1:
				b.WriteString(" + " + at)
			case t.Coeff == -1:
				b.WriteString(" - " + at)
			case t.Coeff < 0:
				fmt.Fprintf(&b, " - %d*%s", -t.Coeff, at)
			default:
				fmt.Fprintf(&b, " + %d*%s", t.Coeff, at)
			}
			first = false
		}
		switch {
		case first:
			fmt.Fprint(&b, e.k)
		case e.k > 0:
			fmt.Fprintf(&b, " + %d", e.k)
		case e.k < 0:
			fmt.Fprintf(&b, " - %d", -e.k)
		}
		return b.String()
	case KMin, KMax:
		name := "min"
		if e.kind == KMax {
			name = "max"
		}
		parts := make([]string, len(e.args))
		for i, a := range e.args {
			parts[i] = a.String()
		}
		return name + "(" + strings.Join(parts, ", ") + ")"
	case KMul:
		return "(" + e.args[0].String() + ")*(" + e.args[1].String() + ")"
	case KDiv:
		return "(" + e.args[0].String() + ")/(" + e.args[1].String() + ")"
	case KMod:
		return "(" + e.args[0].String() + ") mod (" + e.args[1].String() + ")"
	}
	return "?"
}

// ---------------------------------------------------------------------------
// Linear canonical form.

// linform is scratch space for the canonical linear view of an expression:
// k + Σ coeff·atom with terms sorted by cmpExpr on the atom. Instances come
// from a sync.Pool and never escape a constructor call; the interner copies
// the term slice only when a new node is actually created.
type linform struct {
	k     int64
	terms []Term
}

var linPool = sync.Pool{New: func() any { return new(linform) }}

func getLin() *linform {
	l := linPool.Get().(*linform)
	l.k = 0
	l.terms = l.terms[:0]
	return l
}

func putLin(l *linform) {
	if cap(l.terms) > 256 {
		l.terms = nil // don't let one huge expression pin scratch forever
	}
	linPool.Put(l)
}

// add folds coeff·atom into the sorted term list.
func (l *linform) add(coeff int64, atom *Expr) {
	if coeff == 0 {
		return
	}
	i := sort.Search(len(l.terms), func(i int) bool { return cmpExpr(l.terms[i].Atom, atom) >= 0 })
	if i < len(l.terms) && l.terms[i].Atom == atom {
		l.terms[i].Coeff += coeff
		if l.terms[i].Coeff == 0 {
			l.terms = append(l.terms[:i], l.terms[i+1:]...)
		}
		return
	}
	l.terms = append(l.terms, Term{})
	copy(l.terms[i+1:], l.terms[i:])
	l.terms[i] = Term{Coeff: coeff, Atom: atom}
}

// absorb folds scale·e into the form. e must be finite; non-linear subtrees
// become single atoms, and a KSum's terms merge pairwise (both sides sorted).
func (l *linform) absorb(scale int64, e *Expr) {
	switch e.kind {
	case KConst:
		l.k += scale * e.k
	case KSum:
		l.k += scale * e.k
		for _, t := range e.terms {
			l.add(scale*t.Coeff, t.Atom)
		}
	default:
		l.add(scale, e)
	}
}

// build interns the canonical expression for the form.
func (l *linform) build(in *Interner) *Expr {
	if len(l.terms) == 0 {
		return in.Const(l.k)
	}
	// A sum of exactly one unit-coefficient atom with no constant is the
	// atom itself.
	if l.k == 0 && len(l.terms) == 1 && l.terms[0].Coeff == 1 {
		return l.terms[0].Atom
	}
	return in.intern(KSum, l.k, "", nil, l.terms)
}

// Terms exposes the canonical decomposition of e as constant + terms, in
// canonical order. Every finite expression decomposes; infinities report
// ok=false. The returned slice is fresh and the caller may keep it.
func (e *Expr) Terms() (k int64, terms []Term, ok bool) {
	switch e.kind {
	case KNegInf, KPosInf:
		return 0, nil, false
	case KConst:
		return e.k, nil, true
	case KSum:
		return e.k, append([]Term(nil), e.terms...), true
	default:
		return 0, []Term{{Coeff: 1, Atom: e}}, true
	}
}

// ---------------------------------------------------------------------------
// Arithmetic constructors.

// Add returns a+b. Mixing opposite infinities is a caller bug: the interval
// layer guards bound arithmetic so that −∞ and +∞ never meet; Add panics if
// they do.
func Add(a, b *Expr) *Expr { return addScaled(a, b, 1) }

// Sub returns a−b, with the same infinity discipline as Add.
func Sub(a, b *Expr) *Expr { return addScaled(a, b, -1) }

func addScaled(a, b *Expr, sb int64) *Expr {
	if a.IsInf() || b.IsInf() {
		if sb < 0 {
			return addInf(a, Neg(b))
		}
		return addInf(a, b)
	}
	in := owner2(a, b)
	l := getLin()
	l.absorb(1, a)
	l.absorb(sb, b)
	e := l.build(in)
	putLin(l)
	return e
}

func addInf(a, b *Expr) *Expr {
	switch {
	case a.IsNegInf() && b.IsPosInf(), a.IsPosInf() && b.IsNegInf():
		panic("symbolic: +inf + -inf")
	case a.IsNegInf() || b.IsNegInf():
		return negInf
	default:
		return posInf
	}
}

// Neg returns −a.
func Neg(a *Expr) *Expr {
	switch a.kind {
	case KNegInf:
		return posInf
	case KPosInf:
		return negInf
	}
	return scale(a, -1)
}

// AddConst returns a+c.
func AddConst(a *Expr, c int64) *Expr {
	if c == 0 || a.IsInf() {
		return a
	}
	in := owner1(a)
	if a.kind == KConst {
		return in.Const(a.k + c)
	}
	l := getLin()
	l.absorb(1, a)
	l.k += c
	e := l.build(in)
	putLin(l)
	return e
}

// Mul returns a×b. Products simplify when either side is constant; a
// non-constant product is kept as an opaque node, canonically ordered.
func Mul(a, b *Expr) *Expr {
	if a.IsInf() || b.IsInf() {
		return mulInf(a, b)
	}
	if c, ok := a.ConstValue(); ok {
		return scale(b, c)
	}
	if c, ok := b.ConstValue(); ok {
		return scale(a, c)
	}
	in := owner2(a, b)
	// Canonical operand order for the opaque product.
	if cmpExpr(a, b) > 0 {
		a, b = b, a
	}
	return in.intern2(KMul, a, b)
}

// mulInf multiplies with at least one infinite operand. The sign of the
// finite side must be a known constant; an unknown-sign operand panics
// (interval code checks signs before scaling infinite bounds).
func mulInf(a, b *Expr) *Expr {
	if b.IsInf() && !a.IsInf() {
		a, b = b, a
	}
	// a is infinite.
	if b.IsInf() {
		if a.kind == b.kind {
			return posInf
		}
		return negInf
	}
	c, ok := b.ConstValue()
	if !ok {
		panic("symbolic: inf * non-constant")
	}
	switch {
	case c == 0:
		return owner1(b).Zero()
	case c > 0:
		return a
	case a.IsNegInf():
		return posInf
	default:
		return negInf
	}
}

func scale(a *Expr, c int64) *Expr {
	in := owner1(a)
	switch c {
	case 0:
		return in.Zero()
	case 1:
		return a
	}
	l := getLin()
	l.absorb(c, a)
	e := l.build(in)
	putLin(l)
	return e
}

// Div returns a/b (C-style truncated quotient in the concrete semantics).
// Constant folding applies when both operands are constants and b≠0.
func Div(a, b *Expr) *Expr {
	ca, aok := a.ConstValue()
	cb, bok := b.ConstValue()
	if aok && bok && cb != 0 {
		return owner2(a, b).Const(ca / cb)
	}
	if bok && cb == 1 {
		return a
	}
	// Division involving infinities is never produced by the analyses;
	// degrade to an opaque node that compares as unknown.
	return owner2(a, b).intern2(KDiv, a, b)
}

// Mod returns a mod b, folding constants (b≠0).
func Mod(a, b *Expr) *Expr {
	ca, aok := a.ConstValue()
	cb, bok := b.ConstValue()
	if aok && bok && cb != 0 {
		return owner2(a, b).Const(ca % cb)
	}
	return owner2(a, b).intern2(KMod, a, b)
}

// maxMinMaxArity caps min/max operand lists: join chains produced by the
// fixpoint otherwise grow without bound. Overflowing lists are still exact
// (the constructors drop provably redundant operands first); the interval
// layer applies the lossy ±∞ degradation using Expr.Size.
const maxMinMaxArity = 8

// Min returns min(a,b), flattening nested minima, deduplicating and dropping
// operands that are provably dominated.
func Min(a, b *Expr) *Expr { return minMax(KMin, a, b) }

// Max returns max(a,b), symmetric to Min.
func Max(a, b *Expr) *Expr { return minMax(KMax, a, b) }

func minMax(kind Kind, a, b *Expr) *Expr {
	// Infinity short-circuits.
	if kind == KMin {
		if a.IsNegInf() || b.IsNegInf() {
			return negInf
		}
		if a.IsPosInf() {
			return b
		}
		if b.IsPosInf() {
			return a
		}
	} else {
		if a.IsPosInf() || b.IsPosInf() {
			return posInf
		}
		if a.IsNegInf() {
			return b
		}
		if b.IsNegInf() {
			return a
		}
	}
	in := owner2(a, b)
	// Gather operands, flattening same-kind children.
	var ops [2 * maxMinMaxArity]*Expr
	n := 0
	for _, x := range [2]*Expr{a, b} {
		if x.kind == kind {
			n += copy(ops[n:], x.args)
		} else {
			ops[n] = x
			n++
		}
	}
	// Deduplicate and drop dominated operands.
	kept := ops[:0]
	for _, x := range ops[:n] {
		drop := false
		for i := 0; i < len(kept); i++ {
			switch Compare(kept[i], x) {
			case OEq:
				drop = true
			case OLt, OLe:
				if kind == KMin {
					drop = true // kept[i] ≤ x: x redundant in min
				} else {
					kept = append(kept[:i], kept[i+1:]...) // x ≥ kept[i]
					i--
				}
			case OGt, OGe:
				if kind == KMax {
					drop = true
				} else {
					kept = append(kept[:i], kept[i+1:]...)
					i--
				}
			}
			if drop {
				break
			}
		}
		if !drop {
			kept = append(kept, x)
		}
	}
	if len(kept) == 1 {
		return kept[0]
	}
	// Insertion sort: operand lists are ≤ 2·maxMinMaxArity and a closure-free
	// sort keeps the scratch array off the heap.
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && cmpExpr(kept[j-1], kept[j]) > 0; j-- {
			kept[j-1], kept[j] = kept[j], kept[j-1]
		}
	}
	if len(kept) > maxMinMaxArity {
		// Dropping operands from a min could raise its value (and dually for
		// max), so an over-wide list degrades to the conservative infinity.
		if kind == KMin {
			return negInf
		}
		return posInf
	}
	return in.intern(kind, 0, "", kept, nil)
}

// MinN folds Min over a non-empty operand list.
func MinN(xs ...*Expr) *Expr {
	r := xs[0]
	for _, x := range xs[1:] {
		r = Min(r, x)
	}
	return r
}

// MaxN folds Max over a non-empty operand list.
func MaxN(xs ...*Expr) *Expr {
	r := xs[0]
	for _, x := range xs[1:] {
		r = Max(r, x)
	}
	return r
}
