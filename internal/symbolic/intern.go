package symbolic

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Hash-consing interner. Every finite expression node is constructed through
// an Interner, which guarantees that structurally equal expressions built in
// the same interner are the *same pointer*: Equal is a pointer comparison,
// map keys are pointers, and the canonical string key exists only for
// debugging (computed lazily by Key/String). Nodes are immutable and the
// intern tables are sharded behind per-shard mutexes, so construction and
// querying are safe from any number of goroutines.
//
// The package-level constructors (Const, Sym, Add, …) all operate on the
// process-wide Default interner, which is what the analyses use: every
// module analysed in this process shares one node pool, so expressions
// dedupe across modules and queries never compare across interner
// boundaries. The tradeoff is retention: the Default pool is append-only,
// so nodes minted for a module outlive its analyses (module eviction in the
// service frees the analyses but not their interned expressions). That is
// bounded by *distinct* expressions ever built — re-uploading or rebuilding
// a module re-hits the same nodes — but a workload with unboundedly many
// structurally distinct modules grows the pool without bound. NewInterner
// is the isolation hatch for such lifecycles (each Expr carries its owner,
// and all arithmetic resolves the interner from its operands); wiring a
// per-module interner through the analyses' leaf constructors is follow-up
// work. Expressions from different interners must never meet in one
// operation — the constructors panic on a detected mix (infinities are
// interner-less singletons and mix freely).

// internShardCount spreads the intern table over independently locked
// shards; construction from parallel module builds rarely collides.
const internShardCount = 64

// Pre-interned small-constant range: Const(c) for c in [SmallConstMin,
// SmallConstMax] is a table lookup with no locking. The range covers the
// constants pointer arithmetic actually produces (field offsets, small
// strides, loop steps).
const (
	SmallConstMin = -16
	SmallConstMax = 64
)

// Interner hash-conses expression nodes. The zero value is not usable; call
// NewInterner, or use the package-level constructors (Default interner).
type Interner struct {
	shards   [internShardCount]internShard
	small    [SmallConstMax - SmallConstMin + 1]*Expr
	interned atomic.Int64
	hits     atomic.Int64
}

type internShard struct {
	mu    sync.Mutex
	table map[uint64][]*Expr
}

// InternStats snapshots an interner's counters.
type InternStats struct {
	// Interned counts distinct hash-consed nodes (live forever within the
	// interner's lifetime).
	Interned int64
	// Hits counts constructor calls served by an existing node.
	Hits int64
}

// NewInterner returns a fresh, empty interner with the small-constant table
// pre-populated.
func NewInterner() *Interner {
	it := &Interner{}
	for i := range it.shards {
		it.shards[i].table = make(map[uint64][]*Expr)
	}
	for c := int64(SmallConstMin); c <= SmallConstMax; c++ {
		it.small[c-SmallConstMin] = it.intern(KConst, c, "", nil, nil)
	}
	return it
}

var defaultInterner = NewInterner()

// Default returns the process-wide interner behind the package-level
// constructors.
func Default() *Interner { return defaultInterner }

// Stats snapshots the interner's counters.
func (it *Interner) Stats() InternStats {
	return InternStats{Interned: it.interned.Load(), Hits: it.hits.Load()}
}

// Const returns the interned integer constant c.
func (it *Interner) Const(c int64) *Expr {
	if c >= SmallConstMin && c <= SmallConstMax {
		return it.small[c-SmallConstMin]
	}
	return it.intern(KConst, c, "", nil, nil)
}

// Sym returns the interned kernel symbol named s.
func (it *Interner) Sym(s string) *Expr {
	return it.intern(KSym, 0, s, nil, nil)
}

// Zero returns the interned constant 0.
func (it *Interner) Zero() *Expr { return it.small[0-SmallConstMin] }

// One returns the interned constant 1.
func (it *Interner) One() *Expr { return it.small[1-SmallConstMin] }

// FNV-1a parameters for the structural hash.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashNode computes the structural hash of a prospective node from its
// shallow fields; children contribute their own (already computed) hashes,
// so hashing is O(shallow size).
func hashNode(kind Kind, k int64, sym string, args []*Expr, terms []Term) uint64 {
	h := fnvOffset
	h = (h ^ uint64(kind)) * fnvPrime
	h = (h ^ uint64(k)) * fnvPrime
	for i := 0; i < len(sym); i++ {
		h = (h ^ uint64(sym[i])) * fnvPrime
	}
	h = (h ^ uint64(len(sym))) * fnvPrime
	for _, a := range args {
		h = (h ^ a.hash) * fnvPrime
	}
	for _, t := range terms {
		h = (h ^ uint64(t.Coeff)) * fnvPrime
		h = (h ^ t.Atom.hash) * fnvPrime
	}
	return h
}

// shallowEq reports whether an interned node matches the prospective node
// field-for-field. Children compare by pointer: they are interned, so
// structural equality below this node is already pointer equality.
func shallowEq(e *Expr, kind Kind, k int64, sym string, args []*Expr, terms []Term) bool {
	if e.kind != kind || e.k != k || e.sym != sym ||
		len(e.args) != len(args) || len(e.terms) != len(terms) {
		return false
	}
	for i, a := range args {
		if e.args[i] != a {
			return false
		}
	}
	for i, t := range terms {
		if e.terms[i] != t {
			return false
		}
	}
	return true
}

// intern returns the canonical node for the given shape, creating it on
// first sight. args/terms may be caller scratch: they are copied only when a
// new node is created.
//
// aliaslint:mutator — the one place Expr fields are written, before the
// fresh node is published under the shard lock.
func (it *Interner) intern(kind Kind, k int64, sym string, args []*Expr, terms []Term) *Expr {
	h := hashNode(kind, k, sym, args, terms)
	sh := &it.shards[(h*0x9E3779B97F4A7C15)>>(64-6)]
	sh.mu.Lock()
	bucket := sh.table[h]
	for _, e := range bucket {
		if shallowEq(e, kind, k, sym, args, terms) {
			sh.mu.Unlock()
			it.hits.Add(1)
			return e
		}
	}
	e := &Expr{kind: kind, k: k, sym: sym, hash: h, in: it}
	if len(args) > 0 {
		e.args = append(make([]*Expr, 0, len(args)), args...)
	}
	if len(terms) > 0 {
		e.terms = append(make([]Term, 0, len(terms)), terms...)
	}
	size := int32(1)
	hasSym := kind == KSym
	for _, a := range e.args {
		size += a.size
		hasSym = hasSym || a.hasSym
	}
	for _, t := range e.terms {
		size += t.Atom.size
		hasSym = hasSym || t.Atom.hasSym
	}
	e.size = size
	e.hasSym = hasSym
	sh.table[h] = append(bucket, e)
	sh.mu.Unlock()
	it.interned.Add(1)
	return e
}

// intern2 interns a binary opaque node without forcing the operand pair
// onto the heap on the hit path.
func (it *Interner) intern2(kind Kind, a, b *Expr) *Expr {
	args := [2]*Expr{a, b}
	return it.intern(kind, 0, "", args[:], nil)
}

// owner1 resolves the interner an operation over a should build into:
// a's interner, or the default for the interner-less infinities.
func owner1(a *Expr) *Interner {
	if a.in != nil {
		return a.in
	}
	return defaultInterner
}

// owner2 resolves the interner for a binary operation and enforces the
// no-mixing contract.
func owner2(a, b *Expr) *Interner {
	switch {
	case a.in == nil:
		return owner1(b)
	case b.in != nil && b.in != a.in:
		panic("symbolic: operands from different interners")
	default:
		return a.in
	}
}

// cmpExpr is the deterministic total order used for canonical forms: sum
// terms are sorted by atom, min/max operand lists and opaque products by
// operand. Within one interner cmpExpr(a, b) == 0 iff a == b. The order is
// structural (kind, then shallow fields, then children), so it is stable
// across processes and independent of interning history.
func cmpExpr(a, b *Expr) int {
	if a == b {
		return 0
	}
	if a.kind != b.kind {
		return int(a.kind) - int(b.kind)
	}
	switch a.kind {
	case KConst:
		return cmp64(a.k, b.k)
	case KSym:
		return strings.Compare(a.sym, b.sym)
	case KSum:
		if c := cmp64(a.k, b.k); c != 0 {
			return c
		}
		if c := len(a.terms) - len(b.terms); c != 0 {
			return c
		}
		for i := range a.terms {
			if c := cmp64(a.terms[i].Coeff, b.terms[i].Coeff); c != 0 {
				return c
			}
			if c := cmpExpr(a.terms[i].Atom, b.terms[i].Atom); c != 0 {
				return c
			}
		}
		return 0
	default:
		if c := len(a.args) - len(b.args); c != 0 {
			return c
		}
		for i := range a.args {
			if c := cmpExpr(a.args[i], b.args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
