package symbolic

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The hash-consing invariants: within one interner, structural equality IS
// pointer equality — Equal(a,b) ⇔ a == b ⇔ Key(a) == Key(b) — canonical
// linear forms are order-independent, and the interner is safe under
// concurrent construction.

// TestInternDeterministic: replaying the same construction sequence yields
// the same pointers.
func TestInternDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			a := randExpr(r1, 3)
			b := randExpr(r2, 3)
			if a != b {
				t.Fatalf("seed %d expr %d: same construction produced distinct nodes %s / %s",
					seed, i, a, b)
			}
		}
	}
}

// TestEqualIffPointerEqual: over a pile of random expressions, pointer
// equality coincides with canonical-key equality (keys are injective on
// canonical forms, so this is structural equality).
func TestEqualIffPointerEqual(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	exprs := make([]*Expr, 0, 300)
	for i := 0; i < 300; i++ {
		exprs = append(exprs, randExpr(r, 3))
	}
	for i, a := range exprs {
		for _, b := range exprs[i:] {
			ptrEq := a == b
			keyEq := a.Key() == b.Key()
			if ptrEq != keyEq {
				t.Fatalf("intern invariant broken: ptrEq=%v keyEq=%v for %s / %s",
					ptrEq, keyEq, a, b)
			}
			if Equal(a, b) != ptrEq {
				t.Fatalf("Equal disagrees with pointer equality for %s / %s", a, b)
			}
		}
	}
}

// TestLinformOrderingStable: sums canonicalize identically regardless of
// construction order, and the term order is the stable structural order.
func TestLinformOrderingStable(t *testing.T) {
	a, b, c := Sym("a"), Sym("b"), Sym("c")
	e1 := Add(Add(a, b), c)
	e2 := Add(c, Add(b, a))
	e3 := Add(Add(c, a), b)
	if e1 != e2 || e2 != e3 {
		t.Fatalf("sum canonicalization depends on construction order: %p %p %p", e1, e2, e3)
	}
	if got := e1.String(); got != "a + b + c" {
		t.Errorf("canonical term order = %q, want %q", got, "a + b + c")
	}
	// Coefficients merge the same way from both directions, including
	// through scaled-zero terms and right-leaning construction.
	l := Sub(Add(Mul(Const(2), a), Mul(Const(3), b)), b)
	rr := Add(Mul(Const(2), b), Sub(Mul(Const(2), a), Mul(Const(0), c)))
	r2 := Add(Mul(Const(2), a), Mul(Const(2), b))
	if l != r2 {
		t.Fatalf("2a+3b-b = %s not interned with 2a+2b = %s", l, r2)
	}
	if rr != r2 {
		t.Fatalf("2b+(2a-0c) = %s not interned with 2a+2b = %s", rr, r2)
	}
	// Min/max operand order is canonical too.
	if Min(a, b) != Min(b, a) || Max(Min(a, b), c) != Max(c, Min(b, a)) {
		t.Fatalf("min/max canonicalization depends on operand order")
	}
}

// TestSmallConstTable: the pre-interned range is pointer-stable and larger
// constants still intern.
func TestSmallConstTable(t *testing.T) {
	for c := int64(SmallConstMin); c <= SmallConstMax; c++ {
		if Const(c) != Const(c) {
			t.Fatalf("small const %d not pre-interned", c)
		}
	}
	if Const(100000) != Const(100000) {
		t.Fatalf("large const not interned")
	}
	if Zero() != Const(0) || One() != Const(1) {
		t.Fatalf("Zero/One not the interned constants")
	}
}

// TestFreshInternerIsolation: a fresh interner builds its own node pool;
// keys match across interners but pointers (and Equal) do not, and mixing
// operands from two interners panics.
func TestFreshInternerIsolation(t *testing.T) {
	it := NewInterner()
	n1 := it.Sym("N")
	n2 := Sym("N")
	if n1 == n2 {
		t.Fatalf("fresh interner shares nodes with the default")
	}
	if n1.Key() != n2.Key() {
		t.Fatalf("structurally equal nodes have different keys across interners")
	}
	e1 := AddConst(n1, 3)
	e2 := AddConst(n2, 3)
	if e1.Key() != e2.Key() {
		t.Fatalf("cross-interner keys diverge: %q vs %q", e1.Key(), e2.Key())
	}
	if Equal(e1, e2) {
		t.Fatalf("Equal must not hold across interners")
	}
	st := it.Stats()
	if st.Interned == 0 {
		t.Fatalf("fresh interner counted no interned nodes")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("mixing interners must panic")
		}
	}()
	Add(n1, n2)
}

// TestConcurrentInternRaceClean hammers one interner from many goroutines
// building overlapping expressions; under -race this doubles as the
// concurrency contract check, and afterwards every goroutine must have
// received the same pointers for the same constructions.
func TestConcurrentInternRaceClean(t *testing.T) {
	const goroutines = 8
	const rounds = 400
	results := make([][]*Expr, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(42)) // same seed: same constructions
			out := make([]*Expr, 0, rounds)
			for i := 0; i < rounds; i++ {
				e := randExpr(r, 3)
				// Exercise the lazy caches concurrently too.
				_ = e.Key()
				_ = e.Syms()
				_ = e.String()
				out = append(out, e)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[0][i] != results[g][i] {
				t.Fatalf("goroutine %d expr %d interned to a different node", g, i)
			}
		}
	}
}

// TestSymsCached: the cached symbol set is stable and correct.
func TestSymsCached(t *testing.T) {
	e := Add(Min(Sym("x"), Sym("y")), Mul(Sym("z"), Sym("x")))
	s1 := e.Syms()
	s2 := e.Syms()
	if &s1[0] != &s2[0] {
		t.Errorf("Syms not cached: distinct backing arrays")
	}
	want := []string{"x", "y", "z"}
	if len(s1) != len(want) {
		t.Fatalf("Syms = %v, want %v", s1, want)
	}
	for i := range want {
		if s1[i] != want[i] {
			t.Fatalf("Syms = %v, want %v", s1, want)
		}
	}
	if got := Const(4).Syms(); len(got) != 0 {
		t.Errorf("const Syms = %v, want empty", got)
	}
}

// FuzzInternCanonical drives a tiny stack machine over the fuzz input and
// checks the central invariant on the result: rebuilding the same program
// yields the same pointer, and key equality tracks pointer equality against
// a reference expression.
func FuzzInternCanonical(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{10, 200, 30, 41, 52, 63, 74, 85})
	f.Add([]byte("symbolic-range-analysis"))
	build := func(data []byte) *Expr {
		stack := []*Expr{Sym("a"), Sym("b"), Const(2)}
		pop := func() *Expr {
			e := stack[len(stack)-1]
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
			return e
		}
		for _, op := range data {
			var e *Expr
			switch op % 8 {
			case 0:
				e = Const(int64(op) - 128)
			case 1:
				e = Sym(fmt.Sprintf("s%d", op%4))
			case 2, 3, 4:
				x, y := pop(), pop()
				if x.IsInf() || y.IsInf() {
					// Mixing opposite infinities in Add/Sub (and scaling an
					// infinity by a non-constant in Mul) is a documented
					// caller bug; the interval layer guards it, so the fuzz
					// machine does too.
					e = Min(x, y)
				} else if op%8 == 2 {
					e = Add(x, y)
				} else if op%8 == 3 {
					e = Sub(x, y)
				} else {
					e = Mul(x, y)
				}
			case 5:
				e = Min(pop(), pop())
			case 6:
				e = Max(pop(), pop())
			default:
				e = Mod(pop(), pop())
			}
			stack = append(stack, e)
		}
		return stack[len(stack)-1]
	}
	ref := Add(Sym("a"), Const(1))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			return
		}
		e1 := build(data)
		e2 := build(data)
		if e1 != e2 {
			t.Fatalf("same program interned to different nodes: %s / %s", e1, e2)
		}
		if (e1 == ref) != (e1.Key() == ref.Key()) {
			t.Fatalf("key/pointer equality diverge for %s", e1)
		}
		if !e1.IsInf() {
			if _, _, ok := e1.Terms(); !ok {
				t.Fatalf("finite expression failed to decompose: %s", e1)
			}
		}
	})
}
