package symbolic

import (
	"math/rand"
	"testing"
)

// These tests pin the interner-isolation contract that aliaslint's
// internermix analyzer enforces statically: expressions from different
// interners never meet in one operation, every finite expression knows its
// owner, and the interner-less infinities mix freely.

func TestNewInternerIsolation(t *testing.T) {
	a := NewInterner()
	b := NewInterner()

	// Structurally equal expressions from one interner are the same pointer;
	// from two interners they are distinct pointers with the same key.
	ea := Add(a.Sym("x"), a.Const(3))
	ea2 := Add(a.Sym("x"), a.Const(3))
	eb := Add(b.Sym("x"), b.Const(3))
	if ea != ea2 {
		t.Fatalf("same interner, same structure: want identical pointers")
	}
	if ea == eb {
		t.Fatalf("different interners returned the same node")
	}
	if ea.Key() != eb.Key() {
		t.Fatalf("keys diverge across interners: %q vs %q", ea.Key(), eb.Key())
	}

	// A fresh interner's pool is independent of Default: minting into it
	// must not grow the Default interner.
	before := Default().Stats().Interned
	for i := 0; i < 100; i++ {
		Add(a.Sym("iso"), a.Const(int64(1000+i)))
	}
	if after := Default().Stats().Interned; after != before {
		t.Fatalf("building in a private interner grew Default by %d nodes", after-before)
	}
}

func TestExprOwnerRoundTrip(t *testing.T) {
	in := NewInterner()
	cases := []*Expr{
		in.Sym("p"),
		in.Const(999), // outside the small-constant table
		in.Const(1),   // inside it
		Add(in.Sym("p"), in.One()),
		Mul(in.Sym("p"), in.Sym("q")),
		Min(in.Sym("p"), in.Const(7)),
	}
	for _, e := range cases {
		if e.Owner() != in {
			t.Errorf("%s: Owner() = %p, want the minting interner %p", e, e.Owner(), in)
		}
	}
	// Default-built expressions report the Default interner.
	if e := Add(Sym("d"), One()); e.Owner() != Default() {
		t.Errorf("default-built expr owner = %p, want Default()", e.Owner())
	}
	// Infinities are interner-less singletons; Owner falls back to Default.
	if NegInf().Owner() != Default() || PosInf().Owner() != Default() {
		t.Errorf("infinity Owner() should fall back to Default()")
	}
}

func TestCrossInternerMixPanics(t *testing.T) {
	a := NewInterner()
	b := NewInterner()
	ops := map[string]func(){
		"Add": func() { Add(a.Sym("x"), b.Sym("y")) },
		"Sub": func() { Sub(a.Sym("x"), b.Const(200)) },
		"Mul": func() { Mul(a.Sym("x"), b.Sym("y")) },
		"Min": func() { Min(a.Sym("x"), b.Sym("y")) },
		"Max": func() { Max(a.Const(300), b.Sym("y")) },
	}
	for name, op := range ops {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s across interners: want panic, got none", name)
				}
			}()
			op()
		}()
	}
}

func TestInfinitiesMixAcrossInterners(t *testing.T) {
	in := NewInterner()
	x := in.Sym("x")
	if e := Add(x, PosInf()); !e.IsPosInf() {
		t.Errorf("x + +inf = %s, want +inf", e)
	}
	if e := Min(NegInf(), x); !e.IsNegInf() {
		t.Errorf("min(-inf, x) = %s, want -inf", e)
	}
	// max(-inf, x) resolves to x itself — owned by the private interner.
	if e := Max(NegInf(), x); e != x {
		t.Errorf("max(-inf, x) = %s, want x", e)
	}
}

// TestInternerIsolationProperty builds the same pseudo-random expression
// stream into two interners and checks the pools stay mirror images:
// identical keys, identical stats, disjoint node sets.
func TestInternerIsolationProperty(t *testing.T) {
	a := NewInterner()
	b := NewInterner()
	rng := rand.New(rand.NewSource(61)) // deterministic
	syms := []string{"p", "q", "r"}

	build := func(in *Interner, pick func() int) *Expr {
		e := in.Sym(syms[pick()%len(syms)])
		for i := 0; i < 6; i++ {
			o := in.Const(int64(pick()%40 - 20))
			switch pick() % 4 {
			case 0:
				e = Add(e, o)
			case 1:
				e = Sub(e, in.Sym(syms[pick()%len(syms)]))
			case 2:
				e = Min(e, o)
			case 3:
				e = Max(e, o)
			}
		}
		return e
	}

	for round := 0; round < 200; round++ {
		var seq []int
		pickA := func() int { n := rng.Intn(1 << 16); seq = append(seq, n); return n }
		ea := build(a, pickA)
		i := 0
		pickB := func() int { n := seq[i]; i++; return n }
		eb := build(b, pickB)

		if ea.Key() != eb.Key() {
			t.Fatalf("round %d: keys diverge: %q vs %q", round, ea.Key(), eb.Key())
		}
		if ea == eb {
			t.Fatalf("round %d: node shared across interners: %s", round, ea)
		}
		if ea.Owner() != a || eb.Owner() != b {
			t.Fatalf("round %d: owner mismatch", round)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("mirrored builds, divergent stats: %+v vs %+v", sa, sb)
	}
}
