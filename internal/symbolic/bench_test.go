package symbolic

import (
	"fmt"
	"testing"
)

// Benchmarks for the hot constructors of the symbolic kernel. The range and
// pointer analyses are dominated by Add/Sub (offset propagation), Min/Max
// (joins) and Compare (disjointness proofs), so these are the allocation
// budgets that decide module-build latency. Run with -benchmem; the PR
// recording a representation change must quote before/after allocs/op.

// benchSyms returns a fixed set of kernel symbols shaped like the ones
// rangeanal mints (function-qualified value names).
func benchSyms(n int) []*Expr {
	out := make([]*Expr, n)
	for i := range out {
		out[i] = Sym(fmt.Sprintf("f.v%d", i))
	}
	return out
}

func BenchmarkAdd(b *testing.B) {
	syms := benchSyms(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A chain of adds over a few symbols with constants folded in —
		// the shape PtrAdd offset propagation produces.
		e := Const(int64(i & 7))
		for _, s := range syms {
			e = Add(e, s)
		}
		e = Sub(e, syms[0])
		if e == nil {
			b.Fatal("nil expr")
		}
	}
}

func BenchmarkAddConstSmall(b *testing.B) {
	s := Sym("f.n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := AddConst(s, int64(i&15)+1)
		if e == nil {
			b.Fatal("nil expr")
		}
	}
}

func BenchmarkMul(b *testing.B) {
	syms := benchSyms(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Mul(syms[i&3], syms[(i+1)&3])
		e = Mul(e, Const(int64(i&7)+2))
		if e == nil {
			b.Fatal("nil expr")
		}
	}
}

func BenchmarkMinMax(b *testing.B) {
	syms := benchSyms(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Min(syms[i&3], AddConst(syms[(i+1)&3], 4))
		e = Max(e, Const(int64(i&7)))
		if e == nil {
			b.Fatal("nil expr")
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	s := Sym("f.n")
	a1 := AddConst(s, 1)
	a2 := AddConst(s, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Compare(a1, a2) != OLt {
			b.Fatal("wrong order")
		}
	}
}

func BenchmarkSyms(b *testing.B) {
	syms := benchSyms(6)
	e := Const(3)
	for _, s := range syms {
		e = Add(e, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.Syms()) != 6 {
			b.Fatal("wrong sym count")
		}
	}
}
