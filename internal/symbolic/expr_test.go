package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		got  *Expr
		want string
	}{
		{Add(Const(2), Const(3)), "5"},
		{Sub(Const(2), Const(3)), "-1"},
		{Mul(Const(4), Const(3)), "12"},
		{Div(Const(7), Const(2)), "3"},
		{Div(Const(-7), Const(2)), "-3"},
		{Mod(Const(7), Const(3)), "1"},
		{Min(Const(2), Const(5)), "2"},
		{Max(Const(2), Const(5)), "5"},
		{Neg(Const(4)), "-4"},
	}
	for _, c := range cases {
		if c.got.String() != c.want {
			t.Errorf("got %s, want %s", c.got, c.want)
		}
	}
}

func TestLinearCanonicalization(t *testing.T) {
	n := Sym("N")
	m := Sym("M")
	// N + M == M + N
	if !Equal(Add(n, m), Add(m, n)) {
		t.Errorf("addition not commutative after canonicalization")
	}
	// (N + 1) - 1 == N
	if got := Sub(AddConst(n, 1), Const(1)); !Equal(got, n) {
		t.Errorf("(N+1)-1 = %s, want N", got)
	}
	// N - N == 0
	if got := Sub(n, n); !Equal(got, Zero()) {
		t.Errorf("N-N = %s, want 0", got)
	}
	// 2*N + 3*N == 5*N
	if got, want := Add(Mul(Const(2), n), Mul(Const(3), n)), Mul(Const(5), n); !Equal(got, want) {
		t.Errorf("2N+3N = %s, want %s", got, want)
	}
	// N + M - M == N
	if got := Sub(Add(n, m), m); !Equal(got, n) {
		t.Errorf("N+M-M = %s, want N", got)
	}
	// Opaque atoms cancel: min(N,M) - min(N,M) == 0
	mn := Min(n, m)
	if got := Sub(mn, mn); !Equal(got, Zero()) {
		t.Errorf("min(N,M)-min(N,M) = %s, want 0", got)
	}
}

func TestCompareConstants(t *testing.T) {
	if got := Compare(Const(1), Const(2)); got != OLt {
		t.Errorf("1 vs 2 = %v", got)
	}
	if got := Compare(Const(2), Const(1)); got != OGt {
		t.Errorf("2 vs 1 = %v", got)
	}
	if got := Compare(Const(2), Const(2)); got != OEq {
		t.Errorf("2 vs 2 = %v", got)
	}
}

func TestCompareSymbolic(t *testing.T) {
	n := Sym("N")
	m := Sym("M")
	// N < N+1 (the paper's example).
	if got := Compare(n, AddConst(n, 1)); got != OLt {
		t.Errorf("N vs N+1 = %v, want <", got)
	}
	// No relation between N and M.
	if got := Compare(n, m); got != OUnknown {
		t.Errorf("N vs M = %v, want unknown", got)
	}
	// N+M-1 < N+M.
	a := AddConst(Add(n, m), -1)
	b := Add(n, m)
	if got := Compare(a, b); got != OLt {
		t.Errorf("N+M-1 vs N+M = %v, want <", got)
	}
	// 2N vs N unknown (sign of N unknown).
	if got := Compare(Mul(Const(2), n), n); got != OUnknown {
		t.Errorf("2N vs N = %v, want unknown", got)
	}
}

func TestCompareInfinities(t *testing.T) {
	n := Sym("N")
	if got := Compare(NegInf(), n); got != OLt {
		t.Errorf("-inf vs N = %v", got)
	}
	if got := Compare(n, PosInf()); got != OLt {
		t.Errorf("N vs +inf = %v", got)
	}
	if got := Compare(NegInf(), PosInf()); got != OLt {
		t.Errorf("-inf vs +inf = %v", got)
	}
	if got := Compare(PosInf(), PosInf()); got != OEq {
		t.Errorf("+inf vs +inf = %v", got)
	}
}

func TestMinMaxSimplification(t *testing.T) {
	n := Sym("N")
	// min(N, N+1) == N
	if got := Min(n, AddConst(n, 1)); !Equal(got, n) {
		t.Errorf("min(N,N+1) = %s, want N", got)
	}
	// max(N, N+1) == N+1
	if got := Max(n, AddConst(n, 1)); !Equal(got, AddConst(n, 1)) {
		t.Errorf("max(N,N+1) = %s, want N+1", got)
	}
	// min with -inf
	if got := Min(n, NegInf()); !got.IsNegInf() {
		t.Errorf("min(N,-inf) = %s", got)
	}
	// min with +inf is identity
	if got := Min(n, PosInf()); !Equal(got, n) {
		t.Errorf("min(N,+inf) = %s", got)
	}
	// flattening + dedup: min(min(N,M), N) has two operands
	m := Sym("M")
	got := Min(Min(n, m), n)
	if !Equal(got, Min(n, m)) {
		t.Errorf("min(min(N,M),N) = %s, want min(M,N)", got)
	}
}

func TestMinMaxBoundReasoning(t *testing.T) {
	n := Sym("N")
	m := Sym("M")
	mn := Min(n, m)
	mx := Max(n, m)
	if got := Compare(mn, n); !got.ProvesLE() {
		t.Errorf("min(N,M) vs N = %v, want <=", got)
	}
	if got := Compare(mx, n); !got.ProvesGE() {
		t.Errorf("max(N,M) vs N = %v, want >=", got)
	}
	if got := Compare(n, mn); !got.ProvesGE() {
		t.Errorf("N vs min(N,M) = %v, want >=", got)
	}
	// min(N,M) ≤ max(N,M): provable since every min operand is ≤ some max operand.
	if got := Compare(mn, mx); got.ProvesGT() {
		t.Errorf("min vs max = %v: unsound", got)
	}
}

func TestMinMaxArityCap(t *testing.T) {
	// Overflowing the operand cap degrades to the conservative infinity.
	e := Sym("s0")
	for i := 1; i < 2*maxMinMaxArity; i++ {
		e = Min(e, Sym(sname(i)))
	}
	if !e.IsNegInf() {
		t.Errorf("oversized min should degrade to -inf, got %s", e)
	}
	e = Sym("s0")
	for i := 1; i < 2*maxMinMaxArity; i++ {
		e = Max(e, Sym(sname(i)))
	}
	if !e.IsPosInf() {
		t.Errorf("oversized max should degrade to +inf, got %s", e)
	}
}

func sname(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestEval(t *testing.T) {
	n := Sym("N")
	m := Sym("M")
	env := map[string]int64{"N": 7, "M": 3}
	cases := []struct {
		e    *Expr
		want int64
	}{
		{Add(n, m), 10},
		{Sub(n, m), 4},
		{Mul(n, m), 21},
		{Div(n, m), 2},
		{Mod(n, m), 1},
		{Min(n, m), 3},
		{Max(n, m), 7},
		{AddConst(Mul(Const(2), n), -1), 13},
	}
	for _, c := range cases {
		got, ok := c.e.Eval(env)
		if !ok || got != c.want {
			t.Errorf("%s = %d (ok=%v), want %d", c.e, got, ok, c.want)
		}
	}
	if _, ok := n.Eval(map[string]int64{}); ok {
		t.Errorf("eval with missing symbol should fail")
	}
	if _, ok := PosInf().Eval(env); ok {
		t.Errorf("eval of +inf should fail")
	}
}

// randExpr builds a random expression over symbols a,b,c with bounded depth.
func randExpr(r *rand.Rand, depth int) *Expr {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(2) {
		case 0:
			return Const(int64(r.Intn(21) - 10))
		default:
			return Sym(string(rune('a' + r.Intn(3))))
		}
	}
	x := randExpr(r, depth-1)
	y := randExpr(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return Add(x, y)
	case 1:
		return Sub(x, y)
	case 2:
		return Mul(x, y)
	case 3:
		return Min(x, y)
	case 4:
		return Max(x, y)
	default:
		return Mod(x, y)
	}
}

// TestCompareSoundProperty: whenever Compare proves a relation, the relation
// holds under random valuations of the symbols.
func TestCompareSoundProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	checked := 0
	for i := 0; i < 3000; i++ {
		a := randExpr(r, 3)
		b := randExpr(r, 3)
		o := Compare(a, b)
		if o == OUnknown {
			continue
		}
		for trial := 0; trial < 20; trial++ {
			env := map[string]int64{
				"a": int64(r.Intn(41) - 20),
				"b": int64(r.Intn(41) - 20),
				"c": int64(r.Intn(41) - 20),
			}
			va, oka := a.Eval(env)
			vb, okb := b.Eval(env)
			if !oka || !okb {
				continue
			}
			checked++
			ok := true
			switch o {
			case OLt:
				ok = va < vb
			case OLe:
				ok = va <= vb
			case OEq:
				ok = va == vb
			case OGe:
				ok = va >= vb
			case OGt:
				ok = va > vb
			}
			if !ok {
				t.Fatalf("Compare(%s, %s)=%v but eval gives %d vs %d under %v",
					a, b, o, va, vb, env)
			}
		}
	}
	if checked == 0 {
		t.Fatalf("property test never exercised a proven comparison")
	}
}

// TestEvalMatchesCanonicalization: canonicalized expressions evaluate the
// same as the naive recursive semantics (checked via Add/Sub identities).
func TestEvalMatchesCanonicalization(t *testing.T) {
	f := func(x, y, z int8) bool {
		env := map[string]int64{"a": int64(x), "b": int64(y), "c": int64(z)}
		a, b, c := Sym("a"), Sym("b"), Sym("c")
		e1 := Add(Add(a, b), c)
		e2 := Add(a, Add(b, c))
		v1, ok1 := e1.Eval(env)
		v2, ok2 := e2.Eval(env)
		if !ok1 || !ok2 || v1 != v2 {
			return false
		}
		e3 := Sub(Mul(Const(2), Add(a, b)), Add(a, b))
		v3, ok3 := e3.Eval(env)
		return ok3 && v3 == int64(x)+int64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringStability(t *testing.T) {
	n, m := Sym("N"), Sym("M")
	e := Add(AddConst(Mul(Const(2), n), 3), m)
	if got := e.String(); got != "M + 2*N + 3" {
		t.Errorf("String() = %q", got)
	}
	if got := Sub(Zero(), n).String(); got != "-N" {
		t.Errorf("String() = %q", got)
	}
	if got := Min(n, m).String(); got != "min(M, N)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSyms(t *testing.T) {
	n, m := Sym("N"), Sym("M")
	e := Add(Min(n, m), Const(3))
	got := e.Syms()
	if len(got) != 2 || got[0] != "M" || got[1] != "N" {
		t.Errorf("Syms = %v", got)
	}
	if !e.HasSym() {
		t.Errorf("HasSym should be true")
	}
	if Const(3).HasSym() {
		t.Errorf("const HasSym should be false")
	}
}
