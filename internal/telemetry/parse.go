package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one exposition line: the full sample name (including a
// histogram's _bucket/_sum/_count suffix), its label set, and the value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily groups the samples that follow one # TYPE declaration.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// Parse decodes a Prometheus text exposition into its families, in input
// order. It accepts exactly what promtool's parser accepts on the subset
// this repository emits: HELP/TYPE comment lines, samples with optional
// label sets and optional timestamps, escaped label values, and other #
// comments (ignored). Samples with no preceding TYPE line are collected
// under an implicit "untyped" family.
func Parse(text string) ([]*ParsedFamily, error) {
	var fams []*ParsedFamily
	byName := map[string]*ParsedFamily{}
	familyOf := func(name string) *ParsedFamily {
		// A sample belongs to the family whose name it carries, or — for
		// histograms — whose name plus _bucket/_sum/_count it carries.
		if f, ok := byName[name]; ok {
			return f
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suffix)
			if !ok {
				continue
			}
			if f, ok := byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return f
			}
		}
		return nil
	}

	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment
			}
			f := byName[name]
			if f == nil {
				f = &ParsedFamily{Name: name, Type: "untyped"}
				byName[name] = f
				fams = append(fams, f)
			}
			switch kind {
			case "HELP":
				f.Help = unescapeHelp(rest)
			case "TYPE":
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.Type = rest
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		f := familyOf(s.Name)
		if f == nil {
			f = &ParsedFamily{Name: s.Name, Type: "untyped"}
			byName[s.Name] = f
			fams = append(fams, f)
		}
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

// FindFamily returns the named family, or nil.
func FindFamily(fams []*ParsedFamily, name string) *ParsedFamily {
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Histogram reassembles a parsed histogram family into a snapshot,
// summing across any label sets beyond `le` (cumulative counts sum to
// cumulative counts). All label sets must share one bucket layout.
func (f *ParsedFamily) Histogram() (HistogramSnapshot, error) {
	if f.Type != "histogram" {
		return HistogramSnapshot{}, fmt.Errorf("family %s has type %s, not histogram", f.Name, f.Type)
	}
	byBound := map[float64]int64{}
	var snap HistogramSnapshot
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return HistogramSnapshot{}, fmt.Errorf("%s sample without le label", s.Name)
			}
			if le == "+Inf" {
				snap.Count += int64(s.Value)
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return HistogramSnapshot{}, fmt.Errorf("%s: bad le %q: %v", s.Name, le, err)
			}
			byBound[b] += int64(s.Value)
		case f.Name + "_sum":
			snap.Sum += s.Value
		}
	}
	snap.Bounds = make([]float64, 0, len(byBound))
	for b := range byBound {
		snap.Bounds = append(snap.Bounds, b)
	}
	sort.Float64s(snap.Bounds)
	snap.Counts = make([]int64, len(snap.Bounds))
	for i, b := range snap.Bounds {
		snap.Counts[i] = byBound[b]
	}
	return snap, nil
}

// Lint validates a text exposition the way `promtool check metrics` does,
// restricted to hard errors: syntactic validity of every line, metric and
// label name grammar, known TYPE values, no duplicate HELP/TYPE, no
// interleaved families, no duplicate samples, counter values non-negative,
// and histogram coherence (le-sorted cumulative buckets ending in a +Inf
// bucket that matches _count). It is the in-repo stand-in CI runs over the
// live /metrics output instead of depending on promtool.
func Lint(text string) error {
	fams, err := Parse(text)
	if err != nil {
		return err
	}
	seenSample := map[string]bool{}
	for _, f := range fams {
		if !metricNameRe.MatchString(f.Name) {
			return fmt.Errorf("invalid metric name %q", f.Name)
		}
		for _, s := range f.Samples {
			if !validSampleName(f, s.Name) {
				return fmt.Errorf("sample %q does not belong to family %q (type %s)", s.Name, f.Name, f.Type)
			}
			for ln := range s.Labels {
				if !labelNameRe.MatchString(ln) {
					return fmt.Errorf("sample %q: invalid label name %q", s.Name, ln)
				}
			}
			key := s.Name + "{" + canonLabels(s.Labels) + "}"
			if seenSample[key] {
				return fmt.Errorf("duplicate sample %s", key)
			}
			seenSample[key] = true
			if f.Type == "counter" && (s.Value < 0 || math.IsNaN(s.Value)) {
				return fmt.Errorf("counter sample %s has invalid value %v", key, s.Value)
			}
		}
		if f.Type == "histogram" {
			if err := lintHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func validSampleName(f *ParsedFamily, name string) bool {
	if name == f.Name {
		return f.Type != "histogram" && f.Type != "summary"
	}
	switch f.Type {
	case "histogram":
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	case "summary":
		return name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return false
}

// lintHistogram checks each label subset (the sample's labels minus le)
// forms a coherent series: cumulative non-decreasing bucket counts in
// ascending le order, a +Inf bucket, and _count equal to it.
func lintHistogram(f *ParsedFamily) error {
	type series struct {
		bounds []float64
		counts []int64
		inf    *int64
		count  *int64
		sum    bool
	}
	bySubset := map[string]*series{}
	get := func(labels map[string]string) *series {
		sub := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				sub[k] = v
			}
		}
		key := canonLabels(sub)
		s := bySubset[key]
		if s == nil {
			s = &series{}
			bySubset[key] = s
		}
		return s
	}
	for _, smp := range f.Samples {
		s := get(smp.Labels)
		switch smp.Name {
		case f.Name + "_bucket":
			le := smp.Labels["le"]
			if le == "" {
				return fmt.Errorf("%s: bucket sample without le", f.Name)
			}
			if le == "+Inf" {
				v := int64(smp.Value)
				s.inf = &v
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: unparseable le %q", f.Name, le)
			}
			s.bounds = append(s.bounds, b)
			s.counts = append(s.counts, int64(smp.Value))
		case f.Name + "_sum":
			s.sum = true
		case f.Name + "_count":
			v := int64(smp.Value)
			s.count = &v
		}
	}
	for key, s := range bySubset {
		for i := 1; i < len(s.bounds); i++ {
			if s.bounds[i-1] >= s.bounds[i] {
				return fmt.Errorf("%s{%s}: bucket bounds not ascending (%v after %v)", f.Name, key, s.bounds[i], s.bounds[i-1])
			}
			if s.counts[i-1] > s.counts[i] {
				return fmt.Errorf("%s{%s}: bucket counts not cumulative (le=%v has %d, le=%v has %d)",
					f.Name, key, s.bounds[i-1], s.counts[i-1], s.bounds[i], s.counts[i])
			}
		}
		if s.inf == nil {
			return fmt.Errorf("%s{%s}: histogram lacks a +Inf bucket", f.Name, key)
		}
		if n := len(s.counts); n > 0 && s.counts[n-1] > *s.inf {
			return fmt.Errorf("%s{%s}: +Inf bucket %d below last finite bucket %d", f.Name, key, *s.inf, s.counts[n-1])
		}
		if s.count == nil || !s.sum {
			return fmt.Errorf("%s{%s}: histogram lacks _count or _sum", f.Name, key)
		}
		if *s.count != *s.inf {
			return fmt.Errorf("%s{%s}: _count %d != +Inf bucket %d", f.Name, key, *s.count, *s.inf)
		}
	}
	return nil
}

func canonLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + `="` + labels[k] + `"`
	}
	return strings.Join(parts, ",")
}

// parseComment decodes `# HELP name rest` / `# TYPE name rest` lines.
func parseComment(line string) (kind, name, rest string, ok bool) {
	body, found := strings.CutPrefix(line, "# ")
	if !found {
		return "", "", "", false
	}
	kind, body, found = strings.Cut(body, " ")
	if !found || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", false
	}
	name, rest, _ = strings.Cut(body, " ")
	return kind, name, rest, true
}

// parseSample decodes one `name{labels} value [timestamp]` line.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels decodes a `{name="value",...}` block starting at text[0] ==
// '{'; returns the index just past the closing brace.
func parseLabels(text string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(text) && (text[i] == ' ' || text[i] == ',') {
			i++
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("malformed label block %q", text)
		}
		name := text[i : i+eq]
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", text)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", text)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, nil, fmt.Errorf("dangling escape in %q", text)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("unknown escape \\%c in %q", text[i+1], text)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q in %q", name, text)
		}
		labels[name] = val.String()
	}
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
