package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the rendered text exposition byte-for-byte:
// HELP/TYPE framing, label and help escaping, cumulative le buckets with a
// +Inf terminator, _sum/_count, sorted vec children, and collector
// emission. Any format drift that would break a Prometheus scraper breaks
// this test first.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app_requests_total", "Requests served.")
	c.Add(3)
	g := reg.Gauge("app_temperature", "Current temp.\nWith a newline and a back\\slash.")
	g.Set(36.6)
	reg.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 12 })
	reg.CounterFunc("app_ticks_total", "Ticks.", func() float64 { return 7 })

	cv := reg.CounterVec("app_errors_total", "Errors by reason.", "reason")
	cv.With(`quote"back\slash`).Add(2)
	cv.With("decode").Inc()

	h := reg.Histogram("app_latency_seconds", "Latency.", []float64{0.001, 0.25, 1})
	h.Observe(0.0005)
	h.Observe(0.25) // le semantics: lands in the 0.25 bucket
	h.Observe(3)    // +Inf bucket

	hv := reg.HistogramVec("app_stage_seconds", "Stage latency.", []float64{0.5}, "stage")
	hv.With("decode").Observe(0.1)

	reg.Collect("app_modules", "Modules by state.", "gauge", []string{"state"},
		func(emit func(v float64, labelValues ...string)) {
			emit(2, "building")
			emit(5, "ready")
		})

	want := strings.Join([]string{
		`# HELP app_requests_total Requests served.`,
		`# TYPE app_requests_total counter`,
		`app_requests_total 3`,
		`# HELP app_temperature Current temp.\nWith a newline and a back\\slash.`,
		`# TYPE app_temperature gauge`,
		`app_temperature 36.6`,
		`# HELP app_uptime_seconds Uptime.`,
		`# TYPE app_uptime_seconds gauge`,
		`app_uptime_seconds 12`,
		`# HELP app_ticks_total Ticks.`,
		`# TYPE app_ticks_total counter`,
		`app_ticks_total 7`,
		`# HELP app_errors_total Errors by reason.`,
		`# TYPE app_errors_total counter`,
		`app_errors_total{reason="decode"} 1`,
		`app_errors_total{reason="quote\"back\\slash"} 2`,
		`# HELP app_latency_seconds Latency.`,
		`# TYPE app_latency_seconds histogram`,
		`app_latency_seconds_bucket{le="0.001"} 1`,
		`app_latency_seconds_bucket{le="0.25"} 2`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		`app_latency_seconds_sum 3.2505`,
		`app_latency_seconds_count 3`,
		`# HELP app_stage_seconds Stage latency.`,
		`# TYPE app_stage_seconds histogram`,
		`app_stage_seconds_bucket{stage="decode",le="0.5"} 1`,
		`app_stage_seconds_bucket{stage="decode",le="+Inf"} 1`,
		`app_stage_seconds_sum{stage="decode"} 0.1`,
		`app_stage_seconds_count{stage="decode"} 1`,
		`# HELP app_modules Modules by state.`,
		`# TYPE app_modules gauge`,
		`app_modules{state="building"} 2`,
		`app_modules{state="ready"} 5`,
		``,
	}, "\n")
	got := string(reg.Render())
	if got != want {
		t.Errorf("exposition drifted\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden output must satisfy our own linter and round-trip the
	// parser: 8 families, histogram snapshot intact.
	if err := Lint(got); err != nil {
		t.Fatalf("golden exposition fails lint: %v", err)
	}
	fams, err := Parse(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 8 {
		t.Fatalf("parsed %d families, want 8", len(fams))
	}
	hf := FindFamily(fams, "app_latency_seconds")
	snap, err := hf.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 3 || snap.Counts[1] != 2 || snap.Sum != 3.2505 {
		t.Errorf("histogram round-trip = %+v", snap)
	}
	ef := FindFamily(fams, "app_errors_total")
	found := false
	for _, s := range ef.Samples {
		if s.Labels["reason"] == `quote"back\slash` {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped label value did not round-trip: %+v", ef.Samples)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("handler body = %q", rec.Body.String())
	}
}
