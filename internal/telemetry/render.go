package telemetry

import (
	"bytes"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// Render produces the registry's Prometheus text exposition (format
// version 0.0.4): for each family a `# HELP` and `# TYPE` line followed by
// its samples, histograms as cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Output is deterministic for a quiescent registry:
// families render in registration order, vec children and collector
// emissions in sorted order.
func (r *Registry) Render() []byte {
	var b bytes.Buffer
	for _, f := range r.families() {
		f.render(&b)
	}
	return b.Bytes()
}

// Handler serves the exposition over HTTP (the GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(r.Render())
	})
}

func (f *family) render(b *bytes.Buffer) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')

	switch {
	case f.counter != nil:
		writeSample(b, f.name, nil, nil, "", "", float64(f.counter.Value()))
	case f.counterFn != nil:
		writeSample(b, f.name, nil, nil, "", "", f.counterFn())
	case f.gauge != nil:
		writeSample(b, f.name, nil, nil, "", "", f.gauge.Value())
	case f.gaugeFn != nil:
		writeSample(b, f.name, nil, nil, "", "", f.gaugeFn())
	case f.hist != nil:
		renderHistogram(b, f.name, nil, nil, f.hist)
	case f.cvec != nil:
		for _, ch := range sortedCounterChildren(f.cvec) {
			writeSample(b, f.name, f.labels, ch.vals, "", "", float64(ch.c.Value()))
		}
	case f.hvec != nil:
		for _, ch := range sortedHistChildren(f.hvec) {
			renderHistogram(b, f.name, f.labels, ch.vals, ch.h)
		}
	case f.collect != nil:
		f.collect(func(v float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic("telemetry: collector for " + f.name + " emitted a mismatched label count")
			}
			writeSample(b, f.name, f.labels, labelValues, "", "", v)
		})
	}
}

func sortedCounterChildren(v *CounterVec) []*counterChild {
	v.mu.RLock()
	out := make([]*counterChild, 0, len(v.children))
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, v.children[k])
	}
	v.mu.RUnlock()
	return out
}

func sortedHistChildren(v *HistogramVec) []*histChild {
	v.mu.RLock()
	out := make([]*histChild, 0, len(v.children))
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, v.children[k])
	}
	v.mu.RUnlock()
	return out
}

// renderHistogram emits the cumulative bucket series. The `_count` sample
// repeats the +Inf bucket's value (summed from the same per-bucket loads)
// rather than reading the histogram's count atomic, so a scrape that races
// concurrent Observes is still internally consistent — the property the
// exposition linter checks.
func renderHistogram(b *bytes.Buffer, name string, labelNames, labelVals []string, h *Histogram) {
	cum := int64(0)
	for i := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", labelNames, labelVals, "le", formatValue(h.bounds[i]), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, name+"_bucket", labelNames, labelVals, "le", "+Inf", float64(cum))
	writeSample(b, name+"_sum", labelNames, labelVals, "", "", h.Sum())
	writeSample(b, name+"_count", labelNames, labelVals, "", "", float64(cum))
}

// writeSample emits one `name{labels} value` line; extraName/extraVal is
// the histogram `le` label appended after the family labels.
func writeSample(b *bytes.Buffer, name string, labelNames, labelVals []string, extraName, extraVal string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelVals[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value: integral floats without a decimal
// point (counter-friendly), everything else in shortest-round-trip form,
// infinities in the exposition's +Inf/-Inf spelling.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP docstring: backslash and newline.
func escapeHelp(s string) string {
	if !needEscape(s, false) {
		return s
	}
	var b bytes.Buffer
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	if !needEscape(s, true) {
		return s
	}
	var b bytes.Buffer
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func needEscape(s string, quote bool) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] == '\n' || (quote && s[i] == '"') {
			return true
		}
	}
	return false
}
