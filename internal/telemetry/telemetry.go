// Package telemetry is the repository's zero-dependency observability core:
// atomic counters, gauges and fixed-bucket histograms, collected in a
// Registry that renders the Prometheus text exposition format (version
// 0.0.4), plus the per-request Trace the service threads through its query
// pipeline. It exists so aliasd can expose a production `/metrics` endpoint
// without pulling the Prometheus client library into the module — the same
// per-stage registration idiom bgpipe's stages/metrics.go uses, rebuilt on
// the stdlib.
//
// Instruments are cheap enough for hot paths: a Counter or Gauge is one
// atomic word, a Histogram Observe is a binary search over its bounds plus
// two atomic adds and a CAS loop on the sum. Vec variants add one map
// lookup under an RLock; callers on hot paths should resolve children once
// with With and keep the pointer.
//
// Scrape-time families: for counters whose source of truth already lives
// elsewhere (the service's per-module ManagerStats, planner tallies, cache
// counters), Collect registers a callback that emits samples at render
// time. Because such families *read* the same structs that back
// /v1/stats, the two endpoints reconcile exactly — the CI smoke job
// asserts it.
//
// The exposition linter (Lint) and parser (Parse) round-trip the rendered
// text: Lint is the in-repo promtool stand-in run by tests and CI, Parse
// feeds aliasload's server-side latency attribution (scraping the query
// histogram before and after a burst).
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
//
// aliaslint: never copy a Counter by value — share pointers.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative: counters only go up.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (negative deltas allowed).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative `le` upper
// bounds in the exposition, non-cumulative atomics internally) and tracks
// their sum. Bounds are set at registration and immutable afterwards.
type Histogram struct {
	bounds  []float64 // ascending finite upper bounds; +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("telemetry: histogram bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && bounds[i-1] >= b {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound ≥ v is the bucket (le semantics: v == bound belongs in it);
	// values above every bound land in the implicit +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot captures the histogram as cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)),
		Sum:    h.Sum(),
	}
	cum := int64(0)
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum + h.counts[len(h.bounds)].Load()
	return s
}

// HistogramSnapshot is a point-in-time view of a histogram: cumulative
// counts per finite bound, with the +Inf bucket implied by Count. It is the
// unit aliasload diffs around a burst to attribute latency server-side.
type HistogramSnapshot struct {
	Bounds []float64 // ascending finite upper bounds
	Counts []int64   // cumulative observations ≤ the matching bound
	Count  int64     // all observations (the +Inf bucket)
	Sum    float64
}

// Sub returns the delta snapshot s − prev (the observations recorded
// between the two scrapes). Bounds must match; mismatches return s
// unchanged so callers against a restarted or reconfigured server degrade
// to the absolute numbers instead of nonsense.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Bounds) != len(s.Bounds) {
		return s
	}
	for i := range s.Bounds {
		if prev.Bounds[i] != s.Bounds[i] {
			return s
		}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the bucket holding the target rank — the classic Prometheus
// histogram_quantile estimate. Observations in the +Inf bucket clamp to the
// largest finite bound (there is nothing to interpolate against). Returns 0
// for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, cum := range s.Counts {
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		prev := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
			prev = s.Counts[i-1]
		}
		hi := s.Bounds[i]
		inBucket := cum - prev
		if inBucket <= 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(inBucket)
	}
	// Target rank is in the +Inf bucket.
	return s.Bounds[len(s.Bounds)-1]
}

// CounterVec is a family of Counters keyed by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*counterChild
}

type counterChild struct {
	vals []string
	c    Counter
}

// With returns the child counter for the given label values (created on
// first use). Hot paths should call With once and keep the pointer.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: CounterVec.With got %d values for %d labels", len(values), len(v.labels)))
	}
	k := strings.Join(values, "\xff")
	v.mu.RLock()
	ch := v.children[k]
	v.mu.RUnlock()
	if ch != nil {
		return &ch.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch = v.children[k]; ch == nil {
		ch = &counterChild{vals: append([]string(nil), values...)}
		v.children[k] = ch
	}
	return &ch.c
}

// HistogramVec is a family of Histograms keyed by label values, sharing one
// bucket layout.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*histChild
}

type histChild struct {
	vals []string
	h    *Histogram
}

// With returns the child histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: HistogramVec.With got %d values for %d labels", len(values), len(v.labels)))
	}
	k := strings.Join(values, "\xff")
	v.mu.RLock()
	ch := v.children[k]
	v.mu.RUnlock()
	if ch != nil {
		return ch.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch = v.children[k]; ch == nil {
		ch = &histChild{vals: append([]string(nil), values...), h: newHistogram(v.bounds)}
		v.children[k] = ch
	}
	return ch.h
}

// family is one registered metric family. Exactly one of the source fields
// is set; render dispatches on it.
type family struct {
	name, help, typ string
	labels          []string

	counter   *Counter
	counterFn func() float64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
	cvec      *CounterVec
	hvec      *HistogramVec
	collect   func(emit func(v float64, labelValues ...string))
}

// Registry holds metric families in registration order (rendering is
// deterministic, which the golden tests rely on). Registration panics on
// invalid or duplicate names — a programming error, caught at startup.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: map[string]bool{}}
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (r *Registry) add(f *family) {
	if !metricNameRe.MatchString(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !labelNameRe.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[f.name] {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.name))
	}
	r.seen[f.name] = true
	r.fams = append(r.fams, f)
}

// Counter registers and returns a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic values whose source of truth lives elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "counter", counterFn: fn})
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: map[string]*counterChild{}}
	r.add(&family{name: name, help: help, typ: "counter", labels: labels, cvec: v})
	return v
}

// Gauge registers and returns a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// GaugeFunc registers a gauge computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge", gaugeFn: fn})
}

// Histogram registers and returns a histogram with the given finite,
// strictly ascending bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.add(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// HistogramVec registers a labeled histogram family sharing one bucket
// layout.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	newHistogram(bounds) // validate bounds once, up front
	v := &HistogramVec{labels: labels, bounds: append([]float64(nil), bounds...), children: map[string]*histChild{}}
	r.add(&family{name: name, help: help, typ: "histogram", labels: labels, hvec: v})
	return v
}

// Collect registers a scrape-time family: at every render, collect is
// called and each emit adds one sample with the family's label values.
// typ is "counter" or "gauge". The callback must emit deterministically
// (sorted) if the output feeds golden tests, and must not call back into
// the registry.
func (r *Registry) Collect(name, help, typ string, labels []string, collect func(emit func(v float64, labelValues ...string))) {
	if typ != "counter" && typ != "gauge" {
		panic(fmt.Sprintf("telemetry: Collect type %q (want counter or gauge)", typ))
	}
	r.add(&family{name: name, help: help, typ: typ, labels: labels, collect: collect})
}

// families snapshots the family list (families are never removed, so the
// shared backing array is safe to iterate without the lock).
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fams[:len(r.fams):len(r.fams)]
}
