package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestLintAcceptsWellFormed is the positive baseline for the negative cases
// below.
func TestLintAcceptsWellFormed(t *testing.T) {
	good := strings.Join([]string{
		`# HELP app_requests_total Requests.`,
		`# TYPE app_requests_total counter`,
		`app_requests_total{route="query"} 4`,
		`# HELP app_latency_seconds Latency.`,
		`# TYPE app_latency_seconds histogram`,
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="+Inf"} 2`,
		`app_latency_seconds_sum 1.5`,
		`app_latency_seconds_count 2`,
		``,
	}, "\n")
	if err := Lint(good); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestLintRejectsMalformedExpositions(t *testing.T) {
	cases := map[string]struct {
		text string
		want string // substring of the expected error
	}{
		"bad metric name": {
			text: "# HELP 0bad x\n# TYPE 0bad counter\n0bad 1\n",
			want: "name",
		},
		"unknown type": {
			text: "# HELP w_total x\n# TYPE w_total wibble\nw_total 1\n",
			want: "unknown",
		},
		"duplicate sample": {
			text: "# HELP d_total x\n# TYPE d_total counter\nd_total{a=\"1\"} 1\nd_total{a=\"1\"} 2\n",
			want: "duplicate",
		},
		"negative counter": {
			text: "# HELP n_total x\n# TYPE n_total counter\nn_total -1\n",
			want: "invalid",
		},
		"non-cumulative buckets": {
			text: "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 5\nh_seconds_bucket{le=\"0.5\"} 3\n" +
				"h_seconds_bucket{le=\"+Inf\"} 5\nh_seconds_sum 1\nh_seconds_count 5\n",
			want: "cumulative",
		},
		"missing +Inf bucket": {
			text: "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.1\"} 1\nh_seconds_sum 1\nh_seconds_count 1\n",
			want: "inf",
		},
		"count disagrees with +Inf": {
			text: "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"+Inf\"} 2\nh_seconds_sum 1\nh_seconds_count 3\n",
			want: "count",
		},
		"missing sum": {
			text: "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"+Inf\"} 1\nh_seconds_count 1\n",
			want: "sum",
		},
		"unsorted bucket bounds": {
			text: "# HELP h_seconds x\n# TYPE h_seconds histogram\n" +
				"h_seconds_bucket{le=\"0.5\"} 1\nh_seconds_bucket{le=\"0.1\"} 1\n" +
				"h_seconds_bucket{le=\"+Inf\"} 1\nh_seconds_sum 1\nh_seconds_count 1\n",
			want: "bound",
		},
	}
	for name, tc := range cases {
		err := Lint(tc.text)
		if err == nil {
			t.Errorf("%s: lint accepted a malformed exposition", name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for name, text := range map[string]string{
		"no value":         "a_total\n",
		"bad value":        "a_total notanumber\n",
		"unclosed labels":  "a_total{x=\"1\" 2\n",
		"unquoted label":   "a_total{x=1} 2\n",
		"trailing garbage": "a_total 1 2 3\n",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

// TestParseHandlesTimestampsAndEscapes covers optional sample timestamps and
// label-value unescaping, which scrapers are allowed to emit.
func TestParseHandlesTimestampsAndEscapes(t *testing.T) {
	fams, err := Parse("# HELP a_total x\n# TYPE a_total counter\n" +
		"a_total{p=\"a\\\\b\\\"c\\nd\"} 3 1712000000000\n")
	if err != nil {
		t.Fatal(err)
	}
	f := FindFamily(fams, "a_total")
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("families = %+v", fams)
	}
	if got := f.Samples[0].Labels["p"]; got != "a\\b\"c\nd" {
		t.Errorf("unescaped label = %q", got)
	}
	if f.Samples[0].Value != 3 {
		t.Errorf("value = %v, want 3 (timestamp must not fold into value)", f.Samples[0].Value)
	}
}

// TestHistogramAggregatesLabelSets checks that ParsedFamily.Histogram sums
// bucket series across non-le label sets — what aliasload relies on when it
// aggregates the per-stage histogram into one snapshot.
func TestHistogramAggregatesLabelSets(t *testing.T) {
	fams, err := Parse(strings.Join([]string{
		`# HELP s_seconds x`,
		`# TYPE s_seconds histogram`,
		`s_seconds_bucket{stage="a",le="0.1"} 1`,
		`s_seconds_bucket{stage="a",le="+Inf"} 2`,
		`s_seconds_sum{stage="a"} 0.7`,
		`s_seconds_count{stage="a"} 2`,
		`s_seconds_bucket{stage="b",le="0.1"} 3`,
		`s_seconds_bucket{stage="b",le="+Inf"} 3`,
		`s_seconds_sum{stage="b"} 0.1`,
		`s_seconds_count{stage="b"} 3`,
		``,
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FindFamily(fams, "s_seconds").Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 5 || snap.Counts[0] != 4 || math.Abs(snap.Sum-0.8) > 1e-9 {
		t.Errorf("aggregated snapshot = %+v, want count 5, bucket0 4, sum 0.8", snap)
	}
}
