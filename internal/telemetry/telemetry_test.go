package telemetry

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this is the data-race regression test, and
// the final totals check that no increment is lost.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "c")
	g := reg.Gauge("hammer_gauge", "g")
	h := reg.Histogram("hammer_seconds", "h", []float64{0.25, 0.5, 0.75})
	cv := reg.CounterVec("hammer_vec_total", "cv", "worker")
	hv := reg.HistogramVec("hammer_vec_seconds", "hv", []float64{0.5}, "worker")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			child := cv.With(name)
			hchild := hv.With(name)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%4) * 0.25)
				child.Add(2)
				hchild.Observe(0.1)
				if i%64 == 0 {
					// Concurrent scrapes must not tear: renderings stay
					// parseable and lint-clean mid-hammer.
					if err := Lint(string(reg.Render())); err != nil {
						t.Errorf("mid-hammer lint: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0 after balanced adds", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	snap := h.Snapshot()
	// Observations cycle 0, 0.25, 0.5, 0.75: every value lands in a finite
	// bucket (le semantics put v == bound inside the bucket).
	if snap.Counts[len(snap.Counts)-1] != snap.Count {
		t.Errorf("finite buckets hold %d of %d observations; +Inf bucket should be empty",
			snap.Counts[len(snap.Counts)-1], snap.Count)
	}
	for w := 0; w < workers; w++ {
		if got := cv.With(string(rune('a' + w))).Value(); got != 2*perWorker {
			t.Errorf("vec child %d = %d, want %d", w, got, 2*perWorker)
		}
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Counter.Add(-1) did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestRegistryRejectsDuplicatesAndBadNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ok_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":      func() { reg.Counter("ok_total", "again") },
		"bad name":       func() { reg.Counter("0bad", "x") },
		"bad label":      func() { reg.CounterVec("lbl_total", "x", "0bad") },
		"reserved le":    func() { reg.HistogramVec("h_seconds", "x", []float64{1}, "le") },
		"unsorted bound": func() { reg.Histogram("h2_seconds", "x", []float64{2, 1}) },
		"inf bound":      func() { reg.Histogram("h3_seconds", "x", []float64{1, math.Inf(1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.2, 0.4, 0.8})
	// 100 observations uniform in (0, 0.1]: everything in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q < 0.04 || q > 0.06 {
		t.Errorf("p50 = %v, want ≈0.05 by interpolation", q)
	}
	if q := snap.Quantile(1.0); q != 0.1 {
		t.Errorf("p100 = %v, want bucket bound 0.1", q)
	}

	// A +Inf-bucket rank clamps to the largest finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(5)
	if q := h2.Snapshot().Quantile(0.99); q != 1 {
		t.Errorf("quantile in +Inf bucket = %v, want clamp to 1", q)
	}

	if q := (HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", q)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	before := h.Snapshot()
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	delta := h.Snapshot().Sub(before)
	if delta.Count != 3 || delta.Counts[0] != 1 || delta.Counts[1] != 2 {
		t.Errorf("delta = %+v, want 3 observations (1 ≤1, 2 ≤2)", delta)
	}
	if delta.Sum != 0.5+1.5+99 {
		t.Errorf("delta sum = %v", delta.Sum)
	}
	// Mismatched bounds degrade to the absolute snapshot.
	other := HistogramSnapshot{Bounds: []float64{7}, Counts: []int64{1}, Count: 1}
	if got := h.Snapshot().Sub(other); got.Count != h.Count() {
		t.Errorf("mismatched-bounds Sub = %+v, want absolute snapshot", got)
	}
}

func TestTraceNilSafetyAndContext(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Observe("decode", time.Now(), time.Millisecond) // must not panic
	if nilTrace.Spans() != nil || nilTrace.String() != "" {
		t.Error("nil trace leaked data")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context yielded a trace")
	}

	tr := NewTrace("req1")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context round-trip lost the trace")
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Observe("evaluate", start, 2*time.Millisecond)
		}()
	}
	wg.Wait()
	if spans := tr.Spans(); len(spans) != 4 || spans[0].Stage != "evaluate" {
		t.Errorf("spans = %+v, want 4 evaluate spans", tr.Spans())
	}
	if s := tr.String(); s == "" {
		t.Error("String() empty for a populated trace")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("request ids %q, %q: want 16 hex chars, distinct", a, b)
	}
}
