package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one recorded pipeline stage of a request.
type Span struct {
	Stage    string
	Start    time.Time
	Duration time.Duration
}

// Trace is the lightweight per-request record the service threads through
// its pipeline via context: a request ID (client-supplied X-Request-ID or
// generated) plus the stage spans observed along the way. All methods are
// nil-safe so instrumented code needs no "is tracing on" branches — an
// untraced call path simply carries a nil *Trace.
//
// aliaslint: never copy a Trace by value — share the pointer.
type Trace struct {
	ID string

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace for one request.
func NewTrace(id string) *Trace { return &Trace{ID: id} }

// Observe appends one stage span. No-op on a nil trace.
func (t *Trace) Observe(stage string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Start: start, Duration: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans (nil for a nil trace).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// String renders the spans as "stage=1.234ms ..." for structured logs.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for i, s := range t.spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3fms", s.Stage, float64(s.Duration.Microseconds())/1000.0)
	}
	return b.String()
}

type traceKey struct{}

// NewContext returns ctx carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — safe to use with
// every Trace method.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// NewRequestID returns a 16-hex-char random request ID for requests that
// arrive without an X-Request-ID header.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}
