package cfg

import (
	"testing"

	"repro/internal/ir"
)

// diamond builds: entry → {left, right} → join → exit.
func diamond(t *testing.T) (*ir.Func, map[string]*ir.Block) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("c", ir.TInt))
	b := ir.NewBuilder(f)
	blocks := map[string]*ir.Block{}
	for _, n := range []string{"entry", "left", "right", "join", "exit"} {
		blocks[n] = b.Block(n)
	}
	b.SetBlock(blocks["entry"])
	c := b.Cmp(ir.PNe, f.Params[0], b.Int(0), "c")
	b.CondBr(c, blocks["left"], blocks["right"])
	b.SetBlock(blocks["left"])
	b.Br(blocks["join"])
	b.SetBlock(blocks["right"])
	b.Br(blocks["join"])
	b.SetBlock(blocks["join"])
	b.Br(blocks["exit"])
	b.SetBlock(blocks["exit"])
	b.Ret(nil)
	return f, blocks
}

// loopFunc builds: entry → head ⇄ body, head → exit.
func loopFunc(t *testing.T) (*ir.Func, map[string]*ir.Block) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	blocks := map[string]*ir.Block{}
	for _, n := range []string{"entry", "head", "body", "exit"} {
		blocks[n] = b.Block(n)
	}
	b.SetBlock(blocks["entry"])
	b.Br(blocks["head"])
	b.SetBlock(blocks["head"])
	i := b.Phi(ir.TInt, "i")
	c := b.Cmp(ir.PLt, i.Res, f.Params[0], "c")
	b.CondBr(c, blocks["body"], blocks["exit"])
	b.SetBlock(blocks["body"])
	inext := b.Add(i.Res, b.Int(1), "inext")
	b.Br(blocks["head"])
	ir.AddIncoming(i, b.Int(0), blocks["entry"])
	ir.AddIncoming(i, inext, blocks["body"])
	b.SetBlock(blocks["exit"])
	b.Ret(nil)
	return f, blocks
}

func TestReversePostorder(t *testing.T) {
	f, blocks := diamond(t)
	rpo := ReversePostorder(f)
	if len(rpo) != 5 {
		t.Fatalf("rpo len = %d", len(rpo))
	}
	if rpo[0] != blocks["entry"] {
		t.Errorf("rpo[0] = %s, want entry", rpo[0])
	}
	idx := map[*ir.Block]int{}
	for i, b := range rpo {
		idx[b] = i
	}
	// join must come after both branches, exit last.
	if idx[blocks["join"]] < idx[blocks["left"]] || idx[blocks["join"]] < idx[blocks["right"]] {
		t.Errorf("join precedes a branch in RPO")
	}
	if rpo[4] != blocks["exit"] {
		t.Errorf("rpo[4] = %s, want exit", rpo[4])
	}
}

func TestRPOSkipsUnreachable(t *testing.T) {
	f, _ := diamond(t)
	// Add an unreachable block.
	b := ir.NewBuilder(f)
	dead := b.Block("dead")
	b.SetBlock(dead)
	b.Ret(nil)
	rpo := ReversePostorder(f)
	for _, blk := range rpo {
		if blk == dead {
			t.Fatal("unreachable block in RPO")
		}
	}
	dt := NewDomTree(f)
	if dt.Reachable(dead) {
		t.Error("dead block reported reachable")
	}
}

func TestDomTreeDiamond(t *testing.T) {
	f, blocks := diamond(t)
	dt := NewDomTree(f)
	if dt.Idom(blocks["entry"]) != nil {
		t.Error("entry idom should be nil")
	}
	for _, n := range []string{"left", "right", "join"} {
		if dt.Idom(blocks[n]) != blocks["entry"] {
			t.Errorf("idom(%s) = %v, want entry", n, dt.Idom(blocks[n]))
		}
	}
	if dt.Idom(blocks["exit"]) != blocks["join"] {
		t.Errorf("idom(exit) = %v, want join", dt.Idom(blocks["exit"]))
	}
	if !dt.Dominates(blocks["entry"], blocks["exit"]) {
		t.Error("entry should dominate exit")
	}
	if dt.Dominates(blocks["left"], blocks["join"]) {
		t.Error("left must not dominate join")
	}
	if !dt.Dominates(blocks["join"], blocks["join"]) {
		t.Error("dominance is reflexive")
	}
	if dt.StrictlyDominates(blocks["join"], blocks["join"]) {
		t.Error("strict dominance is irreflexive")
	}
}

func TestDomTreeLoop(t *testing.T) {
	f, blocks := loopFunc(t)
	dt := NewDomTree(f)
	if dt.Idom(blocks["body"]) != blocks["head"] {
		t.Errorf("idom(body) = %v", dt.Idom(blocks["body"]))
	}
	if dt.Idom(blocks["exit"]) != blocks["head"] {
		t.Errorf("idom(exit) = %v", dt.Idom(blocks["exit"]))
	}
	if !dt.Dominates(blocks["head"], blocks["body"]) {
		t.Error("head should dominate body")
	}
	if dt.Dominates(blocks["body"], blocks["head"]) {
		t.Error("body must not dominate head")
	}
}

func TestDomOrderVisitsParentsFirst(t *testing.T) {
	f, _ := diamond(t)
	dt := NewDomTree(f)
	seen := map[*ir.Block]bool{}
	for _, b := range dt.DomOrder() {
		if p := dt.Idom(b); p != nil && !seen[p] {
			t.Fatalf("dom order visits %s before its idom %s", b, p)
		}
		seen[b] = true
	}
	if len(seen) != 5 {
		t.Fatalf("dom order visited %d blocks", len(seen))
	}
}

func TestDominanceFrontiers(t *testing.T) {
	f, blocks := diamond(t)
	dt := NewDomTree(f)
	df := DominanceFrontiers(dt)
	// DF(left) = DF(right) = {join}; DF(entry) = DF(join) = {}.
	for _, n := range []string{"left", "right"} {
		if len(df[blocks[n]]) != 1 || df[blocks[n]][0] != blocks["join"] {
			t.Errorf("DF(%s) = %v, want {join}", n, df[blocks[n]])
		}
	}
	if len(df[blocks["entry"]]) != 0 {
		t.Errorf("DF(entry) = %v, want empty", df[blocks["entry"]])
	}

	fl, lb := loopFunc(t)
	dtl := NewDomTree(fl)
	dfl := DominanceFrontiers(dtl)
	// DF(body) = {head} (the back edge), DF(head) = {head}.
	if len(dfl[lb["body"]]) != 1 || dfl[lb["body"]][0] != lb["head"] {
		t.Errorf("DF(body) = %v, want {head}", dfl[lb["body"]])
	}
	if len(dfl[lb["head"]]) != 1 || dfl[lb["head"]][0] != lb["head"] {
		t.Errorf("DF(head) = %v, want {head}", dfl[lb["head"]])
	}
}

func TestFindLoops(t *testing.T) {
	f, blocks := loopFunc(t)
	dt := NewDomTree(f)
	li := FindLoops(dt)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != blocks["head"] {
		t.Errorf("loop header = %s", l.Header)
	}
	if !l.Contains(blocks["body"]) || !l.Contains(blocks["head"]) {
		t.Error("loop should contain head and body")
	}
	if l.Contains(blocks["entry"]) || l.Contains(blocks["exit"]) {
		t.Error("loop must not contain entry/exit")
	}
	if li.Depth(blocks["body"]) != 1 || li.Depth(blocks["entry"]) != 0 {
		t.Errorf("depths: body=%d entry=%d", li.Depth(blocks["body"]), li.Depth(blocks["entry"]))
	}
	if li.InnermostLoop(blocks["body"]) != l {
		t.Error("innermost loop of body")
	}
}

func TestNestedLoops(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	oh := b.Block("outerhead")
	ih := b.Block("innerhead")
	ib := b.Block("innerbody")
	ol := b.Block("outerlatch")
	exit := b.Block("exit")

	b.SetBlock(entry)
	b.Br(oh)
	b.SetBlock(oh)
	i := b.Phi(ir.TInt, "i")
	ci := b.Cmp(ir.PLt, i.Res, f.Params[0], "ci")
	b.CondBr(ci, ih, exit)
	b.SetBlock(ih)
	j := b.Phi(ir.TInt, "j")
	cj := b.Cmp(ir.PLt, j.Res, f.Params[0], "cj")
	b.CondBr(cj, ib, ol)
	b.SetBlock(ib)
	j1 := b.Add(j.Res, b.Int(1), "j1")
	b.Br(ih)
	b.SetBlock(ol)
	i1 := b.Add(i.Res, b.Int(1), "i1")
	b.Br(oh)
	b.SetBlock(exit)
	b.Ret(nil)
	ir.AddIncoming(i, b.Int(0), entry)
	ir.AddIncoming(i, i1, ol)
	ir.AddIncoming(j, b.Int(0), oh)
	ir.AddIncoming(j, j1, ib)

	dt := NewDomTree(f)
	li := FindLoops(dt)
	if len(li.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(li.Loops))
	}
	inner := li.ByHead[ih]
	outer := li.ByHead[oh]
	if inner == nil || outer == nil {
		t.Fatal("missing loop headers")
	}
	if inner.Parent != outer {
		t.Errorf("inner.Parent = %v, want outer", inner.Parent)
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths: inner=%d outer=%d", inner.Depth, outer.Depth)
	}
	if li.InnermostLoop(ib) != inner {
		t.Error("innerbody should map to inner loop")
	}
	if li.InnermostLoop(ol) != outer {
		t.Error("outerlatch should map to outer loop")
	}
}
