package cfg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// randomCFG builds a random reducible-ish CFG with n blocks: each block
// branches to one or two random successors with higher-or-equal index
// (forming forward edges) plus occasional back edges to lower indices.
func randomCFG(rng *rand.Rand, n int) *ir.Func {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("c", ir.TInt))
	b := ir.NewBuilder(f)
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = b.Block(fmt.Sprintf("b%d", i))
	}
	for i, blk := range blocks {
		b.SetBlock(blk)
		if i == n-1 {
			b.Ret(nil)
			continue
		}
		pick := func() *ir.Block {
			// Mostly forward, sometimes backward.
			if rng.Intn(5) == 0 {
				return blocks[rng.Intn(i+1)]
			}
			return blocks[i+1+rng.Intn(n-i-1)]
		}
		if rng.Intn(2) == 0 {
			b.Br(pick())
		} else {
			cond := b.Cmp(ir.PNe, f.Params[0], b.Int(int64(i)), "c")
			b.CondBr(cond, pick(), pick())
		}
	}
	return f
}

// naiveDominates computes dominance by definition: a dominates b iff
// removing a makes b unreachable from the entry.
func naiveDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // "remove" a by pre-marking it
	var stack []*ir.Block
	if f.Entry() != a {
		stack = append(stack, f.Entry())
		seen[f.Entry()] = true
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return false // b reachable without a
		}
		for _, s := range x.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

// TestDomTreeMatchesNaiveDefinition cross-checks the Cooper–Harvey–Kennedy
// dominator tree against the brute-force definition on random CFGs.
func TestDomTreeMatchesNaiveDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		f := randomCFG(rng, 4+rng.Intn(10))
		dt := NewDomTree(f)
		rpo := dt.RPO()
		for _, a := range rpo {
			for _, b := range rpo {
				want := naiveDominates(f, a, b)
				got := dt.Dominates(a, b)
				if got != want {
					t.Fatalf("trial %d: Dominates(%s, %s) = %v, naive says %v\n%s",
						trial, a, b, got, want, f)
				}
			}
		}
	}
}

// TestDominanceFrontierDefinition checks Cytron's definition on random
// CFGs: b ∈ DF(a) iff a dominates some predecessor of b but does not
// strictly dominate b.
func TestDominanceFrontierDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		f := randomCFG(rng, 4+rng.Intn(10))
		dt := NewDomTree(f)
		df := DominanceFrontiers(dt)
		inDF := func(a, b *ir.Block) bool {
			for _, x := range df[a] {
				if x == b {
					return true
				}
			}
			return false
		}
		for _, a := range dt.RPO() {
			for _, b := range dt.RPO() {
				want := false
				for _, p := range dt.Preds(b) {
					if dt.Dominates(a, p) && !dt.StrictlyDominates(a, b) {
						want = true
					}
				}
				if got := inDF(a, b); got != want {
					t.Fatalf("trial %d: %s ∈ DF(%s) = %v, definition says %v",
						trial, b, a, got, want)
				}
			}
		}
	}
}

// TestLoopBodyDominatedByHeader: every natural loop's blocks are dominated
// by its header.
func TestLoopBodyDominatedByHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		f := randomCFG(rng, 4+rng.Intn(12))
		dt := NewDomTree(f)
		li := FindLoops(dt)
		for _, l := range li.Loops {
			for blk := range l.Blocks {
				if !dt.Dominates(l.Header, blk) {
					t.Fatalf("trial %d: loop header %s does not dominate body %s\n%s",
						trial, l.Header, blk, f)
				}
			}
		}
	}
}
