// Package cfg computes control-flow-graph facts over ir functions: reverse
// postorder, the dominator tree (Cooper–Harvey–Kennedy's iterative
// algorithm), dominance frontiers and natural loops. These underpin SSA
// construction, the e-SSA transformation, and the dominance-order traversal
// of the LR analysis (§3.6 of the paper).
package cfg

import "repro/internal/ir"

// ReversePostorder returns the blocks of f reachable from the entry, in
// reverse postorder of a DFS over successor edges.
func ReversePostorder(f *ir.Func) []*ir.Block {
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if f.Entry() == nil {
		return nil
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree is the dominator tree of a function's reachable CFG.
type DomTree struct {
	fn       *ir.Func
	rpo      []*ir.Block
	rpoIndex map[*ir.Block]int
	idom     map[*ir.Block]*ir.Block
	children map[*ir.Block][]*ir.Block
	preds    map[*ir.Block][]*ir.Block
	// pre/post numbering of the dominator tree for O(1) Dominates queries.
	pre, post map[*ir.Block]int
}

// NewDomTree computes the dominator tree of f using the iterative algorithm
// of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance Algorithm").
func NewDomTree(f *ir.Func) *DomTree {
	rpo := ReversePostorder(f)
	t := &DomTree{
		fn:       f,
		rpo:      rpo,
		rpoIndex: make(map[*ir.Block]int, len(rpo)),
		idom:     make(map[*ir.Block]*ir.Block, len(rpo)),
		children: map[*ir.Block][]*ir.Block{},
		preds:    map[*ir.Block][]*ir.Block{},
		pre:      make(map[*ir.Block]int, len(rpo)),
		post:     make(map[*ir.Block]int, len(rpo)),
	}
	for i, b := range rpo {
		t.rpoIndex[b] = i
	}
	// Predecessors restricted to reachable blocks.
	for _, b := range rpo {
		for _, s := range b.Succs() {
			if _, ok := t.rpoIndex[s]; ok {
				t.preds[s] = append(t.preds[s], b)
			}
		}
	}
	entry := f.Entry()
	t.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *ir.Block
			for _, p := range t.preds[b] {
				if t.idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}
	for _, b := range rpo[1:] {
		t.children[t.idom[b]] = append(t.children[t.idom[b]], b)
	}
	// DFS numbering over the dominator tree.
	n := 0
	var number func(b *ir.Block)
	number = func(b *ir.Block) {
		t.pre[b] = n
		n++
		for _, c := range t.children[b] {
			number(c)
		}
		t.post[b] = n
		n++
	}
	number(entry)
	return t
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoIndex[a] > t.rpoIndex[b] {
			a = t.idom[a]
		}
		for t.rpoIndex[b] > t.rpoIndex[a] {
			b = t.idom[b]
		}
	}
	return a
}

// Func returns the underlying function.
func (t *DomTree) Func() *ir.Func { return t.fn }

// RPO returns the reachable blocks in reverse postorder.
func (t *DomTree) RPO() []*ir.Block { return t.rpo }

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b *ir.Block) bool {
	_, ok := t.rpoIndex[b]
	return ok
}

// Idom returns the immediate dominator of b (entry's idom is nil).
func (t *DomTree) Idom(b *ir.Block) *ir.Block {
	if b == t.fn.Entry() {
		return nil
	}
	return t.idom[b]
}

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b] }

// Preds returns the reachable CFG predecessors of b.
func (t *DomTree) Preds(b *ir.Block) []*ir.Block { return t.preds[b] }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	return t.pre[a] <= t.pre[b] && t.post[b] <= t.post[a]
}

// StrictlyDominates reports whether a dominates b and a ≠ b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// DomOrder returns the blocks in a preorder walk of the dominator tree —
// the evaluation order of the LR analysis (§3.6: "instructions are evaluated
// abstractly in the order given by the program's dominance tree").
func (t *DomTree) DomOrder() []*ir.Block {
	var out []*ir.Block
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		out = append(out, b)
		for _, c := range t.children[b] {
			walk(c)
		}
	}
	walk(t.fn.Entry())
	return out
}

// DominanceFrontiers computes DF(b) for every reachable block (Cytron's
// characterization via the Cooper–Harvey–Kennedy per-predecessor walk). The
// walk treats the entry's immediate dominator as "none", so back edges into
// the entry (legal in arbitrary CFGs, though frontends never emit them)
// still contribute DF entries.
func DominanceFrontiers(t *DomTree) map[*ir.Block][]*ir.Block {
	entry := t.fn.Entry()
	idomOf := func(b *ir.Block) *ir.Block {
		if b == entry {
			return nil
		}
		return t.idom[b]
	}
	df := map[*ir.Block][]*ir.Block{}
	for _, b := range t.rpo {
		stop := idomOf(b)
		for _, p := range t.preds[b] {
			for runner := p; runner != nil && runner != stop; runner = idomOf(runner) {
				if !containsBlock(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
			}
		}
	}
	return df
}

func containsBlock(bs []*ir.Block, b *ir.Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// Loop is a natural loop: a header and the set of blocks of all back edges
// targeting it.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	Parent *Loop
	Depth  int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// LoopInfo maps blocks to their innermost enclosing natural loop.
type LoopInfo struct {
	Loops  []*Loop
	ByHead map[*ir.Block]*Loop
	inner  map[*ir.Block]*Loop
}

// InnermostLoop returns the innermost loop containing b, or nil.
func (li *LoopInfo) InnermostLoop(b *ir.Block) *Loop { return li.inner[b] }

// Depth returns the loop nesting depth of b (0 outside all loops).
func (li *LoopInfo) Depth(b *ir.Block) int {
	if l := li.inner[b]; l != nil {
		return l.Depth
	}
	return 0
}

// FindLoops detects natural loops via back edges (edge u→h with h dominating
// u) and organizes them into a nesting forest.
func FindLoops(t *DomTree) *LoopInfo {
	li := &LoopInfo{ByHead: map[*ir.Block]*Loop{}, inner: map[*ir.Block]*Loop{}}
	for _, b := range t.rpo {
		for _, s := range b.Succs() {
			if !t.Reachable(s) || !t.Dominates(s, b) {
				continue
			}
			// b→s is a back edge with header s.
			l := li.ByHead[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				li.ByHead[s] = l
				li.Loops = append(li.Loops, l)
			}
			// Add the natural-loop body: everything reaching b without
			// passing through s.
			var stack []*ir.Block
			if !l.Blocks[b] {
				l.Blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range t.preds[x] {
					if !l.Blocks[p] {
						l.Blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	// Nesting: loop A is inside loop B if B contains A's header and A ≠ B.
	for _, a := range li.Loops {
		for _, b := range li.Loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			// Pick the smallest enclosing loop as parent.
			if a.Parent == nil || len(b.Blocks) < len(a.Parent.Blocks) {
				a.Parent = b
			}
		}
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost loop per block.
	for _, l := range li.Loops {
		for b := range l.Blocks {
			cur := li.inner[b]
			if cur == nil || l.Depth > cur.Depth {
				li.inner[b] = l
			}
		}
	}
	return li
}
