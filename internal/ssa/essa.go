package ssa

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// InsertPi converts f into e-SSA form (§3.1): after every conditional branch
// whose condition is an order comparison, the compared values are renamed on
// each outgoing edge by a π (bound intersection) instruction carrying the
// relation that holds along that edge. Critical edges are split so the π has
// a block that the edge dominates. The transformation renames dominated
// uses, chaining nested π-nodes along the dominator tree.
//
// Example: `condbr (cmp lt i, e), body, exit` inserts
//
//	body:  i.pi = pi i lt e      exit: i.pi2 = pi i ge e
//	       e.pi = pi e gt i            e.pi2 = pi e le i
//
// and rewrites uses of i/e dominated by each edge.
func InsertPi(f *ir.Func) {
	type edgeInfo struct {
		from *ir.Block
		idx  int // target index in the condbr
		cmp  *ir.Instr
		pred ir.Pred // relation holding on this edge: Args[0] pred Args[1]
	}
	var edges []edgeInfo
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		c := t.Args[0]
		if c.Kind != ir.VInstr || c.Def.Op != ir.OpCmp {
			continue
		}
		cmp := c.Def
		edges = append(edges,
			edgeInfo{b, 0, cmp, cmp.Pred},
			edgeInfo{b, 1, cmp, cmp.Pred.Negate()})
	}

	// Insert π instructions, splitting edges whose target has several preds.
	preds := f.Preds()
	piAt := map[*ir.Block][]piDef{}
	for _, e := range edges {
		if e.pred == ir.PNe {
			continue // x ≠ y carries no range information
		}
		a0, a1 := e.cmp.Args[0], e.cmp.Args[1]
		if a0.Typ == ir.TBool {
			continue
		}
		host := e.from.Term().Targets[e.idx]
		if len(preds[host]) > 1 {
			host = splitEdge(f, e.from, e.idx)
			preds = f.Preds()
		}
		mk := func(src, bound *ir.Value, p ir.Pred) {
			if src.Kind == ir.VConst || src == bound {
				return
			}
			pi := &ir.Instr{Op: ir.OpPi, Pred: p, Args: []*ir.Value{src, bound}, Block: host}
			res := f.NewLocal(src.Name+".pi", src.Typ)
			res.Def = pi
			pi.Res = res
			// Place after any φs of the host block.
			nphi := len(host.Phis())
			host.Instrs = append(host.Instrs[:nphi:nphi],
				append([]*ir.Instr{pi}, host.Instrs[nphi:]...)...)
			piAt[host] = append(piAt[host], piDef{pi, src})
		}
		mk(a0, a1, e.pred)
		mk(a1, a0, e.pred.Swap())
	}
	if len(piAt) == 0 {
		return
	}

	// Rename dominated uses with a stack walk over the (new) dominator tree.
	dt := cfg.NewDomTree(f)
	stacks := map[*ir.Value][]*ir.Value{} // original value → version stack
	cur := func(v *ir.Value) *ir.Value {
		if s := stacks[v]; len(s) > 0 {
			return s[len(s)-1]
		}
		return v
	}
	// root maps a π result back to the original value it versions.
	root := map[*ir.Value]*ir.Value{}
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		var pushed []*ir.Value
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				continue // φ operands are renamed at the predecessor edge
			}
			if in.Op == ir.OpPi {
				if orig := origOf(in, piAt[b]); orig != nil {
					r := orig
					if rr, ok := root[orig]; ok {
						r = rr
					}
					// Chain to the innermost enclosing version.
					in.Args[0] = cur(r)
					in.Args[1] = cur(rootOr(root, in.Args[1]))
					stacks[r] = append(stacks[r], in.Res)
					root[in.Res] = r
					pushed = append(pushed, r)
					continue
				}
			}
			for i, a := range in.Args {
				in.Args[i] = cur(rootOr(root, a))
			}
		}
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				for i, from := range phi.In {
					if from == b {
						phi.Args[i] = cur(rootOr(root, phi.Args[i]))
					}
				}
			}
		}
		for _, c := range dt.Children(b) {
			walk(c)
		}
		for _, r := range pushed {
			stacks[r] = stacks[r][:len(stacks[r])-1]
		}
	}
	walk(f.Entry())
}

func rootOr(root map[*ir.Value]*ir.Value, v *ir.Value) *ir.Value {
	if r, ok := root[v]; ok {
		return r
	}
	return v
}

// piDef records a freshly inserted π and the value it versions.
type piDef struct {
	pi   *ir.Instr
	orig *ir.Value
}

func origOf(in *ir.Instr, defs []piDef) *ir.Value {
	for _, d := range defs {
		if d.pi == in {
			return d.orig
		}
	}
	return nil
}

// splitEdge inserts a fresh block on the idx-th outgoing edge of from's
// terminator and returns it, fixing φ incoming-block references.
func splitEdge(f *ir.Func, from *ir.Block, idx int) *ir.Block {
	term := from.Term()
	target := term.Targets[idx]
	nb := &ir.Block{Name: uniqueName(f, from.Name+"."+target.Name), Func: f}
	br := &ir.Instr{Op: ir.OpBr, Targets: []*ir.Block{target}, Block: nb}
	nb.Instrs = []*ir.Instr{br}
	f.Blocks = append(f.Blocks, nb)
	term.Targets[idx] = nb
	for _, phi := range target.Phis() {
		for i, in := range phi.In {
			if in == from {
				phi.In[i] = nb
			}
		}
	}
	return nb
}

func uniqueName(f *ir.Func, name string) string {
	taken := map[string]bool{}
	for _, b := range f.Blocks {
		taken[b.Name] = true
	}
	if !taken[name] {
		return name
	}
	for i := 1; ; i++ {
		cand := name + "." + itoa(i)
		if !taken[cand] {
			return cand
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
