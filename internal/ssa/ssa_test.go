package ssa

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// buildWithLocal builds a function using an alloca'd local the way the MiniC
// frontend does:
//
//	var x int = 0
//	while (x < n) { x = x + 1 }
//	sink(x)
func buildWithLocal(t *testing.T) (*ir.Module, *ir.Func) {
	t.Helper()
	m := ir.NewModule("t")
	sink := m.NewFunc("sink", ir.TVoid, ir.Param("v", ir.TInt))
	{
		b := ir.NewBuilder(sink)
		blk := b.Block("entry")
		b.SetBlock(blk)
		b.Ret(nil)
	}
	f := m.NewFunc("count", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")

	b.SetBlock(entry)
	x := b.Alloca(1, "x.addr")
	b.Store(x, b.Int(0))
	b.Br(head)

	b.SetBlock(head)
	x1 := b.Load(ir.TInt, x, "x1")
	c := b.Cmp(ir.PLt, x1, f.Params[0], "c")
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	x2 := b.Load(ir.TInt, x, "x2")
	x3 := b.Add(x2, b.Int(1), "x3")
	b.Store(x, x3)
	b.Br(head)

	b.SetBlock(exit)
	x4 := b.Load(ir.TInt, x, "x4")
	b.Call(sink, "", x4)
	b.Ret(nil)
	return m, f
}

func TestPromoteAllocas(t *testing.T) {
	m, f := buildWithLocal(t)
	PromoteAllocas(f)
	if err := VerifySSA(f); err != nil {
		t.Fatalf("SSA verify after promotion: %v\n%s", err, f)
	}
	s := f.String()
	if strings.Contains(s, "alloc stack") {
		t.Errorf("alloca not removed:\n%s", s)
	}
	if strings.Contains(s, "load") || strings.Contains(s, "store") {
		t.Errorf("memory ops not removed:\n%s", s)
	}
	if !strings.Contains(s, "phi") {
		t.Errorf("expected a φ at the loop head:\n%s", s)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("module verify: %v", err)
	}
}

func TestPromoteSkipsEscapingAlloca(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TPtr)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	x := b.Alloca(1, "x")
	b.Store(x, b.Int(1))
	b.Ret(x) // address escapes via return
	PromoteAllocas(f)
	if !strings.Contains(f.String(), "alloc stack") {
		t.Errorf("escaping alloca must not be promoted:\n%s", f)
	}
}

func TestPromoteSkipsOffsetAlloca(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	arr := b.Alloc(ir.AllocStack, b.Int(10), "arr")
	p := b.PtrAddConst(arr, 3, "p")
	b.Store(p, b.Int(1))
	b.Ret(nil)
	PromoteAllocas(f)
	if !strings.Contains(f.String(), "alloc stack") {
		t.Errorf("array alloca must not be promoted:\n%s", f)
	}
}

func TestPromoteUndefLoadGetsZero(t *testing.T) {
	m := ir.NewModule("t")
	sink := m.NewFunc("sink", ir.TVoid, ir.Param("v", ir.TInt))
	{
		b := ir.NewBuilder(sink)
		blk := b.Block("entry")
		b.SetBlock(blk)
		b.Ret(nil)
	}
	f := m.NewFunc("f", ir.TVoid)
	b := ir.NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	x := b.Alloca(1, "x")
	v := b.Load(ir.TInt, x, "v")
	b.Call(sink, "", v)
	b.Store(x, b.Int(5))
	b.Ret(nil)
	PromoteAllocas(f)
	if err := VerifySSA(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	// The load-before-store must have been replaced by the zero constant.
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpCall {
			if c, ok := in.Args[0].IsConst(); !ok || c != 0 {
				t.Errorf("undef load replaced by %s, want 0", in.Args[0])
			}
		}
	}
}

// buildBranchCmp builds: if (i < n) { use(i) } else { use(i) }, returning
// the uses to inspect π-renaming.
func buildBranchCmp(t *testing.T) (*ir.Func, *ir.Instr, *ir.Instr) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("i", ir.TInt), ir.Param("n", ir.TInt), ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	then := b.Block("then")
	els := b.Block("else")
	exit := b.Block("exit")
	i, n, p := f.Params[0], f.Params[1], f.Params[2]

	b.SetBlock(entry)
	c := b.Cmp(ir.PLt, i, n, "c")
	b.CondBr(c, then, els)

	b.SetBlock(then)
	q1 := b.PtrAdd(p, i, "q1")
	b.Store(q1, b.Int(1))
	b.Br(exit)

	b.SetBlock(els)
	q2 := b.PtrAdd(p, i, "q2")
	b.Store(q2, b.Int(2))
	b.Br(exit)

	b.SetBlock(exit)
	b.Ret(nil)
	return f, q1.Def, q2.Def
}

func TestInsertPiRenamesUses(t *testing.T) {
	f, use1, use2 := buildBranchCmp(t)
	InsertPi(f)
	if err := VerifySSA(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	// Each branch's use of i must now go through a π carrying the edge
	// relation.
	checkPi := func(use *ir.Instr, wantPred ir.Pred) {
		t.Helper()
		arg := use.Args[1] // the index operand of ptradd
		if arg.Kind != ir.VInstr || arg.Def.Op != ir.OpPi {
			t.Fatalf("use %s not renamed to a π:\n%s", use, f)
		}
		if arg.Def.Pred != wantPred {
			t.Errorf("π pred = %s, want %s", arg.Def.Pred, wantPred)
		}
	}
	checkPi(use1, ir.PLt) // then edge: i < n
	checkPi(use2, ir.PGe) // else edge: i ≥ n
}

func TestInsertPiSplitsCriticalEdges(t *testing.T) {
	// Branch where the "then" target is also reached from elsewhere: the π
	// needs a split edge block.
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("i", ir.TInt), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	pre := b.Block("pre")
	join := b.Block("join")
	i, n := f.Params[0], f.Params[1]

	b.SetBlock(entry)
	c := b.Cmp(ir.PLt, i, n, "c")
	b.CondBr(c, join, pre)

	b.SetBlock(pre)
	b.Br(join)

	b.SetBlock(join)
	phi := b.Phi(ir.TInt, "x")
	ir.AddIncoming(phi, i, entry)
	ir.AddIncoming(phi, n, pre)
	b.Ret(nil)

	nBefore := len(f.Blocks)
	InsertPi(f)
	if len(f.Blocks) <= nBefore {
		t.Fatalf("expected edge splitting to add blocks:\n%s", f)
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	// The φ incoming from the split block must be the π version of i.
	var foundPi bool
	for k, a := range phi.Args {
		_ = k
		if a.Kind == ir.VInstr && a.Def.Op == ir.OpPi {
			foundPi = true
		}
	}
	if !foundPi {
		t.Errorf("φ incoming not rerouted through π:\n%s", f)
	}
}

func TestInsertPiLoopChain(t *testing.T) {
	// Nested conditions must chain π-nodes: if (i < n) { if (i > 0) { use } }.
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("i", ir.TInt), ir.Param("n", ir.TInt), ir.Param("p", ir.TPtr))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	mid := b.Block("mid")
	inner := b.Block("inner")
	exit := b.Block("exit")
	i, n, p := f.Params[0], f.Params[1], f.Params[2]

	b.SetBlock(entry)
	c1 := b.Cmp(ir.PLt, i, n, "c1")
	b.CondBr(c1, mid, exit)
	b.SetBlock(mid)
	c2 := b.Cmp(ir.PGt, i, b.Int(0), "c2")
	b.CondBr(c2, inner, exit)
	b.SetBlock(inner)
	q := b.PtrAdd(p, i, "q")
	b.Store(q, b.Int(1))
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(nil)

	InsertPi(f)
	if err := VerifySSA(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	// The use in inner must see π(π(i)).
	arg := q.Def.Args[1]
	if arg.Def == nil || arg.Def.Op != ir.OpPi {
		t.Fatalf("use not π-renamed:\n%s", f)
	}
	src := arg.Def.Args[0]
	if src.Def == nil || src.Def.Op != ir.OpPi {
		t.Fatalf("π not chained through outer π:\n%s", f)
	}
}

func TestInsertPiSkipsNe(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TVoid, ir.Param("i", ir.TInt), ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	then := b.Block("then")
	exit := b.Block("exit")
	b.SetBlock(entry)
	c := b.Cmp(ir.PNe, f.Params[0], f.Params[1], "c")
	b.CondBr(c, then, exit)
	b.SetBlock(then)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(nil)
	InsertPi(f)
	// ≠ gives no information on the true edge; = gives information on the
	// false edge, so exactly that edge may have πs. No π in 'then'.
	for _, in := range then.Instrs {
		if in.Op == ir.OpPi {
			t.Errorf("π inserted on ≠ edge:\n%s", f)
		}
	}
	if err := VerifySSA(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifySSADetectsViolation(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.TInt, ir.Param("c", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	then := b.Block("then")
	exit := b.Block("exit")
	b.SetBlock(entry)
	cc := b.Cmp(ir.PNe, f.Params[0], b.Int(0), "cc")
	b.CondBr(cc, then, exit)
	b.SetBlock(then)
	x := b.Add(f.Params[0], b.Int(1), "x")
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(x) // x does not dominate exit
	if err := VerifySSA(f); err == nil {
		t.Fatal("VerifySSA should reject use not dominated by def")
	}
}

func TestDomOrderAfterPiStillValid(t *testing.T) {
	f, _, _ := buildBranchCmp(t)
	InsertPi(f)
	dt := cfg.NewDomTree(f)
	if len(dt.DomOrder()) != len(cfg.ReversePostorder(f)) {
		t.Errorf("dom order and RPO disagree on reachable block count")
	}
}
