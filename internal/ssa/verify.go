package ssa

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// VerifySSA checks the dominance property on top of ir.VerifyFunc's
// structural checks: every non-φ use is dominated by its definition, and
// every φ use is dominated at the end of the matching incoming edge.
func VerifySSA(f *ir.Func) error {
	if err := ir.VerifyFunc(f); err != nil {
		return err
	}
	dt := cfg.NewDomTree(f)
	// Position of each defining instruction within its block.
	pos := map[*ir.Instr]int{}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			pos[in] = i
		}
	}
	dominatesUse := func(def *ir.Value, useBlock *ir.Block, useIdx int) bool {
		switch def.Kind {
		case ir.VConst, ir.VGlobal, ir.VParam:
			return true
		}
		db := def.Def.Block
		if !dt.Reachable(db) || !dt.Reachable(useBlock) {
			return true // unreachable code is exempt
		}
		if db == useBlock {
			return pos[def.Def] < useIdx
		}
		return dt.StrictlyDominates(db, useBlock)
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for k, a := range in.Args {
					from := in.In[k]
					if !dominatesUse(a, from, len(from.Instrs)) {
						return fmt.Errorf("func %s: φ %s: incoming %s from %s not dominated by def",
							f.Name, in, a, from.Name)
					}
				}
				continue
			}
			for _, a := range in.Args {
				if !dominatesUse(a, b, i) {
					return fmt.Errorf("func %s: %s: use of %s not dominated by def",
						f.Name, in, a)
				}
			}
		}
	}
	return nil
}

// VerifyModuleSSA runs VerifySSA over every function.
func VerifyModuleSSA(m *ir.Module) error {
	for _, f := range m.Funcs {
		if err := VerifySSA(f); err != nil {
			return err
		}
	}
	return nil
}
