// Package ssa builds and checks the SSA/e-SSA program form the analyses
// require. PromoteAllocas is the classic mem2reg pass (φ-insertion at
// iterated dominance frontiers + dominator-tree renaming) that turns the
// MiniC frontend's alloca/load/store locals into SSA registers. InsertPi is
// the e-SSA transformation of Bodik, Gupta and Sarkar's ABCD, which splits
// live ranges after conditionals by inserting π (bound-intersection)
// instructions — the "p0 = p1 ∩ [l,u]" form of Fig. 6 in the paper.
package ssa

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// PromoteAllocas rewrites every promotable stack allocation of f into SSA
// registers. An alloca is promotable when it has constant size 1 and its
// address is used only as the direct operand of loads and stores (never
// stored itself, offset, compared, returned or passed along).
func PromoteAllocas(f *ir.Func) {
	allocas := promotable(f)
	if len(allocas) == 0 {
		return
	}
	dt := cfg.NewDomTree(f)
	df := cfg.DominanceFrontiers(dt)

	// Insert φ-functions at the iterated dominance frontier of each store.
	phiFor := map[*ir.Instr]map[*ir.Block]*ir.Instr{} // alloca → block → φ
	for _, a := range allocas {
		phiFor[a.def] = map[*ir.Block]*ir.Instr{}
		work := []*ir.Block{}
		inWork := map[*ir.Block]bool{}
		for _, b := range a.storeBlocks {
			if !inWork[b] {
				inWork[b] = true
				work = append(work, b)
			}
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range df[b] {
				if phiFor[a.def][d] != nil {
					continue
				}
				phi := &ir.Instr{Op: ir.OpPhi, Block: d}
				res := f.NewLocal(a.def.Res.Name+".phi", a.typ)
				res.Def = phi
				phi.Res = res
				d.Instrs = append([]*ir.Instr{phi}, d.Instrs...)
				phiFor[a.def][d] = phi
				if !inWork[d] {
					inWork[d] = true
					work = append(work, d)
				}
			}
		}
	}

	// Rename along the dominator tree.
	replace := map[*ir.Value]*ir.Value{} // dead load result → reaching def
	stacks := map[*ir.Instr][]*ir.Value{}
	undef := func(t ir.Type) *ir.Value {
		if t == ir.TPtr {
			return f.Mod.Null()
		}
		return f.Mod.IntConst(0)
	}
	byAddr := map[*ir.Value]*allocaInfo{}
	for _, a := range allocas {
		byAddr[a.def.Res] = a
	}
	top := func(a *allocaInfo) *ir.Value {
		s := stacks[a.def]
		if len(s) == 0 {
			return undef(a.typ)
		}
		return s[len(s)-1]
	}
	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		pushed := map[*ir.Instr]int{}
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for _, a := range allocas {
					if phiFor[a.def][b] == in {
						stacks[a.def] = append(stacks[a.def], in.Res)
						pushed[a.def]++
					}
				}
				continue
			}
			switch in.Op {
			case ir.OpLoad:
				if a := byAddr[in.Args[0]]; a != nil {
					replace[in.Res] = top(a)
				}
			case ir.OpStore:
				if a := byAddr[in.Args[0]]; a != nil {
					stacks[a.def] = append(stacks[a.def], in.Args[1])
					pushed[a.def]++
				}
			}
		}
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				for _, a := range allocas {
					if phiFor[a.def][s] == phi {
						ir.AddIncoming(phi, top(a), b)
					}
				}
			}
		}
		for _, c := range dt.Children(b) {
			rename(c)
		}
		for def, n := range pushed {
			stacks[def] = stacks[def][:len(stacks[def])-n]
		}
	}
	rename(f.Entry())

	// Resolve replacement chains (a store may have stored a dead load).
	var resolve func(v *ir.Value) *ir.Value
	resolve = func(v *ir.Value) *ir.Value {
		if r, ok := replace[v]; ok {
			rr := resolve(r)
			replace[v] = rr
			return rr
		}
		return v
	}

	// Rewrite operands and delete the promoted memory operations.
	promoted := map[*ir.Instr]bool{}
	for _, a := range allocas {
		promoted[a.def] = true
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			drop := false
			switch in.Op {
			case ir.OpAlloc:
				drop = promoted[in]
			case ir.OpLoad:
				drop = byAddr[in.Args[0]] != nil
			case ir.OpStore:
				drop = byAddr[in.Args[0]] != nil
			}
			if drop {
				continue
			}
			for i, arg := range in.Args {
				in.Args[i] = resolve(arg)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	// Prune trivial φs (single unique incoming, or self-references only).
	pruneTrivialPhis(f)
}

type allocaInfo struct {
	def         *ir.Instr
	typ         ir.Type
	storeBlocks []*ir.Block
}

// promotable finds the stack allocas whose address never escapes a direct
// load/store position, and infers the stored type.
func promotable(f *ir.Func) []*allocaInfo {
	cands := map[*ir.Value]*allocaInfo{}
	order := []*allocaInfo{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloc && in.AKind == ir.AllocStack {
				if c, ok := in.Args[0].IsConst(); ok && c == 1 {
					a := &allocaInfo{def: in, typ: ir.TVoid}
					cands[in.Res] = a
					order = append(order, a)
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	disqualify := func(v *ir.Value) {
		delete(cands, v)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, arg := range in.Args {
				a := cands[arg]
				if a == nil {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && i == 0:
					if a.typ == ir.TVoid {
						a.typ = in.Res.Typ
					} else if a.typ != in.Res.Typ {
						disqualify(arg)
					}
				case in.Op == ir.OpStore && i == 0:
					if a.typ == ir.TVoid {
						a.typ = in.Args[1].Typ
					} else if a.typ != in.Args[1].Typ {
						disqualify(arg)
					}
					a.storeBlocks = append(a.storeBlocks, b)
				default:
					// Address escapes (stored as a value, offset, called…).
					disqualify(arg)
				}
			}
		}
	}
	var out []*allocaInfo
	for _, a := range order {
		if cands[a.def.Res] == a && a.typ != ir.TVoid {
			out = append(out, a)
		}
	}
	return out
}

// pruneTrivialPhis removes φs of the form x = φ(y, y, …, x) by replacing x
// with y, iterating to a fixpoint.
func pruneTrivialPhis(f *ir.Func) {
	for {
		replace := map[*ir.Value]*ir.Value{}
		for _, b := range f.Blocks {
			for _, phi := range b.Phis() {
				var uniq *ir.Value
				trivial := true
				for _, a := range phi.Args {
					if a == phi.Res {
						continue
					}
					if uniq == nil {
						uniq = a
					} else if uniq != a {
						trivial = false
						break
					}
				}
				if trivial && uniq != nil {
					replace[phi.Res] = uniq
				}
			}
		}
		if len(replace) == 0 {
			return
		}
		var resolve func(v *ir.Value) *ir.Value
		resolve = func(v *ir.Value) *ir.Value {
			if r, ok := replace[v]; ok && r != v {
				return resolve(r)
			}
			return v
		}
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op == ir.OpPhi && replace[in.Res] != nil {
					continue
				}
				for i, a := range in.Args {
					in.Args[i] = resolve(a)
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
}
