package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a malformed textual-IR input. Every error returned
// by Parse/ParseWithOptions unwraps to one, so network-facing callers can
// report the offending line to clients without string-matching.
type ParseError struct {
	// Line is the 1-based source line the error points at; 0 when the
	// error is not tied to a single line (truncated input, size limit,
	// cross-function problems).
	Line int
	Msg  string
}

// Error renders the familiar "line N: msg" form.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
	}
	return e.Msg
}

// errAt builds a ParseError at the given 1-based line (0 = no line).
func errAt(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ParseOptions bounds the work Parse does on untrusted input.
type ParseOptions struct {
	// MaxBytes rejects sources longer than this many bytes before any
	// parsing happens; 0 means unlimited.
	MaxBytes int
}

// Parse reads the textual IR format emitted by Print. The format round-trips:
// Parse(module.String()) yields a structurally identical module. Forward
// references (φ operands defined later in the function) are resolved in a
// second pass; result types are inferred from opcodes, with copy/φ/π types
// propagated to a fixpoint.
//
// Parse never panics on malformed input and every error it returns unwraps
// to a *ParseError. Use ParseWithOptions to also bound the input size.
func Parse(src string) (*Module, error) {
	return ParseWithOptions(src, ParseOptions{})
}

// ParseWithOptions is Parse with limits suitable for untrusted
// (network-reachable) input.
func ParseWithOptions(src string, opts ParseOptions) (mod *Module, err error) {
	if opts.MaxBytes > 0 && len(src) > opts.MaxBytes {
		return nil, errAt(0, "source is %d bytes, exceeding the %d-byte limit", len(src), opts.MaxBytes)
	}
	// The grammar has no recursion and every loop advances, so a panic here
	// is a parser bug — but this path serves untrusted input, so convert it
	// into an error rather than taking the process down.
	defer func() {
		if r := recover(); r != nil {
			mod, err = nil, errAt(0, "internal parser error: %v", r)
		}
	}()
	return parse(src)
}

func parse(src string) (*Module, error) {
	p := &irParser{}
	lines := strings.Split(src, "\n")
	var mod *Module
	i := 0
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			i++
		case strings.HasPrefix(line, "module "):
			if mod != nil {
				return nil, errAt(i+1, "duplicate module header")
			}
			mod = NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))
			i++
		case strings.HasPrefix(line, "global "):
			if mod == nil {
				return nil, errAt(i+1, "global before module header")
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, errAt(i+1, "global wants 'global name size'")
			}
			size, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, errAt(i+1, "bad global size: %v", err)
			}
			mod.NewGlobal(fields[1], size)
			i++
		case strings.HasPrefix(line, "func "):
			if mod == nil {
				return nil, errAt(i+1, "func before module header")
			}
			end, err := p.parseFunc(mod, lines, i)
			if err != nil {
				return nil, err
			}
			i = end
		default:
			return nil, errAt(i+1, "unexpected %q", line)
		}
	}
	if mod == nil {
		return nil, errAt(0, "missing module header")
	}
	// Resolve deferred call targets.
	for _, fix := range p.callFixups {
		callee := mod.Func(fix.name)
		if callee == nil {
			return nil, errAt(0, "call to unknown function %q", fix.name)
		}
		fix.in.Callee = callee
	}
	// Infer remaining types.
	p.inferTypes(mod)
	return mod, nil
}

type callFixup struct {
	in   *Instr
	name string
}

type irParser struct {
	callFixups []*callFixup
}

// pendingVal is a textual operand to resolve in pass two.
type pendingOperand struct {
	in   *Instr
	idx  int
	text string
	line int
}

func parseType(s string) (Type, error) {
	switch s {
	case "void":
		return TVoid, nil
	case "int":
		return TInt, nil
	case "bool":
		return TBool, nil
	case "ptr":
		return TPtr, nil
	}
	return TVoid, fmt.Errorf("unknown type %q", s)
}

func (p *irParser) parseFunc(mod *Module, lines []string, start int) (int, error) {
	header := strings.TrimSpace(lines[start])
	open := strings.Index(header, "(")
	closeIdx := strings.LastIndex(header, ")")
	if open < 0 || closeIdx < open || !strings.HasSuffix(header, "{") {
		return 0, errAt(start+1, "malformed func header")
	}
	name := strings.TrimSpace(header[len("func "):open])
	if name == "" {
		return 0, errAt(start+1, "func header has no name")
	}
	if mod.Func(name) != nil {
		return 0, errAt(start+1, "duplicate function %q", name)
	}
	var params []ParamSpec
	paramText := strings.TrimSpace(header[open+1 : closeIdx])
	if paramText != "" {
		for _, part := range strings.Split(paramText, ",") {
			fields := strings.Fields(strings.TrimSpace(part))
			if len(fields) != 2 {
				return 0, errAt(start+1, "malformed parameter %q", part)
			}
			t, err := parseType(fields[1])
			if err != nil {
				return 0, errAt(start+1, "%v", err)
			}
			params = append(params, Param(fields[0], t))
		}
	}
	retText := strings.TrimSpace(strings.TrimSuffix(header[closeIdx+1:], "{"))
	ret, err := parseType(retText)
	if err != nil {
		return 0, errAt(start+1, "%v", err)
	}
	f := mod.NewFunc(name, ret, params...)

	// First pass: split into labeled blocks of raw instruction lines.
	type rawBlock struct {
		name  string
		insts []string
		lns   []int
	}
	var raws []*rawBlock
	closed := false
	i := start + 1
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "}" {
			closed = true
			i++
			break
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasSuffix(line, ":") {
			raws = append(raws, &rawBlock{name: strings.TrimSuffix(line, ":")})
			continue
		}
		if len(raws) == 0 {
			return 0, errAt(i+1, "instruction before any block label")
		}
		raws[len(raws)-1].insts = append(raws[len(raws)-1].insts, line)
		raws[len(raws)-1].lns = append(raws[len(raws)-1].lns, i+1)
	}
	if !closed {
		return 0, errAt(start+1, "func %s: missing closing '}'", name)
	}

	blocks := map[string]*Block{}
	for _, rb := range raws {
		if blocks[rb.name] != nil {
			return 0, errAt(0, "func %s: duplicate block %q", name, rb.name)
		}
		b := &Block{Name: rb.name, Func: f}
		blocks[rb.name] = b
		f.Blocks = append(f.Blocks, b)
	}

	// Second pass: parse instructions, deferring operand resolution.
	values := map[string]*Value{}
	for _, prm := range f.Params {
		values[prm.Name] = prm
	}
	var pendings []pendingOperand
	var phiIncomings []struct {
		phi  *Instr
		text string
		blk  string
		line int
	}
	for _, rb := range raws {
		b := blocks[rb.name]
		for k, text := range rb.insts {
			ln := rb.lns[k]
			in, res, err := p.parseInstr(mod, f, text, ln, blocks, values,
				&pendings, &phiIncomings)
			if err != nil {
				return 0, err
			}
			in.Block = b
			b.Instrs = append(b.Instrs, in)
			if res != "" {
				if values[res] != nil {
					return 0, errAt(ln, "value %%%s redefined", res)
				}
				values[res] = in.Res
			}
		}
	}
	// Resolve deferred operands.
	resolve := func(text string, ln int) (*Value, error) {
		return p.operand(mod, text, values, ln)
	}
	for _, pd := range pendings {
		v, err := resolve(pd.text, pd.line)
		if err != nil {
			return 0, err
		}
		pd.in.Args[pd.idx] = v
	}
	for _, pi := range phiIncomings {
		v, err := resolve(pi.text, pi.line)
		if err != nil {
			return 0, err
		}
		blk := blocks[pi.blk]
		if blk == nil {
			return 0, errAt(pi.line, "φ names unknown block %q", pi.blk)
		}
		pi.phi.Args = append(pi.phi.Args, v)
		pi.phi.In = append(pi.phi.In, blk)
	}
	return i, nil
}

// operand parses a value reference: %name, @global, null, ptr:N or an
// integer literal.
func (p *irParser) operand(mod *Module, text string, values map[string]*Value, ln int) (*Value, error) {
	text = strings.TrimSpace(text)
	switch {
	case strings.HasPrefix(text, "%"):
		v := values[text[1:]]
		if v == nil {
			return nil, errAt(ln, "unknown value %s", text)
		}
		return v, nil
	case strings.HasPrefix(text, "@"):
		for _, g := range mod.Globals {
			if g.Name == text[1:] {
				return g.Addr, nil
			}
		}
		return nil, errAt(ln, "unknown global %s", text)
	case text == "null":
		return mod.Null(), nil
	case strings.HasPrefix(text, "ptr:"):
		c, err := strconv.ParseInt(text[4:], 10, 64)
		if err != nil {
			return nil, errAt(ln, "bad pointer literal %q", text)
		}
		return mod.constVal(TPtr, c), nil
	default:
		c, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, errAt(ln, "bad operand %q", text)
		}
		return mod.IntConst(c), nil
	}
}

// parseInstr parses one instruction line. Operands that may be forward
// references are deferred via pendings; immediate resolution is attempted
// first and only %-refs that fail are deferred.
func (p *irParser) parseInstr(mod *Module, f *Func, text string, ln int,
	blocks map[string]*Block, values map[string]*Value,
	pendings *[]pendingOperand,
	phiIncomings *[]struct {
		phi  *Instr
		text string
		blk  string
		line int
	}) (*Instr, string, error) {

	resName := ""
	body := text
	if eq := strings.Index(text, " = "); eq > 0 && strings.HasPrefix(text, "%") {
		resName = strings.TrimSpace(text[1:eq])
		body = strings.TrimSpace(text[eq+3:])
	}
	mnemonic := body
	rest := ""
	if sp := strings.IndexByte(body, ' '); sp > 0 {
		mnemonic = body[:sp]
		rest = strings.TrimSpace(body[sp+1:])
	}

	in := &Instr{}
	mkRes := func(t Type) {
		v := f.newValue(resName, t, VInstr)
		// Preserve the exact textual name: newValue may have uniquified a
		// clash, which indicates a malformed file; keep the parser lenient.
		v.Def = in
		in.Res = v
	}
	addArg := func(text string) {
		text = strings.TrimSpace(text)
		if v, err := p.operand(mod, text, values, ln); err == nil {
			in.Args = append(in.Args, v)
			return
		}
		in.Args = append(in.Args, nil)
		*pendings = append(*pendings, pendingOperand{in, len(in.Args) - 1, text, ln})
	}
	splitArgs := func(s string) []string {
		if strings.TrimSpace(s) == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}

	switch {
	case mnemonic == "copy":
		in.Op = OpCopy
		addArg(rest)
		mkRes(TVoid) // patched by inferTypes
	case mnemonic == "add" || mnemonic == "sub" || mnemonic == "mul" ||
		mnemonic == "div" || mnemonic == "rem":
		in.Op = map[string]Op{"add": OpAdd, "sub": OpSub, "mul": OpMul,
			"div": OpDiv, "rem": OpRem}[mnemonic]
		args := splitArgs(rest)
		if len(args) != 2 {
			return nil, "", errAt(ln, "%s wants two operands", mnemonic)
		}
		addArg(args[0])
		addArg(args[1])
		mkRes(TInt)
	case mnemonic == "cmp":
		in.Op = OpCmp
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return nil, "", errAt(ln, "malformed cmp")
		}
		pred, ok := ParsePred(fields[0])
		if !ok {
			return nil, "", errAt(ln, "bad predicate %q", fields[0])
		}
		in.Pred = pred
		args := splitArgs(fields[1])
		if len(args) != 2 {
			return nil, "", errAt(ln, "cmp wants two operands")
		}
		addArg(args[0])
		addArg(args[1])
		mkRes(TBool)
	case mnemonic == "phi":
		in.Op = OpPhi
		mkRes(TVoid)
		for _, part := range strings.Split(rest, "],") {
			part = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(
				strings.TrimSpace(part), "["), "]"))
			halves := strings.SplitN(part, ",", 2)
			if len(halves) != 2 {
				return nil, "", errAt(ln, "malformed φ incoming %q", part)
			}
			*phiIncomings = append(*phiIncomings, struct {
				phi  *Instr
				text string
				blk  string
				line int
			}{in, strings.TrimSpace(halves[0]), strings.TrimSpace(halves[1]), ln})
		}
	case mnemonic == "pi":
		in.Op = OpPi
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, "", errAt(ln, "malformed pi")
		}
		pred, ok := ParsePred(fields[1])
		if !ok {
			return nil, "", errAt(ln, "bad predicate %q", fields[1])
		}
		in.Pred = pred
		addArg(fields[0])
		addArg(fields[2])
		mkRes(TVoid)
	case mnemonic == "alloc":
		in.Op = OpAlloc
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return nil, "", errAt(ln, "alloc wants 'alloc kind size'")
		}
		if fields[0] == "stack" {
			in.AKind = AllocStack
		} else if fields[0] == "heap" {
			in.AKind = AllocHeap
		} else {
			return nil, "", errAt(ln, "bad alloc kind %q", fields[0])
		}
		addArg(fields[1])
		mkRes(TPtr)
	case mnemonic == "free":
		in.Op = OpFree
		addArg(rest)
		mkRes(TPtr)
	case mnemonic == "ptradd":
		in.Op = OpPtrAdd
		args := splitArgs(rest)
		if len(args) != 2 {
			return nil, "", errAt(ln, "ptradd wants two operands")
		}
		addArg(args[0])
		addArg(args[1])
		mkRes(TPtr)
	case strings.HasPrefix(mnemonic, "load."):
		in.Op = OpLoad
		t, err := parseType(strings.TrimPrefix(mnemonic, "load."))
		if err != nil {
			return nil, "", errAt(ln, "%v", err)
		}
		addArg(rest)
		mkRes(t)
	case mnemonic == "store":
		in.Op = OpStore
		args := splitArgs(rest)
		if len(args) != 2 {
			return nil, "", errAt(ln, "store wants two operands")
		}
		addArg(args[0])
		addArg(args[1])
	case mnemonic == "call":
		in.Op = OpCall
		open := strings.Index(rest, "(")
		closeIdx := strings.LastIndex(rest, ")")
		if open < 0 || closeIdx < open {
			return nil, "", errAt(ln, "malformed call")
		}
		p.callFixups = append(p.callFixups, &callFixup{in, strings.TrimSpace(rest[:open])})
		for _, a := range splitArgs(rest[open+1 : closeIdx]) {
			addArg(a)
		}
		if resName != "" {
			mkRes(TVoid) // patched when the callee resolves
		}
	case strings.HasPrefix(mnemonic, "extern."):
		in.Op = OpExtern
		t, err := parseType(strings.TrimPrefix(mnemonic, "extern."))
		if err != nil {
			return nil, "", errAt(ln, "%v", err)
		}
		open := strings.Index(rest, "(")
		closeIdx := strings.LastIndex(rest, ")")
		if open < 0 || closeIdx < open {
			return nil, "", errAt(ln, "malformed extern")
		}
		sym, err := strconv.Unquote(strings.TrimSpace(rest[:open]))
		if err != nil {
			return nil, "", errAt(ln, "bad extern symbol: %v", err)
		}
		in.Sym = sym
		for _, a := range splitArgs(rest[open+1 : closeIdx]) {
			addArg(a)
		}
		if t != TVoid {
			mkRes(t)
		}
	case mnemonic == "br":
		in.Op = OpBr
		b := blocks[strings.TrimSpace(rest)]
		if b == nil {
			return nil, "", errAt(ln, "br to unknown block %q", rest)
		}
		in.Targets = []*Block{b}
	case mnemonic == "condbr":
		in.Op = OpCondBr
		args := splitArgs(rest)
		if len(args) != 3 {
			return nil, "", errAt(ln, "condbr wants cond and two targets")
		}
		addArg(args[0])
		t1, t2 := blocks[args[1]], blocks[args[2]]
		if t1 == nil || t2 == nil {
			return nil, "", errAt(ln, "condbr to unknown block")
		}
		in.Targets = []*Block{t1, t2}
	case mnemonic == "ret":
		in.Op = OpRet
		if strings.TrimSpace(rest) != "" {
			addArg(rest)
		}
	default:
		return nil, "", errAt(ln, "unknown instruction %q", mnemonic)
	}
	if in.Res == nil && resName != "" && in.Op != OpCall {
		return nil, "", errAt(ln, "%s produces no result", mnemonic)
	}
	return in, resName, nil
}

// inferTypes patches the TVoid placeholders of copy/φ/π results (and call
// results) by propagating operand types to a fixpoint.
func (p *irParser) inferTypes(mod *Module) {
	for changed := true; changed; {
		changed = false
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Res == nil || in.Res.Typ != TVoid {
						continue
					}
					var t Type
					switch in.Op {
					case OpCopy, OpPi:
						t = in.Args[0].Typ
					case OpPhi:
						for _, a := range in.Args {
							if a != nil && a.Typ != TVoid {
								t = a.Typ
								break
							}
						}
					case OpCall:
						if in.Callee != nil {
							t = in.Callee.RetType
						}
					}
					if t != TVoid {
						in.Res.Typ = t
						changed = true
					}
				}
			}
		}
	}
}
