package ir_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/progs"
)

// FuzzParse checks the IR parser never panics and that anything it accepts
// passes structural verification or fails it gracefully.
func FuzzParse(f *testing.F) {
	f.Add(progs.MessageBuffer().String())
	f.Add(progs.Fig10().String())
	f.Add("module m\nfunc f() void {\nentry:\n  ret\n}\n")
	f.Add("module m\nglobal g 4\n")
	f.Add("module\n")
	f.Add("func f() void {\n")
	f.Add("module m\nfunc f(p ptr) int {\nentry:\n  %x = load.int %p\n  ret %x\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			return
		}
		// Accepted modules must be printable and re-parseable.
		text := m.String()
		if _, err := ir.Parse(text); err != nil {
			t.Fatalf("accepted module does not re-parse: %v\n%s", err, text)
		}
	})
}
