package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/progs"
)

func TestWriteDot(t *testing.T) {
	m := progs.Accelerate()
	var b strings.Builder
	ir.WriteDot(&b, m.Func("accelerate"))
	out := b.String()
	for _, want := range []string{
		"digraph \"accelerate\"",
		"\"loop\" -> \"body\" [label=\"T\"]",
		"\"loop\" -> \"exit\" [label=\"F\"]",
		"\"body\" -> \"loop\";",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	// Instruction text must be escaped (no raw record separators).
	if strings.Contains(out, "label=\"{") && strings.Contains(out, "|") &&
		!strings.Contains(out, "\\|") {
		t.Error("unescaped '|' in record label")
	}
}
