// Package ir defines the intermediate representation the analyses operate
// on. It is the core language of Fig. 6 of "Symbolic Range Analysis of
// Pointers" (CGO'16) — malloc/free, pointer arithmetic, bound intersections
// (π-nodes), loads, stores, φ-functions and branches — extended with the
// integer arithmetic, comparisons and calls any real program needs.
//
// Programs are in SSA form: every Value has exactly one definition, and
// φ-functions merge values at control-flow joins. The e-SSA flavour the
// paper requires (live-range splitting after conditionals, à la Bodik's
// ABCD) is produced by package ssa, which inserts OpPi instructions.
//
// Pointer offsets are in abstract *units*: `ptradd p, i` produces a pointer
// i units past p, and loads/stores touch exactly one unit. This matches the
// byte-array view the paper's examples use (Fig. 1, Fig. 2).
package ir

import "fmt"

// Type is the minimal type universe of the IR.
type Type uint8

// Types.
const (
	TVoid Type = iota
	TInt       // machine integer
	TBool      // comparison result
	TPtr       // pointer (unit-granular)
)

// String renders the type name.
func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TBool:
		return "bool"
	case TPtr:
		return "ptr"
	}
	return "?"
}

// Pred is a comparison predicate.
type Pred uint8

// Predicates.
const (
	PEq Pred = iota
	PNe
	PLt
	PLe
	PGt
	PGe
)

// String renders the predicate mnemonic.
func (p Pred) String() string {
	switch p {
	case PEq:
		return "eq"
	case PNe:
		return "ne"
	case PLt:
		return "lt"
	case PLe:
		return "le"
	case PGt:
		return "gt"
	case PGe:
		return "ge"
	}
	return "?"
}

// Negate returns the predicate that holds exactly when p does not.
func (p Pred) Negate() Pred {
	switch p {
	case PEq:
		return PNe
	case PNe:
		return PEq
	case PLt:
		return PGe
	case PLe:
		return PGt
	case PGt:
		return PLe
	case PGe:
		return PLt
	}
	return p
}

// Swap returns the predicate with the operand order reversed
// (a p b ⇔ b p.Swap() a).
func (p Pred) Swap() Pred {
	switch p {
	case PLt:
		return PGt
	case PLe:
		return PGe
	case PGt:
		return PLt
	case PGe:
		return PLe
	}
	return p
}

// ParsePred parses a predicate mnemonic.
func ParsePred(s string) (Pred, bool) {
	switch s {
	case "eq":
		return PEq, true
	case "ne":
		return PNe, true
	case "lt":
		return PLt, true
	case "le":
		return PLe, true
	case "gt":
		return PGt, true
	case "ge":
		return PGe, true
	}
	return 0, false
}

// ValueKind discriminates how a Value is defined.
type ValueKind uint8

// Value kinds.
const (
	VConst  ValueKind = iota // integer or pointer literal
	VParam                   // function parameter
	VInstr                   // instruction result
	VGlobal                  // address of a global allocation
)

// Value is an SSA value: a constant, a parameter, a global address, or the
// result of an instruction.
type Value struct {
	ID    int    // unique within the function (constants/globals: within module)
	Name  string // printable name; unique within the function
	Typ   Type
	Kind  ValueKind
	Const int64   // VConst payload (for TPtr consts, 0 is the null pointer)
	Def   *Instr  // VInstr: defining instruction
	Func  *Func   // VParam/VInstr: owning function
	Gbl   *Global // VGlobal payload
	PIdx  int     // VParam: parameter position
}

// String renders the value reference as it appears in operand position.
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	switch v.Kind {
	case VConst:
		if v.Typ == TPtr {
			if v.Const == 0 {
				return "null"
			}
			return fmt.Sprintf("ptr:%d", v.Const)
		}
		return fmt.Sprint(v.Const)
	case VGlobal:
		return "@" + v.Gbl.Name
	default:
		return "%" + v.Name
	}
}

// IsConst reports whether v is a literal, returning its payload.
func (v *Value) IsConst() (int64, bool) {
	if v.Kind == VConst {
		return v.Const, true
	}
	return 0, false
}

// Global is a module-level allocation (array/struct storage). Its address is
// available in every function as a VGlobal value.
type Global struct {
	Name string
	Size int64 // units; 0 means unknown
	Addr *Value
}

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes.
const (
	OpCopy   Op = iota // res = copy a
	OpAdd              // res = add a, b
	OpSub              // res = sub a, b
	OpMul              // res = mul a, b
	OpDiv              // res = div a, b
	OpRem              // res = rem a, b
	OpCmp              // res = cmp <pred> a, b
	OpPhi              // res = phi [a, blkA], [b, blkB], ...
	OpPi               // res = pi a <pred> b   (e-SSA bound intersection)
	OpAlloc            // res = alloc <heap|stack> size
	OpFree             // res = free a          (copies a; res no longer valid)
	OpPtrAdd           // res = ptradd p, i     (p shifted by i units)
	OpLoad             // res = load.<type> p
	OpStore            // store p, v
	OpCall             // res = call f(args...)
	OpExtern           // res = extern "name"(args...)  (library/unknown call)
	OpBr               // br target
	OpCondBr           // condbr c, then, else
	OpRet              // ret [v]
)

// String renders the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpCopy:
		return "copy"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpRem:
		return "rem"
	case OpCmp:
		return "cmp"
	case OpPhi:
		return "phi"
	case OpPi:
		return "pi"
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpPtrAdd:
		return "ptradd"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCall:
		return "call"
	case OpExtern:
		return "extern"
	case OpBr:
		return "br"
	case OpCondBr:
		return "condbr"
	case OpRet:
		return "ret"
	}
	return "?"
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// AllocKind distinguishes allocation storage classes (basicaa cares).
type AllocKind uint8

// Allocation kinds.
const (
	AllocHeap  AllocKind = iota // malloc
	AllocStack                  // alloca (function-local storage)
)

// String renders the allocation kind.
func (k AllocKind) String() string {
	if k == AllocStack {
		return "stack"
	}
	return "heap"
}

// Instr is one IR instruction.
type Instr struct {
	Op      Op
	Res     *Value   // result, nil for store/br/condbr/ret/void call
	Args    []*Value // operands (phi: incoming values)
	In      []*Block // phi: incoming blocks, parallel to Args
	Targets []*Block // br: {t}; condbr: {then, else}
	Pred    Pred     // cmp, pi
	Callee  *Func    // call
	Sym     string   // extern symbol name
	AKind   AllocKind
	Block   *Block
}

// Arg returns the i-th operand.
func (in *Instr) Arg(i int) *Value { return in.Args[i] }

// Block is a basic block: φ-instructions first, exactly one terminator last.
type Block struct {
	Name   string
	Func   *Func
	Instrs []*Instr
}

// Term returns the block terminator, or nil if the block is still open.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks, derived from the terminator.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets
}

// Phis returns the φ-instructions at the head of the block.
func (b *Block) Phis() []*Instr {
	n := 0
	for n < len(b.Instrs) && b.Instrs[n].Op == OpPhi {
		n++
	}
	return b.Instrs[:n]
}

// Body returns the non-φ instructions.
func (b *Block) Body() []*Instr {
	return b.Instrs[len(b.Phis()):]
}

// String renders the block label.
func (b *Block) String() string { return b.Name }

// Func is an IR function.
type Func struct {
	Name    string
	Mod     *Module
	Params  []*Value
	RetType Type
	Blocks  []*Block // Blocks[0] is the entry

	nextID    int
	nameCount map[string]int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NumValues returns an upper bound on value IDs in f (for dense tables).
func (f *Func) NumValues() int { return f.nextID }

// newValue allocates a function-local value with a unique printable name.
func (f *Func) newValue(name string, t Type, k ValueKind) *Value {
	if f.nameCount == nil {
		f.nameCount = map[string]int{}
	}
	if name == "" {
		name = "v"
	}
	uniq := name
	if n, clash := f.nameCount[name]; clash {
		uniq = fmt.Sprintf("%s.%d", name, n)
		f.nameCount[name] = n + 1
	} else {
		f.nameCount[name] = 1
	}
	v := &Value{ID: f.nextID, Name: uniq, Typ: t, Kind: k, Func: f}
	f.nextID++
	return v
}

// NewLocal mints a fresh instruction-result value owned by f. The caller is
// responsible for attaching it as some instruction's Res and setting its Def
// back-pointer; transformations (SSA construction, e-SSA) use this to
// synthesize values outside the Builder.
func (f *Func) NewLocal(name string, t Type) *Value {
	return f.newValue(name, t, VInstr)
}

// Values iterates all values defined in f (params, then instruction results)
// in a deterministic order.
func (f *Func) Values() []*Value {
	var out []*Value
	out = append(out, f.Params...)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Res != nil {
				out = append(out, in.Res)
			}
		}
	}
	return out
}

// Instrs iterates all instructions of f in block order.
func (f *Func) Instrs() []*Instr {
	var out []*Instr
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// Preds computes the predecessor map of f's CFG.
func (f *Func) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		preds[b] = nil
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Module is a whole program: functions plus global allocations.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	byName map[string]*Func
	consts map[constKey]*Value
	nextID int
}

type constKey struct {
	t Type
	c int64
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:   name,
		byName: map[string]*Func{},
		consts: map[constKey]*Value{},
	}
}

// Func looks a function up by name.
func (m *Module) Func(name string) *Func { return m.byName[name] }

// NewFunc creates a function with the given parameter names/types.
func (m *Module) NewFunc(name string, ret Type, params ...ParamSpec) *Func {
	if m.byName[name] != nil {
		panic("ir: duplicate function " + name)
	}
	f := &Func{Name: name, Mod: m, RetType: ret}
	for i, p := range params {
		v := f.newValue(p.Name, p.Typ, VParam)
		v.PIdx = i
		f.Params = append(f.Params, v)
	}
	m.Funcs = append(m.Funcs, f)
	m.byName[name] = f
	return f
}

// ParamSpec declares one formal parameter.
type ParamSpec struct {
	Name string
	Typ  Type
}

// Param is shorthand for a ParamSpec.
func Param(name string, t Type) ParamSpec { return ParamSpec{name, t} }

// IntConst interns the integer literal c.
func (m *Module) IntConst(c int64) *Value { return m.constVal(TInt, c) }

// Null interns the null pointer literal.
func (m *Module) Null() *Value { return m.constVal(TPtr, 0) }

func (m *Module) constVal(t Type, c int64) *Value {
	k := constKey{t, c}
	if v := m.consts[k]; v != nil {
		return v
	}
	v := &Value{ID: -1 - len(m.consts), Typ: t, Kind: VConst, Const: c}
	m.consts[k] = v
	return v
}

// NewGlobal declares a global allocation of the given size (units).
func (m *Module) NewGlobal(name string, size int64) *Global {
	g := &Global{Name: name, Size: size}
	g.Addr = &Value{ID: -1000000 - len(m.Globals), Name: name, Typ: TPtr, Kind: VGlobal, Gbl: g}
	m.Globals = append(m.Globals, g)
	return g
}

// Site is an abstract memory allocation site: an alloc instruction or a
// global. Site IDs index the MemLocs tuple of the GR analysis (§3.2).
type Site struct {
	ID     int
	Instr  *Instr  // non-nil for alloc sites
	Global *Global // non-nil for globals
}

// Name returns a printable site name ("loc<i>").
func (s Site) String() string {
	return fmt.Sprintf("loc%d", s.ID)
}

// AllocSites enumerates the allocation sites of the module in deterministic
// order: globals first, then alloc instructions in function/block order.
func (m *Module) AllocSites() []Site {
	var sites []Site
	for _, g := range m.Globals {
		sites = append(sites, Site{ID: len(sites), Global: g})
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpAlloc {
					sites = append(sites, Site{ID: len(sites), Instr: in})
				}
			}
		}
	}
	return sites
}

// Stats summarizes module size, used by the scalability experiment (Fig. 15).
type Stats struct {
	Funcs    int
	Blocks   int
	Instrs   int
	Pointers int // pointer-typed values (the paper's "#Pointers")
}

// Stats computes module statistics.
func (m *Module) Stats() Stats {
	var s Stats
	s.Funcs = len(m.Funcs)
	for _, f := range m.Funcs {
		s.Blocks += len(f.Blocks)
		for _, v := range f.Params {
			if v.Typ == TPtr {
				s.Pointers++
			}
		}
		for _, b := range f.Blocks {
			s.Instrs += len(b.Instrs)
			for _, in := range b.Instrs {
				if in.Res != nil && in.Res.Typ == TPtr {
					s.Pointers++
				}
			}
		}
	}
	return s
}
