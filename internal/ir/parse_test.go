package ir_test

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/ssa"
)

func TestParseRoundTripPaperPrograms(t *testing.T) {
	for _, m := range []*ir.Module{
		progs.MessageBuffer(), progs.Accelerate(), progs.Fig10(),
		progs.TwoBuffers(), progs.StructFields(),
	} {
		text := m.String()
		back, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", m.Name, err, text)
		}
		if got := back.String(); got != text {
			t.Errorf("%s: round trip differs.\n--- printed ---\n%s\n--- reparsed ---\n%s",
				m.Name, text, got)
		}
		if err := ir.Verify(back); err != nil {
			t.Errorf("%s: reparsed module fails verify: %v", m.Name, err)
		}
		if err := ssa.VerifyModuleSSA(back); err != nil {
			t.Errorf("%s: reparsed module fails SSA verify: %v", m.Name, err)
		}
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `module hand
global tab 16

func f(p ptr, n int) int {
entry:
  %b = alloc heap %n
  %q = ptradd @tab, 2
  store %q, 5
  %c = cmp lt %n, 10
  condbr %c, small, big
small:
  %x = add %n, 1
  br done
big:
  %y = extern.int "strlen"(%p)
  br done
done:
  %z = phi [%x, small], [%y, big]
  ret %z
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ssa.VerifyModuleSSA(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	f := m.Func("f")
	if f == nil || len(f.Blocks) != 4 {
		t.Fatalf("bad function structure")
	}
	// φ incoming from a forward-referenced value must have resolved.
	var phi *ir.Instr
	for _, in := range f.Instrs() {
		if in.Op == ir.OpPhi {
			phi = in
		}
	}
	if phi == nil || len(phi.Args) != 2 || phi.Args[0] == nil {
		t.Fatalf("φ not resolved: %v", phi)
	}
	if phi.Res.Typ != ir.TInt {
		t.Errorf("φ type not inferred: %s", phi.Res.Typ)
	}
	// Global operand.
	if m.Globals[0].Name != "tab" || m.Globals[0].Size != 16 {
		t.Errorf("global not parsed: %+v", m.Globals[0])
	}
}

func TestParseCallsAcrossFunctions(t *testing.T) {
	src := `module calls

func callee(x int) ptr {
entry:
  %b = alloc heap %x
  ret %b
}

func caller() void {
entry:
  %r = call callee(8)
  store %r, 1
  ret
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var call *ir.Instr
	for _, in := range m.Func("caller").Instrs() {
		if in.Op == ir.OpCall {
			call = in
		}
	}
	if call == nil || call.Callee != m.Func("callee") {
		t.Fatalf("call target not resolved")
	}
	if call.Res.Typ != ir.TPtr {
		t.Errorf("call result type = %s, want ptr", call.Res.Typ)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"func f() void {\nentry:\n  ret\n}\n", "module header"},
		{"module m\nbogus line\n", "unexpected"},
		{"module m\nfunc f() void {\n  ret\n}\n", "before any block"},
		{"module m\nfunc f() void {\nentry:\n  %x = frobnicate 1\n}\n", "unknown instruction"},
		{"module m\nfunc f() void {\nentry:\n  %x = add 1\n}\n", "two operands"},
		{"module m\nfunc f() void {\nentry:\n  br nowhere\n}\n", "unknown block"},
		{"module m\nfunc f() void {\nentry:\n  %x = copy %missing\n  ret\n}\n", "unknown value"},
		{"module m\nglobal g\n", "global wants"},
		{"module m\nfunc f() void {\nentry:\n  %c = cmp zz 1, 2\n  ret\n}\n", "bad predicate"},
	}
	for _, c := range cases {
		_, err := ir.Parse(c.src)
		if err == nil {
			t.Errorf("expected error containing %q for:\n%s", c.want, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not contain %q", err, c.want)
		}
	}
}
