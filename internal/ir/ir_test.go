package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildLoop constructs a simple counting loop used by several tests.
func buildLoop(t *testing.T) (*Module, *Func) {
	t.Helper()
	m := NewModule("t")
	f := m.NewFunc("loop", TVoid, Param("n", TInt))
	b := NewBuilder(f)
	entry := b.Block("entry")
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")

	b.SetBlock(entry)
	buf := b.Malloc(f.Params[0], "buf")
	b.Br(head)

	b.SetBlock(head)
	i := b.Phi(TInt, "i")
	c := b.Cmp(PLt, i.Res, f.Params[0], "c")
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	p := b.PtrAdd(buf, i.Res, "p")
	b.Store(p, b.Int(0))
	inext := b.Add(i.Res, b.Int(1), "inext")
	b.Br(head)
	AddIncoming(i, b.Int(0), entry)
	AddIncoming(i, inext, body)

	b.SetBlock(exit)
	b.Ret(nil)
	return m, f
}

func TestBuilderProducesVerifiableIR(t *testing.T) {
	m, _ := buildLoop(t)
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", TVoid)
	b := NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	b.Copy(b.Int(1), "x")
	if err := Verify(m); err == nil {
		t.Fatal("verify should reject unterminated block")
	}
}

func TestVerifyCatchesPhiPredMismatch(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", TVoid)
	b := NewBuilder(f)
	entry := b.Block("entry")
	next := b.Block("next")
	b.SetBlock(entry)
	b.Br(next)
	b.SetBlock(next)
	phi := b.Phi(TInt, "x")
	AddIncoming(phi, b.Int(1), entry)
	AddIncoming(phi, b.Int(2), next) // next is not a predecessor of itself
	b.Ret(nil)
	if err := Verify(m); err == nil {
		t.Fatal("verify should reject φ with non-predecessor incoming block")
	}
}

func TestVerifyCatchesTypeErrors(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", TVoid, Param("p", TPtr))
	b := NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	in := &Instr{Op: OpAdd, Args: []*Value{f.Params[0], b.Int(1)}}
	v := f.NewLocal("bad", TInt)
	v.Def = in
	in.Res = v
	in.Block = entry
	entry.Instrs = append(entry.Instrs, in)
	b.Ret(nil)
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "type") {
		t.Fatalf("verify should reject add of ptr, got %v", err)
	}
}

func TestPredNegateSwapInvolutions(t *testing.T) {
	if err := quick.Check(func(b byte) bool {
		p := Pred(b % 6)
		return p.Negate().Negate() == p && p.Swap().Swap() == p
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Semantic check of Negate and Swap against concrete integers.
	holds := func(p Pred, a, b int64) bool {
		switch p {
		case PEq:
			return a == b
		case PNe:
			return a != b
		case PLt:
			return a < b
		case PLe:
			return a <= b
		case PGt:
			return a > b
		default:
			return a >= b
		}
	}
	if err := quick.Check(func(pb byte, a, b int8) bool {
		p := Pred(pb % 6)
		x, y := int64(a), int64(b)
		return holds(p, x, y) == !holds(p.Negate(), x, y) &&
			holds(p, x, y) == holds(p.Swap(), y, x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstInterning(t *testing.T) {
	m := NewModule("t")
	if m.IntConst(7) != m.IntConst(7) {
		t.Error("equal int consts should be interned")
	}
	if m.Null() != m.Null() {
		t.Error("null should be interned")
	}
	if m.IntConst(0) == m.Null() {
		t.Error("int 0 and null must differ")
	}
}

func TestAllocSitesAndStats(t *testing.T) {
	m, f := buildLoop(t)
	g := m.NewGlobal("table", 64)
	sites := m.AllocSites()
	if len(sites) != 2 {
		t.Fatalf("want 2 sites (global + malloc), got %d", len(sites))
	}
	if sites[0].Global != g || sites[1].Instr == nil {
		t.Errorf("site ordering wrong: %+v", sites)
	}
	if sites[0].String() != "loc0" || sites[1].String() != "loc1" {
		t.Errorf("site names: %s, %s", sites[0], sites[1])
	}
	st := m.Stats()
	if st.Funcs != 1 || st.Blocks != 4 {
		t.Errorf("stats = %+v", st)
	}
	// buf and p are the pointer-typed values.
	if st.Pointers != 2 {
		t.Errorf("pointers = %d, want 2", st.Pointers)
	}
	_ = f
}

func TestValueNamesUnique(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", TVoid)
	b := NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	x1 := b.Copy(b.Int(1), "x")
	x2 := b.Copy(b.Int(2), "x")
	if x1.Name == x2.Name {
		t.Errorf("duplicate names: %s vs %s", x1.Name, x2.Name)
	}
	b.Ret(nil)
}

func TestPrintRendersCoreForms(t *testing.T) {
	m, _ := buildLoop(t)
	s := m.String()
	for _, want := range []string{
		"func loop(n int) void {",
		"%buf = alloc heap %n",
		"%i = phi [0, entry], [%inext, body]",
		"%c = cmp lt %i, %n",
		"condbr %c, body, exit",
		"%p = ptradd %buf, %i",
		"store %p, 0",
		"ret",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("printed module missing %q:\n%s", want, s)
		}
	}
}

func TestBlockPhisAndBody(t *testing.T) {
	_, f := buildLoop(t)
	head := f.Blocks[1]
	if len(head.Phis()) != 1 {
		t.Fatalf("head phis = %d", len(head.Phis()))
	}
	if len(head.Body()) != 2 {
		t.Fatalf("head body = %d", len(head.Body()))
	}
	if head.Term().Op != OpCondBr {
		t.Fatalf("head term = %v", head.Term().Op)
	}
	succs := head.Succs()
	if len(succs) != 2 || succs[0].Name != "body" || succs[1].Name != "exit" {
		t.Fatalf("succs = %v", succs)
	}
}

func TestPredsMap(t *testing.T) {
	_, f := buildLoop(t)
	preds := f.Preds()
	head := f.Blocks[1]
	if len(preds[head]) != 2 {
		t.Fatalf("head preds = %d, want 2", len(preds[head]))
	}
	if len(preds[f.Entry()]) != 0 {
		t.Fatalf("entry preds = %d, want 0", len(preds[f.Entry()]))
	}
}

func TestBuilderPanicsOnTerminatedBlock(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", TVoid)
	b := NewBuilder(f)
	blk := b.Block("entry")
	b.SetBlock(blk)
	b.Ret(nil)
	defer func() {
		if recover() == nil {
			t.Error("appending past a terminator should panic")
		}
	}()
	b.Copy(b.Int(1), "x")
}
