package ir_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestParseMalformedNeverPanics throws hostile inputs at the parser — the
// inputs a network client can now send via the aliasd service — and asserts
// each yields a structured error rather than a panic or an accepted module.
func TestParseMalformedNeverPanics(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"bare module kw", "module\n"},
		{"duplicate module", "module a\nmodule b\n"},
		{"global before module", "global g 4\n"},
		{"global bad arity", "module m\nglobal g\n"},
		{"global bad size", "module m\nglobal g four\n"},
		{"func before module", "func f() void {\nentry:\n  ret\n}\n"},
		{"func no name", "module m\nfunc (p ptr) void {\nentry:\n  ret\n}\n"},
		{"duplicate func", "module m\nfunc f() void {\nentry:\n  ret\n}\nfunc f() void {\nentry:\n  ret\n}\n"},
		{"unterminated func", "module m\nfunc f() void {\nentry:\n  ret\n"},
		{"bad param", "module m\nfunc f(p) void {\nentry:\n  ret\n}\n"},
		{"bad ret type", "module m\nfunc f() float {\nentry:\n  ret\n}\n"},
		{"instr before label", "module m\nfunc f() void {\n  ret\n}\n"},
		{"duplicate block", "module m\nfunc f() void {\nentry:\nentry:\n  ret\n}\n"},
		{"unknown instr", "module m\nfunc f() void {\nentry:\n  launch %x\n}\n"},
		{"unknown operand", "module m\nfunc f() int {\nentry:\n  %x = add %nope, 1\n  ret %x\n}\n"},
		{"unknown global ref", "module m\nfunc f() void {\nentry:\n  store @g, 1\n  ret\n}\n"},
		{"redefined value", "module m\nfunc f() int {\nentry:\n  %x = add 1, 2\n  %x = add 3, 4\n  ret %x\n}\n"},
		{"add arity", "module m\nfunc f() int {\nentry:\n  %x = add 1\n  ret %x\n}\n"},
		{"bad predicate", "module m\nfunc f() void {\nentry:\n  %c = cmp spaceship 1, 2\n  ret\n}\n"},
		{"bad alloc kind", "module m\nfunc f() void {\nentry:\n  %p = alloc tape 8\n  ret\n}\n"},
		{"branch unknown block", "module m\nfunc f() void {\nentry:\n  br nowhere\n}\n"},
		{"phi unknown block", "module m\nfunc f() int {\nentry:\n  %x = phi [1, ghost]\n  ret %x\n}\n"},
		{"call unknown func", "module m\nfunc f() void {\nentry:\n  call g()\n  ret\n}\n"},
		{"malformed call", "module m\nfunc f() void {\nentry:\n  call g(\n  ret\n}\n"},
		{"bad pointer literal", "module m\nfunc f() void {\nentry:\n  store ptr:xyz, 1\n  ret\n}\n"},
		{"bad extern symbol", "module m\nfunc f() void {\nentry:\n  extern.void notquoted()\n  ret\n}\n"},
		{"result on void op", "module m\nfunc f() void {\nentry:\n  %x = br entry\n}\n"},
		{"binary junk", "module m\nfunc \x00\xff(\x01) void {\nentry:\n  ret\n}\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := ir.Parse(c.src)
			if err == nil {
				t.Fatalf("Parse accepted malformed input, module %v", m.Name)
			}
			var pe *ir.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v (%T) is not a *ir.ParseError", err, err)
			}
		})
	}
}

// TestParseErrorLineInfo pins the line attribution of a representative error.
func TestParseErrorLineInfo(t *testing.T) {
	src := "module m\nfunc f() int {\nentry:\n  %x = add %nope, 1\n  ret %x\n}\n"
	_, err := ir.Parse(src)
	var pe *ir.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v (%T)", err, err)
	}
	if pe.Line != 4 {
		t.Fatalf("error %q attributed to line %d, want 4", pe.Msg, pe.Line)
	}
	if !strings.Contains(err.Error(), "line 4:") {
		t.Fatalf("Error() = %q, want a line 4 prefix", err.Error())
	}
}

// TestParseSizeLimit checks the configurable byte cap for untrusted input.
func TestParseSizeLimit(t *testing.T) {
	src := "module m\nfunc f() void {\nentry:\n  ret\n}\n"
	if _, err := ir.ParseWithOptions(src, ir.ParseOptions{MaxBytes: len(src)}); err != nil {
		t.Fatalf("source at exactly the limit rejected: %v", err)
	}
	_, err := ir.ParseWithOptions(src, ir.ParseOptions{MaxBytes: len(src) - 1})
	if err == nil {
		t.Fatal("over-limit source accepted")
	}
	var pe *ir.ParseError
	if !errors.As(err, &pe) || pe.Line != 0 {
		t.Fatalf("size-limit error = %v, want *ParseError with Line 0", err)
	}
	if !strings.Contains(pe.Msg, "limit") {
		t.Fatalf("size-limit message %q does not mention the limit", pe.Msg)
	}
}
