package ir

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the control-flow graph of f in Graphviz dot syntax, one
// record-shaped node per basic block with its instructions. Useful for
// inspecting the e-SSA transformation and the loop structure of generated
// benchmarks:
//
//	go run ./cmd/rbaa -dump dot prog.mc | dot -Tsvg > cfg.svg
func WriteDot(w io.Writer, f *Func) {
	fmt.Fprintf(w, "digraph %q {\n", f.Name)
	fmt.Fprintln(w, "  node [shape=record, fontname=\"monospace\", fontsize=10];")
	for _, b := range f.Blocks {
		var lines []string
		lines = append(lines, b.Name+":")
		for _, in := range b.Instrs {
			lines = append(lines, "  "+dotEscape(in.String()))
		}
		fmt.Fprintf(w, "  %q [label=\"{%s}\"];\n", b.Name, strings.Join(lines, "\\l")+"\\l")
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case OpBr:
			fmt.Fprintf(w, "  %q -> %q;\n", b.Name, t.Targets[0].Name)
		case OpCondBr:
			fmt.Fprintf(w, "  %q -> %q [label=\"T\"];\n", b.Name, t.Targets[0].Name)
			fmt.Fprintf(w, "  %q -> %q [label=\"F\"];\n", b.Name, t.Targets[1].Name)
		}
	}
	fmt.Fprintln(w, "}")
}

func dotEscape(s string) string {
	r := strings.NewReplacer(
		"\\", "\\\\",
		"\"", "\\\"",
		"{", "\\{",
		"}", "\\}",
		"<", "\\<",
		">", "\\>",
		"|", "\\|",
	)
	return r.Replace(s)
}
