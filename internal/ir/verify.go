package ir

import "fmt"

// Verify performs structural well-formedness checks on a module: every block
// is non-empty and terminated, φ-instructions sit at block heads with
// incoming edges matching the CFG predecessors, operand counts and types are
// consistent, and operands belong to the same function (or are constants /
// globals). SSA dominance is checked separately by ssa.VerifySSA, which has
// access to the dominator tree.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

// VerifyFunc checks structural invariants of one function.
func VerifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	seen := map[string]bool{}
	defined := map[*Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	for _, b := range f.Blocks {
		if seen[b.Name] {
			return fmt.Errorf("duplicate block name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Func != f {
			return fmt.Errorf("block %s has wrong owner", b.Name)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.Name)
		}
		if b.Term() == nil {
			return fmt.Errorf("block %s lacks a terminator", b.Name)
		}
		inPhis := true
		for i, in := range b.Instrs {
			if in.Block != b {
				return fmt.Errorf("block %s: instruction %d has wrong block", b.Name, i)
			}
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("block %s: terminator %s not last", b.Name, in)
			}
			if in.Op == OpPhi && !inPhis {
				return fmt.Errorf("block %s: φ %s after non-φ instruction", b.Name, in)
			}
			if in.Op != OpPhi {
				inPhis = false
			}
			if err := checkOperands(in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.Name, in, err)
			}
			if in.Res != nil {
				if defined[in.Res] {
					return fmt.Errorf("block %s: value %s defined twice", b.Name, in.Res)
				}
				defined[in.Res] = true
				if in.Res.Def != in {
					return fmt.Errorf("block %s: %s result back-pointer broken", b.Name, in)
				}
			}
			for _, a := range in.Args {
				if a == nil {
					return fmt.Errorf("block %s: %s has nil operand", b.Name, in)
				}
				if (a.Kind == VInstr || a.Kind == VParam) && a.Func != f {
					return fmt.Errorf("block %s: %s uses foreign value %s", b.Name, in, a)
				}
			}
		}
	}
	// φ incoming edges match CFG predecessors.
	preds := f.Preds()
	for _, b := range f.Blocks {
		ps := preds[b]
		for _, phi := range b.Phis() {
			if len(phi.Args) != len(phi.In) {
				return fmt.Errorf("block %s: φ %s arg/in mismatch", b.Name, phi)
			}
			if len(phi.Args) != len(ps) {
				return fmt.Errorf("block %s: φ %s has %d incoming, block has %d preds",
					b.Name, phi, len(phi.Args), len(ps))
			}
			for _, from := range phi.In {
				if !containsBlock(ps, from) {
					return fmt.Errorf("block %s: φ %s names non-predecessor %s",
						b.Name, phi, from.Name)
				}
			}
		}
	}
	return nil
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

func checkOperands(in *Instr) error {
	argn := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	wantType := func(i int, t Type) error {
		if in.Args[i].Typ != t {
			return fmt.Errorf("operand %d has type %s, want %s", i, in.Args[i].Typ, t)
		}
		return nil
	}
	switch in.Op {
	case OpCopy:
		if err := argn(1); err != nil {
			return err
		}
		if in.Res == nil || in.Res.Typ != in.Args[0].Typ {
			return fmt.Errorf("copy type mismatch")
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpRem:
		if err := argn(2); err != nil {
			return err
		}
		if err := wantType(0, TInt); err != nil {
			return err
		}
		if err := wantType(1, TInt); err != nil {
			return err
		}
		if in.Res == nil || in.Res.Typ != TInt {
			return fmt.Errorf("arithmetic result must be int")
		}
	case OpCmp:
		if err := argn(2); err != nil {
			return err
		}
		if in.Args[0].Typ != in.Args[1].Typ {
			return fmt.Errorf("cmp operand types differ: %s vs %s", in.Args[0].Typ, in.Args[1].Typ)
		}
		if in.Res == nil || in.Res.Typ != TBool {
			return fmt.Errorf("cmp result must be bool")
		}
	case OpPhi:
		if in.Res == nil {
			return fmt.Errorf("φ needs a result")
		}
		for i, a := range in.Args {
			if a.Typ != in.Res.Typ {
				return fmt.Errorf("φ incoming %d type %s, want %s", i, a.Typ, in.Res.Typ)
			}
		}
	case OpPi:
		if err := argn(2); err != nil {
			return err
		}
		if in.Res == nil || in.Res.Typ != in.Args[0].Typ {
			return fmt.Errorf("π result/source type mismatch")
		}
		if in.Args[0].Typ != in.Args[1].Typ {
			return fmt.Errorf("π bound type mismatch")
		}
	case OpAlloc:
		if err := argn(1); err != nil {
			return err
		}
		if err := wantType(0, TInt); err != nil {
			return err
		}
		if in.Res == nil || in.Res.Typ != TPtr {
			return fmt.Errorf("alloc result must be ptr")
		}
	case OpFree:
		if err := argn(1); err != nil {
			return err
		}
		if err := wantType(0, TPtr); err != nil {
			return err
		}
	case OpPtrAdd:
		if err := argn(2); err != nil {
			return err
		}
		if err := wantType(0, TPtr); err != nil {
			return err
		}
		if err := wantType(1, TInt); err != nil {
			return err
		}
		if in.Res == nil || in.Res.Typ != TPtr {
			return fmt.Errorf("ptradd result must be ptr")
		}
	case OpLoad:
		if err := argn(1); err != nil {
			return err
		}
		if err := wantType(0, TPtr); err != nil {
			return err
		}
		if in.Res == nil {
			return fmt.Errorf("load needs a result")
		}
	case OpStore:
		if err := argn(2); err != nil {
			return err
		}
		if err := wantType(0, TPtr); err != nil {
			return err
		}
	case OpCall:
		if in.Callee == nil {
			return fmt.Errorf("call without callee")
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("call arity %d, callee wants %d", len(in.Args), len(in.Callee.Params))
		}
		for i, a := range in.Args {
			if a.Typ != in.Callee.Params[i].Typ {
				return fmt.Errorf("call arg %d type %s, want %s", i, a.Typ, in.Callee.Params[i].Typ)
			}
		}
	case OpExtern:
		if in.Sym == "" {
			return fmt.Errorf("extern without symbol")
		}
	case OpBr:
		if len(in.Targets) != 1 {
			return fmt.Errorf("br needs one target")
		}
	case OpCondBr:
		if err := argn(1); err != nil {
			return err
		}
		if err := wantType(0, TBool); err != nil {
			return err
		}
		if len(in.Targets) != 2 {
			return fmt.Errorf("condbr needs two targets")
		}
	case OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("ret takes at most one operand")
		}
	}
	return nil
}
