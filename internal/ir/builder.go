package ir

// Builder provides a convenient API for constructing IR, used by the MiniC
// frontend, the synthetic benchmark generator, the examples and the tests.
// It appends instructions to a current block and auto-names results.
type Builder struct {
	F *Func
	B *Block
}

// NewBuilder returns a builder positioned at no block of f.
func NewBuilder(f *Func) *Builder { return &Builder{F: f} }

// Block creates a new basic block in the builder's function.
func (bd *Builder) Block(name string) *Block {
	b := &Block{Name: uniqueBlockName(bd.F, name), Func: bd.F}
	bd.F.Blocks = append(bd.F.Blocks, b)
	return b
}

func uniqueBlockName(f *Func, name string) string {
	if name == "" {
		name = "b"
	}
	taken := map[string]bool{}
	for _, b := range f.Blocks {
		taken[b.Name] = true
	}
	if !taken[name] {
		return name
	}
	for i := 1; ; i++ {
		cand := name + "." + itoa(i)
		if !taken[cand] {
			return cand
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// SetBlock moves the insertion point to b.
func (bd *Builder) SetBlock(b *Block) { bd.B = b }

// emit appends in to the current block and returns its result value.
func (bd *Builder) emit(in *Instr) *Value {
	if bd.B == nil {
		panic("ir: builder has no current block")
	}
	if t := bd.B.Term(); t != nil {
		panic("ir: appending to terminated block " + bd.B.Name)
	}
	in.Block = bd.B
	bd.B.Instrs = append(bd.B.Instrs, in)
	return in.Res
}

func (bd *Builder) res(name string, t Type, in *Instr) *Value {
	v := bd.F.newValue(name, t, VInstr)
	v.Def = in
	in.Res = v
	return v
}

// Int returns the interned integer literal c.
func (bd *Builder) Int(c int64) *Value { return bd.F.Mod.IntConst(c) }

// Null returns the null pointer literal.
func (bd *Builder) Null() *Value { return bd.F.Mod.Null() }

// Copy emits res = copy a.
func (bd *Builder) Copy(a *Value, name string) *Value {
	in := &Instr{Op: OpCopy, Args: []*Value{a}}
	bd.res(name, a.Typ, in)
	return bd.emit(in)
}

func (bd *Builder) binop(op Op, a, b *Value, name string) *Value {
	in := &Instr{Op: op, Args: []*Value{a, b}}
	bd.res(name, TInt, in)
	return bd.emit(in)
}

// Add emits integer addition.
func (bd *Builder) Add(a, b *Value, name string) *Value { return bd.binop(OpAdd, a, b, name) }

// Sub emits integer subtraction.
func (bd *Builder) Sub(a, b *Value, name string) *Value { return bd.binop(OpSub, a, b, name) }

// Mul emits integer multiplication.
func (bd *Builder) Mul(a, b *Value, name string) *Value { return bd.binop(OpMul, a, b, name) }

// Div emits integer division.
func (bd *Builder) Div(a, b *Value, name string) *Value { return bd.binop(OpDiv, a, b, name) }

// Rem emits integer remainder.
func (bd *Builder) Rem(a, b *Value, name string) *Value { return bd.binop(OpRem, a, b, name) }

// Cmp emits res = cmp <pred> a, b.
func (bd *Builder) Cmp(p Pred, a, b *Value, name string) *Value {
	in := &Instr{Op: OpCmp, Pred: p, Args: []*Value{a, b}}
	bd.res(name, TBool, in)
	return bd.emit(in)
}

// Phi emits an (initially empty) φ-instruction; complete it with
// AddIncoming before verification.
func (bd *Builder) Phi(t Type, name string) *Instr {
	in := &Instr{Op: OpPhi}
	bd.res(name, t, in)
	bd.emit(in)
	return in
}

// AddIncoming appends an incoming (value, predecessor) pair to a φ.
func AddIncoming(phi *Instr, v *Value, from *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Args = append(phi.Args, v)
	phi.In = append(phi.In, from)
}

// Pi emits res = pi a <pred> b: a copy of a on which "a pred b" is known to
// hold (the e-SSA bound intersection of Fig. 6).
func (bd *Builder) Pi(a *Value, p Pred, bound *Value, name string) *Value {
	in := &Instr{Op: OpPi, Pred: p, Args: []*Value{a, bound}}
	bd.res(name, a.Typ, in)
	return bd.emit(in)
}

// Alloc emits res = alloc <kind> size. Each syntactic Alloc is one
// allocation site of the GR analysis.
func (bd *Builder) Alloc(kind AllocKind, size *Value, name string) *Value {
	in := &Instr{Op: OpAlloc, AKind: kind, Args: []*Value{size}}
	bd.res(name, TPtr, in)
	return bd.emit(in)
}

// Malloc emits a heap allocation.
func (bd *Builder) Malloc(size *Value, name string) *Value {
	return bd.Alloc(AllocHeap, size, name)
}

// Alloca emits a stack allocation of constant size.
func (bd *Builder) Alloca(size int64, name string) *Value {
	return bd.Alloc(AllocStack, bd.Int(size), name)
}

// Free emits res = free p.
func (bd *Builder) Free(p *Value, name string) *Value {
	in := &Instr{Op: OpFree, Args: []*Value{p}}
	bd.res(name, TPtr, in)
	return bd.emit(in)
}

// PtrAdd emits res = ptradd p, i.
func (bd *Builder) PtrAdd(p, i *Value, name string) *Value {
	in := &Instr{Op: OpPtrAdd, Args: []*Value{p, i}}
	bd.res(name, TPtr, in)
	return bd.emit(in)
}

// PtrAddConst shifts p by a constant offset.
func (bd *Builder) PtrAddConst(p *Value, c int64, name string) *Value {
	return bd.PtrAdd(p, bd.Int(c), name)
}

// Load emits res = load.<t> p.
func (bd *Builder) Load(t Type, p *Value, name string) *Value {
	in := &Instr{Op: OpLoad, Args: []*Value{p}}
	bd.res(name, t, in)
	return bd.emit(in)
}

// Store emits store p, v.
func (bd *Builder) Store(p, v *Value) {
	bd.emit(&Instr{Op: OpStore, Args: []*Value{p, v}})
}

// Call emits a direct call. The result is nil for void callees.
func (bd *Builder) Call(callee *Func, name string, args ...*Value) *Value {
	in := &Instr{Op: OpCall, Callee: callee, Args: args}
	if callee.RetType != TVoid {
		bd.res(name, callee.RetType, in)
	}
	return bd.emit(in)
}

// Extern emits a call to an unknown library function ("strlen", "atoi", …).
// Its result joins the symbolic kernel of the range analysis.
func (bd *Builder) Extern(sym string, ret Type, name string, args ...*Value) *Value {
	in := &Instr{Op: OpExtern, Sym: sym, Args: args}
	if ret != TVoid {
		bd.res(name, ret, in)
	}
	return bd.emit(in)
}

// Br emits an unconditional branch.
func (bd *Builder) Br(target *Block) {
	bd.emit(&Instr{Op: OpBr, Targets: []*Block{target}})
}

// CondBr emits a two-way conditional branch.
func (bd *Builder) CondBr(cond *Value, then, els *Block) {
	bd.emit(&Instr{Op: OpCondBr, Args: []*Value{cond}, Targets: []*Block{then, els}})
}

// Ret emits a return; v may be nil for void functions.
func (bd *Builder) Ret(v *Value) {
	in := &Instr{Op: OpRet}
	if v != nil {
		in.Args = []*Value{v}
	}
	bd.emit(in)
}
