package ir

import (
	"fmt"
	"io"
	"strings"
)

// Print writes the textual form of the module to w. The format round-trips
// through Parse.
func Print(w io.Writer, m *Module) {
	fmt.Fprintf(w, "module %s\n", m.Name)
	for _, g := range m.Globals {
		fmt.Fprintf(w, "global %s %d\n", g.Name, g.Size)
	}
	for _, f := range m.Funcs {
		fmt.Fprintln(w)
		PrintFunc(w, f)
	}
}

// String renders the module.
func (m *Module) String() string {
	var b strings.Builder
	Print(&b, m)
	return b.String()
}

// PrintFunc writes the textual form of one function.
func PrintFunc(w io.Writer, f *Func) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %s", p.Name, p.Typ)
	}
	fmt.Fprintf(w, "func %s(%s) %s {\n", f.Name, strings.Join(params, ", "), f.RetType)
	for _, b := range f.Blocks {
		fmt.Fprintf(w, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(w, "  %s\n", in)
		}
	}
	fmt.Fprintln(w, "}")
}

// String renders the function.
func (f *Func) String() string {
	var b strings.Builder
	PrintFunc(&b, f)
	return b.String()
}

// String renders one instruction in the textual syntax.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Res != nil {
		fmt.Fprintf(&b, "%s = ", in.Res)
	}
	switch in.Op {
	case OpCopy:
		fmt.Fprintf(&b, "copy %s", in.Args[0])
	case OpAdd, OpSub, OpMul, OpDiv, OpRem:
		fmt.Fprintf(&b, "%s %s, %s", in.Op, in.Args[0], in.Args[1])
	case OpCmp:
		fmt.Fprintf(&b, "cmp %s %s, %s", in.Pred, in.Args[0], in.Args[1])
	case OpPhi:
		b.WriteString("phi")
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " [%s, %s]", a, in.In[i].Name)
		}
	case OpPi:
		fmt.Fprintf(&b, "pi %s %s %s", in.Args[0], in.Pred, in.Args[1])
	case OpAlloc:
		fmt.Fprintf(&b, "alloc %s %s", in.AKind, in.Args[0])
	case OpFree:
		fmt.Fprintf(&b, "free %s", in.Args[0])
	case OpPtrAdd:
		fmt.Fprintf(&b, "ptradd %s, %s", in.Args[0], in.Args[1])
	case OpLoad:
		fmt.Fprintf(&b, "load.%s %s", in.Res.Typ, in.Args[0])
	case OpStore:
		fmt.Fprintf(&b, "store %s, %s", in.Args[0], in.Args[1])
	case OpCall:
		fmt.Fprintf(&b, "call %s(%s)", in.Callee.Name, joinArgs(in.Args))
	case OpExtern:
		ret := TVoid
		if in.Res != nil {
			ret = in.Res.Typ
		}
		fmt.Fprintf(&b, "extern.%s %q(%s)", ret, in.Sym, joinArgs(in.Args))
	case OpBr:
		fmt.Fprintf(&b, "br %s", in.Targets[0].Name)
	case OpCondBr:
		fmt.Fprintf(&b, "condbr %s, %s, %s", in.Args[0], in.Targets[0].Name, in.Targets[1].Name)
	case OpRet:
		if len(in.Args) > 0 {
			fmt.Fprintf(&b, "ret %s", in.Args[0])
		} else {
			b.WriteString("ret")
		}
	default:
		fmt.Fprintf(&b, "?op%d", in.Op)
	}
	return b.String()
}

func joinArgs(args []*Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
