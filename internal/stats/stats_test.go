package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileInterpolation(t *testing.T) {
	// 1..100: the floor-truncated nearest-rank this replaces returned
	// element 98 (= 99.0) for p99; interpolation lands between ranks.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{0.25, 25.75},
		{0.50, 50.5},
		{0.90, 90.1},
		{0.99, 99.01},
		{1, 100},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(1..100, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Even n: the median interpolates between the two middle elements.
	if got := Percentile([]float64{1, 2, 3, 4}, 0.5); got != 2.5 {
		t.Errorf("median of 1..4 = %v, want 2.5", got)
	}
}

func TestPercentileDegenerate(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty series: %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single sample: %v, want 7", got)
	}
	if got := Percentile([]float64{1, 2}, -0.5); got != 1 {
		t.Errorf("p<0 clamps to min: %v", got)
	}
	if got := Percentile([]float64{1, 2}, 1.5); got != 2 {
		t.Errorf("p>1 clamps to max: %v", got)
	}
}

func TestPercentilesSortsACopy(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := Percentiles(xs, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Percentiles = %v, want [1 2 3]", got)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 3, 8, 2, 7, 7, 4}
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		got := Percentiles(xs, pa, pb)
		return got[0] <= got[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("R = %v, want 1", r)
	}
	neg := []float64{50, 40, 30, 20, 10}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("R = %v, want −1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Error("short series should give 0")
	}
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("zero variance should give 0")
	}
	if Pearson([]float64{1, 2}, []float64{1, 2, 3}) != 0 {
		t.Error("length mismatch should give 0")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h int8) bool {
		xs := []float64{float64(a), float64(b), float64(c), float64(d)}
		ys := []float64{float64(e), float64(f2), float64(g), float64(h)}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonInvariantUnderAffineTransform(t *testing.T) {
	xs := []float64{1, 3, 2, 8, 5}
	ys := []float64{2, 6, 3, 11, 9}
	r1 := Pearson(xs, ys)
	scaled := make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = 3*x + 7
	}
	r2 := Pearson(scaled, ys)
	if math.Abs(r1-r2) > 1e-12 {
		t.Errorf("Pearson not invariant under affine transform: %v vs %v", r1, r2)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-5) > 1e-12 {
		t.Errorf("fit = %vx + %v, want 2x + 5", slope, intercept)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Program", "#Queries", "%rbaa")
	tb.Row("cfrac", 89255, 16.65)
	tb.Row("x", 1, 0.5)
	var b strings.Builder
	tb.Write(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Program") || !strings.Contains(lines[0], "#Queries") {
		t.Errorf("header missing: %q", lines[0])
	}
	// Numeric columns right-aligned: the small count sits at the right edge
	// of its column.
	if !strings.Contains(lines[3], "    1") {
		t.Errorf("numeric column not right-aligned: %q", lines[3])
	}
	if !strings.Contains(lines[2], "16.65") {
		t.Errorf("float not rendered with 2 decimals: %q", lines[2])
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 3) != "33.33" {
		t.Errorf("Pct(1,3) = %s", Pct(1, 3))
	}
	if Pct(5, 0) != "0.00" {
		t.Errorf("Pct by zero = %s", Pct(5, 0))
	}
}
