// Package stats provides the small statistics and table-rendering helpers
// used by the evaluation harness: the Pearson linear correlation coefficient
// with which the paper argues linearity (Fig. 15: R(time, instructions) =
// 0.982), latency percentiles for the service load reports, and fixed-width
// text tables for the figure reproductions.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted series using
// linear interpolation between closest ranks: the rank p·(n−1) is split
// into its floor and ceil neighbors and the value interpolated between
// them. Floor-truncated nearest-rank — the policy this replaces — clamps to
// the lower neighbor and systematically under-reports upper-tail
// percentiles (100 samples: p99 returned element 98 exactly, discarding the
// tail's contribution). Degenerate inputs: an empty series yields 0, a
// single sample itself.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(rank)
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Percentiles sorts a copy of xs once and returns the requested quantiles
// in order — the one-call shape latency reports want.
func Percentiles(xs []float64, ps ...float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = Percentile(sorted, p)
	}
	return out
}

// Pearson computes the linear correlation coefficient of two equal-length
// series. It reports 0 for degenerate inputs (length < 2 or zero variance).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// LinearFit returns the least-squares slope and intercept of y = a·x + b.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx float64
	for i := 0; i < n; i++ {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
	}
	if vx == 0 {
		return 0, my
	}
	slope = cov / vx
	return slope, my - slope*mx
}

// Table renders fixed-width text tables.
type Table struct {
	header []string
	rows   [][]string
	align  []bool // true = right-align
}

// NewTable creates a table with the given column headers. Columns whose
// header starts with '#' or '%' are right-aligned, as are numeric-looking
// cells.
func NewTable(header ...string) *Table {
	t := &Table{header: header, align: make([]bool, len(header))}
	for i, h := range header {
		t.align[i] = strings.HasPrefix(h, "#") || strings.HasPrefix(h, "%") ||
			strings.HasSuffix(h, ")")
	}
	return t
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(t.align) && t.align[i] {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", 100*float64(num)/float64(den))
}
