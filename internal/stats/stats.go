// Package stats provides the small statistics and table-rendering helpers
// used by the evaluation harness: the Pearson linear correlation coefficient
// with which the paper argues linearity (Fig. 15: R(time, instructions) =
// 0.982), and fixed-width text tables for the figure reproductions.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Pearson computes the linear correlation coefficient of two equal-length
// series. It reports 0 for degenerate inputs (length < 2 or zero variance).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// LinearFit returns the least-squares slope and intercept of y = a·x + b.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx float64
	for i := 0; i < n; i++ {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
	}
	if vx == 0 {
		return 0, my
	}
	slope = cov / vx
	return slope, my - slope*mx
}

// Table renders fixed-width text tables.
type Table struct {
	header []string
	rows   [][]string
	align  []bool // true = right-align
}

// NewTable creates a table with the given column headers. Columns whose
// header starts with '#' or '%' are right-aligned, as are numeric-looking
// cells.
func NewTable(header ...string) *Table {
	t := &Table{header: header, align: make([]bool, len(header))}
	for i, h := range header {
		t.align[i] = strings.HasPrefix(h, "#") || strings.HasPrefix(h, "%") ||
			strings.HasSuffix(h, ")")
	}
	return t
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(t.align) && t.align[i] {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", 100*float64(num)/float64(den))
}
