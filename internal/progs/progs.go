// Package progs builds the example programs of the paper as IR modules.
// They serve as shared fixtures for unit tests, golden tests against the
// paper's published analysis results (Example 3, Fig. 10, Fig. 12), the
// runnable examples, and the benchmark harness.
package progs

import (
	"repro/internal/ir"
	"repro/internal/ssa"
)

// MessageBuffer builds the program of Fig. 1 / Fig. 7: main allocates two
// buffers and calls prepare, whose first loop fills [p, p+N) and whose
// second loop fills [p+N, p+N+strlen(m)). The module is in e-SSA form.
//
// The interesting queries: the store pointer of loop 1 (i2, after π) versus
// the store pointer of loop 2 (i6, after π) must be no-alias under the
// global test.
func MessageBuffer() *ir.Module {
	m := ir.NewModule("messagebuffer")

	prepare := m.NewFunc("prepare", ir.TVoid,
		ir.Param("p", ir.TPtr), ir.Param("N", ir.TInt), ir.Param("m", ir.TPtr))
	{
		b := ir.NewBuilder(prepare)
		entry := b.Block("entry")
		loop1 := b.Block("loop1")
		body1 := b.Block("body1")
		mid := b.Block("mid")
		loop2 := b.Block("loop2")
		body2 := b.Block("body2")
		exit := b.Block("exit")

		b.SetBlock(entry)
		p := prepare.Params[0]
		n := prepare.Params[1]
		mArg := prepare.Params[2]
		i0 := b.Copy(p, "i0")
		e := b.PtrAdd(p, n, "e")
		b.Br(loop1)

		b.SetBlock(loop1)
		i1phi := b.Phi(ir.TPtr, "i1")
		c1 := b.Cmp(ir.PLt, i1phi.Res, e, "c1")
		b.CondBr(c1, body1, mid)

		b.SetBlock(body1)
		b.Store(i1phi.Res, b.Int(0))
		t0 := b.PtrAddConst(i1phi.Res, 1, "t0")
		b.Store(t0, b.Int(255))
		i3 := b.PtrAddConst(i1phi.Res, 2, "i3")
		b.Br(loop1)
		ir.AddIncoming(i1phi, i0, entry)
		ir.AddIncoming(i1phi, i3, body1)

		b.SetBlock(mid)
		sl := b.Extern("strlen", ir.TInt, "len", mArg)
		f := b.PtrAdd(e, sl, "f")
		b.Br(loop2)

		b.SetBlock(loop2)
		i5phi := b.Phi(ir.TPtr, "i5")
		m1phi := b.Phi(ir.TPtr, "m1")
		c2 := b.Cmp(ir.PLt, i5phi.Res, f, "c2")
		b.CondBr(c2, body2, exit)

		b.SetBlock(body2)
		ch := b.Load(ir.TInt, m1phi.Res, "ch")
		b.Store(i5phi.Res, ch)
		m2 := b.PtrAddConst(m1phi.Res, 1, "m2")
		i7 := b.PtrAddConst(i5phi.Res, 1, "i7")
		b.Br(loop2)
		ir.AddIncoming(i5phi, i1phi.Res, mid)
		ir.AddIncoming(i5phi, i7, body2)
		ir.AddIncoming(m1phi, mArg, mid)
		ir.AddIncoming(m1phi, m2, body2)

		b.SetBlock(exit)
		b.Ret(nil)
	}

	mainFn := m.NewFunc("main", ir.TInt,
		ir.Param("argc", ir.TInt), ir.Param("argv", ir.TPtr))
	{
		b := ir.NewBuilder(mainFn)
		entry := b.Block("entry")
		b.SetBlock(entry)
		argv1 := b.PtrAddConst(mainFn.Params[1], 1, "argv1")
		arg1 := b.Load(ir.TPtr, argv1, "arg1")
		z := b.Extern("atoi", ir.TInt, "Z", arg1)
		buf := b.Malloc(z, "b")
		argv2 := b.PtrAddConst(mainFn.Params[1], 2, "argv2")
		arg2 := b.Load(ir.TPtr, argv2, "arg2")
		sl := b.Extern("strlen", ir.TInt, "sl", arg2)
		s := b.Malloc(sl, "s")
		b.Extern("strcpy", ir.TVoid, "", s, arg2)
		b.Call(m.Func("prepare"), "", buf, z, s)
		b.Ret(b.Int(0))
	}

	for _, f := range m.Funcs {
		ssa.InsertPi(f)
	}
	return m
}

// Accelerate builds the program of Fig. 3: a loop writing p[i] and p[i+1]
// with stride 2. The global test cannot separate the two stores ([0,N+1] vs
// [1,N+2] overlap); the local test and SCEV can.
func Accelerate() *ir.Module {
	m := ir.NewModule("accelerate")
	f := m.NewFunc("accelerate", ir.TVoid,
		ir.Param("p", ir.TPtr), ir.Param("X", ir.TInt), ir.Param("Y", ir.TInt),
		ir.Param("N", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	loop := b.Block("loop")
	body := b.Block("body")
	exit := b.Block("exit")

	b.SetBlock(entry)
	p, x, y, n := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
	b.Br(loop)

	b.SetBlock(loop)
	iphi := b.Phi(ir.TInt, "i")
	c := b.Cmp(ir.PLt, iphi.Res, n, "c")
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	tmp0 := b.PtrAdd(p, iphi.Res, "tmp0")
	v0 := b.Load(ir.TInt, tmp0, "v0")
	s0 := b.Add(v0, x, "s0")
	b.Store(tmp0, s0)
	i1 := b.Add(iphi.Res, b.Int(1), "i1")
	tmp1 := b.PtrAdd(p, i1, "tmp1")
	v1 := b.Load(ir.TInt, tmp1, "v1")
	s1 := b.Add(v1, y, "s1")
	b.Store(tmp1, s1)
	i2 := b.Add(iphi.Res, b.Int(2), "i2")
	b.Br(loop)
	ir.AddIncoming(iphi, b.Int(0), entry)
	ir.AddIncoming(iphi, i2, body)

	b.SetBlock(exit)
	b.Ret(nil)

	ssa.InsertPi(f)
	return m
}

// Fig10 builds the diamond of Fig. 10: a3 = φ(a1, a2) with a4 = a3+1 and
// a5 = a3+2. The global test cannot separate a4 from a5 (ranges [1,2] and
// [2,3] overlap at loc1); the local test can, because φ mints a fresh
// location.
func Fig10() *ir.Module {
	m := ir.NewModule("fig10")
	f := m.NewFunc("diamond", ir.TVoid, ir.Param("c", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	left := b.Block("left")
	right := b.Block("right")
	join := b.Block("join")

	b.SetBlock(entry)
	a1 := b.Malloc(b.Int(2), "a1")
	cond := b.Cmp(ir.PNe, f.Params[0], b.Int(0), "cond")
	b.CondBr(cond, left, right)

	b.SetBlock(left)
	a2 := b.PtrAddConst(a1, 1, "a2")
	b.Br(join)

	b.SetBlock(right)
	b.Br(join)

	b.SetBlock(join)
	a3 := b.Phi(ir.TPtr, "a3")
	ir.AddIncoming(a3, a2, left)
	ir.AddIncoming(a3, a1, right)
	a4 := b.PtrAddConst(a3.Res, 1, "a4")
	a5 := b.PtrAddConst(a3.Res, 2, "a5")
	b.Store(a4, b.Int(1))
	b.Store(a5, b.Int(2))
	b.Ret(nil)

	ssa.InsertPi(f)
	return m
}

// TwoBuffers is a minimal two-malloc program: stores into distinct heap
// objects, trivially no-alias for both basicaa and RBAA.
func TwoBuffers() *ir.Module {
	m := ir.NewModule("twobuffers")
	f := m.NewFunc("fill", ir.TVoid, ir.Param("n", ir.TInt))
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	p := b.Malloc(f.Params[0], "p")
	q := b.Malloc(f.Params[0], "q")
	b.Store(p, b.Int(1))
	b.Store(q, b.Int(2))
	b.Ret(nil)
	ssa.InsertPi(f)
	return m
}

// StructFields models the struct-field idiom: a single allocation accessed
// at constant offsets 0, 1 and 2 (as LLVM sees s.a, s.b, s.c after lowering).
// Both basicaa and the global range test disambiguate the fields.
func StructFields() *ir.Module {
	m := ir.NewModule("structfields")
	f := m.NewFunc("init", ir.TVoid)
	b := ir.NewBuilder(f)
	entry := b.Block("entry")
	b.SetBlock(entry)
	s := b.Malloc(b.Int(3), "s")
	fa := b.PtrAddConst(s, 0, "fa")
	fb := b.PtrAddConst(s, 1, "fb")
	fc := b.PtrAddConst(s, 2, "fc")
	b.Store(fa, b.Int(10))
	b.Store(fb, b.Int(20))
	b.Store(fc, b.Int(30))
	b.Ret(nil)
	ssa.InsertPi(f)
	return m
}
