package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

func mustEncode(t *testing.T, name, format string, source []byte) []byte {
	t.Helper()
	b, err := EncodeRecord(name, format, source)
	if err != nil {
		t.Fatalf("EncodeRecord(%q): %v", name, err)
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct {
		name, format string
		source       []byte
	}{
		{"fig1", "minic", []byte("int main() { return 0; }")},
		{"", "", nil},
		{"mod/with spaces & unicode ☃", "ir", []byte{0, 1, 2, 0xff, 0xfe}},
		{strings.Repeat("n", 65535), "minic", bytes.Repeat([]byte{7}, 4096)},
	}
	for _, c := range cases {
		enc := mustEncode(t, c.name, c.format, c.source)
		rec, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("DecodeRecord(%q): %v", c.name, err)
		}
		if rec.Name != c.name || rec.Format != c.format || !bytes.Equal(rec.Source, c.source) {
			t.Errorf("round trip mismatch for %q: got (%q, %q, %d bytes)",
				c.name, rec.Name, rec.Format, len(rec.Source))
		}
		if want := sha256.Sum256(c.source); rec.Hash != want {
			t.Errorf("content hash mismatch for %q", c.name)
		}
	}
}

func TestEncodeRecordLimits(t *testing.T) {
	if _, err := EncodeRecord(strings.Repeat("x", 65536), "ir", nil); err == nil {
		t.Error("oversized name accepted")
	}
	if _, err := EncodeRecord("m", strings.Repeat("x", 65536), nil); err == nil {
		t.Error("oversized format accepted")
	}
	if _, err := EncodeRecord("m", "ir", make([]byte, MaxRecordBytes)); err == nil {
		t.Error("oversized source accepted")
	}
}

// TestDecodeRecordTruncation feeds every prefix of a valid record to the
// decoder: a torn write (partial tail) must always be an error, never a
// short-but-plausible parse.
func TestDecodeRecordTruncation(t *testing.T) {
	enc := mustEncode(t, "fig1", "minic", []byte("int f(int *p) { return *p; }"))
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeRecord(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(enc))
		}
	}
	if _, err := DecodeRecord(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing garbage byte decoded without error")
	}
}

// TestDecodeRecordBitFlips flips every bit of a valid record one at a time.
// Every single-bit flip must be rejected: the magic, length, CRC, and inner
// content hash between them cover the whole buffer.
func TestDecodeRecordBitFlips(t *testing.T) {
	enc := mustEncode(t, "m", "ir", []byte("func f(p ptr) ptr { ret p }"))
	flipped := make([]byte, len(enc))
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			copy(flipped, enc)
			flipped[i] ^= 1 << bit
			if _, err := DecodeRecord(flipped); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded without error", i, bit)
			}
		}
	}
}

// TestDecodeRecordCraftedCorruption covers corruption the random flips
// can't reach deterministically: internal length fields pointing outside
// the payload, and payload-length fields rewritten with a fixed-up CRC.
func TestDecodeRecordCraftedCorruption(t *testing.T) {
	enc := mustEncode(t, "mod", "minic", []byte("source text"))

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), enc...)
		mutate(b)
		return b
	}
	fixCRC := func(b []byte) {
		payloadLen := int(binary.BigEndian.Uint32(b[4:8]))
		if headerLen+payloadLen+trailerLen == len(b) {
			crc := crc32ChecksumIEEE(b[headerLen : headerLen+payloadLen])
			binary.BigEndian.PutUint32(b[headerLen+payloadLen:], crc)
		}
	}

	cases := []struct {
		desc string
		b    []byte
	}{
		{"zeroed magic", corrupt(func(b []byte) { copy(b, "\x00\x00\x00\x00") })},
		{"huge payload length", corrupt(func(b []byte) {
			binary.BigEndian.PutUint32(b[4:8], MaxRecordBytes)
		})},
		{"name length past payload, CRC fixed", corrupt(func(b []byte) {
			binary.BigEndian.PutUint16(b[headerLen:], 0xffff)
			fixCRC(b)
		})},
		{"format length past payload, CRC fixed", corrupt(func(b []byte) {
			nameLen := int(binary.BigEndian.Uint16(b[headerLen:]))
			binary.BigEndian.PutUint16(b[headerLen+2+nameLen:], 0xffff)
			fixCRC(b)
		})},
		{"source byte changed, CRC fixed (content hash must catch)", corrupt(func(b []byte) {
			b[len(b)-trailerLen-1] ^= 0xff
			fixCRC(b)
		})},
	}
	for _, c := range cases {
		if _, err := DecodeRecord(c.b); err == nil {
			t.Errorf("%s: decoded without error", c.desc)
		}
	}
}

// crc32ChecksumIEEE mirrors the production checksum for test-side fix-ups.
func crc32ChecksumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}

func FuzzDecodeRecord(f *testing.F) {
	seed := [][]byte{
		mustEncodeFuzz(f, "fig1", "minic", []byte("int main() { return 0; }")),
		mustEncodeFuzz(f, "", "", nil),
		mustEncodeFuzz(f, "m", "ir", []byte("func f(p ptr) ptr { ret p }")),
		[]byte("ALS1"),
		[]byte("ALS1\x00\x00\x00\x24"),
		{},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeRecord(b)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the identical bytes:
		// decode is the inverse of encode, with no second representation.
		enc, err := EncodeRecord(rec.Name, rec.Format, rec.Source)
		if err != nil {
			t.Fatalf("decoded record fails to re-encode: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode/encode not byte-identical (%d vs %d bytes)", len(enc), len(b))
		}
		if want := sha256.Sum256(rec.Source); rec.Hash != want {
			t.Fatal("decoded record carries wrong content hash")
		}
	})
}

func mustEncodeFuzz(f *testing.F, name, format string, source []byte) []byte {
	f.Helper()
	b, err := EncodeRecord(name, format, source)
	if err != nil {
		f.Fatal(err)
	}
	return b
}
