package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Write-protocol step names, in the order one Put emits them. The chaos
// injector's crash-after-write=N counts these steps across the process
// lifetime and hard-exits after the Nth — the crash-recovery CI job proves
// a kill at any of them never corrupts the store.
const (
	StepRecordTemp     = "record-temp"     // record temp file written + fsynced
	StepRecordRename   = "record-rename"   // record renamed into records/
	StepManifestTemp   = "manifest-temp"   // manifest temp file written + fsynced
	StepManifestRename = "manifest-rename" // manifest renamed into place
)

const (
	manifestName   = "MANIFEST"
	manifestHeader = "aliasd-store v1"
	recordsDir     = "records"
	corruptDir     = "corrupt"
	recordExt      = ".rec"
	tmpExt         = ".tmp"
)

// op is one manifest log line: an add binding a module name to a record
// file, or a del tombstoning the name. Replaying the log in order yields
// the live set; deletes are kept as tombstone lines (compacted away only
// when the log grows well past the live set) so the on-disk history reads
// like what happened.
type op struct {
	del  bool
	name string
	file string // record file base name ("" for del)
}

// entry is one live module in the store.
type entry struct {
	file string
	size int64 // on-disk record size in bytes
}

// Stats is a point-in-time snapshot of the store's counters, the source of
// the aliasd_store_* metric families.
type Stats struct {
	Records     int   // live (non-tombstoned) records
	Bytes       int64 // summed on-disk size of live records
	Puts        int64 // successful Put calls over the store's lifetime
	Deletes     int64 // successful Delete calls
	Quarantined int64 // records/manifests moved to corrupt/
}

// Store is the crash-safe module store. All methods are safe for concurrent
// use; every mutation is durable (fsynced and atomically renamed) before it
// returns.
type Store struct {
	dir string

	// WriteHook, when non-nil, runs after each completed physical write
	// step of a mutation (see the Step* constants). It is the chaos seam:
	// the crash-after-write injector hard-exits from inside it. Set it
	// before the store is shared across goroutines.
	WriteHook func(step string)

	mu   sync.Mutex
	live map[string]entry
	ops  []op

	puts        atomic.Int64
	deletes     atomic.Int64
	quarantined atomic.Int64
}

// Open loads (or initializes) the store at dir: directories are created,
// stray temp files from interrupted writes are swept, the manifest is read
// and CRC-checked, and record files no manifest entry references are
// removed (they are uploads that crashed before their manifest rename —
// never acknowledged, so never owed). A corrupt manifest is quarantined and
// rebuilt from the records that individually decode, so a damaged store
// degrades to serving its intact records instead of refusing to start.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, recordsDir), filepath.Join(dir, corruptDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, live: map[string]entry{}}
	s.sweepTemps()
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	s.sweepOrphans()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// hook fires the write hook for one completed step.
func (s *Store) hook(step string) {
	if s.WriteHook != nil {
		s.WriteHook(step)
	}
}

// sweepTemps removes *.tmp debris from interrupted writes.
func (s *Store) sweepTemps() {
	for _, d := range []string{s.dir, filepath.Join(s.dir, recordsDir)} {
		ents, err := os.ReadDir(d)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), tmpExt) {
				os.Remove(filepath.Join(d, e.Name()))
			}
		}
	}
}

// sweepOrphans removes record files the manifest does not reference —
// uploads that crashed after the record rename but before the manifest
// rename. Such an upload was never acknowledged to the client.
func (s *Store) sweepOrphans() {
	referenced := map[string]bool{}
	s.mu.Lock()
	for _, e := range s.live {
		referenced[e.file] = true
	}
	s.mu.Unlock()
	ents, err := os.ReadDir(filepath.Join(s.dir, recordsDir))
	if err != nil {
		return
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), recordExt) && !referenced[e.Name()] {
			os.Remove(filepath.Join(s.dir, recordsDir, e.Name()))
		}
	}
}

// quarantine moves path into corrupt/, uniquified against collisions, and
// bumps the counter. Failures degrade to plain removal: a record that
// failed its checksum must never be picked up again.
func (s *Store) quarantine(path string) {
	base := filepath.Base(path)
	dst := filepath.Join(s.dir, corruptDir, base)
	for n := 1; ; n++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, corruptDir, base+"."+strconv.Itoa(n))
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.quarantined.Add(1)
}

// ---- Manifest ----

// renderManifestLocked serializes the op log with its trailing CRC line.
func (s *Store) renderManifestLocked() []byte {
	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	for _, o := range s.ops {
		if o.del {
			fmt.Fprintf(&b, "del - %s\n", url.PathEscape(o.name))
		} else {
			fmt.Fprintf(&b, "add %s %s\n", o.file, url.PathEscape(o.name))
		}
	}
	body := b.String()
	return []byte(fmt.Sprintf("%scrc %08x\n", body, crc32.ChecksumIEEE([]byte(body))))
}

// parseManifest replays a manifest body into an op log, validating the
// header and the trailing CRC line.
func parseManifest(b []byte) ([]op, error) {
	text := string(b)
	idx := strings.LastIndex(text, "crc ")
	if idx < 0 || !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("store: manifest has no CRC trailer")
	}
	body, trailer := text[:idx], strings.TrimSpace(text[idx+len("crc "):])
	want, err := strconv.ParseUint(trailer, 16, 32)
	if err != nil {
		return nil, fmt.Errorf("store: bad manifest CRC line %q", trailer)
	}
	if got := crc32.ChecksumIEEE([]byte(body)); got != uint32(want) {
		return nil, fmt.Errorf("store: manifest CRC mismatch (got %08x, want %08x)", got, want)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("store: bad manifest header")
	}
	var ops []op
	for _, line := range lines[1:] {
		verb, rest, _ := strings.Cut(line, " ")
		file, escName, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, fmt.Errorf("store: bad manifest line %q", line)
		}
		name, err := url.PathUnescape(escName)
		if err != nil {
			return nil, fmt.Errorf("store: bad manifest name %q: %v", escName, err)
		}
		switch verb {
		case "add":
			ops = append(ops, op{name: name, file: file})
		case "del":
			ops = append(ops, op{del: true, name: name})
		default:
			return nil, fmt.Errorf("store: bad manifest verb %q", verb)
		}
	}
	return ops, nil
}

// loadManifest reads and replays the manifest. A missing manifest is an
// empty store; a corrupt one is quarantined and rebuilt from the records
// that individually pass their own checks (tombstones are lost in that
// worst case — stale-but-valid data can reappear, a wrong answer cannot).
func (s *Store) loadManifest() error {
	path := filepath.Join(s.dir, manifestName)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading manifest: %w", err)
	}
	ops, perr := parseManifest(b)
	if perr != nil {
		s.quarantine(path)
		return s.rebuildManifest()
	}
	s.mu.Lock()
	s.ops = ops
	for _, o := range ops {
		if o.del {
			delete(s.live, o.name)
		} else {
			e := entry{file: o.file}
			if fi, err := os.Stat(filepath.Join(s.dir, recordsDir, o.file)); err == nil {
				e.size = fi.Size()
			}
			s.live[o.name] = e
		}
	}
	s.mu.Unlock()
	return nil
}

// rebuildManifest reconstructs the manifest by decoding every record in
// records/; records that fail their checks are quarantined.
func (s *Store) rebuildManifest() error {
	dir := filepath.Join(s.dir, recordsDir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops = nil
	s.live = map[string]entry{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), recordExt) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rec, err := DecodeRecord(b)
		if err != nil {
			s.mu.Unlock()
			s.quarantine(path)
			s.mu.Lock()
			continue
		}
		s.ops = append(s.ops, op{name: rec.Name, file: e.Name()})
		s.live[rec.Name] = entry{file: e.Name(), size: int64(len(b))}
	}
	sort.Slice(s.ops, func(i, j int) bool { return s.ops[i].name < s.ops[j].name })
	return s.writeManifestLocked()
}

// compactThreshold: rewrite the log as pure adds once tombstones and
// superseded entries dominate it.
const compactThreshold = 4

// writeManifestLocked durably replaces the manifest: compact if bloated,
// temp file + fsync, atomic rename, directory fsync. Caller holds s.mu.
func (s *Store) writeManifestLocked() error {
	if len(s.ops) > compactThreshold*(len(s.live)+1) {
		compacted := make([]op, 0, len(s.live))
		for name, e := range s.live {
			compacted = append(compacted, op{name: name, file: e.file})
		}
		sort.Slice(compacted, func(i, j int) bool { return compacted[i].name < compacted[j].name })
		s.ops = compacted
	}
	data := s.renderManifestLocked()
	tmp := filepath.Join(s.dir, manifestName+tmpExt)
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	s.hook(StepManifestTemp)
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("store: publishing manifest: %w", err)
	}
	syncDir(s.dir)
	s.hook(StepManifestRename)
	return nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ---- Mutations ----

// Put durably persists one module upload. The record lands first (temp,
// fsync, rename), the manifest entry second, so a crash anywhere in between
// leaves at worst an orphan record that Open sweeps. Re-putting an
// identical (name, format, source) is a no-op; re-putting a name with new
// content supersedes the old record.
func (s *Store) Put(name, format string, source []byte) error {
	data, err := EncodeRecord(name, format, source)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	file := hex.EncodeToString(sum[:8]) + recordExt

	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.live[name]
	if had && prev.file == file {
		return nil // identical content already durable
	}
	recPath := filepath.Join(s.dir, recordsDir, file)
	tmp := recPath + tmpExt
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("store: writing record: %w", err)
	}
	s.hook(StepRecordTemp)
	if err := os.Rename(tmp, recPath); err != nil {
		return fmt.Errorf("store: publishing record: %w", err)
	}
	syncDir(filepath.Join(s.dir, recordsDir))
	s.hook(StepRecordRename)

	s.ops = append(s.ops, op{name: name, file: file})
	s.live[name] = entry{file: file, size: int64(len(data))}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	if had {
		// Superseded record: unlink once nothing references it. Crash before
		// this point leaves an orphan for Open's sweep.
		s.removeUnreferencedLocked(prev.file)
	}
	s.puts.Add(1)
	return nil
}

// Delete tombstones name in the manifest, then unlinks its record. Reports
// whether the name was present.
func (s *Store) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live[name]
	if !ok {
		return false, nil
	}
	s.ops = append(s.ops, op{del: true, name: name})
	delete(s.live, name)
	if err := s.writeManifestLocked(); err != nil {
		// Roll the in-memory state back: the durable manifest still lists
		// the record, so the store must keep serving it.
		s.ops = s.ops[:len(s.ops)-1]
		s.live[name] = e
		return false, err
	}
	s.removeUnreferencedLocked(e.file)
	s.deletes.Add(1)
	return true, nil
}

// removeUnreferencedLocked unlinks a record file unless a live entry still
// uses it. Caller holds s.mu.
func (s *Store) removeUnreferencedLocked(file string) {
	for _, e := range s.live {
		if e.file == file {
			return
		}
	}
	os.Remove(filepath.Join(s.dir, recordsDir, file))
}

// Replay decodes every live record in name order and hands it to fn —
// recovery's driving loop. A record that fails to read or decode is
// quarantined to corrupt/, tombstoned out of the manifest, counted, and
// skipped; fn's error aborts the replay (the caller is giving up, not the
// store). Returns how many records were successfully replayed.
func (s *Store) Replay(fn func(Record) error) (int, error) {
	s.mu.Lock()
	names := make([]string, 0, len(s.live))
	for name := range s.live {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)

	replayed := 0
	for _, name := range names {
		s.mu.Lock()
		e, ok := s.live[name]
		s.mu.Unlock()
		if !ok {
			continue
		}
		path := filepath.Join(s.dir, recordsDir, e.file)
		b, err := os.ReadFile(path)
		var rec Record
		if err == nil {
			rec, err = DecodeRecord(b)
		}
		if err == nil && rec.Name != name {
			err = fmt.Errorf("store: record %s holds module %q, manifest says %q", e.file, rec.Name, name)
		}
		if err != nil {
			s.quarantine(path)
			s.mu.Lock()
			delete(s.live, name)
			s.ops = append(s.ops, op{del: true, name: name})
			s.writeManifestLocked()
			s.mu.Unlock()
			continue
		}
		if err := fn(rec); err != nil {
			return replayed, err
		}
		replayed++
	}
	return replayed, nil
}

// Flush durably rewrites the manifest — the drain path's final barrier.
// Every mutation is already durable on return, so this is cheap insurance
// against nothing in particular, not a required checkpoint.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeManifestLocked()
}

// Len reports the live record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// SizeBytes reports the summed on-disk size of live records — the figure
// fed into the memory budget's accounted model (recovery materializes
// every live record back into RAM, so store growth is deferred memory).
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, e := range s.live {
		n += e.size
	}
	return n
}

// Quarantined reports how many corrupt records/manifests were quarantined.
func (s *Store) Quarantined() int64 { return s.quarantined.Load() }

// Snapshot returns the current counters.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	records := len(s.live)
	var bytes int64
	for _, e := range s.live {
		bytes += e.size
	}
	s.mu.Unlock()
	return Stats{
		Records:     records,
		Bytes:       bytes,
		Puts:        s.puts.Load(),
		Deletes:     s.deletes.Load(),
		Quarantined: s.quarantined.Load(),
	}
}
