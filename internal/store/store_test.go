package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func liveNames(t *testing.T, s *Store) []string {
	t.Helper()
	var names []string
	if _, err := s.Replay(func(r Record) error {
		names = append(names, r.Name)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	sort.Strings(names)
	return names
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Put("a", "minic", []byte("int a;")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "ir", []byte("func f(p ptr) ptr { ret p }")); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Delete("a"); err != nil || !ok {
		t.Fatalf("Delete(a) = %v, %v", ok, err)
	}
	if ok, _ := s.Delete("nope"); ok {
		t.Fatal("Delete of absent name reported true")
	}

	// Fresh open must replay exactly {b} — the tombstone holds.
	s2 := openT(t, dir)
	if got := liveNames(t, s2); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("after reopen live = %v, want [b]", got)
	}
	var src []byte
	s2.Replay(func(r Record) error { src = r.Source; return nil })
	if !bytes.Equal(src, []byte("func f(p ptr) ptr { ret p }")) {
		t.Fatal("replayed source differs from what was put")
	}
	st := s2.Snapshot()
	if st.Records != 1 || st.Quarantined != 0 || st.Bytes == 0 {
		t.Fatalf("Snapshot = %+v", st)
	}
}

func TestStorePutIdempotentAndSupersede(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.Put("m", "minic", []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after identical re-puts", s.Len())
	}
	if err := s.Put("m", "minic", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	recs, _ := os.ReadDir(filepath.Join(dir, recordsDir))
	if len(recs) != 1 {
		t.Fatalf("records dir holds %d files after supersede, want 1", len(recs))
	}
	s2 := openT(t, dir)
	var src []byte
	s2.Replay(func(r Record) error { src = r.Source; return nil })
	if string(src) != "v2" {
		t.Fatalf("replayed %q, want v2", src)
	}
}

// copyDir snapshots a data dir, simulating what a kill -9 leaves on disk at
// the moment a write step completed (the fsync discipline guarantees the
// completed steps are durable).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatalf("copyDir: %v", err)
	}
}

// TestStoreCrashAtEveryStep snapshots the data dir after each write step of
// a Put and a Delete, then reopens every snapshot: recovery must always see
// zero quarantined records and a module set equal to either the before- or
// after-state of the interrupted mutation — never a third state.
func TestStoreCrashAtEveryStep(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Put("stable", "minic", []byte("int s;")); err != nil {
		t.Fatal(err)
	}

	type snap struct {
		step string
		dir  string
	}
	var snaps []snap
	n := 0
	s.WriteHook = func(step string) {
		n++
		d := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%02d-%s", n, step))
		copyDir(t, dir, d)
		snaps = append(snaps, snap{step, d})
	}

	if err := s.Put("incoming", "minic", []byte("int i;")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("stable"); err != nil {
		t.Fatal(err)
	}
	// Put fires all 4 steps; Delete mutates only the manifest, so 2 more.
	if len(snaps) != 6 {
		t.Fatalf("captured %d crash points, want 6", len(snaps))
	}

	valid := map[string]bool{
		"stable":          true, // before Put
		"incoming,stable": true, // after Put / before Delete (sorted)
		"incoming":        true, // after Delete
	}
	for _, sn := range snaps {
		rs := openT(t, sn.dir)
		if q := rs.Quarantined(); q != 0 {
			t.Errorf("crash at %s (%s): %d records quarantined on recovery", sn.step, sn.dir, q)
		}
		got := strings.Join(liveNames(t, rs), ",")
		if !valid[got] {
			t.Errorf("crash at %s: recovered module set %q is neither before nor after state", sn.step, got)
		}
	}
}

// TestStoreBitFlipQuarantine damages one live record on disk; a reopen +
// replay must quarantine it (moved to corrupt/, counter bumped) and keep
// serving the intact record.
func TestStoreBitFlipQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put("good", "minic", []byte("int g;"))
	s.Put("bad", "minic", []byte("int b;"))

	var badFile string
	s.mu.Lock()
	badFile = s.live["bad"].file
	s.mu.Unlock()
	path := filepath.Join(dir, recordsDir, badFile)
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0x40
	os.WriteFile(path, b, 0o644)

	s2 := openT(t, dir)
	if got := liveNames(t, s2); !reflect.DeepEqual(got, []string{"good"}) {
		t.Fatalf("after bit flip live = %v, want [good]", got)
	}
	if q := s2.Quarantined(); q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}
	ents, _ := os.ReadDir(filepath.Join(dir, corruptDir))
	if len(ents) != 1 {
		t.Fatalf("corrupt/ holds %d files, want 1", len(ents))
	}
	// The quarantined name is tombstoned: a third open sees the same state
	// without re-quarantining.
	s3 := openT(t, dir)
	if got := liveNames(t, s3); !reflect.DeepEqual(got, []string{"good"}) {
		t.Fatalf("third open live = %v, want [good]", got)
	}
	if q := s3.Quarantined(); q != 0 {
		t.Fatalf("third open re-quarantined %d records", q)
	}
}

// TestStoreManifestCorruption truncates and bit-flips the manifest; Open
// must quarantine it and rebuild from the records that decode.
func TestStoreManifestCorruption(t *testing.T) {
	for _, mode := range []string{"truncate", "bitflip", "garbage"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir)
			s.Put("a", "minic", []byte("int a;"))
			s.Put("b", "ir", []byte("func f(p ptr) ptr { ret p }"))

			path := filepath.Join(dir, manifestName)
			b, _ := os.ReadFile(path)
			switch mode {
			case "truncate":
				b = b[:len(b)/2]
			case "bitflip":
				b[len(b)/3] ^= 0x10
			case "garbage":
				b = []byte("not a manifest at all\n")
			}
			os.WriteFile(path, b, 0o644)

			s2 := openT(t, dir)
			if got := liveNames(t, s2); !reflect.DeepEqual(got, []string{"a", "b"}) {
				t.Fatalf("rebuilt live = %v, want [a b]", got)
			}
			if q := s2.Quarantined(); q != 1 {
				t.Fatalf("Quarantined = %d, want 1 (the manifest)", q)
			}
		})
	}
}

func TestStoreSweepsOrphansAndTemps(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put("keep", "minic", []byte("int k;"))

	// Simulate a crash between record-rename and manifest-rename: a fully
	// written record no manifest entry references.
	orphan, _ := EncodeRecord("orphan", "minic", []byte("int o;"))
	os.WriteFile(filepath.Join(dir, recordsDir, "deadbeefdeadbeef.rec"), orphan, 0o644)
	os.WriteFile(filepath.Join(dir, recordsDir, "partial.rec.tmp"), []byte("torn"), 0o644)
	os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("torn"), 0o644)

	s2 := openT(t, dir)
	if got := liveNames(t, s2); !reflect.DeepEqual(got, []string{"keep"}) {
		t.Fatalf("live = %v, want [keep]", got)
	}
	ents, _ := os.ReadDir(filepath.Join(dir, recordsDir))
	if len(ents) != 1 {
		t.Fatalf("records/ holds %d files after sweep, want 1", len(ents))
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("manifest temp file survived the sweep")
	}
	if q := s2.Quarantined(); q != 0 {
		t.Fatalf("sweep quarantined %d records; orphans are debris, not corruption", q)
	}
}

func TestStoreManifestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("m%d", i%3)
		if err := s.Put(name, "minic", []byte(fmt.Sprintf("int v%d;", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	ops, live := len(s.ops), len(s.live)
	s.mu.Unlock()
	if ops > compactThreshold*(live+1) {
		t.Fatalf("op log grew to %d entries over %d live records — compaction never ran", ops, live)
	}
	s2 := openT(t, dir)
	if got := liveNames(t, s2); !reflect.DeepEqual(got, []string{"m0", "m1", "m2"}) {
		t.Fatalf("after compaction live = %v", got)
	}
}

func TestParseManifestRejects(t *testing.T) {
	cases := []string{
		"",
		"aliasd-store v1\n",                      // no CRC line
		"wrong header\ncrc 00000000\n",           // bad header (CRC also wrong)
		"aliasd-store v1\ncrc deadbeef\n",        // CRC mismatch
		"aliasd-store v1\nadd onlyonefield\ncrc", // malformed, no trailer newline
	}
	for _, c := range cases {
		if _, err := parseManifest([]byte(c)); err == nil {
			t.Errorf("parseManifest(%q) accepted", c)
		}
	}
}
