// Package store is aliasd's crash-safe on-disk module store: the layer
// behind -data-dir that makes a registered module survive a kill -9.
//
// # Layout
//
//	<data-dir>/
//	  MANIFEST          ordered op log (add/del lines), whole-file CRC
//	  records/<id>.rec  one checksummed record per module upload
//	  corrupt/          quarantined records and manifests, never served
//
// Every mutation follows the temp-file + fsync + atomic-rename discipline:
// a record is written to records/<id>.rec.tmp, fsynced, renamed into place,
// and only then does the manifest — itself rewritten through a temp file and
// rename — start referencing it. A crash at any point between those steps
// leaves either the old manifest (the upload never happened) or the new one
// (the upload fully happened); the only other possible debris is an orphan
// record or temp file, both swept at Open. Deletes tombstone the manifest
// the same way (a "del" op line) before the record file is unlinked, so a
// crash mid-delete can only resurrect nothing.
//
// Torn or bit-flipped data is detected, never served: records carry a CRC32
// over the full payload plus an inner content hash over the source bytes,
// the manifest carries a whole-file CRC line, and anything that fails a
// check is moved to corrupt/ and skipped — a quarantine counter is the only
// way the damage is visible, never a panic or a wrong answer.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record format version 1, fixed binary framing:
//
//	magic "ALS1"                      4 bytes (version is baked into the magic)
//	payload length                    4 bytes, big endian
//	payload:
//	    name length                   2 bytes, big endian
//	    name                          UTF-8 bytes
//	    format length                 2 bytes, big endian
//	    format                        UTF-8 bytes ("ir" | "minic")
//	    content hash                  32 bytes, sha256 of the source
//	    source                        remaining payload bytes
//	CRC32 (IEEE) of payload           4 bytes, big endian
//
// The CRC catches torn writes and random corruption of the framing; the
// inner hash additionally pins the source bytes to the identity the service
// computed at upload time, so a record whose payload was consistently
// rewritten still cannot smuggle different source under an old name.
const (
	recordMagic   = "ALS1"
	FormatVersion = 1

	headerLen  = 8 // magic + payload length
	trailerLen = 4 // crc32
	// minPayload is an empty-name, empty-format, empty-source payload.
	minPayload = 2 + 2 + sha256.Size

	// MaxRecordBytes bounds a single decoded record (64 MiB) — a corrupted
	// length field must not drive a gigabyte allocation.
	MaxRecordBytes = 64 << 20
)

// Record is one persisted module upload.
type Record struct {
	Name   string
	Format string
	Hash   [sha256.Size]byte // sha256 of Source
	Source []byte
}

// EncodeRecord renders the record framing for name/format/source, computing
// the content hash. The result decodes back to an identical Record.
func EncodeRecord(name, format string, source []byte) ([]byte, error) {
	if len(name) > 0xffff {
		return nil, fmt.Errorf("store: module name is %d bytes, limit 65535", len(name))
	}
	if len(format) > 0xffff {
		return nil, fmt.Errorf("store: format is %d bytes, limit 65535", len(format))
	}
	payloadLen := minPayload + len(name) + len(format) + len(source)
	if headerLen+payloadLen+trailerLen > MaxRecordBytes {
		return nil, fmt.Errorf("store: record would be %d bytes, limit %d", headerLen+payloadLen+trailerLen, MaxRecordBytes)
	}
	buf := make([]byte, 0, headerLen+payloadLen+trailerLen)
	buf = append(buf, recordMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(payloadLen))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(format)))
	buf = append(buf, format...)
	h := sha256.Sum256(source)
	buf = append(buf, h[:]...)
	buf = append(buf, source...)
	payload := buf[headerLen:]
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf, nil
}

// DecodeRecord parses and verifies one record. Every failure mode — short
// buffer, wrong magic, inconsistent lengths, CRC mismatch, content-hash
// mismatch, trailing garbage — is an error; a successful decode guarantees
// the record is byte-identical to what EncodeRecord produced.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) < headerLen+minPayload+trailerLen {
		return r, fmt.Errorf("store: record truncated at %d bytes", len(b))
	}
	if string(b[:4]) != recordMagic {
		return r, fmt.Errorf("store: bad record magic %q (want %q)", b[:4], recordMagic)
	}
	payloadLen := int(binary.BigEndian.Uint32(b[4:8]))
	if payloadLen < minPayload || headerLen+payloadLen+trailerLen > MaxRecordBytes {
		return r, fmt.Errorf("store: implausible payload length %d", payloadLen)
	}
	if len(b) != headerLen+payloadLen+trailerLen {
		return r, fmt.Errorf("store: record is %d bytes, framing says %d",
			len(b), headerLen+payloadLen+trailerLen)
	}
	payload := b[headerLen : headerLen+payloadLen]
	wantCRC := binary.BigEndian.Uint32(b[headerLen+payloadLen:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return r, fmt.Errorf("store: record CRC mismatch (got %08x, want %08x)", got, wantCRC)
	}
	nameLen := int(binary.BigEndian.Uint16(payload[:2]))
	rest := payload[2:]
	if len(rest) < nameLen+2 {
		return r, fmt.Errorf("store: name length %d exceeds payload", nameLen)
	}
	r.Name = string(rest[:nameLen])
	rest = rest[nameLen:]
	formatLen := int(binary.BigEndian.Uint16(rest[:2]))
	rest = rest[2:]
	if len(rest) < formatLen+sha256.Size {
		return r, fmt.Errorf("store: format length %d exceeds payload", formatLen)
	}
	r.Format = string(rest[:formatLen])
	rest = rest[formatLen:]
	copy(r.Hash[:], rest[:sha256.Size])
	r.Source = append([]byte(nil), rest[sha256.Size:]...)
	if got := sha256.Sum256(r.Source); got != r.Hash {
		return r, fmt.Errorf("store: content hash mismatch for module %q", r.Name)
	}
	return r, nil
}
