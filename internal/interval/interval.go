// Package interval implements the SymbRanges semi-lattice of §3.3 of
// "Symbolic Range Analysis of Pointers" (CGO'16): symbolic intervals
// R = [l, u] over the partially ordered set S = SE ∪ {−∞, +∞}, with
//
//	join   [a1,a2] ⊔ [b1,b2] = [min(a1,b1), max(a2,b2)]
//	meet   [a1,a2] ⊓ [b1,b2] = ∅ if a2<b1 or b2<a1, else [max(a1,b1), min(a2,b2)]
//	order  [l0,u0] ⊑ [l1,u1]  iff l1 ≤ l0 ∧ u1 ≥ u0
//
// plus the paper's widening operator ∇ and a narrowing used by the
// descending sequence. ∅ (Empty) is the least element and [−∞,+∞] (Full) the
// greatest.
//
// Because bounds are symbolic, several predicates come in a *proven* flavour:
// ProvablyDisjoint answers true only when the emptiness of the intersection
// holds for every valuation of the kernel symbols; incomparable bounds always
// degrade to "not proven", which client analyses translate to may-alias.
//
// aliaslint:interner-scoped — this package runs on per-module analysis
// paths: internal arithmetic derives its interner from operand bounds
// (Interval.owner), never from the process-wide Default; only the exported
// constant constructors Consts/ConstPoint pin the Default interner, for
// callers that have no expression in hand yet.
package interval

import (
	"fmt"

	"repro/internal/symbolic"
)

// Interval is a symbolic interval, or the empty interval. The zero value is
// the empty interval.
type Interval struct {
	lo, hi *symbolic.Expr
	full   bool // set on [−∞,+∞], lets Full() avoid allocation checks
}

// Empty returns ∅, the least element of SymbRanges.
func Empty() Interval { return Interval{} }

// Full returns [−∞,+∞], the greatest element.
func Full() Interval {
	return Interval{lo: symbolic.NegInf(), hi: symbolic.PosInf(), full: true}
}

// Of builds [lo, hi]. If lo > hi is provable the result is ∅.
func Of(lo, hi *symbolic.Expr) Interval {
	if lo == nil || hi == nil {
		panic("interval: nil bound")
	}
	if lo.IsPosInf() || hi.IsNegInf() {
		return Empty()
	}
	if symbolic.Compare(lo, hi).ProvesGT() {
		return Empty()
	}
	return Interval{lo: lo, hi: hi, full: lo.IsNegInf() && hi.IsPosInf()}
}

// Point returns [e, e].
func Point(e *symbolic.Expr) Interval { return Of(e, e) }

// Consts returns [lo, hi] with constant bounds in the Default interner.
// Callers holding a module-scoped expression should prefer ConstsIn (or
// derive bounds via an operand's Owner) so the interval stays inside that
// module's interner.
func Consts(lo, hi int64) Interval {
	return Of(symbolic.Const(lo), symbolic.Const(hi)) //nolint:internermix // entry-point constructor: callers without an Expr in hand have only the Default interner
}

// ConstsIn returns [lo, hi] with constant bounds interned in in.
func ConstsIn(in *symbolic.Interner, lo, hi int64) Interval {
	return Of(in.Const(lo), in.Const(hi))
}

// ConstPoint returns [c, c] in the Default interner (see Consts).
func ConstPoint(c int64) Interval { return Consts(c, c) }

// ownerOrNil derives the interner r's bounds live in: the first finite
// bound's owner, or nil when r is empty or fully infinite (infinities are
// interner-less singletons).
func (r Interval) ownerOrNil() *symbolic.Interner {
	if !r.IsEmpty() {
		if !r.lo.IsInf() {
			return r.lo.Owner()
		}
		if !r.hi.IsInf() {
			return r.hi.Owner()
		}
	}
	return nil
}

// owner is ownerOrNil defaulting to the Default interner — safe for fully
// infinite intervals, whose bounds combine with any interner's expressions.
func (r Interval) owner() *symbolic.Interner {
	if in := r.ownerOrNil(); in != nil {
		return in
	}
	return symbolic.Default()
}

// ownerOf2 derives the interner for a binary operation over a and b.
func ownerOf2(a, b Interval) *symbolic.Interner {
	if in := a.ownerOrNil(); in != nil {
		return in
	}
	return b.owner()
}

// IsEmpty reports whether r is ∅.
func (r Interval) IsEmpty() bool { return r.lo == nil }

// IsFull reports whether r is [−∞,+∞].
func (r Interval) IsFull() bool { return r.full }

// Lo returns the lower bound (R↓). Panics on ∅.
func (r Interval) Lo() *symbolic.Expr {
	if r.IsEmpty() {
		panic("interval: Lo of empty interval")
	}
	return r.lo
}

// Hi returns the upper bound (R↑). Panics on ∅.
func (r Interval) Hi() *symbolic.Expr {
	if r.IsEmpty() {
		panic("interval: Hi of empty interval")
	}
	return r.hi
}

// String renders r.
func (r Interval) String() string {
	if r.IsEmpty() {
		return "∅"
	}
	return fmt.Sprintf("[%s, %s]", r.lo, r.hi)
}

// Equal reports structural equality after canonicalization. Bounds are
// hash-consed (see internal/symbolic), so this is two pointer comparisons —
// the widening test of the fixpoint loops costs no traversal.
func Equal(a, b Interval) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.IsEmpty() == b.IsEmpty()
	}
	return symbolic.Equal(a.lo, b.lo) && symbolic.Equal(a.hi, b.hi)
}

// Join is the lattice ⊔: [min(lo), max(hi)]. ∅ is neutral.
func Join(a, b Interval) Interval {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	if a.full || b.full {
		return Full()
	}
	return Of(symbolic.Min(a.lo, b.lo), symbolic.Max(a.hi, b.hi))
}

// Meet is the lattice ⊓ (exact intersection): provably disjoint operands
// yield ∅; otherwise [max(lo), min(hi)], which is exact even when the order
// of the bounds is not decidable.
func Meet(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if a.full {
		return b
	}
	if b.full {
		return a
	}
	if symbolic.Compare(a.hi, b.lo).ProvesLT() || symbolic.Compare(b.hi, a.lo).ProvesLT() {
		return Empty()
	}
	return Of(symbolic.Max(a.lo, b.lo), symbolic.Min(a.hi, b.hi))
}

// Leq reports whether a ⊑ b is *provable*: b.lo ≤ a.lo ∧ b.hi ≥ a.hi. With
// symbolic bounds this is a sound approximation of the order (false may mean
// "unknown").
func Leq(a, b Interval) bool {
	if a.IsEmpty() {
		return true
	}
	if b.IsEmpty() {
		return false
	}
	if b.full {
		return true
	}
	return symbolic.Compare(b.lo, a.lo).ProvesLE() &&
		symbolic.Compare(b.hi, a.hi).ProvesGE()
}

// ProvablyDisjoint reports whether a ∩ b = ∅ holds for every valuation of
// the kernel symbols. This is the test behind the no-alias answers of
// §3.5/§3.7; it must never return true spuriously.
func ProvablyDisjoint(a, b Interval) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return true
	}
	return symbolic.Compare(a.hi, b.lo).ProvesLT() ||
		symbolic.Compare(b.hi, a.lo).ProvesLT()
}

// Contains reports whether the constant c provably lies in r.
func (r Interval) Contains(c int64) bool {
	if r.IsEmpty() {
		return false
	}
	e := r.owner().Const(c)
	return symbolic.Compare(r.lo, e).ProvesLE() &&
		symbolic.Compare(r.hi, e).ProvesGE()
}

// Widen is the paper's ∇ (§3.3): bounds that changed jump to the respective
// infinity, unchanged bounds are kept. "Changed" is decided by structural
// equality, which is what guarantees the 3-step termination argument of §3.8.
func Widen(old, next Interval) Interval {
	if old.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return old
	}
	lo := old.lo
	if !symbolic.Equal(old.lo, next.lo) {
		lo = symbolic.NegInf()
	}
	hi := old.hi
	if !symbolic.Equal(old.hi, next.hi) {
		hi = symbolic.PosInf()
	}
	return Of(lo, hi)
}

// Narrow implements one step of the descending sequence (§3.4, §3.9):
// infinite bounds of cur may be refined by next; finite bounds are kept.
// Starting from a post-fixpoint this is sound and terminates in bounded
// steps.
func Narrow(cur, next Interval) Interval {
	if cur.IsEmpty() || next.IsEmpty() {
		return cur
	}
	lo := cur.lo
	if lo.IsNegInf() {
		lo = next.lo
	}
	hi := cur.hi
	if hi.IsPosInf() {
		hi = next.hi
	}
	return Of(lo, hi)
}

// ---------------------------------------------------------------------------
// Interval arithmetic.

// Add returns {x+y | x∈a, y∈b}: [a.lo+b.lo, a.hi+b.hi], guarding the
// infinities so that opposite infinities never meet.
func Add(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	lo := symbolic.NegInf()
	if !a.lo.IsNegInf() && !b.lo.IsNegInf() {
		lo = symbolic.Add(a.lo, b.lo)
	}
	hi := symbolic.PosInf()
	if !a.hi.IsPosInf() && !b.hi.IsPosInf() {
		hi = symbolic.Add(a.hi, b.hi)
	}
	return Of(lo, hi)
}

// Sub returns {x−y | x∈a, y∈b}: [a.lo−b.hi, a.hi−b.lo].
func Sub(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	lo := symbolic.NegInf()
	if !a.lo.IsNegInf() && !b.hi.IsPosInf() {
		lo = symbolic.Sub(a.lo, b.hi)
	}
	hi := symbolic.PosInf()
	if !a.hi.IsPosInf() && !b.lo.IsNegInf() {
		hi = symbolic.Sub(a.hi, b.lo)
	}
	return Of(lo, hi)
}

// AddConst shifts r by c.
func (r Interval) AddConst(c int64) Interval {
	if r.IsEmpty() || c == 0 {
		return r
	}
	lo := r.lo
	if !lo.IsInf() {
		lo = symbolic.AddConst(lo, c)
	}
	hi := r.hi
	if !hi.IsInf() {
		hi = symbolic.AddConst(hi, c)
	}
	return Of(lo, hi)
}

// Neg returns {−x | x∈r}.
func (r Interval) Neg() Interval {
	if r.IsEmpty() {
		return r
	}
	return Of(symbolic.Neg(r.hi), symbolic.Neg(r.lo))
}

// MulConst scales r by the constant c.
func (r Interval) MulConst(c int64) Interval {
	if r.IsEmpty() {
		return r
	}
	if c == 0 {
		return Point(r.owner().Zero())
	}
	lo, hi := r.lo, r.hi
	if c < 0 {
		lo, hi = hi, lo
	}
	k := r.owner().Const(c)
	return Of(symbolic.Mul(lo, k), symbolic.Mul(hi, k))
}

// Mul returns a sound product of two intervals. Precise when either side is
// a known constant point; when both operands are non-negative it multiplies
// bound-wise; otherwise it degrades to [−∞,+∞].
func Mul(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if c, ok := constPoint(a); ok {
		return b.MulConst(c)
	}
	if c, ok := constPoint(b); ok {
		return a.MulConst(c)
	}
	if a.provablyNonNeg() && b.provablyNonNeg() {
		hi := symbolic.PosInf()
		if !a.hi.IsPosInf() && !b.hi.IsPosInf() {
			hi = symbolic.Mul(a.hi, b.hi)
		}
		return Of(symbolic.Mul(a.lo, b.lo), hi)
	}
	return Full()
}

// Div returns a sound quotient (C-style truncation). Constant points fold
// exactly; division by a positive constant point folds constant operand
// bounds (truncated division by a positive constant is monotone); everything
// else degrades to [−∞,+∞] (sufficient for the IR idioms the frontends
// emit).
func Div(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if x, ok := constPoint(a); ok {
		if y, ok := constPoint(b); ok && y != 0 {
			return Point(ownerOf2(a, b).Const(x / y))
		}
	}
	c, ok := constPoint(b)
	if !ok || c <= 0 {
		return Full()
	}
	alo, lok := constOf(a.lo)
	ahi, hok := constOf(a.hi)
	lo := symbolic.NegInf()
	hi := symbolic.PosInf()
	if lok {
		lo = a.owner().Const(alo / c)
	}
	if hok {
		hi = a.owner().Const(ahi / c)
	}
	return Of(lo, hi)
}

// Rem returns a sound remainder: for a positive constant divisor n the
// result is within [−(n−1), n−1], tightened to [0, n−1] when the dividend is
// provably non-negative.
func Rem(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if x, ok := constPoint(a); ok {
		if y, ok := constPoint(b); ok && y != 0 {
			return Point(ownerOf2(a, b).Const(x % y))
		}
	}
	n, ok := constPoint(b)
	if !ok || n <= 0 {
		return Full()
	}
	if a.provablyNonNeg() {
		return ConstsIn(ownerOf2(a, b), 0, n-1)
	}
	return ConstsIn(ownerOf2(a, b), -(n-1), n-1)
}

func constPoint(r Interval) (int64, bool) {
	lo, ok := constOf(r.lo)
	if !ok {
		return 0, false
	}
	hi, ok := constOf(r.hi)
	if !ok || lo != hi {
		return 0, false
	}
	return lo, true
}

func constOf(e *symbolic.Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	return e.ConstValue()
}

func (r Interval) provablyNonNeg() bool {
	return symbolic.Compare(r.lo, r.owner().Zero()).ProvesGE()
}

// ---------------------------------------------------------------------------
// Expression-size budget (§3.8: O(1) information per variable).

// DefaultBudget bounds the node count of each interval bound; oversized
// bounds degrade to the matching infinity, preserving soundness.
const DefaultBudget = 48

// Clamp enforces the expression-size budget on r's bounds.
func (r Interval) Clamp(budget int) Interval {
	if r.IsEmpty() {
		return r
	}
	lo, hi := r.lo, r.hi
	if !lo.IsInf() && lo.Size() > budget {
		lo = symbolic.NegInf()
	}
	if !hi.IsInf() && hi.Size() > budget {
		hi = symbolic.PosInf()
	}
	if lo == r.lo && hi == r.hi {
		return r
	}
	return Of(lo, hi)
}
