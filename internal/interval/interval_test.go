package interval

import (
	"math/rand"
	"testing"

	"repro/internal/symbolic"
)

func sym(s string) *symbolic.Expr  { return symbolic.Sym(s) }
func konst(c int64) *symbolic.Expr { return symbolic.Const(c) }

func TestEmptyAndFull(t *testing.T) {
	if !Empty().IsEmpty() {
		t.Fatal("Empty not empty")
	}
	if !Full().IsFull() {
		t.Fatal("Full not full")
	}
	// [5,3] normalizes to empty.
	if !Consts(5, 3).IsEmpty() {
		t.Fatal("[5,3] should be empty")
	}
	// Symbolic incomparable bounds stay non-empty.
	r := Of(sym("N"), sym("M"))
	if r.IsEmpty() {
		t.Fatal("[N,M] must not collapse to empty")
	}
}

func TestJoinNeutralAndAbsorbing(t *testing.T) {
	r := Consts(1, 5)
	if !Equal(Join(Empty(), r), r) || !Equal(Join(r, Empty()), r) {
		t.Error("∅ must be neutral for join")
	}
	if !Join(Full(), r).IsFull() || !Join(r, Full()).IsFull() {
		t.Error("[−∞,+∞] must be absorbing for join")
	}
}

func TestMeetNeutralAndAbsorbing(t *testing.T) {
	r := Consts(1, 5)
	if !Meet(Empty(), r).IsEmpty() || !Meet(r, Empty()).IsEmpty() {
		t.Error("∅ must be absorbing for meet")
	}
	if !Equal(Meet(Full(), r), r) || !Equal(Meet(r, Full()), r) {
		t.Error("[−∞,+∞] must be neutral for meet")
	}
}

func TestJoinConsts(t *testing.T) {
	got := Join(Consts(1, 3), Consts(2, 7))
	if !Equal(got, Consts(1, 7)) {
		t.Errorf("join = %s", got)
	}
}

func TestMeetDisjointConsts(t *testing.T) {
	if !Meet(Consts(1, 3), Consts(5, 7)).IsEmpty() {
		t.Error("meet of disjoint consts should be empty")
	}
	got := Meet(Consts(1, 5), Consts(3, 9))
	if !Equal(got, Consts(3, 5)) {
		t.Errorf("meet = %s", got)
	}
}

func TestSymbolicJoinUsesMinMax(t *testing.T) {
	n := sym("N")
	a := Of(konst(0), symbolic.AddConst(n, -1)) // [0, N−1]
	b := Of(n, symbolic.AddConst(n, 5))         // [N, N+5]
	j := Join(a, b)
	// lower bound min(0, N) and upper bound max(N−1, N+5)=N+5.
	if j.IsEmpty() {
		t.Fatal("join empty")
	}
	if got := j.Hi(); !symbolic.Equal(got, symbolic.AddConst(n, 5)) {
		t.Errorf("join hi = %s, want N+5", got)
	}
	if got := j.Lo(); got.Kind() != symbolic.KMin {
		t.Errorf("join lo = %s, want a min", got)
	}
}

func TestProvablyDisjointPaperExample(t *testing.T) {
	// Fig. 1/§2: [0, N−1] vs [N, N+strlen−1] are disjoint for all N, strlen.
	n := sym("N")
	k := symbolic.Add(n, sym("strlen.m"))
	a := Of(konst(0), symbolic.AddConst(n, -1))
	b := Of(n, symbolic.AddConst(k, -1))
	if !ProvablyDisjoint(a, b) {
		t.Errorf("%s and %s must be provably disjoint", a, b)
	}
	// Fig. 3: [0, N+1] vs [1, N+2] are NOT provably disjoint.
	c := Of(konst(0), symbolic.AddConst(n, 1))
	d := Of(konst(1), symbolic.AddConst(n, 2))
	if ProvablyDisjoint(c, d) {
		t.Errorf("%s and %s overlap for N≥1: disjointness unsound", c, d)
	}
}

func TestLeq(t *testing.T) {
	if !Leq(Consts(2, 3), Consts(1, 5)) {
		t.Error("[2,3] ⊑ [1,5]")
	}
	if Leq(Consts(1, 5), Consts(2, 3)) {
		t.Error("[1,5] ⋢ [2,3]")
	}
	if !Leq(Empty(), Consts(1, 2)) {
		t.Error("∅ is least")
	}
	if !Leq(Consts(1, 2), Full()) {
		t.Error("full is greatest")
	}
	n := sym("N")
	if !Leq(Of(konst(0), n), Of(konst(-1), symbolic.AddConst(n, 1))) {
		t.Error("[0,N] ⊑ [−1,N+1]")
	}
}

func TestWidenPaperCases(t *testing.T) {
	n := sym("N")
	same := Of(konst(0), n)
	// Unchanged: stays.
	if got := Widen(same, Of(konst(0), n)); !Equal(got, same) {
		t.Errorf("widen unchanged = %s", got)
	}
	// Upper grew: hi → +∞.
	got := Widen(Consts(0, 1), Consts(0, 2))
	if !got.Lo().IsConst() || !got.Hi().IsPosInf() {
		t.Errorf("widen hi-grow = %s", got)
	}
	// Lower shrank: lo → −∞.
	got = Widen(Consts(0, 1), Consts(-1, 1))
	if !got.Lo().IsNegInf() || got.Hi().IsPosInf() {
		t.Errorf("widen lo-grow = %s", got)
	}
	// Both: full.
	if got := Widen(Consts(0, 1), Consts(-1, 2)); !got.IsFull() {
		t.Errorf("widen both = %s", got)
	}
	// From ∅ takes next.
	if got := Widen(Empty(), Consts(1, 2)); !Equal(got, Consts(1, 2)) {
		t.Errorf("widen from empty = %s", got)
	}
}

func TestWidenTerminates(t *testing.T) {
	// A bound can change at most twice under ∇ (finite → ∞): simulate a
	// growing chain and count changes.
	cur := Empty()
	changes := 0
	for i := int64(0); i < 100; i++ {
		next := Widen(cur, Consts(-i, i))
		if !Equal(next, cur) {
			changes++
		}
		cur = next
	}
	if changes > 3 {
		t.Errorf("widening chain changed %d times, want ≤ 3 (§3.8)", changes)
	}
	if !cur.IsFull() {
		t.Errorf("widening limit = %s, want full", cur)
	}
}

func TestNarrowRefinesInfinities(t *testing.T) {
	n := sym("N")
	cur := Of(konst(0), symbolic.PosInf())
	next := Of(konst(0), symbolic.AddConst(n, -1))
	got := Narrow(cur, next)
	if !Equal(got, next) {
		t.Errorf("narrow = %s, want [0, N−1]", got)
	}
	// Finite bounds are kept even if next differs.
	got = Narrow(Consts(0, 5), Consts(1, 4))
	if !Equal(got, Consts(0, 5)) {
		t.Errorf("narrow of finite = %s, want unchanged", got)
	}
}

func TestAddSub(t *testing.T) {
	n := sym("N")
	a := Of(konst(0), symbolic.AddConst(n, -1))
	b := Consts(1, 1)
	got := Add(a, b)
	if !Equal(got, Of(konst(1), n)) {
		t.Errorf("[0,N−1]+[1,1] = %s", got)
	}
	got = Sub(a, b)
	if !Equal(got, Of(konst(-1), symbolic.AddConst(n, -2))) {
		t.Errorf("[0,N−1]−[1,1] = %s", got)
	}
	// Infinity guards.
	got = Add(Of(konst(0), symbolic.PosInf()), Consts(1, 1))
	if got.IsEmpty() || !got.Hi().IsPosInf() || !symbolic.Equal(got.Lo(), konst(1)) {
		t.Errorf("[0,+∞]+[1,1] = %s", got)
	}
	if got := Add(Full(), Full()); !got.IsFull() {
		t.Errorf("full+full = %s", got)
	}
}

func TestAddConstNeg(t *testing.T) {
	n := sym("N")
	r := Of(konst(2), n).AddConst(3)
	if !Equal(r, Of(konst(5), symbolic.AddConst(n, 3))) {
		t.Errorf("shift = %s", r)
	}
	neg := Consts(1, 4).Neg()
	if !Equal(neg, Consts(-4, -1)) {
		t.Errorf("neg = %s", neg)
	}
}

func TestMulDivRem(t *testing.T) {
	if got := Consts(2, 3).MulConst(4); !Equal(got, Consts(8, 12)) {
		t.Errorf("[2,3]*4 = %s", got)
	}
	if got := Consts(2, 3).MulConst(-1); !Equal(got, Consts(-3, -2)) {
		t.Errorf("[2,3]*−1 = %s", got)
	}
	if got := Mul(Consts(2, 3), ConstPoint(5)); !Equal(got, Consts(10, 15)) {
		t.Errorf("mul const point = %s", got)
	}
	n := sym("N")
	nn := Of(konst(0), n)
	if got := Mul(nn, Consts(2, 4)); got.IsEmpty() {
		t.Errorf("nonneg mul empty")
	}
	// Unknown signs degrade to full.
	if got := Mul(Of(symbolic.Neg(n), n), Of(symbolic.Neg(n), n)); !got.IsFull() {
		t.Errorf("unknown-sign mul = %s, want full", got)
	}
	if got := Div(Consts(10, 21), ConstPoint(2)); !Equal(got, Consts(5, 10)) {
		t.Errorf("div = %s", got)
	}
	if got := Rem(Consts(0, 100), ConstPoint(8)); !Equal(got, Consts(0, 7)) {
		t.Errorf("rem = %s", got)
	}
	if got := Rem(Consts(-5, 100), ConstPoint(8)); !Equal(got, Consts(-7, 7)) {
		t.Errorf("rem mixed sign = %s", got)
	}
}

func TestContains(t *testing.T) {
	if !Consts(1, 5).Contains(3) || Consts(1, 5).Contains(6) {
		t.Error("Contains on consts")
	}
	n := sym("N")
	if Of(konst(0), n).Contains(-1) {
		t.Error("[0,N] cannot contain −1... wait, it cannot be *proven* to contain −1")
	}
	if !Of(symbolic.Neg(n), symbolic.PosInf()).Contains(0) == false {
		// [−N, +∞] provably contains 0 only if N ≥ 0 — unknown, so false.
		t.Log("contains with unknown-sign bound correctly unproven")
	}
}

func TestClampBudget(t *testing.T) {
	// Build an interval whose bounds exceed a small budget.
	e := sym("a")
	for i := 0; i < 10; i++ {
		e = symbolic.Add(e, symbolic.Mul(sym(string(rune('b'+i))), sym(string(rune('p'+i)))))
	}
	r := Of(symbolic.Neg(e), e)
	c := r.Clamp(4)
	if !c.Lo().IsNegInf() || !c.Hi().IsPosInf() {
		t.Errorf("clamp = %s, want full degradation", c)
	}
	small := Consts(1, 2)
	if got := small.Clamp(4); !Equal(got, small) {
		t.Errorf("clamp of small = %s", got)
	}
}

// Property: join is an upper bound and meet is exact on random constant
// intervals (where everything is decidable).
func TestLatticeLawsOnConsts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ri := func() Interval {
		a := int64(r.Intn(41) - 20)
		b := a + int64(r.Intn(10))
		if r.Intn(8) == 0 {
			return Empty()
		}
		return Consts(a, b)
	}
	for i := 0; i < 2000; i++ {
		a, b, c := ri(), ri(), ri()
		j := Join(a, b)
		if !Leq(a, j) || !Leq(b, j) {
			t.Fatalf("join not an upper bound: %s ⊔ %s = %s", a, b, j)
		}
		if !Equal(Join(a, b), Join(b, a)) {
			t.Fatalf("join not commutative")
		}
		if !Equal(Join(Join(a, b), c), Join(a, Join(b, c))) {
			t.Fatalf("join not associative on consts")
		}
		if !Equal(Join(a, a), a) {
			t.Fatalf("join not idempotent")
		}
		m := Meet(a, b)
		if !Leq(m, a) || !Leq(m, b) {
			t.Fatalf("meet not a lower bound: %s ⊓ %s = %s", a, b, m)
		}
		if !Equal(Meet(a, b), Meet(b, a)) {
			t.Fatalf("meet not commutative")
		}
		// Widening is an upper bound of both arguments.
		w := Widen(a, b)
		if !Leq(a, w) || !Leq(b, w) {
			t.Fatalf("widen not an upper bound: %s ∇ %s = %s", a, b, w)
		}
	}
}

// Property: ProvablyDisjoint is sound under random valuations for symbolic
// intervals built from a shared symbol.
func TestProvablyDisjointSound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := sym("N")
	for i := 0; i < 500; i++ {
		c1 := int64(r.Intn(3))
		c2 := int64(r.Intn(3))
		d1 := int64(r.Intn(9) - 4)
		d2 := int64(r.Intn(9) - 4)
		w1 := int64(r.Intn(6))
		w2 := int64(r.Intn(6))
		a := Of(symbolic.AddConst(symbolic.Mul(konst(c1), n), d1),
			symbolic.AddConst(symbolic.Mul(konst(c1), n), d1+w1))
		b := Of(symbolic.AddConst(symbolic.Mul(konst(c2), n), d2),
			symbolic.AddConst(symbolic.Mul(konst(c2), n), d2+w2))
		if !ProvablyDisjoint(a, b) {
			continue
		}
		for trial := 0; trial < 30; trial++ {
			env := map[string]int64{"N": int64(r.Intn(21) - 10)}
			alo, ok1 := a.Lo().Eval(env)
			ahi, ok2 := a.Hi().Eval(env)
			blo, ok3 := b.Lo().Eval(env)
			bhi, ok4 := b.Hi().Eval(env)
			if !(ok1 && ok2 && ok3 && ok4) {
				continue
			}
			if alo <= bhi && blo <= ahi {
				t.Fatalf("disjointness unsound: %s vs %s under %v", a, b, env)
			}
		}
	}
}
