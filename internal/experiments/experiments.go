// Package experiments drives the reproduction of every table and figure of
// the paper's evaluation (§4): Fig. 13 (precision comparison), Fig. 14
// (global-test attribution), Fig. 15 (scalability/linearity) and the §5
// symbolic-pointer ratio. cmd/benchtables renders these as text tables;
// bench_test.go wraps them as Go benchmarks. EXPERIMENTS.md records the
// measured numbers next to the paper's.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/rangeanal"
	"repro/internal/stats"
)

// PrecisionRow is one benchmark's results for Fig. 13 and Fig. 14.
type PrecisionRow struct {
	Name    string
	Queries int
	// No-alias counts per analysis (Fig. 13).
	Scev, Basic, Rbaa, RplusB int
	// Attribution of rbaa's no-alias answers (Fig. 14).
	Disjoint, Global, Local int
	// §5 classification.
	SymOnly, SymTotal int
}

// RunPrecision evaluates one module against all analyses.
func RunPrecision(name string, m *ir.Module) PrecisionRow {
	r := rbaa.New(m, pointer.Options{})
	b := basicaa.New(m)
	s := scevaa.New(m)
	row := PrecisionRow{Name: name}
	for _, q := range alias.Queries(m) {
		row.Queries++
		sNo := s.Alias(q.P, q.Q) == alias.NoAlias
		bNo := b.Alias(q.P, q.Q) == alias.NoAlias
		ans, why := r.Query(q.P, q.Q)
		rNo := ans == pointer.NoAlias
		if sNo {
			row.Scev++
		}
		if bNo {
			row.Basic++
		}
		if rNo {
			row.Rbaa++
			switch why {
			case pointer.ReasonDisjointSupport:
				row.Disjoint++
			case pointer.ReasonGlobalRange:
				row.Global++
			case pointer.ReasonLocalRange:
				row.Local++
			}
		}
		if rNo || bNo {
			row.RplusB++
		}
	}
	row.SymOnly, row.SymTotal = r.SymbolicOnlyRatio()
	return row
}

// RunFig13Suite runs the whole 22-program suite.
func RunFig13Suite() []PrecisionRow {
	var rows []PrecisionRow
	for _, c := range benchgen.Fig13Configs() {
		rows = append(rows, RunPrecision(c.Name, benchgen.Generate(c)))
	}
	return rows
}

// Total sums precision rows.
func Total(rows []PrecisionRow) PrecisionRow {
	t := PrecisionRow{Name: "Total"}
	for _, r := range rows {
		t.Queries += r.Queries
		t.Scev += r.Scev
		t.Basic += r.Basic
		t.Rbaa += r.Rbaa
		t.RplusB += r.RplusB
		t.Disjoint += r.Disjoint
		t.Global += r.Global
		t.Local += r.Local
		t.SymOnly += r.SymOnly
		t.SymTotal += r.SymTotal
	}
	return t
}

// RenderFig13 prints the Fig. 13 table: per-program no-alias percentages of
// scev, basic, rbaa and the r+b combination.
func RenderFig13(w io.Writer, rows []PrecisionRow) {
	t := stats.NewTable("Program", "#Queries", "%scev", "%basic", "%rbaa", "%(r+b)")
	for _, r := range append(rows, Total(rows)) {
		t.Row(r.Name, r.Queries,
			stats.Pct(r.Scev, r.Queries), stats.Pct(r.Basic, r.Queries),
			stats.Pct(r.Rbaa, r.Queries), stats.Pct(r.RplusB, r.Queries))
	}
	t.Write(w)
}

// RenderFig14 prints the Fig. 14 table: no-alias counts and how many were
// produced by the global range test, plus the local/disjoint split that §4
// discusses in prose.
func RenderFig14(w io.Writer, rows []PrecisionRow) {
	t := stats.NewTable("Program", "#noalias", "#global", "#local", "#disjoint")
	for _, r := range append(rows, Total(rows)) {
		t.Row(r.Name, r.Rbaa, r.Global, r.Local, r.Disjoint)
	}
	total := Total(rows)
	t.Write(w)
	if total.Rbaa > 0 {
		fmt.Fprintf(w, "\nglobal test share: %s%% of no-alias answers (paper: 18.52%%)\n",
			stats.Pct(total.Global, total.Rbaa))
	}
}

// RenderRatio prints the §5 symbolic-only pointer ratio.
func RenderRatio(w io.Writer, rows []PrecisionRow) {
	total := Total(rows)
	fmt.Fprintf(w, "pointers with exclusively symbolic ranges: %d / %d = %s%% (paper: 20.47%%)\n",
		total.SymOnly, total.SymTotal, stats.Pct(total.SymOnly, total.SymTotal))
}

// ScaleRow is one program of the Fig. 15 scalability experiment.
type ScaleRow struct {
	Name     string
	Instrs   int
	Pointers int
	Elapsed  time.Duration
}

// RunFig15 generates n programs of growing size and times the *analysis
// mapping* only (range analysis + GR + LR), matching the paper's
// methodology: "we are counting only the time to map variables to values in
// SymbRanges. We do not count the time to query each pair of pointers."
func RunFig15(n int) []ScaleRow {
	var rows []ScaleRow
	for _, c := range benchgen.ScalabilityConfigs(n) {
		m := benchgen.Generate(c)
		st := m.Stats()
		start := time.Now()
		R := rangeanal.Analyze(m, rangeanal.Options{})
		gr := pointer.AnalyzeGR(m, R, pointer.Options{})
		lr := pointer.AnalyzeLR(m, R, pointer.Options{})
		elapsed := time.Since(start)
		_, _ = gr, lr
		rows = append(rows, ScaleRow{
			Name:     c.Name,
			Instrs:   st.Instrs,
			Pointers: st.Pointers,
			Elapsed:  elapsed,
		})
	}
	return rows
}

// Fig15Correlations computes R(time, instructions) and R(time, pointers) —
// the paper reports 0.982 and 0.975.
func Fig15Correlations(rows []ScaleRow) (rInstr, rPtr float64) {
	var xs, ps, ts []float64
	for _, r := range rows {
		xs = append(xs, float64(r.Instrs))
		ps = append(ps, float64(r.Pointers))
		ts = append(ts, float64(r.Elapsed.Nanoseconds()))
	}
	return stats.Pearson(xs, ts), stats.Pearson(ps, ts)
}

// RenderFig15 prints the scalability series and the correlation summary.
func RenderFig15(w io.Writer, rows []ScaleRow) {
	t := stats.NewTable("Program", "#Instructions", "#Pointers", "Runtime(ms)")
	totalInstr, totalTime := 0, time.Duration(0)
	for _, r := range rows {
		t.Row(r.Name, r.Instrs, r.Pointers, float64(r.Elapsed.Microseconds())/1000.0)
		totalInstr += r.Instrs
		totalTime += r.Elapsed
	}
	t.Write(w)
	ri, rp := Fig15Correlations(rows)
	fmt.Fprintf(w, "\nlinear correlation R(time, instructions) = %.3f (paper: 0.982)\n", ri)
	fmt.Fprintf(w, "linear correlation R(time, pointers)     = %.3f (paper: 0.975)\n", rp)
	if totalTime > 0 {
		kips := float64(totalInstr) / totalTime.Seconds() / 1000.0
		fmt.Fprintf(w, "throughput: %.0fk instructions/second (paper: ~100k/s on an i7-4770K)\n", kips)
	}
}
