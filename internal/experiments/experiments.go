// Package experiments drives the reproduction of every table and figure of
// the paper's evaluation (§4): Fig. 13 (precision comparison), Fig. 14
// (global-test attribution), Fig. 15 (scalability/linearity) and the §5
// symbolic-pointer ratio. cmd/benchtables renders these as text tables;
// bench_test.go wraps them as Go benchmarks. EXPERIMENTS.md records the
// measured numbers next to the paper's.
//
// The pipeline is concurrent: a Driver fans benchmarks out across a worker
// pool and splits each benchmark's query sweep into chunks evaluated in
// parallel against an alias.Manager chaining scev → basic → rbaa. All
// reductions are sums of per-chunk counters, so the resulting rows — and
// the rendered tables — are byte-identical for every Parallel setting.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/alias"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/pool"
	"repro/internal/rangeanal"
	"repro/internal/stats"
)

// Driver runs the evaluation pipeline with a bounded worker pool
// (internal/pool, shared with the alias-query service). The zero value runs
// everything on the calling goroutine.
type Driver struct {
	// Parallel is the worker count for both benchmark fan-out and
	// per-benchmark query chunks. 0 or 1 means sequential; negative means
	// GOMAXPROCS.
	Parallel int
	// Indexed compiles each module's alias index and answers the precision
	// sweep through it in full-verdict mode (alias.Planner.EvaluateFull):
	// index-conclusive pairs skip the chain walk, inconclusive pairs fall
	// back to the Manager. Verdicts are identical by construction, so every
	// Fig. 13/14 number is unchanged — only the sweep gets cheaper.
	Indexed bool
}

func (d *Driver) pool() *pool.Pool {
	if d == nil {
		return &pool.Pool{}
	}
	return &pool.Pool{Parallel: d.Parallel}
}

func (d *Driver) workers() int { return d.pool().Workers() }

// Chain order of the precision manager built by NewPrecisionManager;
// Sweep decodes member verdicts positionally against it, so a caller
// assembling its own alias.Manager for Sweep must use the same order.
const (
	MemberScev = iota
	MemberBasic
	MemberRbaa
)

// PrecisionRow is one benchmark's results for Fig. 13 and Fig. 14.
type PrecisionRow struct {
	Name    string
	Queries int
	// No-alias counts per analysis (Fig. 13).
	Scev, Basic, Rbaa, RplusB int
	// Attribution of rbaa's no-alias answers (Fig. 14).
	Disjoint, Global, Local int
	// §5 classification.
	SymOnly, SymTotal int
}

// add folds another partial row into r (all fields are plain sums).
func (r *PrecisionRow) add(o PrecisionRow) {
	r.Queries += o.Queries
	r.Scev += o.Scev
	r.Basic += o.Basic
	r.Rbaa += o.Rbaa
	r.RplusB += o.RplusB
	r.Disjoint += o.Disjoint
	r.Global += o.Global
	r.Local += o.Local
	r.SymOnly += o.SymOnly
	r.SymTotal += o.SymTotal
}

// NewPrecisionManager builds the evaluation chain of Fig. 13 — scev →
// basic → rbaa — over one module, returning the manager and the rbaa
// member (needed separately for the §5 ratio). Memoization is disabled:
// a precision sweep visits each canonical pair exactly once, so a cache
// would pay per-query stores for a guaranteed 0% hit rate. Clients that
// re-query pairs (opt passes, interactive use) should build their own
// manager with the default cache.
func NewPrecisionManager(m *ir.Module) (*alias.Manager, *rbaa.Analysis) {
	r := rbaa.New(m, pointer.Options{})
	mgr := alias.NewManager(
		alias.ManagerOptions{Label: "scev+basic+rbaa", CacheLimit: -1},
		scevaa.New(m), basicaa.New(m), r)
	return mgr, r
}

// RunPrecision evaluates one module against the chained analyses, splitting
// the query sweep across the driver's workers. The analyses are built once
// and are immutable during the sweep (see pointer.Analyze); each chunk
// reduces into its own partial row and partial rows are summed in chunk
// order, so the result is independent of goroutine scheduling.
func (d *Driver) RunPrecision(name string, m *ir.Module) PrecisionRow {
	mgr, r := NewPrecisionManager(m)
	var row PrecisionRow
	if d != nil && d.Indexed {
		row = d.SweepIndexed(mgr, alias.BuildIndex(mgr, m), alias.Queries(m))
	} else {
		row = d.Sweep(mgr, alias.Queries(m))
	}
	row.Name = name
	row.SymOnly, row.SymTotal = r.SymbolicOnlyRatio()
	return row
}

// Sweep evaluates a fixed list of queries through a precision manager on
// the driver's worker pool, reducing per-chunk partial rows in chunk order.
// The manager must have been built by NewPrecisionManager (the member
// indices are decoded positionally).
func (d *Driver) Sweep(mgr *alias.Manager, qs []alias.Pair) PrecisionRow {
	for i, want := range []string{"scev", "basic", "rbaa"} {
		if mgr.NumMembers() <= i || mgr.MemberName(i) != want {
			panic(fmt.Sprintf("experiments.Sweep: manager member %d is not %q; build the chain like NewPrecisionManager", i, want))
		}
	}
	p := d.workers()
	if p <= 1 || len(qs) == 0 {
		return evalChunk(mgr, qs)
	}
	chunks := pool.Chunks(len(qs), pool.ChunkSize(len(qs), p))
	partials := make([]PrecisionRow, len(chunks))
	d.pool().ForEach(len(chunks), func(c int) {
		partials[c] = evalChunk(mgr, qs[chunks[c][0]:chunks[c][1]])
	})
	var row PrecisionRow
	for _, pr := range partials {
		row.add(pr)
	}
	return row
}

// SweepIndexed is Sweep routed through a compiled index: each chunk answers
// its pairs with alias.Planner.EvaluateFull — the index when conclusive,
// the manager otherwise — and folds its tally once. The manager must be the
// NewPrecisionManager chain and ix must have been built over it; a nil ix
// degrades to the plain sweep.
func (d *Driver) SweepIndexed(mgr *alias.Manager, ix *alias.Index, qs []alias.Pair) PrecisionRow {
	if ix == nil {
		return d.Sweep(mgr, qs)
	}
	for i, want := range []string{"scev", "basic", "rbaa"} {
		if mgr.NumMembers() <= i || mgr.MemberName(i) != want {
			panic(fmt.Sprintf("experiments.SweepIndexed: manager member %d is not %q; build the chain like NewPrecisionManager", i, want))
		}
	}
	pl := alias.NewPlanner(mgr.Snapshot(), ix)
	eval := func(qs []alias.Pair) PrecisionRow {
		var tally alias.PlanTally
		row := evalChunkWith(qs, func(p, q *ir.Value) alias.Verdict {
			return pl.EvaluateFull(p, q, &tally)
		})
		pl.Fold(tally)
		return row
	}
	p := d.workers()
	if p <= 1 || len(qs) == 0 {
		return eval(qs)
	}
	chunks := pool.Chunks(len(qs), pool.ChunkSize(len(qs), p))
	partials := make([]PrecisionRow, len(chunks))
	d.pool().ForEach(len(chunks), func(c int) {
		partials[c] = eval(qs[chunks[c][0]:chunks[c][1]])
	})
	var row PrecisionRow
	for _, pr := range partials {
		row.add(pr)
	}
	return row
}

// evalChunk sweeps one slice of queries through the manager.
func evalChunk(mgr *alias.Manager, qs []alias.Pair) PrecisionRow {
	return evalChunkWith(qs, mgr.Evaluate)
}

// evalChunkWith reduces one slice of queries through any evaluator that
// produces chain verdicts in NewPrecisionManager member order.
func evalChunkWith(qs []alias.Pair, eval func(p, q *ir.Value) alias.Verdict) PrecisionRow {
	var row PrecisionRow
	for _, q := range qs {
		v := eval(q.P, q.Q)
		row.Queries++
		sNo := v.MemberNoAlias(MemberScev)
		bNo := v.MemberNoAlias(MemberBasic)
		rNo := v.MemberNoAlias(MemberRbaa)
		if sNo {
			row.Scev++
		}
		if bNo {
			row.Basic++
		}
		if rNo {
			row.Rbaa++
			switch v.Detail(MemberRbaa) {
			case pointer.ReasonDisjointSupport.String():
				row.Disjoint++
			case pointer.ReasonGlobalRange.String():
				row.Global++
			case pointer.ReasonLocalRange.String():
				row.Local++
			}
		}
		if rNo || bNo {
			row.RplusB++
		}
	}
	return row
}

// RunSuite evaluates a list of benchmark configs, fanning the benchmarks
// out across the driver's workers. Rows come back in config order. The
// worker budget is split between the two levels — p benchmarks in flight ×
// p/p′ sweep workers each — so the total stays at roughly d.Parallel
// instead of its square.
func (d *Driver) RunSuite(configs []benchgen.Config) []PrecisionRow {
	p := d.workers()
	outer := p
	if outer > len(configs) {
		outer = len(configs)
	}
	inner := &Driver{Parallel: 1, Indexed: d != nil && d.Indexed}
	if outer > 0 && p/outer > 1 {
		inner.Parallel = p / outer
	}
	rows := make([]PrecisionRow, len(configs))
	d.pool().ForEach(len(configs), func(i int) {
		rows[i] = inner.RunPrecision(configs[i].Name, benchgen.Generate(configs[i]))
	})
	return rows
}

// RunFig13Suite runs the whole 22-program suite.
func (d *Driver) RunFig13Suite() []PrecisionRow {
	return d.RunSuite(benchgen.Fig13Configs())
}

// RunPrecision evaluates one module sequentially (compatibility wrapper
// around Driver).
func RunPrecision(name string, m *ir.Module) PrecisionRow {
	return (&Driver{}).RunPrecision(name, m)
}

// RunFig13Suite runs the whole 22-program suite sequentially.
func RunFig13Suite() []PrecisionRow {
	return (&Driver{}).RunFig13Suite()
}

// Total sums precision rows.
func Total(rows []PrecisionRow) PrecisionRow {
	t := PrecisionRow{Name: "Total"}
	for _, r := range rows {
		t.add(r)
	}
	return t
}

// RenderFig13 prints the Fig. 13 table: per-program no-alias percentages of
// scev, basic, rbaa and the r+b combination.
func RenderFig13(w io.Writer, rows []PrecisionRow) {
	t := stats.NewTable("Program", "#Queries", "%scev", "%basic", "%rbaa", "%(r+b)")
	for _, r := range append(rows, Total(rows)) {
		t.Row(r.Name, r.Queries,
			stats.Pct(r.Scev, r.Queries), stats.Pct(r.Basic, r.Queries),
			stats.Pct(r.Rbaa, r.Queries), stats.Pct(r.RplusB, r.Queries))
	}
	t.Write(w)
}

// RenderFig14 prints the Fig. 14 table: no-alias counts and how many were
// produced by the global range test, plus the local/disjoint split that §4
// discusses in prose.
func RenderFig14(w io.Writer, rows []PrecisionRow) {
	t := stats.NewTable("Program", "#noalias", "#global", "#local", "#disjoint")
	for _, r := range append(rows, Total(rows)) {
		t.Row(r.Name, r.Rbaa, r.Global, r.Local, r.Disjoint)
	}
	total := Total(rows)
	t.Write(w)
	if total.Rbaa > 0 {
		fmt.Fprintf(w, "\nglobal test share: %s%% of no-alias answers (paper: 18.52%%)\n",
			stats.Pct(total.Global, total.Rbaa))
	}
}

// RenderRatio prints the §5 symbolic-only pointer ratio.
func RenderRatio(w io.Writer, rows []PrecisionRow) {
	total := Total(rows)
	fmt.Fprintf(w, "pointers with exclusively symbolic ranges: %d / %d = %s%% (paper: 20.47%%)\n",
		total.SymOnly, total.SymTotal, stats.Pct(total.SymOnly, total.SymTotal))
}

// ScaleRow is one program of the Fig. 15 scalability experiment.
type ScaleRow struct {
	Name     string
	Instrs   int
	Pointers int
	Elapsed  time.Duration
}

// RunScale times the *analysis mapping* only (range analysis + GR + LR) on
// each config, matching the paper's methodology: "we are counting only the
// time to map variables to values in SymbRanges. We do not count the time
// to query each pair of pointers."
//
// RunScale deliberately ignores the driver's parallelism: it is a *timing*
// experiment, so generation and analysis strictly interleave — one module
// live at a time, nothing else on the CPU during a timed region. Running
// generation (or other analyses) concurrently would inflate Elapsed by
// memory-bandwidth and scheduler contention and make the reported numbers
// depend on the worker count, which the determinism contract forbids.
func (d *Driver) RunScale(configs []benchgen.Config) []ScaleRow {
	rows := make([]ScaleRow, len(configs))
	for i, c := range configs {
		m := benchgen.Generate(c)
		st := m.Stats()
		start := time.Now()
		R := rangeanal.Analyze(m, rangeanal.Options{})
		gr := pointer.AnalyzeGR(m, R, pointer.Options{})
		lr := pointer.AnalyzeLR(m, R, pointer.Options{})
		elapsed := time.Since(start)
		_, _ = gr, lr
		rows[i] = ScaleRow{
			Name:     c.Name,
			Instrs:   st.Instrs,
			Pointers: st.Pointers,
			Elapsed:  elapsed,
		}
	}
	return rows
}

// RunFig15 generates n programs of growing size and times their analysis
// mapping (see RunScale).
func (d *Driver) RunFig15(n int) []ScaleRow {
	return d.RunScale(benchgen.ScalabilityConfigs(n))
}

// RunFig15 is the sequential compatibility wrapper around Driver.RunFig15.
func RunFig15(n int) []ScaleRow {
	return (&Driver{}).RunFig15(n)
}

// Fig15Correlations computes R(time, instructions) and R(time, pointers) —
// the paper reports 0.982 and 0.975.
func Fig15Correlations(rows []ScaleRow) (rInstr, rPtr float64) {
	var xs, ps, ts []float64
	for _, r := range rows {
		xs = append(xs, float64(r.Instrs))
		ps = append(ps, float64(r.Pointers))
		ts = append(ts, float64(r.Elapsed.Nanoseconds()))
	}
	return stats.Pearson(xs, ts), stats.Pearson(ps, ts)
}

// RenderFig15 prints the scalability series and the correlation summary.
func RenderFig15(w io.Writer, rows []ScaleRow) {
	t := stats.NewTable("Program", "#Instructions", "#Pointers", "Runtime(ms)")
	totalInstr, totalTime := 0, time.Duration(0)
	for _, r := range rows {
		t.Row(r.Name, r.Instrs, r.Pointers, float64(r.Elapsed.Microseconds())/1000.0)
		totalInstr += r.Instrs
		totalTime += r.Elapsed
	}
	t.Write(w)
	ri, rp := Fig15Correlations(rows)
	fmt.Fprintf(w, "\nlinear correlation R(time, instructions) = %.3f (paper: 0.982)\n", ri)
	fmt.Fprintf(w, "linear correlation R(time, pointers)     = %.3f (paper: 0.975)\n", rp)
	if totalTime > 0 {
		kips := float64(totalInstr) / totalTime.Seconds() / 1000.0
		fmt.Fprintf(w, "throughput: %.0fk instructions/second (paper: ~100k/s on an i7-4770K)\n", kips)
	}
}
