package experiments

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable form of the evaluation tables, emitted by
// cmd/benchtables -json and consumed by bench-tracking tooling (and by
// anything that wants the Fig. 13/14 numbers without scraping text tables).
// Sections are nil when the corresponding figure was not requested.
type Report struct {
	// Fig13 carries one row per benchmark; each PrecisionRow also holds
	// the Fig. 14 attribution counts and the §5 symbolic classification.
	Fig13 []PrecisionRow `json:"fig13,omitempty"`
	// Total sums the Fig13 rows.
	Total *PrecisionRow `json:"total,omitempty"`
	// GlobalSharePct is the Fig. 14 headline: global-test share of rbaa's
	// no-alias answers, in percent (paper: 18.52).
	GlobalSharePct float64 `json:"global_share_pct,omitempty"`
	// SymOnlyPct is the §5 ratio in percent (paper: 20.47).
	SymOnlyPct float64 `json:"sym_only_pct,omitempty"`
	// Fig15 carries the scalability series.
	Fig15 []ScaleRowJSON `json:"fig15,omitempty"`
	// RInstr/RPtr are the Fig. 15 linear correlations (paper: 0.982/0.975).
	RInstr float64 `json:"r_instr,omitempty"`
	RPtr   float64 `json:"r_ptr,omitempty"`
}

// ScaleRowJSON is a ScaleRow with the duration flattened to milliseconds
// (time.Duration would marshal as opaque nanoseconds).
type ScaleRowJSON struct {
	Name      string  `json:"name"`
	Instrs    int     `json:"instrs"`
	Pointers  int     `json:"pointers"`
	RuntimeMS float64 `json:"runtime_ms"`
}

// BuildReport assembles a Report from precision and/or scale rows (either
// may be nil).
func BuildReport(rows []PrecisionRow, scale []ScaleRow) Report {
	var rep Report
	if rows != nil {
		rep.Fig13 = rows
		total := Total(rows)
		rep.Total = &total
		if total.Rbaa > 0 {
			rep.GlobalSharePct = 100 * float64(total.Global) / float64(total.Rbaa)
		}
		if total.SymTotal > 0 {
			rep.SymOnlyPct = 100 * float64(total.SymOnly) / float64(total.SymTotal)
		}
	}
	for _, r := range scale {
		rep.Fig15 = append(rep.Fig15, ScaleRowJSON{
			Name:      r.Name,
			Instrs:    r.Instrs,
			Pointers:  r.Pointers,
			RuntimeMS: float64(r.Elapsed.Microseconds()) / 1000.0,
		})
	}
	if len(scale) > 0 {
		rep.RInstr, rep.RPtr = Fig15Correlations(scale)
	}
	return rep
}

// WriteJSON renders the report as indented JSON with a trailing newline.
func WriteJSON(w io.Writer, rep Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
