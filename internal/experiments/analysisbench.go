package experiments

import (
	_ "embed"
	"encoding/json"
	"io"
	"testing"
	"time"

	"repro/internal/alias"
	"repro/internal/alias/andersen"
	"repro/internal/alias/basicaa"
	"repro/internal/alias/rbaa"
	"repro/internal/alias/scevaa"
	"repro/internal/benchgen"
	"repro/internal/ir"
	"repro/internal/pointer"
	"repro/internal/symbolic"
)

// Analysis-core benchmark mode: where BENCH_service.json tracks the HTTP
// layer, BENCH_analysis.json tracks the representations underneath it — the
// module-build cost (symbolic expressions, MemLoc lattice, Andersen solve)
// that bounds async-build throughput and eviction-rebuild latency, and the
// allocation profile of the Manager query path. cmd/benchtables
// -analysis-bench emits the report; the numbers recorded at the
// representation-change PR live in analysis_baseline.json so every later run
// reports its delta against them.

//go:embed analysis_baseline.json
var analysisBaselineJSON []byte

// AnalysisBuildRow is one module's build cost: the full service chain
// (scev → basic → rbaa → andersen) built from an already-generated module.
type AnalysisBuildRow struct {
	Name     string  `json:"name"`
	Instrs   int     `json:"instrs"`
	Pointers int     `json:"pointers"`
	BuildMS  float64 `json:"build_ms"`
}

// AnalysisQueryBench is the uncached Manager query benchmark (allocation
// accounting via testing.Benchmark, so allocs/op matches `go test -benchmem`).
type AnalysisQueryBench struct {
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// PlannerBench is the batch-planner section of the analysis report: one
// full pair sweep of the largest corpus module answered by the sweep-line
// planner versus the legacy chain, with the partition counters of a single
// sweep (groups formed, pairs short-circuited, fallback rate).
type PlannerBench struct {
	Module        string  `json:"module"`
	PairsPerSweep int     `json:"pairs_per_sweep"`
	Groups        int64   `json:"groups"`
	SweepNoAlias  int64   `json:"sweep_noalias"`
	IndexPairs    int64   `json:"index_pairs"`
	FallbackPairs int64   `json:"fallback_pairs"`
	FallbackRate  float64 `json:"fallback_rate"`
	// Per-pair costs of a whole-module sweep: the legacy chain with its
	// default memo cache (so iterations past the first measure the cache-hit
	// path — the planner's real competitor) versus plan + evaluate.
	ManagerNsPerPair float64 `json:"manager_ns_per_pair"`
	PlannerNsPerPair float64 `json:"planner_ns_per_pair"`
	SpeedupX         float64 `json:"speedup_x"`
}

// AnalysisReport is the BENCH_analysis.json schema.
type AnalysisReport struct {
	Schema       string             `json:"schema"`
	Corpus       string             `json:"corpus"`
	Builds       []AnalysisBuildRow `json:"builds"`
	BuildTotalMS float64            `json:"build_total_ms"`
	// ExprsInterned / InternHits are the symbolic interner's counter *deltas
	// over this bench run* (snapshot before minus snapshot after), so the
	// small-constant table pre-interned at process init does not count.
	// Zero ExprsInterned therefore really means the interner fell out of
	// the build path — the CI smoke step fails on it.
	ExprsInterned int64              `json:"exprs_interned"`
	InternHits    int64              `json:"intern_hits"`
	Query         AnalysisQueryBench `json:"manager_query"`
	// Planner benchmarks the compiled-index batch path (absent in reports
	// from before the sweep-line planner existed, including the baseline).
	Planner *PlannerBench `json:"batch_planner,omitempty"`
	// Baseline is the report recorded before the representation change
	// (hash-consing + flat MemLocs + bitset Andersen), embedded at build
	// time; the *X fields are current-vs-baseline ratios (>1 is better).
	Baseline        *AnalysisReport `json:"baseline,omitempty"`
	AllocReductionX float64         `json:"alloc_reduction_x,omitempty"`
	BuildSpeedupX   float64         `json:"build_speedup_x,omitempty"`
	QuerySpeedupX   float64         `json:"query_speedup_x,omitempty"`
}

// internerCounters snapshots the symbolic interner: distinct hash-consed
// nodes and constructor calls served by an existing node.
func internerCounters() (interned, hits int64) {
	st := symbolic.Default().Stats()
	return st.Interned, st.Hits
}

// RunAnalysisBench measures the analysis core on the Fig. 13 corpus:
// per-module full-chain build time, interner counters, and the uncached
// Manager query benchmark on the largest module (espresso).
func (d *Driver) RunAnalysisBench() AnalysisReport {
	rep := AnalysisReport{Schema: "bench_analysis/v1", Corpus: "fig13"}
	internedBefore, hitsBefore := internerCounters()

	for _, c := range benchgen.Fig13Configs() {
		m := benchgen.Generate(c)
		st := m.Stats()
		start := time.Now()
		mgr := alias.NewManager(
			alias.ManagerOptions{Label: "scev+basic+rbaa+andersen", CacheLimit: -1},
			scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}), andersen.Analyze(m))
		elapsed := time.Since(start)
		_ = mgr
		rep.Builds = append(rep.Builds, AnalysisBuildRow{
			Name:     c.Name,
			Instrs:   st.Instrs,
			Pointers: st.Pointers,
			BuildMS:  float64(elapsed.Microseconds()) / 1000.0,
		})
		rep.BuildTotalMS += float64(elapsed.Microseconds()) / 1000.0
	}

	// Uncached Manager query benchmark on espresso: every Evaluate runs all
	// members, so allocs/op is the member-evaluation allocation budget.
	m := benchgen.Generate(benchgen.Fig13Configs()[1])
	mgr := alias.NewManager(
		alias.ManagerOptions{Label: "scev+basic+rbaa", CacheLimit: -1},
		scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}))
	qs := alias.Queries(m)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			mgr.Evaluate(q.P, q.Q)
		}
	})
	rep.Query = AnalysisQueryBench{
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
		BytesPerOp:  float64(res.AllocedBytesPerOp()),
	}
	if res.NsPerOp() > 0 {
		rep.Query.QueriesPerSec = 1e9 / float64(res.NsPerOp())
	}

	// Close the interner measurement window before the planner bench: its
	// own WideBatch chain builds would otherwise contaminate the
	// analysis-core trajectory the PR 4 baseline established.
	internedAfter, hitsAfter := internerCounters()
	rep.ExprsInterned = internedAfter - internedBefore
	rep.InternHits = hitsAfter - hitsBefore

	rep.Planner = benchPlanner()

	if base := loadAnalysisBaseline(); base != nil {
		rep.Baseline = base
		if rep.Query.AllocsPerOp > 0 {
			rep.AllocReductionX = base.Query.AllocsPerOp / rep.Query.AllocsPerOp
		}
		if rep.BuildTotalMS > 0 {
			rep.BuildSpeedupX = base.BuildTotalMS / rep.BuildTotalMS
		}
		if rep.Query.NsPerOp > 0 {
			rep.QuerySpeedupX = base.Query.NsPerOp / rep.Query.NsPerOp
		}
	}
	return rep
}

// benchPlanner measures the batch planner on the service chain over the
// wide-function module benchgen.WideBatch (the aliasload bigbatch workload
// in miniature: ~512 pointers, ~130k same-function pairs — small enough
// that the legacy Manager's memo holds every pair, so the comparison is
// against a *warm* cache, the legacy path's best case): a full all-pairs
// sweep per iteration, planner (plan + sweep/index/fallback) versus the
// cached chain.
func benchPlanner() *PlannerBench {
	m := benchgen.WideBatch("widebatch", 512)
	newChain := func() *alias.Manager {
		return alias.NewManager(
			alias.ManagerOptions{Label: "scev+basic+rbaa+andersen"},
			scevaa.New(m), basicaa.New(m), rbaa.New(m, pointer.Options{}), andersen.Analyze(m))
	}
	qs := alias.Queries(m)
	if len(qs) == 0 {
		return nil
	}
	// Shard the enumeration by function, as the service pipeline does.
	type funcShard struct {
		pairs []alias.Pair
		vals  []*ir.Value
	}
	var shards []funcShard
	shardOf := map[*ir.Func]int{}
	for _, q := range qs {
		si, ok := shardOf[q.P.Func]
		if !ok {
			si = len(shards)
			shardOf[q.P.Func] = si
			shards = append(shards, funcShard{})
		}
		shards[si].pairs = append(shards[si].pairs, q)
		shards[si].vals = append(shards[si].vals, q.P, q.Q)
	}

	legacy := newChain()
	mgrRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				legacy.Evaluate(q.P, q.Q)
			}
		}
	})

	indexed := newChain()
	ix := alias.BuildIndex(indexed, m)
	if ix == nil {
		return nil
	}
	pl := alias.NewPlanner(indexed.Snapshot(), ix)
	sweep := func() {
		var tally alias.PlanTally
		for _, sh := range shards {
			plan := pl.Plan(sh.vals)
			for _, q := range sh.pairs {
				plan.Evaluate(q.P, q.Q, &tally)
			}
		}
		pl.Fold(tally)
	}
	sweep() // one counted sweep for the partition counters
	st := pl.Stats()
	plRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep()
		}
	})

	pb := &PlannerBench{
		Module:           m.Name,
		PairsPerSweep:    len(qs),
		Groups:           st.Groups,
		SweepNoAlias:     st.SweepNoAlias,
		IndexPairs:       st.IndexPairs,
		FallbackPairs:    st.FallbackPairs,
		FallbackRate:     st.FallbackRate(),
		ManagerNsPerPair: float64(mgrRes.NsPerOp()) / float64(len(qs)),
		PlannerNsPerPair: float64(plRes.NsPerOp()) / float64(len(qs)),
	}
	if pb.PlannerNsPerPair > 0 {
		pb.SpeedupX = pb.ManagerNsPerPair / pb.PlannerNsPerPair
	}
	return pb
}

// loadAnalysisBaseline parses the embedded pre-refactor numbers; nil when
// the embedded file is the empty bootstrap placeholder.
func loadAnalysisBaseline() *AnalysisReport {
	var base AnalysisReport
	if err := json.Unmarshal(analysisBaselineJSON, &base); err != nil || base.Schema == "" {
		return nil
	}
	base.Baseline = nil // never nest
	return &base
}

// WriteAnalysisJSON renders the report as indented JSON with a trailing
// newline.
func WriteAnalysisJSON(w io.Writer, rep AnalysisReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
