package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The embedded baseline is the contract the CI analysis-bench step checks
// current runs against; make sure it parses and the report serializer
// preserves the keys that step asserts on.

func TestAnalysisBaselineEmbedded(t *testing.T) {
	base := loadAnalysisBaseline()
	if base == nil {
		t.Fatal("embedded analysis baseline missing or unparseable")
	}
	if base.Schema != "bench_analysis/v1" {
		t.Fatalf("baseline schema = %q", base.Schema)
	}
	if base.Query.AllocsPerOp <= 0 || base.BuildTotalMS <= 0 || len(base.Builds) == 0 {
		t.Fatalf("baseline lacks the recorded pre-refactor numbers: %+v", base)
	}
	if base.Baseline != nil {
		t.Fatal("baseline must not nest a baseline")
	}
}

func TestWriteAnalysisJSONSchema(t *testing.T) {
	rep := AnalysisReport{
		Schema:        "bench_analysis/v1",
		Corpus:        "fig13",
		Builds:        []AnalysisBuildRow{{Name: "x", Instrs: 1, Pointers: 1, BuildMS: 0.5}},
		BuildTotalMS:  0.5,
		ExprsInterned: 42,
		InternHits:    99,
		Query: AnalysisQueryBench{
			NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 512, QueriesPerSec: 1e7,
		},
	}
	var buf bytes.Buffer
	if err := WriteAnalysisJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "builds", "build_total_ms", "exprs_interned", "manager_query"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q (the CI assertion reads it)", key)
		}
	}
	q := m["manager_query"].(map[string]any)
	for _, key := range []string{"ns_per_op", "allocs_per_op", "queries_per_sec"} {
		if _, ok := q[key]; !ok {
			t.Errorf("manager_query missing %q", key)
		}
	}
}
