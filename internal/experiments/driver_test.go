package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/benchgen"
)

// TestParallelMatchesSequentialTables is the determinism contract of the
// worker-pool driver: the rendered Fig. 13 and Fig. 14 tables (and the §5
// ratio line) must be byte-identical for every Parallel setting.
func TestParallelMatchesSequentialTables(t *testing.T) {
	render := func(rows []PrecisionRow) string {
		var b strings.Builder
		RenderFig13(&b, rows)
		RenderFig14(&b, rows)
		RenderRatio(&b, rows)
		return b.String()
	}
	seq := (&Driver{Parallel: 1}).RunFig13Suite()
	want := render(seq)
	for _, p := range []int{2, 8, -1} {
		got := render((&Driver{Parallel: p}).RunFig13Suite())
		if got != want {
			t.Fatalf("Parallel=%d tables differ from sequential.\n--- seq ---\n%s\n--- par ---\n%s",
				p, want, got)
		}
	}
}

// TestDriverChunkBoundaries drives the chunked sweep over query counts that
// straddle the chunk size, on one module, comparing against Parallel=1.
func TestDriverChunkBoundaries(t *testing.T) {
	cfg := benchgen.Fig13Configs()[1] // espresso, the largest query count
	m := benchgen.Generate(cfg)
	seq := (&Driver{}).RunPrecision(cfg.Name, m)
	for _, p := range []int{2, 3, 16} {
		par := (&Driver{Parallel: p}).RunPrecision(cfg.Name, m)
		if par != seq {
			t.Errorf("Parallel=%d row differs: %+v vs %+v", p, par, seq)
		}
	}
}

// TestDriverConcurrentReuse: one driver value is stateless and usable from
// several goroutines at once.
func TestDriverConcurrentReuse(t *testing.T) {
	d := &Driver{Parallel: 4}
	cfgs := benchgen.Fig13Configs()[:3]
	var wg sync.WaitGroup
	rows := make([][]PrecisionRow, 4)
	for i := range rows {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows[i] = d.RunSuite(cfgs)
		}()
	}
	wg.Wait()
	for i := 1; i < len(rows); i++ {
		for j := range rows[i] {
			if rows[i][j] != rows[0][j] {
				t.Errorf("run %d row %d differs: %+v vs %+v", i, j, rows[i][j], rows[0][j])
			}
		}
	}
}

// TestIndexedSweepMatchesChainSweep: routing the precision sweep through
// the compiled alias index must leave every Fig. 13/14 number — per-member
// no-alias counts, attribution splits, the §5 ratio — exactly as the
// per-pair chain walk produces, sequentially and chunked alike.
func TestIndexedSweepMatchesChainSweep(t *testing.T) {
	for _, cfg := range benchgen.Fig13Configs()[:5] {
		m := benchgen.Generate(cfg)
		plain := (&Driver{}).RunPrecision(cfg.Name, m)
		for _, p := range []int{1, 4} {
			indexed := (&Driver{Parallel: p, Indexed: true}).RunPrecision(cfg.Name, m)
			if indexed != plain {
				t.Errorf("%s Parallel=%d: indexed row differs:\n  indexed: %+v\n    chain: %+v",
					cfg.Name, p, indexed, plain)
			}
		}
	}
}

// TestRunScaleDriverIndependence: RunScale deliberately ignores the
// driver's parallelism (timing fidelity) — same programs, sizes and
// ordering for every setting.
func TestRunScaleDriverIndependence(t *testing.T) {
	seq := (&Driver{}).RunFig15(6)
	par := (&Driver{Parallel: 4}).RunFig15(6)
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Name != par[i].Name || seq[i].Instrs != par[i].Instrs ||
			seq[i].Pointers != par[i].Pointers {
			t.Errorf("row %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}
