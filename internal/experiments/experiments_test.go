package experiments

import (
	"strings"
	"testing"

	"repro/internal/benchgen"
)

func TestRunPrecisionInvariants(t *testing.T) {
	cfg := benchgen.Fig13Configs()[0]
	row := RunPrecision(cfg.Name, benchgen.Generate(cfg))
	if row.Queries == 0 {
		t.Fatal("no queries")
	}
	// Soundness-side invariants of the counters.
	if row.Rbaa > row.Queries || row.Basic > row.Queries || row.Scev > row.Queries {
		t.Errorf("counts exceed queries: %+v", row)
	}
	if row.RplusB < row.Rbaa || row.RplusB < row.Basic {
		t.Errorf("combination must dominate members: %+v", row)
	}
	if row.Disjoint+row.Global+row.Local != row.Rbaa {
		t.Errorf("attribution must decompose rbaa's count: %+v", row)
	}
	if row.SymOnly > row.SymTotal {
		t.Errorf("symbolic-only exceeds total: %+v", row)
	}
}

func TestTotalSums(t *testing.T) {
	rows := []PrecisionRow{
		{Name: "a", Queries: 10, Scev: 1, Basic: 2, Rbaa: 3, RplusB: 4,
			Disjoint: 1, Global: 1, Local: 1, SymOnly: 2, SymTotal: 5},
		{Name: "b", Queries: 20, Scev: 2, Basic: 4, Rbaa: 6, RplusB: 8,
			Disjoint: 2, Global: 2, Local: 2, SymOnly: 3, SymTotal: 6},
	}
	tot := Total(rows)
	if tot.Queries != 30 || tot.Rbaa != 9 || tot.RplusB != 12 || tot.SymTotal != 11 {
		t.Errorf("totals wrong: %+v", tot)
	}
}

func TestRenderers(t *testing.T) {
	rows := []PrecisionRow{{
		Name: "demo", Queries: 100, Scev: 5, Basic: 30, Rbaa: 40, RplusB: 45,
		Disjoint: 20, Global: 15, Local: 5, SymOnly: 10, SymTotal: 40,
	}}
	var b strings.Builder
	RenderFig13(&b, rows)
	out := b.String()
	for _, want := range []string{"%scev", "%rbaa", "demo", "40.00", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig13 render missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	RenderFig14(&b, rows)
	if !strings.Contains(b.String(), "global test share") {
		t.Errorf("Fig14 render missing share line:\n%s", b.String())
	}
	b.Reset()
	RenderRatio(&b, rows)
	if !strings.Contains(b.String(), "25.00%") {
		t.Errorf("ratio render = %q, want 10/40 = 25.00%%", b.String())
	}
}

func TestFig15SmallRun(t *testing.T) {
	rows := RunFig15(6)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Instrs <= 0 || r.Elapsed <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	ri, rp := Fig15Correlations(rows)
	if ri < 0 || rp < 0 {
		t.Errorf("negative correlation on a growing suite: %v, %v", ri, rp)
	}
	var b strings.Builder
	RenderFig15(&b, rows)
	if !strings.Contains(b.String(), "linear correlation") {
		t.Errorf("Fig15 render missing correlation:\n%s", b.String())
	}
}
