package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestBuildReportAndWriteJSON(t *testing.T) {
	rows := []PrecisionRow{
		{Name: "a", Queries: 10, Scev: 1, Basic: 2, Rbaa: 4, RplusB: 5, Global: 2, SymOnly: 1, SymTotal: 4},
		{Name: "b", Queries: 20, Scev: 2, Basic: 4, Rbaa: 6, RplusB: 8, Global: 3, SymOnly: 1, SymTotal: 6},
	}
	scale := []ScaleRow{
		{Name: "s0", Instrs: 100, Pointers: 10, Elapsed: 2 * time.Millisecond},
		{Name: "s1", Instrs: 200, Pointers: 20, Elapsed: 4 * time.Millisecond},
	}
	rep := BuildReport(rows, scale)
	if rep.Total == nil || rep.Total.Queries != 30 || rep.Total.Rbaa != 10 {
		t.Fatalf("total = %+v", rep.Total)
	}
	if rep.GlobalSharePct != 50 {
		t.Errorf("global share = %v, want 50 (5 of 10)", rep.GlobalSharePct)
	}
	if rep.SymOnlyPct != 20 {
		t.Errorf("sym-only = %v, want 20 (2 of 10)", rep.SymOnlyPct)
	}
	if len(rep.Fig15) != 2 || rep.Fig15[1].RuntimeMS != 4 {
		t.Errorf("fig15 = %+v", rep.Fig15)
	}
	if rep.RInstr < 0.99 {
		t.Errorf("r_instr = %v for a perfectly linear series", rep.RInstr)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(round.Fig13) != 2 || round.Fig13[0].Name != "a" || round.Total.Queries != 30 {
		t.Fatalf("round-tripped report = %+v", round)
	}
}
