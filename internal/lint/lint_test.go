package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("fixture root missing: %v", err)
	}
	return root
}

func TestInternerMixScoped(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "internermix_scoped", InternerMix)
}

func TestInternerMixParams(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "internermix_params", InternerMix)
}

func TestFrozenWrite(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "frozenwrite", FrozenWrite)
}

func TestFrozenWriteCrossPackage(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "frozenwrite_ext", FrozenWrite)
}

func TestHandleLeak(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "handleleak", HandleLeak)
}

func TestCounterCopy(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "countercopy", CounterCopy)
}

func TestLockOrder(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "lockorder", LockOrder)
}

func TestPinFlow(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "pinflow", PinFlow)
}

func TestCtxCancel(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "ctxcancel", CtxCancel)
}

func TestMetricReg(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "metricreg", MetricReg)
}

// TestNolintJustification checks the directive grammar through RunAll: the
// fixture cannot use want-comments because a trailing "// want …" would parse
// as the directive's justification.
func TestNolintJustification(t *testing.T) {
	prog, err := NewLoader(fixtureRoot(t), "").Load("nolintjust")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAll(prog, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed = %d, want 2 (both recursive locks silenced)", len(res.Suppressed))
	}
	var nolintDiags []Diagnostic
	for _, d := range res.Diags {
		if d.Analyzer == "nolint" {
			nolintDiags = append(nolintDiags, d)
		} else {
			t.Errorf("unexpected surviving %s diagnostic: %s: %s", d.Analyzer, d.Pos, d.Message)
		}
	}
	if len(nolintDiags) != 1 {
		t.Fatalf("nolint findings = %d, want 1 (only the unjustified directive)", len(nolintDiags))
	}
	if got := nolintDiags[0].Message; !strings.Contains(got, "no justification") {
		t.Errorf("nolint message = %q, want mention of missing justification", got)
	}
	stale := StaleDirectives(res, []*Analyzer{LockOrder})
	if len(stale) != 1 {
		t.Fatalf("stale directives = %d, want 1 (the no-op suppression)", len(stale))
	}
	if !stale[0].Justified || stale[0].Used {
		t.Errorf("stale directive = %+v, want justified and unused", stale[0])
	}
}

// TestAnnotationsScan covers the marker extraction helpers directly.
func TestParseWant(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{`// want "abc"`, 1, true},
		{"// want `ab c`", 1, true},
		{`// want "a" "b"`, 2, true},
		{`// plain comment`, 0, false},
		{`// want`, 0, false},
	}
	for _, c := range cases {
		pats, ok := parseWant(c.in)
		if ok != c.ok || len(pats) != c.want {
			t.Errorf("parseWant(%q) = %v, %v; want %d pats, ok=%v", c.in, pats, ok, c.want, c.ok)
		}
	}
}
