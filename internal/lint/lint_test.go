package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("fixture root missing: %v", err)
	}
	return root
}

func TestInternerMixScoped(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "internermix_scoped", InternerMix)
}

func TestInternerMixParams(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "internermix_params", InternerMix)
}

func TestFrozenWrite(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "frozenwrite", FrozenWrite)
}

func TestFrozenWriteCrossPackage(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "frozenwrite_ext", FrozenWrite)
}

func TestHandleLeak(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "handleleak", HandleLeak)
}

func TestCounterCopy(t *testing.T) {
	RunFixture(t, fixtureRoot(t), "countercopy", CounterCopy)
}

// TestAnnotationsScan covers the marker extraction helpers directly.
func TestParseWant(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{`// want "abc"`, 1, true},
		{"// want `ab c`", 1, true},
		{`// want "a" "b"`, 2, true},
		{`// plain comment`, 0, false},
		{`// want`, 0, false},
	}
	for _, c := range cases {
		pats, ok := parseWant(c.in)
		if ok != c.ok || len(pats) != c.want {
			t.Errorf("parseWant(%q) = %v, %v; want %d pats, ok=%v", c.in, pats, ok, c.want, c.ok)
		}
	}
}
