package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one package loaded from source and type-checked.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is a load result: the target packages plus every module-local
// dependency (loaded from source, so annotations are visible program-wide).
type Program struct {
	Fset *token.FileSet
	// Pkgs are the packages the analyzers run over, in load order.
	Pkgs []*Package

	local map[string]*Package // every source-loaded package by import path
	ann   *annotations

	declOnce  sync.Once
	declIndex map[*types.Func]declEntry // function → declaration (dataflow.go)
	sumMu     sync.Mutex
	sums      map[string]*Summaries // per-analyzer interprocedural summaries
}

func (p *Program) allLoaded() []*Package {
	out := make([]*Package, 0, len(p.local))
	for _, pkg := range p.local {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

// Loader type-checks packages of one source tree without the go tool: import
// paths under Module resolve to directories below Root and are parsed and
// checked from source; everything else (the standard library) is delegated
// to go/importer, preferring compiled export data and falling back to the
// source importer.
type Loader struct {
	// Root is the directory of the source tree.
	Root string
	// Module is the import-path prefix the tree provides. "repro" maps
	// "repro/internal/ir" to Root/internal/ir. An empty Module maps any
	// relative-looking path below Root directly ("symbolic" → Root/symbolic)
	// — the fixture layout.
	Module string

	fset     *token.FileSet
	local    map[string]*Package
	loading  map[string]bool
	std      types.ImporterFrom
	stdFallb types.ImporterFrom
}

// NewLoader returns a loader over the tree rooted at root.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Root:   root,
		Module: module,
		fset:   fset,
		local:  map[string]*Package{},
	}
	if imp, ok := importer.Default().(types.ImporterFrom); ok {
		l.std = imp
	}
	l.stdFallb = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// dirFor maps a local import path to its directory, or "" when the path is
// not provided by this tree.
func (l *Loader) dirFor(path string) string {
	if l.Module == "" {
		if strings.Contains(path, ".") || path == "unsafe" {
			return "" // standard library or external
		}
		// Fixture layout: a path is local only if the directory exists
		// below Root — "sync" or "errors" fall through to the standard
		// importer.
		dir := filepath.Join(l.Root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return ""
		}
		return dir
	}
	if path == l.Module {
		return l.Root
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if dirLocal := l.dirFor(path); dirLocal != "" {
		pkg, err := l.load(path, dirLocal)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.std != nil {
		if p, err := l.std.ImportFrom(path, dir, mode); err == nil {
			return p, nil
		}
	}
	return l.stdFallb.ImportFrom(path, dir, mode)
}

// load parses and type-checks the package in dirLocal (memoized).
func (l *Loader) load(path, dirLocal string) (*Package, error) {
	if pkg, ok := l.local[path]; ok {
		return pkg, nil
	}
	if l.loading == nil {
		l.loading = map[string]bool{}
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dirLocal)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var firstName string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dirLocal, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if firstName == "" {
			firstName = f.Name.Name
		}
		if f.Name.Name != firstName {
			// A main package next to a library one (or vice versa) —
			// keep the majority package name; skip strays.
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dirLocal)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{PkgPath: path, Dir: dirLocal, Files: files, Types: tpkg, Info: info}
	l.local[path] = pkg
	return pkg, nil
}

// Load type-checks the named import paths (which must be local to the tree)
// and returns a Program targeting them. Dependencies below the tree are
// loaded from source as well and contribute annotations.
func (l *Loader) Load(paths ...string) (*Program, error) {
	prog := &Program{Fset: l.fset}
	for _, path := range paths {
		dir := l.dirFor(path)
		if dir == "" {
			return nil, fmt.Errorf("package %q is not below the source root", path)
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	prog.local = l.local
	prog.ann = &annotations{objs: map[types.Object]map[string]bool{}, pkgs: map[*types.Package]map[string]bool{}}
	for _, pkg := range prog.allLoaded() {
		prog.ann.scan(pkg)
	}
	return prog, nil
}

// FindPackages walks the tree below root and returns the import paths of
// every buildable package, module-prefixed. testdata, vendor, hidden and
// underscore-prefixed directories are skipped — the go tool's convention.
func FindPackages(root, module string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		imp := module
		if rel != "." {
			imp = module + "/" + filepath.ToSlash(rel)
		}
		if len(out) == 0 || out[len(out)-1] != imp {
			out = append(out, imp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	// WalkDir visits files of one directory contiguously, but be safe about
	// duplicates after sorting.
	dedup := out[:0]
	for i, p := range out {
		if i == 0 || out[i-1] != p {
			dedup = append(dedup, p)
		}
	}
	return dedup, nil
}
