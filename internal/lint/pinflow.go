package lint

import (
	"go/ast"
	"go/types"
)

// PinFlow checks the goroutine boundary of registry Handle pins —
// handleleak's blind spot by design: handleleak treats a closure capture as
// an ownership transfer and stops tracking; PinFlow picks the obligation up
// on the other side.
//
//   - A `go func(){…}()` that captures (or receives as an argument) a
//     pinned handle owns that pin: the goroutine body must Release it on
//     every path or hand it across an explicit transfer boundary — a callee
//     annotated "aliaslint:pin-transfer" (pool.Queue.Submit is the
//     blessed example).
//   - `go fn(h)` with a named callee is only allowed when fn is annotated
//     aliaslint:pin-transfer: the annotation documents which goroutine
//     releases.
//   - A closure that calls h.Release() on a captured handle but is neither
//     launched by go/defer, immediately invoked, nor passed to a
//     pin-transfer callee is a stored callback releasing on an undocumented
//     goroutine — flagged at the Release call.
var PinFlow = &Analyzer{
	Name: "pinflow",
	Doc: "flags handle pins escaping to goroutines without release-on-all-paths " +
		"or an aliaslint:pin-transfer boundary",
	Run: runPinFlow,
}

// isHandleVar reports whether v is a pointer-to-handle-typed variable.
func isHandleVar(pass *Pass, v *types.Var) bool {
	if v == nil {
		return false
	}
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return false
	}
	n := namedOf(ptr)
	return n != nil && pass.Annotated(n.Obj(), "handle")
}

// capturedHandleVars lists handle-typed variables the literal uses but does
// not declare (captures from the enclosing function), plus its own
// handle-typed parameters, in first-use order.
func capturedHandleVars(pass *Pass, lit *ast.FuncLit) []*types.Var {
	info := pass.TypesInfo()
	seen := map[*types.Var]bool{}
	var out []*types.Var
	add := func(v *types.Var) {
		if v != nil && !seen[v] && isHandleVar(pass, v) {
			seen[v] = true
			out = append(out, v)
		}
	}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					add(v)
				}
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pos() == 0 {
			return true
		}
		// Declared inside the literal (incl. params): not a capture.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		add(v)
		return true
	})
	return out
}

// isPinTransferCall reports whether call's callee is annotated
// aliaslint:pin-transfer.
func isPinTransferCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeObj(pass.TypesInfo(), call)
	return fn != nil && pass.Annotated(fn, "pin-transfer")
}

// releaseSpec builds the obligation spec for a handle live on entry of a
// goroutine body: discharged by h.Release() (direct or deferred) or by
// handing h to a pin-transfer callee.
func goroutineSpec(pass *Pass, v *types.Var) *obligationSpec {
	info := pass.TypesInfo()
	spec := &obligationSpec{info: info, v: v}
	spec.isRelease = func(call *ast.CallExpr) bool {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == v {
				return true
			}
		}
		if isPinTransferCall(pass, call) && spec.usesVar(call) {
			return true // handed across a documented transfer boundary
		}
		return false
	}
	return spec
}

func runPinFlow(pass *Pass) error {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPinFlow(pass, info, fd)
		}
	}
	return nil
}

func checkPinFlow(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Classify every function literal by how it leaves the function:
	// goroutine, defer, immediate invocation, or pin-transfer argument.
	// Anything else is a stored callback.
	accounted := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			checkGoStmt(pass, info, n, accounted)
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				accounted[lit] = true // same-goroutine release at exit
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				accounted[lit] = true // immediately invoked: same goroutine
			}
			if isPinTransferCall(pass, n) {
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						accounted[lit] = true
					}
				}
			}
		}
		return true
	})
	// Stored callbacks must not release captured pins: the goroutine that
	// would run them is undocumented.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || accounted[lit] {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Release" {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := info.Uses[id].(*types.Var)
			if !isHandleVar(pass, v) || (v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"captured handle %s released from a stored closure; the releasing "+
					"goroutine is undocumented — launch it with go/defer or pass it "+
					"through an aliaslint:pin-transfer boundary", v.Name())
			return true
		})
		return true
	})
}

func checkGoStmt(pass *Pass, info *types.Info, g *ast.GoStmt, accounted map[*ast.FuncLit]bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		accounted[lit] = true
		for _, v := range capturedHandleVars(pass, lit) {
			if solveObligation(BuildCFG(lit.Body), goroutineSpec(pass, v)) {
				pass.Reportf(g.Pos(),
					"handle %s escapes to a goroutine that does not release it on "+
						"every path; the goroutine owns the pin — defer %s.Release() "+
						"or hand it to an aliaslint:pin-transfer callee",
					v.Name(), v.Name())
			}
		}
		return
	}
	// go fn(h, …): the callee decides when the pin dies — require the
	// documented transfer annotation.
	if isPinTransferCall(pass, g.Call) {
		return
	}
	for _, arg := range g.Call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		if v, _ := info.Uses[id].(*types.Var); isHandleVar(pass, v) {
			name := "the callee"
			if fn := calleeObj(info, g.Call); fn != nil {
				name = fn.Name()
			}
			pass.Reportf(g.Pos(),
				"handle %s passed to goroutine %s, which is not annotated "+
					"aliaslint:pin-transfer; the releasing goroutine must be documented",
				v.Name(), name)
		}
	}
}
