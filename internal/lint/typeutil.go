package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// isSymbolicPkgNamed reports whether t is (a pointer to) the named type
// `name` declared in a package called "symbolic". Matching by package *name*
// rather than full path keeps the analyzers testable against fixture
// packages while matching repro/internal/symbolic in the real tree.
func isSymbolicPkgNamed(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && n.Obj().Pkg().Name() == "symbolic"
}

// isInterner reports whether t is *symbolic.Interner (or symbolic.Interner).
func isInterner(t types.Type) bool { return isSymbolicPkgNamed(t, "Interner") }

// isExpr reports whether t is *symbolic.Expr (or symbolic.Expr).
func isExpr(t types.Type) bool { return isSymbolicPkgNamed(t, "Expr") }

// calleeObj resolves the function or method a call expression invokes,
// looking through parenthesization. Returns nil for calls through function
// values, conversions, and built-ins.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// enclosingFuncs returns the stack of function declarations and literals
// enclosing pos within file, outermost first.
func enclosingFuncDecl(file *ast.File, pos ast.Node) *ast.FuncDecl {
	var found *ast.FuncDecl
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || found != nil {
			return false
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			if fd.Pos() <= pos.Pos() && pos.End() <= fd.End() {
				found = fd
			}
			return false
		}
		return true
	})
	return found
}

// constructorPrefixes are function-name prefixes treated as builders: a
// function named like a constructor may initialize frozen types without an
// explicit aliaslint:mutator marker.
var constructorPrefixes = []string{"new", "New", "build", "Build", "make", "Make"}

func isConstructorName(name string) bool {
	if name == "init" {
		return true
	}
	for _, p := range constructorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// containsNoCopyType reports whether t, copied by value, would copy a
// synchronization primitive: a named struct from sync or sync/atomic, or a
// struct/array transitively containing one.
func containsNoCopyType(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if n := namedOfValue(t); n != nil {
		if pkg := n.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsNoCopyType(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsNoCopyType(u.Elem(), seen)
	}
	return false
}

// namedOfValue is namedOf without pointer unwrapping: a *sync.Mutex field is
// a reference, copying the struct does not copy the mutex.
func namedOfValue(t types.Type) *types.Named {
	switch u := t.(type) {
	case *types.Named:
		return u
	case *types.Alias:
		return namedOfValue(types.Unalias(u))
	}
	return nil
}

// typeString renders t compactly for diagnostics.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
