package lint

import (
	"go/ast"
	"go/types"
)

// CounterCopy flags by-value copies of structs that embed synchronization
// state — sync.Mutex, sync/atomic counters — in the positions vet's
// copylocks does not reach.
//
// The Manager's shards and the verdict cache's stripe counters hold
// sync.Mutex and atomic.Int64 fields by value; copying one forks the
// counter and silently drops updates. copylocks catches assignments and
// argument passing of sync.Locker values, but misses atomics entirely and
// misses the range-over-values form (`for _, s := range shards`) when the
// element carries only atomic counters. This analyzer flags:
//
//   - `for _, s := range xs` where the element type transitively contains a
//     value field from sync or sync/atomic;
//   - plain assignments `a = b` (and `a := b`) whose type does;
//   - call arguments and returns passing such a value.
//
// Index-form iteration (`for i := range xs { xs[i]... }`), pointers, and
// composite literals constructing a fresh value are all fine and not
// flagged.
var CounterCopy = &Analyzer{
	Name: "countercopy",
	Doc: "flags by-value copies of structs holding sync.Mutex or sync/atomic " +
		"counters (range-over-values, assignments, call arguments) beyond vet's copylocks",
	Run: runCounterCopy,
}

func runCounterCopy(pass *Pass) error {
	info := pass.TypesInfo()

	noCopy := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return false
		}
		return containsNoCopyType(t, nil)
	}
	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		// Range-statement key/value variables are definitions, not typed
		// expressions: resolve the ident through Defs/Uses.
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				return obj.Type()
			}
			if obj := info.Uses[id]; obj != nil {
				return obj.Type()
			}
		}
		return nil
	}
	// freshValue reports expressions that construct a new value rather than
	// copy an existing one: composite literals, conversions of literals,
	// and calls (the callee owns the copy decision at its own return).
	freshValue := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			return true
		case *ast.UnaryExpr, *ast.StarExpr:
			return false
		}
		return false
	}

	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				// Only the value variable copies the element; key-only and
				// index forms are safe.
				if n.Value == nil {
					return true
				}
				t := typeOf(n.Value)
				if noCopy(t) {
					pass.Reportf(n.Value.Pos(),
						"range copies %s by value, forking its sync/atomic state; "+
							"iterate by index (for i := range …) or over pointers",
						typeString(t))
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) != len(n.Rhs) {
						break // multi-value call form; covered by call returns
					}
					if freshValue(rhs) {
						continue
					}
					// Skip dereference-free moves into blank.
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					t := typeOf(rhs)
					if noCopy(t) {
						pass.Reportf(rhs.Pos(),
							"assignment copies %s by value, forking its sync/atomic state; "+
								"use a pointer",
							typeString(t))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if freshValue(arg) {
						continue
					}
					t := typeOf(arg)
					if noCopy(t) {
						pass.Reportf(arg.Pos(),
							"call passes %s by value, forking its sync/atomic state; "+
								"pass a pointer",
							typeString(t))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if freshValue(r) {
						continue
					}
					t := typeOf(r)
					if noCopy(t) {
						pass.Reportf(r.Pos(),
							"return copies %s by value, forking its sync/atomic state; "+
								"return a pointer",
							typeString(t))
					}
				}
			}
			return true
		})
	}
	return nil
}
