package lint

import (
	"go/ast"
	"go/types"
)

// CtxCancel enforces the context lifecycle in the service and pool layers —
// the stdlib lostcancel analysis rebuilt on the obligation dataflow, plus a
// structural rule:
//
//   - every cancel function returned by context.WithCancel / WithTimeout /
//     WithDeadline / WithCancelCause must be called on every path from the
//     derivation (defer cancel() is the canonical discharge; passing the
//     cancel function to another function or capturing it in a closure
//     hands the obligation off);
//   - discarding the cancel function with `_` is always a finding;
//   - context.Context must not be stored in a struct field — contexts are
//     request-scoped and flow through call parameters, never through
//     long-lived state.
var CtxCancel = &Analyzer{
	Name: "ctxcancel",
	Doc: "flags context cancel functions not called on every path and " +
		"context.Context struct fields",
	Run: runCtxCancel,
}

// contextDerivations are the context constructors returning a cancel func.
var contextDerivations = map[string]bool{
	"WithCancel":      true,
	"WithTimeout":     true,
	"WithDeadline":    true,
	"WithCancelCause": true,
}

// isContextDerivation reports whether call is context.WithCancel & friends.
func isContextDerivation(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeObj(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "context" {
		return "", false
	}
	if !contextDerivations[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

func runCtxCancel(pass *Pass) error {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				for _, body := range funcBodies(d.Body) {
					checkCancelBody(pass, info, body)
				}
			case *ast.GenDecl:
				checkContextFields(pass, info, d)
			}
		}
	}
	return nil
}

// checkContextFields flags struct fields of type context.Context.
func checkContextFields(pass *Pass, info *types.Info, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			n := namedOf(tv.Type)
			if n == nil {
				continue
			}
			if obj := n.Obj(); obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Name() == "context" {
				pass.Reportf(field.Pos(),
					"context.Context stored in a struct field of %s; contexts are "+
						"request-scoped — thread them through call parameters", ts.Name.Name)
			}
		}
	}
}

// checkCancelBody runs the cancel-obligation dataflow over one function
// body.
func checkCancelBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	type derivation struct {
		name   string
		cancel *types.Var
		acq    ast.Node
		pos    ast.Node
	}
	var derivs []derivation
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isContextDerivation(info, call)
		if !ok {
			return true
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(),
				"the cancel function returned by context.%s is discarded; the "+
					"derived context can never be cancelled", name)
			return true
		}
		cv, _ := lhsVar(info, as, 1)
		if cv == nil {
			return true
		}
		derivs = append(derivs, derivation{name: name, cancel: cv, acq: as, pos: call})
		return true
	})
	if len(derivs) == 0 {
		return
	}
	g := BuildCFG(body)
	for _, d := range derivs {
		cv := d.cancel
		spec := &obligationSpec{
			info: info,
			v:    cv,
			acq:  d.acq,
			// Passing the cancel function anywhere hands the obligation off —
			// unlike a handle pin, a cancel func has no borrow semantics.
			argTransfers: true,
			isRelease: func(call *ast.CallExpr) bool {
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				return ok && info.Uses[id] == cv
			},
		}
		if solveObligation(g, spec) {
			pass.Reportf(d.pos.Pos(),
				"the cancel function returned by context.%s is not called on every "+
					"path (context leak); defer cancel() right after the derivation",
				d.name)
		}
	}
}
