package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// MetricReg statically reconciles the PR 7 telemetry contracts:
//
//   - every telemetry family is registered exactly once, program-wide, with
//     a literal (or constant) name — grep-ability and the exactly-once
//     exposition invariant;
//   - no registration happens inside a loop (a loop re-registering a family
//     panics at runtime and is a cardinality bomb besides);
//   - label values passed to a Vec's With are bounded: string literals,
//     constants, concatenations of those, values produced by functions
//     annotated "aliaslint:bounded" (routeLabel), or variables all of whose
//     definitions are bounded — including across one call-site hop for
//     parameters. Anything else risks unbounded label cardinality;
//   - scrape-time callbacks (GaugeFunc/CounterFunc/Collect) must not take a
//     lock that an "aliaslint:hotpath" function may also hold — the PR 7
//     "scrapes never contend with the query path" contract, checked through
//     the interprocedural lock summaries of locks.go. Striped stripe locks
//     that are held O(1) by design opt out via "aliaslint:striped" on the
//     mutex field.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc: "enforces telemetry registration discipline: literal once-only family " +
		"names, bounded label cardinality, and lock-free scrapes against " +
		"aliaslint:hotpath code",
	Run: runMetricReg,
}

// registrationMethods maps telemetry.Registry methods to the argument index
// of their scrape callback (-1: no callback).
var registrationMethods = map[string]int{
	"Counter":      -1,
	"CounterFunc":  2,
	"CounterVec":   -1,
	"Gauge":        -1,
	"GaugeFunc":    2,
	"Histogram":    -1,
	"HistogramVec": -1,
	"Collect":      4,
}

// telemetryMethod resolves call to a method on a named type declared in a
// package called "telemetry" (name-matching keeps fixtures loadable, as with
// isSymbolicPkgNamed) and returns the receiver type name and method name.
func telemetryMethod(info *types.Info, call *ast.CallExpr) (recv, meth string) {
	fn := calleeObj(info, call)
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	n := namedOf(sig.Recv().Type())
	if n == nil {
		return "", ""
	}
	if pkg := n.Obj().Pkg(); pkg == nil || pkg.Name() != "telemetry" {
		return "", ""
	}
	return n.Obj().Name(), fn.Name()
}

// metricState is the program-wide registration index.
type metricState struct {
	mu       sync.Mutex
	families map[string]token.Position
}

func metricStateOf(prog *Program) *metricState {
	v := prog.SummaryStore("metricreg").Memo(nil, func() any {
		return &metricState{families: map[string]token.Position{}}
	})
	return v.(*metricState)
}

func runMetricReg(pass *Pass) error {
	info := pass.TypesInfo()
	state := metricStateOf(pass.Prog)
	hot := hotpathLocks(pass.Prog)
	dus := map[*ast.FuncDecl]*DefUse{}

	for _, file := range pass.Files() {
		// Loop extents, for the no-registration-in-loops rule.
		var loops [][2]token.Pos
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
			}
			return true
		})
		inLoop := func(pos token.Pos) bool {
			for _, r := range loops {
				if r[0] <= pos && pos < r[1] {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, meth := telemetryMethod(info, call)
			if recv == "" {
				return true
			}
			if meth == "With" {
				checkWithArgs(pass, file, dus, call)
				return true
			}
			cbIdx, isReg := registrationMethods[meth]
			if recv != "Registry" || !isReg || len(call.Args) == 0 {
				return true
			}
			checkRegistration(pass, state, file, dus, call, meth, inLoop(call.Pos()))
			if cbIdx >= 0 && cbIdx < len(call.Args) {
				checkScrapeCallback(pass, hot, call.Args[cbIdx])
			}
			return true
		})
	}
	return nil
}

// checkRegistration enforces literal once-only family names outside loops.
// A name that is a parameter of a registration helper — a named function or
// a function literal bound to a local variable — counts as one registration
// per helper call site, provided every site passes a string constant (the
// perModule/perPlanner idiom in internal/service).
func checkRegistration(pass *Pass, state *metricState, file *ast.File, dus map[*ast.FuncDecl]*DefUse, call *ast.CallExpr, meth string, inLoop bool) {
	info := pass.TypesInfo()
	name, ok := constString(info, call.Args[0])
	if !ok {
		if sites, hopOK := helperConstNames(pass, file, dus, call); hopOK {
			for _, s := range sites {
				registerFamily(pass, state, s.name, s.pos)
			}
			return
		}
		pass.Reportf(call.Args[0].Pos(),
			"telemetry family name passed to %s must be a string literal or "+
				"constant so registrations are grep-able and provably unique", meth)
		return
	}
	if inLoop {
		pass.Reportf(call.Pos(),
			"telemetry family %q registered inside a loop; families are "+
				"registered exactly once at startup", name)
	}
	registerFamily(pass, state, name, call.Pos())
}

// registerFamily records one family registration and reports duplicates.
func registerFamily(pass *Pass, state *metricState, name string, pos token.Pos) {
	state.mu.Lock()
	first, dup := state.families[name]
	if !dup {
		state.families[name] = pass.Fset().Position(pos)
	}
	state.mu.Unlock()
	if dup {
		pass.Reportf(pos,
			"telemetry family %q registered more than once (first registration "+
				"at %s)", name, first)
	}
}

// nameSite is one resolved helper call site: the constant family name it
// passes and where.
type nameSite struct {
	name string
	pos  token.Pos
}

// helperConstNames resolves a non-constant family-name argument through one
// helper hop. Two shapes are recognized:
//
//   - the name is a parameter of the enclosing function declaration: every
//     program-wide call site must pass a string constant;
//   - the name is a parameter of a function literal bound once to a local
//     variable that is only ever called (the perModule idiom): every call of
//     that variable must pass a string constant.
func helperConstNames(pass *Pass, file *ast.File, dus map[*ast.FuncDecl]*DefUse, call *ast.CallExpr) ([]nameSite, bool) {
	info := pass.TypesInfo()
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		return nil, false
	}
	fd := enclosingFuncDecl(file, call)
	if fd == nil {
		return nil, false
	}

	// Shape 1: parameter of the enclosing declaration.
	if idx := paramIndexOf(info, fd.Type, v); idx >= 0 {
		fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			return nil, false
		}
		return constNamesAtCallSites(pass, fn, idx)
	}

	// Shape 2: parameter of a literal bound to a local helper variable.
	var lit *ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || lit != nil {
			return lit == nil
		}
		if paramIndexOf(info, fl.Type, v) >= 0 {
			lit = fl
			return false
		}
		return true
	})
	if lit == nil {
		return nil, false
	}
	idx := paramIndexOf(info, lit.Type, v)

	var bind *types.Var
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) != ast.Expr(lit) {
				continue
			}
			if lid, ok := as.Lhs[i].(*ast.Ident); ok {
				if b, ok := info.Defs[lid].(*types.Var); ok {
					bind = b
				}
			}
		}
		return true
	})
	if bind == nil {
		return nil, false
	}
	du := dus[fd]
	if du == nil {
		du = ComputeDefUse(info, fd)
		dus[fd] = du
	}
	// The helper variable must be immutable (single definition, address
	// never taken) and only ever appear as a call target.
	if du.Impure[bind] || len(du.Defs[bind]) != 1 {
		return nil, false
	}
	var sites []*ast.CallExpr
	escaped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			if uid, ok := n.(*ast.Ident); ok && info.Uses[uid] == bind {
				escaped = true // a use we are not tracking as a call below
			}
			return true
		}
		if fid, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && info.Uses[fid] == bind {
			sites = append(sites, c)
			// Walk args only: the Fun ident is the tracked call use.
			for _, a := range c.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if uid, ok := m.(*ast.Ident); ok && info.Uses[uid] == bind {
						escaped = true
					}
					return true
				})
			}
			return false
		}
		return true
	})
	if escaped || len(sites) == 0 {
		return nil, false
	}
	var out []nameSite
	for _, c := range sites {
		if idx >= len(c.Args) {
			return nil, false
		}
		name, ok := constString(info, c.Args[idx])
		if !ok {
			return nil, false
		}
		out = append(out, nameSite{name: name, pos: c.Pos()})
	}
	return out, true
}

// paramIndexOf returns v's index in the function type's parameter list, or
// -1 when v is not one of its parameters.
func paramIndexOf(info *types.Info, ft *ast.FuncType, v *types.Var) int {
	if ft.Params == nil {
		return -1
	}
	idx := 0
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			if info.Defs[name] == types.Object(v) {
				return idx
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return -1
}

// constNamesAtCallSites collects the constant string passed at parameter idx
// of every program-wide call of fn; any non-constant site fails the hop.
func constNamesAtCallSites(pass *Pass, fn *types.Func, idx int) ([]nameSite, bool) {
	sig := fn.Type().(*types.Signature)
	var out []nameSite
	for _, pkg := range pass.Prog.allLoaded() {
		for _, file := range pkg.Files {
			bad := false
			ast.Inspect(file, func(n ast.Node) bool {
				c, ok := n.(*ast.CallExpr)
				if !ok || bad || calleeObj(pkg.Info, c) != fn {
					return !bad
				}
				args := argsForParam(sig, idx, c.Args)
				if len(args) != 1 {
					bad = true
					return false
				}
				name, ok := constString(pkg.Info, args[0])
				if !ok {
					bad = true
					return false
				}
				out = append(out, nameSite{name: name, pos: c.Pos()})
				return true
			})
			if bad {
				return nil, false
			}
		}
	}
	return out, len(out) > 0
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// ---- label boundedness -------------------------------------------------

// checkWithArgs verifies each label value of a Vec.With call is bounded.
func checkWithArgs(pass *Pass, file *ast.File, dus map[*ast.FuncDecl]*DefUse, call *ast.CallExpr) {
	fd := enclosingFuncDecl(file, call)
	if fd == nil {
		return
	}
	du := dus[fd]
	if du == nil {
		du = ComputeDefUse(pass.TypesInfo(), fd)
		dus[fd] = du
	}
	for _, arg := range call.Args {
		if !boundedLabel(pass, pass.Pkg, du, arg, 2) {
			pass.Reportf(arg.Pos(),
				"label value is not provably bounded (want a literal, constant, "+
					"aliaslint:bounded call, or a variable with only bounded "+
					"definitions); unbounded label sets blow up the exposition")
		}
	}
}

// boundedLabel reports whether e provably evaluates to one of a bounded set
// of strings. depth limits the call-site hops followed for parameters.
func boundedLabel(pass *Pass, pkg *Package, du *DefUse, e ast.Expr, depth int) bool {
	e = ast.Unparen(e)
	info := pkg.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true // any constant is a one-element set
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return boundedLabel(pass, pkg, du, x.X, depth) && boundedLabel(pass, pkg, du, x.Y, depth)
		}
	case *ast.CallExpr:
		fn := calleeObj(info, x)
		return fn != nil && pass.Annotated(fn, "bounded")
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if du != nil && du.Params[v] {
			return depth > 0 && paramBounded(pass, v, depth-1)
		}
		if du == nil || du.Impure[v] || len(du.Defs[v]) == 0 {
			return false
		}
		for _, def := range du.Defs[v] {
			if !boundedLabel(pass, pkg, du, def, depth) {
				return false
			}
		}
		return true
	}
	return false
}

// paramBounded checks every call site of the parameter's function: the
// parameter is bounded when each site passes a bounded argument.
func paramBounded(pass *Pass, param *types.Var, depth int) bool {
	fn, idx := paramOwner(pass.Prog, param)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	sites := 0
	for _, pkg := range pass.Prog.allLoaded() {
		for _, file := range pkg.Files {
			ok := true
			ast.Inspect(file, func(n ast.Node) bool {
				if !ok {
					return false
				}
				call, isCall := n.(*ast.CallExpr)
				if !isCall || calleeObj(pkg.Info, call) != fn {
					return true
				}
				fd := enclosingFuncDecl(file, call)
				var du *DefUse
				if fd != nil {
					du = ComputeDefUse(pkg.Info, fd)
				}
				args := argsForParam(sig, idx, call.Args)
				if len(args) == 0 && !sig.Variadic() {
					ok = false // can't see the argument (e.g. f(g()) splat)
					return true
				}
				sites++
				for _, a := range args {
					if !boundedLabel(pass, pkg, du, a, depth) {
						ok = false
					}
				}
				return true
			})
			if !ok {
				return false
			}
		}
	}
	return sites > 0
}

// paramOwner finds the function declaring param and its index in the
// signature.
func paramOwner(prog *Program, param *types.Var) (*types.Func, int) {
	for _, pkg := range prog.allLoaded() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig := fn.Type().(*types.Signature)
				for i := 0; i < sig.Params().Len(); i++ {
					if sig.Params().At(i) == param {
						return fn, i
					}
				}
			}
		}
	}
	return nil, -1
}

// argsForParam maps a parameter index to the call arguments bound to it
// (several for a variadic tail).
func argsForParam(sig *types.Signature, idx int, args []ast.Expr) []ast.Expr {
	if sig.Variadic() && idx >= sig.Params().Len()-1 {
		if sig.Params().Len()-1 < len(args) {
			return args[sig.Params().Len()-1:]
		}
		return nil
	}
	if idx < len(args) {
		return args[idx : idx+1]
	}
	return nil
}

// ---- scrape-vs-hotpath locks -------------------------------------------

// hotpathLocks unions the may-acquire lock summaries of every function
// annotated aliaslint:hotpath, memoized program-wide.
func hotpathLocks(prog *Program) lockSet {
	v := prog.SummaryStore("metricreg-hot").Memo(nil, func() any {
		out := lockSet{}
		for _, fn := range prog.annotatedFuncs("hotpath") {
			for o, bits := range lockSummaryOf(prog, fn) {
				out[o] |= bits
			}
		}
		return out
	})
	return v.(lockSet)
}

// checkScrapeCallback intersects the callback's transitive lock set with the
// hot path's. A shared/shared overlap (RLock on both sides) is fine; any
// exclusive side contends.
func checkScrapeCallback(pass *Pass, hot lockSet, cb ast.Expr) {
	info := pass.TypesInfo()
	set := lockSet{}
	switch x := ast.Unparen(cb).(type) {
	case *ast.FuncLit:
		collectLocks(pass.Prog, info, x, set, map[*types.Func]bool{})
	default:
		var fn *types.Func
		switch y := x.(type) {
		case *ast.Ident:
			fn, _ = info.Uses[y].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = info.Uses[y.Sel].(*types.Func)
		}
		if fn == nil {
			return
		}
		set = lockSummaryOf(pass.Prog, fn)
	}
	var objs []*types.Var
	for obj := range set {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		bits := set[obj]
		if pass.Annotated(obj, "striped") {
			continue // stripe locks held O(1) opt out explicitly
		}
		hotBits, shared := hot[obj]
		if !shared {
			continue
		}
		if bits&lockExcl != 0 || hotBits&lockExcl != 0 {
			pass.Reportf(cb.Pos(),
				"scrape callback acquires %s, which aliaslint:hotpath code also "+
					"takes; scrapes must not contend with the query path (use "+
					"atomics, or mark a bounded stripe aliaslint:striped)",
				lockName(obj))
		}
	}
}
