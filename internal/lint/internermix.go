package lint

import (
	"go/ast"
	"go/types"
)

// InternerMix flags call sites that construct or combine symbolic
// expressions without a single identifiable interner source.
//
// Two checks:
//
//  1. Default-interner leaves in per-module code. In a package whose
//     package comment carries "aliaslint:interner-scoped", any call to a
//     function annotated "aliaslint:default-interner" (the package-level
//     symbolic leaf constructors Const, Sym, Zero, One) is flagged:
//     per-module analysis paths must derive their interner from context —
//     an Interner carried by the analysis, or Expr.Owner() of an operand —
//     so that switching a module to an isolated interner is a one-line
//     change rather than a hunt for hidden Default uses.
//
//  2. Cross-parameter mixing. A function that receives two or more distinct
//     *symbolic.Interner parameters and feeds expressions derived from
//     different ones into a combining operation (symbolic.Add, Compare,
//     Equal, an Expr==Expr comparison, …) is flagged: expressions from
//     different interners must never meet in one operation — the
//     constructors panic at runtime; this reports the mix at compile time.
var InternerMix = &Analyzer{
	Name: "internermix",
	Doc: "flags symbolic-expression construction without an identifiable interner source: " +
		"Default-interner leaf constructors in interner-scoped packages, and operations " +
		"combining expressions derived from two different interner parameters",
	Run: runInternerMix,
}

func runInternerMix(pass *Pass) error {
	info := pass.TypesInfo()
	scoped := pass.PkgAnnotated(pass.Pkg.Types, "interner-scoped")
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && scoped {
				if fn := calleeObj(info, call); fn != nil && pass.Annotated(fn, "default-interner") {
					pass.Reportf(call.Pos(),
						"call to %s.%s constructs a symbolic expression in the process-wide Default interner "+
							"from interner-scoped code; derive the interner from context "+
							"(an operand's Owner() or the analysis' Interner)",
						fn.Pkg().Name(), fn.Name())
				}
			}
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkInternerParams(pass, fd)
				return true
			}
			return true
		})
	}
	return nil
}

// checkInternerParams runs the cross-parameter taint check over one
// function declaration.
func checkInternerParams(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo()

	// Collect the *symbolic.Interner parameters (including the receiver).
	var interners []*types.Var
	addParam := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isInterner(v.Type()) {
					interners = append(interners, v)
				}
			}
		}
	}
	addParam(fd.Recv)
	addParam(fd.Type.Params)
	if len(interners) < 2 {
		return
	}
	paramBit := map[*types.Var]uint{}
	for i, v := range interners {
		paramBit[v] = uint(1) << uint(i)
	}

	// taint[obj] is the bitset of interner parameters the variable's value
	// derives from. The walk is a single forward pass in source order —
	// enough for straight-line construction code, which is where this
	// pattern occurs.
	taint := map[types.Object]uint{}

	// exprTaint computes the union of interner-parameter taints reachable
	// from e. Any identifier that is an interner parameter or a tainted
	// variable contributes.
	var exprTaint func(e ast.Expr) uint
	exprTaint = func(e ast.Expr) uint {
		var mask uint
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			if v, ok := obj.(*types.Var); ok {
				if bit, ok := paramBit[v]; ok {
					mask |= bit
				} else {
					mask |= taint[v]
				}
			}
			return true
		})
		return mask
	}

	report := func(pos ast.Node, what string, a, b uint) {
		names := func(mask uint) string {
			for i, v := range interners {
				if mask&(1<<uint(i)) != 0 {
					return v.Name()
				}
			}
			return "?"
		}
		pass.Reportf(pos.Pos(),
			"%s combines expressions derived from different interner parameters (%s vs %s); "+
				"expressions from two interners must never meet in one operation",
			what, names(a), names(b))
	}

	// disjoint reports whether two non-empty taints share no source.
	disjoint := func(a, b uint) bool { return a != 0 && b != 0 && a&b == 0 }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil {
					taint[obj] |= exprTaint(rhs)
				}
			}
		case *ast.CallExpr:
			// A symbolic-package call with two or more Expr arguments from
			// disjoint taints is a mix.
			fn := calleeObj(info, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "symbolic" {
				return true
			}
			var exprArgs []ast.Expr
			for _, arg := range n.Args {
				if tv, ok := info.Types[arg]; ok && isExpr(tv.Type) {
					exprArgs = append(exprArgs, arg)
				}
			}
			// A method on an Expr receiver contributes the receiver too.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && isExpr(tv.Type) {
					exprArgs = append(exprArgs, sel.X)
				}
			}
			for i := 0; i < len(exprArgs); i++ {
				for j := i + 1; j < len(exprArgs); j++ {
					ta, tb := exprTaint(exprArgs[i]), exprTaint(exprArgs[j])
					if disjoint(ta, tb) {
						report(n, "call to symbolic."+fn.Name(), ta, tb)
						return true
					}
				}
			}
		case *ast.BinaryExpr:
			// Expr == Expr across interners is always false (pointer
			// identity) — a comparison that cannot mean what it says.
			if n.Op.String() != "==" && n.Op.String() != "!=" {
				return true
			}
			tx, okx := info.Types[n.X]
			ty, oky := info.Types[n.Y]
			if okx && oky && isExpr(tx.Type) && isExpr(ty.Type) {
				ta, tb := exprTaint(n.X), exprTaint(n.Y)
				if disjoint(ta, tb) {
					report(n, "pointer comparison of *symbolic.Expr", ta, tb)
				}
			}
		}
		return true
	})
}
