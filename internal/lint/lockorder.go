package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder flags inconsistent mutex acquisition order — the static-lock-
// graph analysis behind the registry/cache/pool concurrency story. A
// held-set dataflow (union join over the CFG) tracks which mutexes may be
// held at each acquisition; every "acquire B while holding A" adds the edge
// A→B to a program-wide lock graph, including acquisitions reached through
// local callees via the interprocedural may-acquire summaries of locks.go.
// A cycle in the graph is a potential deadlock and is reported once at each
// participating in-package acquisition site. Acquiring a lock that the
// held-set says is already exclusively held through the same receiver
// expression is reported as a self-deadlock.
//
// Deferred unlocks keep the lock held for the rest of the function (that is
// their point); `go` statements start a fresh goroutine, so neither the
// held set nor the callee's locks order against the caller's.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "flags lock-order inversion cycles and recursive acquisitions via a " +
		"held-set dataflow and a program-wide static lock graph",
	Run: runLockOrder,
}

// heldEntry is one held lock: its mode bits and the receiver expression it
// was acquired through (for self-deadlock precision across shard loops:
// two distinct shards share a field identity but not a rendered receiver).
type heldEntry struct {
	bits uint8
	text string
}

type heldFact map[*types.Var]heldEntry

// lockOrderProblem is the held-set dataflow for one function body.
type lockOrderProblem struct {
	prog  *Program
	info  *types.Info
	graph *lockGraph

	// findings dedups self-deadlock reports across fixpoint revisits.
	findings map[token.Pos]string
}

func (p *lockOrderProblem) Entry() any              { return heldFact{} }
func (p *lockOrderProblem) FlowEdge(e *CEdge, f any) any { return f }

func (p *lockOrderProblem) Join(a, b any) any {
	fa, fb := a.(heldFact), b.(heldFact)
	out := make(heldFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	for k, v := range fb {
		if old, ok := out[k]; ok {
			old.bits |= v.bits
			out[k] = old
		} else {
			out[k] = v
		}
	}
	return out
}

func (p *lockOrderProblem) Equal(a, b any) bool {
	fa, fb := a.(heldFact), b.(heldFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func (p *lockOrderProblem) Transfer(n ast.Node, fact any) any {
	switch n.(type) {
	case *ast.DeferStmt:
		// Deferred unlocks run at function exit; the lock stays held here.
		return fact
	case *ast.GoStmt:
		// A new goroutine: its acquisitions do not order against ours.
		return fact
	}
	held := fact.(heldFact)
	copied := false
	mutate := func() heldFact {
		if !copied {
			cp := make(heldFact, len(held))
			for k, v := range held {
				cp[k] = v
			}
			held, copied = cp, true
		}
		return held
	}
	inspectNodeShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, text, meth := mutexMethod(p.info, call); obj != nil {
			switch meth {
			case "Lock", "TryLock", "RLock", "TryRLock":
				bits := uint8(lockExcl)
				if strings.HasPrefix(meth, "R") || strings.HasPrefix(meth, "TryR") {
					bits = lockShared
				}
				if e, ok := held[obj]; ok && e.bits&lockExcl != 0 && bits == lockExcl && e.text == text {
					p.note(call.Pos(), fmt.Sprintf(
						"%s locked again while already held (self-deadlock)", text))
				}
				for h := range held {
					if h != obj {
						p.graph.addEdge(h, obj, call.Pos(),
							fmt.Sprintf("%s while holding %s", lockName(obj), lockName(h)))
					}
				}
				e := mutate()[obj]
				e.bits |= bits
				if e.text == "" {
					e.text = text
				}
				mutate()[obj] = e
			case "Unlock", "RUnlock":
				if _, ok := held[obj]; ok {
					delete(mutate(), obj)
				}
			}
			return true
		}
		if callee := calleeObj(p.info, call); callee != nil && len(held) > 0 {
			for acq := range lockSummaryOf(p.prog, callee) {
				for h := range held {
					if h != acq {
						p.graph.addEdge(h, acq, call.Pos(), fmt.Sprintf(
							"%s via %s while holding %s", lockName(acq), callee.Name(), lockName(h)))
					}
				}
			}
		}
		return true
	})
	return held
}

func (p *lockOrderProblem) note(pos token.Pos, msg string) {
	if p.findings == nil {
		p.findings = map[token.Pos]string{}
	}
	p.findings[pos] = msg
}

// inspectNodeShallow walks one CFG node without descending into function
// literals (their bodies are separate CFGs).
func inspectNodeShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}

func runLockOrder(pass *Pass) error {
	graph := lockGraphOf(pass.Prog)
	prob := &lockOrderProblem{prog: pass.Prog, info: pass.TypesInfo(), graph: graph}
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, body := range funcBodies(fd.Body) {
				Fixpoint(BuildCFG(body), prob)
			}
		}
	}
	// Self-deadlocks, sorted for determinism.
	var poss []token.Pos
	for pos := range prob.findings {
		poss = append(poss, pos)
	}
	sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
	for _, pos := range poss {
		pass.Reportf(pos, "%s", prob.findings[pos])
	}
	// Cycle detection over the accumulated graph. A cycle is reported once,
	// at each of its in-package edges (other packages' passes see the cycle
	// key as already reported).
	for _, c := range graph.findCycles(pass.Fset()) {
		names := make([]string, 0, len(c.nodes)+1)
		for _, n := range c.nodes {
			names = append(names, lockName(n))
		}
		names = append(names, lockName(c.nodes[0]))
		desc := strings.Join(names, " → ")
		graph.mu.Lock()
		var local, all []lockEdgeInfo
		for i, from := range c.nodes {
			to := c.nodes[(i+1)%len(c.nodes)]
			if e, ok := graph.edges[from][to]; ok {
				all = append(all, e)
				if posInPackage(pass, e.pos) {
					local = append(local, e)
				}
			}
		}
		graph.mu.Unlock()
		if len(local) == 0 && len(all) > 0 {
			// Cross-package cycle with no local edge: report the first edge
			// so the finding is never silently dropped.
			local = all[:1]
		}
		for _, e := range local {
			pass.Reportf(e.pos, "lock acquisition order cycle: %s (this edge acquires %s)",
				desc, e.text)
		}
	}
	return nil
}

// posInPackage reports whether pos falls inside one of the pass package's
// files.
func posInPackage(pass *Pass, pos token.Pos) bool {
	for _, f := range pass.Files() {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}
