package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FrozenWrite flags assignments to fields of types annotated
// "aliaslint:frozen" outside their constructor/build functions.
//
// A frozen type is read-only after construction: alias.Snapshot, the
// compiled FuncIndex/Index columns, planner Plans and interned
// symbolic.Exprs are all shared across goroutines on the strength of this
// contract, which until now lived only in comments. The analyzer makes it
// mechanical: a write to a frozen field — `x.F = v`, `x.F += v`, `x.F++`,
// or a write through a field's map/slice (`x.F[k] = v`) — is a finding
// unless the enclosing function is an approved initializer.
//
// Approved initializers are, in the frozen type's own package only:
// functions named like constructors (prefixes new/New/build/Build/make/Make,
// plus init), and functions explicitly annotated "aliaslint:mutator".
var FrozenWrite = &Analyzer{
	Name: "frozenwrite",
	Doc: "flags writes to fields of aliaslint:frozen types outside their " +
		"constructor/build functions",
	Run: runFrozenWrite,
}

func runFrozenWrite(pass *Pass) error {
	info := pass.TypesInfo()

	// frozenBase returns the frozen named type that expr ultimately writes
	// into, or nil. It unwraps writes through field maps/slices/arrays and
	// pointer indirection: `fi.vnum[i] = -1` writes FuncIndex state.
	var frozenBase func(e ast.Expr) *types.Named
	frozenBase = func(e ast.Expr) *types.Named {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// Only field selections count; method values cannot be assigned.
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if tv, ok := info.Types[e.X]; ok {
					if n := namedOf(tv.Type); n != nil && pass.Annotated(n.Obj(), "frozen") {
						return n
					}
				}
				// The base itself may be a frozen field of a frozen value
				// deeper down (x.Plan.pos[i] = …).
				return frozenBase(e.X)
			}
			return nil
		case *ast.IndexExpr:
			return frozenBase(e.X)
		case *ast.StarExpr:
			return frozenBase(e.X)
		}
		return nil
	}

	for _, file := range pass.Files() {
		allowed := func(at ast.Node, frozen *types.Named) bool {
			fd := enclosingFuncDecl(file, at)
			if fd == nil {
				return true // package-level var initializer
			}
			// Same-package rule: a foreign package can never write.
			if frozen.Obj().Pkg() != pass.Pkg.Types {
				return false
			}
			obj := info.Defs[fd.Name]
			if pass.Annotated(obj, "mutator") {
				return true
			}
			return isConstructorName(fd.Name.Name)
		}
		report := func(at ast.Node, frozen *types.Named, how string) {
			pass.Reportf(at.Pos(),
				"%s %s of frozen type %s outside its constructor/build functions; "+
					"%s is read-only after construction (mark an approved writer with aliaslint:mutator)",
				how, "field", frozen.Obj().Name(), frozen.Obj().Name())
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if frozen := frozenBase(lhs); frozen != nil && !allowed(n, frozen) {
						report(n, frozen, "assignment to")
					}
				}
			case *ast.IncDecStmt:
				if frozen := frozenBase(n.X); frozen != nil && !allowed(n, frozen) {
					report(n, frozen, "increment/decrement of")
				}
			}
			return true
		})
	}
	return nil
}
