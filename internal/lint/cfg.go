package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs over go/ast — the
// skeleton of the lint package's dataflow engine (see dataflow.go for the
// fixpoint solver that runs over it). The construction mirrors internal/cfg,
// which computes the same structure over the repository's own IR: blocks of
// straight-line nodes, explicit edges for every branch, and reverse
// postorder as the iteration order of choice. Conditional edges carry the
// branch condition (and whether the edge is the negated arm), so analyses
// can implement path narrowing — the ok-guard refinement of handleleak — as
// an edge transfer instead of a hand-rolled recursive walk.
//
// Statements are decomposed: a block's node list holds simple statements and
// bare condition/tag expressions, never a compound statement, so a client
// walking a node with ast.Inspect sees exactly the code executed in that
// block and nothing from nested branches.

// A CBlock is one basic block: nodes executed in order, then a transfer of
// control along one of the successor edges.
type CBlock struct {
	Index int
	Nodes []ast.Node
	Succs []*CEdge
	Preds []*CEdge
}

// A CEdge is one control transfer. For a conditional branch Cond is the
// branch condition; Negate marks the edge taken when Cond is false. Edges
// out of switch/select heads carry no condition.
type CEdge struct {
	From, To *CBlock
	Cond     ast.Expr
	Negate   bool
}

// A CFG is the control-flow graph of one function body. Exit collects every
// normal function exit: explicit returns and falling off the end. Paths that
// end in panic terminate without reaching Exit.
type CFG struct {
	Entry  *CBlock
	Exit   *CBlock
	Blocks []*CBlock
}

// ReturnBlocks lists the blocks whose last node is a return statement.
func (g *CFG) ReturnBlocks() []*CBlock {
	var out []*CBlock
	for _, b := range g.Blocks {
		if n := len(b.Nodes); n > 0 {
			if _, ok := b.Nodes[n-1].(*ast.ReturnStmt); ok {
				out = append(out, b)
			}
		}
	}
	return out
}

// RPO returns the blocks reachable from Entry in reverse postorder.
func (g *CFG) RPO() []*CBlock {
	seen := make([]bool, len(g.Blocks))
	var post []*CBlock
	var dfs func(b *CBlock)
	dfs = func(b *CBlock) {
		seen[b.Index] = true
		for _, e := range b.Succs {
			if !seen[e.To.Index] {
				dfs(e.To)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// cfgBuilder threads the construction state: the block under construction
// (nil while the walk is in dead code after a terminator) and the stacks of
// break/continue targets.
type cfgBuilder struct {
	g   *CFG
	cur *CBlock

	// breakables/continuables are innermost-last target stacks; entries
	// remember the statement label (if any) for labeled break/continue.
	breakables   []branchTarget
	continuables []branchTarget

	labels map[string]*CBlock   // label → block the labeled statement starts
	gotos  map[string][]*CBlock // unresolved goto sources by label
}

type branchTarget struct {
	label string
	block *CBlock
}

// BuildCFG constructs the control-flow graph of body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: map[string]*CBlock{},
		gotos:  map[string][]*CBlock{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmts(body.List)
	// Falling off the end is a normal exit.
	b.edge(b.cur, b.g.Exit, nil, false)
	// Go requires goto labels to be declared in the same function, but be
	// robust to broken sources: unresolved gotos terminate.
	for name, srcs := range b.gotos {
		if tgt := b.labels[name]; tgt != nil {
			for _, s := range srcs {
				b.edge(s, tgt, nil, false)
			}
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *CBlock {
	blk := &CBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from→to (no-op when from is nil, i.e. dead code).
func (b *cfgBuilder) edge(from, to *CBlock, cond ast.Expr, negate bool) {
	if from == nil || to == nil {
		return
	}
	e := &CEdge{From: from, To: to, Cond: cond, Negate: negate}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// append adds a node to the current block (dropped in dead code).
func (b *cfgBuilder) append(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// isPanicCall reports whether s is a call to the panic builtin.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// stmt builds one statement. label is the pending label when the statement
// is the body of a LabeledStmt (loops and switches register their targets
// under it).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.g.Exit, nil, false)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		name := s.Label.Name
		blk := b.newBlock()
		b.edge(b.cur, blk, nil, false)
		b.cur = blk
		b.labels[name] = blk
		b.stmt(s.Stmt, name)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.append(s.Tag)
		}
		b.switchBody(s.Body, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.append(s.Assign)
		b.switchBody(s.Body, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	default:
		// Simple statements: assign, expr, defer, go, send, incdec, decl…
		b.append(s)
		if isPanicCall(s) {
			b.cur = nil // panic terminates without reaching Exit
		}
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	find := func(stack []branchTarget) *CBlock {
		for i := len(stack) - 1; i >= 0; i-- {
			if label == "" || stack[i].label == label {
				return stack[i].block
			}
		}
		return nil
	}
	switch s.Tok {
	case token.BREAK:
		b.edge(b.cur, find(b.breakables), nil, false)
		b.cur = nil
	case token.CONTINUE:
		b.edge(b.cur, find(b.continuables), nil, false)
		b.cur = nil
	case token.GOTO:
		if tgt := b.labels[label]; tgt != nil {
			b.edge(b.cur, tgt, nil, false)
		} else if b.cur != nil {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchBody (the clause's fall edge); nothing here.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.append(s.Cond)
	head := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(head, then, s.Cond, false)
	b.cur = then
	b.stmts(s.Body.List)
	b.edge(b.cur, after, nil, false)

	switch e := s.Else.(type) {
	case nil:
		b.edge(head, after, s.Cond, true)
	case *ast.BlockStmt:
		els := b.newBlock()
		b.edge(head, els, s.Cond, true)
		b.cur = els
		b.stmts(e.List)
		b.edge(b.cur, after, nil, false)
	default: // else-if chain
		els := b.newBlock()
		b.edge(head, els, s.Cond, true)
		b.cur = els
		b.stmt(e, "")
		b.edge(b.cur, after, nil, false)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	b.edge(b.cur, head, nil, false)
	b.cur = head
	if s.Cond != nil {
		b.append(s.Cond)
		head = b.cur // appending never splits, but keep the invariant local
		b.edge(head, body, s.Cond, false)
		b.edge(head, after, s.Cond, true)
	} else {
		b.edge(b.cur, body, nil, false)
		// No condition: after is reachable only through break.
	}

	b.breakables = append(b.breakables, branchTarget{label, after})
	b.continuables = append(b.continuables, branchTarget{label, post})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, post, nil, false)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post, "")
		b.edge(b.cur, head, nil, false)
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.continuables = b.continuables[:len(b.continuables)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	// The ranged expression is evaluated once, in the entering block; the
	// head then decides each iteration.
	b.append(s.X)
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, head, nil, false)
	b.edge(head, body, nil, false)
	b.edge(head, after, nil, false) // zero iterations

	b.breakables = append(b.breakables, branchTarget{label, after})
	b.continuables = append(b.continuables, branchTarget{label, head})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head, nil, false)
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.continuables = b.continuables[:len(b.continuables)-1]
	b.cur = after
}

// switchBody builds the clauses of a switch/type-switch as parallel branches
// off the current block. Without a default clause control may skip every
// clause; fallthrough chains into the next clause's body.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string) {
	head := b.cur
	after := b.newBlock()
	b.breakables = append(b.breakables, branchTarget{label, after})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*CBlock, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		for _, cond := range cc.List {
			// Record the case expressions in the head: they are evaluated
			// there (calls in case exprs run before any body).
			if head != nil {
				head.Nodes = append(head.Nodes, cond)
			}
		}
		b.edge(head, blocks[i], nil, false)
		b.cur = blocks[i]
		b.stmts(cc.Body)
		// Explicit fallthrough (must be the last statement) chains bodies.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1], nil, false)
				b.cur = nil
			}
		}
		b.edge(b.cur, after, nil, false)
	}
	if !hasDefault {
		b.edge(head, after, nil, false)
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.cur = after
}

// selectStmt builds each communication clause as a branch. A select without
// a default blocks until some clause proceeds, so there is no skip edge.
func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	after := b.newBlock()
	b.breakables = append(b.breakables, branchTarget{label, after})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk, nil, false)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after, nil, false)
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	b.cur = after
}
