package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the shared "obligation" dataflow: a resource is
// acquired at some program point and must be discharged — released, deferred,
// or ownership-transferred — on every path that reaches a function exit.
// handleleak (registry Handle pins), ctxcancel (context cancel functions)
// and pinflow (pins captured by goroutine closures) are all instances; they
// differ only in what counts as a release and whether passing the tracked
// value as a call argument transfers the obligation.
//
// The problem runs on the CFGs of cfg.go through the Fixpoint solver of
// dataflow.go; ok-guard narrowing is an edge transfer on the condition
// edges, replacing the hand-rolled recursive walk of the PR 6 analyzer.

// obState is the dataflow fact for one obligation. The lattice is the
// five-flag powerset ordered by mergeStates: a merge is covered only when
// both incoming paths are.
type obState struct {
	active   bool // acquisition has executed on this path
	released bool
	deferred bool // defer release seen: every later exit is covered
	escaped  bool // ownership transferred; obligation no longer ours
	okFalse  bool // the acquire's ok-result is known false on this path
}

// covered reports whether the obligation is discharged on this path: not
// yet acquired, released, deferred-released, ownership transferred, or the
// acquire's ok-result known false (never pinned).
func covered(s obState) bool {
	return !s.active || s.released || s.deferred || s.escaped || s.okFalse
}

// mergeStates joins two continuing paths. A merged path is discharged only
// when both incoming paths are; when exactly one is covered, the merged
// state carries the uncovered path's obligations forward.
func mergeStates(a, b obState) obState {
	ca, cb := covered(a), covered(b)
	switch {
	case ca && cb:
		return obState{active: a.active || b.active, released: true}
	case ca:
		b.active = a.active || b.active
		return b
	case cb:
		a.active = a.active || b.active
		return a
	default:
		return obState{
			active:   a.active || b.active,
			released: a.released && b.released,
			deferred: a.deferred && b.deferred,
			escaped:  a.escaped && b.escaped,
			okFalse:  a.okFalse && b.okFalse,
		}
	}
}

// An obligationSpec configures one obligation instance.
type obligationSpec struct {
	info *types.Info
	// v is the tracked variable (the handle, the cancel func).
	v *types.Var
	// ok is the bool companion of a (v, ok) acquire; nil otherwise.
	ok *types.Var
	// acq is the statement whose execution activates the obligation; nil
	// when the obligation is live on entry (pinflow's captured pins).
	acq ast.Node
	// isRelease recognizes a discharging call (h.Release(), cancel()).
	isRelease func(*ast.CallExpr) bool
	// argTransfers: passing v as a plain call argument transfers the
	// obligation. Handles are borrowed by callees (false); cancel functions
	// are handed off (true).
	argTransfers bool
}

// obligationProblem adapts an obligationSpec to the Fixpoint solver.
type obligationProblem struct{ spec *obligationSpec }

func (p *obligationProblem) Entry() any {
	return obState{active: p.spec.acq == nil}
}

func (p *obligationProblem) Join(a, b any) any {
	return mergeStates(a.(obState), b.(obState))
}

func (p *obligationProblem) Equal(a, b any) bool { return a == b }

// FlowEdge applies ok-guard narrowing: along the edge where the acquire's
// ok-result is false, the resource was never pinned.
func (p *obligationProblem) FlowEdge(e *CEdge, fact any) any {
	st := fact.(obState)
	if !st.active || st.okFalse {
		return st
	}
	switch okCondDir(p.spec.info, p.spec.ok, e.Cond) {
	case 1: // cond is `ok`
		if e.Negate {
			st.okFalse = true
		}
	case -1: // cond is `!ok`
		if !e.Negate {
			st.okFalse = true
		}
	}
	return st
}

// okCondDir classifies a branch condition against the acquisition's
// ok-result: +1 cond is `ok`, -1 cond is `!ok`, 0 unrelated.
func okCondDir(info *types.Info, okVar *types.Var, cond ast.Expr) int {
	if okVar == nil || cond == nil {
		return 0
	}
	switch c := ast.Unparen(cond).(type) {
	case *ast.Ident:
		if info.Uses[c] == okVar {
			return 1
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			if id, ok := ast.Unparen(c.X).(*ast.Ident); ok && info.Uses[id] == okVar {
				return -1
			}
		}
	}
	return 0
}

func (p *obligationProblem) Transfer(n ast.Node, fact any) any {
	st := fact.(obState)
	s := p.spec
	// The acquisition node itself (re)activates tracking: a back edge that
	// reaches it again starts a fresh pin.
	if s.acq != nil && n == s.acq {
		return obState{active: true}
	}
	if !st.active {
		return st
	}
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && s.isRelease(call) {
			st.released = true
		} else if s.escapes(n.X) || (s.argTransfers && s.usesVar(n.X)) {
			st.escaped = true
		}
	case *ast.DeferStmt:
		if s.isRelease(n.Call) {
			st.deferred = true
		} else if s.escapes(n.Call) || s.usesVar(n.Call) {
			st.escaped = true
		}
	case *ast.GoStmt:
		if s.usesVar(n.Call) {
			st.escaped = true
		}
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && s.info.Uses[id] == s.v {
				// Reassigned: the old pin is unreachable here. The
				// reassignment site is a separate acquisition if it is one.
				st.escaped = true
			}
		}
		if s.escapes(n) {
			st.escaped = true
		}
		for _, rhs := range n.Rhs {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && s.info.Uses[id] == s.v {
				st.escaped = true // aliased into another variable
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if s.usesVar(r) {
				st.escaped = true // ownership returned to the caller
			}
		}
	case *ast.SendStmt:
		if s.usesVar(n) {
			st.escaped = true
		}
	case ast.Stmt:
		if s.escapes(n) {
			st.escaped = true
		}
	case ast.Expr:
		// Bare condition/tag/range expressions: a capture inside one (a
		// composite literal or closure) still transfers ownership.
		if s.escapes(n) {
			st.escaped = true
		}
	}
	return st
}

// usesVar reports whether the node mentions the tracked variable.
func (s *obligationSpec) usesVar(e ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && s.info.Uses[id] == s.v {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether the node transfers ownership of the tracked
// value: stored into a composite literal, sent on a channel, or captured by
// a function literal. Passing the value as a plain call argument is
// ordinary use, NOT a transfer (unless argTransfers) — the callee borrows
// the pin; treating it as a transfer would blind the analyzer to the
// canonical early-return leak (`if err := work(h); err != nil { return }`).
func (s *obligationSpec) escapes(n ast.Node) bool {
	esc := false
	ast.Inspect(n, func(m ast.Node) bool {
		if esc {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			if s.usesVar(m) {
				esc = true
			}
			return false
		case *ast.CompositeLit, *ast.SendStmt:
			if s.usesVar(m) {
				esc = true
			}
			return false
		}
		return true
	})
	return esc
}

// solveObligation runs the obligation dataflow over g and reports whether
// the obligation may be live (uncovered) at a normal function exit.
func solveObligation(g *CFG, spec *obligationSpec) bool {
	res := Fixpoint(g, &obligationProblem{spec: spec})
	exit, ok := res.In[g.Exit]
	if !ok {
		return false // no normal exit reachable (every path panics)
	}
	return !covered(exit.(obState))
}
