// Package lint implements aliaslint: a suite of static analyzers that
// mechanically enforce this repository's cross-cutting contracts — the
// interner-isolation rule of internal/symbolic (expressions from different
// interners must never meet in one operation), the read-only-after-build
// contract of the compiled alias structures, the registry Handle
// acquire/release lifecycle, and the no-copy discipline of sharded counter
// structs.
//
// The suite is deliberately self-contained: it is built on go/ast and
// go/types only (no golang.org/x/tools dependency), with a module-aware
// source loader (see load.go) standing in for go/packages and a fixture
// runner (see analysistest.go) standing in for analysistest. The analyzer
// surface mirrors golang.org/x/tools/go/analysis closely enough that the
// analyzers could be ported to a multichecker built on x/tools without
// touching their Run functions.
//
// # Annotations
//
// The analyzers are configured declaratively by marker comments in the code
// they check, so the contracts live next to the declarations they protect:
//
//   - "aliaslint:frozen" on a type declaration: fields of the type are
//     read-only outside constructor/build functions (frozenwrite).
//   - "aliaslint:mutator" on a function declaration: the function is an
//     approved writer of frozen types (frozenwrite).
//   - "aliaslint:interner-scoped" in a package comment: the package runs on
//     per-module analysis paths and must not mint expressions through the
//     process-wide Default interner (internermix).
//   - "aliaslint:default-interner" on a function declaration: the function
//     constructs expressions in the Default interner; calling it from an
//     interner-scoped package is a finding (internermix).
//   - "aliaslint:handle" on a type declaration: values returned by Acquire-
//     like calls must be released on every path (handleleak).
//   - "aliaslint:nopin" on a function declaration: the function returns a
//     handle without pinning it; its callers owe no Release (handleleak).
//     Constructor-named functions (New…/Build…/make…) are exempt implicitly:
//     they mint fresh, unpinned handles.
//
// A finding is suppressed by a "//nolint:aliaslint" (or
// "//nolint:<analyzer>") comment on the flagged line; deliberate exceptions
// should carry a justification in the same comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static analysis and its entry point. The shape
// mirrors golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint directives.
	Name string
	// Doc is the one-paragraph description the multichecker prints.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass provides one analyzer run over one package: its syntax, type
// information, and the program-wide annotation index.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Files returns the package's parsed (non-test) files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotated reports whether obj's declaration carries the given aliaslint
// marker (e.g. "frozen" for "aliaslint:frozen"). Objects from any package
// the program loaded from source are visible; objects from export data
// (standard library) are never annotated.
func (p *Pass) Annotated(obj types.Object, marker string) bool {
	if obj == nil {
		return false
	}
	return p.Prog.ann.objs[obj][marker]
}

// PkgAnnotated reports whether the package declaring pkg carries the given
// marker in a package comment.
func (p *Pass) PkgAnnotated(pkg *types.Package, marker string) bool {
	if pkg == nil {
		return false
	}
	return p.Prog.ann.pkgs[pkg][marker]
}

// annotations indexes aliaslint markers by declared object and by package.
type annotations struct {
	objs map[types.Object]map[string]bool
	pkgs map[*types.Package]map[string]bool
}

const annPrefix = "aliaslint:"

// markersIn extracts aliaslint markers from a comment group.
func markersIn(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		text := c.Text
		for {
			i := strings.Index(text, annPrefix)
			if i < 0 {
				break
			}
			rest := text[i+len(annPrefix):]
			end := strings.IndexFunc(rest, func(r rune) bool {
				return !(r == '-' || r == '_' ||
					('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9'))
			})
			if end < 0 {
				end = len(rest)
			}
			if end > 0 {
				out = append(out, rest[:end])
			}
			text = rest[end:]
		}
	}
	return out
}

// scan indexes the markers of one loaded package.
func (a *annotations) scan(pkg *Package) {
	addObj := func(obj types.Object, markers []string) {
		if obj == nil || len(markers) == 0 {
			return
		}
		m := a.objs[obj]
		if m == nil {
			m = map[string]bool{}
			a.objs[obj] = m
		}
		for _, mk := range markers {
			m[mk] = true
		}
	}
	for _, f := range pkg.Files {
		if mk := markersIn(f.Doc); len(mk) > 0 {
			m := a.pkgs[pkg.Types]
			if m == nil {
				m = map[string]bool{}
				a.pkgs[pkg.Types] = m
			}
			for _, s := range mk {
				m[s] = true
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				addObj(pkg.Info.Defs[d.Name], markersIn(d.Doc))
			case *ast.GenDecl:
				declMarkers := markersIn(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					mk := markersIn(ts.Doc)
					mk = append(mk, markersIn(ts.Comment)...)
					if len(d.Specs) == 1 {
						mk = append(mk, declMarkers...)
					}
					addObj(pkg.Info.Defs[ts.Name], mk)
				}
			}
		}
	}
}

// nolintFilter drops diagnostics suppressed by a //nolint comment on the
// same line. Accepted forms: //nolint:aliaslint, //nolint:<analyzer>, and
// comma-separated lists; a bare //nolint suppresses everything.
func nolintFilter(prog *Program, diags []Diagnostic) []Diagnostic {
	// line key → set of suppressed analyzer names ("" = all).
	type key struct {
		file string
		line int
	}
	suppress := map[key]map[string]bool{}
	addLine := func(pos token.Position, names map[string]bool) {
		k := key{pos.Filename, pos.Line}
		m := suppress[k]
		if m == nil {
			suppress[k] = names
			return
		}
		for n := range names {
			m[n] = true
		}
	}
	for _, pkg := range prog.allLoaded() {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "nolint") {
						continue
					}
					rest := strings.TrimPrefix(text, "nolint")
					names := map[string]bool{}
					if strings.HasPrefix(rest, ":") {
						spec := rest[1:]
						if i := strings.IndexAny(spec, " \t"); i >= 0 {
							spec = spec[:i]
						}
						for _, n := range strings.Split(spec, ",") {
							if n = strings.TrimSpace(n); n != "" {
								names[n] = true
							}
						}
					} else {
						names[""] = true
					}
					addLine(prog.Fset.Position(c.Pos()), names)
				}
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		names := suppress[key{d.Pos.Filename, d.Pos.Line}]
		if names[""] || names["aliaslint"] || names[d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Run applies the analyzers to the program's target packages and returns
// the surviving (non-suppressed) diagnostics sorted by position.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	diags = nolintFilter(prog, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
