// Package lint implements aliaslint: a suite of static analyzers that
// mechanically enforce this repository's cross-cutting contracts — the
// interner-isolation rule of internal/symbolic (expressions from different
// interners must never meet in one operation), the read-only-after-build
// contract of the compiled alias structures, the registry Handle
// acquire/release lifecycle, and the no-copy discipline of sharded counter
// structs.
//
// The suite is deliberately self-contained: it is built on go/ast and
// go/types only (no golang.org/x/tools dependency), with a module-aware
// source loader (see load.go) standing in for go/packages and a fixture
// runner (see analysistest.go) standing in for analysistest. The analyzer
// surface mirrors golang.org/x/tools/go/analysis closely enough that the
// analyzers could be ported to a multichecker built on x/tools without
// touching their Run functions.
//
// # Annotations
//
// The analyzers are configured declaratively by marker comments in the code
// they check, so the contracts live next to the declarations they protect:
//
//   - "aliaslint:frozen" on a type declaration: fields of the type are
//     read-only outside constructor/build functions (frozenwrite).
//   - "aliaslint:mutator" on a function declaration: the function is an
//     approved writer of frozen types (frozenwrite).
//   - "aliaslint:interner-scoped" in a package comment: the package runs on
//     per-module analysis paths and must not mint expressions through the
//     process-wide Default interner (internermix).
//   - "aliaslint:default-interner" on a function declaration: the function
//     constructs expressions in the Default interner; calling it from an
//     interner-scoped package is a finding (internermix).
//   - "aliaslint:handle" on a type declaration: values returned by Acquire-
//     like calls must be released on every path (handleleak).
//   - "aliaslint:nopin" on a function declaration: the function returns a
//     handle without pinning it; its callers owe no Release (handleleak).
//     Constructor-named functions (New…/Build…/make…) are exempt implicitly:
//     they mint fresh, unpinned handles.
//
// A finding is suppressed by a "//nolint:aliaslint" (or
// "//nolint:<analyzer>") comment on the flagged line; deliberate exceptions
// should carry a justification in the same comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static analysis and its entry point. The shape
// mirrors golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint directives.
	Name string
	// Doc is the one-paragraph description the multichecker prints.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass provides one analyzer run over one package: its syntax, type
// information, and the program-wide annotation index.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Files returns the package's parsed (non-test) files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotated reports whether obj's declaration carries the given aliaslint
// marker (e.g. "frozen" for "aliaslint:frozen"). Objects from any package
// the program loaded from source are visible; objects from export data
// (standard library) are never annotated.
func (p *Pass) Annotated(obj types.Object, marker string) bool {
	if obj == nil {
		return false
	}
	return p.Prog.ann.objs[obj][marker]
}

// PkgAnnotated reports whether the package declaring pkg carries the given
// marker in a package comment.
func (p *Pass) PkgAnnotated(pkg *types.Package, marker string) bool {
	if pkg == nil {
		return false
	}
	return p.Prog.ann.pkgs[pkg][marker]
}

// annotatedFuncs lists every function in the program carrying the given
// marker (e.g. "hotpath"), in deterministic declaration order.
func (p *Program) annotatedFuncs(marker string) []*types.Func {
	var out []*types.Func
	for obj, markers := range p.ann.objs {
		if fn, ok := obj.(*types.Func); ok && markers[marker] {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// annotations indexes aliaslint markers by declared object and by package.
type annotations struct {
	objs map[types.Object]map[string]bool
	pkgs map[*types.Package]map[string]bool
}

const annPrefix = "aliaslint:"

// markersIn extracts aliaslint markers from a comment group.
func markersIn(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		text := c.Text
		for {
			i := strings.Index(text, annPrefix)
			if i < 0 {
				break
			}
			rest := text[i+len(annPrefix):]
			end := strings.IndexFunc(rest, func(r rune) bool {
				return !(r == '-' || r == '_' ||
					('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9'))
			})
			if end < 0 {
				end = len(rest)
			}
			if end > 0 {
				out = append(out, rest[:end])
			}
			text = rest[end:]
		}
	}
	return out
}

// scan indexes the markers of one loaded package.
func (a *annotations) scan(pkg *Package) {
	addObj := func(obj types.Object, markers []string) {
		if obj == nil || len(markers) == 0 {
			return
		}
		m := a.objs[obj]
		if m == nil {
			m = map[string]bool{}
			a.objs[obj] = m
		}
		for _, mk := range markers {
			m[mk] = true
		}
	}
	for _, f := range pkg.Files {
		if mk := markersIn(f.Doc); len(mk) > 0 {
			m := a.pkgs[pkg.Types]
			if m == nil {
				m = map[string]bool{}
				a.pkgs[pkg.Types] = m
			}
			for _, s := range mk {
				m[s] = true
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				addObj(pkg.Info.Defs[d.Name], markersIn(d.Doc))
			case *ast.GenDecl:
				declMarkers := markersIn(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					mk := markersIn(ts.Doc)
					mk = append(mk, markersIn(ts.Comment)...)
					if len(d.Specs) == 1 {
						mk = append(mk, declMarkers...)
					}
					addObj(pkg.Info.Defs[ts.Name], mk)
					// Field-level markers (aliaslint:striped on a mutex
					// field) attach to the field objects themselves.
					if st, ok := ts.Type.(*ast.StructType); ok {
						for _, field := range st.Fields.List {
							fmk := markersIn(field.Doc)
							fmk = append(fmk, markersIn(field.Comment)...)
							for _, name := range field.Names {
								addObj(pkg.Info.Defs[name], fmk)
							}
						}
					}
				}
			}
		}
	}
}

// A Directive is one parsed //nolint comment. The accepted grammar is
//
//	//nolint:<name>[,<name>...] // <justification>
//
// A directive without names (bare "//nolint") suppresses every analyzer; a
// directive without a "// justification" tail is itself a finding in target
// packages — deliberate exceptions must say why.
type Directive struct {
	Pos   token.Position
	Names []string // empty: bare //nolint (suppresses everything)
	// Justified records whether the directive carries a "// reason" tail.
	Justified bool
	// Used records whether the directive suppressed at least one finding in
	// this run — the input of the stale audit.
	Used bool
	// InTarget marks directives inside the program's target packages, where
	// the justification requirement is enforced.
	InTarget bool
}

func (d *Directive) String() string {
	spec := "nolint"
	if len(d.Names) > 0 {
		spec += ":" + strings.Join(d.Names, ",")
	}
	return fmt.Sprintf("%s: //%s", d.Pos, spec)
}

// matches reports whether the directive suppresses the analyzer.
func (d *Directive) matches(analyzer string) bool {
	if len(d.Names) == 0 {
		return true
	}
	for _, n := range d.Names {
		if n == "aliaslint" || n == analyzer {
			return true
		}
	}
	return false
}

// collectDirectives parses every //nolint comment of the loaded program.
func collectDirectives(prog *Program) []*Directive {
	targets := map[*Package]bool{}
	for _, pkg := range prog.Pkgs {
		targets[pkg] = true
	}
	var out []*Directive
	for _, pkg := range prog.allLoaded() {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "nolint") {
						continue
					}
					rest := strings.TrimPrefix(text, "nolint")
					d := &Directive{
						Pos:      prog.Fset.Position(c.Pos()),
						InTarget: targets[pkg],
					}
					if strings.HasPrefix(rest, ":") {
						spec := rest[1:]
						if i := strings.IndexAny(spec, " \t"); i >= 0 {
							rest = spec[i:]
							spec = spec[:i]
						} else {
							rest = ""
						}
						for _, n := range strings.Split(spec, ",") {
							if n = strings.TrimSpace(n); n != "" {
								d.Names = append(d.Names, n)
							}
						}
					}
					just := strings.TrimSpace(rest)
					if cut, ok := strings.CutPrefix(just, "//"); ok {
						d.Justified = strings.TrimSpace(cut) != ""
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// A RunResult is the full outcome of an analyzer run: actionable findings,
// findings a //nolint directive silenced (for -json), and the parsed
// directives themselves (for the stale audit).
type RunResult struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
	Directives []*Directive
}

// RunAll applies the analyzers to the program's target packages. Suppressed
// findings mark their directives used; unjustified directives in target
// packages surface as findings of the pseudo-analyzer "nolint", which no
// directive can suppress.
func RunAll(prog *Program, analyzers []*Analyzer) (*RunResult, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	res := &RunResult{Directives: collectDirectives(prog)}
	type key struct {
		file string
		line int
	}
	byLine := map[key][]*Directive{}
	for _, d := range res.Directives {
		k := key{d.Pos.Filename, d.Pos.Line}
		byLine[k] = append(byLine[k], d)
	}
	for _, diag := range diags {
		suppressed := false
		for _, d := range byLine[key{diag.Pos.Filename, diag.Pos.Line}] {
			if d.matches(diag.Analyzer) {
				d.Used = true
				suppressed = true
			}
		}
		if suppressed {
			res.Suppressed = append(res.Suppressed, diag)
		} else {
			res.Diags = append(res.Diags, diag)
		}
	}
	for _, d := range res.Directives {
		if !d.InTarget || d.Justified {
			continue
		}
		msg := "nolint directive has no justification; write //nolint:<analyzer> // <reason>"
		if len(d.Names) == 0 {
			msg = "bare //nolint suppresses every analyzer; name the analyzers and justify: //nolint:<analyzer> // <reason>"
		}
		res.Diags = append(res.Diags, Diagnostic{Analyzer: "nolint", Pos: d.Pos, Message: msg})
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	sort.Slice(res.Directives, func(i, j int) bool {
		a, b := res.Directives[i].Pos, res.Directives[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return res, nil
}

// Run applies the analyzers and returns the surviving (non-suppressed)
// diagnostics sorted by position.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunAll(prog, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// StaleDirectives returns directives that suppressed nothing in this run and
// name only this suite's analyzers (directives for other linters — e.g.
// staticcheck check IDs — are not ours to judge). Bare directives are always
// auditable.
func StaleDirectives(res *RunResult, analyzers []*Analyzer) []*Directive {
	ours := map[string]bool{"aliaslint": true, "nolint": true}
	for _, a := range analyzers {
		ours[a.Name] = true
	}
	var out []*Directive
	for _, d := range res.Directives {
		if d.Used || !d.InTarget {
			continue
		}
		auditable := true
		for _, n := range d.Names {
			if !ours[n] {
				auditable = false
				break
			}
		}
		if auditable {
			out = append(out, d)
		}
	}
	return out
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
